package server

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"swarm/internal/wire"
)

// readCache is the serving tier's fragment extent cache (DESIGN.md
// §3.13). It holds whole fragment extents keyed by FID so a read-heavy
// cluster serves its hot set from memory instead of paying a disk pass
// per request, and it prefetches the fragments following a miss — log
// reads are sequential by construction, so fragment i's reader usually
// wants i+1 next.
//
// Staleness safety rides on the store's per-slot generation counters:
// every extent records the (slot, gen) it was filled under, and a lookup
// only hits when the FID still maps to that slot at that generation. A
// Delete+Store recycling the slot bumps the generation, so a stale
// extent can never serve another fragment's bytes; Delete also drops the
// FID's entry eagerly to free memory.
//
// Extent buffers come from the wire buffer pool and flow to the network
// with zero copies: a cached read's response payload aliases the extent,
// so the buffer cannot return to the pool until both the cache and every
// in-flight response are done with it. Each extent carries a reference
// count — one reference for the cache's residency, one per in-flight
// response — and the last release recycles the buffer.
type readCache struct {
	capBytes int64
	depth    int // readahead depth in fragments (0 = no readahead)

	hits        atomic.Int64
	misses      atomic.Int64
	raLoads     atomic.Int64 // extents filled by the readahead worker
	bytesCached atomic.Int64 // payload bytes served from cache (zero-copy)
	bytesDisk   atomic.Int64 // bytes read from disk to fill extents

	mu    sync.Mutex
	bytes int64
	lru   *list.List // front = most recent; values are *Extent
	index map[wire.FID]*list.Element

	// raCh feeds the readahead worker the FIDs whose neighbors should be
	// prefetched. Sends never block: under load, dropping a readahead
	// hint is strictly better than stalling a foreground read. raCh is
	// never closed — schedule may race with shutdown — so the worker's
	// stop signal is its own channel.
	raCh      chan wire.FID
	lastSched atomic.Uint64 // last FID handed to the worker (dedup)

	// raStop is closed by Store.Close to terminate the readahead worker;
	// raDone is closed by the worker on exit and is non-nil only when a
	// worker was started (readahead depth > 0).
	raStop chan struct{}
	raDone chan struct{}
}

// Extent is one cached fragment: the full stored payload plus the
// identity it was validated against. refs counts the cache's residency
// reference and every response whose payload aliases buf.
type Extent struct {
	fid  wire.FID
	slot int
	gen  uint64
	buf  []byte // pooled; len == the fragment's stored size
	refs atomic.Int32
}

// Release drops one reference; the last one returns the pooled buffer.
func (e *Extent) Release() {
	if n := e.refs.Add(-1); n == 0 {
		wire.PutBuffer(e.buf)
	} else if n < 0 {
		panic(fmt.Sprintf("server: extent %v over-released", e.fid))
	}
}

func newReadCache(capBytes int64, depth int) *readCache {
	return &readCache{
		capBytes: capBytes,
		depth:    depth,
		lru:      list.New(),
		index:    make(map[wire.FID]*list.Element),
		raCh:     make(chan wire.FID, 256),
		raStop:   make(chan struct{}),
	}
}

// get returns the extent for fid if it is cached AND still describes the
// live (slot, gen) the caller just resolved under the store mutex. The
// returned extent carries a reference the caller must release. A stale
// entry (slot recycled since the fill) is dropped and reported as a miss.
// swarmlint:returns-ref
func (rc *readCache) get(fid wire.FID, slot int, gen uint64) *Extent {
	rc.mu.Lock()
	el, ok := rc.index[fid]
	if !ok {
		rc.mu.Unlock()
		return nil
	}
	ext := el.Value.(*Extent)
	if ext.slot != slot || ext.gen != gen {
		rc.removeLocked(el)
		rc.mu.Unlock()
		return nil
	}
	rc.lru.MoveToFront(el)
	ext.refs.Add(1)
	rc.mu.Unlock()
	return ext
}

// insert adds a freshly filled extent, taking ownership of buf (a pooled
// buffer). It returns the canonical extent for fid with a caller
// reference held: if a concurrent fill won the race the newcomer's
// buffer is recycled and the resident entry is returned instead. An
// extent larger than the whole cache is returned caller-owned without
// being inserted.
// swarmlint:returns-ref
func (rc *readCache) insert(fid wire.FID, slot int, gen uint64, buf []byte) *Extent {
	rc.mu.Lock()
	if el, ok := rc.index[fid]; ok {
		ext := el.Value.(*Extent)
		if ext.slot == slot && ext.gen == gen {
			ext.refs.Add(1)
			rc.lru.MoveToFront(el)
			rc.mu.Unlock()
			wire.PutBuffer(buf)
			return ext
		}
		rc.removeLocked(el) // recycled slot: the resident entry is stale
	}
	ext := &Extent{fid: fid, slot: slot, gen: gen, buf: buf}
	if int64(len(buf)) > rc.capBytes {
		ext.refs.Store(1) // caller only; too big to keep
		rc.mu.Unlock()
		return ext
	}
	ext.refs.Store(2) // cache residency + caller
	rc.index[fid] = rc.lru.PushFront(ext)
	rc.bytes += int64(len(buf))
	rc.evictLocked()
	rc.mu.Unlock()
	return ext
}

// fill adds a speculative (readahead) extent nobody is waiting for: the
// cache holds the only reference. Oversized extents are rejected.
func (rc *readCache) fill(fid wire.FID, slot int, gen uint64, buf []byte) {
	ext := rc.insert(fid, slot, gen, buf)
	ext.Release() // drop the caller reference insert handed us
}

// contains reports whether fid has a live entry for (slot, gen) — the
// readahead worker's cheap "already done" check.
func (rc *readCache) contains(fid wire.FID, slot int, gen uint64) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el, ok := rc.index[fid]
	if !ok {
		return false
	}
	ext := el.Value.(*Extent)
	return ext.slot == slot && ext.gen == gen
}

// invalidate eagerly drops fid's entry (Delete's belt; the generation
// check is the braces).
func (rc *readCache) invalidate(fid wire.FID) {
	rc.mu.Lock()
	if el, ok := rc.index[fid]; ok {
		rc.removeLocked(el)
	}
	rc.mu.Unlock()
}

// removeLocked unlinks an entry and drops the cache's reference; readers
// still holding the extent keep it alive until their responses drain.
func (rc *readCache) removeLocked(el *list.Element) {
	ext := el.Value.(*Extent)
	rc.lru.Remove(el)
	delete(rc.index, ext.fid)
	rc.bytes -= int64(len(ext.buf))
	ext.Release()
}

func (rc *readCache) evictLocked() {
	for rc.bytes > rc.capBytes && rc.lru.Len() > 0 {
		rc.removeLocked(rc.lru.Back())
	}
}

// schedule hands fid to the readahead worker. Never blocks; duplicate
// back-to-back hints and full queues are dropped.
func (rc *readCache) schedule(fid wire.FID) {
	if rc.depth <= 0 || rc.lastSched.Swap(uint64(fid)) == uint64(fid) {
		return
	}
	select {
	case rc.raCh <- fid:
	default:
	}
}

// curBytes returns current occupancy.
func (rc *readCache) curBytes() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.bytes
}

// DefaultReadCacheBytes sizes the serving-tier extent cache when the
// caller doesn't.
const DefaultReadCacheBytes = 64 << 20

// DefaultReadahead is the default readahead depth in fragments.
const DefaultReadahead = 4

// SetReadCache enables the serving-tier extent cache: reads are answered
// from (and fill) an LRU of whole fragment extents bounded by capBytes,
// and a miss on fragment i prefetches the next depth fragments of the
// same log off the same disk pass (depth 0 disables readahead). Call it
// once, before serving traffic; passing capBytes <= 0 leaves the cache
// disabled.
func (s *Store) SetReadCache(capBytes int64, depth int) {
	if capBytes <= 0 {
		return
	}
	s.rcache = newReadCache(capBytes, depth)
	if depth > 0 {
		s.rcache.raDone = make(chan struct{})
		go s.readaheadWorker(s.rcache)
	}
}

// Close stops the store's background work — today, the readahead
// worker. It does not touch the disk, which the store does not own.
// Idempotent; a Store that never started a worker closes trivially.
func (s *Store) Close() {
	rc := s.rcache
	if rc == nil || rc.raDone == nil {
		return
	}
	s.closeOnce.Do(func() { close(rc.raStop) })
	<-rc.raDone
}

// readExtent is the cached read path: resolve fid under the metadata
// lock, serve from the extent cache when the (slot, gen) identity still
// holds, otherwise fill the whole extent from disk — outside any lock —
// and revalidate before caching. The returned data aliases the extent's
// pooled buffer; the caller must release the extent exactly once after
// the bytes are on the wire (or copied). Range and ACL checks happen on
// every request, cached or not, so readahead never bypasses access
// control.
// swarmlint:returns-ref
func (s *Store) readExtent(rc *readCache, client wire.ClientID, fid wire.FID, off, n uint32) ([]byte, *Extent, error) {
	for {
		s.mu.RLock()
		slot, ok := s.bySID[fid]
		if !ok || s.slots[slot].prealloc() {
			s.mu.RUnlock()
			return nil, nil, fmt.Errorf("%w: %v", ErrNotFound, fid)
		}
		ent := s.slots[slot]
		if off+n > ent.size || off+n < off {
			s.mu.RUnlock()
			return nil, nil, fmt.Errorf("%w: [%d,%d) of %d", ErrBadRange, off, off+n, ent.size)
		}
		if err := s.checkAccess(&ent, client, off, n); err != nil {
			s.mu.RUnlock()
			return nil, nil, err
		}
		gen := s.gen[slot]
		dataOff := s.slotOff(slot)
		s.mu.RUnlock()

		if ext := rc.get(fid, slot, gen); ext != nil {
			rc.hits.Add(1)
			rc.bytesCached.Add(int64(n))
			rc.schedule(fid)
			return ext.buf[off : off+n : off+n], ext, nil
		}
		rc.misses.Add(1)

		// Miss: one disk pass loads the whole extent, so the sibling
		// header probe and the payload fetch that follow it — and every
		// later reader of this fragment — hit.
		buf := wire.GetBuffer(int(ent.size))
		if err := s.d.ReadAt(buf, dataOff); err != nil {
			wire.PutBuffer(buf)
			return nil, nil, fmt.Errorf("read fragment data: %w", err)
		}
		rc.bytesDisk.Add(int64(ent.size))
		// Same revalidation as the uncached path (see Store.Read): the
		// lock was dropped across the disk read, so the slot may have
		// been recycled mid-read. Never cache — or serve — such bytes.
		s.mu.RLock()
		cur, ok := s.bySID[fid]
		valid := ok && cur == slot && s.gen[slot] == gen
		s.mu.RUnlock()
		if !valid {
			wire.PutBuffer(buf)
			continue
		}
		ext := rc.insert(fid, slot, gen, buf)
		rc.schedule(fid)
		return ext.buf[off : off+n : off+n], ext, nil
	}
}

// readaheadWorker serves the prefetch queue: for each scheduled FID it
// loads the next depth fragments of the same client log into the cache.
// All disk reads happen outside the store mutex, through the same
// fill-and-revalidate protocol as foreground misses. The worker runs
// until Store.Close closes raStop; hints already queued at shutdown are
// dropped — readahead is advisory.
func (s *Store) readaheadWorker(rc *readCache) {
	defer close(rc.raDone)
	for {
		select {
		case <-rc.raStop:
			return
		case fid := <-rc.raCh:
			for i := uint64(1); i <= uint64(rc.depth); i++ {
				s.prefetchExtent(rc, wire.MakeFID(fid.Client(), fid.Seq()+i))
			}
		}
	}
}

// prefetchExtent speculatively loads one fragment into the cache.
// Absent fragments (this server doesn't hold every member of a stripe)
// and races with Delete are silently skipped — readahead is advisory.
func (s *Store) prefetchExtent(rc *readCache, fid wire.FID) {
	s.mu.RLock()
	slot, ok := s.bySID[fid]
	if !ok || s.slots[slot].prealloc() {
		s.mu.RUnlock()
		return
	}
	size := s.slots[slot].size
	gen := s.gen[slot]
	dataOff := s.slotOff(slot)
	s.mu.RUnlock()

	if rc.contains(fid, slot, gen) {
		return
	}
	buf := wire.GetBuffer(int(size))
	if err := s.d.ReadAt(buf, dataOff); err != nil {
		wire.PutBuffer(buf)
		return
	}
	s.mu.RLock()
	cur, ok := s.bySID[fid]
	valid := ok && cur == slot && s.gen[slot] == gen
	s.mu.RUnlock()
	if !valid {
		wire.PutBuffer(buf)
		return
	}
	rc.bytesDisk.Add(int64(size))
	rc.raLoads.Add(1)
	rc.fill(fid, slot, gen, buf)
}

// ReadExtent is Read with the serving tier in front: when the extent
// cache is enabled the returned bytes alias a cached extent and the
// second return value carries the reference the caller must release
// once the payload has been written or copied. With the cache disabled
// it behaves exactly like Read (pooled buffer, nil extent).
// swarmlint:returns-ref
func (s *Store) ReadExtent(client wire.ClientID, fid wire.FID, off, n uint32) ([]byte, *Extent, error) {
	rc := s.rcache
	if rc == nil {
		data, err := s.Read(client, fid, off, n)
		return data, nil, err
	}
	return s.readExtent(rc, client, fid, off, n)
}
