package core

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"swarm/internal/transport"
	"swarm/internal/wire"
)

// fragCache holds recently reconstructed fragments so a stream of reads
// against a failed server doesn't redo the XOR per block.
type fragCache struct {
	mu   sync.Mutex
	cap  int
	m    map[wire.FID]cachedFrag
	fifo []wire.FID
}

type cachedFrag struct {
	header  Header
	payload []byte
}

func newFragCache(capacity int) *fragCache {
	return &fragCache{cap: capacity, m: make(map[wire.FID]cachedFrag, capacity)}
}

func (c *fragCache) get(fid wire.FID) (cachedFrag, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.m[fid]
	return f, ok
}

func (c *fragCache) put(fid wire.FID, f cachedFrag) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[fid]; ok {
		c.m[fid] = f
		return
	}
	for len(c.m) >= c.cap && len(c.fifo) > 0 {
		old := c.fifo[0]
		c.fifo = c.fifo[1:]
		delete(c.m, old)
	}
	c.m[fid] = f
	c.fifo = append(c.fifo, fid)
}

func (c *fragCache) drop(fid wire.FID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, fid)
}

// Read returns n bytes starting at off within the block at addr. The fast
// paths serve from the open fragment buffer or in-flight fragments
// (read-your-writes); otherwise the block's server is contacted, and if it
// is unavailable the fragment is reconstructed from its stripe (§2.3.3).
func (l *Log) Read(addr BlockAddr, off, n uint32) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	// Local paths: open fragment or sealed-but-inflight payloads.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	var local []byte
	if l.cur != nil && l.cur.fid == addr.FID {
		local = l.cur.payload[:l.cur.off]
	} else if p, ok := l.inflight[addr.FID]; ok {
		local = p
	}
	if local != nil {
		start := int(addr.Off) + EntryHdrSize + int(off)
		end := start + int(n)
		if end > len(local) {
			l.mu.Unlock()
			return nil, fmt.Errorf("%w: read [%d,%d) beyond fragment data %d", ErrBadFragment, start, end, len(local))
		}
		out := make([]byte, n)
		copy(out, local[start:end])
		l.mu.Unlock()
		return out, nil
	}
	l.mu.Unlock()

	// Reconstructed-fragment cache.
	if f, ok := l.recon.get(addr.FID); ok {
		return sliceBlock(f.payload, addr, off, n)
	}

	// Remote path. With readahead enabled, fetch and cache the whole
	// fragment: sequential cold reads then cost one round trip per
	// fragment instead of one per block.
	if l.readahead {
		h, payload, err := l.FetchFragment(addr.FID)
		if err != nil {
			return nil, err
		}
		l.recon.put(addr.FID, cachedFrag{header: h, payload: payload})
		return sliceBlock(payload, addr, off, n)
	}
	conn := l.lookupConn(addr.FID)
	if conn != nil {
		data, err := conn.Read(addr.FID, HeaderSize+addr.Off+EntryHdrSize+off, n)
		if err == nil {
			return data, nil
		}
		if isHardReadError(err) {
			return nil, err
		}
		// Server unavailable or fragment missing: fall through.
	}
	h, payload, err := l.reconstructFragment(addr.FID)
	if err != nil {
		return nil, err
	}
	l.recon.put(addr.FID, cachedFrag{header: h, payload: payload})
	return sliceBlock(payload, addr, off, n)
}

// isHardReadError reports errors that reconstruction cannot help with
// (bad request, access denied).
func isHardReadError(err error) bool {
	return wire.IsStatus(err, wire.StatusBadRequest) || wire.IsStatus(err, wire.StatusAccess)
}

func sliceBlock(payload []byte, addr BlockAddr, off, n uint32) ([]byte, error) {
	start := int(addr.Off) + EntryHdrSize + int(off)
	end := start + int(n)
	if start > len(payload) || end > len(payload) {
		return nil, fmt.Errorf("%w: read [%d,%d) beyond fragment data %d", ErrBadFragment, start, end, len(payload))
	}
	out := make([]byte, n)
	copy(out, payload[start:end])
	return out, nil
}

// FetchFragment returns a fragment's header and payload, reconstructing
// if its server is unavailable. The cleaner and recovery scan use it.
func (l *Log) FetchFragment(fid wire.FID) (Header, []byte, error) {
	// Local copies first.
	l.mu.Lock()
	if l.cur != nil && l.cur.fid == fid {
		fb := l.cur
		h := Header{
			Kind: FragData, Width: uint8(l.width), Index: fb.index,
			FID: fb.fid, StripeID: fb.stripe, DataLen: uint32(fb.off),
		}
		l.fillGroup(&h)
		payload := make([]byte, fb.off)
		copy(payload, fb.payload[:fb.off])
		l.mu.Unlock()
		return h, payload, nil
	}
	// Sealed fragments whose store is in flight — or was skipped as a
	// degraded write — are served from the read-your-writes map, so the
	// cleaner and recovery never pay a reconstruction for data this
	// client still holds.
	if p, ok := l.inflight[fid]; ok {
		seq := fid.Seq()
		h := Header{
			Kind: FragData, Width: uint8(l.width), Index: uint8(seq % uint64(l.width)),
			FID: fid, StripeID: l.stripeOf(seq), DataLen: uint32(len(p)),
			PayloadCRC: crc32.ChecksumIEEE(p),
		}
		l.fillGroup(&h)
		payload := append([]byte(nil), p...)
		l.mu.Unlock()
		return h, payload, nil
	}
	l.mu.Unlock()

	if f, ok := l.recon.get(fid); ok {
		return f.header, f.payload, nil
	}
	if h, payload, err := l.fetchDirect(fid); err == nil {
		return h, payload, nil
	}
	h, payload, err := l.reconstructFragment(fid)
	if err != nil {
		return Header{}, nil, err
	}
	l.recon.put(fid, cachedFrag{header: h, payload: payload})
	return h, payload, nil
}

// fetchDirect reads a fragment from the server believed to hold it,
// falling back to broadcast discovery — the self-hosting mechanism that
// needs no fragment directory (§2.3.3).
func (l *Log) fetchDirect(fid wire.FID) (Header, []byte, error) {
	conn := l.lookupConn(fid)
	if conn == nil {
		found := transport.Broadcast(l.servers, fid)
		if len(found) == 0 {
			return Header{}, nil, fmt.Errorf("%w: fragment %v not found on any server", ErrLost, fid)
		}
		conn = found[0]
		l.mu.Lock()
		l.locations[fid] = conn.ID()
		l.stats.BroadcastFallback++
		l.mu.Unlock()
	}
	return readFragmentFrom(conn, fid)
}

func readFragmentFrom(conn transport.ServerConn, fid wire.FID) (Header, []byte, error) {
	hdrBytes, err := conn.Read(fid, 0, HeaderSize)
	if err != nil {
		return Header{}, nil, err
	}
	h, err := DecodeHeader(hdrBytes)
	if err != nil {
		return Header{}, nil, err
	}
	if h.FID != fid {
		return Header{}, nil, fmt.Errorf("%w: fragment %v claims FID %v", ErrBadFragment, fid, h.FID)
	}
	if h.DataLen == 0 {
		return h, nil, nil
	}
	payload, err := conn.Read(fid, HeaderSize, h.DataLen)
	if err != nil {
		return Header{}, nil, err
	}
	if crc32.ChecksumIEEE(payload) != h.PayloadCRC {
		// A corrupted replica is as good as a missing one; callers fall
		// back to reconstruction from the stripe.
		return Header{}, nil, fmt.Errorf("%w: fragment %v payload checksum mismatch", ErrBadFragment, fid)
	}
	return h, payload, nil
}

// reconstructFragment rebuilds a missing fragment from the surviving
// members of its stripe. Clients reconstruct the fragments they need;
// servers never participate and never learn a reconstruction happened
// (§2.3.3). The stripe is discovered by broadcasting for a neighboring
// fragment — numbering within a stripe is consecutive, so a sibling is
// within MaxWidth-1 sequence numbers — and reading the stripe group from
// its header.
func (l *Log) reconstructFragment(fid wire.FID) (Header, []byte, error) {
	sib, err := l.findSibling(fid)
	if err != nil {
		return Header{}, nil, err
	}
	base := sib.BaseSeq()
	width := int(sib.Width)
	missIdx := int(fid.Seq() - base)
	if missIdx < 0 || missIdx >= width {
		return Header{}, nil, fmt.Errorf("%w: sibling stripe does not contain %v", ErrLost, fid)
	}
	parityIdx := int(sib.StripeID % uint64(width))

	// Fetch every surviving member. All must be present: parity
	// tolerates exactly one missing fragment per stripe.
	var (
		parityHdr     Header
		parityPayload []byte
		others        [][]byte
	)
	for i := 0; i < width; i++ {
		mfid := sib.MemberFID(i)
		if i == missIdx {
			continue
		}
		h, payload, ferr := l.fetchMember(sib, i)
		if ferr != nil {
			return Header{}, nil, fmt.Errorf("%w: stripe member %v also unavailable: %v", ErrLost, mfid, ferr)
		}
		if i == parityIdx {
			parityHdr, parityPayload = h, payload
		} else {
			others = append(others, payload)
		}
	}

	if missIdx == parityIdx {
		// Rebuilding the parity fragment itself: XOR the data members.
		full := make([]byte, l.payloadSize)
		var lens [MaxWidth]uint32
		var maxLen uint32
		for _, p := range others {
			XORInto(full, p)
		}
		// Member lens come from each surviving member's payload length.
		j := 0
		for i := 0; i < width; i++ {
			if i == missIdx {
				continue
			}
			lens[i] = uint32(len(others[j]))
			if lens[i] > maxLen {
				maxLen = lens[i]
			}
			j++
		}
		h := Header{
			Kind: FragParity, Width: uint8(width), Index: uint8(missIdx),
			FID: fid, StripeID: sib.StripeID, DataLen: maxLen,
			Group: sib.Group, MemberLens: lens,
			PayloadCRC: crc32.ChecksumIEEE(full[:maxLen]),
		}
		l.bumpReconStat()
		return h, full[:maxLen], nil
	}

	if len(parityPayload) == 0 && parityHdr.Kind != FragParity {
		return Header{}, nil, fmt.Errorf("%w: no parity fragment for stripe %d", ErrLost, sib.StripeID)
	}
	missingLen := parityHdr.MemberLens[missIdx]
	full := make([]byte, l.payloadSize)
	copy(full, parityPayload)
	for _, p := range others {
		XORInto(full, p)
	}
	h := Header{
		Kind: FragData, Width: uint8(width), Index: uint8(missIdx),
		FID: fid, StripeID: sib.StripeID, DataLen: missingLen,
		Group:      sib.Group,
		PayloadCRC: crc32.ChecksumIEEE(full[:missingLen]),
	}
	l.bumpReconStat()
	return h, full[:missingLen], nil
}

func (l *Log) bumpReconStat() {
	l.mu.Lock()
	l.stats.Reconstructions++
	l.mu.Unlock()
}

// fetchMember reads stripe member i using the sibling header's group
// information, falling back to broadcast.
func (l *Log) fetchMember(sib *Header, i int) (Header, []byte, error) {
	mfid := sib.MemberFID(i)
	if conn, ok := l.byServer[sib.Group[i]]; ok {
		if h, p, err := readFragmentFrom(conn, mfid); err == nil {
			return h, p, nil
		}
	}
	return l.fetchDirect(mfid)
}

// findSibling locates any other fragment of fid's stripe and returns its
// header. Per the paper: "If fragment N needs to be reconstructed, then
// either fragment N-1 or fragment N+1 is in the same stripe. A client
// finds fragment N-1 and N+1 by broadcasting to all storage servers."
func (l *Log) findSibling(fid wire.FID) (*Header, error) {
	seq := fid.Seq()
	for delta := uint64(1); delta < MaxWidth; delta++ {
		for _, cand := range []int64{int64(seq) - int64(delta), int64(seq) + int64(delta)} {
			if cand < 0 {
				continue
			}
			cfid := wire.MakeFID(fid.Client(), uint64(cand))
			h, _, err := l.fetchSiblingHeader(cfid)
			if err != nil {
				continue
			}
			base := h.BaseSeq()
			if seq >= base && seq < base+uint64(h.Width) {
				return h, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: no stripe sibling found for %v", ErrLost, fid)
}

func (l *Log) fetchSiblingHeader(fid wire.FID) (*Header, []byte, error) {
	conn := l.lookupConn(fid)
	if conn == nil {
		found := transport.Broadcast(l.servers, fid)
		if len(found) == 0 {
			return nil, nil, errors.New("not found")
		}
		conn = found[0]
	}
	hdrBytes, err := conn.Read(fid, 0, HeaderSize)
	if err != nil {
		// The recorded location may be a down server; try broadcast once.
		found := transport.Broadcast(l.servers, fid)
		if len(found) == 0 {
			return nil, nil, err
		}
		hdrBytes, err = found[0].Read(fid, 0, HeaderSize)
		if err != nil {
			return nil, nil, err
		}
	}
	h, err := DecodeHeader(hdrBytes)
	if err != nil {
		return nil, nil, err
	}
	return &h, nil, nil
}
