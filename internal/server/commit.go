package server

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"swarm/internal/disk"
)

// This file implements the store's group-commit machinery (DESIGN.md
// §3.10). Two cooperating pieces move the commit path off the old
// one-lock-two-fsyncs-per-store design:
//
//   - syncCoalescer shares physical d.Sync calls between concurrent
//     committers (classic WAL group commit): a caller whose writes are
//     already on the disk's queue registers and is satisfied by any
//     barrier sync that *starts* after registration.
//
//   - entryCommitter batches slot-entry writes: concurrent commits that
//     land inside one coalescing window are written by a single leader
//     (sorted by disk offset) and made durable by one shared sync.
//
// Ownership rule: neither structure ever takes the store mutex, so
// callers may hold it (Delete, Prealloc do) or not (Store does not)
// while waiting on a barrier — the leader of a batch never needs s.mu.

// syncCoalescer shares fsyncs among concurrent committers. A caller must
// finish its own WriteAt calls before calling Sync; the coalescer then
// guarantees the caller does not return until a d.Sync that began after
// registration has completed — the invariant that makes an acknowledged
// store durable.
type syncCoalescer struct {
	d disk.Disk

	mu      sync.Mutex
	idle    *sync.Cond // signaled when an in-flight d.Sync finishes
	syncing bool       // a physical d.Sync is running; guarded by mu
	pending *syncBatch // batch currently accepting joiners, if any; guarded by mu

	// window is the group-commit delay: how long a batch leader waits
	// for followers before issuing the sync. Zero (the default) relies
	// on the natural window — batches accumulate while the previous
	// sync is in flight. Guarded by mu.
	window time.Duration

	requests int64 // logical barriers requested; guarded by mu
	syncs    int64 // physical d.Sync calls issued; guarded by mu
}

type syncBatch struct {
	done chan struct{}
	err  error
}

func newSyncCoalescer(d disk.Disk) *syncCoalescer {
	c := &syncCoalescer{d: d}
	c.idle = sync.NewCond(&c.mu)
	return c
}

func (c *syncCoalescer) setWindow(w time.Duration) {
	c.mu.Lock()
	c.window = w
	c.mu.Unlock()
}

// Sync registers with the current batch (or leads a new one) and blocks
// until a physical sync covering the caller's writes has completed.
func (c *syncCoalescer) Sync() error {
	c.mu.Lock()
	c.requests++
	if b := c.pending; b != nil {
		// A batch is forming and its sync has not started: join it.
		c.mu.Unlock()
		<-b.done
		return b.err
	}
	// Lead a new batch. It stays open to joiners until the previous
	// sync (if any) finishes and the optional window elapses.
	b := &syncBatch{done: make(chan struct{})}
	c.pending = b
	if w := c.window; w > 0 {
		c.mu.Unlock()
		time.Sleep(w)
		c.mu.Lock()
	} else if !c.syncing {
		// Idle coalescer, no configured window: linger a few scheduler
		// yields (microseconds, far below time.Sleep granularity) so
		// committers arriving near-simultaneously on other CPUs join
		// this batch instead of each paying a private fsync.
		for i := 0; i < 4 && !c.syncing; i++ {
			c.mu.Unlock()
			runtime.Gosched()
			c.mu.Lock()
		}
	}
	for c.syncing {
		c.idle.Wait()
	}
	// Close the batch before syncing: a writer arriving from here on
	// cannot prove its data predates the sync, so it starts a new one.
	c.pending = nil
	c.syncing = true
	c.syncs++
	c.mu.Unlock()

	b.err = c.d.Sync()

	c.mu.Lock()
	c.syncing = false
	c.idle.Broadcast()
	c.mu.Unlock()
	close(b.done)
	return b.err
}

// counters returns (logical requests, physical syncs).
func (c *syncCoalescer) counters() (requests, syncs int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.requests, c.syncs
}

// entryReq is one slot-entry write queued for a batched commit.
type entryReq struct {
	off int64
	buf []byte
	err error
}

type entryBatch struct {
	done chan struct{}
	reqs []*entryReq
}

// entryCommitter batches slot-entry writes. Entries from commits that
// overlap in time are written together by one leader — sorted by offset,
// so adjacent slots become near-sequential disk writes — and committed
// by a single coalesced sync. Per-entry write errors stay with their
// entry; a sync failure fails every entry in the batch (none is provably
// durable).
type entryCommitter struct {
	d    disk.Disk
	sync *syncCoalescer // shared with the data-barrier path

	mu      sync.Mutex
	idle    *sync.Cond
	writing bool        // guarded by mu
	pending *entryBatch // guarded by mu

	batches int64 // batches written; guarded by mu
	entries int64 // entries across all batches; guarded by mu
}

func newEntryCommitter(d disk.Disk, sc *syncCoalescer) *entryCommitter {
	c := &entryCommitter{d: d, sync: sc}
	c.idle = sync.NewCond(&c.mu)
	return c
}

// commit durably writes one encoded slot entry at off, sharing the write
// pass and the fsync with any concurrent commits.
func (c *entryCommitter) commit(off int64, buf []byte) error {
	req := &entryReq{off: off, buf: buf}
	c.mu.Lock()
	if b := c.pending; b != nil {
		b.reqs = append(b.reqs, req)
		c.mu.Unlock()
		<-b.done
		return req.err
	}
	b := &entryBatch{done: make(chan struct{}), reqs: []*entryReq{req}}
	c.pending = b
	for c.writing {
		c.idle.Wait()
	}
	c.pending = nil
	c.writing = true
	c.mu.Unlock()

	sort.Slice(b.reqs, func(i, j int) bool { return b.reqs[i].off < b.reqs[j].off })
	for _, r := range b.reqs {
		if err := c.d.WriteAt(r.buf, r.off); err != nil {
			r.err = err
		}
	}
	serr := c.sync.Sync()
	for _, r := range b.reqs {
		if r.err == nil {
			r.err = serr
		}
	}

	c.mu.Lock()
	c.writing = false
	c.batches++
	c.entries += int64(len(b.reqs))
	c.idle.Broadcast()
	c.mu.Unlock()
	close(b.done)
	return req.err
}

// counters returns (batches, entries batched).
func (c *entryCommitter) counters() (batches, entries int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batches, c.entries
}
