package core

import (
	"bytes"
	"errors"
	"testing"

	"swarm/internal/disk"
	"swarm/internal/server"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// addServer grows the cluster by one in-process server and admits it to
// the log, returning the new server's ID.
func (c *cluster) addServer(t *testing.T, l *Log) wire.ServerID {
	t.Helper()
	d := disk.NewMemDisk(4 << 20)
	st, err := server.Format(d, server.Config{FragmentSize: testFragSize})
	if err != nil {
		t.Fatal(err)
	}
	id := wire.ServerID(len(c.conns) + 1)
	fl := transport.NewFlaky(transport.NewLocal(id, st, testClient))
	c.stores = append(c.stores, st)
	c.flaky = append(c.flaky, fl)
	c.conns = append(c.conns, fl)
	if _, err := l.AddServer(fl, 0); err != nil {
		t.Fatal(err)
	}
	return id
}

// fragsOn lists the client's fragments on one cluster server.
func (c *cluster) fragsOn(t *testing.T, id wire.ServerID) []wire.FID {
	t.Helper()
	fids, err := c.conns[id-1].List(testClient)
	if err != nil {
		t.Fatal(err)
	}
	return fids
}

func TestAddServerBumpsEpochAndStampsHeaders(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	defer l.Close()

	var before, after []BlockAddr
	for i := 0; i < 12; i++ {
		before = append(before, mustAppend(t, l, 7, blockPattern(i, 1024)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.PlacementEpoch(); got != 0 {
		t.Fatalf("epoch before join = %d", got)
	}
	newID := c.addServer(t, l)
	if got := l.PlacementEpoch(); got != 1 {
		t.Fatalf("epoch after join = %d", got)
	}
	for i := 0; i < 12; i++ {
		after = append(after, mustAppend(t, l, 7, blockPattern(100+i, 1024)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	// Old stripes carry epoch 0, new stripes epoch 1, and every block
	// written on either side of the barrier reads back intact.
	for i, addr := range before {
		if !bytes.Equal(mustRead(t, l, addr, 1024), blockPattern(i, 1024)) {
			t.Fatalf("pre-join block %d corrupted", i)
		}
		h, _, err := l.FetchFragment(addr.FID)
		if err != nil {
			t.Fatal(err)
		}
		if h.Epoch != 0 {
			t.Fatalf("pre-join fragment stamped epoch %d", h.Epoch)
		}
	}
	sawNew := false
	for i, addr := range after {
		if !bytes.Equal(mustRead(t, l, addr, 1024), blockPattern(100+i, 1024)) {
			t.Fatalf("post-join block %d corrupted", i)
		}
		h, _, err := l.FetchFragment(addr.FID)
		if err != nil {
			t.Fatal(err)
		}
		if h.Epoch != 1 {
			t.Fatalf("post-join fragment stamped epoch %d", h.Epoch)
		}
	}
	// The new server participates in post-join placement.
	if fids := c.fragsOn(t, newID); len(fids) > 0 {
		sawNew = true
	}
	if !sawNew {
		t.Fatal("new server received no fragments after joining")
	}
}

func TestAddServerRejectsDuplicateAndWrongGeometry(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	defer l.Close()

	if _, err := l.AddServer(c.conns[0], 0); !errors.Is(err, ErrConfig) {
		t.Fatalf("duplicate join: %v", err)
	}
	d := disk.NewMemDisk(4 << 20)
	st, err := server.Format(d, server.Config{FragmentSize: testFragSize * 2})
	if err != nil {
		t.Fatal(err)
	}
	odd := transport.NewLocal(9, st, testClient)
	if _, err := l.AddServer(odd, 0); !errors.Is(err, ErrConfig) {
		t.Fatalf("mismatched fragment size: %v", err)
	}
	// Neither failed join may have disturbed the placement epoch.
	if got := l.PlacementEpoch(); got != 0 {
		t.Fatalf("epoch after failed joins = %d", got)
	}
}

func TestDrainStopsNewPlacement(t *testing.T) {
	c := newTestCluster(t, 4)
	l, _ := c.open(t, Config{Width: 3})
	defer l.Close()

	for i := 0; i < 9; i++ {
		mustAppend(t, l, 7, blockPattern(i, 1024))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	victim := wire.ServerID(2)
	had := len(c.fragsOn(t, victim))
	if had == 0 {
		t.Fatal("victim held nothing before drain; test is vacuous")
	}
	if _, err := l.DrainServer(victim); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		mustAppend(t, l, 7, blockPattern(100+i, 1024))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := len(c.fragsOn(t, victim)); got != had {
		t.Fatalf("draining server gained fragments: %d -> %d", had, got)
	}
	// Draining again is a no-op, not an error.
	if _, err := l.DrainServer(victim); err != nil {
		t.Fatal(err)
	}
}

func TestDrainBelowWidthRejected(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{Width: 3})
	defer l.Close()
	if _, err := l.DrainServer(1); !errors.Is(err, ErrConfig) {
		t.Fatalf("drain below width: %v", err)
	}
}

// TestManualDrainToRemoval walks the full lifecycle with the same
// primitives the background rebalancer uses: drain, migrate each
// fragment (fetch → place → store → verify → delete), remove, and read
// everything back through fall-forward resolution.
func TestManualDrainToRemoval(t *testing.T) {
	c := newTestCluster(t, 4)
	l, _ := c.open(t, Config{Width: 3})
	defer l.Close()

	var addrs []BlockAddr
	for i := 0; i < 18; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 1024)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	victim := wire.ServerID(3)

	// Removal without a drain must be refused.
	if _, err := l.RemoveServer(victim); !errors.Is(err, ErrConfig) {
		t.Fatalf("remove active server: %v", err)
	}
	if _, err := l.DrainServer(victim); err != nil {
		t.Fatal(err)
	}
	// Removal while fragments remain must be refused.
	if _, err := l.RemoveServer(victim); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove non-empty server: %v", err)
	}

	fids, err := l.ListServer(victim)
	if err != nil {
		t.Fatal(err)
	}
	src := l.ServerConn(victim)
	for _, fid := range fids {
		h, payload, err := l.FetchFrameFrom(victim, fid)
		if err != nil {
			t.Fatal(err)
		}
		target, err := l.MigrationTarget(&h, victim)
		if err != nil {
			t.Fatal(err)
		}
		if target.ID() == victim {
			t.Fatal("migration target is the source")
		}
		if err := l.StoreFrame(target, &h, payload); err != nil {
			t.Fatal(err)
		}
		if err := l.VerifyFrameOn(target, &h); err != nil {
			t.Fatal(err)
		}
		l.NoteMigrated(fid, target.ID(), len(payload))
		if err := l.DeleteFrom(src, fid); err != nil {
			t.Fatal(err)
		}
	}
	if left := c.fragsOn(t, victim); len(left) != 0 {
		t.Fatalf("%d fragments left after manual drain", len(left))
	}
	if _, err := l.RemoveServer(victim); err != nil {
		t.Fatal(err)
	}
	if l.ServerConn(victim) != nil {
		t.Fatal("removed server still resolvable")
	}
	// Every block written before the removal still reads, including
	// members that lived on the victim (now found at their new homes).
	for i, addr := range addrs {
		if !bytes.Equal(mustRead(t, l, addr, 1024), blockPattern(i, 1024)) {
			t.Fatalf("block %d lost after removal", i)
		}
	}
	if st := l.Stats(); st.RebalancedFragments != int64(len(fids)) {
		t.Fatalf("RebalancedFragments = %d, moved %d", st.RebalancedFragments, len(fids))
	}
}

// TestMigrationTargetAvoidsStripeMembers: the chosen target never
// already holds another member of the same stripe.
func TestMigrationTargetAvoidsStripeMembers(t *testing.T) {
	c := newTestCluster(t, 5)
	l, _ := c.open(t, Config{Width: 3})
	defer l.Close()

	for i := 0; i < 12; i++ {
		mustAppend(t, l, 7, blockPattern(i, 1024))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	victim := wire.ServerID(1)
	if _, err := l.DrainServer(victim); err != nil {
		t.Fatal(err)
	}
	fids, err := l.ListServer(victim)
	if err != nil {
		t.Fatal(err)
	}
	for _, fid := range fids {
		h, _, err := l.FetchFrameFrom(victim, fid)
		if err != nil {
			t.Fatal(err)
		}
		target, err := l.MigrationTarget(&h, victim)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < int(h.Width); i++ {
			if i == int(h.Index) {
				continue
			}
			if _, ok, err := c.conns[target.ID()-1].Has(h.MemberFID(i)); err == nil && ok {
				t.Fatalf("target %d already holds stripe sibling %v", target.ID(), h.MemberFID(i))
			}
		}
	}
}

// TestRecoveryAcrossEpochs: a new session (fresh epoch numbering) must
// still recover and read stripes written under older sessions' later
// epochs — header epochs it has never seen degrade to discovery.
func TestRecoveryAcrossEpochs(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})

	var addrs []BlockAddr
	for i := 0; i < 6; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 1024)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	c.addServer(t, l)
	for i := 6; i < 12; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 1024)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen over all four servers: epoch numbering restarts at 0, yet
	// fragments stamped epoch 1 by the previous session must be found.
	l2, rec := c.open(t, Config{})
	defer l2.Close()
	if rec.Fresh {
		t.Fatal("recovery found nothing")
	}
	for i, addr := range addrs {
		if !bytes.Equal(mustRead(t, l2, addr, 1024), blockPattern(i, 1024)) {
			t.Fatalf("block %d unreadable after recovery across epochs", i)
		}
	}
}
