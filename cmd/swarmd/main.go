// Command swarmd runs one Swarm storage server: a fragment repository on
// a local disk, serving the wire protocol over TCP. Start several swarmd
// processes and point clients (swarmctl, stingfs, or the swarm package)
// at them.
//
// Usage:
//
//	swarmd -listen :7701 -disk /var/lib/swarm/s1.img -size 1073741824
//	swarmd -listen :7702 -mem -size 268435456
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swarm"
	"swarm/internal/server"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7700", "TCP address to serve the wire protocol on")
		diskPath    = flag.String("disk", "", "backing disk file (created if absent); empty with -mem for memory")
		mem         = flag.Bool("mem", false, "use an in-memory disk (data lost on exit)")
		size        = flag.Int64("size", 1<<30, "disk capacity in bytes")
		fragSize    = flag.Int("fragsize", 1<<20, "fragment slot size in bytes (must match the cluster)")
		reuse       = flag.Bool("reuse", false, "reopen an existing formatted disk instead of formatting")
		commitDelay = flag.Duration("commit-delay", 0,
			"group-commit coalescing window (0 = opportunistic; see README on tuning)")
		readCache = flag.Int64("read-cache", 0,
			"read cache size in bytes (0 = default 64 MB, negative = disabled)")
		readahead = flag.Int("readahead", 0,
			"fragments prefetched per cache hit (0 = default 4, negative = disabled)")
		qos = flag.Bool("qos", false,
			"enable the multi-tenant weighted-fair scheduler (off = FIFO; see README on multi-tenant tuning)")
		qosWeights = flag.String("qos-weights", "",
			`per-tenant fair-share weights, e.g. "default=1,7=4" (implies -qos)`)
		qosQuota = flag.String("qos-quota", "",
			`per-tenant quotas as client=byterate[:oprate], e.g. "7=8M:200,default=1M" (implies -qos)`)
	)
	flag.Parse()
	if err := run(*listen, *diskPath, *mem, *size, *fragSize, *reuse, *commitDelay, *readCache, *readahead,
		*qos, *qosWeights, *qosQuota); err != nil {
		fmt.Fprintln(os.Stderr, "swarmd:", err)
		os.Exit(1)
	}
}

func run(listen, diskPath string, mem bool, size int64, fragSize int, reuse bool, commitDelay time.Duration, readCache int64, readahead int, qos bool, qosWeights, qosQuota string) error {
	if !mem && diskPath == "" {
		return fmt.Errorf("need -disk PATH or -mem")
	}
	if mem {
		diskPath = ""
	}
	var qosCfg *server.QoSConfig
	if qos || qosWeights != "" || qosQuota != "" {
		cfg, err := server.ParseQoSFlags(qosWeights, qosQuota)
		if err != nil {
			return err
		}
		qosCfg = &cfg
	}
	logger := log.New(os.Stderr, "swarmd: ", log.LstdFlags)
	srv, err := swarm.NewServer(swarm.ServerOptions{
		DiskPath:     diskPath,
		DiskBytes:    size,
		FragmentSize: fragSize,
		Listen:       listen,
		Logger:       logger,
		Reuse:        reuse,
		CommitDelay:  commitDelay,

		ReadCacheBytes:     readCache,
		ReadaheadFragments: readahead,
		QoS:                qosCfg,
	})
	if err != nil {
		return err
	}
	fragsz, total, free, frags := srv.Stats()
	logger.Printf("serving on %s: %d slots of %d KB (%d free, %d fragments)",
		srv.Addr(), total, fragsz>>10, free, frags)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Printf("shutting down")
	return srv.Close()
}
