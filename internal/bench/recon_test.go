package bench

import (
	"strings"
	"testing"
	"time"
)

// The reconstruction benchmark is sleep-dominated (injected latency
// dwarfs compute), so unlike the 1999-model shapes its ratios are stable
// under -race and on loaded hosts; the 2x bar is enforced always.
func TestReconBenchEngineBeatsSerial(t *testing.T) {
	rows, err := RunReconSweep([]int{4, 8}, 2, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Fragments != 2 {
			t.Fatalf("width %d: %d lost fragments, want one per stripe", r.Width, r.Fragments)
		}
		if r.Speedup <= 1 {
			t.Fatalf("width %d: engine (%v) not faster than serial (%v)", r.Width, r.EngineTime, r.SerialTime)
		}
		t.Logf("width %d: serial %v, engine %v, %.2fx", r.Width, r.SerialTime, r.EngineTime, r.Speedup)
	}
	// Width 8: serial pays 2 round trips for each of 7 survivors; the
	// engine pays ~4 total (failed direct read, sibling probe, parallel
	// header + payload). ≥ 2x is a conservative floor on the ≈3.5x gap.
	if rows[1].Speedup < 2 {
		t.Fatalf("width 8 speedup = %.2fx, want ≥ 2x (serial %v, engine %v)",
			rows[1].Speedup, rows[1].SerialTime, rows[1].EngineTime)
	}

	var sb strings.Builder
	PrintReconResults(&sb, rows)
	if !strings.Contains(sb.String(), "speedup") {
		t.Fatalf("render missing speedup:\n%s", sb.String())
	}
}
