package core

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"

	"swarm/internal/erasure"
	"swarm/internal/fragio"
	"swarm/internal/model"
	"swarm/internal/placement"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// Log errors.
var (
	// ErrClosed is returned for operations on a closed log.
	ErrClosed = errors.New("core: log closed")
	// ErrLost is returned when a fragment is unavailable and cannot be
	// reconstructed (more failures than parity tolerates).
	ErrLost = errors.New("core: fragment lost")
	// ErrConfig is returned for invalid configurations.
	ErrConfig = errors.New("core: invalid config")
)

// Config parameterizes one client's log.
type Config struct {
	// Client is this log's owner; it scopes the FID space.
	Client wire.ClientID
	// Servers are the storage servers, in cluster order. Placement is
	// deterministic over this order, so give every client the same list.
	Servers []transport.ServerConn
	// FragmentSize is the fragment size in bytes; it must match the
	// servers' slot size. Defaults to 1 MB (the paper's prototype).
	FragmentSize int
	// Width is the stripe width including parity. Defaults to
	// min(len(Servers), MaxWidth). Must be ≤ len(Servers) so stripe
	// members land on distinct servers.
	Width int
	// DisableParity turns off parity fragments (used by the raw-write
	// benchmark's single-server configuration, and by anyone who prefers
	// capacity over availability).
	DisableParity bool
	// ParityShards is the number of redundancy fragments per stripe (m):
	// the stripe survives any m simultaneous member losses. Defaults
	// to 1 (the paper's single rotating parity). Must leave at least one
	// data slot (m < Width).
	ParityShards int
	// Codec selects the erasure code. Defaults to XOR for ParityShards
	// ≤ 1 (byte-identical to the pre-erasure format) and Reed–Solomon
	// otherwise. The codec is stamped into every fragment header, so
	// readers decode each stripe with the code that wrote it and logs
	// may mix formats freely.
	Codec erasure.Kind
	// PipelineDepth bounds in-flight fragment stores per server. The
	// default of 2 mirrors the prototype: one fragment crosses the
	// network while the server writes the previous one to disk (§2.1.2).
	PipelineDepth int
	// PreallocStripes reserves every member slot of a stripe on its
	// servers when the stripe opens (the paper's preallocate operation,
	// §2.2), guaranteeing that a started stripe — including its parity —
	// can always be stored even if other clients fill the servers in the
	// meantime. Costs one control round trip per member per stripe.
	PreallocStripes bool
	// ReadaheadFragments, when positive, enables fragment-grained read
	// caching: a block read that misses fetches the whole fragment and
	// caches it, so sequential cold reads cost one server round trip per
	// fragment instead of one per block. This is the prefetching the
	// paper names as the obvious missing read optimization (§3.4: "the
	// clients do not prefetch blocks from the servers. Both of these
	// optimizations would greatly improve the performance of reads that
	// miss in the client cache"). The value is the number of fragments
	// held.
	ReadaheadFragments int
	// FetchConcurrency bounds concurrent fragment fetches per server in
	// the fragment I/O engine — the fan-out width available to stripe
	// reconstruction, cleaner scans, recovery, and readahead. Default 4.
	FetchConcurrency int
	// MaxInFlight, when positive, caps combined concurrent operations
	// (stores + fetches) per server in the engine, matching the
	// transport's per-connection multiplexing budget. 0 means no
	// combined cap.
	MaxInFlight int
	// ACLs, when non-empty, protects every stored fragment with the
	// given per-server access control list (each server assigns its own
	// AIDs, hence the map). Fragments are stored with a single byte
	// range covering the whole fragment (§2.3.2).
	ACLs map[wire.ServerID]wire.AID
	// CPU, when set, charges client log-processing work to a modeled
	// processor (benchmarks reproducing the paper's 200 MHz clients).
	CPU *model.CPU
	// FragOverhead is fixed client work charged per sealed fragment.
	FragOverhead time.Duration
}

// DefaultFragmentSize is the paper's fragment size.
const DefaultFragmentSize = 1 << 20

// fragBuilder accumulates entries for the currently open fragment.
type fragBuilder struct {
	fid     wire.FID
	stripe  uint64
	index   uint8
	payload []byte
	off     int
}

// sealedFrag is a fragment ready to ship to its server.
type sealedFrag struct {
	conn    transport.ServerConn
	fid     wire.FID
	frame   []byte // header + payload[:dataLen]
	mark    bool
	payload []byte // payload view for read-your-writes
}

// Log is one client's striped log.
type Log struct {
	cfg         Config
	client      wire.ClientID
	place       *placement.Map // versioned server membership; owns all conn lookup
	width       int
	parity      bool
	nparity     int          // parity shards per stripe (0 when parity is off)
	codec       erasure.Code // nil when parity is off
	fragSize    int
	payloadSize int

	mu         sync.Mutex
	closed     bool                       // guarded by mu
	seq        uint64                     // next fragment sequence number; guarded by mu
	cur        *fragBuilder               // guarded by mu
	pacc       *parityAccum               // guarded by mu
	ckpts      map[ServiceID]BlockAddr    // guarded by mu
	registered map[ServiceID]bool         // guarded by mu
	locations  map[wire.FID]wire.ServerID // guarded by mu
	inflight   map[wire.FID][]byte        // guarded by mu
	degraded   map[uint64]map[wire.FID]wire.ServerID // per-stripe set of stores skipped: server unreachable, stripe still redundancy-covered; guarded by mu
	pendingDel map[wire.FID]wire.ServerID // reclaim deletes deferred: server unreachable when its stripe died; guarded by mu
	prealloced map[uint64]bool            // stripes whose slots have been reserved; guarded by mu
	needPre    []uint64                   // stripes awaiting preallocation; guarded by mu
	// stripeEpochs pins each live stripe written this session to the
	// placement epoch it opened under; membership changes close the open
	// stripe first, so a stripe is wholly placed under one view. Entries
	// die with their stripe (ReclaimStripe). Guarded by mu.
	stripeEpochs map[uint64]uint32
	// acls is the per-server fragment protection, mutable because
	// AddServer admits new servers with their own AIDs. Guarded by mu.
	acls  map[wire.ServerID]wire.AID
	usage *UsageTable
	recon     *fragCache
	readahead bool
	// prefetching dedups async fragment prefetches: a FID present here
	// has a speculative fetch in flight, so readahead triggers arriving
	// while it runs don't issue duplicates. Guarded by mu. (Deliberately
	// NOT the engine's singleflight: a failed speculative flight must
	// never poison a demand read joined to it.)
	prefetching map[wire.FID]bool

	// engine is the fragment I/O engine: per-server request queues,
	// scatter-gather fetch, singleflight, and the store/retry policy.
	// Every fragment store and fetch goes through it.
	engine *fragio.Engine

	errMu sync.Mutex
	ioErr error

	stats LogStats
}

// LogStats counts log activity.
type LogStats struct {
	BlocksAppended    int64
	RecordsAppended   int64
	BlockBytes        int64 // application payload bytes in blocks
	FragmentsSealed   int64
	ParityFragments   int64
	BytesStored       int64 // total bytes shipped to servers (raw)
	Checkpoints       int64
	Reconstructions   int64
	BroadcastFallback int64
	// PrefetchedFragments counts whole fragments pulled into the client's
	// fragment cache by speculative readahead (Prefetch) rather than by a
	// demand read.
	PrefetchedFragments int64
	// DegradedWrites counts fragment stores skipped because the server
	// was unreachable while the stripe stayed parity-covered; the write
	// path degrades instead of failing (RebuildServer restores them).
	DegradedWrites int64
	// DegradedStripes counts distinct stripes that entered degraded mode.
	DegradedStripes int64
	// DegradedPreallocs counts stripe-slot reservations skipped because
	// the slot's server was unreachable.
	DegradedPreallocs int64
	// DeferredDeletes counts reclaim-time fragment deletions deferred
	// because the fragment's server was unreachable; the stripe is still
	// reclaimed (its data has moved) and the orphan fragment is deleted
	// once the server answers again (FlushDeletes, RebuildServer).
	DeferredDeletes int64
	// MinSpareRedundancy is the distance to data loss: the minimum
	// number of additional member losses any currently degraded stripe
	// can absorb. Equal to ParityShards when nothing is degraded; zero
	// means some stripe is one failure from losing data. Computed at
	// snapshot time, not a counter.
	MinSpareRedundancy int64
	// PlacementEpoch is the head placement-map epoch (how many
	// membership changes this session has published). Snapshot, not a
	// counter.
	PlacementEpoch int64
	// ServersActive and ServersDraining describe the head placement
	// view. Snapshots, not counters.
	ServersActive   int64
	ServersDraining int64
	// RebalancedFragments and RebalancedBytes count fragments the
	// background rebalancer has migrated off draining servers (verified
	// at their new home before the source copy was deleted).
	RebalancedFragments int64
	RebalancedBytes     int64
}

// Open opens (or recovers) a client's log and returns the recovery
// information services need to replay. A fresh log yields an empty
// Recovery.
func Open(cfg Config) (*Log, *Recovery, error) {
	if len(cfg.Servers) == 0 {
		return nil, nil, fmt.Errorf("%w: no servers", ErrConfig)
	}
	if cfg.FragmentSize == 0 {
		cfg.FragmentSize = DefaultFragmentSize
	}
	if cfg.FragmentSize <= HeaderSize+EntryHdrSize {
		return nil, nil, fmt.Errorf("%w: fragment size %d too small", ErrConfig, cfg.FragmentSize)
	}
	if cfg.Width == 0 {
		cfg.Width = len(cfg.Servers)
		if cfg.Width > MaxWidth {
			cfg.Width = MaxWidth
		}
	}
	if cfg.Width < 1 || cfg.Width > MaxWidth {
		return nil, nil, fmt.Errorf("%w: width %d out of range", ErrConfig, cfg.Width)
	}
	if cfg.Width > len(cfg.Servers) {
		return nil, nil, fmt.Errorf("%w: width %d exceeds %d servers", ErrConfig, cfg.Width, len(cfg.Servers))
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 2
	}
	parity := cfg.Width >= 2 && !cfg.DisableParity
	if cfg.ParityShards == 0 {
		cfg.ParityShards = 1
	}
	if cfg.Codec == 0 {
		if cfg.ParityShards > 1 {
			cfg.Codec = erasure.KindRS
		} else {
			cfg.Codec = erasure.KindXOR
		}
	}
	var code erasure.Code
	if parity {
		if cfg.ParityShards >= cfg.Width {
			return nil, nil, fmt.Errorf("%w: %d parity shards leave no data slot in width %d", ErrConfig, cfg.ParityShards, cfg.Width)
		}
		var cerr error
		code, cerr = erasure.New(cfg.Codec, cfg.Width-cfg.ParityShards, cfg.ParityShards)
		if cerr != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrConfig, cerr)
		}
	}
	place, perr := placement.New(cfg.Servers)
	if perr != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrConfig, perr)
	}
	l := &Log{
		cfg:          cfg,
		client:       cfg.Client,
		place:        place,
		width:        cfg.Width,
		parity:       parity,
		codec:        code,
		fragSize:     cfg.FragmentSize,
		payloadSize:  cfg.FragmentSize - HeaderSize,
		ckpts:        make(map[ServiceID]BlockAddr),
		registered:   make(map[ServiceID]bool),
		locations:    make(map[wire.FID]wire.ServerID),
		inflight:     make(map[wire.FID][]byte),
		degraded:     make(map[uint64]map[wire.FID]wire.ServerID),
		pendingDel:   make(map[wire.FID]wire.ServerID),
		prealloced:   make(map[uint64]bool),
		stripeEpochs: make(map[uint64]uint32),
		acls:         make(map[wire.ServerID]wire.AID, len(cfg.ACLs)),
		usage:        NewUsageTable(),
		recon:        newFragCache(max(8, 2*cfg.ReadaheadFragments)),
		readahead:    cfg.ReadaheadFragments > 0,
		prefetching:  make(map[wire.FID]bool),
	}
	for id, aid := range cfg.ACLs {
		l.acls[id] = aid
	}
	if parity {
		l.nparity = cfg.ParityShards
		l.pacc = newParityAccum(code, l.payloadSize)
	}
	l.engine = fragio.New(cfg.Servers, fragio.Options{
		Format:      frameFormat{},
		StoreDepth:  cfg.PipelineDepth,
		FetchDepth:  cfg.FetchConcurrency,
		MaxInFlight: cfg.MaxInFlight,
	})
	// Sanity-check the fragment size against every reachable server: a
	// mismatch would otherwise surface as confusing store failures deep
	// into a run. Unreachable servers are tolerated (recovery handles
	// them), so a degraded cluster still opens.
	for _, sc := range cfg.Servers {
		st, err := sc.Stat()
		if err != nil {
			continue
		}
		if int(st.FragmentSize) != cfg.FragmentSize {
			return nil, nil, fmt.Errorf("%w: server %d uses %d-byte fragments, client configured for %d",
				ErrConfig, sc.ID(), st.FragmentSize, cfg.FragmentSize)
		}
	}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, fmt.Errorf("recover log: %w", err)
	}
	return l, rec, nil
}

// createRecBaseSize is the encoded size of a CreateRecord with an empty
// hint: FID(8) + Off(4) + Len(4) + hint length prefix(4).
const createRecBaseSize = 20

// MaxBlockSize returns the largest block this log accepts. A block and
// its creation record are always co-located in one fragment (so the
// cleaner sees them together), which costs two entry headers plus the
// record body.
func (l *Log) MaxBlockSize() int {
	return l.payloadSize - 2*EntryHdrSize - createRecBaseSize
}

// Client returns the owning client's ID.
func (l *Log) Client() wire.ClientID { return l.client }

// Width returns the stripe width (including parity, when enabled).
func (l *Log) Width() int { return l.width }

// ParityEnabled reports whether stripes carry a parity fragment.
func (l *Log) ParityEnabled() bool { return l.parity }

// Usage returns the log's stripe usage table.
func (l *Log) Usage() *UsageTable { return l.usage }

// Servers returns the log's current server connections (active and
// draining members of the head placement view).
func (l *Log) Servers() []transport.ServerConn { return l.place.Conns() }

// Stats returns a snapshot of activity counters.
func (l *Log) Stats() LogStats {
	head := l.place.Head()
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.MinSpareRedundancy = int64(l.nparity)
	for _, set := range l.degraded {
		if spare := int64(l.nparity - len(set)); spare < s.MinSpareRedundancy {
			s.MinSpareRedundancy = spare
		}
	}
	s.PlacementEpoch = int64(head.Epoch)
	s.ServersActive = int64(head.NumActive())
	s.ServersDraining = int64(len(head.Members) - head.NumActive())
	return s
}

// ParityShards returns the number of redundancy fragments per stripe
// (0 when parity is disabled).
func (l *Log) ParityShards() int { return l.nparity }

// Codec returns the erasure code writing new stripes, or nil when
// parity is disabled.
func (l *Log) Codec() erasure.Code { return l.codec }

// EngineStats returns a snapshot of the fragment I/O engine's counters
// (fetches, gathers, broadcasts, deduplicated flights, store retries).
func (l *Log) EngineStats() fragio.Stats { return l.engine.Stats() }

// RegisterService tells the log a service exists. Registered services
// participate in the checkpoint floor: the cleaner may only reclaim
// stripes older than every registered service's last checkpoint.
func (l *Log) RegisterService(svc ServiceID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.registered[svc] = true
}

// ------------------------------------------------------- stripe geometry

func (l *Log) stripeOf(seq uint64) uint64 { return seq / uint64(l.width) }

// parityIndex returns the first parity member's index within stripe, or
// -1 when parity is disabled. Rotating the parity position by stripe
// number balances server load during reconstruction (§2.1.2). With m
// parity shards the slots are the m consecutive positions starting
// here (mod width); slot j=0 coincides with the classic single-parity
// position, so the legacy format is exactly the m=1 case.
func (l *Log) parityIndex(stripe uint64) int {
	if !l.parity {
		return -1
	}
	return int(stripe % uint64(l.width))
}

// paritySlot returns the member index of stripe's j-th parity shard.
func (l *Log) paritySlot(stripe uint64, j int) int {
	return int((stripe + uint64(j)) % uint64(l.width))
}

// parityOrdinal returns (j, true) when member index idx is stripe's
// j-th parity slot.
func (l *Log) parityOrdinal(stripe uint64, idx int) (int, bool) {
	if !l.parity {
		return 0, false
	}
	d := (idx - int(stripe%uint64(l.width)) + l.width) % l.width
	if d < l.nparity {
		return d, true
	}
	return 0, false
}

// dataOrdinal returns member index idx's data-shard ordinal: its rank
// among the stripe's non-parity slots. This is the shard numbering the
// erasure code sees (data 0..k-1, then parity k..k+m-1).
func (l *Log) dataOrdinal(stripe uint64, idx int) int {
	n := 0
	for x := 0; x < idx; x++ {
		if _, ok := l.parityOrdinal(stripe, x); !ok {
			n++
		}
	}
	return n
}

// epochOfLocked returns the placement epoch stripe was (or will be)
// written under: the epoch pinned when the stripe opened this session,
// else the head epoch. Callers hold mu.
func (l *Log) epochOfLocked(stripe uint64) uint32 {
	if epoch, ok := l.stripeEpochs[stripe]; ok {
		return epoch
	}
	return l.place.Epoch()
}

// connAtLocked resolves the server expected to hold member slot of
// stripe through the placement map, under the stripe's own epoch.
// Resolution falls forward to the head view when the assigned server
// has been removed (its fragments were migrated first). Callers hold mu.
func (l *Log) connAtLocked(stripe uint64, slot int) transport.ServerConn {
	return l.place.Resolve(l.epochOfLocked(stripe), stripe, slot)
}

// connAt is connAtLocked for callers not holding mu.
func (l *Log) connAt(stripe uint64, slot int) transport.ServerConn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.connAtLocked(stripe, slot)
}

// fillGroup records the stripe's member placement in a header being
// sealed. Callers hold mu.
func (l *Log) fillGroup(h *Header) {
	for i := 0; i < l.width; i++ {
		h.Group[i] = l.connAtLocked(h.StripeID, i).ID()
	}
}

// nextDataSeq returns the first sequence number ≥ seq that is not a
// parity slot.
func (l *Log) nextDataSeq(seq uint64) uint64 {
	for l.parity {
		if _, ok := l.parityOrdinal(l.stripeOf(seq), int(seq%uint64(l.width))); !ok {
			break
		}
		seq++
	}
	return seq
}

// ------------------------------------------------------------ append path

// AppendBlock appends a block owned by svc and returns its address. The
// log layer automatically appends a creation record carrying hint, which
// is handed back to the service if the cleaner later moves the block
// (§2.1.4). The address is stable until then.
func (l *Log) AppendBlock(svc ServiceID, data []byte, hint []byte) (BlockAddr, error) {
	recSize := createRecBaseSize + len(hint)
	need := EntrySize(len(data)) + EntrySize(recSize)
	if need > l.payloadSize {
		return BlockAddr{}, fmt.Errorf("%w: %d > %d", ErrBlockTooLarge, len(data), l.MaxBlockSize())
	}
	var addr BlockAddr
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return BlockAddr{}, ErrClosed
		}
		if l.cur == nil {
			l.openFragmentLocked()
		}
		if l.cur.off+need <= l.payloadSize {
			fb := l.cur
			addr = BlockAddr{FID: fb.fid, Off: uint32(fb.off)}
			fb.off = AppendEntry(fb.payload, fb.off, EntryBlock, svc, data)
			rec := EncodeCreateRecord(&CreateRecord{Addr: addr, Len: uint32(len(data)), Hint: hint})
			fb.off = AppendEntry(fb.payload, fb.off, EntryCreate, svc, rec)
			stripe := fb.stripe
			l.stats.BlocksAppended++
			l.stats.BlockBytes += int64(len(data))
			l.mu.Unlock()
			l.drainPreallocs()
			l.usage.AddBlock(stripe, EntrySize(len(data)))
			l.usage.AddRecord(stripe, EntrySize(len(rec)))
			return addr, nil
		}
		sealed := l.sealCurrentLocked(false)
		l.mu.Unlock()
		l.ship(sealed)
	}
}

// DeleteBlock marks a block deleted: a deletion record is appended and
// the block's space becomes reclaimable by the cleaner. The block's
// length must be supplied (services know it from their metadata).
func (l *Log) DeleteBlock(addr BlockAddr, length uint32, svc ServiceID) error {
	rec := EncodeDeleteRecord(&DeleteRecord{Addr: addr, Len: length})
	recAddr, err := l.append(EntryDelete, svc, rec)
	if err != nil {
		return err
	}
	l.usage.AddRecord(l.stripeOf(recAddr.FID.Seq()), EntrySize(len(rec)))
	l.usage.DeleteBlock(l.stripeOf(addr.FID.Seq()), EntrySize(int(length)))
	return nil
}

// AppendRecord appends a service-defined record and returns its position.
// Record writes are atomic and ordered (§2.1.1): the storage server's
// atomic fragment store provides atomicity, and the single append point
// provides ordering.
func (l *Log) AppendRecord(svc ServiceID, payload []byte) (BlockAddr, error) {
	if len(payload) > l.MaxBlockSize() {
		return BlockAddr{}, fmt.Errorf("%w: record %d > %d", ErrBlockTooLarge, len(payload), l.MaxBlockSize())
	}
	addr, err := l.append(EntryRecord, svc, payload)
	if err != nil {
		return BlockAddr{}, err
	}
	l.usage.AddRecord(l.stripeOf(addr.FID.Seq()), EntrySize(len(payload)))
	l.mu.Lock()
	l.stats.RecordsAppended++
	l.mu.Unlock()
	return addr, nil
}

// append places one entry in the log, sealing and shipping fragments as
// they fill. It blocks when the per-server pipeline is full — the
// backpressure that implements the prototype's flow control.
func (l *Log) append(kind EntryKind, svc ServiceID, payload []byte) (BlockAddr, error) {
	need := EntrySize(len(payload))
	if need > l.payloadSize {
		return BlockAddr{}, fmt.Errorf("%w: entry of %d bytes", ErrBlockTooLarge, len(payload))
	}
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return BlockAddr{}, ErrClosed
		}
		if l.cur == nil {
			l.openFragmentLocked()
		}
		if l.cur.off+need <= l.payloadSize {
			fb := l.cur
			addr := BlockAddr{FID: fb.fid, Off: uint32(fb.off)}
			fb.off = AppendEntry(fb.payload, fb.off, kind, svc, payload)
			l.mu.Unlock()
			l.drainPreallocs()
			return addr, nil
		}
		sealed := l.sealCurrentLocked(false)
		l.mu.Unlock()
		l.ship(sealed)
	}
}

func (l *Log) openFragmentLocked() {
	l.seq = l.nextDataSeq(l.seq)
	fid := wire.MakeFID(l.client, l.seq)
	stripe := l.stripeOf(l.seq)
	if _, ok := l.stripeEpochs[stripe]; !ok {
		// Pin the stripe to the head epoch. Membership changes close the
		// open stripe before publishing a new view, so the pin covers
		// every member the stripe will ever seal.
		l.stripeEpochs[stripe] = l.place.Epoch()
	}
	l.cur = &fragBuilder{
		fid:     fid,
		stripe:  stripe,
		index:   uint8(l.seq % uint64(l.width)),
		payload: make([]byte, l.payloadSize),
	}
	l.seq++
	if l.cfg.PreallocStripes && !l.prealloced[stripe] {
		l.prealloced[stripe] = true
		l.needPre = append(l.needPre, stripe)
	}
}

// sealCurrentLocked closes the open fragment (if any) and returns the
// fragments to ship: the data fragment, plus the stripe's parity fragment
// when this was the stripe's last data member.
func (l *Log) sealCurrentLocked(mark bool) []sealedFrag {
	if l.cur == nil {
		return nil
	}
	fb := l.cur
	l.cur = nil
	out := []sealedFrag{l.makeSealedLocked(fb, mark)}
	if l.parity {
		out = append(out, l.maybeSealParityLocked(fb.stripe)...)
	} else {
		l.usage.FragmentSealed(fb.stripe, true)
	}
	return out
}

func (l *Log) makeSealedLocked(fb *fragBuilder, mark bool) sealedFrag {
	dataLen := fb.off
	h := Header{
		Kind:       FragData,
		Width:      uint8(l.width),
		Index:      fb.index,
		FID:        fb.fid,
		StripeID:   fb.stripe,
		DataLen:    uint32(dataLen),
		PayloadCRC: crc32.ChecksumIEEE(fb.payload[:dataLen]),
	}
	l.stampGeometry(&h)
	l.fillGroup(&h)
	frame := make([]byte, HeaderSize+dataLen)
	copy(frame, EncodeHeader(&h))
	copy(frame[HeaderSize:], fb.payload[:dataLen])
	conn := l.connAtLocked(fb.stripe, int(fb.index))
	if l.parity {
		l.pacc.add(l.dataOrdinal(fb.stripe, int(fb.index)), int(fb.index), fb.payload[:dataLen])
		l.usage.FragmentSealed(fb.stripe, false)
	}
	l.locations[fb.fid] = conn.ID()
	l.inflight[fb.fid] = fb.payload[:dataLen]
	l.stats.FragmentsSealed++
	l.stats.BytesStored += int64(len(frame))
	return sealedFrag{conn: conn, fid: fb.fid, frame: frame, mark: mark, payload: fb.payload[:dataLen]}
}

// stampGeometry writes the log's erasure configuration and the stripe's
// placement epoch into a header. The XOR m=1 epoch-0 configuration
// round-trips through a version-1 header, byte-identical to the
// pre-erasure format. Callers hold mu.
func (l *Log) stampGeometry(h *Header) {
	h.Epoch = l.epochOfLocked(h.StripeID)
	if !l.parity {
		return
	}
	h.Codec = uint8(l.codec.Kind())
	h.NumParity = uint8(l.nparity)
}

// maybeSealParityLocked emits the stripe's parity fragments if every
// data member of stripe has been sealed.
func (l *Log) maybeSealParityLocked(stripe uint64) []sealedFrag {
	if l.pacc.members == 0 {
		return nil
	}
	if l.stripeOf(l.nextDataSeq(l.seq)) == stripe {
		return nil // stripe still has data slots
	}
	return l.sealParityLocked(stripe)
}

// sealParityLocked emits all m parity fragments of stripe from the
// accumulators and resets them for the next stripe.
func (l *Log) sealParityLocked(stripe uint64) []sealedFrag {
	var maxLen uint32
	for _, n := range l.pacc.lens {
		if n > maxLen {
			maxLen = n
		}
	}
	out := make([]sealedFrag, 0, l.nparity)
	for j := 0; j < l.nparity; j++ {
		pIdx := l.paritySlot(stripe, j)
		fid := wire.MakeFID(l.client, stripe*uint64(l.width)+uint64(pIdx))
		h := Header{
			Kind:       FragParity,
			Width:      uint8(l.width),
			Index:      uint8(pIdx),
			FID:        fid,
			StripeID:   stripe,
			DataLen:    maxLen,
			MemberLens: l.pacc.lens,
			PayloadCRC: crc32.ChecksumIEEE(l.pacc.bufs[j][:maxLen]),
		}
		l.stampGeometry(&h)
		l.fillGroup(&h)
		frame := make([]byte, HeaderSize+int(maxLen))
		copy(frame, EncodeHeader(&h))
		copy(frame[HeaderSize:], l.pacc.bufs[j][:maxLen])
		conn := l.connAtLocked(stripe, pIdx)
		l.locations[fid] = conn.ID()
		l.stats.ParityFragments++
		l.stats.BytesStored += int64(len(frame))
		out = append(out, sealedFrag{conn: conn, fid: fid, frame: frame})
	}
	l.pacc.reset()
	delete(l.prealloced, stripe) // stripe complete: stop tracking
	l.usage.FragmentSealed(stripe, true)
	return out
}

// closeStripeLocked seals the open fragment and pads the current stripe
// with empty fragments so its parity can be written immediately. Used by
// Sync and checkpoints so everything durable is also parity-protected.
func (l *Log) closeStripeLocked(mark bool) []sealedFrag {
	var out []sealedFrag
	if l.cur != nil {
		out = append(out, l.sealCurrentLocked(mark)...)
	}
	if !l.parity || l.pacc.members == 0 {
		return out
	}
	stripe := l.stripeOf(l.nextDataSeq(l.seq))
	// The open stripe is the one the parity accumulator belongs to; pad
	// its remaining data slots with empty fragments.
	for {
		ns := l.nextDataSeq(l.seq)
		if l.stripeOf(ns) != stripe {
			break
		}
		l.seq = ns
		l.openFragmentLocked()
		out = append(out, l.sealCurrentLocked(false)...)
	}
	return out
}

// ship sends sealed fragments to their servers through the engine's
// per-server store queues, blocking on pipeline slots (flow control),
// then returning while stores complete asynchronously. The engine owns
// the retry policy: one extra attempt on bare connections, none on
// connections that already carry a resilience layer (stacked retries
// would multiply attempts against a down server), and StatusExists — a
// response lost after the server committed — counts as success.
func (l *Log) ship(frags []sealedFrag) {
	l.drainPreallocs()
	for _, f := range frags {
		f := f
		// Client-side log processing cost: marshalling and checksumming
		// the bytes shipped, plus fixed per-fragment work.
		if l.cfg.CPU != nil {
			l.cfg.CPU.Process(len(f.frame))
			l.cfg.CPU.Compute(l.cfg.FragOverhead)
		}
		ranges := l.rangesFor(f.conn, len(f.frame))
		l.engine.StoreAsync(f.conn, f.fid, f.frame, f.mark, ranges, func(err error) {
			if err != nil {
				if l.noteDegraded(f.fid, f.conn.ID(), err) {
					// Degraded write (§2.1.2, §3.3): the server is
					// unreachable but the stripe's parity still covers the
					// missing member. The payload stays in the
					// read-your-writes map, remote readers reconstruct
					// from the stripe, and RebuildServer restores the
					// fragment once the server is replaced or revived.
					return
				}
				// Redundancy exhausted (no parity, a second member of the
				// same stripe missing, or a definitive server error):
				// keep the payload in the read-your-writes map — the
				// fragment is not durable (Sync will report that), but
				// local reads keep working.
				l.setErr(fmt.Errorf("store fragment %v on server %d: %w", f.fid, f.conn.ID(), err))
				return
			}
			l.mu.Lock()
			delete(l.inflight, f.fid)
			l.mu.Unlock()
		})
	}
}

// noteDegraded records a failed fragment store as a degraded write when
// the stripe stays redundancy-covered. A stripe tolerates up to m
// missing members (one for the classic XOR parity), so the first m
// unreachable-server failures in a stripe degrade the write; the next
// (or any failure without parity, or any definitive server error like
// no-space) exhausts redundancy and the caller must surface it.
// Returns whether the failure was absorbed.
func (l *Log) noteDegraded(fid wire.FID, server wire.ServerID, err error) bool {
	if !l.parity || !errors.Is(err, transport.ErrUnavailable) {
		return false
	}
	stripe := l.stripeOf(fid.Seq())
	l.mu.Lock()
	defer l.mu.Unlock()
	set := l.degraded[stripe]
	if _, dup := set[fid]; dup {
		return true
	}
	if len(set) >= l.nparity {
		return false // redundancy exhausted: stripe at risk
	}
	if set == nil {
		set = make(map[wire.FID]wire.ServerID, l.nparity)
		l.degraded[stripe] = set
		l.stats.DegradedStripes++
	}
	set[fid] = server
	l.stats.DegradedWrites++
	return true
}

// clearDegradedLocked drops fid from its stripe's degraded set.
func (l *Log) clearDegradedLocked(fid wire.FID) {
	stripe := l.stripeOf(fid.Seq())
	if set := l.degraded[stripe]; set != nil {
		delete(set, fid)
		if len(set) == 0 {
			delete(l.degraded, stripe)
		}
	}
}

// DegradedFIDs returns the fragments whose store was skipped because
// their server was unreachable, in sequence order. Their stripes remain
// redundancy-covered; RebuildServer (or ReclaimStripe) clears the
// entries it resolves.
func (l *Log) DegradedFIDs() []wire.FID {
	l.mu.Lock()
	var out []wire.FID
	for _, set := range l.degraded {
		for fid := range set {
			out = append(out, fid)
		}
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// drainPreallocs reserves slots for any newly opened stripes. Called
// outside the log mutex because it talks to servers. A failed
// preallocation is recorded like an asynchronous store failure: the
// stripe is no more at risk than it would be without preallocation. An
// unreachable server is tolerated — its member will surface as a
// degraded write when the store is attempted.
func (l *Log) drainPreallocs() {
	l.mu.Lock()
	stripes := l.needPre
	l.needPre = nil
	l.mu.Unlock()
	for _, stripe := range stripes {
		base := stripe * uint64(l.width)
		for i := 0; i < l.width; i++ {
			fid := wire.MakeFID(l.client, base+uint64(i))
			conn := l.connAt(stripe, i)
			err := conn.Prealloc(fid)
			if err == nil || wire.IsStatus(err, wire.StatusExists) {
				continue
			}
			if errors.Is(err, transport.ErrUnavailable) {
				l.mu.Lock()
				l.stats.DegradedPreallocs++
				l.mu.Unlock()
				continue
			}
			l.setErr(fmt.Errorf("prealloc fragment %v on server %d: %w", fid, conn.ID(), err))
			return
		}
	}
}

func (l *Log) setErr(err error) {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	if l.ioErr == nil {
		l.ioErr = err
	}
}

// Err returns the first asynchronous store error, if any.
func (l *Log) Err() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.ioErr
}

// ClearErr clears the recorded asynchronous error (after the caller has
// handled it).
func (l *Log) ClearErr() {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	l.ioErr = nil
}

// waitInflight blocks until every dispatched store has completed.
func (l *Log) waitInflight() {
	l.engine.Wait()
}

// Sync seals the open fragment, closes the stripe (padding it so parity
// covers everything written), waits for all stores to complete, and
// reports any store error.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	sealed := l.closeStripeLocked(false)
	l.mu.Unlock()
	l.ship(sealed)
	l.waitInflight()
	return l.Err()
}

// WriteCheckpoint appends a checkpoint record for svc: the service's
// consistent state, the log layer's directory of every service's newest
// checkpoint, and the stripe usage table. The fragment holding the
// checkpoint is stored *marked* so recovery can find it with a LastMarked
// query (§2.3.1), and the stripe is closed and flushed before returning,
// so a completed WriteCheckpoint is durable and parity-protected.
func (l *Log) WriteCheckpoint(svc ServiceID, payload []byte) (BlockAddr, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return BlockAddr{}, ErrClosed
	}
	l.registered[svc] = true
	// Compute the record size first (it doesn't depend on the address
	// values), place the entry, then encode with the final directory.
	probe := CheckpointRecord{
		Directory: make(map[ServiceID]BlockAddr, len(l.ckpts)+1),
		Payload:   payload,
		Usage:     l.usage.Encode(),
	}
	for id, a := range l.ckpts {
		probe.Directory[id] = a
	}
	probe.Directory[svc] = BlockAddr{}
	need := EntrySize(len(EncodeCheckpointRecord(&probe)))
	if need > l.payloadSize {
		l.mu.Unlock()
		return BlockAddr{}, fmt.Errorf("%w: checkpoint of %d bytes", ErrBlockTooLarge, len(payload))
	}
	var preSealed []sealedFrag
	if l.cur == nil {
		l.openFragmentLocked()
	}
	if l.cur.off+need > l.payloadSize {
		preSealed = l.sealCurrentLocked(false)
		l.openFragmentLocked()
	}
	fb := l.cur
	addr := BlockAddr{FID: fb.fid, Off: uint32(fb.off)}
	probe.Directory[svc] = addr
	rec := EncodeCheckpointRecord(&probe)
	fb.off = AppendEntry(fb.payload, fb.off, EntryCheckpoint, svc, rec)
	l.usage.AddRecord(l.stripeOf(addr.FID.Seq()), EntrySize(len(rec)))
	l.ckpts[svc] = addr
	l.stats.Checkpoints++
	sealed := append(preSealed, l.closeStripeLocked(true)...)
	l.mu.Unlock()
	l.ship(sealed)
	l.waitInflight()
	if err := l.Err(); err != nil {
		return BlockAddr{}, err
	}
	return addr, nil
}

// Checkpoint returns svc's latest checkpoint address, if any.
func (l *Log) Checkpoint(svc ServiceID) (BlockAddr, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.ckpts[svc]
	return a, ok
}

// CheckpointFloor returns the oldest checkpoint position across all
// registered services. Stripes wholly below the floor contain no records
// that could be replayed, so the cleaner may reclaim them (§2.1.4). A
// registered service that has never checkpointed pins the floor at zero.
func (l *Log) CheckpointFloor() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	floor := Pos{Seq: ^uint64(0)}
	if len(l.registered) == 0 {
		return Pos{}
	}
	for svc := range l.registered {
		a, ok := l.ckpts[svc]
		if !ok {
			return Pos{}
		}
		if p := PosOf(a); p.Less(floor) {
			floor = p
		}
	}
	return floor
}

// ReclaimStripe deletes every fragment of a closed stripe from the
// servers and drops its usage entry. The cleaner calls this after moving
// the stripe's live blocks.
func (l *Log) ReclaimStripe(stripe uint64) error {
	l.mu.Lock()
	if curStripe := l.stripeOf(l.nextDataSeq(l.seq)); stripe >= curStripe {
		l.mu.Unlock()
		return fmt.Errorf("core: stripe %d is still active", stripe)
	}
	base := stripe * uint64(l.width)
	fids := make([]wire.FID, 0, l.width)
	for i := 0; i < l.width; i++ {
		fids = append(fids, wire.MakeFID(l.client, base+uint64(i)))
	}
	l.mu.Unlock()

	var firstErr error
	for i, fid := range fids {
		conn := l.connAt(stripe, i)
		err := conn.Delete(fid)
		if err != nil && !wire.IsStatus(err, wire.StatusNotFound) {
			// Try the recorded location before giving up (placement may
			// predate a configuration change).
			if alt := l.lookupConn(fid); alt != nil && alt != conn {
				conn, err = alt, alt.Delete(fid)
			}
		}
		if err != nil && !wire.IsStatus(err, wire.StatusNotFound) {
			if errors.Is(err, transport.ErrUnavailable) {
				// The server is unreachable, not refusing: the stripe's
				// data has already moved, so reclaim proceeds and the
				// orphan fragment is deleted once the server answers
				// again (FlushDeletes / RebuildServer).
				l.mu.Lock()
				l.pendingDel[fid] = conn.ID()
				l.stats.DeferredDeletes++
				l.mu.Unlock()
			} else if firstErr == nil {
				firstErr = fmt.Errorf("delete fragment %v: %w", fid, err)
			}
		}
		l.mu.Lock()
		delete(l.locations, fid)
		delete(l.prealloced, stripe)
		l.clearDegradedLocked(fid)
		delete(l.inflight, fid)
		l.mu.Unlock()
		l.recon.drop(fid)
	}
	l.mu.Lock()
	delete(l.stripeEpochs, stripe) // the stripe no longer exists anywhere
	l.mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	l.usage.Drop(stripe)
	return nil
}

// FlushDeletes retries fragment deletions deferred by ReclaimStripe
// while a server was unreachable, returning how many remain pending.
// Orphans are harmless to durability — their stripes are already
// reclaimed — but they occupy slots and would confuse a server listing,
// so RebuildServer flushes them before surveying.
func (l *Log) FlushDeletes() int {
	l.mu.Lock()
	pending := make(map[wire.FID]wire.ServerID, len(l.pendingDel))
	for fid, id := range l.pendingDel {
		pending[fid] = id
	}
	l.mu.Unlock()
	for fid, id := range pending {
		conn := l.place.Conn(id)
		if conn == nil {
			// The server was removed from the cluster; the orphan died
			// with it.
			l.mu.Lock()
			delete(l.pendingDel, fid)
			l.mu.Unlock()
			continue
		}
		err := conn.Delete(fid)
		if err == nil || wire.IsStatus(err, wire.StatusNotFound) {
			l.mu.Lock()
			delete(l.pendingDel, fid)
			l.mu.Unlock()
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pendingDel)
}

func (l *Log) lookupConn(fid wire.FID) transport.ServerConn {
	l.mu.Lock()
	id, ok := l.locations[fid]
	l.mu.Unlock()
	if !ok {
		return nil
	}
	// A recorded location on a removed server resolves to nil; callers
	// treat that as a miss and fall back to placement or discovery.
	return l.place.Conn(id)
}

// Close syncs and shuts the log down.
func (l *Log) Close() error {
	err := l.Sync()
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	if err != nil {
		return err
	}
	return l.Err()
}

// NextPos returns the position where the next entry will be appended
// (exposed for tests and the cleaner's progress accounting).
func (l *Log) NextPos() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur != nil {
		return Pos{Seq: l.cur.fid.Seq(), Off: uint32(l.cur.off)}
	}
	return Pos{Seq: l.nextDataSeq(l.seq)}
}
