// Package bench regenerates the paper's evaluation (§3.4): Figure 3 (raw
// write bandwidth), Figure 4 (useful write throughput), Figure 5 (the
// Modified Andrew Benchmark against ext2fs), the in-text cold-read
// measurement, and a set of ablations over Swarm's design choices.
//
// The harness runs the REAL stack — storage servers, the striped-log
// client, Sting — with every hardware resource wrapped in the 1999
// performance model (internal/model): 200 MHz-class client CPUs, 100 Mb/s
// switched Ethernet links, and 10.3 MB/s disks. A scale factor runs the
// same contention structure proportionally faster; reported bandwidths
// are normalized back to 1999-equivalents, so shapes and crossovers are
// preserved while a full sweep finishes in seconds.
package bench

import (
	"fmt"

	"swarm/internal/disk"
	"swarm/internal/model"
	"swarm/internal/server"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// ClusterConfig sizes a simulated cluster.
type ClusterConfig struct {
	Servers      int
	FragmentSize int
	DiskBytes    int64
	Params       model.HardwareParams
	Clock        model.Clock
}

// serverNode bundles one emulated storage server and its shared
// resources: every client of this server contends on the same NIC, CPU,
// and disk.
type serverNode struct {
	store *server.Store
	nic   *model.Queue
	cpu   *model.Queue
	disk  *disk.SimDisk
}

// SimCluster is an in-process cluster under the performance model.
type SimCluster struct {
	cfg   ClusterConfig
	nodes []*serverNode
}

// NewSimCluster builds a cluster of cfg.Servers emulated storage servers.
func NewSimCluster(cfg ClusterConfig) (*SimCluster, error) {
	if cfg.FragmentSize == 0 {
		cfg.FragmentSize = 1 << 20
	}
	if cfg.DiskBytes == 0 {
		cfg.DiskBytes = 512 << 20
	}
	if cfg.Clock == nil {
		cfg.Clock = model.WallClock{}
	}
	c := &SimCluster{cfg: cfg}
	for i := 0; i < cfg.Servers; i++ {
		sd := disk.NewSimDisk(disk.NewMemDisk(cfg.DiskBytes), cfg.Clock, cfg.Params)
		st, err := server.Format(sd, server.Config{FragmentSize: cfg.FragmentSize})
		if err != nil {
			return nil, fmt.Errorf("format server %d: %w", i, err)
		}
		node := &serverNode{store: st, disk: sd}
		if cfg.Params.NetRate > 0 {
			node.nic = model.NewQueue(cfg.Clock, cfg.Params.NetRate)
		}
		if cfg.Params.ServerCPU > 0 {
			node.cpu = model.NewQueue(cfg.Clock, cfg.Params.ServerCPU)
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// ClientEnv is one emulated client's view of the cluster.
type ClientEnv struct {
	Client wire.ClientID
	Conns  []transport.ServerConn
	CPU    *model.CPU
}

// Client builds connections for one client: a fresh client NIC and CPU,
// shared server-side resources.
func (c *SimCluster) Client(id wire.ClientID) *ClientEnv {
	var clientNIC *model.Queue
	if c.cfg.Params.NetRate > 0 {
		clientNIC = model.NewQueue(c.cfg.Clock, c.cfg.Params.NetRate)
	}
	cpu := model.NewCPU(c.cfg.Clock, c.cfg.Params.ClientCPU)
	conns := make([]transport.ServerConn, 0, len(c.nodes))
	for i, node := range c.nodes {
		inner := transport.NewLocal(wire.ServerID(i+1), node.store, id)
		nm := transport.NetModel{
			Clock:       c.cfg.Clock,
			ClientNIC:   clientNIC,
			ServerNIC:   node.nic,
			ServerCPU:   node.cpu,
			Latency:     c.cfg.Params.NetLatency,
			ReqOverhead: c.cfg.Params.ServerReqOverhead,
		}
		conns = append(conns, transport.NewThrottled(inner, nm))
	}
	return &ClientEnv{Client: id, Conns: conns, CPU: cpu}
}

// Stores exposes the underlying fragment stores (tests, diagnostics).
func (c *SimCluster) Stores() []*server.Store {
	out := make([]*server.Store, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.store
	}
	return out
}
