// Package service provides the stacking framework for Swarm services
// (§2.2 of the paper). A service extends or hides the functionality of
// the layers below it: the cleaner, atomic recovery units, logical disks,
// caches, and file systems are all services. Services interact with the
// log through this package, which routes replayed records to the right
// service after a crash and propagates cleaner notifications and
// checkpoint demands.
package service

import (
	"errors"
	"fmt"
	"sync"

	"swarm/internal/core"
)

// Service errors.
var (
	// ErrDuplicateID is returned when two services claim the same ID.
	ErrDuplicateID = errors.New("service: duplicate service id")
	// ErrUnknownService is returned when routing to an unregistered ID.
	ErrUnknownService = errors.New("service: unknown service id")
)

// Service is implemented by everything stacked on the log.
type Service interface {
	// ID returns the service's stable identifier. IDs persist across
	// restarts (they appear in the log), so they must be fixed per
	// service type, not allocated dynamically.
	ID() core.ServiceID

	// Replay delivers one record during crash recovery, in log order.
	// Create and Delete records are the log layer's automatic records
	// for the service's blocks; Record entries are the service's own.
	Replay(rec core.ReplayEntry) error

	// RestoreCheckpoint delivers the service's newest checkpoint payload
	// before any Replay calls. Services that never checkpointed get a
	// nil payload.
	RestoreCheckpoint(payload []byte) error

	// BlockMoved tells the service the cleaner relocated one of its
	// blocks. The creation record's hint accompanies the move so the
	// service can find its metadata (§2.1.4).
	BlockMoved(old, new core.BlockAddr, length uint32, hint []byte) error

	// BlockLive reports whether the block at addr is still part of the
	// service's live data. The cleaner asks before copying a block out
	// of a stripe; answering true for a dead block wastes log space but
	// is safe, answering false for a live block loses data.
	BlockLive(addr core.BlockAddr, hint []byte) bool

	// CheckpointDemand asks the service to write a checkpoint soon; the
	// cleaner issues it when reclaimable space is pinned by the
	// service's old records. Ignoring the demand is legal but risky:
	// the cleaner may eventually reclaim the records anyway ("it does
	// so at its own peril", §2.1.4).
	CheckpointDemand() error
}

// Registry routes log-layer events to registered services.
type Registry struct {
	log *core.Log

	mu       sync.Mutex
	services map[core.ServiceID]Service
}

// NewRegistry returns a registry bound to a log.
func NewRegistry(log *core.Log) *Registry {
	return &Registry{log: log, services: make(map[core.ServiceID]Service)}
}

// Log returns the underlying log.
func (r *Registry) Log() *core.Log { return r.log }

// Register adds a service and replays its recovered state: first the
// checkpoint, then every post-checkpoint record in log order.
func (r *Registry) Register(svc Service, recovered *core.RecoveredService) error {
	r.mu.Lock()
	if _, dup := r.services[svc.ID()]; dup {
		r.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrDuplicateID, svc.ID())
	}
	r.services[svc.ID()] = svc
	r.mu.Unlock()
	r.log.RegisterService(svc.ID())

	if recovered == nil {
		recovered = &core.RecoveredService{}
	}
	if recovered.HasCheckpoint {
		if err := svc.RestoreCheckpoint(recovered.Checkpoint); err != nil {
			return fmt.Errorf("restore checkpoint for service %d: %w", svc.ID(), err)
		}
	} else {
		if err := svc.RestoreCheckpoint(nil); err != nil {
			return fmt.Errorf("init service %d: %w", svc.ID(), err)
		}
	}
	for _, rec := range recovered.Records {
		if err := svc.Replay(rec); err != nil {
			return fmt.Errorf("replay record %v to service %d: %w", rec.Pos, svc.ID(), err)
		}
	}
	return nil
}

// Lookup returns the service registered under id.
func (r *Registry) Lookup(id core.ServiceID) (Service, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	svc, ok := r.services[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownService, id)
	}
	return svc, nil
}

// Services returns the registered services (unspecified order).
func (r *Registry) Services() []Service {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Service, 0, len(r.services))
	for _, s := range r.services {
		out = append(out, s)
	}
	return out
}

// NotifyBlockMoved routes a cleaner move notification to the block's
// owning service.
func (r *Registry) NotifyBlockMoved(owner core.ServiceID, old, new core.BlockAddr, length uint32, hint []byte) error {
	svc, err := r.Lookup(owner)
	if err != nil {
		return err
	}
	return svc.BlockMoved(old, new, length, hint)
}

// DemandCheckpoints asks every registered service whose last checkpoint
// is older than floor to checkpoint now. It returns the first error.
func (r *Registry) DemandCheckpoints(floor core.Pos) error {
	var firstErr error
	for _, svc := range r.Services() {
		addr, ok := r.log.Checkpoint(svc.ID())
		if ok && !core.PosOf(addr).Less(floor) {
			continue // already recent enough
		}
		if err := svc.CheckpointDemand(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("checkpoint demand to service %d: %w", svc.ID(), err)
		}
	}
	return firstErr
}

// Base is a convenience embedding for services that want default no-op
// behaviour for the optional methods. It intentionally does NOT provide
// ID or Replay: every real service must implement those.
type Base struct{}

// RestoreCheckpoint implements Service with a no-op.
func (Base) RestoreCheckpoint([]byte) error { return nil }

// BlockMoved implements Service with a no-op.
func (Base) BlockMoved(_, _ core.BlockAddr, _ uint32, _ []byte) error { return nil }

// BlockLive implements Service conservatively: unknown blocks are treated
// as live, which is always safe.
func (Base) BlockLive(core.BlockAddr, []byte) bool { return true }

// CheckpointDemand implements Service with a no-op.
func (Base) CheckpointDemand() error { return nil }
