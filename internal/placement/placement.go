// Package placement is the versioned placement map: the one place that
// knows which storage servers exist and where a stripe member lives.
//
// Membership changes (join, drain, remove) never edit a server list in
// place. Each change publishes a new immutable View stamped with a
// monotonically increasing epoch; old views stay resolvable, so stripes
// written under an earlier epoch keep reading from the servers that
// placement assigned them at write time. New stripes always place under
// the head epoch. This is the same discipline the fragment format uses
// for erasure geometry (headers say how a stripe was written; the
// client's current configuration never reinterprets old data), extended
// from codec parameters to cluster shape.
//
// The map is session state, not log state: epoch 0 is the server list
// the client was constructed with, and epochs advance as this session's
// membership operations land. Fragment headers stamp the writing
// epoch so in-session readers and the rebalancer can resolve a stripe
// under the exact view that placed it; across sessions, recovery
// re-learns fragment locations by listing the servers and headers'
// Group field plus broadcast discovery cover anything that moved.
package placement

import (
	"errors"
	"fmt"
	"sync"

	"swarm/internal/transport"
	"swarm/internal/wire"
)

// Errors returned by membership operations.
var (
	// ErrUnknownServer is returned when an operation names a server that
	// is not in the map.
	ErrUnknownServer = errors.New("placement: unknown server")
	// ErrNotDraining is returned by Remove for a server that was never
	// drained: removing an active server would silently abandon its
	// fragments.
	ErrNotDraining = errors.New("placement: server not draining")
	// ErrBelowWidth is returned when a drain would leave fewer active
	// servers than the stripe width needs for member-disjoint placement.
	ErrBelowWidth = errors.New("placement: drain would leave fewer active servers than stripe width")
)

// State is a member's lifecycle state within a view.
type State uint8

const (
	// Active members receive new stripe placements.
	Active State = iota
	// Draining members are excluded from new placements but still serve
	// reads while the rebalancer migrates their fragments away.
	Draining
)

// String returns the state's operator-facing name.
func (s State) String() string {
	if s == Draining {
		return "draining"
	}
	return "active"
}

// Member is one server's entry in a view.
type Member struct {
	ID    wire.ServerID
	State State
}

// View is one immutable epoch of the placement map.
type View struct {
	// Epoch identifies this view; stamped into fragment headers written
	// under it.
	Epoch uint32
	// Members lists every server in the view, in join order, with its
	// state. The slice is shared — callers must not mutate it.
	Members []Member

	active []wire.ServerID // Active members, in join order
}

// NumActive returns how many members accept new placements.
func (v *View) NumActive() int { return len(v.active) }

// ActiveIDs returns the active members in placement order (a copy).
func (v *View) ActiveIDs() []wire.ServerID {
	out := make([]wire.ServerID, len(v.active))
	copy(out, v.active)
	return out
}

// StateOf returns the member's state and whether it is in the view.
func (v *View) StateOf(id wire.ServerID) (State, bool) {
	for _, m := range v.Members {
		if m.ID == id {
			return m.State, true
		}
	}
	return 0, false
}

// ServerAt is the striping-group function: the server holding member
// slot of stripe under this view. Placement rotates with the stripe
// number over the active ring so data and parity load spread across all
// servers; because the ring holds distinct servers, any Width ≤
// NumActive consecutive slots land on distinct servers — the
// failure-independence invariant stripes need.
func (v *View) ServerAt(stripe uint64, slot int) wire.ServerID {
	n := len(v.active)
	return v.active[int((stripe+uint64(slot))%uint64(n))]
}

// rebuild recomputes the active ring from Members.
func (v *View) rebuild() {
	v.active = v.active[:0]
	for _, m := range v.Members {
		if m.State == Active {
			v.active = append(v.active, m.ID)
		}
	}
}

// Map is the versioned placement map plus the live connection registry.
// Views are immutable once published; the map itself is safe for
// concurrent use.
type Map struct {
	mu    sync.RWMutex
	views []*View // views[i].Epoch == i; views[len-1] is head
	conns map[wire.ServerID]transport.ServerConn
	maxID wire.ServerID // highest ID ever admitted; never reused
}

// New builds a map whose epoch-0 view is the given servers, all active,
// in list order. IDs must be unique.
func New(servers []transport.ServerConn) (*Map, error) {
	m := &Map{conns: make(map[wire.ServerID]transport.ServerConn, len(servers))}
	v := &View{Epoch: 0, Members: make([]Member, 0, len(servers))}
	for _, sc := range servers {
		id := sc.ID()
		if _, dup := m.conns[id]; dup {
			return nil, fmt.Errorf("placement: duplicate server id %d", id)
		}
		m.conns[id] = sc
		v.Members = append(v.Members, Member{ID: id, State: Active})
		if id > m.maxID {
			m.maxID = id
		}
	}
	v.rebuild()
	m.views = []*View{v}
	return m, nil
}

// Head returns the current view.
func (m *Map) Head() *View {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.views[len(m.views)-1]
}

// Epoch returns the head view's epoch.
func (m *Map) Epoch() uint32 { return m.Head().Epoch }

// View returns the view for epoch, or nil if this session never
// published it (e.g. an epoch stamped by a previous session).
func (m *Map) View(epoch uint32) *View {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int(epoch) >= len(m.views) {
		return nil
	}
	return m.views[epoch]
}

// Conn returns the live connection for a member, or nil after removal.
func (m *Map) Conn(id wire.ServerID) transport.ServerConn {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.conns[id]
}

// Conns returns every member's connection (active and draining) in the
// head view's join order. Removed servers are gone.
func (m *Map) Conns() []transport.ServerConn {
	m.mu.RLock()
	defer m.mu.RUnlock()
	head := m.views[len(m.views)-1]
	out := make([]transport.ServerConn, 0, len(head.Members))
	for _, mem := range head.Members {
		out = append(out, m.conns[mem.ID])
	}
	return out
}

// NextID returns an ID no server has ever held in this session —
// suitable for a joining server. IDs are never reused so a stale
// location or header Group entry can never alias a newcomer.
func (m *Map) NextID() wire.ServerID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.maxID + 1
}

// Resolve returns the connection expected to hold (stripe, slot) of a
// stripe placed under epoch. When the assigned server has since been
// removed, resolution falls forward to the head epoch's assignment —
// valid because Remove requires a completed drain, whose invariant is
// that every fragment has been migrated to its head-epoch home. Returns
// nil when the epoch is unknown (stamped by another session); callers
// fall back to recorded locations or broadcast discovery.
func (m *Map) Resolve(epoch uint32, stripe uint64, slot int) transport.ServerConn {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int(epoch) >= len(m.views) {
		return nil
	}
	id := m.views[epoch].ServerAt(stripe, slot)
	if sc := m.conns[id]; sc != nil {
		return sc
	}
	head := m.views[len(m.views)-1]
	return m.conns[head.ServerAt(stripe, slot)]
}

// Join admits a new server and publishes a new head view with it
// active. Returns the new epoch.
func (m *Map) Join(conn transport.ServerConn) (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := conn.ID()
	if _, dup := m.conns[id]; dup {
		return 0, fmt.Errorf("placement: server id %d already in map", id)
	}
	head := m.views[len(m.views)-1]
	next := &View{Epoch: head.Epoch + 1, Members: append(append([]Member(nil), head.Members...), Member{ID: id, State: Active})}
	next.rebuild()
	m.conns[id] = conn
	if id > m.maxID {
		m.maxID = id
	}
	m.views = append(m.views, next)
	return next.Epoch, nil
}

// Drain marks a member draining and publishes a new head view without
// it in the active ring. minActive is the floor the remaining active
// set must not drop below (the stripe width). Draining a server that is
// already draining is a no-op returning the current epoch.
func (m *Map) Drain(id wire.ServerID, minActive int) (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	head := m.views[len(m.views)-1]
	st, ok := head.StateOf(id)
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownServer, id)
	}
	if st == Draining {
		return head.Epoch, nil
	}
	if head.NumActive()-1 < minActive {
		return 0, fmt.Errorf("%w: %d active - 1 < width %d", ErrBelowWidth, head.NumActive(), minActive)
	}
	next := &View{Epoch: head.Epoch + 1, Members: make([]Member, len(head.Members))}
	copy(next.Members, head.Members)
	for i := range next.Members {
		if next.Members[i].ID == id {
			next.Members[i].State = Draining
		}
	}
	next.rebuild()
	m.views = append(m.views, next)
	return next.Epoch, nil
}

// Remove drops a drained member from the map entirely and publishes a
// new head view without it. The server must be draining — Remove is the
// completion of a drain, not a shortcut around one.
func (m *Map) Remove(id wire.ServerID) (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	head := m.views[len(m.views)-1]
	st, ok := head.StateOf(id)
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownServer, id)
	}
	if st != Draining {
		return 0, fmt.Errorf("%w: %d", ErrNotDraining, id)
	}
	next := &View{Epoch: head.Epoch + 1, Members: make([]Member, 0, len(head.Members)-1)}
	for _, mem := range head.Members {
		if mem.ID != id {
			next.Members = append(next.Members, mem)
		}
	}
	next.rebuild()
	delete(m.conns, id)
	m.views = append(m.views, next)
	return next.Epoch, nil
}

// Info is a snapshot of the map for operators (swarmctl status).
type Info struct {
	Epoch   uint32
	Members []Member
}

// Snapshot returns the head view as an Info copy.
func (m *Map) Snapshot() Info {
	head := m.Head()
	return Info{Epoch: head.Epoch, Members: append([]Member(nil), head.Members...)}
}
