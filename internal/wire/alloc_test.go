package wire

import (
	"bytes"
	"io"
	"runtime"
	"testing"
)

// The zero-copy claims are load-bearing: a 1 MB store RPC must cost O(1)
// small allocations on both the client encode path and the server decode
// path, with the payload never copied. These tests pin that.

const allocPayload = 1 << 20

// maxSmallAllocs is the allowance for fixed per-frame costs (encoder,
// net.Buffers slice, frame header/trailer escapes, decoder, message
// struct) — a handful of tens-of-bytes allocations, nothing scaling with
// the payload.
const maxSmallAllocs = 12

// maxBytesPerOp bounds the total bytes allocated per RPC. Well under the
// 1 MB payload ⇒ the payload was neither copied nor reallocated.
const maxBytesPerOp = 64 << 10

func measureBytesPerOp(runs int, f func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / uint64(runs)
}

func TestStoreRequestEncodeAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0xa5}, allocPayload)
	req := &StoreRequest{FID: MakeFID(1, 42), Mark: true, Data: payload}
	encode := func() {
		if err := WriteRequest(io.Discard, OpStore, 7, 1, req); err != nil {
			t.Fatal(err)
		}
	}
	encode() // warm
	if allocs := testing.AllocsPerRun(50, encode); allocs > maxSmallAllocs {
		t.Errorf("1 MB store encode: %.0f allocs/op, want <= %d", allocs, maxSmallAllocs)
	}
	if per := measureBytesPerOp(20, encode); per > maxBytesPerOp {
		t.Errorf("1 MB store encode: %d bytes allocated/op — payload is being copied", per)
	}
}

func TestStoreRequestDecodeAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5a}, allocPayload)
	var buf bytes.Buffer
	if err := WriteRequest(&buf, OpStore, 7, 1, &StoreRequest{FID: MakeFID(1, 42), Data: payload}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	rd := bytes.NewReader(frame)
	decode := func() {
		rd.Reset(frame)
		req, err := ReadRequestFrame(rd)
		if err != nil {
			t.Fatal(err)
		}
		var sr StoreRequest
		if err := sr.Decode(NewDecoder(req.Body)); err != nil {
			t.Fatal(err)
		}
		if len(sr.Data) != allocPayload {
			t.Fatalf("payload length %d", len(sr.Data))
		}
		PutBuffer(req.Body)
	}
	decode() // warm the buffer pool so the body read is a pool hit
	if allocs := testing.AllocsPerRun(50, decode); allocs > maxSmallAllocs {
		t.Errorf("1 MB store decode: %.0f allocs/op, want <= %d", allocs, maxSmallAllocs)
	}
	if per := measureBytesPerOp(20, decode); per > maxBytesPerOp {
		t.Errorf("1 MB store decode: %d bytes allocated/op — body is being reallocated", per)
	}
}

func TestReadResponseRoundTripAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0x3c}, allocPayload)
	var buf bytes.Buffer
	if err := WriteResponse(&buf, OpRead, 9, &ReadResponse{Data: payload}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	rd := bytes.NewReader(frame)
	roundTrip := func() {
		if err := WriteResponse(io.Discard, OpRead, 9, &ReadResponse{Data: payload}); err != nil {
			t.Fatal(err)
		}
		rd.Reset(frame)
		rsp, err := ReadResponseFrame(rd)
		if err != nil {
			t.Fatal(err)
		}
		var rr ReadResponse
		if err := rr.Decode(NewDecoder(rsp.Body)); err != nil {
			t.Fatal(err)
		}
		if len(rr.Data) != allocPayload {
			t.Fatalf("payload length %d", len(rr.Data))
		}
		PutBuffer(rsp.Body)
	}
	roundTrip()
	if allocs := testing.AllocsPerRun(50, roundTrip); allocs > 2*maxSmallAllocs {
		t.Errorf("1 MB read round trip: %.0f allocs/op, want <= %d", allocs, 2*maxSmallAllocs)
	}
	if per := measureBytesPerOp(20, roundTrip); per > maxBytesPerOp {
		t.Errorf("1 MB read round trip: %d bytes allocated/op", per)
	}
}

func TestBufferPoolReuse(t *testing.T) {
	a := GetBuffer(100 << 10)
	backing := &a[:cap(a)][cap(a)-1]
	PutBuffer(a)
	b := GetBuffer(90 << 10) // smaller, same bin: must reuse
	if &b[:cap(b)][cap(b)-1] != backing {
		t.Error("pool did not reuse a same-bin buffer")
	}
	PutBuffer(b)

	// A subslice release (as the transport does for response payloads)
	// must keep the buffer findable for payload-sized requests.
	c := GetBuffer(128 << 10)
	view := c[4:] // what a decoded ReadResponse.Data aliases
	PutBuffer(view)
	d := GetBuffer(100 << 10)
	if cap(d) != cap(view) {
		t.Errorf("subslice-released buffer not reused: got cap %d, want %d", cap(d), cap(view))
	}

	// Small and nil releases are no-ops.
	PutBuffer(nil)
	PutBuffer(make([]byte, 16))
	if got := GetBuffer(0); got != nil {
		t.Errorf("GetBuffer(0) = %v, want nil", got)
	}
}
