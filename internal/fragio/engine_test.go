package fragio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swarm/internal/transport"
	"swarm/internal/wire"
)

// testFormat is a toy frame: an 8-byte header holding the payload length
// and a byte-sum checksum.
type testFormat struct{}

func (testFormat) HeaderSize() uint32 { return 8 }

func (testFormat) Parse(fid wire.FID, hdr []byte) (any, uint32, error) {
	if len(hdr) != 8 {
		return nil, 0, fmt.Errorf("short header: %d", len(hdr))
	}
	n := binary.LittleEndian.Uint32(hdr)
	sum := binary.LittleEndian.Uint32(hdr[4:])
	return sum, n, nil
}

func (testFormat) Verify(decoded any, payload []byte) error {
	var sum uint32
	for _, b := range payload {
		sum += uint32(b)
	}
	if sum != decoded.(uint32) {
		return errors.New("checksum mismatch")
	}
	return nil
}

func frame(payload []byte) []byte {
	var sum uint32
	for _, b := range payload {
		sum += uint32(b)
	}
	f := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(f, uint32(len(payload)))
	binary.LittleEndian.PutUint32(f[4:], sum)
	copy(f[8:], payload)
	return f
}

// fakeConn is an in-memory ServerConn with injectable latency and
// failures.
type fakeConn struct {
	id wire.ServerID

	mu      sync.Mutex
	frags   map[wire.FID][]byte
	latency time.Duration

	storeErrs  []error // shifted per Store call; nil entry = real store
	storeCalls atomic.Int64
	readCalls  atomic.Int64
	hasCalls   atomic.Int64
}

func newFakeConn(id wire.ServerID) *fakeConn {
	return &fakeConn{id: id, frags: make(map[wire.FID][]byte)}
}

func (c *fakeConn) put(fid wire.FID, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frags[fid] = frame(payload)
}

func (c *fakeConn) setLatency(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.latency = d
}

func (c *fakeConn) sleep() {
	c.mu.Lock()
	d := c.latency
	c.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

func (c *fakeConn) ID() wire.ServerID { return c.id }

func (c *fakeConn) Store(fid wire.FID, data []byte, mark bool, ranges []wire.ACLRange) error {
	c.storeCalls.Add(1)
	c.sleep()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.storeErrs) > 0 {
		err := c.storeErrs[0]
		c.storeErrs = c.storeErrs[1:]
		if err != nil {
			return err
		}
	}
	c.frags[fid] = append([]byte(nil), data...)
	return nil
}

func (c *fakeConn) Read(fid wire.FID, off, n uint32) ([]byte, error) {
	c.readCalls.Add(1)
	c.sleep()
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.frags[fid]
	if !ok {
		return nil, &wire.StatusError{Status: wire.StatusNotFound}
	}
	if int(off+n) > len(f) {
		return nil, &wire.StatusError{Status: wire.StatusBadRequest}
	}
	return append([]byte(nil), f[off:off+n]...), nil
}

func (c *fakeConn) Delete(fid wire.FID) error   { return nil }
func (c *fakeConn) Prealloc(fid wire.FID) error { return nil }
func (c *fakeConn) LastMarked(client wire.ClientID) (wire.FID, bool, error) {
	return 0, false, nil
}

func (c *fakeConn) Has(fid wire.FID) (uint32, bool, error) {
	c.hasCalls.Add(1)
	c.sleep()
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.frags[fid]
	return uint32(len(f)), ok, nil
}

func (c *fakeConn) List(client wire.ClientID) ([]wire.FID, error) { return nil, nil }
func (c *fakeConn) ACLCreate(members []wire.ClientID) (wire.AID, error) {
	return 0, errors.New("unsupported")
}
func (c *fakeConn) ACLModify(aid wire.AID, add, remove []wire.ClientID) error { return nil }
func (c *fakeConn) ACLDelete(aid wire.AID) error                              { return nil }
func (c *fakeConn) Stat() (wire.StatResponse, error)                          { return wire.StatResponse{}, nil }
func (c *fakeConn) Ping() error                                               { return nil }
func (c *fakeConn) Close() error                                              { return nil }

// retryingConn marks a fakeConn as carrying its own resilience layer by
// implementing transport.HealthReporter.
type retryingConn struct{ *fakeConn }

func (retryingConn) Health() transport.Health { return transport.Health{} }

func newEngine(conns ...transport.ServerConn) *Engine {
	return New(conns, Options{Format: testFormat{}})
}

func fid(seq uint64) wire.FID { return wire.MakeFID(1, seq) }

func TestFetchValidates(t *testing.T) {
	c := newFakeConn(1)
	payload := []byte("hello fragment")
	c.put(fid(7), payload)
	e := newEngine(c)
	_, got, err := e.Fetch(c, fid(7))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
	// Corrupt the stored payload: Fetch must refuse it.
	c.mu.Lock()
	c.frags[fid(7)][9]++
	c.mu.Unlock()
	if _, _, err := e.Fetch(c, fid(7)); err == nil {
		t.Fatal("fetch of corrupted fragment succeeded")
	}
}

func TestGatherParallel(t *testing.T) {
	const lat = 30 * time.Millisecond
	var conns []transport.ServerConn
	var members []Member
	for i := 0; i < 4; i++ {
		c := newFakeConn(wire.ServerID(i + 1))
		c.put(fid(uint64(i)), []byte{byte(i)})
		c.setLatency(lat)
		conns = append(conns, c)
		members = append(members, Member{FID: fid(uint64(i)), Server: c.ID()})
	}
	e := newEngine(conns...)
	start := time.Now()
	results := e.Gather(members)
	elapsed := time.Since(start)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("member %d: %v", i, r.Err)
		}
		if r.From != members[i].Server {
			t.Errorf("member %d served by %d, want %d", i, r.From, members[i].Server)
		}
	}
	// Each member costs two latency-injected reads (header + payload).
	// Serial would be 4 members x 2 reads x 30ms = 240ms; the fan-out
	// should land near one member's cost. Allow generous slack.
	if serial := 8 * lat; elapsed >= serial/2 {
		t.Fatalf("gather took %v, want well under serial %v", elapsed, serial)
	}
}

func TestGatherBroadcastFallback(t *testing.T) {
	holder := newFakeConn(1)
	other := newFakeConn(2)
	holder.put(fid(3), []byte("misplaced"))
	e := newEngine(holder, other)
	// Wrong server hint: the engine must fall back to broadcast.
	res := e.Gather([]Member{{FID: fid(3), Server: 2}})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if res[0].From != 1 {
		t.Fatalf("served by %d, want 1", res[0].From)
	}
	if st := e.Stats(); st.Broadcasts != 1 {
		t.Fatalf("broadcasts = %d, want 1", st.Broadcasts)
	}
}

func TestSingleDedupes(t *testing.T) {
	e := newEngine(newFakeConn(1))
	var runs atomic.Int64
	release := make(chan struct{})
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	vals := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], _, errs[i] = e.Single(fid(9), func() (any, error) {
				runs.Add(1)
				<-release
				return "result", nil
			})
		}(i)
	}
	// Let every caller reach the flight before it lands.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("function ran %d times, want 1", got)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil || vals[i] != "result" {
			t.Fatalf("caller %d: val=%v err=%v", i, vals[i], errs[i])
		}
	}
	if st := e.Stats(); st.SharedFlights != callers-1 {
		t.Fatalf("shared flights = %d, want %d", st.SharedFlights, callers-1)
	}
}

func TestLocateDedupes(t *testing.T) {
	c := newFakeConn(1)
	c.put(fid(5), []byte("x"))
	c.setLatency(20 * time.Millisecond)
	e := newEngine(c)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := e.Locate(fid(5)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := c.hasCalls.Load(); got != 1 {
		t.Fatalf("broadcast probes = %d, want 1 (singleflight)", got)
	}
}

func TestLocateNotFound(t *testing.T) {
	e := newEngine(newFakeConn(1))
	if _, _, err := e.Locate(fid(99)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestStoreRetriesBareConn(t *testing.T) {
	c := newFakeConn(1)
	c.storeErrs = []error{transport.ErrUnavailable} // transient once
	e := newEngine(c)
	if err := e.Store(c, fid(1), frame(nil), false, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.storeCalls.Load(); got != 2 {
		t.Fatalf("store attempts = %d, want 2 (one retry)", got)
	}
	if st := e.Stats(); st.StoreRetries != 1 {
		t.Fatalf("retries = %d, want 1", st.StoreRetries)
	}
}

func TestStoreDoesNotStackRetries(t *testing.T) {
	c := newFakeConn(1)
	c.storeErrs = []error{transport.ErrUnavailable, transport.ErrUnavailable}
	rc := retryingConn{c}
	e := newEngine(rc)
	// The conn reports its own resilience layer: the engine must issue
	// exactly one attempt and surface the error as-is.
	if err := e.Store(rc, fid(1), frame(nil), false, nil); !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if got := c.storeCalls.Load(); got != 1 {
		t.Fatalf("store attempts = %d, want 1 (no engine retry)", got)
	}
}

func TestStoreNoRetryOnAuthoritativeError(t *testing.T) {
	c := newFakeConn(1)
	c.storeErrs = []error{&wire.StatusError{Status: wire.StatusNoSpace}}
	e := newEngine(c)
	if err := e.Store(c, fid(1), frame(nil), false, nil); !wire.IsStatus(err, wire.StatusNoSpace) {
		t.Fatalf("err = %v, want no-space", err)
	}
	if got := c.storeCalls.Load(); got != 1 {
		t.Fatalf("store attempts = %d, want 1 (status errors are final)", got)
	}
}

func TestStoreExistsIsSuccess(t *testing.T) {
	c := newFakeConn(1)
	c.storeErrs = []error{transport.ErrUnavailable, &wire.StatusError{Status: wire.StatusExists}}
	e := newEngine(c)
	// Lost response then Exists on retry: the fragment committed.
	if err := e.Store(c, fid(1), frame(nil), false, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoreAsyncFlowControlAndWait(t *testing.T) {
	c := newFakeConn(1)
	c.setLatency(10 * time.Millisecond)
	e := New([]transport.ServerConn{c}, Options{Format: testFormat{}, StoreDepth: 1})
	var done atomic.Int64
	for i := 0; i < 3; i++ {
		e.StoreAsync(c, fid(uint64(i)), frame([]byte{byte(i)}), false, nil, func(err error) {
			if err != nil {
				t.Error(err)
			}
			done.Add(1)
		})
	}
	e.Wait()
	if got := done.Load(); got != 3 {
		t.Fatalf("done callbacks = %d, want 3", got)
	}
	if got := c.storeCalls.Load(); got != 3 {
		t.Fatalf("stores = %d, want 3", got)
	}
}

// pooledConn overrides fakeConn.Read to return pool-owned buffers, the
// real transport's contract (ReadResponse payloads alias pooled frame
// bodies).
type pooledConn struct{ *fakeConn }

func (c pooledConn) Read(fid wire.FID, off, n uint32) ([]byte, error) {
	b, err := c.fakeConn.Read(fid, off, n)
	if err != nil {
		return nil, err
	}
	out := wire.GetBuffer(len(b))
	copy(out, b)
	return out, nil
}

// TestFetchRecyclesPayloadOnVerifyFailure is the regression test for a
// pool leak: Fetch obtained the payload from the transport (pool-owned)
// and returned the verify error without releasing it, so every corrupt
// fragment cost the pool a fragment-sized buffer.
func TestFetchRecyclesPayloadOnVerifyFailure(t *testing.T) {
	const payloadLen = 5000 // a pooled size class (bins start at 4 KB)
	inner := newFakeConn(1)
	payload := make([]byte, payloadLen)
	for i := range payload {
		payload[i] = byte(i)
	}
	fid := wire.MakeFID(1, 1)
	inner.put(fid, payload)
	// Corrupt one payload byte after framing so Parse succeeds (header
	// intact) but Verify fails.
	inner.mu.Lock()
	inner.frags[fid][8] ^= 0xff
	inner.mu.Unlock()

	conn := pooledConn{inner}
	e := New([]transport.ServerConn{conn}, Options{Format: testFormat{}})

	// Seed the pool with a marker buffer. Bins are stacks, so the fetch
	// path's GetBuffer(payloadLen) draws the marker; if the verify
	// failure recycles it, the next GetBuffer returns the same array.
	marker := wire.GetBuffer(payloadLen)
	wire.PutBuffer(marker)

	if _, _, err := e.Fetch(conn, fid); err == nil {
		t.Fatal("Fetch of a corrupt fragment succeeded")
	}

	got := wire.GetBuffer(payloadLen)
	defer wire.PutBuffer(got)
	if &got[0] != &marker[0] {
		t.Fatal("verify-failure path leaked the pooled payload buffer")
	}
}

// TestGatherKStopsAtQuorum proves GatherK returns as soon as k members
// answer, without waiting for slow stragglers, and marks the members it
// did not wait for with ErrSkipped.
func TestGatherKStopsAtQuorum(t *testing.T) {
	const slow = 300 * time.Millisecond
	var conns []transport.ServerConn
	var members []Member
	for i := 0; i < 4; i++ {
		c := newFakeConn(wire.ServerID(i + 1))
		c.put(fid(uint64(i)), []byte{byte(i + 1)})
		if i >= 2 {
			c.setLatency(slow)
		}
		conns = append(conns, c)
		members = append(members, Member{FID: fid(uint64(i)), Server: c.ID()})
	}
	e := newEngine(conns...)
	start := time.Now()
	results := e.GatherK(members, 2)
	elapsed := time.Since(start)
	if elapsed >= slow {
		t.Fatalf("GatherK waited %v; quorum of fast members should beat the %v stragglers", elapsed, slow)
	}
	if len(results) != len(members) {
		t.Fatalf("got %d results, want %d", len(results), len(members))
	}
	var ok, skipped int
	for i, r := range results {
		switch {
		case r.Err == nil:
			ok++
			if len(r.Payload) != 1 || r.Payload[0] != byte(i+1) {
				t.Fatalf("member %d payload %v", i, r.Payload)
			}
		case errors.Is(r.Err, ErrSkipped):
			skipped++
		default:
			t.Fatalf("member %d: %v", i, r.Err)
		}
	}
	if ok != 2 || skipped != 2 {
		t.Fatalf("ok=%d skipped=%d, want 2/2", ok, skipped)
	}
	st := e.Stats()
	if st.KGathers != 1 {
		t.Fatalf("KGathers = %d, want 1", st.KGathers)
	}
	if st.GatherStragglers != 2 {
		t.Fatalf("GatherStragglers = %d, want 2", st.GatherStragglers)
	}
}

// TestGatherKToleratesFailures: with one member missing its fragment,
// GatherK keeps collecting until k successes arrive. The lost member
// ends up with either its own fetch error or ErrSkipped (its broadcast
// fallback may still be in flight when the quorum fills) — never a
// payload.
func TestGatherKToleratesFailures(t *testing.T) {
	var conns []transport.ServerConn
	var members []Member
	for i := 0; i < 4; i++ {
		c := newFakeConn(wire.ServerID(i + 1))
		if i != 0 { // member 0's fragment is lost
			c.put(fid(uint64(i)), []byte{byte(i + 1)})
		}
		conns = append(conns, c)
		members = append(members, Member{FID: fid(uint64(i)), Server: c.ID()})
	}
	e := newEngine(conns...)
	results := e.GatherK(members, 3)
	var ok int
	for _, r := range results {
		if r.Err == nil {
			ok++
		}
	}
	if ok != 3 {
		t.Fatalf("ok=%d, want 3", ok)
	}
	if results[0].Err == nil {
		t.Fatal("lost member returned a payload")
	}
}

// TestGatherKFullWidthDelegates: asking for k >= len(members) is a plain
// Gather (every member waited for, no ErrSkipped).
func TestGatherKFullWidthDelegates(t *testing.T) {
	var conns []transport.ServerConn
	var members []Member
	for i := 0; i < 3; i++ {
		c := newFakeConn(wire.ServerID(i + 1))
		c.put(fid(uint64(i)), []byte{byte(i + 1)})
		conns = append(conns, c)
		members = append(members, Member{FID: fid(uint64(i)), Server: c.ID()})
	}
	e := newEngine(conns...)
	for _, r := range e.GatherK(members, 3) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if st := e.Stats(); st.KGathers != 0 {
		t.Fatalf("KGathers = %d, want 0 for full-width gather", st.KGathers)
	}
}
