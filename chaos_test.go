package swarm

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swarm/internal/server"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// chaosCluster builds n in-process servers reached through
// Resilient → Flaky → Local connections: the same stack a TCP client
// gets, with a fault-injection layer in the middle.
func chaosCluster(t *testing.T, n int, cfg transport.ResilientConfig) (*Client, []*transport.Flaky) {
	t.Helper()
	return chaosClusterOpts(t, n, cfg, ClientOptions{})
}

// chaosClusterOpts is chaosCluster with explicit client options (the
// fragment size is always pinned to 16 KB).
func chaosClusterOpts(t *testing.T, n int, cfg transport.ResilientConfig, opts ClientOptions) (*Client, []*transport.Flaky) {
	t.Helper()
	conns := make([]transport.ServerConn, n)
	flaky := make([]*transport.Flaky, n)
	for i := 0; i < n; i++ {
		s, err := NewServer(ServerOptions{DiskBytes: 64 << 20, FragmentSize: 16 << 10})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		flaky[i] = transport.NewFlaky(transport.NewLocal(ServerID(i+1), s.store, 1))
		conns[i] = transport.NewResilient(flaky[i], cfg)
	}
	opts.FragmentSize = 16 << 10
	c, err := connect(1, conns, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, flaky
}

// chaosBlock derives a deterministic block body from (lbn, version).
func chaosBlock(lbn uint64, version int, size int) []byte {
	b := make([]byte, size)
	var seed [16]byte
	binary.LittleEndian.PutUint64(seed[0:], lbn)
	binary.LittleEndian.PutUint64(seed[8:], uint64(version))
	for i := range b {
		b[i] = seed[i%16] ^ byte(i)
	}
	return b
}

// TestChaosSurvivesServerOutages runs a mixed read/write/cleaner
// workload while servers are killed and restored, asserting zero data
// loss throughout and full redundancy after RebuildServer.
func TestChaosSurvivesServerOutages(t *testing.T) {
	const (
		nServers  = 5
		nBlocks   = 96
		blockSize = 2048
	)
	cfg := transport.ResilientConfig{
		MaxRetries:    2,
		RetryBase:     time.Millisecond,
		RetryMax:      4 * time.Millisecond,
		FailThreshold: 3,
		OpenTimeout:   40 * time.Millisecond,
		Seed:          7,
	}
	c, flaky := chaosCluster(t, nServers, cfg)
	defer c.Close()

	d, err := c.NewLogicalDisk(blockSize)
	if err != nil {
		t.Fatal(err)
	}
	cln := c.StartCleaner(0, CleanerConfig{UtilizationThreshold: 0.9, MaxStripesPerPass: 2, Force: true})

	content := make(map[uint64]int) // lbn → latest version written
	write := func(lbn uint64, version int) {
		t.Helper()
		if err := d.Write(lbn, chaosBlock(lbn, version, blockSize)); err != nil {
			t.Fatalf("write block %d v%d: %v", lbn, version, err)
		}
		content[lbn] = version
	}
	verifyAll := func(stage string) {
		t.Helper()
		for lbn, v := range content {
			got, err := d.Read(lbn)
			if err != nil {
				t.Fatalf("%s: read block %d: %v", stage, lbn, err)
			}
			if !bytes.Equal(got, chaosBlock(lbn, v, blockSize)) {
				t.Fatalf("%s: block %d corrupt", stage, lbn)
			}
		}
	}

	// Base load while everything is healthy.
	for i := 0; i < nBlocks; i++ {
		write(uint64(i), 0)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	version := 1

	// Kill and restore servers one at a time, overwriting and reading
	// through each outage; the cleaner runs mid-outage too.
	for _, victim := range []int{1, 3} {
		flaky[victim].SetDown(true)
		for i := 0; i < nBlocks/2; i++ {
			write(uint64(rng.Intn(nBlocks)), version)
			version++
		}
		if err := d.Sync(); err != nil {
			t.Fatalf("sync with server %d down: %v", victim+1, err)
		}
		if _, err := cln.CleanOnce(); err != nil {
			t.Fatalf("clean with server %d down: %v", victim+1, err)
		}
		verifyAll("during outage")

		flaky[victim].SetDown(false)
		// Let the breaker's open window lapse so the next call probes and
		// closes the circuit.
		time.Sleep(3 * cfg.OpenTimeout)
		if _, err := c.RebuildServer(ServerID(victim + 1)); err != nil {
			t.Fatalf("rebuild server %d: %v", victim+1, err)
		}
	}
	if stats := c.Log().Stats(); stats.DegradedWrites == 0 {
		t.Fatalf("chaos run never exercised degraded writes: %+v", stats)
	}

	// Probabilistic failures plus injected latency on one server; the
	// retry layer absorbs them without surfacing errors.
	flaky[0].SetFailureRate(0.02, 4242)
	flaky[0].SetLatency(200 * time.Microsecond)
	for i := 0; i < nBlocks; i++ {
		write(uint64(rng.Intn(nBlocks)), version)
		version++
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("sync under probabilistic chaos: %v", err)
	}
	flaky[0].SetFailureRate(0, 0)
	flaky[0].SetLatency(0)

	// Quiesce: rebuild every server, then everything must verify clean
	// with full redundancy.
	time.Sleep(3 * cfg.OpenTimeout)
	if _, err := cln.CleanOnce(); err != nil {
		t.Fatalf("final clean: %v", err)
	}
	for i := 0; i < nServers; i++ {
		if _, err := c.RebuildServer(ServerID(i + 1)); err != nil {
			t.Fatalf("final rebuild of server %d: %v", i+1, err)
		}
	}
	if left := c.Log().DegradedFIDs(); len(left) != 0 {
		t.Fatalf("degraded fragments remain after rebuild: %v", left)
	}
	verifyAll("final")
	for _, s := range c.Log().Usage().Stripes() {
		if u, _ := c.Log().Usage().Get(s); !u.Closed {
			continue
		}
		if err := c.Log().VerifyStripe(s); err != nil {
			t.Fatalf("stripe %d fails verification after rebuild: %v", s, err)
		}
	}
}

// TestChaosZipfReadsAlwaysFresh is the serving-tier chaos run: a fleet
// of Zipf-skewed readers hammers the cluster — through the servers' read
// caches, which NewServer enables by default — while a writer overwrites
// blocks, the cleaner recycles stripes, and servers are killed, restored,
// and rebuilt. Every read must return an internally consistent block no
// older than what was durably committed before the read began: a cached
// extent surviving slot recycling, reconstruction, or rebuild would
// surface here as stale or torn bytes (the generation-counter invariant,
// DESIGN.md §3.13).
func TestChaosZipfReadsAlwaysFresh(t *testing.T) {
	const (
		nServers  = 5
		nBlocks   = 64
		blockSize = 2048
		readers   = 8
	)
	cfg := transport.ResilientConfig{
		MaxRetries:    2,
		RetryBase:     time.Millisecond,
		RetryMax:      4 * time.Millisecond,
		FailThreshold: 3,
		OpenTimeout:   40 * time.Millisecond,
		Seed:          21,
	}
	conns := make([]transport.ServerConn, nServers)
	flaky := make([]*transport.Flaky, nServers)
	servers := make([]*Server, nServers)
	for i := 0; i < nServers; i++ {
		s, err := NewServer(ServerOptions{DiskBytes: 64 << 20, FragmentSize: 16 << 10})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		servers[i] = s
		flaky[i] = transport.NewFlaky(transport.NewLocal(ServerID(i+1), s.store, 1))
		conns[i] = transport.NewResilient(flaky[i], cfg)
	}
	c, err := connect(1, conns, ClientOptions{FragmentSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d, err := c.NewLogicalDisk(blockSize)
	if err != nil {
		t.Fatal(err)
	}
	cln := c.StartCleaner(0, CleanerConfig{UtilizationThreshold: 0.9, MaxStripesPerPass: 2, Force: true})

	// version[lbn] is the latest durably readable version; monotonic per
	// block (the global counter only grows).
	var verMu sync.Mutex
	version := make([]int, nBlocks)
	for i := 0; i < nBlocks; i++ {
		if err := d.Write(uint64(i), chaosBlock(uint64(i), 0, blockSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}

	// Zipf(1.0) inverse-CDF table: rank r is read ∝ 1/(r+1).
	cum := make([]float64, nBlocks)
	total := 0.0
	for i := range cum {
		total += 1 / float64(i+1)
		cum[i] = total
	}

	stop := make(chan struct{})
	var readOps atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)*7 + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lbn := uint64(sort.SearchFloat64s(cum, rng.Float64()*total))
				verMu.Lock()
				vmin := version[lbn]
				verMu.Unlock()
				// A block can be mid-relocation (cleaner) or mid-overwrite:
				// its old address transiently errors. Retry; only wrong
				// BYTES are a failure.
				var got []byte
				var rerr error
				for attempt := 0; attempt < 8; attempt++ {
					if got, rerr = d.Read(lbn); rerr == nil {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if rerr != nil {
					t.Errorf("read block %d: %v", lbn, rerr)
					return
				}
				// Recover the (lbn, version) seed the block was generated
				// from, then require exact regeneration: any torn or
				// cross-slot bytes break the whole-block pattern.
				var seed [16]byte
				for i := 0; i < 16; i++ {
					seed[i] = got[i] ^ byte(i)
				}
				gotLbn := binary.LittleEndian.Uint64(seed[0:8])
				gotVer := int(binary.LittleEndian.Uint64(seed[8:16]))
				if gotLbn != lbn {
					t.Errorf("block %d served block %d's data (stale cache extent?)", lbn, gotLbn)
					return
				}
				if !bytes.Equal(got, chaosBlock(lbn, gotVer, blockSize)) {
					t.Errorf("block %d v%d torn", lbn, gotVer)
					return
				}
				if gotVer < vmin {
					t.Errorf("block %d served v%d, but v%d was committed before the read", lbn, gotVer, vmin)
					return
				}
				readOps.Add(1)
			}
		}(r)
	}

	// Writer + chaos driver: overwrite bursts, outages, cleaner churn,
	// rebuilds — all while the readers run.
	rng := rand.New(rand.NewSource(55))
	nextVer := 1
	writeBurst := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			lbn := uint64(rng.Intn(nBlocks))
			v := nextVer
			nextVer++
			if err := d.Write(lbn, chaosBlock(lbn, v, blockSize)); err != nil {
				t.Fatalf("write block %d v%d: %v", lbn, v, err)
			}
			// A completed Write is immediately readable (read-your-writes
			// serves in-flight fragments), so v is now the reader floor.
			verMu.Lock()
			version[lbn] = v
			verMu.Unlock()
		}
		if err := d.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}
	for _, victim := range []int{1, 3} {
		writeBurst(16)
		flaky[victim].SetDown(true)
		writeBurst(16)
		if _, err := cln.CleanOnce(); err != nil {
			t.Fatalf("clean with server %d down: %v", victim+1, err)
		}
		flaky[victim].SetDown(false)
		time.Sleep(3 * cfg.OpenTimeout)
		if _, err := c.RebuildServer(ServerID(victim + 1)); err != nil {
			t.Fatalf("rebuild server %d: %v", victim+1, err)
		}
		writeBurst(16)
	}
	if _, err := cln.CleanOnce(); err != nil {
		t.Fatalf("final clean: %v", err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if ops := readOps.Load(); ops < int64(readers) {
		t.Fatalf("only %d reads completed", ops)
	}

	// Quiesced: every block must read back its exact latest version.
	verMu.Lock()
	final := append([]int(nil), version...)
	verMu.Unlock()
	for lbn, v := range final {
		got, err := d.Read(uint64(lbn))
		if err != nil {
			t.Fatalf("final read block %d: %v", lbn, err)
		}
		if !bytes.Equal(got, chaosBlock(uint64(lbn), v, blockSize)) {
			t.Fatalf("final: block %d is not v%d", lbn, v)
		}
	}
	// The run must actually have exercised the server read caches.
	var hits int64
	for _, s := range servers {
		hits += s.store.Stats().ReadHits
	}
	if hits == 0 {
		t.Fatal("chaos run never hit the server read caches")
	}
}

// TestDegradedWritesNotSerializedBehindDeadServer is the fail-fast
// acceptance check: with one slow, dead server, writes bound for the
// healthy servers must not queue behind the dead one's latency once the
// breaker opens.
func TestDegradedWritesNotSerializedBehindDeadServer(t *testing.T) {
	const latency = 25 * time.Millisecond
	cfg := transport.ResilientConfig{
		MaxRetries:    -1, // isolate breaker behavior from retry backoff
		FailThreshold: 2,
		OpenTimeout:   time.Minute,
		Seed:          7,
	}
	c, flaky := chaosCluster(t, 4, cfg)
	defer c.Close()

	flaky[2].SetDown(true)
	flaky[2].SetLatency(latency)

	payload := bytes.Repeat([]byte{5}, 1024)
	start := time.Now()
	syncs := 0
	for i := 0; time.Since(start) < 8*latency; i++ {
		if _, err := c.Log().AppendBlock(7, payload, nil); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if i%40 == 39 {
			if err := c.Sync(); err != nil {
				t.Fatalf("sync %d: %v", i, err)
			}
			syncs++
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	// The dead server saw at most FailThreshold slow calls before its
	// circuit opened; everything after failed fast. Were each store to
	// the dead server paying the injected latency, this many syncs of
	// 40 KB against 16 KB fragments could not fit in the time budget.
	h := c.Health()
	if len(h) != 4 {
		t.Fatalf("health reports %d servers, want 4", len(h))
	}
	dead := h[2]
	if dead.State != "open" {
		t.Fatalf("dead server's circuit is %q, want open", dead.State)
	}
	if dead.FastFails == 0 {
		t.Fatal("no calls failed fast at the open circuit")
	}
	if st := c.Log().Stats(); st.DegradedWrites == 0 {
		t.Fatalf("no degraded writes despite dead server: %+v", st)
	}
}

// TestConnectAddrsToleratesDeadServer: a client must be able to OPEN a
// degraded cluster, not just survive a server dying mid-session — reads
// reconstruct around the missing member and Health reports the outage.
func TestConnectAddrsToleratesDeadServer(t *testing.T) {
	var addrs []string
	var servers []*Server
	for i := 0; i < 4; i++ {
		s, err := NewServer(ServerOptions{DiskBytes: 32 << 20, FragmentSize: 64 << 10, Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	c1, err := ConnectAddrs(1, addrs, ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("degraded connect"), 64)
	var blocks []BlockAddr
	for i := 0; i < 30; i++ {
		addr, err := c1.Log().AppendBlock(7, payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, addr)
	}
	if err := c1.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	servers[2].Close()
	c2, err := ConnectAddrs(1, addrs, ClientOptions{
		FragmentSize: 64 << 10,
		Resilience:   ResilientConfig{RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("connect to degraded cluster: %v", err)
	}
	defer c2.Close()
	for i, addr := range blocks {
		got, err := c2.Log().Read(addr, 0, uint32(len(payload)))
		if err != nil {
			t.Fatalf("degraded read %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("degraded read %d mismatch", i)
		}
	}
	h := c2.Health()
	if len(h) != 4 {
		t.Fatalf("health reports %d servers, want 4", len(h))
	}
	if h[2].Failures == 0 {
		t.Fatalf("dead server shows no failures: %+v", h[2])
	}
}

// TestClientCloseToleratesDownedServer is the regression test for
// Client.Close: shutting down over a dead server must not report an
// error — the local resources are released either way.
func TestClientCloseToleratesDownedServer(t *testing.T) {
	conns := make([]transport.ServerConn, 3)
	flaky := make([]*transport.Flaky, 3)
	for i := 0; i < 3; i++ {
		s, err := NewServer(ServerOptions{DiskBytes: 32 << 20, FragmentSize: 16 << 10})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		flaky[i] = transport.NewFlaky(transport.NewLocal(ServerID(i+1), s.store, 1))
		conns[i] = flaky[i]
	}
	c, err := connect(1, conns, ClientOptions{FragmentSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Log().AppendBlock(7, []byte("still here"), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	flaky[2].SetDown(true)
	if err := c.Close(); err != nil {
		t.Fatalf("close over a downed server: %v", err)
	}
}

// TestChaosRSDoubleFailure is the Reed–Solomon acceptance run: an
// RS(4,2) cluster (six servers, two parity shards per stripe) sustains
// mixed read/write/cleaner load while PAIRS of servers are killed
// simultaneously, with zero data loss. Each outage is followed by a
// rebuild that restores full two-failure tolerance for the next pair.
func TestChaosRSDoubleFailure(t *testing.T) {
	const (
		nServers  = 6
		nBlocks   = 60
		blockSize = 2048
	)
	cfg := transport.ResilientConfig{
		MaxRetries:    2,
		RetryBase:     time.Millisecond,
		RetryMax:      4 * time.Millisecond,
		FailThreshold: 3,
		OpenTimeout:   40 * time.Millisecond,
		Seed:          11,
	}
	c, flaky := chaosClusterOpts(t, nServers, cfg, ClientOptions{ParityShards: 2, Codec: "rs"})
	defer c.Close()

	d, err := c.NewLogicalDisk(blockSize)
	if err != nil {
		t.Fatal(err)
	}
	cln := c.StartCleaner(0, CleanerConfig{UtilizationThreshold: 0.9, MaxStripesPerPass: 2, Force: true})

	content := make(map[uint64]int)
	write := func(lbn uint64, version int) {
		t.Helper()
		if err := d.Write(lbn, chaosBlock(lbn, version, blockSize)); err != nil {
			t.Fatalf("write block %d v%d: %v", lbn, version, err)
		}
		content[lbn] = version
	}
	verifyAll := func(stage string) {
		t.Helper()
		for lbn, v := range content {
			got, err := d.Read(lbn)
			if err != nil {
				t.Fatalf("%s: read block %d: %v", stage, lbn, err)
			}
			if !bytes.Equal(got, chaosBlock(lbn, v, blockSize)) {
				t.Fatalf("%s: block %d corrupt", stage, lbn)
			}
		}
	}

	for i := 0; i < nBlocks; i++ {
		write(uint64(i), 0)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1234))
	version := 1

	// Kill pairs covering every server position at least twice. Both
	// members of each pair go down SIMULTANEOUSLY: every stripe written
	// through the outage loses up to two members, which only the m=2
	// codec covers.
	pairs := [][2]int{{0, 1}, {2, 3}, {4, 5}, {0, 3}, {1, 4}, {2, 5}}
	for _, pair := range pairs {
		flaky[pair[0]].SetDown(true)
		flaky[pair[1]].SetDown(true)
		for i := 0; i < 20; i++ {
			write(uint64(rng.Intn(nBlocks)), version)
			version++
		}
		if err := d.Sync(); err != nil {
			t.Fatalf("sync with servers %v down: %v", pair, err)
		}
		if _, err := cln.CleanOnce(); err != nil {
			t.Fatalf("clean with servers %v down: %v", pair, err)
		}
		verifyAll("during double outage")
		if st := c.Log().Stats(); st.MinSpareRedundancy != 0 {
			t.Fatalf("MinSpareRedundancy = %d during double outage, want 0", st.MinSpareRedundancy)
		}

		flaky[pair[0]].SetDown(false)
		flaky[pair[1]].SetDown(false)
		time.Sleep(3 * cfg.OpenTimeout)
		for _, victim := range pair {
			if _, err := c.RebuildServer(ServerID(victim + 1)); err != nil {
				t.Fatalf("rebuild server %d: %v", victim+1, err)
			}
		}
	}
	if stats := c.Log().Stats(); stats.DegradedWrites == 0 {
		t.Fatalf("chaos run never exercised degraded writes: %+v", stats)
	}

	// Quiesce and prove full redundancy came back everywhere.
	time.Sleep(3 * cfg.OpenTimeout)
	if _, err := cln.CleanOnce(); err != nil {
		t.Fatalf("final clean: %v", err)
	}
	for i := 0; i < nServers; i++ {
		if _, err := c.RebuildServer(ServerID(i + 1)); err != nil {
			t.Fatalf("final rebuild of server %d: %v", i+1, err)
		}
	}
	if left := c.Log().DegradedFIDs(); len(left) != 0 {
		t.Fatalf("degraded fragments remain after rebuild: %v", left)
	}
	if st := c.Log().Stats(); st.MinSpareRedundancy != 2 {
		t.Fatalf("MinSpareRedundancy = %d after full rebuild, want 2", st.MinSpareRedundancy)
	}
	verifyAll("final")
	for _, s := range c.Log().Usage().Stripes() {
		if u, _ := c.Log().Usage().Get(s); !u.Closed {
			continue
		}
		if err := c.Log().VerifyStripe(s); err != nil {
			t.Fatalf("stripe %d fails verification after rebuild: %v", s, err)
		}
	}
}

// TestChaosQoSIsolationUnderFailure is the QoS chaos run: a greedy
// tenant hammers raw fragment stores through small admission bounds
// (provoking StatusBusy sheds and client busy-retries) while a light
// tenant runs its full striped-log workload — and mid-run a server is
// killed, restored, and rebuilt. The assertions are the QoS tier's
// safety and liveness story: the light tenant completes every phase
// under sustained overload (no starvation — a stall here hangs the
// test), nothing either tenant wrote is lost, sheds really happened,
// and shed requests were retried to success rather than surfacing.
func TestChaosQoSIsolationUnderFailure(t *testing.T) {
	const (
		nServers      = 3
		blockSize     = 2048
		lightID       = ClientID(1)
		greedyID      = ClientID(2)
		greedyWriters = 6
	)
	cfg := transport.ResilientConfig{
		MaxRetries:    2,
		RetryBase:     200 * time.Microsecond,
		RetryMax:      2 * time.Millisecond,
		BusyRetries:   12,
		FailThreshold: 3,
		OpenTimeout:   40 * time.Millisecond,
		Seed:          11,
	}
	qos := server.QoSConfig{
		Slots:   1,
		Quantum: 16 << 10,
		Classes: map[wire.ClientID]server.ClassConfig{
			lightID:  {Weight: 8},
			greedyID: {Weight: 1, MaxQueuedOps: 1},
		},
	}

	// Servers with the QoS tier on; separate fault-injection layers per
	// principal (the transports are per-client) that are killed together.
	servers := make([]*Server, nServers)
	lightFlaky := make([]*transport.Flaky, nServers)
	greedyFlaky := make([]*transport.Flaky, nServers)
	lightConns := make([]transport.ServerConn, nServers)
	for i := 0; i < nServers; i++ {
		s, err := NewServer(ServerOptions{DiskBytes: 64 << 20, FragmentSize: 16 << 10, QoS: &qos})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		servers[i] = s
		lightFlaky[i] = transport.NewFlaky(transport.NewLocal(ServerID(i+1), s.store, lightID))
		greedyFlaky[i] = transport.NewFlaky(transport.NewLocal(ServerID(i+1), s.store, greedyID))
		lightConns[i] = transport.NewResilient(lightFlaky[i], cfg)
	}
	setDown := func(i int, down bool) {
		lightFlaky[i].SetDown(down)
		greedyFlaky[i].SetDown(down)
	}

	// Each greedy writer gets its own resilient conns (own breaker and
	// backoff stream) over the shared per-server fault layer.
	greedyConns := make([][]transport.ServerConn, greedyWriters)
	for w := range greedyConns {
		greedyConns[w] = make([]transport.ServerConn, nServers)
		for i := range greedyConns[w] {
			wcfg := cfg
			wcfg.Seed = int64(100 + w*nServers + i)
			greedyConns[w][i] = transport.NewResilient(greedyFlaky[i], wcfg)
		}
	}

	c, err := connect(lightID, lightConns, ClientOptions{FragmentSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d, err := c.NewLogicalDisk(blockSize)
	if err != nil {
		t.Fatal(err)
	}

	content := make(map[uint64]int) // light tenant: lbn → latest version
	greedyStored := make([]map[FID][]byte, greedyWriters)
	for w := range greedyStored {
		greedyStored[w] = make(map[FID][]byte)
	}
	var greedySeq uint64 // strictly increasing FID sequence per writer ×1e6

	// phase runs the light tenant's fixed workload (writes + sync +
	// read-verify) against sustained greedy overload; the greedy loops
	// only stop once the light tenant finishes, so phase completion IS
	// the starvation check.
	version := 1
	phase := func(stage string) {
		t.Helper()
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < greedyWriters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(version*100 + w)))
				base := atomic.AddUint64(&greedySeq, 1) << 20
				for n := uint64(0); ; n++ {
					select {
					case <-stop:
						return
					default:
					}
					si := rng.Intn(nServers)
					fid := wire.MakeFID(greedyID, base+n)
					body := chaosBlock(uint64(fid), w, 1024)
					err := greedyConns[w][si].Store(fid, body, false, nil)
					switch {
					case err == nil, wire.IsStatus(err, wire.StatusExists):
						greedyStored[w][fid] = body
					default:
						// Dead server or exhausted busy budget: the
						// request was not served; the writer moves on.
					}
				}
			}(w)
		}
		for i := 0; i < 32; i++ {
			lbn := uint64(i)
			if err := d.Write(lbn, chaosBlock(lbn, version, blockSize)); err != nil {
				t.Errorf("%s: light write %d: %v", stage, lbn, err)
			}
			content[lbn] = version
		}
		if err := d.Sync(); err != nil {
			t.Errorf("%s: light sync: %v", stage, err)
		}
		for lbn, v := range content {
			got, err := d.Read(lbn)
			if err != nil {
				t.Errorf("%s: light read %d: %v", stage, lbn, err)
			} else if !bytes.Equal(got, chaosBlock(lbn, v, blockSize)) {
				t.Errorf("%s: light block %d corrupt", stage, lbn)
			}
		}
		close(stop)
		wg.Wait()
		version++
	}

	phase("healthy overload")

	// Kill a server mid-overload; the light tenant must still complete
	// (degraded writes), then restore and rebuild it.
	const victim = 1
	setDown(victim, true)
	phase("server down")
	setDown(victim, false)
	time.Sleep(3 * cfg.OpenTimeout)
	if _, err := c.RebuildServer(ServerID(victim + 1)); err != nil {
		t.Fatalf("rebuild server %d: %v", victim+1, err)
	}

	phase("after rebuild")

	// Zero data loss, both tenants. The light tenant re-verifies through
	// its log; every fragment a greedy writer recorded as stored must
	// read back intact from whichever server accepted it.
	for lbn, v := range content {
		got, err := d.Read(lbn)
		if err != nil {
			t.Fatalf("final light read %d: %v", lbn, err)
		}
		if !bytes.Equal(got, chaosBlock(lbn, v, blockSize)) {
			t.Fatalf("final: light block %d corrupt", lbn)
		}
	}
	verify := make([]transport.ServerConn, nServers)
	for i := range verify {
		vcfg := cfg
		vcfg.Seed = int64(1000 + i)
		verify[i] = transport.NewResilient(greedyFlaky[i], vcfg)
	}
	verified := 0
	for w := range greedyStored {
		for fid, want := range greedyStored[w] {
			var got []byte
			var rerr error
			for i := 0; i < nServers; i++ {
				if got, rerr = verify[i].Read(fid, 0, uint32(len(want))); rerr == nil {
					break
				}
			}
			if rerr != nil {
				t.Fatalf("greedy fragment %v lost: %v", fid, rerr)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("greedy fragment %v corrupt", fid)
			}
			verified++
		}
	}
	if verified == 0 {
		t.Fatal("greedy tenant recorded no stored fragments; overload never ran")
	}

	// The QoS tier must actually have engaged: admission shed greedy
	// requests, clients retried them (busy retries, breaker untouched by
	// sheds), and the servers account both tenants.
	var sheds, lightOps uint64
	for _, s := range servers {
		for _, tn := range s.store.Stats().Tenants {
			switch tn.Client {
			case greedyID:
				sheds += tn.Sheds
			case lightID:
				lightOps += tn.Ops
			}
		}
	}
	if sheds == 0 {
		t.Fatal("no greedy sheds: overload never tripped admission control")
	}
	if lightOps == 0 {
		t.Fatal("servers did not account the light tenant")
	}
	var busy int64
	for w := range greedyConns {
		for _, h := range transport.HealthOf(greedyConns[w]) {
			busy += h.Busy
		}
	}
	if busy == 0 {
		t.Fatal("sheds observed server-side but no client busy-retries")
	}
}
