package bench

import (
	"fmt"
	"time"

	"swarm/internal/blockcache"
	"swarm/internal/core"
	"swarm/internal/model"
)

// ReadConfig parameterizes the cold/warm read measurement (the in-text
// numbers of §3.4: ~1.7 MB/s cold 4 KB reads, masked by the client
// cache).
type ReadConfig struct {
	Servers   int
	Blocks    int
	BlockSize int
	Scale     float64
}

// ReadResult reports cold, prefetched, and cached read bandwidth.
type ReadResult struct {
	Servers int
	// ColdMBps: block-at-a-time cold reads (the prototype's behaviour,
	// the paper's 1.7 MB/s).
	ColdMBps float64
	// PrefetchMBps: cold reads with fragment readahead enabled — the
	// optimization the paper says "would greatly improve the
	// performance of reads that miss in the client cache".
	PrefetchMBps float64
	// CachedMBps: rereads served by the client block cache.
	CachedMBps float64
	Elapsed    time.Duration
}

// RunReadPoint writes Blocks 4 KB blocks, flushes, then reads them all
// back twice: once cold against the servers (no prefetch, no server
// cache — matching the prototype) and once through the client block
// cache.
func RunReadPoint(cfg ReadConfig) (ReadResult, error) {
	if cfg.Servers == 0 {
		cfg.Servers = 2
	}
	if cfg.Blocks == 0 {
		cfg.Blocks = 2000
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 4096
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	params := model.Paper1999().Scaled(cfg.Scale)
	cluster, err := NewSimCluster(ClusterConfig{
		Servers:   cfg.Servers,
		DiskBytes: int64(cfg.Blocks)*int64(cfg.BlockSize)*4 + (64 << 20),
		Params:    params,
	})
	if err != nil {
		return ReadResult{}, err
	}
	env := cluster.Client(1)
	log, _, err := core.Open(core.Config{
		Client:       1,
		Servers:      env.Conns,
		CPU:          env.CPU,
		FragOverhead: params.ClientFragOverhead,
	})
	if err != nil {
		return ReadResult{}, err
	}
	block := make([]byte, cfg.BlockSize)
	addrs := make([]core.BlockAddr, 0, cfg.Blocks)
	for i := 0; i < cfg.Blocks; i++ {
		addr, err := log.AppendBlock(7, block, nil)
		if err != nil {
			return ReadResult{}, err
		}
		addrs = append(addrs, addr)
	}
	if err := log.Sync(); err != nil {
		return ReadResult{}, err
	}

	// Cold pass: straight to the servers, block at a time.
	start := time.Now()
	for _, addr := range addrs {
		if _, err := log.Read(addr, 0, uint32(cfg.BlockSize)); err != nil {
			return ReadResult{}, fmt.Errorf("cold read %v: %w", addr, err)
		}
	}
	coldElapsed := time.Since(start)

	// Prefetch pass: a fresh log with fragment readahead, same blocks.
	raLog, _, err := core.Open(core.Config{
		Client:             1,
		Servers:            env.Conns,
		CPU:                env.CPU,
		FragOverhead:       params.ClientFragOverhead,
		ReadaheadFragments: 16,
	})
	if err != nil {
		return ReadResult{}, err
	}
	start = time.Now()
	for _, addr := range addrs {
		if _, err := raLog.Read(addr, 0, uint32(cfg.BlockSize)); err != nil {
			return ReadResult{}, fmt.Errorf("prefetch read %v: %w", addr, err)
		}
	}
	prefetchElapsed := time.Since(start)

	// Warm pass: through the client block cache (populate, then reread).
	cache := blockcache.New(log, int64(cfg.Blocks)*int64(cfg.BlockSize)*2)
	for _, addr := range addrs {
		if _, err := cache.ReadBlock(addr, uint32(cfg.BlockSize), 0, uint32(cfg.BlockSize)); err != nil {
			return ReadResult{}, err
		}
	}
	start = time.Now()
	for _, addr := range addrs {
		if _, err := cache.ReadBlock(addr, uint32(cfg.BlockSize), 0, uint32(cfg.BlockSize)); err != nil {
			return ReadResult{}, err
		}
	}
	warmElapsed := time.Since(start)

	total := float64(cfg.Blocks) * float64(cfg.BlockSize)
	res := ReadResult{
		Servers:      cfg.Servers,
		ColdMBps:     total / coldElapsed.Seconds() / model.MB / cfg.Scale,
		PrefetchMBps: total / prefetchElapsed.Seconds() / model.MB / cfg.Scale,
		// The warm pass never touches the emulated hardware, so it is
		// NOT normalized: it is genuinely memory-speed.
		CachedMBps: total / warmElapsed.Seconds() / model.MB,
		Elapsed:    time.Duration(float64(coldElapsed) * cfg.Scale),
	}
	return res, log.Close()
}
