package swarm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"swarm/internal/aru"
	"swarm/internal/cleaner"
	"swarm/internal/core"
	"swarm/internal/erasure"
	"swarm/internal/ldisk"
	"swarm/internal/service"
	"swarm/internal/sting"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// Well-known service IDs used by the facade. Service IDs appear in the
// log, so they are fixed constants, not allocated dynamically.
const (
	// ARUServiceID is the atomic-recovery-unit manager's service ID.
	ARUServiceID ServiceID = 3
	// LogicalDiskServiceID is the logical disk's service ID.
	LogicalDiskServiceID ServiceID = 4
	// StingServiceID is the Sting file system's service ID.
	StingServiceID = sting.DefaultServiceID
)

// ClientOptions configures a Swarm client (one log owner).
type ClientOptions struct {
	// FragmentSize must match the servers'. Default 1 MB.
	FragmentSize int
	// Width is the stripe width including parity; default all servers
	// (capped at the protocol maximum of 16).
	Width int
	// DisableParity trades availability for capacity.
	DisableParity bool
	// ParityShards is the number of redundancy fragments per stripe
	// (m): the stripe survives any m simultaneous server losses.
	// Default 1 (the paper's single rotating parity). Must be < Width.
	// Each stripe then holds Width-m data fragments, so write
	// amplification is Width/(Width-m).
	ParityShards int
	// Codec names the erasure code: "xor" (only valid with ParityShards
	// ≤ 1, byte-identical to the original format) or "rs" (GF(2^8)
	// Reed–Solomon, any k of n members reconstruct the rest). Default:
	// xor for ParityShards ≤ 1, rs otherwise. The codec is stamped into
	// every fragment header, so reconfiguring an existing log is safe —
	// old stripes keep decoding with the code that wrote them.
	Codec string
	// PipelineDepth bounds in-flight fragments per server. Default 2.
	PipelineDepth int
	// FetchConcurrency bounds concurrent fragment fetches per server in
	// the fragment I/O engine (reads, reconstruction, rebuild, recovery,
	// and the cleaner all share it). Default 4.
	FetchConcurrency int
	// MaxInFlight bounds concurrent RPCs multiplexed on each pooled TCP
	// connection (default transport.DefaultMaxInFlight). Raise it along
	// with FetchConcurrency when wide fan-outs must not queue behind one
	// another; 1 forces lock-step request/response per connection.
	// In-process clusters connect directly and ignore this.
	MaxInFlight int
	// PreallocStripes reserves stripe slots on the servers when a stripe
	// opens, guaranteeing started stripes (and their parity) can always
	// be stored even if other clients fill the servers meanwhile.
	PreallocStripes bool
	// ReadaheadFragments enables fragment-grained read caching: cold
	// block reads fetch and cache whole fragments (the prefetch the
	// paper names as the missing read optimization). The value is the
	// number of fragments cached; 0 disables.
	ReadaheadFragments int
	// Protect creates an access control list on every server (initially
	// containing only this client) and stores every fragment under it,
	// so other clients cannot read or delete this log's data (§2.3.2).
	// Use Client.GrantAccess to admit other clients later.
	Protect bool
	// Resilience tunes the retry/circuit-breaker layer that ConnectAddrs
	// wraps around every TCP connection; the zero value selects the
	// defaults documented on ResilientConfig. In-process clusters connect
	// directly and ignore this.
	Resilience ResilientConfig
	// DisableResilience connects over raw TCP with no retries, breakers,
	// or health tracking (mainly for benchmarking the bare protocol).
	DisableResilience bool
}

// Client is one Swarm client: the owner of one striped log, plus the
// service registry stacked on it.
type Client struct {
	id   ClientID
	log  *core.Log
	reg  *service.Registry
	rec  *core.Recovery
	opts ClientOptions

	mu     sync.Mutex
	conns  []transport.ServerConn
	acls   map[ServerID]wire.AID
	drains map[ServerID]*drainJob

	cleaner *cleaner.Cleaner
}

// ConnectAddrs connects to storage servers over TCP (the addresses of
// running swarmd processes, in cluster order) and opens/recovers the
// client's log.
func ConnectAddrs(id ClientID, addrs []string, opts ClientOptions) (*Client, error) {
	tcpOpts := transport.TCPOptions{PoolSize: opts.PipelineDepth, MaxInFlight: opts.MaxInFlight}
	conns := make([]transport.ServerConn, 0, len(addrs))
	for i, addr := range addrs {
		var sc transport.ServerConn
		tc, err := transport.DialTCPOpts(ServerID(i+1), addr, id, tcpOpts)
		switch {
		case err == nil:
			sc = tc
		case !opts.DisableResilience && errors.Is(err, transport.ErrUnavailable):
			// The server is unreachable right now, not misconfigured: a
			// degraded cluster must still be connectable (reads
			// reconstruct and writes degrade around the dead member), so
			// fall back to a lazily-dialed connection and let the
			// circuit breaker track the outage until the server answers.
			sc = transport.NewTCPConnOpts(ServerID(i+1), addr, id, tcpOpts)
		default:
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("connect server %d (%s): %w", i+1, addr, err)
		}
		if !opts.DisableResilience {
			sc = transport.NewResilient(sc, opts.Resilience)
		}
		conns = append(conns, sc)
	}
	return connect(id, conns, opts)
}

// connectLocal wires a client directly to in-process servers.
func connectLocal(id ClientID, servers []*Server, opts ClientOptions) (*Client, error) {
	conns := make([]transport.ServerConn, 0, len(servers))
	for i, s := range servers {
		conns = append(conns, transport.NewLocal(ServerID(i+1), s.store, id))
	}
	return connect(id, conns, opts)
}

func connect(id ClientID, conns []transport.ServerConn, opts ClientOptions) (*Client, error) {
	closeAll := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	var acls map[ServerID]wire.AID
	if opts.Protect {
		acls = make(map[ServerID]wire.AID, len(conns))
		for _, sc := range conns {
			aid, err := sc.ACLCreate([]ClientID{id})
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("create ACL on server %d: %w", sc.ID(), err)
			}
			acls[sc.ID()] = aid
		}
	}
	var codec erasure.Kind
	if opts.Codec != "" {
		var kerr error
		codec, kerr = erasure.ParseKind(opts.Codec)
		if kerr != nil {
			closeAll()
			return nil, kerr
		}
	}
	l, rec, err := core.Open(core.Config{
		Client:             id,
		Servers:            conns,
		FragmentSize:       opts.FragmentSize,
		Width:              opts.Width,
		DisableParity:      opts.DisableParity,
		ParityShards:       opts.ParityShards,
		Codec:              codec,
		PipelineDepth:      opts.PipelineDepth,
		FetchConcurrency:   opts.FetchConcurrency,
		MaxInFlight:        opts.MaxInFlight,
		PreallocStripes:    opts.PreallocStripes,
		ReadaheadFragments: opts.ReadaheadFragments,
		ACLs:               acls,
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	return &Client{
		id:    id,
		log:   l,
		reg:   service.NewRegistry(l),
		rec:   rec,
		opts:  opts,
		conns: conns,
		acls:  acls,
	}, nil
}

// GrantAccess adds other clients to this client's fragment ACLs on every
// server: "once the client has been added to the appropriate ACLs, all
// data protected by those ACLs will be accessible" (§2.3.2). Only valid
// on clients connected with Protect.
func (c *Client) GrantAccess(ids ...ClientID) error {
	if len(c.acls) == 0 {
		return errors.New("swarm: client was not connected with Protect")
	}
	for _, sc := range c.servers() {
		aid, ok := c.aclOf(sc.ID())
		if !ok {
			continue
		}
		if err := sc.ACLModify(aid, ids, nil); err != nil {
			return fmt.Errorf("modify ACL on server %d: %w", sc.ID(), err)
		}
	}
	return nil
}

// RevokeAccess removes clients from this client's fragment ACLs.
func (c *Client) RevokeAccess(ids ...ClientID) error {
	if len(c.acls) == 0 {
		return errors.New("swarm: client was not connected with Protect")
	}
	for _, sc := range c.servers() {
		aid, ok := c.aclOf(sc.ID())
		if !ok {
			continue
		}
		if err := sc.ACLModify(aid, nil, ids); err != nil {
			return fmt.Errorf("modify ACL on server %d: %w", sc.ID(), err)
		}
	}
	return nil
}

// servers snapshots the connection list (it changes under AddServer and
// RemoveServer).
func (c *Client) servers() []transport.ServerConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]transport.ServerConn(nil), c.conns...)
}

func (c *Client) aclOf(id ServerID) (wire.AID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	aid, ok := c.acls[id]
	return aid, ok
}

// ID returns the client's identity.
func (c *Client) ID() ClientID { return c.id }

// Log exposes the client's striped log for direct block/record access.
func (c *Client) Log() *Log { return c.log }

// Registry exposes the service registry for custom services: implement
// swarm.Service and register it with the recovered state from Recovery.
func (c *Client) Registry() *Registry { return c.reg }

// Recovery returns the recovery state produced when the log was opened
// (fresh logs yield an empty recovery).
func (c *Client) Recovery() *Recovery { return c.rec }

// FSConfig configures a Sting mount.
type FSConfig struct {
	// BlockSize is the file data block size. Default 4096.
	BlockSize int
	// CacheBytes sizes the client block cache (0 disables).
	CacheBytes int64
	// DirtyLimit is the write-back threshold. Default 4 MB.
	DirtyLimit int64
	// ReadaheadFragments arms the block cache's sequential readahead:
	// misses walking forward through the log prefetch this many upcoming
	// fragments. Zero disables. Only effective with CacheBytes > 0.
	ReadaheadFragments int
}

// Mount mounts the Sting file system on this client's log, replaying any
// recovered state.
func (c *Client) Mount(cfg FSConfig) (*FS, error) {
	return sting.Mount(c.log, c.reg, c.rec, sting.Config{
		BlockSize:          cfg.BlockSize,
		CacheBytes:         cfg.CacheBytes,
		DirtyLimit:         cfg.DirtyLimit,
		ReadaheadFragments: cfg.ReadaheadFragments,
	})
}

// NewARUManager registers and returns an atomic-recovery-unit manager.
// replay receives committed records during crash recovery, in commit
// order; pass nil to ignore them.
func (c *Client) NewARUManager(replay func(payload []byte) error) (*ARUManager, error) {
	m := aru.New(ARUServiceID, c.log)
	if replay != nil {
		m.SetReplayHandler(replay)
	}
	if err := c.reg.Register(m, c.rec.Service(ARUServiceID)); err != nil {
		return nil, err
	}
	return m, nil
}

// NewLogicalDisk registers and returns a logical disk with the given
// block size.
func (c *Client) NewLogicalDisk(blockSize int) (*LogicalDisk, error) {
	d, err := ldisk.New(LogicalDiskServiceID, c.log, blockSize)
	if err != nil {
		return nil, err
	}
	if err := c.reg.Register(d, c.rec.Service(LogicalDiskServiceID)); err != nil {
		return nil, err
	}
	return d, nil
}

// StartCleaner starts a background cleaner with the given pass interval.
// It returns the cleaner for CleanOnce/Stats access; Close stops it.
func (c *Client) StartCleaner(interval time.Duration, cfg CleanerConfig) *Cleaner {
	c.cleaner = cleaner.New(c.log, c.reg, cfg)
	if interval > 0 {
		c.cleaner.Start(interval)
	}
	return c.cleaner
}

// RebuildServer restores redundancy after storage server id was replaced
// with an empty one: every missing fragment that belongs there is
// reconstructed from its stripe and stored back. Returns the number of
// fragments rebuilt.
func (c *Client) RebuildServer(id ServerID) (int, error) {
	return c.log.RebuildServer(id)
}

// Health reports per-server circuit-breaker state and retry/failure
// counters for connections wrapped by the resilient transport layer
// (ConnectAddrs wraps every TCP connection unless DisableResilience is
// set). Connections without a resilience layer report nothing, so an
// in-process cluster returns an empty slice.
func (c *Client) Health() []Health {
	return transport.HealthOf(c.servers())
}

// Sync flushes the log.
func (c *Client) Sync() error { return c.log.Sync() }

// Close syncs the log, stops the cleaner, and releases connections.
// A connection whose server is down closes with ErrUnavailable; that is
// not a failure of Close — the local resources are released either way,
// and a client must be able to shut down cleanly over a dead server.
func (c *Client) Close() error {
	if c.cleaner != nil {
		c.cleaner.Stop()
	}
	c.stopDrains()
	err := c.log.Close()
	for _, sc := range c.servers() {
		cerr := sc.Close()
		if cerr == nil || errors.Is(cerr, transport.ErrUnavailable) {
			continue
		}
		if err == nil {
			err = cerr
		}
	}
	return err
}

// Cluster is a convenience bundle of in-process storage servers for
// embedding, examples, and tests.
type Cluster struct {
	servers []*Server
}

// NewLocalCluster starts n in-process storage servers.
func NewLocalCluster(n int, opts ServerOptions) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("swarm: cluster needs at least one server, got %d", n)
	}
	cl := &Cluster{}
	for i := 0; i < n; i++ {
		s, err := NewServer(opts)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.servers = append(cl.servers, s)
	}
	return cl, nil
}

// Servers returns the cluster's servers.
func (cl *Cluster) Servers() []*Server { return cl.servers }

// Connect opens a client over all of the cluster's servers.
func (cl *Cluster) Connect(id ClientID, opts ...ClientOptions) (*Client, error) {
	var o ClientOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return connectLocal(id, cl.servers, o)
}

// Close shuts every server down.
func (cl *Cluster) Close() error {
	var err error
	for _, s := range cl.servers {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
