package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"swarm/internal/wire"
)

// DefaultPoolSize is how many TCP connections a client keeps per server.
// Two matches the log layer's pipeline depth: one fragment can be in
// flight on the network while the server writes the previous one to disk.
const DefaultPoolSize = 2

// DefaultMaxInFlight is how many RPCs may ride one pooled connection
// concurrently. Requests are tagged with IDs and responses demultiplexed
// by ID, so a connection is a shared pipe, not a checked-out resource;
// this bounds the pipe's depth. The fragment I/O engine's own per-server
// semaphores (PipelineDepth, FetchConcurrency) are the workload-level
// throttles — this knob only needs to be at least their sum to never be
// the bottleneck.
const DefaultMaxInFlight = 8

// DefaultIOTimeout bounds each RPC (request write plus response wait) on
// a pooled connection, and the dial itself. Without a deadline a hung
// server — as opposed to a dead one, whose RST fails fast — would stall
// the caller forever and with it every stripe that includes the server.
// Override per connection with SetIOTimeout.
const DefaultIOTimeout = 15 * time.Second

// TCPOptions tunes a TCP ServerConn. The zero value selects defaults.
type TCPOptions struct {
	// PoolSize is the number of TCP connections kept to the server
	// (default DefaultPoolSize).
	PoolSize int
	// MaxInFlight bounds concurrent RPCs multiplexed on each connection
	// (default DefaultMaxInFlight). 1 degenerates to lock-step
	// request/response per connection.
	MaxInFlight int
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.PoolSize <= 0 {
		o.PoolSize = DefaultPoolSize
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = DefaultMaxInFlight
	}
	return o
}

// tcpRPC multiplexes RPCs over a small pool of TCP connections. Each
// connection has a reader goroutine demultiplexing response frames by
// request ID, so up to PoolSize × MaxInFlight RPCs proceed in parallel.
type tcpRPC struct {
	addr      string
	client    wire.ClientID
	opts      TCPOptions
	nextID    atomic.Uint64
	ioTimeout atomic.Int64 // nanoseconds; 0 disables deadlines

	mu     sync.Mutex
	closed bool // guarded by mu
	next   int  // round-robin cursor over slots; guarded by mu
	slots  []connSlot
}

// connSlot is one position in the connection pool. The muxConn it holds
// is replaced (by dialing) when the previous one breaks.
type connSlot struct {
	dialMu sync.Mutex // serializes dialing this slot
	mc     atomic.Pointer[muxConn]
}

// muxConn is one multiplexed TCP connection: a write mutex serializes
// request frames, a reader goroutine routes response frames to the
// pending map by ID, and a semaphore bounds in-flight RPCs.
type muxConn struct {
	c   net.Conn
	sem chan struct{}
	// wmu serializes request frames onto c; writing under it is the
	// mutex's entire purpose. swarmlint:io-mutex
	wmu sync.Mutex

	pmu     sync.Mutex
	pending map[uint64]chan *wire.Response // guarded by pmu
	dead    bool                           // guarded by pmu
	deadErr error                          // guarded by pmu
}

// TCPConn is a ServerConn over the wire protocol.
type TCPConn struct {
	conn
	rpc *tcpRPC
}

var _ ServerConn = (*TCPConn)(nil)

// DialTCP connects to a storage server at addr as the given client with
// default multiplexing (poolSize ≤ 0 uses DefaultPoolSize).
func DialTCP(id wire.ServerID, addr string, client wire.ClientID, poolSize int) (*TCPConn, error) {
	return DialTCPOpts(id, addr, client, TCPOptions{PoolSize: poolSize})
}

// DialTCPOpts connects to a storage server at addr as the given client.
// The first connection is dialed eagerly so configuration errors surface
// at setup time; the rest are created on demand.
func DialTCPOpts(id wire.ServerID, addr string, client wire.ClientID, opts TCPOptions) (*TCPConn, error) {
	c := NewTCPConnOpts(id, addr, client, opts)
	mc, err := c.rpc.dial()
	if err != nil {
		return nil, err
	}
	c.rpc.slots[0].mc.Store(mc)
	return c, nil
}

// NewTCPConn returns a TCP ServerConn whose pooled connections are all
// dialed on demand, without requiring the server to be reachable now.
// This is how a client connects to a degraded cluster: operations fail
// with ErrUnavailable until the server answers, then the pool dials and
// the connection heals. DialTCP's eager first dial is preferable when
// configuration errors should surface at setup time.
func NewTCPConn(id wire.ServerID, addr string, client wire.ClientID, poolSize int) *TCPConn {
	return NewTCPConnOpts(id, addr, client, TCPOptions{PoolSize: poolSize})
}

// NewTCPConnOpts is NewTCPConn with explicit multiplexing options.
func NewTCPConnOpts(id wire.ServerID, addr string, client wire.ClientID, opts TCPOptions) *TCPConn {
	opts = opts.withDefaults()
	r := &tcpRPC{addr: addr, client: client, opts: opts, slots: make([]connSlot, opts.PoolSize)}
	r.ioTimeout.Store(int64(DefaultIOTimeout))
	return &TCPConn{conn: conn{id: id, r: r}, rpc: r}
}

// SetIOTimeout changes the per-RPC I/O deadline (0 disables it). Safe to
// call concurrently with in-flight operations; they pick up the new
// value on their next exchange.
func (c *TCPConn) SetIOTimeout(d time.Duration) { c.rpc.ioTimeout.Store(int64(d)) }

func (t *tcpRPC) dial() (*muxConn, error) {
	c, err := net.DialTimeout("tcp", t.addr, time.Duration(t.ioTimeout.Load()))
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnavailable, t.addr, err)
	}
	m := &muxConn{
		c:       c,
		sem:     make(chan struct{}, t.opts.MaxInFlight),
		pending: make(map[uint64]chan *wire.Response),
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return nil, ErrUnavailable
	}
	t.mu.Unlock()
	// readLoop terminates on the first read error, and conn close (via
	// Close or a dead-conn retirement) makes every subsequent read fail.
	// swarmlint:goroleak-ok — exits when the connection closes
	go m.readLoop()
	return m, nil
}

// pick returns a live multiplexed connection, dialing a replacement into
// a round-robin slot when none is available.
func (t *tcpRPC) pick() (*muxConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrUnavailable
	}
	n := len(t.slots)
	idx := t.next
	t.next = (t.next + 1) % n
	for i := 0; i < n; i++ {
		if mc := t.slots[(idx+i)%n].mc.Load(); mc != nil && !mc.broken() {
			t.mu.Unlock()
			return mc, nil
		}
	}
	t.mu.Unlock()

	// No live connection: dial into the chosen slot. The per-slot mutex
	// collapses a thundering herd into one dial; latecomers reuse it.
	slot := &t.slots[idx]
	slot.dialMu.Lock()
	defer slot.dialMu.Unlock()
	if mc := slot.mc.Load(); mc != nil && !mc.broken() {
		return mc, nil
	}
	mc, err := t.dial()
	if err != nil {
		return nil, err
	}
	// Publish under t.mu so a concurrent Close either sees the slot (and
	// fails it) or we see closed here — never a leaked live connection.
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		mc.fail(ErrUnavailable)
		return nil, ErrUnavailable
	}
	slot.mc.Store(mc)
	t.mu.Unlock()
	return mc, nil
}

func (t *tcpRPC) call(op wire.Op, req wire.Message, rsp wire.Message) error {
	// One transparent retry: a pooled connection may be stale (the server
	// restarted on the same address), in which case the first exchange
	// fails at the transport level and a fresh dial usually succeeds.
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		mc, err := t.pick()
		if err != nil {
			return err
		}
		id := t.nextID.Add(1)
		err = mc.roundTrip(time.Duration(t.ioTimeout.Load()), op, id, t.client, req, rsp)
		if err == nil {
			return nil
		}
		var se *wire.StatusError
		if errors.As(err, &se) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("%w: %v", ErrUnavailable, lastErr)
}

// roundTrip sends one request frame and waits for its response. Any
// transport-level failure (write error, timeout, reader death) breaks
// the whole connection: frame boundaries can no longer be trusted, and
// every RPC sharing the connection fails over to a fresh dial.
func (m *muxConn) roundTrip(d time.Duration, op wire.Op, id uint64, client wire.ClientID, req, rsp wire.Message) error {
	m.sem <- struct{}{} // in-flight slot
	defer func() { <-m.sem }()

	ch := make(chan *wire.Response, 1)
	m.pmu.Lock()
	if m.dead {
		err := m.deadErr
		m.pmu.Unlock()
		return err
	}
	m.pending[id] = ch
	m.pmu.Unlock()

	m.wmu.Lock()
	if d > 0 {
		m.c.SetWriteDeadline(time.Now().Add(d))
	}
	err := wire.WriteRequest(m.c, op, id, client, req)
	if d > 0 && err == nil {
		err = m.c.SetWriteDeadline(time.Time{})
	}
	m.wmu.Unlock()
	if err != nil {
		m.fail(err)
		return err
	}

	var timeout <-chan time.Time
	if d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case frame := <-ch:
		return m.decodeInto(frame, rsp)
	case <-timeout:
		err := fmt.Errorf("transport: rpc %d timed out after %v: %w", id, d, ErrUnavailable)
		m.fail(err)
		// The reader may have delivered concurrently with the timeout;
		// honor the response if so.
		select {
		case frame := <-ch:
			return m.decodeInto(frame, rsp)
		default:
			return err
		}
	}
}

// decodeInto finishes an RPC from its response frame. The frame body is
// pool-owned: it is recycled here unless the decoded message aliases it
// (PayloadMessage responses hand the body's payload to the caller).
func (m *muxConn) decodeInto(frame *wire.Response, rsp wire.Message) error {
	if frame == nil { // channel closed: connection died
		m.pmu.Lock()
		err := m.deadErr
		m.pmu.Unlock()
		if err == nil {
			err = ErrUnavailable
		}
		return err
	}
	if err := frame.Err(); err != nil {
		wire.PutBuffer(frame.Body)
		return err
	}
	err := rsp.Decode(wire.NewDecoder(frame.Body))
	// A PayloadMessage that decoded successfully aliases the body, so the
	// caller now owns it; on decode failure nothing aliases anything and
	// the body must be recycled either way.
	if _, aliases := rsp.(wire.PayloadMessage); !aliases || err != nil {
		wire.PutBuffer(frame.Body)
	}
	return err
}

// readLoop is the connection's demultiplexer: it routes each response
// frame to the RPC that sent the matching request ID. It exits when the
// connection errors (including being closed by fail or Close).
func (m *muxConn) readLoop() {
	r := wire.NewConnReader(m.c)
	for {
		frame, err := wire.ReadResponseFrame(r)
		if err != nil {
			m.fail(fmt.Errorf("transport: connection lost: %w", err))
			return
		}
		m.pmu.Lock()
		ch, ok := m.pending[frame.ID]
		if ok {
			delete(m.pending, frame.ID)
		}
		m.pmu.Unlock()
		if !ok {
			// A caller that timed out and gave up, or protocol noise
			// either way nobody owns the body anymore.
			wire.PutBuffer(frame.Body)
			continue
		}
		ch <- frame // buffered; never blocks
	}
}

func (m *muxConn) broken() bool {
	m.pmu.Lock()
	defer m.pmu.Unlock()
	return m.dead
}

// fail marks the connection dead, closes it, and wakes every pending RPC
// with a closed channel (read as nil → deadErr).
func (m *muxConn) fail(err error) {
	m.pmu.Lock()
	if m.dead {
		m.pmu.Unlock()
		return
	}
	m.dead = true
	m.deadErr = err
	pend := m.pending
	m.pending = nil
	m.pmu.Unlock()
	m.c.Close()
	for _, ch := range pend {
		close(ch)
	}
}

// Close implements ServerConn, closing all pooled connections. In-flight
// RPCs fail promptly with ErrUnavailable.
func (c *TCPConn) Close() error {
	t := c.rpc
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	for i := range t.slots {
		if mc := t.slots[i].mc.Load(); mc != nil {
			mc.fail(ErrUnavailable)
		}
	}
	return nil
}
