package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockIO flags blocking I/O performed while a mutex is lexically held —
// the bug class PR 4 fixed in the server store path, where an fsync
// under the metadata mutex convoyed every concurrent operation behind
// the disk. Within each function it tracks regions between x.Lock() /
// x.RLock() and the matching x.Unlock()/x.RUnlock() (a deferred unlock
// holds to function end) and reports calls in those regions that
//
//   - invoke a method on a type declared in the disk package (the
//     disk.Disk interface or any of its implementations),
//   - invoke any zero-argument method named Sync,
//   - invoke a blocking method on a net type (everything but Close and
//     the address accessors), or
//   - pass a net package value (e.g. a net.Conn) to another function,
//     which is how framed writes hide behind helpers like
//     wire.WriteRequest.
//
// Escape hatches: a mutex field annotated swarmlint:io-mutex exists to
// serialize I/O (connection write locks), so its regions are exempt; a
// statement or function annotated swarmlint:locked-io is deliberate
// (the serial-commit ablation baseline). Function literals are not
// entered — a goroutine body runs after the spawning region ends.
//
// The analysis is lexical and intraprocedural: I/O reached through a
// same-package helper call is not traced, and a lock released in every
// branch of an if/else is conservatively still considered held after
// it. The annotations exist precisely for those edges.
type LockIO struct {
	diskPath string
	skip     map[string]bool
}

// NewLockIO returns the lock-discipline analyzer. diskPath is the
// import path of the disk layer; packages in skip (typically the disk
// layer itself, which is the I/O these regions must avoid) are not
// analyzed.
func NewLockIO(diskPath string, skip []string) *LockIO {
	m := make(map[string]bool, len(skip))
	for _, s := range skip {
		m[s] = true
	}
	return &LockIO{diskPath: diskPath, skip: m}
}

// Name implements Analyzer.
func (*LockIO) Name() string { return "lockio" }

// Doc implements Analyzer.
func (*LockIO) Doc() string {
	return "no disk, fsync, or network I/O while holding a mutex"
}

// Run implements Analyzer.
func (l *LockIO) Run(p *Package) []Diagnostic {
	if l.skip[p.Path] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			if p.Annotations().funcHas(p.Info, n, DirectiveLockedIO) {
				return false
			}
			diags = append(diags, l.scanBlock(p, body.List, nil)...)
			return true // nested FuncLits are scanned as their own functions
		})
	}
	return diags
}

// heldLock is one mutex the current lexical region holds.
type heldLock struct {
	path string // source text of the mutex expression, e.g. "s.mu"
}

// scanBlock walks one statement list, tracking the held-lock stack.
// Nested blocks get a copy of the stack: their internal unlocks release
// only within them (an early-return unlock pattern), and conservatively
// the outer region stays held afterward.
func (l *LockIO) scanBlock(p *Package, stmts []ast.Stmt, held []heldLock) []Diagnostic {
	var diags []Diagnostic
	held = append([]heldLock(nil), held...)
	for _, stmt := range stmts {
		if path, kind := l.lockCall(p, stmt); path != "" {
			switch kind {
			case "lock":
				held = append(held, heldLock{path: path})
			case "unlock":
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].path == path {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
			continue
		}
		// A deferred unlock keeps the region held to function end, which
		// is the state we already model; nothing to do.
		if len(held) > 0 {
			diags = append(diags, l.scanStmt(p, stmt, held)...)
		} else {
			// No lock held at this level, but nested blocks may take one.
			diags = append(diags, l.scanNested(p, stmt, held)...)
		}
	}
	return diags
}

// lockCall classifies stmt as a mutex Lock/Unlock statement, returning
// the mutex expression text and "lock"/"unlock". Locks on mutexes
// annotated swarmlint:io-mutex return no path, so their regions are
// never tracked.
func (l *LockIO) lockCall(p *Package, stmt ast.Stmt) (path, kind string) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return "", ""
	}
	if !isMutexType(p.Info.TypeOf(sel.X)) {
		return "", ""
	}
	if kind == "lock" && l.ioExemptMutex(p, sel.X) {
		return "", ""
	}
	return exprString(sel.X), kind
}

// ioExemptMutex reports whether the locked expression resolves to a
// struct field annotated swarmlint:io-mutex.
func (l *LockIO) ioExemptMutex(p *Package, mutexExpr ast.Expr) bool {
	sel, ok := ast.Unparen(mutexExpr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s := p.Info.Selections[sel]; s != nil {
		if v, ok := s.Obj().(*types.Var); ok {
			return p.Annotations().fieldHas(v, DirectiveIOMutex)
		}
	}
	return false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func isMutexType(t types.Type) bool {
	n := namedOrPointee(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// scanStmt reports I/O calls in stmt while held is non-empty, handing
// nested statement lists to scanBlock with a copied stack.
func (l *LockIO) scanStmt(p *Package, stmt ast.Stmt, held []heldLock) []Diagnostic {
	var diags []Diagnostic
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return l.scanBlock(p, s.List, held)
	case *ast.IfStmt:
		diags = append(diags, l.scanExprs(p, held, s.Cond)...)
		if s.Init != nil {
			diags = append(diags, l.scanStmt(p, s.Init, held)...)
		}
		diags = append(diags, l.scanBlock(p, s.Body.List, held)...)
		if s.Else != nil {
			diags = append(diags, l.scanStmt(p, s.Else, held)...)
		}
		return diags
	case *ast.ForStmt:
		if s.Init != nil {
			diags = append(diags, l.scanStmt(p, s.Init, held)...)
		}
		diags = append(diags, l.scanExprs(p, held, s.Cond)...)
		if s.Post != nil {
			diags = append(diags, l.scanStmt(p, s.Post, held)...)
		}
		diags = append(diags, l.scanBlock(p, s.Body.List, held)...)
		return diags
	case *ast.RangeStmt:
		diags = append(diags, l.scanExprs(p, held, s.X)...)
		diags = append(diags, l.scanBlock(p, s.Body.List, held)...)
		return diags
	case *ast.SwitchStmt:
		if s.Init != nil {
			diags = append(diags, l.scanStmt(p, s.Init, held)...)
		}
		diags = append(diags, l.scanExprs(p, held, s.Tag)...)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				diags = append(diags, l.scanBlock(p, cc.Body, held)...)
			}
		}
		return diags
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				diags = append(diags, l.scanBlock(p, cc.Body, held)...)
			}
		}
		return diags
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if cc.Comm != nil {
					diags = append(diags, l.scanStmt(p, cc.Comm, held)...)
				}
				diags = append(diags, l.scanBlock(p, cc.Body, held)...)
			}
		}
		return diags
	case *ast.LabeledStmt:
		return l.scanStmt(p, s.Stmt, held)
	}
	// Leaf statement: inspect its expressions for I/O calls, skipping
	// function literals (they run later, possibly unlocked).
	return l.scanExprs(p, held, leafExprs(stmt)...)
}

// scanNested descends into compound statements looking for Lock regions
// when nothing is held at the current level.
func (l *LockIO) scanNested(p *Package, stmt ast.Stmt, held []heldLock) []Diagnostic {
	switch s := stmt.(type) {
	case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
		return l.scanStmt(p, s, held)
	}
	return nil
}

// leafExprs extracts the expressions evaluated by a simple statement.
func leafExprs(stmt ast.Stmt) []ast.Expr {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return []ast.Expr{s.X}
	case *ast.AssignStmt:
		return append(append([]ast.Expr(nil), s.Rhs...), s.Lhs...)
	case *ast.ReturnStmt:
		return s.Results
	case *ast.DeferStmt:
		return []ast.Expr{s.Call}
	case *ast.GoStmt:
		// Only the call's arguments evaluate now; the body runs later.
		return s.Call.Args
	case *ast.SendStmt:
		return []ast.Expr{s.Chan, s.Value}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			var out []ast.Expr
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
			return out
		}
	case *ast.IncDecStmt:
		return []ast.Expr{s.X}
	}
	return nil
}

// scanExprs reports I/O calls inside the given expressions.
func (l *LockIO) scanExprs(p *Package, held []heldLock, exprs ...ast.Expr) []Diagnostic {
	if len(held) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			reason := l.ioReason(p, call)
			if reason == "" {
				return true
			}
			if p.Annotations().onLine(call.Pos(), DirectiveLockedIO) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(call.Pos()),
				Message:  fmt.Sprintf("%s while holding %s; release the lock first or annotate with %s", reason, held[len(held)-1].path, DirectiveLockedIO),
				Analyzer: l.Name(),
			})
			return true
		})
	}
	return diags
}

// netAddrMethods are net methods that do not block on the network.
var netAddrMethods = map[string]bool{
	"Close": true, "LocalAddr": true, "RemoteAddr": true,
	"Addr": true, "String": true, "Network": true,
}

// ioReason classifies call as I/O, returning a description or "".
func (l *LockIO) ioReason(p *Package, call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := p.Info.Selections[sel]; s != nil { // a method call
			recv := s.Recv()
			switch {
			case typeFromPkg(recv, l.diskPath):
				return fmt.Sprintf("disk I/O (%s.%s)", namedOrPointee(recv).Obj().Name(), sel.Sel.Name)
			case sel.Sel.Name == "Sync" && len(call.Args) == 0:
				return "fsync (Sync call)"
			case typeFromPkg(recv, "net") && !netAddrMethods[sel.Sel.Name]:
				return fmt.Sprintf("network I/O (%s.%s)", namedOrPointee(recv).Obj().Name(), sel.Sel.Name)
			}
		}
	}
	// A function that receives a net value (e.g. wire.WriteRequest(conn,
	// ...)) is doing network I/O on the caller's behalf.
	if _, builtin := calleeObject(p.Info, call).(*types.Builtin); builtin {
		return ""
	}
	for _, a := range call.Args {
		if t := p.Info.TypeOf(a); t != nil && typeFromPkg(t, "net") {
			return fmt.Sprintf("network I/O (passes %s)", namedOrPointee(t).Obj().Name())
		}
	}
	return ""
}
