package sting

import (
	"errors"
	"fmt"

	"swarm/internal/core"
	"swarm/internal/vfs"
	"swarm/internal/wire"
)

// ID implements service.Service.
func (fs *FS) ID() core.ServiceID { return fs.svcID }

// RestoreCheckpoint implements service.Service: load the inode map and
// allocator from Sting's newest checkpoint.
func (fs *FS) RestoreCheckpoint(payload []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if payload == nil {
		return nil
	}
	d := wire.NewDecoder(payload)
	fs.nextIno = d.U64()
	n := d.U32()
	fs.imap = make(map[uint64]imapEntry, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		ino := d.U64()
		fs.imap[ino] = imapEntry{
			addr: core.BlockAddr{FID: wire.FID(d.U64()), Off: d.U32()},
			size: d.U32(),
		}
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("sting: bad checkpoint: %w", err)
	}
	return nil
}

// Replay implements service.Service, rolling the name space and file
// contents forward from the log's records (§2.1.3). Creation records of
// inode blocks re-bind the inode map; creation records of data blocks
// patch the affected inode (this also absorbs blocks relocated by the
// cleaner before the crash); unlink records remove inodes.
func (fs *FS) Replay(rec core.ReplayEntry) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	switch rec.Kind {
	case core.EntryCreate:
		cr, err := core.DecodeCreateRecord(rec.Payload)
		if err != nil {
			return err
		}
		h, err := decodeHint(cr.Hint)
		if err != nil {
			return err
		}
		switch h.kind {
		case hintInode:
			fs.imap[h.ino] = imapEntry{addr: cr.Addr, size: cr.Len}
			delete(fs.inodes, h.ino) // force reload from the new block
			if h.ino >= fs.nextIno {
				fs.nextIno = h.ino + 1
			}
			// Apply data patches that arrived before the inode existed.
			if patches := fs.pending[h.ino]; len(patches) > 0 {
				delete(fs.pending, h.ino)
				in, err := fs.loadInode(h.ino)
				if err != nil {
					return err
				}
				for _, p := range patches {
					fs.applyPatchLocked(in, p)
				}
			}
		case hintData:
			p := patch{idx: h.idx, addr: cr.Addr, len: cr.Len, size: h.size}
			if _, ok := fs.imap[h.ino]; !ok {
				if _, cached := fs.inodes[h.ino]; !cached {
					fs.pending[h.ino] = append(fs.pending[h.ino], p)
					return nil
				}
			}
			in, err := fs.loadInode(h.ino)
			if err != nil {
				return err
			}
			fs.applyPatchLocked(in, p)
		}
	case core.EntryDelete:
		// Deletions of old block versions carry no metadata changes;
		// the creation records already rebound everything.
	case core.EntryRecord:
		ino, err := decodeUnlinkRecord(rec.Payload)
		if err != nil {
			return err
		}
		delete(fs.imap, ino)
		delete(fs.inodes, ino)
		delete(fs.dirtyIno, ino)
		delete(fs.pending, ino)
	}
	return nil
}

// applyPatchLocked rebinds one data block of in. Caller holds fs.mu.
func (fs *FS) applyPatchLocked(in *inode, p patch) {
	in.size = p.size
	fs.ensureBlocks(in)
	if int(p.idx) < len(in.blocks) {
		in.blocks[p.idx] = blockPtr{addr: p.addr, len: p.len}
	}
	fs.dirtyIno[in.ino] = true
}

// BlockMoved implements service.Service: the cleaner relocated a block;
// rebind the metadata the hint points at.
func (fs *FS) BlockMoved(old, newAddr core.BlockAddr, length uint32, hintBytes []byte) error {
	h, err := decodeHint(hintBytes)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	switch h.kind {
	case hintInode:
		if ent, ok := fs.imap[h.ino]; ok && ent.addr == old {
			fs.imap[h.ino] = imapEntry{addr: newAddr, size: length}
		}
	case hintData:
		in, err := fs.loadInode(h.ino)
		if err != nil {
			if errors.Is(err, vfs.ErrNotExist) {
				return nil // inode gone; the move is moot
			}
			return err
		}
		if int(h.idx) < len(in.blocks) && in.blocks[h.idx].addr == old {
			in.blocks[h.idx] = blockPtr{addr: newAddr, len: length}
			fs.dirtyIno[in.ino] = true
		}
	}
	if fs.cache != nil {
		fs.cache.Invalidate(old)
	}
	return nil
}

// BlockLive implements service.Service: a block is live iff the metadata
// the hint names still points at it.
func (fs *FS) BlockLive(addr core.BlockAddr, hintBytes []byte) bool {
	h, err := decodeHint(hintBytes)
	if err != nil {
		return true // unrecognizable: keep it (safe)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	switch h.kind {
	case hintInode:
		ent, ok := fs.imap[h.ino]
		return ok && ent.addr == addr
	case hintData:
		if _, ok := fs.imap[h.ino]; !ok {
			if _, cached := fs.inodes[h.ino]; !cached {
				return false // inode gone: data is dead
			}
		}
		in, err := fs.loadInode(h.ino)
		if err != nil {
			return true // can't verify: keep it
		}
		return int(h.idx) < len(in.blocks) && in.blocks[h.idx].addr == addr
	}
	return true
}

// CheckpointDemand implements service.Service by checkpointing now.
func (fs *FS) CheckpointDemand() error {
	err := fs.Checkpoint()
	if errors.Is(err, vfs.ErrClosed) {
		return nil
	}
	return err
}
