package transport

import (
	"swarm/internal/server"
	"swarm/internal/wire"
)

// localRPC calls straight into a server.Store's request handler, going
// through the full message codec so in-process clusters exercise the same
// protocol path as networked ones (minus the socket).
type localRPC struct {
	store  *server.Store
	client wire.ClientID
}

func (l *localRPC) call(op wire.Op, req wire.Message, rsp wire.Message) error {
	e := wire.NewEncoder(64)
	req.Encode(e)
	status, msg := l.store.Handle(l.client, op, e.Bytes())
	if status != wire.StatusOK {
		return &wire.StatusError{Status: status, Msg: server.ErrText(msg)}
	}
	be := wire.NewEncoder(64)
	msg.Encode(be)
	// Encode copied any bulk payload into the response buffer, so the
	// server-owned original is dead: drop a cached extent's reference,
	// or recycle an exclusively-owned pooled payload — mirroring what
	// the TCP front end does after writing a frame.
	switch m := msg.(type) {
	case wire.PayloadReleaser:
		m.ReleasePayload()
	case wire.PayloadMessage:
		wire.PutBuffer(m.Payload())
	}
	return rsp.Decode(wire.NewDecoder(be.Bytes()))
}

// localConn is a ServerConn bound to an in-process store.
type localConn struct {
	conn
}

var _ ServerConn = (*localConn)(nil)

// Close implements ServerConn (a no-op for in-process connections).
func (*localConn) Close() error { return nil }

// NewLocal returns a ServerConn that serves requests from an in-process
// fragment store, identifying the caller as client.
func NewLocal(id wire.ServerID, st *server.Store, client wire.ClientID) ServerConn {
	return &localConn{conn{id: id, r: &localRPC{store: st, client: client}}}
}
