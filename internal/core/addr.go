// Package core implements Swarm's primary contribution: the client-side
// striped log (§2.1 of the paper). Each client forms the data it writes
// into an append-only log of blocks and records, batches the log into
// fixed-size fragments, and stripes the fragments across the storage
// servers with rotating parity. Clients never coordinate with each other
// and servers never coordinate with each other: everything the log layer
// needs — stripe membership, parity placement, checkpoint locations — is
// self-described by the fragments themselves.
package core

import (
	"fmt"

	"swarm/internal/wire"
)

// ServiceID identifies one service stacked on the log. Records carry the
// ID of the service that wrote them so the log layer can route replay.
// ID 0 is reserved for the log layer itself.
type ServiceID uint16

// LogServiceID is the log layer's own service ID.
const LogServiceID ServiceID = 0

// BlockAddr names a block in the log: the fragment holding it and the
// offset of its entry within the fragment's payload region. Addresses are
// stable until the cleaner moves the block, at which point the owning
// service is notified of the new address.
type BlockAddr struct {
	FID wire.FID
	Off uint32
}

// IsZero reports whether the address is the zero value.
func (a BlockAddr) IsZero() bool { return a == BlockAddr{} }

// String renders the address.
func (a BlockAddr) String() string { return fmt.Sprintf("%v+%d", a.FID, a.Off) }

// Pos is a totally ordered position in one client's log, used to compare
// record positions against checkpoint positions during replay.
type Pos struct {
	Seq uint64 // fragment sequence number
	Off uint32 // offset within the fragment payload
}

// PosOf returns the log position of an address.
func PosOf(a BlockAddr) Pos { return Pos{Seq: a.FID.Seq(), Off: a.Off} }

// Less reports whether p precedes q in the log.
func (p Pos) Less(q Pos) bool {
	if p.Seq != q.Seq {
		return p.Seq < q.Seq
	}
	return p.Off < q.Off
}

// EntryKind discriminates log entries. Blocks hold service data; the
// record kinds implement crash recovery (§2.1.1): the log layer
// automatically writes Create and Delete records for block operations,
// services write their own Record entries, and Checkpoint entries bound
// how far replay must go.
type EntryKind uint8

// Log entry kinds.
const (
	EntryBlock EntryKind = iota + 1
	EntryCreate
	EntryDelete
	EntryCheckpoint
	EntryRecord
)

// String implements fmt.Stringer.
func (k EntryKind) String() string {
	switch k {
	case EntryBlock:
		return "block"
	case EntryCreate:
		return "create"
	case EntryDelete:
		return "delete"
	case EntryCheckpoint:
		return "checkpoint"
	case EntryRecord:
		return "record"
	default:
		return fmt.Sprintf("entry(%d)", uint8(k))
	}
}
