package model

import (
	"sync"
	"time"
)

// Queue models a serially shared resource as a FIFO queue with a fixed
// service rate: a request's service begins when the previous request's
// service ends (or now, if the resource is idle). Unlike a token bucket,
// a Queue gives no credit for idle time — a 1 MB transfer always occupies
// the wire for its full service time — which is what makes request
// *latency*, and therefore pipelining effects, come out right.
//
// A nil *Queue is valid and imposes no delay.
type Queue struct {
	mu      sync.Mutex
	clock   Clock
	rate    float64 // bytes per second
	lastEnd time.Time
	busy    time.Duration
}

// NewQueue returns a queue serving rate bytes/second.
func NewQueue(clock Clock, rate float64) *Queue {
	if clock == nil {
		clock = WallClock{}
	}
	return &Queue{clock: clock, rate: rate}
}

// Reserve enqueues n bytes of service and returns how long the caller
// must wait for its service to complete (queueing delay + service time).
// The caller is expected to sleep for the returned duration, possibly
// folded with other resources' waits.
func (q *Queue) Reserve(n int) time.Duration {
	if q == nil || n <= 0 {
		return 0
	}
	if q.rate <= 0 {
		return 0
	}
	return q.ReserveDur(time.Duration(float64(n) / q.rate * float64(time.Second)))
}

// ReserveDur enqueues a request with an explicit service time.
func (q *Queue) ReserveDur(service time.Duration) time.Duration {
	if q == nil || service <= 0 {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.clock.Now()
	start := q.lastEnd
	if start.Before(now) {
		start = now
	}
	end := start.Add(service)
	q.lastEnd = end
	q.busy += service
	return end.Sub(now)
}

// Acquire reserves and sleeps.
func (q *Queue) Acquire(n int) {
	if q == nil {
		return
	}
	q.clock.Sleep(q.Reserve(n))
}

// Busy reports cumulative service time.
func (q *Queue) Busy() time.Duration {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.busy
}

// Rate returns the configured rate (0 for nil).
func (q *Queue) Rate() float64 {
	if q == nil {
		return 0
	}
	return q.rate
}
