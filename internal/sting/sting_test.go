package sting

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"swarm/internal/cleaner"
	"swarm/internal/core"
	"swarm/internal/disk"
	"swarm/internal/server"
	"swarm/internal/service"
	"swarm/internal/transport"
	"swarm/internal/vfs"
	"swarm/internal/vfs/vfstest"
	"swarm/internal/wire"
)

const (
	testFragSize  = 16384
	testBlockSize = 1024
)

type env struct {
	flaky []*transport.Flaky
	conns []transport.ServerConn
	log   *core.Log
	reg   *service.Registry
	fs    *FS
}

func newEnv(t *testing.T, servers int) *env {
	t.Helper()
	e := &env{}
	for i := 0; i < servers; i++ {
		d := disk.NewMemDisk(64 << 20)
		st, err := server.Format(d, server.Config{FragmentSize: testFragSize})
		if err != nil {
			t.Fatal(err)
		}
		fl := transport.NewFlaky(transport.NewLocal(wire.ServerID(i+1), st, 1))
		e.flaky = append(e.flaky, fl)
		e.conns = append(e.conns, fl)
	}
	e.mount(t)
	return e
}

// mount (re)opens the log and mounts Sting, simulating a client restart.
func (e *env) mount(t *testing.T) {
	t.Helper()
	l, rec, err := core.Open(core.Config{Client: 1, Servers: e.conns, FragmentSize: testFragSize})
	if err != nil {
		t.Fatal(err)
	}
	e.log = l
	e.reg = service.NewRegistry(l)
	e.fs, err = Mount(l, e.reg, rec, Config{BlockSize: testBlockSize, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
}

// crash abandons the current FS (no unmount) and remounts.
func (e *env) crash(t *testing.T) {
	t.Helper()
	e.mount(t)
}

func TestConformance(t *testing.T) {
	vfstest.Conformance(t, func(t *testing.T) vfs.FileSystem {
		return newEnv(t, 3).fs
	})
}

func TestConformanceNoCache(t *testing.T) {
	vfstest.Conformance(t, func(t *testing.T) vfs.FileSystem {
		e := &env{}
		for i := 0; i < 2; i++ {
			d := disk.NewMemDisk(64 << 20)
			st, err := server.Format(d, server.Config{FragmentSize: testFragSize})
			if err != nil {
				t.Fatal(err)
			}
			e.conns = append(e.conns, transport.NewLocal(wire.ServerID(i+1), st, 1))
		}
		l, rec, err := core.Open(core.Config{Client: 1, Servers: e.conns, FragmentSize: testFragSize})
		if err != nil {
			t.Fatal(err)
		}
		reg := service.NewRegistry(l)
		fs, err := Mount(l, reg, rec, Config{BlockSize: testBlockSize})
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
}

func TestUnmountPersistsEverything(t *testing.T) {
	e := newEnv(t, 3)
	if err := vfs.MkdirAll(e.fs, "/a/b"); err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("swarm"), 1000)
	if err := vfs.WriteFile(e.fs, "/a/b/file", content); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	e.mount(t)
	got, err := vfs.ReadFile(e.fs, "/a/b/file")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("contents lost across unmount")
	}
	info, err := e.fs.Stat("/a/b")
	if err != nil || !info.Mode.IsDir() {
		t.Fatalf("dir lost: %+v %v", info, err)
	}
}

func TestCrashAfterSyncRecoversWithoutCheckpoint(t *testing.T) {
	e := newEnv(t, 3)
	if err := vfs.WriteFile(e.fs, "/keep", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(e.fs, "/dir/nested", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash with no checkpoint ever written: full rollforward from the
	// start of the log.
	e.crash(t)
	got, err := vfs.ReadFile(e.fs, "/keep")
	if err != nil || string(got) != "survives" {
		t.Fatalf("/keep = (%q,%v)", got, err)
	}
	got, err = vfs.ReadFile(e.fs, "/dir/nested")
	if err != nil || string(got) != "deep" {
		t.Fatalf("/dir/nested = (%q,%v)", got, err)
	}
}

func TestCrashRecoveryWithCheckpointAndRollforward(t *testing.T) {
	e := newEnv(t, 3)
	if err := vfs.WriteFile(e.fs, "/old", []byte("pre-checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint activity: create, overwrite, unlink, mkdir.
	if err := vfs.WriteFile(e.fs, "/new", []byte("post-checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(e.fs, "/old", []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(e.fs, "/gone", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.Unlink("/gone"); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.Mkdir("/d2"); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.Sync(); err != nil {
		t.Fatal(err)
	}

	e.crash(t)
	got, err := vfs.ReadFile(e.fs, "/new")
	if err != nil || string(got) != "post-checkpoint" {
		t.Fatalf("/new = (%q,%v)", got, err)
	}
	got, err = vfs.ReadFile(e.fs, "/old")
	if err != nil || string(got) != "rewritten" {
		t.Fatalf("/old = (%q,%v)", got, err)
	}
	if _, err := e.fs.Stat("/gone"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("/gone = %v", err)
	}
	if info, err := e.fs.Stat("/d2"); err != nil || !info.Mode.IsDir() {
		t.Fatalf("/d2 = (%+v,%v)", info, err)
	}
}

func TestCrashLosesUnsyncedWrites(t *testing.T) {
	e := newEnv(t, 3)
	if err := vfs.WriteFile(e.fs, "/durable", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Write without sync, then crash: the write-back cache contents are
	// gone, like any local file system.
	if err := vfs.WriteFile(e.fs, "/volatile", []byte("no")); err != nil {
		t.Fatal(err)
	}
	e.crash(t)
	if _, err := vfs.ReadFile(e.fs, "/durable"); err != nil {
		t.Fatalf("durable file lost: %v", err)
	}
	if _, err := e.fs.Stat("/volatile"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("unsynced file survived: %v", err)
	}
}

func TestReadsSurviveServerFailure(t *testing.T) {
	e := newEnv(t, 4)
	content := bytes.Repeat([]byte{0xAB}, 50_000)
	if err := vfs.WriteFile(e.fs, "/big", content); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Remount WITHOUT cache so reads actually hit the servers, then take
	// one server down.
	l, rec, err := core.Open(core.Config{Client: 1, Servers: e.conns, FragmentSize: testFragSize})
	if err != nil {
		t.Fatal(err)
	}
	reg := service.NewRegistry(l)
	fs2, err := Mount(l, reg, rec, Config{BlockSize: testBlockSize})
	if err != nil {
		t.Fatal(err)
	}
	e.flaky[1].SetDown(true)
	defer e.flaky[1].SetDown(false)
	got, err := vfs.ReadFile(fs2, "/big")
	if err != nil {
		t.Fatalf("read with server down: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("reconstructed file corrupted")
	}
	if l.Stats().Reconstructions == 0 {
		t.Fatal("no reconstructions happened")
	}
}

func TestCleanerIntegrationWithSting(t *testing.T) {
	e := newEnv(t, 3)
	// Churn: overwrite files repeatedly to generate garbage.
	for round := 0; round < 5; round++ {
		for i := 0; i < 8; i++ {
			path := fmt.Sprintf("/f%d", i)
			data := bytes.Repeat([]byte{byte(round*8 + i)}, 3000)
			if err := vfs.WriteFile(e.fs, path, data); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	c := cleaner.New(e.log, e.reg, cleaner.Config{UtilizationThreshold: 0.8, MaxStripesPerPass: 100})
	if _, err := c.CleanOnce(); err != nil && !errors.Is(err, cleaner.ErrNothingToClean) {
		t.Fatal(err)
	}
	// Everything still correct after cleaning.
	for i := 0; i < 8; i++ {
		got, err := vfs.ReadFile(e.fs, fmt.Sprintf("/f%d", i))
		if err != nil {
			t.Fatalf("read f%d after clean: %v", i, err)
		}
		want := bytes.Repeat([]byte{byte(4*8 + i)}, 3000)
		if !bytes.Equal(got, want) {
			t.Fatalf("f%d corrupted after clean", i)
		}
	}
	// And after cleaning + crash.
	if err := e.fs.Sync(); err != nil {
		t.Fatal(err)
	}
	e.crash(t)
	for i := 0; i < 8; i++ {
		got, err := vfs.ReadFile(e.fs, fmt.Sprintf("/f%d", i))
		if err != nil {
			t.Fatalf("read f%d after clean+crash: %v", i, err)
		}
		want := bytes.Repeat([]byte{byte(4*8 + i)}, 3000)
		if !bytes.Equal(got, want) {
			t.Fatalf("f%d corrupted after clean+crash", i)
		}
	}
}

func TestAutoFlushOnDirtyLimit(t *testing.T) {
	e := &env{}
	d := disk.NewMemDisk(64 << 20)
	st, err := server.Format(d, server.Config{FragmentSize: testFragSize})
	if err != nil {
		t.Fatal(err)
	}
	e.conns = []transport.ServerConn{transport.NewLocal(1, st, 1)}
	l, rec, err := core.Open(core.Config{Client: 1, Servers: e.conns, FragmentSize: testFragSize})
	if err != nil {
		t.Fatal(err)
	}
	reg := service.NewRegistry(l)
	fs, err := Mount(l, reg, rec, Config{BlockSize: testBlockSize, DirtyLimit: 8 * testBlockSize})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 32*testBlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().Flushes == 0 {
		t.Fatal("dirty limit never triggered a flush")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
}

func TestInodeEncodeDecodeRoundTrip(t *testing.T) {
	in := newFileInode(42, time.Unix(100, 0))
	in.size = 12345
	in.blocks = []blockPtr{
		{addr: core.BlockAddr{FID: wire.MakeFID(1, 2), Off: 3}, len: 1024},
		{}, // hole
		{addr: core.BlockAddr{FID: wire.MakeFID(1, 5), Off: 9}, len: 100},
	}
	got, err := decodeInode(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ino != 42 || got.size != 12345 || got.mode != vfs.ModeFile || len(got.blocks) != 3 {
		t.Fatalf("roundtrip = %+v", got)
	}
	if got.blocks[0] != in.blocks[0] || !got.blocks[1].isHole() || got.blocks[2] != in.blocks[2] {
		t.Fatalf("blocks = %+v", got.blocks)
	}

	dir := newDirInode(7, time.Unix(100, 0))
	dir.entries["a"] = dirEnt{ino: 9, mode: vfs.ModeFile}
	dir.entries["b"] = dirEnt{ino: 10, mode: vfs.ModeDir}
	got, err = decodeInode(dir.encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.isDir() || len(got.entries) != 2 || got.entries["a"].ino != 9 || got.entries["b"].mode != vfs.ModeDir {
		t.Fatalf("dir roundtrip = %+v", got)
	}
	if _, err := decodeInode([]byte{1, 2}); err == nil {
		t.Fatal("garbage inode decoded")
	}
}

func TestHintRoundTrip(t *testing.T) {
	h, err := decodeHint(encodeInodeHint(99))
	if err != nil || h.kind != hintInode || h.ino != 99 {
		t.Fatalf("inode hint = (%+v,%v)", h, err)
	}
	h, err = decodeHint(encodeDataHint(5, 12, 99999))
	if err != nil || h.kind != hintData || h.ino != 5 || h.idx != 12 || h.size != 99999 {
		t.Fatalf("data hint = (%+v,%v)", h, err)
	}
	if _, err := decodeHint([]byte{9, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown hint kind accepted")
	}
	if _, err := decodeHint(nil); err == nil {
		t.Fatal("empty hint accepted")
	}
}

func TestUnlinkRecordRoundTrip(t *testing.T) {
	ino, err := decodeUnlinkRecord(encodeUnlinkRecord(77))
	if err != nil || ino != 77 {
		t.Fatalf("unlink record = (%d,%v)", ino, err)
	}
	if _, err := decodeUnlinkRecord([]byte{9, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown record kind accepted")
	}
}

func TestStatsProgress(t *testing.T) {
	e := newEnv(t, 2)
	if err := vfs.WriteFile(e.fs, "/f", make([]byte, 5000)); err != nil {
		t.Fatal(err)
	}
	if err := e.fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.ReadFile(e.fs, "/f"); err != nil {
		t.Fatal(err)
	}
	st := e.fs.Stats()
	if st.BytesWritten != 5000 || st.BlocksOut == 0 || st.InodesOut == 0 || st.Flushes == 0 || st.BytesRead != 5000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClosedFSRejectsOps(t *testing.T) {
	e := newEnv(t, 2)
	if err := e.fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.fs.Create("/x"); !errors.Is(err, vfs.ErrClosed) {
		t.Fatalf("create after unmount: %v", err)
	}
	if _, err := e.fs.Open("/x"); !errors.Is(err, vfs.ErrClosed) {
		t.Fatalf("open after unmount: %v", err)
	}
	if err := e.fs.Sync(); !errors.Is(err, vfs.ErrClosed) {
		t.Fatalf("sync after unmount: %v", err)
	}
}

func TestFileHandleAfterClose(t *testing.T) {
	e := newEnv(t, 2)
	f, err := e.fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, vfs.ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if err := f.Close(); !errors.Is(err, vfs.ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestRepeatedCrashRecoveryCycles(t *testing.T) {
	e := newEnv(t, 3)
	for cycle := 0; cycle < 5; cycle++ {
		path := fmt.Sprintf("/cycle%d", cycle)
		if err := vfs.WriteFile(e.fs, path, []byte(path)); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if cycle%2 == 0 {
			if err := e.fs.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := e.fs.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		e.crash(t)
		for c := 0; c <= cycle; c++ {
			p := fmt.Sprintf("/cycle%d", c)
			got, err := vfs.ReadFile(e.fs, p)
			if err != nil || string(got) != p {
				t.Fatalf("cycle %d: file %s = (%q,%v)", cycle, p, got, err)
			}
		}
	}
}
