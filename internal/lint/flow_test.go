package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// The flow walker is the foundation the flow-sensitive analyzers stand
// on, so it gets direct coverage — branch joins, defers, early returns,
// loops, switch/select, panic paths — independent of any analyzer's
// acquisition semantics. The test hooks implement a toy discipline:
// x := acquire() makes x held, release(x) discharges it (directly or
// deferred), and x == nil refines the obligation away.

// flowTestHooks is the toy discipline driving walker tests.
type flowTestHooks struct {
	info    *types.Info
	tracked map[string]*types.Var
}

func (h *flowTestHooks) acquireCall(rhs []ast.Expr) bool {
	if len(rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "acquire"
}

func (h *flowTestHooks) Transfer(st *flowState, stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if !h.acquireCall(s.Rhs) {
			return
		}
		for _, l := range s.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			if v, ok := h.info.Defs[id].(*types.Var); ok {
				h.tracked[v.Name()] = v
				st.Set(v, flowHeld)
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			h.Call(st, call)
		}
	}
}

func (h *flowTestHooks) Call(st *flowState, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "release" || len(call.Args) != 1 {
		return
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	if v, ok := h.info.Uses[arg].(*types.Var); ok {
		st.Set(v, flowDone)
	}
}

func (h *flowTestHooks) Refine(st *flowState, cond ast.Expr, truth bool) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
		return
	}
	id, ok := nilComparand(h.info, b)
	if !ok {
		return
	}
	v, isVar := h.info.Uses[id].(*types.Var)
	if !isVar {
		return
	}
	if (b.Op == token.EQL) == truth { // the nil branch: nothing was acquired
		st.Set(v, flowNone)
	}
}

// runFlow type-checks body (wrapped in a scaffold with acquire/release
// declared) and returns, per exit, the status of each tracked variable
// by name. Exits are keyed by source line of the exit node.
func runFlow(t *testing.T, body string) map[int]map[string]flowStatus {
	t.Helper()
	src := fmt.Sprintf(`package p

type obj struct{ f int }

func acquire() *obj    { return new(obj) }
func release(o *obj)   {}
func cond() bool       { return true }
func ch() chan int     { return nil }

func scaffold() {
%s
}
`, body)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "flow_test_src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var fn *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "scaffold" {
			fn = fd
		}
	}
	if fn == nil {
		t.Fatal("scaffold not found")
	}
	h := &flowTestHooks{info: info, tracked: make(map[string]*types.Var)}
	exits := make(map[int]map[string]flowStatus)
	walkFlow(fn.Body, info, h, func(st *flowState, at ast.Node) {
		line := fset.Position(at.Pos()).Line
		m := make(map[string]flowStatus)
		for name, v := range h.tracked {
			m[name] = st.Get(v)
		}
		if prev, ok := exits[line]; ok {
			for name, s := range m {
				m[name] = mergeStatus(prev[name], s)
			}
		}
		exits[line] = m
	})
	return exits
}

// single asserts exactly one exit and returns x's status at it.
func single(t *testing.T, exits map[int]map[string]flowStatus) flowStatus {
	t.Helper()
	if len(exits) != 1 {
		t.Fatalf("want 1 exit, got %d: %v", len(exits), exits)
	}
	for _, m := range exits {
		return m["x"]
	}
	panic("unreachable")
}

func TestFlowStraightLine(t *testing.T) {
	if got := single(t, runFlow(t, `
	x := acquire()
	release(x)
`)); got != flowDone {
		t.Errorf("straight-line release: got %v, want flowDone", got)
	}
}

func TestFlowLeakDetected(t *testing.T) {
	if got := single(t, runFlow(t, `
	x := acquire()
	_ = x
`)); got != flowHeld {
		t.Errorf("no release: got %v, want flowHeld", got)
	}
}

func TestFlowEarlyReturnLeaks(t *testing.T) {
	exits := runFlow(t, `
	x := acquire()
	if cond() {
		return
	}
	release(x)
`)
	if len(exits) != 2 {
		t.Fatalf("want 2 exits, got %v", exits)
	}
	var sawHeld, sawDone bool
	for _, m := range exits {
		switch m["x"] {
		case flowHeld:
			sawHeld = true
		case flowDone:
			sawDone = true
		}
	}
	if !sawHeld || !sawDone {
		t.Errorf("want one held exit (early return) and one done exit, got %v", exits)
	}
}

func TestFlowBranchJoinPartialRelease(t *testing.T) {
	if got := single(t, runFlow(t, `
	x := acquire()
	if cond() {
		release(x)
	}
`)); got != flowMaybeHeld {
		t.Errorf("one-armed release: got %v, want flowMaybeHeld", got)
	}
}

func TestFlowBranchJoinBothRelease(t *testing.T) {
	if got := single(t, runFlow(t, `
	x := acquire()
	if cond() {
		release(x)
	} else {
		release(x)
	}
`)); got != flowDone {
		t.Errorf("both arms release: got %v, want flowDone", got)
	}
}

func TestFlowDeferCoversAllExits(t *testing.T) {
	exits := runFlow(t, `
	x := acquire()
	defer release(x)
	if cond() {
		return
	}
`)
	if len(exits) != 2 {
		t.Fatalf("want 2 exits, got %v", exits)
	}
	for line, m := range exits {
		if m["x"] != flowDone {
			t.Errorf("exit at line %d: got %v, want flowDone (defer replayed)", line, m["x"])
		}
	}
}

func TestFlowDeferAfterReturnDoesNotCover(t *testing.T) {
	// The defer is registered after the early return: that exit leaks.
	exits := runFlow(t, `
	x := acquire()
	if cond() {
		return
	}
	defer release(x)
`)
	var sawHeld, sawDone bool
	for _, m := range exits {
		switch m["x"] {
		case flowHeld:
			sawHeld = true
		case flowDone:
			sawDone = true
		}
	}
	if !sawHeld || !sawDone {
		t.Errorf("want held at the pre-defer return and done at the end, got %v", exits)
	}
}

func TestFlowPanicPathVanishes(t *testing.T) {
	if got := single(t, runFlow(t, `
	x := acquire()
	if cond() {
		panic("boom")
	}
	release(x)
`)); got != flowDone {
		t.Errorf("panic path should not report an exit: got %v, want flowDone", got)
	}
}

func TestFlowNilRefinement(t *testing.T) {
	exits := runFlow(t, `
	x := acquire()
	if x == nil {
		return
	}
	release(x)
`)
	for _, m := range exits {
		if m["x"] != flowNone && m["x"] != flowDone {
			t.Errorf("nil-refined or released on every exit, got %v", exits)
		}
	}
}

func TestFlowLoopBreakCarriesState(t *testing.T) {
	if got := single(t, runFlow(t, `
	x := acquire()
	for {
		release(x)
		break
	}
`)); got != flowDone {
		t.Errorf("release-then-break in for{}: got %v, want flowDone", got)
	}
}

func TestFlowInfiniteLoopUnreachableAfter(t *testing.T) {
	// for{} without break: the statement after never runs, and the only
	// exits are the returns inside the loop.
	exits := runFlow(t, `
	x := acquire()
	for {
		if cond() {
			release(x)
			return
		}
	}
`)
	if got := single(t, exits); got != flowDone {
		t.Errorf("return inside for{}: got %v, want flowDone", got)
	}
}

func TestFlowRangeZeroIterations(t *testing.T) {
	// A release inside a range body may run zero times.
	if got := single(t, runFlow(t, `
	x := acquire()
	for range []int{} {
		release(x)
	}
`)); got != flowMaybeHeld {
		t.Errorf("release in range body: got %v, want flowMaybeHeld", got)
	}
}

func TestFlowSwitchNoDefaultMergesEntry(t *testing.T) {
	if got := single(t, runFlow(t, `
	x := acquire()
	switch {
	case cond():
		release(x)
	}
`)); got != flowMaybeHeld {
		t.Errorf("switch without default: got %v, want flowMaybeHeld", got)
	}
}

func TestFlowSwitchAllCasesRelease(t *testing.T) {
	if got := single(t, runFlow(t, `
	x := acquire()
	switch {
	case cond():
		release(x)
	default:
		release(x)
	}
`)); got != flowDone {
		t.Errorf("exhaustive switch releases: got %v, want flowDone", got)
	}
}

func TestFlowSwitchFallthrough(t *testing.T) {
	// The release lives in the second clause; the first falls through
	// into it, so both paths discharge.
	if got := single(t, runFlow(t, `
	x := acquire()
	switch 1 {
	case 1:
		fallthrough
	case 2:
		release(x)
	default:
		release(x)
	}
`)); got != flowDone {
		t.Errorf("fallthrough into releasing clause: got %v, want flowDone", got)
	}
}

func TestFlowSelectEveryCommRuns(t *testing.T) {
	if got := single(t, runFlow(t, `
	x := acquire()
	select {
	case <-ch():
		release(x)
	case <-ch():
		release(x)
	}
`)); got != flowDone {
		t.Errorf("every select comm releases: got %v, want flowDone", got)
	}
}

func TestFlowSelectOneCommLeaks(t *testing.T) {
	if got := single(t, runFlow(t, `
	x := acquire()
	select {
	case <-ch():
		release(x)
	case <-ch():
	}
`)); got != flowMaybeHeld {
		t.Errorf("one select comm leaks: got %v, want flowMaybeHeld", got)
	}
}

func TestFlowContinueMergesAtLoopHead(t *testing.T) {
	// continue before the release: that iteration path skips it, so the
	// post-loop state is conditional.
	if got := single(t, runFlow(t, `
	x := acquire()
	for i := 0; i < 3; i++ {
		if cond() {
			continue
		}
		release(x)
	}
`)); got != flowMaybeHeld {
		t.Errorf("continue skipping release: got %v, want flowMaybeHeld", got)
	}
}

func TestMergeStatusTable(t *testing.T) {
	cases := []struct {
		a, b, want flowStatus
	}{
		{flowNone, flowNone, flowNone},
		{flowDone, flowDone, flowDone},
		{flowHeld, flowHeld, flowHeld},
		{flowHeld, flowDone, flowMaybeHeld},
		{flowHeld, flowNone, flowMaybeHeld},
		{flowMaybeHeld, flowDone, flowMaybeHeld},
		{flowMaybeHeld, flowHeld, flowMaybeHeld},
		{flowNone, flowDone, flowDone},
	}
	for _, c := range cases {
		if got := mergeStatus(c.a, c.b); got != c.want {
			t.Errorf("mergeStatus(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := mergeStatus(c.b, c.a); got != c.want {
			t.Errorf("mergeStatus(%v, %v) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}
