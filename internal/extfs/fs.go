package extfs

import (
	"fmt"
	"sync"
	"time"

	"swarm/internal/disk"
	"swarm/internal/vfs"
)

// Stats counts file-system activity.
type Stats struct {
	BlocksAllocated int64
	Syncs           int64
	MetaSyncs       int64
}

// FS is a mounted extfs.
type FS struct {
	d     disk.Disk
	g     geometry
	cache *bufferCache
	ibm   *bitmap
	dbm   *bitmap

	mu       sync.Mutex
	closed   bool
	syncMeta bool
	stats    Stats
	// allocGroup biases data allocation toward the current inode's
	// block group (see SetSyncMetadata).
	allocGroup uint32
}

// blockGroups is how many regions the data area is divided into for
// locality grouping, mirroring ext2's block groups.
const blockGroups = 16

// SetSyncMetadata switches the file system into classic FFS/ext2
// consistency mode: namespace operations write their metadata through to
// disk immediately instead of lingering in the buffer cache, and file
// data is placed in per-inode block groups. This is the behaviour that
// makes the paper's ext2fs "more disk-bound" than Sting on the Modified
// Andrew Benchmark (§3.4) — scattered small writes pay a seek each, while
// Sting batches everything into sequential 1 MB fragments.
func (fs *FS) SetSyncMetadata(on bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.syncMeta = on
}

// metaSync flushes dirty buffers when synchronous-metadata mode is on.
// Caller holds fs.mu.
func (fs *FS) metaSync() error {
	if !fs.syncMeta {
		return nil
	}
	fs.stats.MetaSyncs++
	return fs.cache.flush()
}

// groupHint returns the data-allocation hint for an inode's block group.
func (fs *FS) groupHint(ino uint32) uint32 {
	span := (fs.g.totalBlocks - fs.g.dataStart) / blockGroups
	if span == 0 {
		return 0
	}
	return fs.g.dataStart + (ino%blockGroups)*span
}

var _ vfs.FileSystem = (*FS)(nil)

// Mount opens an existing extfs on d.
func Mount(d disk.Disk) (*FS, error) {
	super := make([]byte, 64)
	if err := d.ReadAt(super, 0); err != nil {
		return nil, fmt.Errorf("read superblock: %w", err)
	}
	g, err := decodeSuper(super, d.Size())
	if err != nil {
		return nil, err
	}
	fs := &FS{d: d, g: g}
	fs.cache = newBufferCache(d, g.blockSize, 8<<20)
	fs.ibm = newBitmap(fs.cache, g.ibmStart, g.nInodes)
	fs.dbm = newBitmap(fs.cache, g.dbmStart, g.totalBlocks)
	// Metadata blocks are permanently allocated.
	for b := uint32(0); b < g.dataStart; b++ {
		set, err := fs.dbm.isSet(b)
		if err != nil {
			return nil, err
		}
		if !set {
			if err := fs.dbm.set(b, true); err != nil {
				return nil, err
			}
		}
	}
	fs.dbm.next = g.dataStart
	return fs, nil
}

// BlockSize returns the file-system block size.
func (fs *FS) BlockSize() int { return fs.g.blockSize }

// Stats returns a snapshot of activity counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// Sync implements vfs.FileSystem: write back every dirty buffer.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return vfs.ErrClosed
	}
	fs.stats.Syncs++
	return fs.cache.flush()
}

// Unmount implements vfs.FileSystem.
func (fs *FS) Unmount() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	if err := fs.cache.flush(); err != nil {
		return err
	}
	fs.closed = true
	return nil
}

// ------------------------------------------------------------- file I/O

// readAt reads from inode ino's data. Caller holds fs.mu.
func (fs *FS) readAt(in *dinode, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if off >= in.size {
		return 0, nil
	}
	n := len(p)
	if int64(n) > in.size-off {
		n = int(in.size - off)
	}
	bs := int64(fs.g.blockSize)
	read := 0
	for read < n {
		pos := off + int64(read)
		idx := uint64(pos / bs)
		blockOff := int(pos % bs)
		chunk := fs.g.blockSize - blockOff
		if chunk > n-read {
			chunk = n - read
		}
		phys, _, err := fs.bmap(in, idx, false)
		if err != nil {
			return read, err
		}
		dst := p[read : read+chunk]
		if phys == 0 {
			for i := range dst {
				dst[i] = 0
			}
		} else {
			blk, err := fs.cache.get(phys)
			if err != nil {
				return read, err
			}
			copy(dst, blk[blockOff:blockOff+chunk])
		}
		read += chunk
	}
	return read, nil
}

// writeAt writes into inode ino's data, allocating blocks as needed and
// updating size/mtime. Caller holds fs.mu; the caller must write the
// inode back.
func (fs *FS) writeAt(ino uint32, in *dinode, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	fs.allocGroup = fs.groupHint(ino)
	bs := int64(fs.g.blockSize)
	written := 0
	for written < len(p) {
		pos := off + int64(written)
		idx := uint64(pos / bs)
		blockOff := int(pos % bs)
		chunk := fs.g.blockSize - blockOff
		if chunk > len(p)-written {
			chunk = len(p) - written
		}
		phys, _, err := fs.bmap(in, idx, true)
		if err != nil {
			return written, err
		}
		blk, err := fs.cache.getDirty(phys)
		if err != nil {
			return written, err
		}
		copy(blk[blockOff:], p[written:written+chunk])
		written += chunk
	}
	if off+int64(written) > in.size {
		in.size = off + int64(written)
	}
	in.mtime = time.Now()
	if err := fs.writeInode(ino, in); err != nil {
		return written, err
	}
	return written, nil
}

// truncate sets the inode's size. Caller holds fs.mu and must not reuse a
// stale copy of in afterwards.
func (fs *FS) truncate(ino uint32, in *dinode, size int64) error {
	if size < 0 {
		return vfs.ErrInvalid
	}
	bs := int64(fs.g.blockSize)
	if size < in.size {
		keep := uint64((size + bs - 1) / bs)
		if err := fs.freeBlocks(in, keep); err != nil {
			return err
		}
		// Zero the tail of the last kept block.
		if tail := size % bs; tail != 0 && keep > 0 {
			phys, _, err := fs.bmap(in, keep-1, false)
			if err != nil {
				return err
			}
			if phys != 0 {
				blk, err := fs.cache.getDirty(phys)
				if err != nil {
					return err
				}
				for i := tail; i < bs; i++ {
					blk[i] = 0
				}
			}
		}
	}
	in.size = size
	in.mtime = time.Now()
	return fs.writeInode(ino, in)
}

// allocInode allocates a fresh inode of the given mode.
func (fs *FS) allocInode(mode uint16) (uint32, *dinode, error) {
	ino, err := fs.ibm.alloc(0)
	if err != nil {
		return 0, nil, err
	}
	in := newInode(mode)
	if err := fs.writeInode(ino, in); err != nil {
		return 0, nil, err
	}
	return ino, in, nil
}

// freeInode releases ino and all its data.
func (fs *FS) freeInode(ino uint32, in *dinode) error {
	if err := fs.freeBlocks(in, 0); err != nil {
		return err
	}
	in.mode = modeFree
	in.size = 0
	in.nlink = 0
	if err := fs.writeInode(ino, in); err != nil {
		return err
	}
	return fs.ibm.free(ino)
}
