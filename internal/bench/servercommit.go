// Servercommit benchmark: what group commit buys on the storage server's
// store path. The same store workload — N concurrent writers pumping
// whole fragments into one server.Store — is driven down two write
// paths: the serial baseline (one exclusive lock across the data write
// and two private fsyncs, the pre-group-commit design) and the
// group-committed path (metadata-only critical section, unlocked data
// writes, coalesced fsyncs; DESIGN.md §3.10). Two disks bracket the
// regimes: a FileDisk with real fsyncs (fsync-bound — where coalescing
// pays) and a SimDisk charging mechanical seek/rotation/transfer time
// (arm-bound — where the one-head queue dominates either way).
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"swarm/internal/disk"
	"swarm/internal/model"
	"swarm/internal/server"
	"swarm/internal/wire"
)

// ServercommitConfig parameterizes the serial-vs-group-commit sweep.
type ServercommitConfig struct {
	// Stores is the number of fragment stores per measurement.
	Stores int
	// PayloadKB is the fragment size per store.
	PayloadKB int
	// Writers is the concurrency sweep (the paper point is depth 8).
	Writers []int
	// SimScale speeds up the simulated disk's mechanical model
	// (RunWriteSweep's -scale; default 10).
	SimScale float64
	// CommitWindow is the group-commit coalescing window: how long a
	// sync leader lingers for joiners before issuing the fsync. The
	// default 0 is pure opportunistic coalescing (syncs queued behind an
	// in-flight fsync share the next one), which is the right setting
	// when the window would rival the device's fsync latency; a nonzero
	// window buys bigger batches at the cost of per-store latency and
	// only pays off when fsyncs are expensive relative to it (see
	// README, "Tuning the coalescing window").
	CommitWindow time.Duration
	// Dir hosts the FileDisk backing files ("" = a fresh temp dir).
	Dir string
}

func (c ServercommitConfig) withDefaults() ServercommitConfig {
	if c.Stores == 0 {
		c.Stores = 256
	}
	if c.PayloadKB == 0 {
		c.PayloadKB = 64
	}
	if len(c.Writers) == 0 {
		c.Writers = []int{1, 2, 4, 8}
	}
	if c.SimScale == 0 {
		c.SimScale = 10
	}
	return c
}

// ServercommitResult is one (disk, mode, writers) measurement.
type ServercommitResult struct {
	Disk           string  `json:"disk"` // "filedisk" or "simdisk"
	Mode           string  `json:"mode"` // "serial" or "group"
	Writers        int     `json:"writers"`
	Stores         int     `json:"stores"`
	PayloadKB      int     `json:"payload_kb"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	MBps           float64 `json:"mb_per_s"`
	StoresPerSec   float64 `json:"stores_per_s"`
	SyncsPerStore  float64 `json:"syncs_per_store"`
	MeanSyncBatch  float64 `json:"mean_sync_batch"`
	MeanEntryBatch float64 `json:"mean_entry_batch"`
	AvgStoreMicros float64 `json:"avg_store_us"`
}

// RunServercommit measures the store commit path, serial vs
// group-committed, across the writer sweep on both disk models.
func RunServercommit(cfg ServercommitConfig, progress func(string)) ([]ServercommitResult, error) {
	cfg = cfg.withDefaults()
	if progress == nil {
		progress = func(string) {}
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "swarmbench-servercommit")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	var out []ServercommitResult
	for _, diskKind := range []string{"filedisk", "simdisk"} {
		for _, mode := range []string{"serial", "group"} {
			for _, writers := range cfg.Writers {
				progress(fmt.Sprintf("servercommit: %s %s, %d writers", diskKind, mode, writers))
				r, err := runServercommitPoint(cfg, dir, diskKind, mode, writers)
				if err != nil {
					return out, fmt.Errorf("servercommit %s/%s/%d: %w", diskKind, mode, writers, err)
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}

func runServercommitPoint(cfg ServercommitConfig, dir, diskKind, mode string, writers int) (ServercommitResult, error) {
	fragSize := cfg.PayloadKB << 10
	diskSize := int64(cfg.Stores+16)*int64(fragSize) + (8 << 20)
	var d disk.Disk
	switch diskKind {
	case "filedisk":
		path := filepath.Join(dir, fmt.Sprintf("commit-%s-%d.img", mode, writers))
		fd, err := disk.OpenFileDisk(path, diskSize)
		if err != nil {
			return ServercommitResult{}, err
		}
		defer func() {
			fd.Close()
			os.Remove(path)
		}()
		d = fd
	case "simdisk":
		d = disk.NewSimDisk(disk.NewMemDisk(diskSize), nil, model.Paper1999().Scaled(cfg.SimScale))
	default:
		return ServercommitResult{}, fmt.Errorf("unknown disk kind %q", diskKind)
	}

	st, err := server.Format(d, server.Config{FragmentSize: fragSize})
	if err != nil {
		return ServercommitResult{}, err
	}
	st.SetSerialCommit(mode == "serial")
	if mode == "group" && writers > 1 {
		st.SetCommitDelay(cfg.CommitWindow)
	}

	payload := make([]byte, fragSize)
	for i := range payload {
		payload[i] = byte(i)
	}

	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	before := st.Stats()
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Stores) {
					return
				}
				if err := st.Store(wire.MakeFID(1, uint64(i)), payload, false, nil); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return ServercommitResult{}, err
	}
	after := st.Stats()

	stores := after.Stores - before.Stores
	syncs := after.Syncs - before.Syncs
	reqs := after.SyncRequests - before.SyncRequests
	mb := float64(cfg.Stores) * float64(fragSize) / (1 << 20)
	r := ServercommitResult{
		Disk:         diskKind,
		Mode:         mode,
		Writers:      writers,
		Stores:       cfg.Stores,
		PayloadKB:    cfg.PayloadKB,
		ElapsedMS:    float64(elapsed) / float64(time.Millisecond),
		MBps:         mb / elapsed.Seconds(),
		StoresPerSec: float64(cfg.Stores) / elapsed.Seconds(),
		AvgStoreMicros: float64(after.StoreNanos-before.StoreNanos) /
			float64(stores) / float64(time.Microsecond),
	}
	if stores > 0 {
		r.SyncsPerStore = float64(syncs) / float64(stores)
	}
	if syncs > 0 {
		r.MeanSyncBatch = float64(reqs) / float64(syncs)
	}
	if b := after.EntryBatches - before.EntryBatches; b > 0 {
		r.MeanEntryBatch = float64(after.EntriesBatched-before.EntriesBatched) / float64(b)
	}
	return r, nil
}

// ServercommitSpeedup returns group MB/s over serial MB/s at the deepest
// measured writer count on the given disk kind (the headline ratio is
// filedisk: real fsyncs are what group commit coalesces).
func ServercommitSpeedup(rows []ServercommitResult, diskKind string) float64 {
	maxW := 0
	for _, r := range rows {
		if r.Disk == diskKind && r.Writers > maxW {
			maxW = r.Writers
		}
	}
	var serial, group float64
	for _, r := range rows {
		if r.Disk != diskKind || r.Writers != maxW {
			continue
		}
		switch r.Mode {
		case "serial":
			serial = r.MBps
		case "group":
			group = r.MBps
		}
	}
	if serial == 0 {
		return 0
	}
	return group / serial
}

// PrintServercommitResults renders the sweep.
func PrintServercommitResults(w io.Writer, rows []ServercommitResult) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Servercommit — serial vs group-committed store path (%d stores of %d KB)\n",
		rows[0].Stores, rows[0].PayloadKB)
	fmt.Fprintf(w, "%-10s %-8s %-8s %-10s %-10s %-12s %-12s %-12s %s\n",
		"disk", "mode", "writers", "elapsed", "MB/s", "fsync/store", "sync batch", "entry batch", "store lat")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %-8d %-10s %-10.1f %-12.2f %-12.1f %-12.1f %s\n",
			r.Disk, r.Mode, r.Writers,
			(time.Duration(r.ElapsedMS * float64(time.Millisecond))).Round(time.Millisecond).String(),
			r.MBps, r.SyncsPerStore, r.MeanSyncBatch, r.MeanEntryBatch,
			(time.Duration(r.AvgStoreMicros * float64(time.Microsecond))).Round(10*time.Microsecond).String())
	}
	fmt.Fprintf(w, "speedup (filedisk, deepest sweep point): %.2fx\n\n",
		ServercommitSpeedup(rows, "filedisk"))
}

// WriteServercommitJSON writes the machine-readable benchmark record
// (consumed by CI and tracked across PRs in EXPERIMENTS.md).
func WriteServercommitJSON(path string, rows []ServercommitResult) error {
	doc := struct {
		Figure  string               `json:"figure"`
		Meta    RunMeta              `json:"meta"`
		Speedup float64              `json:"speedup_filedisk"`
		Results []ServercommitResult `json:"results"`
	}{
		Figure:  "servercommit",
		Meta:    NewRunMeta(),
		Speedup: ServercommitSpeedup(rows, "filedisk"),
		Results: rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
