package cleaner

import (
	"bytes"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"swarm/internal/core"
	"swarm/internal/disk"
	"swarm/internal/server"
	"swarm/internal/service"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

const testFragSize = 4096

// blobStore is a minimal Swarm service for cleaner tests: named blobs,
// each one block. Its hint is the blob name, so relocations (live and
// crash-replayed) can always find the metadata.
type blobStore struct {
	id  core.ServiceID
	log *core.Log

	mu    sync.Mutex
	blobs map[string]blobMeta // name -> location
	data  map[string][]byte   // name -> contents (for verification)

	demandFn func() error
	demands  int
}

type blobMeta struct {
	addr core.BlockAddr
	size uint32
}

func newBlobStore(id core.ServiceID, log *core.Log) *blobStore {
	return &blobStore{
		id:    id,
		log:   log,
		blobs: make(map[string]blobMeta),
		data:  make(map[string][]byte),
	}
}

func (b *blobStore) ID() core.ServiceID { return b.id }

func (b *blobStore) Put(name string, data []byte) error {
	addr, err := b.log.AppendBlock(b.id, data, []byte(name))
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if old, ok := b.blobs[name]; ok {
		if err := b.log.DeleteBlock(old.addr, old.size, b.id); err != nil {
			return err
		}
	}
	b.blobs[name] = blobMeta{addr: addr, size: uint32(len(data))}
	b.data[name] = append([]byte(nil), data...)
	return nil
}

func (b *blobStore) Delete(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.blobs[name]
	if !ok {
		return errors.New("no blob")
	}
	delete(b.blobs, name)
	delete(b.data, name)
	return b.log.DeleteBlock(m.addr, m.size, b.id)
}

func (b *blobStore) Get(name string) ([]byte, error) {
	b.mu.Lock()
	m, ok := b.blobs[name]
	b.mu.Unlock()
	if !ok {
		return nil, errors.New("no blob")
	}
	return b.log.Read(m.addr, 0, m.size)
}

func (b *blobStore) Checkpoint() error {
	b.mu.Lock()
	e := wire.NewEncoder(64)
	e.U32(uint32(len(b.blobs)))
	for name, m := range b.blobs {
		e.String32(name)
		e.U64(uint64(m.addr.FID))
		e.U32(m.addr.Off)
		e.U32(m.size)
	}
	b.mu.Unlock()
	_, err := b.log.WriteCheckpoint(b.id, e.Bytes())
	return err
}

func (b *blobStore) RestoreCheckpoint(payload []byte) error {
	if payload == nil {
		return nil
	}
	d := wire.NewDecoder(payload)
	n := d.U32()
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := uint32(0); i < n; i++ {
		name := d.String32()
		b.blobs[name] = blobMeta{
			addr: core.BlockAddr{FID: wire.FID(d.U64()), Off: d.U32()},
			size: d.U32(),
		}
	}
	return d.Err()
}

func (b *blobStore) Replay(rec core.ReplayEntry) error {
	switch rec.Kind {
	case core.EntryCreate:
		cr, err := core.DecodeCreateRecord(rec.Payload)
		if err != nil {
			return err
		}
		b.mu.Lock()
		b.blobs[string(cr.Hint)] = blobMeta{addr: cr.Addr, size: cr.Len}
		b.mu.Unlock()
	case core.EntryDelete:
		dr, err := core.DecodeDeleteRecord(rec.Payload)
		if err != nil {
			return err
		}
		b.mu.Lock()
		for name, m := range b.blobs {
			if m.addr == dr.Addr {
				delete(b.blobs, name)
				break
			}
		}
		b.mu.Unlock()
	}
	return nil
}

func (b *blobStore) BlockMoved(old, newAddr core.BlockAddr, length uint32, hint []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	name := string(hint)
	if m, ok := b.blobs[name]; ok && m.addr == old {
		b.blobs[name] = blobMeta{addr: newAddr, size: length}
	}
	return nil
}

func (b *blobStore) BlockLive(addr core.BlockAddr, hint []byte) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.blobs[string(hint)]
	return ok && m.addr == addr
}

func (b *blobStore) CheckpointDemand() error {
	b.demands++
	if b.demandFn != nil {
		return b.demandFn()
	}
	return nil
}

var _ service.Service = (*blobStore)(nil)

type fixture struct {
	stores []*server.Store
	conns  []transport.ServerConn
	log    *core.Log
	reg    *service.Registry
	blobs  *blobStore
}

func newFixture(t *testing.T, nServers int) *fixture {
	t.Helper()
	f := &fixture{}
	for i := 0; i < nServers; i++ {
		d := disk.NewMemDisk(8 << 20)
		st, err := server.Format(d, server.Config{FragmentSize: testFragSize})
		if err != nil {
			t.Fatal(err)
		}
		f.stores = append(f.stores, st)
		f.conns = append(f.conns, transport.NewLocal(wire.ServerID(i+1), st, 1))
	}
	f.reopen(t)
	return f
}

// reopen simulates a client restart over the same servers.
func (f *fixture) reopen(t *testing.T) {
	t.Helper()
	l, rec, err := core.Open(core.Config{Client: 1, Servers: f.conns, FragmentSize: testFragSize})
	if err != nil {
		t.Fatal(err)
	}
	f.log = l
	f.reg = service.NewRegistry(l)
	f.blobs = newBlobStore(7, l)
	if err := f.reg.Register(f.blobs, rec.Service(7)); err != nil {
		t.Fatal(err)
	}
}

func blobName(i int) string { return "blob-" + strconv.Itoa(i) }

// fillAndDelete writes n blobs then deletes those where del(i) is true,
// creating garbage for the cleaner.
func (f *fixture) fillAndDelete(t *testing.T, n int, size int, del func(int) bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		data := bytes.Repeat([]byte{byte(i)}, size)
		if err := f.blobs.Put(blobName(i), data); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if del(i) {
			if err := f.blobs.Delete(blobName(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.log.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestCleanerReclaimsGarbageStripes(t *testing.T) {
	f := newFixture(t, 3)
	defer f.log.Close()
	f.fillAndDelete(t, 80, 600, func(i int) bool { return i%4 != 0 }) // 75% garbage
	if err := f.blobs.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	c := New(f.log, f.reg, Config{UtilizationThreshold: 0.6, MaxStripesPerPass: 100})
	cleaned, err := c.CleanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if cleaned == 0 {
		t.Fatal("nothing cleaned")
	}
	st := c.Stats()
	if st.StripesCleaned == 0 || st.BlocksMoved == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Every surviving blob still readable with correct contents.
	for i := 0; i < 80; i += 4 {
		got, err := f.blobs.Get(blobName(i))
		if err != nil {
			t.Fatalf("get %d after clean: %v", i, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 600)) {
			t.Fatalf("blob %d corrupted after clean", i)
		}
	}
}

func TestCleanerFreesServerSlots(t *testing.T) {
	f := newFixture(t, 3)
	defer f.log.Close()
	f.fillAndDelete(t, 60, 800, func(i int) bool { return true }) // all garbage
	if err := f.blobs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := 0
	for _, st := range f.stores {
		before += st.Stats().FreeSlots
	}
	c := New(f.log, f.reg, Config{UtilizationThreshold: 0.9, MaxStripesPerPass: 100})
	if _, err := c.CleanOnce(); err != nil {
		t.Fatal(err)
	}
	after := 0
	for _, st := range f.stores {
		after += st.Stats().FreeSlots
	}
	if after <= before {
		t.Fatalf("free slots %d -> %d, expected growth", before, after)
	}
	if c.Stats().BlocksDiscarded == 0 {
		t.Fatal("dead blocks were not discarded")
	}
}

func TestCleanerNothingToClean(t *testing.T) {
	f := newFixture(t, 3)
	defer f.log.Close()
	f.fillAndDelete(t, 40, 600, func(int) bool { return false }) // everything live
	if err := f.blobs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	c := New(f.log, f.reg, Config{UtilizationThreshold: 0.2})
	if _, err := c.CleanOnce(); !errors.Is(err, ErrNothingToClean) {
		t.Fatalf("clean full stripes: %v", err)
	}
}

func TestCleanerDemandsCheckpointWhenPinned(t *testing.T) {
	f := newFixture(t, 3)
	defer f.log.Close()
	// Garbage exists, but the service has never checkpointed: the floor
	// pins everything. The demand handler checkpoints, letting the same
	// pass proceed.
	f.blobs.demandFn = f.blobs.Checkpoint
	f.fillAndDelete(t, 60, 700, func(i int) bool { return i%2 == 0 })

	c := New(f.log, f.reg, Config{UtilizationThreshold: 0.7, MaxStripesPerPass: 100})
	cleaned, err := c.CleanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if f.blobs.demands == 0 {
		t.Fatal("no checkpoint demand issued")
	}
	if cleaned == 0 {
		t.Fatal("nothing cleaned after demand satisfied")
	}
}

func TestCleanerForceIgnoresFloor(t *testing.T) {
	f := newFixture(t, 3)
	defer f.log.Close()
	f.fillAndDelete(t, 60, 700, func(i int) bool { return true })
	// No checkpoint at all; Force reclaims anyway.
	c := New(f.log, f.reg, Config{UtilizationThreshold: 0.9, MaxStripesPerPass: 100, Force: true})
	cleaned, err := c.CleanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if cleaned == 0 {
		t.Fatal("force cleaned nothing")
	}
}

func TestCleanerCrashSafety(t *testing.T) {
	f := newFixture(t, 3)
	f.fillAndDelete(t, 80, 600, func(i int) bool { return i%4 != 0 })
	if err := f.blobs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	c := New(f.log, f.reg, Config{UtilizationThreshold: 0.6, MaxStripesPerPass: 100})
	if _, err := c.CleanOnce(); err != nil {
		t.Fatal(err)
	}
	// Crash WITHOUT a post-clean checkpoint: the moved blocks' creation
	// records must be replayed so the recovered metadata points at the
	// new addresses (the old stripes are gone).
	f.reopen(t)
	defer f.log.Close()
	for i := 0; i < 80; i += 4 {
		got, err := f.blobs.Get(blobName(i))
		if err != nil {
			t.Fatalf("get %d after crash: %v", i, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 600)) {
			t.Fatalf("blob %d corrupted after crash", i)
		}
	}
}

func TestCleanerMaxStripesPerPass(t *testing.T) {
	f := newFixture(t, 3)
	defer f.log.Close()
	f.fillAndDelete(t, 120, 700, func(i int) bool { return true })
	if err := f.blobs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	c := New(f.log, f.reg, Config{UtilizationThreshold: 0.9, MaxStripesPerPass: 2})
	cleaned, err := c.CleanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if cleaned != 2 {
		t.Fatalf("cleaned %d stripes, want 2", cleaned)
	}
}

func TestCleanerBackgroundLoop(t *testing.T) {
	f := newFixture(t, 3)
	defer f.log.Close()
	f.fillAndDelete(t, 60, 700, func(i int) bool { return true })
	if err := f.blobs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	c := New(f.log, f.reg, Config{UtilizationThreshold: 0.9, MaxStripesPerPass: 100})
	c.Start(5 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().StripesCleaned == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background cleaner never cleaned")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
}

func TestCleanerStopWithoutStart(t *testing.T) {
	f := newFixture(t, 2)
	defer f.log.Close()
	c := New(f.log, f.reg, Config{})
	c.Stop() // must not hang
}
