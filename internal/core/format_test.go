package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"swarm/internal/erasure"
	"swarm/internal/wire"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Kind:     FragData,
		Width:    4,
		Index:    2,
		FID:      wire.MakeFID(3, 42),
		StripeID: 10,
		DataLen:  12345,
	}
	h.Group[0], h.Group[1], h.Group[2], h.Group[3] = 5, 6, 7, 8
	h.MemberLens[1] = 99
	buf := EncodeHeader(&h)
	if buf[4] != fragVersion {
		t.Fatalf("legacy header encoded as version %d", buf[4])
	}
	got, err := DecodeHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Decode normalizes the zero-value legacy geometry to explicit XOR m=1.
	h.Codec, h.NumParity = uint8(erasure.KindXOR), 1
	if got != h {
		t.Fatalf("roundtrip:\n got %+v\nwant %+v", got, h)
	}

	// RS geometry round-trips through a version-2 header.
	h.Codec, h.NumParity = uint8(erasure.KindRS), 2
	buf = EncodeHeader(&h)
	if buf[4] != fragVersion2 {
		t.Fatalf("rs header encoded as version %d", buf[4])
	}
	got, err = DecodeHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("v2 roundtrip:\n got %+v\nwant %+v", got, h)
	}
}

func TestHeaderValidation(t *testing.T) {
	h := Header{Kind: FragData, Width: 2, Index: 0, FID: 1}
	buf := EncodeHeader(&h)

	short := buf[:HeaderSize-1]
	if _, err := DecodeHeader(short); !errors.Is(err, ErrBadFragment) {
		t.Errorf("short header: %v", err)
	}

	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xFF
	if _, err := DecodeHeader(bad); !errors.Is(err, ErrBadFragment) {
		t.Errorf("bad magic: %v", err)
	}

	bad = append([]byte(nil), buf...)
	bad[20] ^= 0xFF // corrupt a field: CRC must catch it
	if _, err := DecodeHeader(bad); !errors.Is(err, ErrBadFragment) {
		t.Errorf("bad crc: %v", err)
	}

	// Width/index validation (re-encode with bad geometry).
	h2 := Header{Kind: FragData, Width: MaxWidth + 1, Index: 0}
	if _, err := DecodeHeader(EncodeHeader(&h2)); !errors.Is(err, ErrBadFragment) {
		t.Errorf("oversized width: %v", err)
	}
	h3 := Header{Kind: FragData, Width: 2, Index: 2}
	if _, err := DecodeHeader(EncodeHeader(&h3)); !errors.Is(err, ErrBadFragment) {
		t.Errorf("index >= width: %v", err)
	}
	h4 := Header{Kind: 9, Width: 2, Index: 0}
	if _, err := DecodeHeader(EncodeHeader(&h4)); !errors.Is(err, ErrBadFragment) {
		t.Errorf("bad kind: %v", err)
	}
}

func TestHeaderStripeNavigation(t *testing.T) {
	h := Header{Kind: FragData, Width: 4, Index: 2, FID: wire.MakeFID(1, 10), StripeID: 2}
	if h.BaseSeq() != 8 {
		t.Fatalf("BaseSeq = %d", h.BaseSeq())
	}
	if got := h.MemberFID(3); got != wire.MakeFID(1, 11) {
		t.Fatalf("MemberFID(3) = %v", got)
	}
}

func TestHeaderEpochRoundTrip(t *testing.T) {
	h := Header{
		Kind:     FragData,
		Width:    4,
		Index:    1,
		FID:      wire.MakeFID(3, 9),
		StripeID: 2,
		DataLen:  100,
	}
	// Epoch 0 with legacy geometry stays a version-1 header,
	// byte-identical to the pre-elasticity format.
	if buf := EncodeHeader(&h); buf[4] != fragVersion {
		t.Fatalf("epoch-0 legacy header encoded as version %d", buf[4])
	}

	// A nonzero epoch promotes even the legacy XOR geometry to v2 and
	// round-trips exactly.
	h.Epoch = 5
	buf := EncodeHeader(&h)
	if buf[4] != fragVersion2 {
		t.Fatalf("epoch-5 header encoded as version %d", buf[4])
	}
	got, err := DecodeHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	h.Codec, h.NumParity = uint8(erasure.KindXOR), 1
	if got != h {
		t.Fatalf("epoch roundtrip:\n got %+v\nwant %+v", got, h)
	}

	// A parity-free log at a nonzero epoch leaves the geometry bytes
	// zero; decode normalizes them exactly like a version-1 header.
	pf := Header{Kind: FragData, Width: 1, Index: 0, FID: wire.MakeFID(3, 0), Epoch: 3}
	got, err = DecodeHeader(EncodeHeader(&pf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || got.Codec != uint8(erasure.KindXOR) || got.NumParity != 1 {
		t.Fatalf("parity-free v2 decode = %+v", got)
	}

	// RS geometry and epoch coexist.
	rs := Header{Kind: FragParity, Width: 6, Index: 2, FID: wire.MakeFID(1, 14),
		StripeID: 2, Codec: uint8(erasure.KindRS), NumParity: 2, Epoch: 9}
	got, err = DecodeHeader(EncodeHeader(&rs))
	if err != nil {
		t.Fatal(err)
	}
	if got != rs {
		t.Fatalf("rs epoch roundtrip:\n got %+v\nwant %+v", got, rs)
	}
}

func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(kindParity bool, width, index uint8, fid, stripe uint64, dataLen uint32) bool {
		w := width%MaxWidth + 1
		h := Header{
			Kind:     FragData,
			Width:    w,
			Index:    index % w,
			FID:      wire.FID(fid),
			StripeID: stripe,
			DataLen:  dataLen,
			// Decode normalizes legacy zero values to these, so set them
			// for the == comparison; odd dataLens exercise version 2.
			Codec:     uint8(erasure.KindXOR),
			NumParity: 1,
		}
		if kindParity {
			h.Kind = FragParity
		}
		if w >= 3 && dataLen%2 == 1 {
			h.Codec = uint8(erasure.KindRS)
			h.NumParity = uint8(dataLen%uint32(w-1)) + 1
		}
		if dataLen%3 == 0 {
			h.Epoch = dataLen / 3 // exercises v2 promotion of XOR m=1
		}
		for i := 0; i < int(w); i++ {
			h.Group[i] = wire.ServerID(i * 3)
			h.MemberLens[i] = dataLen / uint32(i+1)
		}
		got, err := DecodeHeader(EncodeHeader(&h))
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryIteration(t *testing.T) {
	buf := make([]byte, 1024)
	off := 0
	off = AppendEntry(buf, off, EntryBlock, 5, []byte("hello"))
	off = AppendEntry(buf, off, EntryRecord, 7, []byte("rec"))
	off = AppendEntry(buf, off, EntryDelete, 5, nil)

	var got []Entry
	if err := IterEntries(buf[:off], func(e Entry) bool {
		got = append(got, Entry{Kind: e.Kind, Svc: e.Svc, Off: e.Off, Payload: append([]byte(nil), e.Payload...)})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d entries", len(got))
	}
	if got[0].Kind != EntryBlock || got[0].Svc != 5 || string(got[0].Payload) != "hello" || got[0].Off != 0 {
		t.Fatalf("entry 0 = %+v", got[0])
	}
	if got[1].Kind != EntryRecord || got[1].Off != uint32(EntrySize(5)) {
		t.Fatalf("entry 1 = %+v", got[1])
	}
	if got[2].Kind != EntryDelete || len(got[2].Payload) != 0 {
		t.Fatalf("entry 2 = %+v", got[2])
	}
}

func TestEntryIterationStopsEarly(t *testing.T) {
	buf := make([]byte, 256)
	off := AppendEntry(buf, 0, EntryBlock, 1, []byte("a"))
	off = AppendEntry(buf, off, EntryBlock, 1, []byte("b"))
	count := 0
	if err := IterEntries(buf[:off], func(Entry) bool {
		count++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("visited %d entries", count)
	}
}

func TestEntryIterationMalformed(t *testing.T) {
	// Truncated header.
	if err := IterEntries([]byte{1, 2, 3}, func(Entry) bool { return true }); !errors.Is(err, ErrBadFragment) {
		t.Errorf("truncated header: %v", err)
	}
	// Length running past the payload.
	buf := make([]byte, 32)
	AppendEntry(buf, 0, EntryBlock, 1, bytes.Repeat([]byte{9}, 25))
	if err := IterEntries(buf[:16], func(Entry) bool { return true }); !errors.Is(err, ErrBadFragment) {
		t.Errorf("truncated payload: %v", err)
	}
	// Unknown kind.
	buf2 := make([]byte, 16)
	AppendEntry(buf2, 0, EntryKind(99), 1, nil)
	if err := IterEntries(buf2[:EntryHdrSize], func(Entry) bool { return true }); !errors.Is(err, ErrBadFragment) {
		t.Errorf("unknown kind: %v", err)
	}
}

func TestCreateRecordRoundTrip(t *testing.T) {
	r := CreateRecord{Addr: BlockAddr{FID: wire.MakeFID(1, 2), Off: 99}, Len: 4096, Hint: []byte("inode 7 block 3")}
	got, err := DecodeCreateRecord(EncodeCreateRecord(&r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != r.Addr || got.Len != r.Len || !bytes.Equal(got.Hint, r.Hint) {
		t.Fatalf("roundtrip = %+v", got)
	}
	if _, err := DecodeCreateRecord([]byte{1}); !errors.Is(err, ErrBadFragment) {
		t.Fatalf("short create record: %v", err)
	}
}

func TestDeleteRecordRoundTrip(t *testing.T) {
	r := DeleteRecord{Addr: BlockAddr{FID: wire.MakeFID(9, 1), Off: 3}, Len: 512}
	got, err := DecodeDeleteRecord(EncodeDeleteRecord(&r))
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("roundtrip = %+v", got)
	}
	if _, err := DecodeDeleteRecord(nil); !errors.Is(err, ErrBadFragment) {
		t.Fatalf("empty delete record: %v", err)
	}
}

func TestCheckpointRecordRoundTrip(t *testing.T) {
	r := CheckpointRecord{
		Directory: map[ServiceID]BlockAddr{
			3: {FID: wire.MakeFID(1, 5), Off: 10},
			1: {FID: wire.MakeFID(1, 2), Off: 0},
		},
		Payload: []byte("service state"),
		Usage:   []byte("usage bytes"),
	}
	got, err := DecodeCheckpointRecord(EncodeCheckpointRecord(&r))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Directory) != 2 || got.Directory[3] != r.Directory[3] || got.Directory[1] != r.Directory[1] {
		t.Fatalf("directory = %+v", got.Directory)
	}
	if !bytes.Equal(got.Payload, r.Payload) || !bytes.Equal(got.Usage, r.Usage) {
		t.Fatalf("payloads = %q %q", got.Payload, got.Usage)
	}
}

func TestCheckpointRecordDeterministicEncoding(t *testing.T) {
	r := CheckpointRecord{Directory: map[ServiceID]BlockAddr{5: {}, 2: {}, 9: {}, 1: {}}}
	a := EncodeCheckpointRecord(&r)
	for i := 0; i < 10; i++ {
		if !bytes.Equal(a, EncodeCheckpointRecord(&r)) {
			t.Fatal("non-deterministic encoding")
		}
	}
}

func TestXORInto(t *testing.T) {
	dst := []byte{1, 2, 3, 4}
	XORInto(dst, []byte{1, 2})
	if !bytes.Equal(dst, []byte{0, 0, 3, 4}) {
		t.Fatalf("dst = %v", dst)
	}
	// src longer than dst: only dst's length is touched.
	dst2 := []byte{0xFF}
	XORInto(dst2, []byte{0x0F, 0xAA, 0xBB})
	if dst2[0] != 0xF0 {
		t.Fatalf("dst2 = %v", dst2)
	}
}

// Property: reconstructing any member of a random stripe from the others
// plus parity yields the original payload.
func TestQuickParityReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(widthSeed uint8, missSeed uint8, sizeSeed uint16) bool {
		width := int(widthSeed)%6 + 2 // 2..7 members incl parity
		payloadSize := int(sizeSeed)%512 + 64
		nData := width - 1
		data := make([][]byte, nData)
		code, err := erasure.New(erasure.KindXOR, nData, 1)
		if err != nil {
			t.Fatal(err)
		}
		acc := newParityAccum(code, payloadSize)
		for i := 0; i < nData; i++ {
			n := rng.Intn(payloadSize + 1)
			data[i] = make([]byte, n)
			rng.Read(data[i])
			acc.add(i, i, data[i])
		}
		miss := int(missSeed) % nData
		var others [][]byte
		for i, d := range data {
			if i != miss {
				others = append(others, d)
			}
		}
		got := ReconstructPayload(acc.bufs[0], others, uint32(len(data[miss])))
		return bytes.Equal(got, data[miss])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestUsageTableAccounting(t *testing.T) {
	u := NewUsageTable()
	u.AddBlock(1, 100)
	u.AddBlock(1, 50)
	u.AddRecord(1, 10)
	u.DeleteBlock(1, 50)
	got, ok := u.Get(1)
	if !ok {
		t.Fatal("stripe missing")
	}
	if got.Live != 100 || got.Total != 160 {
		t.Fatalf("usage = %+v", got)
	}
	if util := got.Utilization(); util < 0.62 || util > 0.63 {
		t.Fatalf("utilization = %v", util)
	}
	u.FragmentSealed(1, false)
	u.FragmentSealed(1, true)
	got, _ = u.Get(1)
	if got.Fragments != 2 || !got.Closed {
		t.Fatalf("after seals = %+v", got)
	}
	u.Drop(1)
	if _, ok := u.Get(1); ok {
		t.Fatal("dropped stripe still present")
	}
}

func TestUsageTableLiveNeverNegative(t *testing.T) {
	u := NewUsageTable()
	u.AddBlock(1, 10)
	u.DeleteBlock(1, 100)
	got, _ := u.Get(1)
	if got.Live != 0 {
		t.Fatalf("live = %d", got.Live)
	}
}

func TestUsageTableEncodeDecode(t *testing.T) {
	u := NewUsageTable()
	u.AddBlock(1, 100)
	u.AddRecord(2, 30)
	u.FragmentSealed(2, true)
	u.DeleteBlock(1, 40)

	got, err := DecodeUsageTable(u.Encode())
	if err != nil {
		t.Fatal(err)
	}
	a, b := u.Snapshot(), got.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("sizes %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("stripe %d: %+v vs %+v", k, v, b[k])
		}
	}
	if _, err := DecodeUsageTable([]byte{1, 2}); err == nil {
		t.Fatal("garbage decoded")
	}
	if u.Stripes()[0] != 1 || u.Stripes()[1] != 2 {
		t.Fatalf("stripes = %v", u.Stripes())
	}
}

func TestPosOrdering(t *testing.T) {
	a := Pos{Seq: 1, Off: 100}
	b := Pos{Seq: 2, Off: 0}
	c := Pos{Seq: 1, Off: 200}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("cross-fragment ordering wrong")
	}
	if !a.Less(c) || c.Less(a) {
		t.Fatal("intra-fragment ordering wrong")
	}
	if a.Less(a) {
		t.Fatal("irreflexivity violated")
	}
}

func TestEntryKindStrings(t *testing.T) {
	for k := EntryBlock; k <= EntryRecord; k++ {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
	if EntryKind(77).String() != "entry(77)" {
		t.Error("unknown kind string")
	}
}
