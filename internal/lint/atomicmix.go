package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix catches the half-atomic field: a struct field that some
// code accesses through sync/atomic (atomic.AddInt64(&s.n, 1)) and
// other code reads or writes plainly (s.n++, v := s.n). Mixed access is
// a data race the moment the plain side runs concurrently with the
// atomic side, and it is invisible to guardedby because there is no
// mutex to match against — the qos books, blockcache counters, and
// extent refcounts all keep hot counters this way. Typed atomics
// (atomic.Int64 fields) are immune by construction — the type system
// forbids plain access — so the analyzer's scope is exactly the
// untyped-integer-plus-atomic-call pattern.
//
// Two plain accesses are exempt without annotation, mirroring
// guardedby: package-level initialization, and constructor access
// through a function-local composite-literal value that nothing else
// can see yet. Anything else needs swarmlint:atomic-ok on the line
// with a reason (e.g. a snapshot under a write-excluding lock).
type AtomicMix struct{}

// NewAtomicMix returns the mixed-atomic-access analyzer.
func NewAtomicMix() *AtomicMix { return &AtomicMix{} }

// Name implements Analyzer.
func (*AtomicMix) Name() string { return "atomicmix" }

// Doc implements Analyzer.
func (*AtomicMix) Doc() string {
	return "fields accessed via sync/atomic are never read or written plainly elsewhere"
}

// Run implements Analyzer.
func (am *AtomicMix) Run(p *Package) []Diagnostic {
	// Pass 1: every field that appears as &recv.field in a sync/atomic
	// call is an atomic field.
	atomicFields := make(map[*types.Var]token.Pos)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(p.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if fld := fieldOf(p.Info, u.X); fld != nil {
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = call.Pos()
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: any other selector access to those fields is a plain
	// access unless it is itself the &field argument of an atomic call,
	// constructor initialization, or annotated.
	ann := p.Annotations()
	var diags []Diagnostic
	seen := make(map[string]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fieldOf(p.Info, sel)
			if fld == nil {
				return true
			}
			if _, isAtomic := atomicFields[fld]; !isAtomic {
				return true
			}
			if am.atomicOperand(p, sel) {
				return true
			}
			if p.EnclosingFunc(sel) == nil {
				return true // package-level initialization
			}
			if constructorAccess(p, sel) {
				return true
			}
			if ann.onLine(sel.Pos(), DirectiveAtomicOK) {
				return true
			}
			pos := p.Fset.Position(sel.Pos())
			key := fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line, fld.Name())
			if seen[key] {
				return true
			}
			seen[key] = true
			diags = append(diags, Diagnostic{
				Pos: pos,
				Message: fmt.Sprintf("field %q is accessed with sync/atomic elsewhere but plainly here; use the atomic API or annotate with %s",
					fld.Name(), DirectiveAtomicOK),
				Analyzer: am.Name(),
			})
			return true
		})
	}
	return diags
}

// atomicOperand reports whether sel appears as the &operand of a
// sync/atomic call: parent chain sel -> &sel -> atomic.F(...).
func (am *AtomicMix) atomicOperand(p *Package, sel *ast.SelectorExpr) bool {
	parent := p.Parent(sel)
	for {
		if pe, ok := parent.(*ast.ParenExpr); ok {
			parent = p.Parent(pe)
			continue
		}
		break
	}
	u, ok := parent.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return false
	}
	up := p.Parent(u)
	for {
		if pe, ok := up.(*ast.ParenExpr); ok {
			up = p.Parent(pe)
			continue
		}
		break
	}
	call, ok := up.(*ast.CallExpr)
	return ok && isAtomicCall(p.Info, call)
}

// isAtomicCall reports whether call invokes a sync/atomic package
// function (LoadInt64, AddUint32, StorePointer, CompareAndSwap…).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic" && !strings.HasPrefix(fn.Name(), "_")
}

// fieldOf resolves a selector expression to the struct field it names,
// or nil for methods, package selectors, and non-field selections.
func fieldOf(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	fld, ok := s.Obj().(*types.Var)
	if !ok || !fld.IsField() {
		return nil
	}
	return fld
}
