// Command swarmbench regenerates the paper's evaluation (§3.4): Figure 3
// (raw write bandwidth), Figure 4 (useful write throughput), Figure 5
// (Modified Andrew Benchmark vs ext2fs), the in-text cold-read numbers,
// and a set of design ablations. See DESIGN.md §4 and EXPERIMENTS.md.
//
// The harness runs the real Swarm stack under the 1999 hardware model;
// -scale trades fidelity at the margins for wall-clock time (results are
// normalized back to 1999-equivalents). -scale 1 with -blocks 10000 is
// the paper's exact workload and takes several minutes; the default
// (-scale 10, -blocks 10000) finishes a full sweep in under two minutes
// with nearly identical numbers.
//
// Usage:
//
//	swarmbench -fig all
//	swarmbench -fig 3 -scale 1 -blocks 10000
//	swarmbench -fig 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"swarm/internal/bench"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which figure to regenerate: 3, 4, 5, read, ablate, recon, wirepath, servercommit, erasure, rebalance, readpath, qos, all")
		scale   = flag.Float64("scale", 10, "hardware speedup factor (1 = real-time 1999 rates)")
		blocks  = flag.Int("blocks", 10000, "blocks per client for write benchmarks (paper: 10000)")
		jsonOut = flag.Bool("json", false, "also write machine-readable results (BENCH_*.json)")
		verbose = flag.Bool("v", false, "print progress")
	)
	flag.Parse()
	if err := run(*fig, *scale, *blocks, *jsonOut, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "swarmbench:", err)
		os.Exit(1)
	}
}

func run(fig string, scale float64, blocks int, jsonOut, verbose bool) error {
	progress := func(string) {}
	if verbose {
		progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}
	base := bench.WriteConfig{Blocks: blocks, Scale: scale}

	runFig3 := func() error {
		results, err := bench.RunWriteSweep(bench.Figure3Clients, bench.Figure3Servers, base, progress)
		if err != nil {
			return err
		}
		bench.PrintWriteResults(os.Stdout,
			"Figure 3 — Raw write bandwidth (10,000 4KB blocks; includes metadata + parity)",
			results, true, bench.PaperFigure3)
		return nil
	}
	runFig4 := func() error {
		results, err := bench.RunWriteSweep(bench.Figure3Clients, bench.Figure4Servers, base, progress)
		if err != nil {
			return err
		}
		bench.PrintWriteResults(os.Stdout,
			"Figure 4 — Useful write throughput (application bytes only)",
			results, false, bench.PaperFigure4)
		return nil
	}
	runFig5 := func() error {
		stingRes, extRes, err := bench.RunFigure5(bench.MABConfig{Scale: scale})
		if err != nil {
			return err
		}
		bench.PrintMABResults(os.Stdout, stingRes, extRes)
		return nil
	}
	runRead := func() error {
		r, err := bench.RunReadPoint(bench.ReadConfig{Servers: 2, Blocks: blocks / 5, Scale: scale})
		if err != nil {
			return err
		}
		bench.PrintReadResult(os.Stdout, r)
		return nil
	}
	runAblate := func() error {
		ab := blocks / 4
		rows, err := bench.RunParityAblation(ab, scale)
		if err != nil {
			return err
		}
		bench.PrintAblation(os.Stdout, "Ablation — parity on/off (1 client, 4 servers)", rows)

		rows, err = bench.RunFragmentSizeAblation(ab, scale)
		if err != nil {
			return err
		}
		bench.PrintAblation(os.Stdout, "Ablation — fragment size (2 clients, 1 server: server-bound)", rows)

		rows, err = bench.RunPipelineAblation(ab, scale)
		if err != nil {
			return err
		}
		bench.PrintAblation(os.Stdout, "Ablation — pipeline depth (1 client, 1 server: server-bound)", rows)

		dr, err := bench.RunDegradedReadAblation(ab*2, scale)
		if err != nil {
			return err
		}
		bench.PrintDegradedRead(os.Stdout, dr)
		return nil
	}

	runRecon := func() error {
		rows, err := bench.RunReconSweep([]int{4, 8}, 4, 15*time.Millisecond)
		if err != nil {
			return err
		}
		bench.PrintReconResults(os.Stdout, rows)
		return nil
	}

	runWirepath := func() error {
		rows, err := bench.RunWirepath(bench.WirepathConfig{}, progress)
		if err != nil {
			return err
		}
		bench.PrintWirepathResults(os.Stdout, rows)
		if jsonOut {
			if err := bench.WriteWirepathJSON("BENCH_wirepath.json", rows); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_wirepath.json")
		}
		return nil
	}

	runServercommit := func() error {
		rows, err := bench.RunServercommit(bench.ServercommitConfig{SimScale: scale}, progress)
		if err != nil {
			return err
		}
		bench.PrintServercommitResults(os.Stdout, rows)
		if jsonOut {
			if err := bench.WriteServercommitJSON("BENCH_servercommit.json", rows); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_servercommit.json")
		}
		return nil
	}

	runErasure := func() error {
		rows, err := bench.RunErasureSweep([][2]int{{4, 1}, {4, 2}, {8, 2}}, bench.ErasureConfig{})
		if err != nil {
			return err
		}
		bench.PrintErasureResults(os.Stdout, rows)
		if jsonOut {
			if err := bench.WriteErasureJSON("BENCH_erasure.json", rows); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_erasure.json")
		}
		return nil
	}

	runRebalance := func() error {
		r, err := bench.RunRebalanceBench(bench.RebalanceConfig{})
		if err != nil {
			return err
		}
		bench.PrintRebalanceResult(os.Stdout, r)
		if jsonOut {
			if err := bench.WriteRebalanceJSON("BENCH_rebalance.json", r); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_rebalance.json")
		}
		return nil
	}

	runReadpath := func() error {
		rows, err := bench.RunReadpath(bench.ReadpathConfig{Scale: scale}, progress)
		if err != nil {
			return err
		}
		bench.PrintReadpathResults(os.Stdout, rows)
		if jsonOut {
			if err := bench.WriteReadpathJSON("BENCH_readpath.json", rows); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_readpath.json")
		}
		return nil
	}

	runQoS := func() error {
		rows, err := bench.RunQoS(bench.QoSBenchConfig{Scale: scale * 2.5}, progress)
		if err != nil {
			return err
		}
		bench.PrintQoSResults(os.Stdout, rows)
		if jsonOut {
			if err := bench.WriteQoSJSON("BENCH_qos.json", rows); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_qos.json")
		}
		return nil
	}

	switch fig {
	case "3":
		return runFig3()
	case "4":
		return runFig4()
	case "5":
		return runFig5()
	case "read":
		return runRead()
	case "ablate":
		return runAblate()
	case "recon":
		return runRecon()
	case "wirepath":
		return runWirepath()
	case "servercommit":
		return runServercommit()
	case "erasure":
		return runErasure()
	case "rebalance":
		return runRebalance()
	case "readpath":
		return runReadpath()
	case "qos":
		return runQoS()
	case "all":
		for _, f := range []func() error{runFig3, runFig4, runFig5, runRead, runAblate, runRecon, runWirepath, runServercommit, runErasure, runRebalance, runReadpath, runQoS} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown figure %q (want 3, 4, 5, read, ablate, recon, wirepath, servercommit, erasure, rebalance, readpath, qos, all)", fig)
	}
}
