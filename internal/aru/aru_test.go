package aru

import (
	"errors"
	"testing"

	"swarm/internal/core"
	"swarm/internal/disk"
	"swarm/internal/server"
	"swarm/internal/service"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

const aruSvcID = core.ServiceID(3)

type env struct {
	conns []transport.ServerConn
	log   *core.Log
	reg   *service.Registry
	mgr   *Manager
	seen  []string
}

func newEnv(t *testing.T) *env {
	t.Helper()
	e := &env{}
	for i := 0; i < 2; i++ {
		d := disk.NewMemDisk(4 << 20)
		st, err := server.Format(d, server.Config{FragmentSize: 4096})
		if err != nil {
			t.Fatal(err)
		}
		e.conns = append(e.conns, transport.NewLocal(wire.ServerID(i+1), st, 1))
	}
	e.reopen(t)
	return e
}

func (e *env) reopen(t *testing.T) {
	t.Helper()
	l, rec, err := core.Open(core.Config{Client: 1, Servers: e.conns, FragmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	e.log = l
	e.reg = service.NewRegistry(l)
	e.mgr = New(aruSvcID, l)
	e.seen = nil
	e.mgr.SetReplayHandler(func(p []byte) error {
		e.seen = append(e.seen, string(p))
		return nil
	})
	if err := e.reg.Register(e.mgr, rec.Service(aruSvcID)); err != nil {
		t.Fatal(err)
	}
}

func TestCommittedUnitReplays(t *testing.T) {
	e := newEnv(t)
	u := e.mgr.Begin()
	if err := u.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := u.Write([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.log.Sync(); err != nil {
		t.Fatal(err)
	}
	e.reopen(t)
	defer e.log.Close()
	if len(e.seen) != 2 || e.seen[0] != "a" || e.seen[1] != "b" {
		t.Fatalf("replayed = %v", e.seen)
	}
}

func TestUncommittedUnitSuppressed(t *testing.T) {
	e := newEnv(t)
	u := e.mgr.Begin()
	if err := u.Write([]byte("ghost")); err != nil {
		t.Fatal(err)
	}
	// Crash before commit.
	if err := e.log.Sync(); err != nil {
		t.Fatal(err)
	}
	e.reopen(t)
	defer e.log.Close()
	if len(e.seen) != 0 {
		t.Fatalf("uncommitted records replayed: %v", e.seen)
	}
	if e.mgr.PendingUnits() != 1 {
		t.Fatalf("pending units = %d", e.mgr.PendingUnits())
	}
}

func TestAbortedUnitSuppressed(t *testing.T) {
	e := newEnv(t)
	u := e.mgr.Begin()
	if err := u.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := u.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := e.log.Sync(); err != nil {
		t.Fatal(err)
	}
	e.reopen(t)
	defer e.log.Close()
	if len(e.seen) != 0 {
		t.Fatalf("aborted records replayed: %v", e.seen)
	}
	if e.mgr.PendingUnits() != 0 {
		t.Fatalf("pending units = %d", e.mgr.PendingUnits())
	}
}

func TestInterleavedUnitsCommitOrder(t *testing.T) {
	e := newEnv(t)
	u1, u2 := e.mgr.Begin(), e.mgr.Begin()
	if u1.ID() == u2.ID() {
		t.Fatal("duplicate unit IDs")
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(u1.Write([]byte("1a")))
	must(u2.Write([]byte("2a")))
	must(u1.Write([]byte("1b")))
	must(u2.Commit()) // u2 commits first
	must(u1.Commit())
	must(e.log.Sync())

	e.reopen(t)
	defer e.log.Close()
	want := []string{"2a", "1a", "1b"}
	if len(e.seen) != 3 {
		t.Fatalf("replayed = %v", e.seen)
	}
	for i := range want {
		if e.seen[i] != want[i] {
			t.Fatalf("replayed = %v, want %v", e.seen, want)
		}
	}
}

func TestFinishedUnitRejectsOperations(t *testing.T) {
	e := newEnv(t)
	defer e.log.Close()
	u := e.mgr.Begin()
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := u.Write([]byte("x")); !errors.Is(err, ErrFinished) {
		t.Fatalf("write after commit: %v", err)
	}
	if err := u.Commit(); !errors.Is(err, ErrFinished) {
		t.Fatalf("double commit: %v", err)
	}
	if err := u.Abort(); !errors.Is(err, ErrFinished) {
		t.Fatalf("abort after commit: %v", err)
	}
}

func TestCheckpointUnpinsAndPreservesIDs(t *testing.T) {
	e := newEnv(t)
	u := e.mgr.Begin()
	if err := u.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	firstID := u.ID()
	e.reopen(t)
	defer e.log.Close()
	// Old committed records are behind the checkpoint: not replayed.
	if len(e.seen) != 0 {
		t.Fatalf("records replayed past checkpoint: %v", e.seen)
	}
	// New units never reuse IDs.
	u2 := e.mgr.Begin()
	if u2.ID() <= firstID {
		t.Fatalf("unit ID %d reused (old %d)", u2.ID(), firstID)
	}
}

func TestCheckpointDemandWritesCheckpoint(t *testing.T) {
	e := newEnv(t)
	defer e.log.Close()
	if err := e.mgr.CheckpointDemand(); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.log.Checkpoint(aruSvcID); !ok {
		t.Fatal("no checkpoint after demand")
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	e := newEnv(t)
	defer e.log.Close()
	err := e.mgr.Replay(core.ReplayEntry{Kind: core.EntryRecord, Payload: []byte{1, 2}})
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("garbage replay: %v", err)
	}
	err = e.mgr.Replay(core.ReplayEntry{Kind: core.EntryRecord, Payload: encodeRec(9, 1, nil)})
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("unknown kind replay: %v", err)
	}
	// Non-record kinds are ignored.
	if err := e.mgr.Replay(core.ReplayEntry{Kind: core.EntryCreate}); err != nil {
		t.Fatal(err)
	}
}
