package sting

import (
	"testing"
	"time"

	"swarm/internal/vfs"
)

func FuzzDecodeInode(f *testing.F) {
	in := newFileInode(7, time.Unix(100, 0))
	in.size = 4096
	in.blocks = []blockPtr{{len: 4096}}
	f.Add(in.encode())
	dir := newDirInode(8, time.Unix(100, 0))
	dir.entries["name"] = dirEnt{ino: 9, mode: vfs.ModeFile}
	f.Add(dir.encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeInode(data)
		if err != nil {
			return
		}
		// Re-encoding a decoded inode must be decodable again.
		if _, err := decodeInode(got.encode()); err != nil {
			t.Fatalf("re-encode not decodable: %v", err)
		}
	})
}

func FuzzDecodeHint(f *testing.F) {
	f.Add(encodeInodeHint(1))
	f.Add(encodeDataHint(2, 3, 4096))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeHint(data)
		_, _ = decodeUnlinkRecord(data)
	})
}
