// Fileserver: mount the Sting file system on a Swarm cluster, build a
// small project tree, then simulate a client crash and show that crash
// recovery (checkpoint + log rollforward) restores the namespace and
// contents exactly.
package main

import (
	"fmt"
	"log"

	"swarm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := swarm.NewLocalCluster(3, swarm.ServerOptions{
		DiskBytes:    64 << 20,
		FragmentSize: 256 << 10,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// --- first session -------------------------------------------------
	client, err := cluster.Connect(1, swarm.ClientOptions{FragmentSize: 256 << 10})
	if err != nil {
		return err
	}
	fs, err := client.Mount(swarm.FSConfig{BlockSize: 4096, CacheBytes: 1 << 20})
	if err != nil {
		return err
	}

	if err := swarm.MkdirAll(fs, "/project/src"); err != nil {
		return err
	}
	if err := swarm.WriteFile(fs, "/project/README.md", []byte("# stored on swarm\n")); err != nil {
		return err
	}
	if err := swarm.WriteFile(fs, "/project/src/main.go", []byte("package main\n")); err != nil {
		return err
	}
	// A checkpoint captures the inode map; everything after it will be
	// recovered by replaying the log's records.
	if err := fs.Checkpoint(); err != nil {
		return err
	}
	// Post-checkpoint activity: this survives the crash via rollforward.
	if err := swarm.WriteFile(fs, "/project/src/util.go", []byte("package main // util\n")); err != nil {
		return err
	}
	if err := fs.Rename("/project/README.md", "/project/README"); err != nil {
		return err
	}
	if err := fs.Sync(); err != nil {
		return err
	}
	fmt.Println("session 1: tree written, checkpointed, then mutated and synced")

	// --- simulated crash: no Unmount, no Close — just walk away ---------
	// (The servers keep the log; the client's in-memory state is gone.)

	// --- second session: recovery ---------------------------------------
	client2, err := cluster.Connect(1, swarm.ClientOptions{FragmentSize: 256 << 10})
	if err != nil {
		return err
	}
	defer client2.Close()
	fs2, err := client2.Mount(swarm.FSConfig{BlockSize: 4096})
	if err != nil {
		return err
	}
	defer fs2.Unmount()

	fmt.Println("session 2: recovered tree:")
	err = swarm.Walk(fs2, "/", func(path string, info swarm.FileInfo) error {
		kind := "file"
		if info.Mode.IsDir() {
			kind = "dir "
		}
		fmt.Printf("  %s %8d  %s\n", kind, info.Size, path)
		return nil
	})
	if err != nil {
		return err
	}
	data, err := swarm.ReadFile(fs2, "/project/src/util.go")
	if err != nil {
		return fmt.Errorf("post-checkpoint file lost: %w", err)
	}
	fmt.Printf("post-checkpoint file recovered: %q\n", data)
	if _, err := fs2.Stat("/project/README"); err != nil {
		return fmt.Errorf("rename lost: %w", err)
	}
	fmt.Println("rename recovered: /project/README exists")
	return nil
}
