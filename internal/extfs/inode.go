package extfs

import (
	"encoding/binary"
	"fmt"
	"time"

	"swarm/internal/vfs"
)

// On-disk inode modes.
const (
	modeFree = 0
	modeFile = 1
	modeDir  = 2
)

// dinode is the decoded on-disk inode: mode, link count, size, mtime,
// twelve direct pointers, one indirect, one double-indirect — the classic
// ext2/FFS shape.
type dinode struct {
	mode      uint16
	nlink     uint16
	size      int64
	mtime     time.Time
	direct    [NDirect]uint32
	indirect  uint32
	dindirect uint32
}

func newInode(mode uint16) *dinode {
	return &dinode{mode: mode, nlink: 1, mtime: time.Now()}
}

func (in *dinode) isDir() bool { return in.mode == modeDir }

func (in *dinode) vfsMode() vfs.FileMode {
	if in.isDir() {
		return vfs.ModeDir
	}
	return vfs.ModeFile
}

func (in *dinode) encode(buf []byte) {
	for i := range buf[:inodeSize] {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint16(buf[0:], in.mode)
	binary.LittleEndian.PutUint16(buf[2:], in.nlink)
	binary.LittleEndian.PutUint64(buf[8:], uint64(in.size))
	binary.LittleEndian.PutUint64(buf[16:], uint64(in.mtime.UnixNano()))
	for i := 0; i < NDirect; i++ {
		binary.LittleEndian.PutUint32(buf[24+i*4:], in.direct[i])
	}
	binary.LittleEndian.PutUint32(buf[24+NDirect*4:], in.indirect)
	binary.LittleEndian.PutUint32(buf[28+NDirect*4:], in.dindirect)
}

func decodeDInode(buf []byte) *dinode {
	in := &dinode{
		mode:  binary.LittleEndian.Uint16(buf[0:]),
		nlink: binary.LittleEndian.Uint16(buf[2:]),
		size:  int64(binary.LittleEndian.Uint64(buf[8:])),
		mtime: time.Unix(0, int64(binary.LittleEndian.Uint64(buf[16:]))),
	}
	for i := 0; i < NDirect; i++ {
		in.direct[i] = binary.LittleEndian.Uint32(buf[24+i*4:])
	}
	in.indirect = binary.LittleEndian.Uint32(buf[24+NDirect*4:])
	in.dindirect = binary.LittleEndian.Uint32(buf[28+NDirect*4:])
	return in
}

// inodeLoc returns the disk block and byte offset of inode ino.
func (fs *FS) inodeLoc(ino uint32) (blk uint32, off int) {
	inodesPerBlock := uint32(fs.g.blockSize / inodeSize)
	return fs.g.tableStart + ino/inodesPerBlock, int(ino%inodesPerBlock) * inodeSize
}

// readInode loads inode ino from the table.
func (fs *FS) readInode(ino uint32) (*dinode, error) {
	if ino == 0 || ino >= fs.g.nInodes {
		return nil, fmt.Errorf("%w: inode %d", ErrCorrupt, ino)
	}
	blk, off := fs.inodeLoc(ino)
	p, err := fs.cache.get(blk)
	if err != nil {
		return nil, err
	}
	return decodeDInode(p[off : off+inodeSize]), nil
}

// writeInode stores inode ino into the table.
func (fs *FS) writeInode(ino uint32, in *dinode) error {
	blk, off := fs.inodeLoc(ino)
	p, err := fs.cache.getDirty(blk)
	if err != nil {
		return err
	}
	in.encode(p[off : off+inodeSize])
	return nil
}

// ptrsPerBlock is the pointer fan-out of an indirect block.
func (fs *FS) ptrsPerBlock() uint32 { return uint32(fs.g.blockSize / 4) }

// maxBlocks is the largest logical block index + 1 an inode can map.
func (fs *FS) maxBlocks() uint64 {
	pp := uint64(fs.ptrsPerBlock())
	return NDirect + pp + pp*pp
}

// slot reads pointer i of indirect block blk, optionally allocating a new
// target block when alloc is set and the slot is empty.
func (fs *FS) slot(blk uint32, i uint32, alloc bool) (uint32, error) {
	p, err := fs.cache.get(blk)
	if err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(p[i*4:])
	if v != 0 || !alloc {
		return v, nil
	}
	nb, err := fs.allocDataBlock()
	if err != nil {
		return 0, err
	}
	dp, err := fs.cache.getDirty(blk)
	if err != nil {
		return 0, err
	}
	binary.LittleEndian.PutUint32(dp[i*4:], nb)
	return nb, nil
}

// allocDataBlock allocates a zeroed data block, biased toward the
// current operation's block group.
func (fs *FS) allocDataBlock() (uint32, error) {
	b, err := fs.dbm.alloc(fs.allocGroup)
	if err != nil {
		return 0, err
	}
	fs.cache.putZero(b)
	fs.stats.BlocksAllocated++
	return b, nil
}

// bmap maps logical block idx of inode in to a physical block, allocating
// the whole chain when alloc is set. Returns 0 for holes when not
// allocating. The inode may be mutated (direct/indirect roots); callers
// must write it back if dirty is reported.
func (fs *FS) bmap(in *dinode, idx uint64, alloc bool) (phys uint32, dirty bool, err error) {
	if idx >= fs.maxBlocks() {
		return 0, false, fmt.Errorf("%w: file too large (block %d)", vfs.ErrNoSpace, idx)
	}
	pp := uint64(fs.ptrsPerBlock())
	switch {
	case idx < NDirect:
		if in.direct[idx] == 0 && alloc {
			b, err := fs.allocDataBlock()
			if err != nil {
				return 0, false, err
			}
			in.direct[idx] = b
			dirty = true
		}
		return in.direct[idx], dirty, nil

	case idx < NDirect+pp:
		if in.indirect == 0 {
			if !alloc {
				return 0, false, nil
			}
			b, err := fs.allocDataBlock()
			if err != nil {
				return 0, false, err
			}
			in.indirect = b
			dirty = true
		}
		phys, err = fs.slot(in.indirect, uint32(idx-NDirect), alloc)
		return phys, dirty, err

	default:
		if in.dindirect == 0 {
			if !alloc {
				return 0, false, nil
			}
			b, err := fs.allocDataBlock()
			if err != nil {
				return 0, false, err
			}
			in.dindirect = b
			dirty = true
		}
		rel := idx - NDirect - pp
		l1, err := fs.slot(in.dindirect, uint32(rel/pp), alloc)
		if err != nil {
			return 0, dirty, err
		}
		if l1 == 0 {
			return 0, dirty, nil
		}
		phys, err = fs.slot(l1, uint32(rel%pp), alloc)
		return phys, dirty, err
	}
}

// freeBlocks releases all blocks of in from logical index from onward.
func (fs *FS) freeBlocks(in *dinode, from uint64) error {
	pp := uint64(fs.ptrsPerBlock())
	freeOne := func(b uint32) error {
		if b == 0 {
			return nil
		}
		fs.cache.drop(b)
		return fs.dbm.free(b)
	}
	for i := from; i < NDirect; i++ {
		if err := freeOne(in.direct[i]); err != nil {
			return err
		}
		in.direct[i] = 0
	}
	// Indirect range.
	if in.indirect != 0 {
		start := uint64(0)
		if from > NDirect {
			start = from - NDirect
		}
		if from <= NDirect+pp {
			p, err := fs.cache.get(in.indirect)
			if err != nil {
				return err
			}
			for i := start; i < pp; i++ {
				b := binary.LittleEndian.Uint32(p[i*4:])
				if err := freeOne(b); err != nil {
					return err
				}
			}
			if start == 0 {
				if err := freeOne(in.indirect); err != nil {
					return err
				}
				in.indirect = 0
			} else {
				dp, err := fs.cache.getDirty(in.indirect)
				if err != nil {
					return err
				}
				for i := start; i < pp; i++ {
					binary.LittleEndian.PutUint32(dp[i*4:], 0)
				}
			}
		}
	}
	// Double-indirect range.
	if in.dindirect != 0 {
		base := NDirect + pp
		start := uint64(0)
		if from > base {
			start = from - base
		}
		p, err := fs.cache.get(in.dindirect)
		if err != nil {
			return err
		}
		l1s := make([]uint32, pp)
		for i := uint64(0); i < pp; i++ {
			l1s[i] = binary.LittleEndian.Uint32(p[i*4:])
		}
		for li := start / pp; li < pp; li++ {
			l1 := l1s[li]
			if l1 == 0 {
				continue
			}
			inner, err := fs.cache.get(l1)
			if err != nil {
				return err
			}
			innerStart := uint64(0)
			if li == start/pp {
				innerStart = start % pp
			}
			allFreed := innerStart == 0
			if allFreed {
				for i := uint64(0); i < pp; i++ {
					if err := freeOne(binary.LittleEndian.Uint32(inner[i*4:])); err != nil {
						return err
					}
				}
				if err := freeOne(l1); err != nil {
					return err
				}
				dp, err := fs.cache.getDirty(in.dindirect)
				if err != nil {
					return err
				}
				binary.LittleEndian.PutUint32(dp[li*4:], 0)
			} else {
				dp, err := fs.cache.getDirty(l1)
				if err != nil {
					return err
				}
				for i := innerStart; i < pp; i++ {
					if err := freeOne(binary.LittleEndian.Uint32(dp[i*4:])); err != nil {
						return err
					}
					binary.LittleEndian.PutUint32(dp[i*4:], 0)
				}
			}
		}
		if start == 0 {
			if err := freeOne(in.dindirect); err != nil {
				return err
			}
			in.dindirect = 0
		}
	}
	return nil
}
