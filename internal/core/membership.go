package core

import (
	"errors"
	"fmt"
	"sort"

	"swarm/internal/placement"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// Elastic membership: the log's server set is no longer fixed at
// construction. AddServer/DrainServer/RemoveServer mutate the versioned
// placement map (internal/placement); every change closes the open
// stripe under its current epoch before publishing the next view, so a
// stripe's members are always placed under exactly one epoch — the one
// stamped in its fragment headers. The background rebalancer
// (internal/rebalance) drives fragments off draining servers through
// the MigrationTarget/NoteMigrated surface below.

// ErrNotEmpty is returned by RemoveServer while the server still holds
// this client's fragments (the drain has not finished).
var ErrNotEmpty = errors.New("core: server still holds fragments, drain first")

// AddServer admits a new storage server: the I/O engine gains its
// bounded queues, and the placement map publishes a new epoch whose
// active set includes it, so stripes opened from now on may place
// members there. The open stripe (if any) is sealed under its own epoch
// first. aid, when nonzero, is the ACL protecting fragments this log
// stores on the new server (mirroring Config.ACLs for the construction
// set). Returns the new head epoch.
func (l *Log) AddServer(conn transport.ServerConn, aid wire.AID) (uint32, error) {
	// The same fragment-size sanity check Open applies to the
	// construction set; an unreachable server is admitted (it may be
	// booting) and will surface as degraded writes until it answers.
	if st, err := conn.Stat(); err == nil && int(st.FragmentSize) != l.fragSize {
		return 0, fmt.Errorf("%w: server %d uses %d-byte fragments, client configured for %d",
			ErrConfig, conn.ID(), st.FragmentSize, l.fragSize)
	}
	if err := l.engine.AddServer(conn); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.engine.RemoveServer(conn.ID())
		return 0, ErrClosed
	}
	if aid != 0 {
		l.acls[conn.ID()] = aid
	}
	sealed := l.closeStripeLocked(false)
	epoch, err := l.place.Join(conn)
	if err != nil {
		delete(l.acls, conn.ID())
	}
	l.mu.Unlock()
	l.ship(sealed)
	if err != nil {
		l.engine.RemoveServer(conn.ID())
		return 0, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return epoch, nil
}

// DrainServer marks a server draining: it leaves the active placement
// ring (no new stripe targets it) but keeps serving reads while its
// fragments migrate. Fails with a configuration error when the drain
// would leave fewer active servers than the stripe width — stripes
// could no longer place their members on distinct servers. Returns the
// new head epoch. Draining an already-draining server is a no-op.
func (l *Log) DrainServer(id wire.ServerID) (uint32, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	sealed := l.closeStripeLocked(false)
	epoch, err := l.place.Drain(id, l.width)
	l.mu.Unlock()
	l.ship(sealed)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return epoch, nil
}

// RemoveServer completes a drain: the server leaves the map entirely
// and resolution of its old placements falls forward to the head view.
// The server must be draining and hold none of this client's fragments
// — unless it is unreachable, in which case it is removed on the
// strength of the drain having migrated (or reconstructed) everything
// it held. The caller owns closing the connection. Returns the new
// head epoch.
func (l *Log) RemoveServer(id wire.ServerID) (uint32, error) {
	conn := l.place.Conn(id)
	if conn == nil {
		return 0, fmt.Errorf("%w: server %d not in configuration", ErrConfig, id)
	}
	if st, ok := l.place.Head().StateOf(id); !ok || st != placement.Draining {
		return 0, fmt.Errorf("%w: server %d is not draining", ErrConfig, id)
	}
	if fids, err := conn.List(l.client); err == nil && len(fids) > 0 {
		return 0, fmt.Errorf("%w: server %d holds %d fragments", ErrNotEmpty, id, len(fids))
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	sealed := l.closeStripeLocked(false)
	epoch, err := l.place.Remove(id)
	if err == nil {
		// State keyed on the departed server would only mislead:
		// locations fall back to placement/discovery, and deferred
		// deletes died with the server's disks.
		for fid, sid := range l.locations {
			if sid == id {
				delete(l.locations, fid)
			}
		}
		for fid, sid := range l.pendingDel {
			if sid == id {
				delete(l.pendingDel, fid)
			}
		}
		delete(l.acls, id)
	}
	l.mu.Unlock()
	l.ship(sealed)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	l.engine.RemoveServer(id)
	return epoch, nil
}

// NextServerID returns the ID a newly joining server should use: one
// past the highest ever assigned, so IDs are never reused and a stale
// location hint can never point at the wrong machine.
func (l *Log) NextServerID() wire.ServerID { return l.place.NextID() }

// PlacementEpoch returns the head placement epoch — the rebalancer's
// fencing token: a move planned under one epoch re-validates its target
// if the epoch advanced before the source copy is deleted.
func (l *Log) PlacementEpoch() uint32 { return l.place.Epoch() }

// Placement returns a snapshot of the head placement view.
func (l *Log) Placement() placement.Info { return l.place.Snapshot() }

// ServerConn returns the connection for a current member, or nil.
func (l *Log) ServerConn(id wire.ServerID) transport.ServerConn { return l.place.Conn(id) }

// ListServer enumerates this client's fragments on one server.
func (l *Log) ListServer(id wire.ServerID) ([]wire.FID, error) {
	conn := l.place.Conn(id)
	if conn == nil {
		return nil, fmt.Errorf("%w: server %d not in configuration", ErrConfig, id)
	}
	return conn.List(l.client)
}

// MigrationTarget picks the server a stripe member should move to when
// its holder is draining or gone: the head view's assignment for its
// slot, probed forward around the active ring past servers that already
// hold — or are already receiving (avoid) — another member of the same
// stripe, so one server failure can never cost a stripe two members.
// The stale-tolerant occupancy set (recorded locations plus the
// header's Group) can only push the probe further, never corrupt it.
func (l *Log) MigrationTarget(h *Header, source wire.ServerID, avoid ...wire.ServerID) (transport.ServerConn, error) {
	head := l.place.Head()
	n := head.NumActive()
	if n == 0 {
		return nil, fmt.Errorf("%w: no active servers", ErrConfig)
	}
	stripe, slot := h.StripeID, int(h.Index)
	occupied := make(map[wire.ServerID]bool, int(h.Width)+len(avoid))
	occupied[source] = true
	for _, id := range avoid {
		occupied[id] = true
	}
	l.mu.Lock()
	for i := 0; i < int(h.Width); i++ {
		if i == slot {
			continue
		}
		if sid, ok := l.locations[h.MemberFID(i)]; ok {
			occupied[sid] = true
		} else if g := h.Group[i]; g != 0 {
			occupied[g] = true
		}
	}
	l.mu.Unlock()
	for probe := 0; probe < n; probe++ {
		if id := head.ServerAt(stripe, slot+probe); !occupied[id] {
			return l.place.Conn(id), nil
		}
	}
	// Every active server looked occupied — possible only through stale
	// hints, since a stripe has at most Width-1 other members and the
	// drain validated n ≥ Width. Fall back to the bare head assignment,
	// skipping only the source.
	for probe := 0; probe < n; probe++ {
		if id := head.ServerAt(stripe, slot+probe); id != source {
			return l.place.Conn(id), nil
		}
	}
	return nil, fmt.Errorf("%w: no migration target for %v (source %d is the only active server)", ErrConfig, h.FID, source)
}

// NoteMigrated records a verified rebalancer move: fid now lives on
// server to. Reads follow the new location immediately and the
// rebalance counters advance.
func (l *Log) NoteMigrated(fid wire.FID, to wire.ServerID, bytes int) {
	l.mu.Lock()
	l.locations[fid] = to
	l.clearDegradedLocked(fid)
	l.stats.RebalancedFragments++
	l.stats.RebalancedBytes += int64(bytes)
	l.mu.Unlock()
}

// NoteOrphan defers deletion of fid on an unreachable server until it
// answers again (FlushDeletes), mirroring ReclaimStripe's handling. If
// the server is instead removed, the orphan dies with it.
func (l *Log) NoteOrphan(fid wire.FID, id wire.ServerID) {
	l.mu.Lock()
	l.pendingDel[fid] = id
	l.stats.DeferredDeletes++
	l.mu.Unlock()
}

// LocationsOn returns the fragments this session recorded as living on
// one server, in sequence order — the drain survey for a source that no
// longer answers List.
func (l *Log) LocationsOn(id wire.ServerID) []wire.FID {
	l.mu.Lock()
	var out []wire.FID
	for fid, sid := range l.locations {
		if sid == id {
			out = append(out, fid)
		}
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DegradedOn returns the degraded-write fragments destined for one
// server: sealed members whose store was skipped while the server was
// unreachable. A drain migrates these too (served from the
// read-your-writes map or stripe reconstruction), since the draining
// server will never receive them.
func (l *Log) DegradedOn(id wire.ServerID) []wire.FID {
	l.mu.Lock()
	var out []wire.FID
	for _, set := range l.degraded {
		for fid, sid := range set {
			if sid == id {
				out = append(out, fid)
			}
		}
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FetchFrameFrom reads and validates fragment fid from one specific
// server through the engine's bounded fetch queue — the rebalancer's
// read-from-source path (no reconstruction, no discovery fallback).
func (l *Log) FetchFrameFrom(id wire.ServerID, fid wire.FID) (Header, []byte, error) {
	conn := l.place.Conn(id)
	if conn == nil {
		return Header{}, nil, fmt.Errorf("%w: server %d not in configuration", ErrConfig, id)
	}
	return l.engineFetch(conn, fid)
}

// StoreFrame writes a header+payload frame to conn with the log's ACL
// protection, through the engine's store policy (bounded queue, retry
// once on bare connections, StatusExists is success).
func (l *Log) StoreFrame(conn transport.ServerConn, h *Header, payload []byte) error {
	frame := make([]byte, HeaderSize+len(payload))
	copy(frame, EncodeHeader(h))
	copy(frame[HeaderSize:], payload)
	return l.engine.Store(conn, h.FID, frame, false, l.rangesFor(conn, len(frame)))
}

// VerifyFrameOn reads fid's header back from a server and checks it
// names the same fragment bytes (FID and payload CRC) as h — the
// rebalancer's verify-before-delete step.
func (l *Log) VerifyFrameOn(conn transport.ServerConn, h *Header) error {
	hdrBytes, err := l.engine.ReadAt(conn, h.FID, 0, HeaderSize)
	if err != nil {
		return err
	}
	got, err := DecodeHeader(hdrBytes)
	wire.PutBuffer(hdrBytes)
	if err != nil {
		return err
	}
	if got.FID != h.FID || got.PayloadCRC != h.PayloadCRC {
		return fmt.Errorf("%w: fragment %v on server %d does not match its source", ErrBadFragment, h.FID, conn.ID())
	}
	return nil
}

// DeleteFrom deletes fid from one server. StatusNotFound is success
// (the fragment is gone, which is what was asked).
func (l *Log) DeleteFrom(conn transport.ServerConn, fid wire.FID) error {
	err := conn.Delete(fid)
	if err != nil && !wire.IsStatus(err, wire.StatusNotFound) {
		return err
	}
	return nil
}
