// Quickstart: start an in-process Swarm cluster, append blocks and
// records to a striped log, checkpoint, and read everything back — the
// minimal tour of the core abstraction.
package main

import (
	"fmt"
	"log"

	"swarm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Four storage servers. The paper's prototype uses 1 MB fragments;
	// smaller fragments keep this demo snappy.
	cluster, err := swarm.NewLocalCluster(4, swarm.ServerOptions{
		DiskBytes:    64 << 20,
		FragmentSize: 256 << 10,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// One client = one striped log. With four servers the stripe is
	// three data fragments plus one rotating parity fragment.
	client, err := cluster.Connect(1, swarm.ClientOptions{FragmentSize: 256 << 10})
	if err != nil {
		return err
	}
	defer client.Close()

	l := client.Log()
	fmt.Printf("log open: stripe width %d, parity %v\n", l.Width(), l.ParityEnabled())

	// Append blocks under a service ID of our choosing. The log layer
	// writes a creation record for each block automatically.
	const mySvc swarm.ServiceID = 42
	var addrs []swarm.BlockAddr
	for i := 0; i < 100; i++ {
		data := []byte(fmt.Sprintf("block %03d: swarm stores opaque bytes", i))
		addr, err := l.AppendBlock(mySvc, data, nil)
		if err != nil {
			return err
		}
		addrs = append(addrs, addr)
	}
	// Service-specific records interleave with blocks in the log.
	if _, err := l.AppendRecord(mySvc, []byte("a record for crash replay")); err != nil {
		return err
	}

	// Sync seals the stripe (padding + parity) and waits for the
	// servers to acknowledge: everything is now parity-protected.
	if err := client.Sync(); err != nil {
		return err
	}
	fmt.Printf("synced: %d blocks appended\n", len(addrs))

	// Read back: addresses are (fragment, offset) pairs.
	got, err := l.Read(addrs[41], 0, 9)
	if err != nil {
		return err
	}
	fmt.Printf("read %v -> %q\n", addrs[41], got)

	// A checkpoint bounds recovery time: after a crash, only records
	// newer than the checkpoint are replayed.
	if _, err := l.WriteCheckpoint(mySvc, []byte("my service state v1")); err != nil {
		return err
	}
	fmt.Println("checkpoint written (stored in a marked fragment)")

	st := l.Stats()
	fmt.Printf("stats: %d fragments (%d parity), %d bytes shipped, %d checkpoints\n",
		st.FragmentsSealed+st.ParityFragments, st.ParityFragments, st.BytesStored, st.Checkpoints)

	for i, s := range cluster.Servers() {
		_, total, free, frags := s.Stats()
		fmt.Printf("server %d: %d/%d slots used (%d fragments)\n", i+1, total-free, total, frags)
	}
	return nil
}
