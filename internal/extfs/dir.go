package extfs

import (
	"fmt"
	"sort"

	"swarm/internal/vfs"
	"swarm/internal/wire"
)

// Directory contents are a packed sequence of entries:
//   ino(4) mode(1) nameLen(2) name...
// Directory updates rewrite the affected portion in place — the
// update-in-place behaviour that distinguishes extfs from Sting.

type dirEntry struct {
	ino  uint32
	mode uint16
	name string
}

// readDirEntries loads and parses a directory inode's contents.
func (fs *FS) readDirEntries(in *dinode) ([]dirEntry, error) {
	buf := make([]byte, in.size)
	n, err := fs.readAt(in, buf, 0)
	if err != nil {
		return nil, err
	}
	buf = buf[:n]
	d := wire.NewDecoder(buf)
	var out []dirEntry
	for d.Remaining() > 0 {
		ino := d.U32()
		mode := d.U8()
		nameLen := d.U16()
		if d.Err() != nil {
			return nil, fmt.Errorf("%w: directory entry", ErrCorrupt)
		}
		name := make([]byte, nameLen)
		for i := range name {
			name[i] = d.U8()
		}
		if d.Err() != nil {
			return nil, fmt.Errorf("%w: directory entry name", ErrCorrupt)
		}
		out = append(out, dirEntry{ino: ino, mode: uint16(mode), name: string(name)})
	}
	return out, nil
}

// writeDirEntries replaces a directory's contents.
func (fs *FS) writeDirEntries(ino uint32, in *dinode, entries []dirEntry) error {
	e := wire.NewEncoder(len(entries) * 24)
	for _, ent := range entries {
		e.U32(ent.ino)
		e.U8(uint8(ent.mode))
		e.U16(uint16(len(ent.name)))
		for i := 0; i < len(ent.name); i++ {
			e.U8(ent.name[i])
		}
	}
	data := e.Bytes()
	if int64(len(data)) < in.size {
		if err := fs.truncate(ino, in, int64(len(data))); err != nil {
			return err
		}
	}
	if len(data) == 0 {
		return fs.truncate(ino, in, 0)
	}
	if _, err := fs.writeAt(ino, in, data, 0); err != nil {
		return err
	}
	if int64(len(data)) != in.size {
		in.size = int64(len(data))
		return fs.writeInode(ino, in)
	}
	return nil
}

// dirLookup finds name in a directory.
func (fs *FS) dirLookup(in *dinode, name string) (dirEntry, bool, error) {
	entries, err := fs.readDirEntries(in)
	if err != nil {
		return dirEntry{}, false, err
	}
	for _, e := range entries {
		if e.name == name {
			return e, true, nil
		}
	}
	return dirEntry{}, false, nil
}

// dirInsert adds an entry (caller has checked absence).
func (fs *FS) dirInsert(ino uint32, in *dinode, ent dirEntry) error {
	entries, err := fs.readDirEntries(in)
	if err != nil {
		return err
	}
	entries = append(entries, ent)
	return fs.writeDirEntries(ino, in, entries)
}

// dirRemove deletes an entry by name.
func (fs *FS) dirRemove(ino uint32, in *dinode, name string) error {
	entries, err := fs.readDirEntries(in)
	if err != nil {
		return err
	}
	out := entries[:0]
	found := false
	for _, e := range entries {
		if e.name == name {
			found = true
			continue
		}
		out = append(out, e)
	}
	if !found {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, name)
	}
	return fs.writeDirEntries(ino, in, out)
}

// resolve walks path components from the root. Caller holds fs.mu.
func (fs *FS) resolve(parts []string) (uint32, *dinode, error) {
	ino := uint32(rootIno)
	in, err := fs.readInode(ino)
	if err != nil {
		return 0, nil, err
	}
	for _, name := range parts {
		if !in.isDir() {
			return 0, nil, fmt.Errorf("%w: %s", vfs.ErrNotDir, name)
		}
		ent, ok, err := fs.dirLookup(in, name)
		if err != nil {
			return 0, nil, err
		}
		if !ok {
			return 0, nil, fmt.Errorf("%w: %s", vfs.ErrNotExist, name)
		}
		ino = ent.ino
		if in, err = fs.readInode(ino); err != nil {
			return 0, nil, err
		}
	}
	return ino, in, nil
}

// resolveParent resolves path to (parent ino, parent inode, final name).
func (fs *FS) resolveParent(path string) (uint32, *dinode, string, error) {
	parent, name, err := vfs.SplitDir(path)
	if err != nil {
		return 0, nil, "", err
	}
	ino, in, err := fs.resolve(parent)
	if err != nil {
		return 0, nil, "", err
	}
	if !in.isDir() {
		return 0, nil, "", vfs.ErrNotDir
	}
	return ino, in, name, nil
}

// sortedEntries returns a directory's entries sorted by name.
func sortedEntries(entries []dirEntry) []dirEntry {
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	return entries
}
