package wire

import (
	"bytes"
	"testing"
)

func FuzzReadRequestFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteRequest(&buf, OpStore, 7, 1, &StoreRequest{FID: MakeFID(1, 2), Data: []byte("x")})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, frameHdrSize+4))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequestFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything framed must decode (or fail) without panicking.
		var store StoreRequest
		_ = store.Decode(NewDecoder(req.Body))
		var read ReadRequest
		_ = read.Decode(NewDecoder(req.Body))
		var acl ACLModifyRequest
		_ = acl.Decode(NewDecoder(req.Body))
	})
}

// FuzzResponseStreamDemux models what the transport's demultiplexer
// consumes: a stream of response frames whose request IDs arrive in an
// arbitrary (fuzz-chosen) order, with duplicates, interleaved payload
// sizes, and optional trailing junk. Every well-formed frame must come
// back with the body matching its ID, and the stream must never panic.
func FuzzResponseStreamDemux(f *testing.F) {
	f.Add(uint64(3), []byte{2, 0, 1}, false)
	f.Add(uint64(1000), []byte{5, 5, 0, 3, 1, 4, 2}, true)
	f.Add(uint64(0), []byte{0}, false)
	f.Fuzz(func(t *testing.T, seed uint64, order []byte, junk bool) {
		if len(order) == 0 || len(order) > 64 {
			return
		}
		// bodyFor derives a distinct, checkable payload from each ID.
		bodyFor := func(id uint64) []byte {
			n := int(id % 257)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(id + uint64(i))
			}
			return b
		}
		var stream bytes.Buffer
		want := make([]uint64, 0, len(order))
		for _, o := range order {
			id := seed + uint64(o%8) // small range forces duplicates
			want = append(want, id)
			if err := WriteResponse(&stream, OpRead, id, &ReadResponse{Data: bodyFor(id)}); err != nil {
				t.Fatal(err)
			}
		}
		if junk {
			stream.Write([]byte("\x00\xffnot a frame"))
		}
		r := bytes.NewReader(stream.Bytes())
		for i, id := range want {
			rsp, err := ReadResponseFrame(r)
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if rsp.ID != id {
				t.Fatalf("frame %d: id %d, want %d (frames must arrive in write order)", i, rsp.ID, id)
			}
			var rr ReadResponse
			if err := rr.Decode(NewDecoder(rsp.Body)); err != nil {
				t.Fatalf("frame %d: decode: %v", i, err)
			}
			if !bytes.Equal(rr.Data, bodyFor(id)) {
				t.Fatalf("frame %d: body does not match id %d", i, id)
			}
			PutBuffer(rsp.Body)
		}
		if _, err := ReadResponseFrame(r); err == nil {
			t.Fatal("read past the last frame succeeded")
		}
	})
}

func FuzzReadResponseFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteResponse(&buf, OpRead, 7, &ReadResponse{Data: []byte("abc")})
	f.Add(buf.Bytes())
	var ebuf bytes.Buffer
	_ = WriteErrorResponse(&ebuf, OpStore, 1, StatusNoSpace, "full")
	f.Add(ebuf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		rsp, err := ReadResponseFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = rsp.Err()
		var rr ReadResponse
		_ = rr.Decode(NewDecoder(rsp.Body))
		var lm LastMarkedResponse
		_ = lm.Decode(NewDecoder(rsp.Body))
		var ls ListFIDsResponse
		_ = ls.Decode(NewDecoder(rsp.Body))
	})
}
