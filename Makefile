GO ?= go

# Total statement coverage (make cover) must not drop below this.
COVER_FLOOR ?= 75

.PHONY: ci check vet build test race chaos cover bench-strict bench-smoke

.DEFAULT_GOAL := ci

# The CI gate — what `make` with no arguments runs: static checks, the
# full test suite, a race pass over the packages with real concurrency
# (the transport, the fragment I/O engine, and the striped-log core,
# including the chaos harness in the root package), the coverage floor,
# and a small benchmark smoke run.
ci: vet build test race cover bench-smoke

# Historical alias for the same gate.
check: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race pass over the concurrency-heavy layers plus the cluster-level
# chaos/fault-injection tests in the root package.
race:
	$(GO) test -race ./internal/transport ./internal/fragio ./internal/core ./internal/server
	$(GO) test -race -run 'TestChaos|TestDegradedWrites|TestClientClose' .

# The chaos harness alone, under the race detector.
chaos:
	$(GO) test -race -v -run 'TestChaos|TestDegradedWrites' .

# Statement coverage across all packages, with a floor: fails if the
# total drops below COVER_FLOOR percent.
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { pct = $$3 + 0; printf "total coverage: %s (floor %d%%)\n", $$3, floor; \
		 if (pct < floor) { print "FAIL: coverage below floor"; exit 1 } }'

# Benchmark shape tests with the strict environment-sensitive
# throughput-ratio assertions enabled (needs an unloaded machine).
bench-strict:
	SWARM_BENCH_STRICT=1 $(GO) test ./internal/bench

# Tiny wirepath (serial vs multiplexed wire path, DESIGN.md §3.9) and
# servercommit (serial vs group-committed store path, DESIGN.md §3.10)
# runs as CI smoke checks. Shape only by default; set
# SWARM_BENCH_STRICT=1 to also assert the >= 2x speedup ratios.
bench-smoke:
	$(GO) test -count=1 -run 'TestWirepath|TestServercommit' ./internal/bench
