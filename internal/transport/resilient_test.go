package transport

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"swarm/internal/wire"
)

// fakeClock drives the breaker's open-timeout without real sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newResilientPair builds Resilient → Flaky → Local over a fresh store.
func newResilientPair(t *testing.T, cfg ResilientConfig) (*Resilient, *Flaky) {
	t.Helper()
	fl := NewFlaky(NewLocal(1, newStore(t), 1))
	r := NewResilient(fl, cfg)
	t.Cleanup(func() { r.Close() })
	return r, fl
}

func TestResilientFullContract(t *testing.T) {
	fl := NewFlaky(NewLocal(1, newStore(t), 1))
	exerciseConn(t, NewResilient(fl, ResilientConfig{}))
}

func TestResilientRetriesTransientFailures(t *testing.T) {
	r, fl := newResilientPair(t, ResilientConfig{
		MaxRetries: 2,
		sleep:      func(time.Duration) {},
	})
	fl.FailNext(2, ErrUnavailable)
	data := bytes.Repeat([]byte{9}, 100)
	if err := r.Store(wire.MakeFID(1, 0), data, true, nil); err != nil {
		t.Fatalf("store with transient failures: %v", err)
	}
	h := r.Health()
	if h.Retries != 2 || h.Failures != 2 {
		t.Fatalf("health = %+v, want 2 retries / 2 failures", h)
	}
	if h.ConsecutiveFailures != 0 || h.State != "closed" {
		t.Fatalf("success did not reset the breaker: %+v", h)
	}
	got, err := r.Read(wire.MakeFID(1, 0), 0, 100)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back = (%d bytes, %v)", len(got), err)
	}
}

func TestResilientGivesUpAfterMaxRetries(t *testing.T) {
	r, fl := newResilientPair(t, ResilientConfig{
		MaxRetries:    2,
		FailThreshold: 100, // keep the breaker out of the picture
		sleep:         func(time.Duration) {},
	})
	fl.SetDown(true)
	if err := r.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ping on dead server: %v", err)
	}
	if calls := fl.Calls(); calls != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", calls)
	}
}

func TestResilientNeverRetriesStatusErrors(t *testing.T) {
	r, fl := newResilientPair(t, ResilientConfig{sleep: func(time.Duration) {}})
	fid := wire.MakeFID(1, 0)
	data := bytes.Repeat([]byte{1}, 64)
	if err := r.Store(fid, data, false, nil); err != nil {
		t.Fatal(err)
	}
	before := fl.Calls()
	// A duplicate store is the server's authoritative answer: exactly one
	// attempt, no retries, and the breaker treats it as proof of liveness.
	if err := r.Store(fid, data, false, nil); !wire.IsStatus(err, wire.StatusExists) {
		t.Fatalf("duplicate store: %v", err)
	}
	if got := fl.Calls() - before; got != 1 {
		t.Fatalf("status error attempted %d times, want 1", got)
	}
	if h := r.Health(); h.Retries != 0 || h.ConsecutiveFailures != 0 {
		t.Fatalf("status error counted as transient: %+v", h)
	}
}

func TestResilientBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r, fl := newResilientPair(t, ResilientConfig{
		MaxRetries:    -1,
		FailThreshold: 3,
		OpenTimeout:   time.Second,
		now:           clk.now,
		sleep:         func(time.Duration) {},
	})

	// closed → open after FailThreshold consecutive transient failures.
	fl.SetDown(true)
	for i := 0; i < 3; i++ {
		if err := r.Ping(); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	h := r.Health()
	if h.State != "open" || h.Trips != 1 {
		t.Fatalf("after %d failures: %+v", 3, h)
	}

	// Open circuit fails fast without touching the network.
	before := fl.Calls()
	if err := r.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("fast-fail ping: %v", err)
	}
	if fl.Calls() != before {
		t.Fatal("open circuit still touched the network")
	}
	if h := r.Health(); h.FastFails == 0 {
		t.Fatalf("fast fail not counted: %+v", h)
	}

	// After OpenTimeout a probe is let through; the server is still down,
	// so the probe fails and the circuit re-opens.
	clk.advance(1100 * time.Millisecond)
	before = fl.Calls()
	if err := r.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("probe ping: %v", err)
	}
	if got := fl.Calls() - before; got != 1 {
		t.Fatalf("probe made %d calls, want exactly 1", got)
	}
	if h := r.Health(); h.State != "open" {
		t.Fatalf("failed probe left state %q, want open", h.State)
	}

	// Server recovers; the next probe succeeds and closes the circuit.
	fl.SetDown(false)
	clk.advance(1100 * time.Millisecond)
	if err := r.Ping(); err != nil {
		t.Fatalf("ping after recovery: %v", err)
	}
	if h := r.Health(); h.State != "closed" || h.ConsecutiveFailures != 0 {
		t.Fatalf("after recovery: %+v", h)
	}
}

func TestResilientBackoffBoundsAndJitter(t *testing.T) {
	var sleeps []time.Duration
	r, fl := newResilientPair(t, ResilientConfig{
		MaxRetries:    3,
		RetryBase:     8 * time.Millisecond,
		RetryMax:      20 * time.Millisecond,
		FailThreshold: 100,
		sleep:         func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	fl.SetDown(true)
	if err := r.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ping: %v", err)
	}
	// Exponential with jitter in [d/2, d]: 8ms, 16ms, then capped at 20ms.
	want := []time.Duration{8 * time.Millisecond, 16 * time.Millisecond, 20 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("slept %d times, want %d", len(sleeps), len(want))
	}
	for i, d := range want {
		if sleeps[i] < d/2 || sleeps[i] > d {
			t.Fatalf("sleep %d = %v, want in [%v, %v]", i, sleeps[i], d/2, d)
		}
	}
}

func TestResilientFailsFastUnderInjectedLatency(t *testing.T) {
	// A dead-but-slow server costs its injected latency only until the
	// breaker trips; after that calls are rejected in microseconds, so
	// work bound for healthy servers is not serialized behind the dead
	// one.
	const latency = 30 * time.Millisecond
	r, fl := newResilientPair(t, ResilientConfig{
		MaxRetries:    -1,
		FailThreshold: 2,
		OpenTimeout:   time.Minute,
	})
	fl.SetDown(true)
	fl.SetLatency(latency)
	for i := 0; i < 2; i++ {
		if err := r.Ping(); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	if h := r.Health(); h.State != "open" {
		t.Fatalf("breaker not open: %+v", h)
	}
	const fastCalls = 20
	start := time.Now()
	for i := 0; i < fastCalls; i++ {
		if err := r.Ping(); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("fast-fail ping %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	// Serialized behind the latency this would take fastCalls*latency
	// (600ms); allow a generous fraction of that for slow CI machines.
	if elapsed > fastCalls*latency/4 {
		t.Fatalf("%d open-circuit calls took %v — not failing fast", fastCalls, elapsed)
	}
}

func TestResilientHalfOpenAdmitsSingleProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	probeStarted := make(chan struct{})
	probeRelease := make(chan struct{})
	st := newStore(t)
	fl := NewFlaky(&slowPing{ServerConn: NewLocal(1, st, 1), started: probeStarted, release: probeRelease})
	r := NewResilient(fl, ResilientConfig{
		MaxRetries:    -1,
		FailThreshold: 1,
		OpenTimeout:   time.Second,
		now:           clk.now,
		sleep:         func(time.Duration) {},
	})
	fl.FailNext(1, ErrUnavailable)
	if err := r.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("trip ping: %v", err)
	}
	clk.advance(2 * time.Second)

	// First caller enters the half-open probe and blocks inside Ping.
	done := make(chan error, 1)
	go func() { done <- r.Ping() }()
	<-probeStarted

	// A concurrent caller must not piggyback another request onto the
	// struggling server; it fails fast while the probe is in flight.
	if _, err := r.Stat(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("concurrent call during probe: %v", err)
	}
	close(probeRelease)
	if err := <-done; err != nil {
		t.Fatalf("probe ping: %v", err)
	}
	if h := r.Health(); h.State != "closed" {
		t.Fatalf("after successful probe: %+v", h)
	}
}

// slowPing blocks Ping until released, to hold a probe in flight.
type slowPing struct {
	ServerConn
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (s *slowPing) Ping() error {
	s.once.Do(func() { close(s.started) })
	<-s.release
	return s.ServerConn.Ping()
}
