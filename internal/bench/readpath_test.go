package bench

import "testing"

// TestReadpathSmoke runs a tiny Zipf serving-tier sweep end to end: the
// workload completes in every mode and the counters are self-consistent.
// The ≥2x speedup acceptance ratio is timing-sensitive, so like the other
// benchmark ratios it is enforced only under SWARM_BENCH_STRICT.
func TestReadpathSmoke(t *testing.T) {
	skipUnderRace(t)
	rows, err := RunReadpath(ReadpathConfig{
		Servers:   2,
		Blocks:    512,
		BlockSize: 4096,
		Clients:   4,
		Ops:       400,
		Scale:     50,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("rows = %d, want at least off + one cache mode", len(rows))
	}
	if rows[0].Mode != "off" {
		t.Fatalf("first row = %q, want off", rows[0].Mode)
	}
	if rows[0].ServerHits != 0 || rows[0].BytesCachedMB != 0 {
		t.Fatalf("serving tier off but server cache served: hits=%d cachedMB=%f",
			rows[0].ServerHits, rows[0].BytesCachedMB)
	}
	for _, r := range rows[1:] {
		if r.ServerHits+r.ServerMisses == 0 {
			t.Fatalf("%s: server read cache saw no traffic", r.Mode)
		}
		if r.ServerHitRate <= 0 {
			t.Fatalf("%s: zero server hit rate on a Zipf workload", r.Mode)
		}
	}
	// The client-readahead row must actually have prefetched fragments.
	last := rows[len(rows)-1]
	if last.ClientRA > 0 && last.PrefetchedFragments == 0 {
		t.Fatalf("%s: client readahead armed but no fragments prefetched", last.Mode)
	}
	if speedup := ReadpathSpeedup(rows); benchStrict() && speedup < 2 {
		t.Fatalf("serving-tier speedup = %.2fx, want >= 2x", speedup)
	}
}
