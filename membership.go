package swarm

import (
	"context"
	"errors"
	"fmt"

	"swarm/internal/rebalance"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// Fleet management: a connected client can grow and shrink its cluster
// without restarting. AddServer admits a new storage server (new
// stripes start placing fragments there immediately); DrainServer
// excludes one from new placement and starts a background rebalance
// that migrates its fragments to their new homes; RemoveServer retires
// it once empty. Stripes written before, during, and after membership
// changes all stay readable — each fragment header records the
// placement epoch that wrote it.

// drainJob tracks one background rebalance started by DrainServer.
type drainJob struct {
	reb    *rebalance.Rebalancer
	cancel context.CancelFunc
	done   chan struct{}
	err    error
}

// AddServer dials a new storage server and admits it to the cluster.
// The server gets the next unused ID (IDs are never reused, even after
// removals) and new stripes may place fragments on it from now on.
// Existing stripes are not reshuffled. When the client was connected
// with Protect, an ACL covering this client is created on the new
// server; access previously granted to other clients via GrantAccess
// must be granted again for the new server to enforce it.
func (c *Client) AddServer(addr string) (ServerID, error) {
	id := c.log.NextServerID()
	tcpOpts := transport.TCPOptions{PoolSize: c.opts.PipelineDepth, MaxInFlight: c.opts.MaxInFlight}
	var sc transport.ServerConn
	tc, err := transport.DialTCPOpts(id, addr, c.id, tcpOpts)
	switch {
	case err == nil:
		sc = tc
	case !c.opts.DisableResilience && errors.Is(err, transport.ErrUnavailable):
		sc = transport.NewTCPConnOpts(id, addr, c.id, tcpOpts)
	default:
		return 0, fmt.Errorf("connect server %d (%s): %w", id, addr, err)
	}
	if !c.opts.DisableResilience {
		sc = transport.NewResilient(sc, c.opts.Resilience)
	}
	if err := c.admit(sc); err != nil {
		sc.Close()
		return 0, err
	}
	return id, nil
}

// AddLocalServer admits an in-process server (the counterpart of
// Cluster.Connect's direct wiring) and returns its assigned ID.
func (c *Client) AddLocalServer(s *Server) (ServerID, error) {
	id := c.log.NextServerID()
	sc := transport.NewLocal(id, s.store, c.id)
	if err := c.admit(sc); err != nil {
		return 0, err
	}
	return id, nil
}

func (c *Client) admit(sc transport.ServerConn) error {
	var aid wire.AID
	if c.opts.Protect {
		var err error
		aid, err = sc.ACLCreate([]ClientID{c.id})
		if err != nil {
			return fmt.Errorf("create ACL on server %d: %w", sc.ID(), err)
		}
	}
	if _, err := c.log.AddServer(sc, aid); err != nil {
		return err
	}
	c.mu.Lock()
	c.conns = append(c.conns, sc)
	if aid != 0 {
		if c.acls == nil {
			c.acls = make(map[ServerID]wire.AID)
		}
		c.acls[sc.ID()] = aid
	}
	c.mu.Unlock()
	return nil
}

// DrainServer excludes a server from new placement and starts a
// background rebalance migrating its fragments to their new homes. The
// server keeps serving reads throughout. Poll with RebalanceStats,
// block with WaitRebalance, finish with RemoveServer. Draining more
// servers than parity can absorb is refused when it would leave fewer
// active servers than the stripe width.
func (c *Client) DrainServer(id ServerID, opts ...RebalanceOptions) error {
	c.mu.Lock()
	if job, ok := c.drains[id]; ok {
		select {
		case <-job.done:
			// Previous drain finished (or failed); start a fresh one.
		default:
			c.mu.Unlock()
			return fmt.Errorf("swarm: server %d is already draining", id)
		}
	}
	c.mu.Unlock()
	if _, err := c.log.DrainServer(id); err != nil {
		return err
	}
	var o RebalanceOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	ctx, cancel := context.WithCancel(context.Background())
	job := &drainJob{
		reb:    rebalance.New(c.log, id, o),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	c.mu.Lock()
	if c.drains == nil {
		c.drains = make(map[ServerID]*drainJob)
	}
	c.drains[id] = job
	c.mu.Unlock()
	go func() {
		job.err = job.reb.Run(ctx)
		close(job.done)
	}()
	return nil
}

// WaitRebalance blocks until the background drain of server id
// finishes, returning its outcome. Errors when no drain was started.
func (c *Client) WaitRebalance(id ServerID) error {
	c.mu.Lock()
	job, ok := c.drains[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("swarm: no drain in progress for server %d", id)
	}
	<-job.done
	return job.err
}

// RebalanceStats reports the progress of server id's drain. The second
// result is false when no drain was ever started for it.
func (c *Client) RebalanceStats(id ServerID) (RebalanceStats, bool) {
	c.mu.Lock()
	job, ok := c.drains[id]
	c.mu.Unlock()
	if !ok {
		return RebalanceStats{}, false
	}
	return job.reb.Stats(), true
}

// RemoveServer retires a drained server: it leaves the placement map,
// its connection is closed, and its ID is never reused. The server must
// be draining and hold none of this client's fragments (run DrainServer
// and WaitRebalance first); an unreachable server that has been drained
// can be removed on the strength of the completed migration.
func (c *Client) RemoveServer(id ServerID) error {
	c.mu.Lock()
	if job, ok := c.drains[id]; ok {
		select {
		case <-job.done:
		default:
			c.mu.Unlock()
			return fmt.Errorf("swarm: server %d is still rebalancing; WaitRebalance first", id)
		}
	}
	c.mu.Unlock()
	if _, err := c.log.RemoveServer(id); err != nil {
		return err
	}
	c.mu.Lock()
	for i, sc := range c.conns {
		if sc.ID() == id {
			c.conns = append(c.conns[:i], c.conns[i+1:]...)
			sc.Close()
			break
		}
	}
	delete(c.acls, id)
	delete(c.drains, id)
	c.mu.Unlock()
	return nil
}

// Placement returns a snapshot of the cluster's placement map: the
// current epoch and each member's state (active or draining) in join
// order.
func (c *Client) Placement() PlacementInfo { return c.log.Placement() }

// stopDrains cancels any running background rebalances (Close path).
func (c *Client) stopDrains() {
	c.mu.Lock()
	jobs := make([]*drainJob, 0, len(c.drains))
	for _, job := range c.drains {
		jobs = append(jobs, job)
	}
	c.mu.Unlock()
	for _, job := range jobs {
		job.cancel()
		<-job.done
	}
}
