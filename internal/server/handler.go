package server

import (
	"errors"

	"swarm/internal/wire"
)

// Handle dispatches one decoded request against the store and returns the
// response status and body. It is transport-independent: the TCP front end
// and the in-process transport both call it.
func (s *Store) Handle(client wire.ClientID, op wire.Op, body []byte) (wire.Status, wire.Message) {
	switch op {
	case wire.OpPing:
		return wire.StatusOK, &wire.GenericResponse{}

	case wire.OpStore:
		var req wire.StoreRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		if err := s.Store(req.FID, req.Data, req.Mark, req.Ranges); err != nil {
			return mapErr(err)
		}
		return wire.StatusOK, &wire.GenericResponse{}

	case wire.OpRead:
		var req wire.ReadRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		data, ext, err := s.ReadExtent(client, req.FID, req.Off, req.Len)
		if err != nil {
			return mapErr(err)
		}
		if ext != nil {
			// Zero-copy cached read: the payload aliases the cache
			// extent and rides to the wire as-is. The transport's
			// ReleasePayload call (instead of PutBuffer) returns the
			// response's reference once the frame is written.
			return wire.StatusOK, &cachedReadResponse{
				ReadResponse: wire.ReadResponse{Data: data},
				ext:          ext,
			}
		}
		return wire.StatusOK, &wire.ReadResponse{Data: data}

	case wire.OpDelete:
		var req wire.DeleteRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		if err := s.Delete(client, req.FID); err != nil {
			return mapErr(err)
		}
		return wire.StatusOK, &wire.GenericResponse{}

	case wire.OpPrealloc:
		var req wire.PreallocRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		if err := s.Prealloc(req.FID); err != nil {
			return mapErr(err)
		}
		return wire.StatusOK, &wire.GenericResponse{}

	case wire.OpLastMarked:
		var req wire.LastMarkedRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		fid, found := s.LastMarked(req.Client)
		return wire.StatusOK, &wire.LastMarkedResponse{FID: fid, Found: found}

	case wire.OpHasFragment:
		var req wire.HasFragmentRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		size, found := s.Has(req.FID)
		return wire.StatusOK, &wire.HasFragmentResponse{Found: found, Size: size}

	case wire.OpListFIDs:
		var req wire.ListFIDsRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		return wire.StatusOK, &wire.ListFIDsResponse{FIDs: s.List(req.Client)}

	case wire.OpACLCreate:
		var req wire.ACLCreateRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		aid := s.acls.Create(req.Members)
		return wire.StatusOK, &wire.ACLCreateResponse{AID: aid}

	case wire.OpACLModify:
		var req wire.ACLModifyRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		if err := s.acls.Modify(req.AID, req.Add, req.Remove); err != nil {
			return mapErr(err)
		}
		return wire.StatusOK, &wire.GenericResponse{}

	case wire.OpACLDelete:
		var req wire.ACLDeleteRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		if err := s.acls.Delete(req.AID); err != nil {
			return mapErr(err)
		}
		return wire.StatusOK, &wire.GenericResponse{}

	case wire.OpStat:
		st := s.Stats()
		return wire.StatusOK, &wire.StatResponse{
			FragmentSize:    uint32(st.FragmentSize),
			TotalSlots:      uint32(st.TotalSlots),
			FreeSlots:       uint32(st.FreeSlots),
			Fragments:       uint32(st.Fragments),
			Stores:          uint64(st.Stores),
			SyncRequests:    uint64(st.SyncRequests),
			Syncs:           uint64(st.Syncs),
			EntryBatches:    uint64(st.EntryBatches),
			EntriesBatched:  uint64(st.EntriesBatched),
			StoreNanos:      uint64(st.StoreNanos),
			ReadHits:        uint64(st.ReadHits),
			ReadMisses:      uint64(st.ReadMisses),
			ReadaheadLoads:  uint64(st.ReadaheadLoads),
			ReadBytesCached: uint64(st.ReadBytesCached),
			ReadBytesDisk:   uint64(st.ReadBytesDisk),
			ReadCacheBytes:  uint64(st.ReadCacheBytes),
		}

	default:
		return wire.StatusBadRequest, errMsgStr("unknown op")
	}
}

// cachedReadResponse is a ReadResponse whose Data aliases a read-cache
// extent rather than an exclusively-owned pooled buffer. It implements
// wire.PayloadReleaser so transports return the reference (possibly
// recycling the buffer, if the cache has since evicted it) instead of
// force-recycling a buffer other readers may still be serving from.
type cachedReadResponse struct {
	wire.ReadResponse
	ext *Extent
}

// ReleasePayload implements wire.PayloadReleaser.
func (m *cachedReadResponse) ReleasePayload() { m.ext.Release() }

// errBody carries an error string; non-OK responses encode it.
type errBody struct{ msg string }

func (e *errBody) Encode(enc *wire.Encoder) { enc.String32(e.msg) }
func (e *errBody) Decode(d *wire.Decoder) error {
	e.msg = d.String32()
	return d.Err()
}

func errMsg(err error) wire.Message     { return &errBody{msg: err.Error()} }
func errMsgStr(msg string) wire.Message { return &errBody{msg: msg} }

// ErrText extracts the error message from a non-OK response message
// produced by Handle.
func ErrText(msg wire.Message) string {
	if e, ok := msg.(*errBody); ok {
		return e.msg
	}
	return ""
}

func mapErr(err error) (wire.Status, wire.Message) {
	switch {
	case errors.Is(err, ErrNotFound):
		return wire.StatusNotFound, errMsg(err)
	case errors.Is(err, ErrExists):
		return wire.StatusExists, errMsg(err)
	case errors.Is(err, ErrNoSpace):
		return wire.StatusNoSpace, errMsg(err)
	case errors.Is(err, ErrAccess):
		return wire.StatusAccess, errMsg(err)
	case errors.Is(err, ErrNoACL):
		return wire.StatusNotFound, errMsg(err)
	case errors.Is(err, ErrTooLarge), errors.Is(err, ErrBadRange):
		return wire.StatusBadRequest, errMsg(err)
	default:
		return wire.StatusInternal, errMsg(err)
	}
}
