package wire

import (
	"math/bits"
	"sync"
)

// Buffer pool: size-binned free lists for fragment-sized bodies. The wire
// path moves ~1 MB payloads on every store and read RPC; allocating each
// one fresh made the garbage collector a party to every fragment transfer.
// readFrame, the server's store/read paths, and the client's fetch paths
// (fragio/core) all draw from and return to this pool.
//
// Ownership rules (documented in DESIGN.md §3.9):
//
//   - GetBuffer hands out a buffer owned exclusively by the caller.
//   - PutBuffer recycles a buffer; the caller must not touch it afterward.
//     Releasing is always optional — a buffer that escapes (e.g. data
//     returned to the application) is simply collected by the GC and the
//     pool takes a miss.
//   - A subslice may be released on behalf of its backing array (the
//     transport releases response payloads that alias a frame body); the
//     pool bins by capacity, so partial views recycle what they can see.
//
// A hand-rolled free list is used instead of sync.Pool because the
// allocation guarantees are load-bearing: the AllocsPerRun regression
// tests pin the wire path to a small constant allocation count, and
// sync.Pool's GC-driven eviction makes that nondeterministic.
const (
	// minPoolBuffer is the smallest capacity worth pooling; shorter
	// buffers are cheap enough to allocate directly.
	minPoolBuffer = 4 << 10
	// poolBins spans capacities from minPoolBuffer (4 KB) up past the
	// largest fragment frames (bin 11 starts at 8 MB).
	poolBins = 12
	// maxPerBin bounds retained buffers per bin. It must cover a fully
	// multiplexed transport's in-flight depth (pool × MaxInFlight per
	// server on both ends) or high-concurrency steady state degrades to
	// allocation; in practice one size class (the fragment size)
	// dominates, so the worst case stays a few dozen MB.
	maxPerBin = 64
)

type bufferBin struct {
	mu   sync.Mutex
	bufs [][]byte // guarded by mu
}

var bufferPool [poolBins]bufferBin

// binBase returns the smallest capacity binned at index i.
func binBase(i int) int { return minPoolBuffer << i }

// binFor returns the bin index for a buffer of capacity c: the largest i
// with binBase(i) <= c, or -1 when c is below the pooled range.
func binFor(c int) int {
	if c < minPoolBuffer {
		return -1
	}
	i := bits.Len(uint(c)) - bits.Len(uint(minPoolBuffer))
	if i >= poolBins {
		i = poolBins - 1
	}
	return i
}

// take pops a buffer with capacity >= n from the bin, or nil.
func (b *bufferBin) take(n int) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	for j := len(b.bufs) - 1; j >= 0; j-- {
		if p := b.bufs[j]; cap(p) >= n {
			b.bufs[j] = b.bufs[len(b.bufs)-1]
			b.bufs[len(b.bufs)-1] = nil
			b.bufs = b.bufs[:len(b.bufs)-1]
			return p
		}
	}
	return nil
}

func (b *bufferBin) put(p []byte) {
	b.mu.Lock()
	if len(b.bufs) < maxPerBin {
		b.bufs = append(b.bufs, p)
	}
	b.mu.Unlock()
}

// GetBuffer returns a buffer of length n, recycled from the pool when a
// fit is available. The caller owns it exclusively until PutBuffer.
func GetBuffer(n int) []byte {
	if n <= 0 {
		return nil
	}
	if i := binFor(n); i >= 0 {
		// The buffer's own bin may hold a fit (bins span [base, 2·base),
		// so entries there need a capacity check); any higher bin fits by
		// construction.
		for ; i < poolBins; i++ {
			if p := bufferPool[i].take(n); p != nil {
				return p[:n]
			}
		}
	}
	// Round capacity up to a power of two so the buffer re-bins cleanly
	// and subslice releases (which shave a few header bytes off the
	// visible capacity) stay findable in the bin below.
	c := n
	if c < minPoolBuffer {
		return make([]byte, n)
	}
	if c&(c-1) != 0 {
		c = 1 << bits.Len(uint(c))
	}
	return make([]byte, n, c)
}

// PutBuffer recycles p's backing array. nil and small buffers are
// ignored, so callers can release unconditionally.
func PutBuffer(p []byte) {
	c := cap(p)
	i := binFor(c)
	if i < 0 {
		return
	}
	bufferPool[i].put(p[:0:c])
}
