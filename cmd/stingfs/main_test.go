package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"swarm"
)

// startServers launches n TCP storage servers and returns their
// addresses.
func startServers(t *testing.T, n int) []string {
	t.Helper()
	var addrs []string
	for i := 0; i < n; i++ {
		s, err := swarm.NewServer(swarm.ServerOptions{
			DiskBytes:    32 << 20,
			FragmentSize: 64 << 10,
			Listen:       "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		addrs = append(addrs, s.Addr())
	}
	return addrs
}

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

// invoke runs one stingfs command as a fresh invocation (open, execute,
// checkpoint, exit) — exactly the tool's lifecycle.
func invoke(t *testing.T, addrs []string, args ...string) string {
	t.Helper()
	out, err := capture(t, func() error {
		return run(addrs, 1, 64<<10, args)
	})
	if err != nil {
		t.Fatalf("stingfs %v: %v", args, err)
	}
	return out
}

func TestStingfsEndToEnd(t *testing.T) {
	addrs := startServers(t, 3)

	invoke(t, addrs, "mkdir", "/docs/notes")
	invoke(t, addrs, "write", "/docs/notes/a.txt", "persisted across invocations")
	if out := invoke(t, addrs, "cat", "/docs/notes/a.txt"); !strings.Contains(out, "persisted across invocations") {
		t.Fatalf("cat = %q", out)
	}
	if out := invoke(t, addrs, "ls", "/docs"); !strings.Contains(out, "notes") {
		t.Fatalf("ls = %q", out)
	}
	if out := invoke(t, addrs, "stat", "/docs/notes/a.txt"); !strings.Contains(out, "file") {
		t.Fatalf("stat = %q", out)
	}
	invoke(t, addrs, "mv", "/docs/notes/a.txt", "/docs/b.txt")
	if out := invoke(t, addrs, "cat", "/docs/b.txt"); !strings.Contains(out, "persisted") {
		t.Fatalf("cat after mv = %q", out)
	}
	if out := invoke(t, addrs, "tree", "/"); !strings.Contains(out, "/docs/b.txt") {
		t.Fatalf("tree = %q", out)
	}
	invoke(t, addrs, "rm", "/docs/b.txt")
	invoke(t, addrs, "rmdir", "/docs/notes")
	if out := invoke(t, addrs, "ls", "/docs"); strings.Contains(out, "notes") {
		t.Fatalf("ls after rmdir = %q", out)
	}
}

func TestStingfsErrors(t *testing.T) {
	addrs := startServers(t, 2)
	if err := run(addrs, 1, 64<<10, []string{"cat", "/missing"}); err == nil {
		t.Fatal("cat missing file succeeded")
	}
	if err := run(addrs, 1, 64<<10, []string{"bogus"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run(addrs, 1, 64<<10, []string{"write", "/only-path"}); err == nil {
		t.Fatal("write with missing argument accepted")
	}
	if err := run([]string{"127.0.0.1:1"}, 1, 64<<10, []string{"ls", "/"}); err == nil {
		t.Fatal("dead server accepted")
	}
}
