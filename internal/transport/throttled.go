package transport

import (
	"time"

	"swarm/internal/model"
	"swarm/internal/wire"
)

// NetModel holds the shared resources a throttled connection contends for.
// One ClientNIC is shared by all of a client's connections; one ServerNIC
// and ServerCPU are shared by all clients of a server. This reproduces the
// paper's switched-Ethernet topology, where the switch is non-blocking and
// each host link is the contention point.
type NetModel struct {
	Clock     model.Clock
	ClientNIC *model.Queue
	ServerNIC *model.Queue
	ServerCPU *model.Queue
	// Latency is charged per message (switch + protocol stack).
	Latency time.Duration
	// ReqOverhead is fixed server work charged per request.
	ReqOverhead time.Duration
}

// NewNetModel builds per-host resources from hardware parameters. Call it
// once per client (for the client NIC) and once per server (for the server
// NIC and CPU), then combine with Combine.
func NewNetModel(clock model.Clock, p model.HardwareParams) NetModel {
	if clock == nil {
		clock = model.WallClock{}
	}
	nm := NetModel{Clock: clock, Latency: p.NetLatency, ReqOverhead: p.ServerReqOverhead}
	if p.NetRate > 0 {
		nm.ClientNIC = model.NewQueue(clock, p.NetRate)
		nm.ServerNIC = model.NewQueue(clock, p.NetRate)
	}
	if p.ServerCPU > 0 {
		nm.ServerCPU = model.NewQueue(clock, p.ServerCPU)
	}
	return nm
}

// Throttled wraps a ServerConn with the network/server performance model.
type Throttled struct {
	inner ServerConn
	nm    NetModel
}

var _ ServerConn = (*Throttled)(nil)

// NewThrottled wraps inner so that every operation pays for network
// transfer, per-message latency, and server request processing according
// to nm.
func NewThrottled(inner ServerConn, nm NetModel) *Throttled {
	if nm.Clock == nil {
		nm.Clock = model.WallClock{}
	}
	return &Throttled{inner: inner, nm: nm}
}

// chargeWire models moving n payload bytes across the network plus one
// round of fixed costs. All three shared resources (the two host links
// and the server's request processing) are debited — that is where
// cross-client and cross-server contention comes from — but the caller
// sleeps only for the slowest of them: the stages of one transfer are
// pipelined (cut-through switching, processing while streaming), so a
// request's latency is its bottleneck stage, not the sum of stages.
func (t *Throttled) chargeWire(n int) {
	w := t.nm.ClientNIC.Reserve(n)
	if w2 := t.nm.ServerNIC.Reserve(n); w2 > w {
		w = w2
	}
	if w3 := t.nm.ServerCPU.Reserve(n); w3 > w {
		w = w3
	}
	t.nm.Clock.Sleep(w + t.nm.Latency + t.nm.ReqOverhead)
}

func (t *Throttled) chargeSend(n int) { t.chargeWire(n) }
func (t *Throttled) chargeRecv(n int) { t.chargeWire(n) }

// chargeControl models a small request/response with no bulk payload.
func (t *Throttled) chargeControl() {
	t.nm.Clock.Sleep(t.nm.Latency + t.nm.ReqOverhead)
}

// ID implements ServerConn.
func (t *Throttled) ID() wire.ServerID { return t.inner.ID() }

// Store implements ServerConn.
func (t *Throttled) Store(fid wire.FID, data []byte, mark bool, ranges []wire.ACLRange) error {
	t.chargeSend(len(data))
	return t.inner.Store(fid, data, mark, ranges)
}

// Read implements ServerConn.
func (t *Throttled) Read(fid wire.FID, off, n uint32) ([]byte, error) {
	data, err := t.inner.Read(fid, off, n)
	if err != nil {
		t.chargeControl()
		return nil, err
	}
	t.chargeRecv(len(data))
	return data, nil
}

// Delete implements ServerConn.
func (t *Throttled) Delete(fid wire.FID) error {
	t.chargeControl()
	return t.inner.Delete(fid)
}

// Prealloc implements ServerConn.
func (t *Throttled) Prealloc(fid wire.FID) error {
	t.chargeControl()
	return t.inner.Prealloc(fid)
}

// LastMarked implements ServerConn.
func (t *Throttled) LastMarked(client wire.ClientID) (wire.FID, bool, error) {
	t.chargeControl()
	return t.inner.LastMarked(client)
}

// Has implements ServerConn.
func (t *Throttled) Has(fid wire.FID) (uint32, bool, error) {
	t.chargeControl()
	return t.inner.Has(fid)
}

// List implements ServerConn.
func (t *Throttled) List(client wire.ClientID) ([]wire.FID, error) {
	t.chargeControl()
	return t.inner.List(client)
}

// ACLCreate implements ServerConn.
func (t *Throttled) ACLCreate(members []wire.ClientID) (wire.AID, error) {
	t.chargeControl()
	return t.inner.ACLCreate(members)
}

// ACLModify implements ServerConn.
func (t *Throttled) ACLModify(aid wire.AID, add, remove []wire.ClientID) error {
	t.chargeControl()
	return t.inner.ACLModify(aid, add, remove)
}

// ACLDelete implements ServerConn.
func (t *Throttled) ACLDelete(aid wire.AID) error {
	t.chargeControl()
	return t.inner.ACLDelete(aid)
}

// Stat implements ServerConn.
func (t *Throttled) Stat() (wire.StatResponse, error) {
	t.chargeControl()
	return t.inner.Stat()
}

// Ping implements ServerConn.
func (t *Throttled) Ping() error {
	t.chargeControl()
	return t.inner.Ping()
}

// Close implements ServerConn.
func (t *Throttled) Close() error { return t.inner.Close() }
