package blockcache

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"swarm/internal/core"
	"swarm/internal/wire"
)

// fakeReader counts reads and serves from a map.
type fakeReader struct {
	mu     sync.Mutex
	blocks map[core.BlockAddr][]byte
	reads  int
}

func (f *fakeReader) Read(addr core.BlockAddr, off, n uint32) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reads++
	b, ok := f.blocks[addr]
	if !ok {
		return nil, errors.New("no block")
	}
	if int(off+n) > len(b) {
		return nil, errors.New("out of range")
	}
	out := make([]byte, n)
	copy(out, b[off:off+n])
	return out, nil
}

func addr(i int) core.BlockAddr {
	return core.BlockAddr{FID: wire.MakeFID(1, uint64(i)), Off: 0}
}

func newFake(n, size int) *fakeReader {
	f := &fakeReader{blocks: make(map[core.BlockAddr][]byte)}
	for i := 0; i < n; i++ {
		f.blocks[addr(i)] = bytes.Repeat([]byte{byte(i)}, size)
	}
	return f
}

func TestCacheHitAvoidsLowerRead(t *testing.T) {
	f := newFake(4, 100)
	c := New(f, 1<<20)
	for i := 0; i < 3; i++ {
		got, err := c.ReadBlock(addr(1), 100, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, f.blocks[addr(1)]) {
			t.Fatal("data mismatch")
		}
	}
	if f.reads != 1 {
		t.Fatalf("lower reads = %d, want 1", f.reads)
	}
	hits, misses, _ := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestCachePartialReadFromCachedBlock(t *testing.T) {
	f := newFake(1, 100)
	c := New(f, 1<<20)
	if _, err := c.ReadBlock(addr(0), 100, 0, 100); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadBlock(addr(0), 100, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, f.blocks[addr(0)][10:30]) {
		t.Fatal("partial read mismatch")
	}
	if f.reads != 1 {
		t.Fatalf("lower reads = %d", f.reads)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	f := newFake(3, 100)
	c := New(f, 250) // room for two 100-byte blocks
	for i := 0; i < 3; i++ {
		if _, err := c.ReadBlock(addr(i), 100, 0, 100); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache len = %d", c.Len())
	}
	// addr(0) is the LRU victim: rereading it misses.
	before := f.reads
	if _, err := c.ReadBlock(addr(0), 100, 0, 100); err != nil {
		t.Fatal(err)
	}
	if f.reads != before+1 {
		t.Fatal("evicted block served from cache")
	}
	// addr(2) (most recent) still hits.
	before = f.reads
	if _, err := c.ReadBlock(addr(2), 100, 0, 100); err != nil {
		t.Fatal(err)
	}
	if f.reads != before {
		t.Fatal("recent block missed")
	}
}

func TestCacheTouchRefreshesLRU(t *testing.T) {
	f := newFake(3, 100)
	c := New(f, 250)
	mustRead := func(i int) {
		t.Helper()
		if _, err := c.ReadBlock(addr(i), 100, 0, 100); err != nil {
			t.Fatal(err)
		}
	}
	mustRead(0)
	mustRead(1)
	mustRead(0) // touch 0: now 1 is LRU
	mustRead(2) // evicts 1
	before := f.reads
	mustRead(0)
	if f.reads != before {
		t.Fatal("touched block was evicted")
	}
}

func TestCachePutAndInvalidate(t *testing.T) {
	f := newFake(1, 100)
	c := New(f, 1<<20)
	// Warm the cache directly (writer path).
	c.Put(addr(5), []byte("warm"))
	got, err := c.ReadBlock(addr(5), 4, 0, 4)
	if err != nil || string(got) != "warm" {
		t.Fatalf("read warmed = (%q,%v)", got, err)
	}
	if f.reads != 0 {
		t.Fatal("warmed read went to lower layer")
	}
	c.Invalidate(addr(5))
	if _, err := c.ReadBlock(addr(5), 4, 0, 4); err == nil {
		t.Fatal("invalidated block served (lower has no such block)")
	}
	// Put replaces existing contents.
	c.Put(addr(6), []byte("aaa"))
	c.Put(addr(6), []byte("bb"))
	got, err = c.ReadBlock(addr(6), 2, 0, 2)
	if err != nil || string(got) != "bb" {
		t.Fatalf("replaced = (%q,%v)", got, err)
	}
	_, _, bytesUsed := c.Stats()
	if bytesUsed != 2 {
		t.Fatalf("bytes = %d", bytesUsed)
	}
}

func TestCacheMissErrorPropagates(t *testing.T) {
	f := newFake(0, 0)
	c := New(f, 1024)
	if _, err := c.ReadBlock(addr(9), 10, 0, 10); err == nil {
		t.Fatal("missing block read succeeded")
	}
}

func TestCacheShortEntryFallsThrough(t *testing.T) {
	f := newFake(1, 100)
	c := New(f, 1024)
	// Cache a truncated version, then ask for more than it holds.
	c.Put(addr(0), f.blocks[addr(0)][:10])
	got, err := c.ReadBlock(addr(0), 100, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, f.blocks[addr(0)][:50]) {
		t.Fatal("fallthrough read mismatch")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	f := newFake(16, 64)
	c := New(f, 512)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				idx := (g + i) % 16
				got, err := c.ReadBlock(addr(idx), 64, 0, 64)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if got[0] != byte(idx) {
					t.Error("data mismatch")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
