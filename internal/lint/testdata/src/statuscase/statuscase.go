// Package statuscase is a swarmlint test fixture: each function
// exercises one statuscase-analyzer behavior, with expected diagnostics
// declared in want comments.
package statuscase

// Status stands in for wire.Status.
type Status uint8

// The enum. statusCount is an unexported sentinel — not a member.
const (
	StatusA Status = iota + 1
	StatusB
	StatusC
	statusCount
)

// exhaustive lists every member: clean, no default needed.
func exhaustive(s Status) int {
	switch s {
	case StatusA:
		return 1
	case StatusB:
		return 2
	case StatusC:
		return 3
	}
	return 0
}

// grouped case lists count the same as separate clauses.
func groupedExhaustive(s Status) int {
	switch s {
	case StatusA, StatusB, StatusC:
		return 1
	}
	return 0
}

func missingMember(s Status) int {
	switch s { // want "does not handle StatusC"
	case StatusA, StatusB:
		return 1
	}
	return 0
}

// A bare default does not excuse missing members: the default's
// disposition was never decided for them.
func missingWithBareDefault(s Status) int {
	switch s { // want "does not handle StatusB, StatusC"
	case StatusA:
		return 1
	default:
		return 0
	}
}

func annotatedDefault(s Status) int {
	switch s {
	case StatusA:
		return 1
	// swarmlint:statuscase-ok — every non-A status rejects by design
	default:
		return 0
	}
}

// Switches over other types are out of scope.
func otherType(x int) int {
	switch x {
	case 1:
		return 1
	}
	return 0
}

// Tagless switches are ordinary if-chains, out of scope.
func tagless(s Status) int {
	switch {
	case s == StatusA:
		return 1
	}
	return 0
}

func sink() int {
	return int(statusCount)
}
