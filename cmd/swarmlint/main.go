// Command swarmlint runs Swarm's project-specific static analyzers
// over the repository: buffer-pool ownership (bufpool), lock/I-O
// discipline (lockio), guarded-field locking (guardedby), and error
// classification (errclass). See internal/lint and DESIGN.md §7.
//
// Usage:
//
//	swarmlint [-only name,name] [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. Exit
// status is 0 when clean, 1 when diagnostics were reported, and 2 when
// loading or type-checking failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"swarm/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	dir := flag.String("C", ".", "directory to resolve the module from")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: swarmlint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Default()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name(), a.Doc())
		}
		return
	}
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(analyzers, strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "swarmlint:", err)
			os.Exit(2)
		}
	}

	root, err := lint.ModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swarmlint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swarmlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load()
	if err != nil {
		fmt.Fprintln(os.Stderr, "swarmlint:", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		// Print paths relative to the module root when possible: stable
		// output for CI logs regardless of checkout location.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "swarmlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
