// Benchmarks regenerating the paper's evaluation as testing.B targets —
// one per figure (see DESIGN.md §4) — plus component micro-benchmarks of
// the underlying machinery at native speed. Figure benches run a reduced
// workload per iteration and report 1999-normalized MB/s via
// b.ReportMetric; cmd/swarmbench runs the full-size sweeps.
package swarm

import (
	"fmt"
	"testing"

	"swarm/internal/bench"
	"swarm/internal/core"
	"swarm/internal/disk"
	"swarm/internal/server"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

const benchScale = 25

// BenchmarkFigure3RawWrite regenerates a Figure 3 point: raw aggregate
// write bandwidth, 1 client × 4 servers.
func BenchmarkFigure3RawWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunWritePoint(bench.WriteConfig{Clients: 1, Servers: 4, Blocks: 3000, Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RawMBps, "MB/s-1999")
	}
}

// BenchmarkFigure3MultiClient regenerates the scaling point: 4 clients ×
// 8 servers (the paper reports 19.3 MB/s raw).
func BenchmarkFigure3MultiClient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunWritePoint(bench.WriteConfig{Clients: 4, Servers: 8, Blocks: 1500, Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RawMBps, "MB/s-1999")
	}
}

// BenchmarkFigure4UsefulWrite regenerates a Figure 4 point: useful
// throughput, 1 client × 4 servers (the paper reports 5.5 MB/s).
func BenchmarkFigure4UsefulWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunWritePoint(bench.WriteConfig{Clients: 1, Servers: 4, Blocks: 3000, Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.UsefulMBps, "MB/s-1999")
	}
}

// BenchmarkFigure5MAB regenerates Figure 5: the Modified Andrew Benchmark
// on Sting vs extfs. Reported metric is the Sting/ext2fs speedup (the
// paper measures 1.9x).
func BenchmarkFigure5MAB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stingRes, extRes, err := bench.RunFigure5(bench.MABConfig{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(extRes.Elapsed)/float64(stingRes.Elapsed), "speedup")
		b.ReportMetric(stingRes.Elapsed.Seconds(), "sting-s-1999")
		b.ReportMetric(extRes.Elapsed.Seconds(), "ext2fs-s-1999")
	}
}

// BenchmarkReadBandwidth regenerates the in-text cold-read measurement
// (the paper reports 1.7 MB/s for 4 KB blocks).
func BenchmarkReadBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunReadPoint(bench.ReadConfig{Servers: 2, Blocks: 1000, Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ColdMBps, "cold-MB/s-1999")
		b.ReportMetric(r.CachedMBps, "cached-MB/s")
	}
}

// BenchmarkAblationParity measures the parity tax (DESIGN.md ablation).
func BenchmarkAblationParity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunParityAblation(500, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].UsefulMBps, "parity-MB/s")
		b.ReportMetric(rows[1].UsefulMBps, "noparity-MB/s")
	}
}

// BenchmarkAblationPipeline measures the flow-control pipeline depth.
func BenchmarkAblationPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunPipelineAblation(500, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			_ = r
		}
		b.ReportMetric(rows[0].RawMBps, "depth1-MB/s")
		b.ReportMetric(rows[1].RawMBps, "depth2-MB/s")
	}
}

// BenchmarkAblationDegradedRead measures reconstruction cost.
func BenchmarkAblationDegradedRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunDegradedReadAblation(4000, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.HealthyLatency.Seconds()*1000, "healthy-ms")
		b.ReportMetric(r.DegradedLatency.Seconds()*1000, "degraded-ms")
	}
}

// ------------------------- component micro-benchmarks (native speed)

// BenchmarkParityXOR measures the raw XOR kernel of parity computation.
func BenchmarkParityXOR(b *testing.B) {
	dst := make([]byte, 1<<20)
	src := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.XORInto(dst, src)
	}
}

// BenchmarkWireStoreEncode measures request marshalling.
func BenchmarkWireStoreEncode(b *testing.B) {
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg := wire.StoreRequest{FID: wire.MakeFID(1, uint64(i)), Data: data}
		e := wire.NewEncoder(len(data) + 64)
		msg.Encode(e)
	}
}

// BenchmarkServerStore measures the fragment store's write path on a
// memory disk (slot allocation + data + metadata commit).
func BenchmarkServerStore(b *testing.B) {
	d := disk.NewMemDisk(1 << 30)
	st, err := server.Format(d, server.Config{FragmentSize: 64 << 10})
	if err != nil {
		b.Fatal(err)
	}
	frag := make([]byte, 64<<10)
	b.SetBytes(int64(len(frag)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fid := wire.MakeFID(1, uint64(i))
		if err := st.Store(fid, frag, false, nil); err != nil {
			b.Fatal(err)
		}
		if i%1000 == 999 {
			b.StopTimer()
			for j := i - 999; j <= i; j++ {
				if err := st.Delete(1, wire.MakeFID(1, uint64(j))); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
		}
	}
}

// BenchmarkLogAppend measures the unthrottled log append path end to end
// (entry packing, parity, async stores to in-process servers).
func BenchmarkLogAppend(b *testing.B) {
	var conns []transport.ServerConn
	for i := 0; i < 4; i++ {
		d := disk.NewMemDisk(1 << 30)
		st, err := server.Format(d, server.Config{FragmentSize: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		conns = append(conns, transport.NewLocal(wire.ServerID(i+1), st, 1))
	}
	l, _, err := core.Open(core.Config{Client: 1, Servers: conns})
	if err != nil {
		b.Fatal(err)
	}
	block := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.AppendBlock(7, block, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStingWrite measures Sting file writes (page cache + flush) at
// native speed.
func BenchmarkStingWrite(b *testing.B) {
	cl, err := NewLocalCluster(2, ServerOptions{DiskBytes: 1 << 30, FragmentSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	client, err := cl.Connect(1, ClientOptions{FragmentSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	fs, err := client.Mount(FSConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Unmount()
	buf := make([]byte, 16<<10)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := fs.Create(fmt.Sprintf("/f%d", i%64))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.WriteAt(buf, 0); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
	b.StopTimer()
	if err := fs.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStingRead measures cached Sting reads.
func BenchmarkStingRead(b *testing.B) {
	cl, err := NewLocalCluster(2, ServerOptions{DiskBytes: 256 << 20, FragmentSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	client, err := cl.Connect(1, ClientOptions{FragmentSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	fs, err := client.Mount(FSConfig{CacheBytes: 32 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Unmount()
	if err := WriteFile(fs, "/data", make([]byte, 1<<20)); err != nil {
		b.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		b.Fatal(err)
	}
	f, err := fs.Open("/data")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadAt(buf, int64(i%16)<<16); err != nil {
			b.Fatal(err)
		}
	}
}
