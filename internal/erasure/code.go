package erasure

import (
	"errors"
	"fmt"
)

// Errors.
var (
	// ErrInsufficient is returned when fewer than k shards survive.
	ErrInsufficient = errors.New("erasure: insufficient surviving shards")
	// ErrConfig is returned for invalid (kind, k, m) combinations.
	ErrConfig = errors.New("erasure: invalid configuration")
)

// Kind identifies a code on the wire (stored in fragment headers, so a
// reader decodes every stripe with the code that wrote it regardless of
// its own configuration). Values are part of the on-disk format.
type Kind uint8

const (
	// KindXOR is the paper's single rotating XOR parity: m must be 1,
	// tolerates exactly one lost member per stripe. Version-1 fragment
	// headers imply this code.
	KindXOR Kind = 1
	// KindRS is systematic GF(2^8) Reed–Solomon over a Cauchy matrix:
	// any k of the k+m members reconstruct the rest.
	KindRS Kind = 2
)

// String names the kind for logs and CLI output.
func (k Kind) String() string {
	switch k {
	case KindXOR:
		return "xor"
	case KindRS:
		return "rs"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind maps a CLI/config name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "xor":
		return KindXOR, nil
	case "rs", "reed-solomon":
		return KindRS, nil
	default:
		return 0, fmt.Errorf("%w: unknown codec %q (want xor or rs)", ErrConfig, s)
	}
}

// MaxShards bounds k+m (the Cauchy construction needs distinct field
// elements for every row and column index).
const MaxShards = 255

// Code computes and repairs a stripe's redundancy. Shards are ordered
// data first (ordinals 0..k-1) then parity (k..k+m-1); the caller owns
// the mapping from stripe member indices to ordinals. Shards may have
// different lengths — every shard is logically zero-padded to the
// stripe's payload size, which is exactly the short-fragment padding
// rule the XOR parity path has always used. Implementations are
// stateless and safe for concurrent use.
type Code interface {
	// Kind is the wire identifier for this code.
	Kind() Kind
	// DataShards returns k.
	DataShards() int
	// ParityShards returns m.
	ParityShards() int
	// AddData folds data shard di into the m parity accumulators, which
	// must be zeroed before the first shard and are valid parity once
	// every data shard has been added. Incremental accumulation is the
	// write path's shape: parity is computed as fragments seal (§2.1.2),
	// never from a re-read of the whole stripe.
	AddData(di int, data []byte, parity [][]byte)
	// Reconstruct fills every nil entry of shards (length k+m) with a
	// freshly allocated shard of size bytes, given at least k non-nil
	// survivors. Surviving shards may be shorter than size; the caller
	// trims reconstructed data shards to their true lengths.
	Reconstruct(shards [][]byte, size int) error
}

// New returns the code for (kind, k, m).
func New(kind Kind, k, m int) (Code, error) {
	if k < 1 || m < 1 || k+m > MaxShards {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrConfig, k, m)
	}
	switch kind {
	case KindXOR:
		if m != 1 {
			return nil, fmt.Errorf("%w: xor parity requires m=1, got %d", ErrConfig, m)
		}
		return xorCode{k: k}, nil
	case KindRS:
		return newRS(k, m), nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrConfig, uint8(kind))
	}
}

// ------------------------------------------------------------ XOR parity

// xorCode is the paper-faithful baseline: one parity shard holding the
// XOR of all data shards. Any single missing member is the XOR of the
// survivors.
type xorCode struct{ k int }

func (xorCode) Kind() Kind        { return KindXOR }
func (c xorCode) DataShards() int { return c.k }
func (xorCode) ParityShards() int { return 1 }

func (xorCode) AddData(_ int, data []byte, parity [][]byte) {
	xorSliceInto(parity[0], data)
}

func (c xorCode) Reconstruct(shards [][]byte, size int) error {
	if len(shards) != c.k+1 {
		return fmt.Errorf("%w: %d shards for k=%d m=1", ErrConfig, len(shards), c.k)
	}
	missing := -1
	for i, s := range shards {
		if s != nil {
			continue
		}
		if missing >= 0 {
			return fmt.Errorf("%w: xor parity cannot repair 2+ losses", ErrInsufficient)
		}
		missing = i
	}
	if missing < 0 {
		return nil
	}
	out := make([]byte, size)
	for i, s := range shards {
		if i != missing {
			xorSliceInto(out, s)
		}
	}
	shards[missing] = out
	return nil
}

// ----------------------------------------------------------- Reed–Solomon

// rs is a systematic Reed–Solomon code: the encode matrix is [I; C] with
// C the m×k Cauchy parity block, so data shards are stored verbatim and
// any k rows of the matrix are invertible (any k survivors suffice).
type rs struct {
	k, m int
	par  matrix // m×k Cauchy parity coefficients
}

func newRS(k, m int) *rs {
	return &rs{k: k, m: m, par: cauchyParity(k, m)}
}

func (*rs) Kind() Kind          { return KindRS }
func (r *rs) DataShards() int   { return r.k }
func (r *rs) ParityShards() int { return r.m }

func (r *rs) AddData(di int, data []byte, parity [][]byte) {
	for j := 0; j < r.m; j++ {
		mulSliceXor(r.par[j][di], parity[j], data)
	}
}

// encodeRow returns row i of the full (k+m)×k encode matrix.
func (r *rs) encodeRow(i int) []byte {
	if i < r.k {
		return identityRow(r.k, i)
	}
	return r.par[i-r.k]
}

func (r *rs) Reconstruct(shards [][]byte, size int) error {
	n := r.k + r.m
	if len(shards) != n {
		return fmt.Errorf("%w: %d shards for k=%d m=%d", ErrConfig, len(shards), r.k, r.m)
	}
	present := make([]int, 0, n)
	dataMissing := false
	for i, s := range shards {
		if s != nil {
			present = append(present, i)
		} else if i < r.k {
			dataMissing = true
		}
	}
	if len(present) == n {
		return nil
	}
	if len(present) < r.k {
		return fmt.Errorf("%w: %d of %d shards present, need %d", ErrInsufficient, len(present), n, r.k)
	}

	if dataMissing {
		// Decode-matrix selection: take k surviving rows of the encode
		// matrix, data rows first — identity rows keep the inversion
		// sparse and make the decode multiply skip them entirely (their
		// coefficients for other survivors are mostly 0/1).
		chosen := make([]int, 0, r.k)
		for _, i := range present {
			if i < r.k {
				chosen = append(chosen, i)
			}
		}
		for _, i := range present {
			if i >= r.k && len(chosen) < r.k {
				chosen = append(chosen, i)
			}
		}
		chosen = chosen[:r.k]
		sub := newMatrix(r.k, r.k)
		for ri, i := range chosen {
			copy(sub[ri], r.encodeRow(i))
		}
		dec, err := sub.invert()
		if err != nil {
			return err
		}
		for d := 0; d < r.k; d++ {
			if shards[d] != nil {
				continue
			}
			out := make([]byte, size)
			for j, src := range chosen {
				mulSliceXor(dec[d][j], out, shards[src])
			}
			shards[d] = out
		}
	}
	// With every data shard in hand, missing parity is a re-encode.
	for j := 0; j < r.m; j++ {
		if shards[r.k+j] != nil {
			continue
		}
		out := make([]byte, size)
		for i := 0; i < r.k; i++ {
			mulSliceXor(r.par[j][i], out, shards[i])
		}
		shards[r.k+j] = out
	}
	return nil
}
