package model

import (
	"sync"
	"testing"
	"time"
)

func TestFakeClockAdvanceWakesSleepers(t *testing.T) {
	c := NewFakeClock(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		c.Sleep(100 * time.Millisecond)
		close(done)
	}()
	for c.NumWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("sleeper woke before clock advanced")
	case <-time.After(10 * time.Millisecond):
	}
	c.Advance(99 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("sleeper woke before deadline")
	case <-time.After(10 * time.Millisecond):
	}
	c.Advance(time.Millisecond)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sleeper never woke")
	}
}

func TestFakeClockNow(t *testing.T) {
	start := time.Unix(100, 0)
	c := NewFakeClock(start)
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
	c.Advance(5 * time.Second)
	if got := c.Now(); !got.Equal(start.Add(5 * time.Second)) {
		t.Fatalf("Now() after advance = %v", got)
	}
}

func TestFakeClockZeroSleepReturnsImmediately(t *testing.T) {
	c := NewFakeClock(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		c.Sleep(0)
		c.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("zero sleep blocked")
	}
}

func TestThrottleNilIsUnlimited(t *testing.T) {
	var th *Throttle
	start := time.Now()
	th.Acquire(1 << 30)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("nil throttle delayed caller")
	}
	if th.Busy() != 0 {
		t.Fatal("nil throttle reported busy time")
	}
}

func TestThrottleEnforcesRate(t *testing.T) {
	// 10 MB/s, tiny burst: acquiring 1 MB should take ~100ms.
	th := NewThrottle(WallClock{}, 10*MB, 64<<10)
	start := time.Now()
	for i := 0; i < 16; i++ {
		th.Acquire(62500) // 1 MB total
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond || elapsed > 400*time.Millisecond {
		t.Fatalf("1MB at 10MB/s took %v, want ~100ms", elapsed)
	}
}

func TestThrottleBusyAccounting(t *testing.T) {
	th := NewThrottle(WallClock{}, 1*MB, 1*MB)
	th.Acquire(500_000)
	busy := th.Busy()
	want := 500 * time.Millisecond
	if busy < want-time.Millisecond || busy > want+time.Millisecond {
		t.Fatalf("Busy() = %v, want ~%v", busy, want)
	}
}

func TestThrottleBurstAbsorbsInitialSpike(t *testing.T) {
	th := NewThrottle(WallClock{}, 1, 1*MB) // 1 B/s but 1 MB burst
	start := time.Now()
	th.Acquire(999_999) // within the burst: free
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("burst did not absorb initial acquire")
	}
}

func TestThrottleReserveMatchesAcquire(t *testing.T) {
	th := NewThrottle(WallClock{}, 10*MB, 1000)
	if w := th.Reserve(1000); w != 0 {
		t.Fatalf("first reserve within burst waited %v", w)
	}
	w := th.Reserve(500_000)
	if w < 45*time.Millisecond || w > 55*time.Millisecond {
		t.Fatalf("reserve(500KB at 10MB/s) = %v, want ~50ms", w)
	}
	var nilTh *Throttle
	if nilTh.Reserve(1000) != 0 {
		t.Fatal("nil throttle reserved time")
	}
}

func TestThrottleConcurrentAcquireIsSafe(t *testing.T) {
	th := NewThrottle(WallClock{}, 100*MB, 1*MB)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				th.Acquire(1000)
			}
		}()
	}
	wg.Wait()
	if th.Busy() <= 0 {
		t.Fatal("no busy time recorded")
	}
}

func TestCPUComputeAndBusy(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	cpu := NewCPU(clock, 0)
	done := make(chan struct{})
	go func() {
		cpu.Compute(50 * time.Millisecond)
		close(done)
	}()
	for clock.NumWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	clock.Advance(50 * time.Millisecond)
	<-done
	if got := cpu.Busy(); got != 50*time.Millisecond {
		t.Fatalf("Busy() = %v, want 50ms", got)
	}
}

func TestCPUNilIsNoop(t *testing.T) {
	var cpu *CPU
	cpu.Process(1 << 30)
	cpu.Compute(time.Hour)
	if cpu.Busy() != 0 {
		t.Fatal("nil CPU reported busy time")
	}
}

func TestCPUUnlimitedProcessIsFast(t *testing.T) {
	cpu := NewCPU(WallClock{}, 0)
	start := time.Now()
	cpu.Process(1 << 30)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("unlimited CPU throttled")
	}
}

func TestPaper1999Params(t *testing.T) {
	p := Paper1999()
	if p.DiskRate != 10.3*MB {
		t.Errorf("DiskRate = %v", p.DiskRate)
	}
	if p.NetRate != 12.5*MB {
		t.Errorf("NetRate = %v, want 12.5 MB/s", p.NetRate)
	}
	if p.ClientCPU <= 6.4*MB || p.ClientCPU >= 7.7*MB {
		t.Errorf("ClientCPU = %v, want ~6.8 MB/s", p.ClientCPU)
	}
	if p.ServerCPU <= 7.7*MB || p.ServerCPU >= 9*MB {
		t.Errorf("ServerCPU = %v, want ~8.3 MB/s", p.ServerCPU)
	}
}

func TestScaledParams(t *testing.T) {
	p := Paper1999()
	q := p.Scaled(10)
	if q.DiskRate != p.DiskRate*10 {
		t.Errorf("scaled DiskRate = %v", q.DiskRate)
	}
	if q.NetLatency != p.NetLatency/10 {
		t.Errorf("scaled NetLatency = %v", q.NetLatency)
	}
	if got := p.Scaled(1); got != p {
		t.Error("Scaled(1) is not identity")
	}
	if got := p.Scaled(0); got != p {
		t.Error("Scaled(0) should be identity")
	}
}

func TestQueueSerializesService(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	q := NewQueue(clock, 1*MB) // 1 MB/s
	// First request: idle queue, waits its own service time.
	if w := q.Reserve(100_000); w != 100*time.Millisecond {
		t.Fatalf("first reserve = %v, want 100ms", w)
	}
	// Second request queues behind the first: 100ms queueing + 100ms
	// service.
	if w := q.Reserve(100_000); w != 200*time.Millisecond {
		t.Fatalf("second reserve = %v, want 200ms", w)
	}
	// After time passes, the queue drains and new requests start fresh.
	clock.Advance(500 * time.Millisecond)
	if w := q.Reserve(100_000); w != 100*time.Millisecond {
		t.Fatalf("post-drain reserve = %v, want 100ms", w)
	}
	if got := q.Busy(); got != 300*time.Millisecond {
		t.Fatalf("Busy = %v, want 300ms", got)
	}
	if q.Rate() != 1*MB {
		t.Fatalf("Rate = %v", q.Rate())
	}
}

func TestQueueNoIdleCredit(t *testing.T) {
	// Unlike a token bucket, idle time earns nothing: a request after a
	// long idle period still pays full service time.
	clock := NewFakeClock(time.Unix(0, 0))
	q := NewQueue(clock, 10*MB)
	clock.Advance(time.Hour)
	if w := q.Reserve(1_000_000); w != 100*time.Millisecond {
		t.Fatalf("reserve after idle = %v, want 100ms", w)
	}
}

func TestQueueNilAndZero(t *testing.T) {
	var q *Queue
	if q.Reserve(1000) != 0 || q.Busy() != 0 || q.Rate() != 0 {
		t.Fatal("nil queue misbehaved")
	}
	q.Acquire(1000) // must not panic
	q2 := NewQueue(NewFakeClock(time.Unix(0, 0)), 0)
	if q2.Reserve(1000) != 0 {
		t.Fatal("zero-rate queue delayed")
	}
	q3 := NewQueue(nil, 1*MB)
	if q3.Reserve(0) != 0 || q3.Reserve(-5) != 0 {
		t.Fatal("non-positive reserve delayed")
	}
}

func TestQueueReserveDur(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	q := NewQueue(clock, 0) // rate-less: only explicit durations
	if w := q.ReserveDur(50 * time.Millisecond); w != 50*time.Millisecond {
		t.Fatalf("first = %v", w)
	}
	if w := q.ReserveDur(50 * time.Millisecond); w != 100*time.Millisecond {
		t.Fatalf("second = %v", w)
	}
	if w := q.ReserveDur(0); w != 0 {
		t.Fatalf("zero duration = %v", w)
	}
}

func TestQueueAcquireSleeps(t *testing.T) {
	q := NewQueue(WallClock{}, 1*MB)
	start := time.Now()
	q.Acquire(50_000) // 50ms at 1MB/s
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("acquire returned after %v, want ~50ms", elapsed)
	}
}

func TestQueueConcurrentSafety(t *testing.T) {
	q := NewQueue(WallClock{}, 1000*MB)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				q.Reserve(1000)
			}
		}()
	}
	wg.Wait()
	want := time.Duration(8*200*1000) * time.Second / time.Duration(1000*MB)
	if got := q.Busy(); got < want-time.Millisecond || got > want+time.Millisecond {
		t.Fatalf("Busy = %v, want ~%v", got, want)
	}
}

func TestWallClockSleepPrecision(t *testing.T) {
	c := WallClock{}
	for _, d := range []time.Duration{50 * time.Microsecond, 500 * time.Microsecond, 5 * time.Millisecond} {
		start := time.Now()
		c.Sleep(d)
		elapsed := time.Since(start)
		if elapsed < d {
			t.Fatalf("Sleep(%v) returned after %v", d, elapsed)
		}
		if elapsed > d+2*time.Millisecond {
			t.Fatalf("Sleep(%v) overshot to %v", d, elapsed)
		}
	}
	c.Sleep(0)
	c.Sleep(-time.Second)
}
