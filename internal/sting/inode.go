package sting

import (
	"fmt"
	"sort"
	"time"

	"swarm/internal/core"
	"swarm/internal/vfs"
	"swarm/internal/wire"
)

// RootIno is the root directory's inode number.
const RootIno uint64 = 1

// blockPtr locates one file block in the log. A zero pointer is a hole.
type blockPtr struct {
	addr core.BlockAddr
	len  uint32
}

func (p blockPtr) isHole() bool { return p.addr.IsZero() && p.len == 0 }

// dirEnt is one directory entry. The child's mode is duplicated here so
// ReadDir doesn't have to load every child inode.
type dirEnt struct {
	ino  uint64
	mode vfs.FileMode
}

// inode is Sting's per-file metadata. Unlike Sprite LFS's fixed-size
// inodes with indirect blocks, a Sting inode is a single variable-size
// log block carrying the full block-pointer table (files) or the entry
// table (directories) — log blocks aren't fixed-size, so the indirection
// machinery of a disk file system buys nothing here. This is part of why
// "Sting is smaller and simpler than Sprite LFS" (§3.1).
type inode struct {
	ino   uint64
	mode  vfs.FileMode
	size  int64
	mtime time.Time
	nlink uint32

	blocks  []blockPtr        // files: index -> block
	entries map[string]dirEnt // directories: name -> entry
}

func newFileInode(ino uint64, now time.Time) *inode {
	return &inode{ino: ino, mode: vfs.ModeFile, mtime: now, nlink: 1}
}

func newDirInode(ino uint64, now time.Time) *inode {
	return &inode{ino: ino, mode: vfs.ModeDir, mtime: now, nlink: 2, entries: make(map[string]dirEnt)}
}

func (in *inode) isDir() bool { return in.mode == vfs.ModeDir }

// names returns the directory's entry names, sorted.
func (in *inode) names() []string {
	out := make([]string, 0, len(in.entries))
	for name := range in.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// encode serializes the inode for storage as a log block.
func (in *inode) encode() []byte {
	e := wire.NewEncoder(64 + len(in.blocks)*16 + len(in.entries)*24)
	e.U8(uint8(in.mode))
	e.U64(in.ino)
	e.U64(uint64(in.size))
	e.U64(uint64(in.mtime.UnixNano()))
	e.U32(in.nlink)
	if in.isDir() {
		e.U32(uint32(len(in.entries)))
		for _, name := range in.names() {
			ent := in.entries[name]
			e.String32(name)
			e.U64(ent.ino)
			e.U8(uint8(ent.mode))
		}
	} else {
		e.U32(uint32(len(in.blocks)))
		for _, b := range in.blocks {
			e.U64(uint64(b.addr.FID))
			e.U32(b.addr.Off)
			e.U32(b.len)
		}
	}
	return e.Bytes()
}

// decodeInode parses a serialized inode.
func decodeInode(p []byte) (*inode, error) {
	d := wire.NewDecoder(p)
	in := &inode{
		mode:  vfs.FileMode(d.U8()),
		ino:   d.U64(),
		size:  int64(d.U64()),
		mtime: time.Unix(0, int64(d.U64())),
		nlink: d.U32(),
	}
	n := d.U32()
	if d.Err() == nil && n > 1<<24 {
		return nil, fmt.Errorf("sting: inode with %d items", n)
	}
	if in.mode == vfs.ModeDir {
		in.entries = make(map[string]dirEnt, n)
		for i := uint32(0); i < n && d.Err() == nil; i++ {
			name := d.String32()
			in.entries[name] = dirEnt{ino: d.U64(), mode: vfs.FileMode(d.U8())}
		}
	} else {
		in.blocks = make([]blockPtr, 0, n)
		for i := uint32(0); i < n && d.Err() == nil; i++ {
			in.blocks = append(in.blocks, blockPtr{
				addr: core.BlockAddr{FID: wire.FID(d.U64()), Off: d.U32()},
				len:  d.U32(),
			})
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("sting: bad inode: %w", err)
	}
	return in, nil
}

// ----------------------------------------------------------------- hints
//
// Every block Sting appends carries a hint so the cleaner (and crash
// replay) can find the owning metadata: "the creation record for a file
// block might contain the inode number of the block's file, and its
// position within the file" (§2.1.4) — which is exactly what kindData
// hints hold.

const (
	hintInode = 1
	hintData  = 2
)

func encodeInodeHint(ino uint64) []byte {
	e := wire.NewEncoder(9)
	e.U8(hintInode)
	e.U64(ino)
	return e.Bytes()
}

func encodeDataHint(ino uint64, idx uint32, size int64) []byte {
	e := wire.NewEncoder(21)
	e.U8(hintData)
	e.U64(ino)
	e.U32(idx)
	e.U64(uint64(size))
	return e.Bytes()
}

type hint struct {
	kind uint8
	ino  uint64
	idx  uint32
	size int64
}

func decodeHint(p []byte) (hint, error) {
	d := wire.NewDecoder(p)
	h := hint{kind: d.U8(), ino: d.U64()}
	if h.kind == hintData {
		h.idx = d.U32()
		h.size = int64(d.U64())
	}
	if err := d.Err(); err != nil {
		return hint{}, fmt.Errorf("sting: bad hint: %w", err)
	}
	if h.kind != hintInode && h.kind != hintData {
		return hint{}, fmt.Errorf("sting: unknown hint kind %d", h.kind)
	}
	return h, nil
}

// ----------------------------------------------------- service records

// Sting's only explicit service record: inode removal. Everything else a
// crash must replay is carried by the log layer's automatic creation
// records (new inode versions, new data blocks).
const recUnlinkInode = 1

func encodeUnlinkRecord(ino uint64) []byte {
	e := wire.NewEncoder(9)
	e.U8(recUnlinkInode)
	e.U64(ino)
	return e.Bytes()
}

func decodeUnlinkRecord(p []byte) (uint64, error) {
	d := wire.NewDecoder(p)
	kind := d.U8()
	ino := d.U64()
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("sting: bad record: %w", err)
	}
	if kind != recUnlinkInode {
		return 0, fmt.Errorf("sting: unknown record kind %d", kind)
	}
	return ino, nil
}
