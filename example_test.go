package swarm_test

import (
	"fmt"
	"log"

	"swarm"
)

// ExampleCluster shows the minimal embedded flow: an in-process cluster,
// one client, raw log access.
func ExampleCluster() {
	cluster, err := swarm.NewLocalCluster(3, swarm.ServerOptions{
		DiskBytes:    32 << 20,
		FragmentSize: 64 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.Connect(1, swarm.ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	addr, err := client.Log().AppendBlock(7, []byte("hello swarm"), nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Sync(); err != nil {
		log.Fatal(err)
	}
	data, err := client.Log().Read(addr, 0, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (width %d, parity %v)\n", data, client.Log().Width(), client.Log().ParityEnabled())
	// Output: hello swarm (width 3, parity true)
}

// ExampleClient_Mount shows the Sting file system on a Swarm cluster.
func ExampleClient_Mount() {
	cluster, err := swarm.NewLocalCluster(2, swarm.ServerOptions{
		DiskBytes:    32 << 20,
		FragmentSize: 64 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client, err := cluster.Connect(1, swarm.ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	fs, err := client.Mount(swarm.FSConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := swarm.MkdirAll(fs, "/projects/swarm"); err != nil {
		log.Fatal(err)
	}
	if err := swarm.WriteFile(fs, "/projects/swarm/README", []byte("stored in a striped log")); err != nil {
		log.Fatal(err)
	}
	data, err := swarm.ReadFile(fs, "/projects/swarm/README")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
	if err := fs.Unmount(); err != nil {
		log.Fatal(err)
	}
	// Output: stored in a striped log
}

// ExampleClient_NewARUManager shows failure atomicity across records.
func ExampleClient_NewARUManager() {
	cluster, err := swarm.NewLocalCluster(2, swarm.ServerOptions{
		DiskBytes:    32 << 20,
		FragmentSize: 64 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client, err := cluster.Connect(1, swarm.ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := client.NewARUManager(nil)
	if err != nil {
		log.Fatal(err)
	}

	committed := mgr.Begin()
	committed.Write([]byte("debit A"))
	committed.Write([]byte("credit B"))
	committed.Commit()

	abandoned := mgr.Begin()
	abandoned.Write([]byte("never happened"))
	// …client crashes before Commit.
	client.Sync()
	client.Close()

	// On recovery, only the committed unit's records replay.
	client2, err := cluster.Connect(1, swarm.ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer client2.Close()
	if _, err := client2.NewARUManager(func(p []byte) error {
		fmt.Println(string(p))
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	// Output:
	// debit A
	// credit B
}
