package server

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swarm/internal/disk"
	"swarm/internal/wire"
)

// hookDisk wraps a Disk with settable interception points; tests use it
// to provoke specific interleavings deterministically.
type hookDisk struct {
	disk.Disk
	onRead  atomic.Pointer[func(p []byte, off int64)] // before the read
	onSync  atomic.Pointer[func() error]              // instead-of check before the sync
	onWrite atomic.Pointer[func(p []byte, off int64)] // before the write
}

func (h *hookDisk) ReadAt(p []byte, off int64) error {
	if f := h.onRead.Load(); f != nil {
		(*f)(p, off)
	}
	return h.Disk.ReadAt(p, off)
}

func (h *hookDisk) WriteAt(p []byte, off int64) error {
	if f := h.onWrite.Load(); f != nil {
		(*f)(p, off)
	}
	return h.Disk.WriteAt(p, off)
}

func (h *hookDisk) Sync() error {
	if f := h.onSync.Load(); f != nil {
		if err := (*f)(); err != nil {
			return err
		}
	}
	return h.Disk.Sync()
}

// countingDisk counts physical syncs and can slow them down, widening
// the natural coalescing window deterministically.
type countingDisk struct {
	disk.Disk
	syncDelay time.Duration
	syncs     atomic.Int64
}

func (d *countingDisk) Sync() error {
	d.syncs.Add(1)
	if d.syncDelay > 0 {
		time.Sleep(d.syncDelay)
	}
	return d.Disk.Sync()
}

// --- sync coalescer unit tests ---

// Concurrent barriers must share fsyncs: with the physical sync slowed
// down, N waiters pile up behind the in-flight one and are satisfied by
// a single follow-up sync.
func TestSyncCoalescerSharesFsyncs(t *testing.T) {
	d := &countingDisk{Disk: disk.NewMemDisk(1 << 16), syncDelay: 2 * time.Millisecond}
	c := newSyncCoalescer(d)
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Sync(); err != nil {
				t.Errorf("coalesced sync: %v", err)
			}
		}()
	}
	wg.Wait()
	req, syncs := c.counters()
	if req != callers {
		t.Fatalf("requests = %d, want %d", req, callers)
	}
	if phys := d.syncs.Load(); phys != syncs {
		t.Fatalf("counter mismatch: coalescer says %d syncs, disk saw %d", syncs, phys)
	}
	if syncs >= callers {
		t.Fatalf("no coalescing: %d physical syncs for %d barriers", syncs, req)
	}
}

// A barrier registered while a sync is in flight must NOT be satisfied
// by that sync — its writes may postdate the sync's start. The coalescer
// must issue (or join) a later one.
func TestSyncCoalescerBarrierOrdering(t *testing.T) {
	mem := disk.NewMemDisk(1 << 16)
	cd := disk.NewCrashDisk(mem)
	hd := &hookDisk{Disk: cd}
	c := newSyncCoalescer(hd)

	// First barrier's sync blocks until the late writer has registered.
	registered := make(chan struct{})
	proceed := make(chan struct{})
	var once sync.Once
	hook := func() error {
		once.Do(func() { close(registered); <-proceed })
		return nil
	}
	hd.onSync.Store(&hook)

	first := make(chan error)
	go func() { first <- c.Sync() }()
	<-registered

	// Late writer: write, then request a barrier while sync #1 runs.
	if err := cd.WriteAt([]byte("late"), 0); err != nil {
		t.Fatal(err)
	}
	second := make(chan error)
	go func() { second <- c.Sync() }()
	time.Sleep(time.Millisecond) // let the second barrier register
	close(proceed)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := <-second; err != nil {
		t.Fatal(err)
	}
	// If the late barrier were satisfied by sync #1 (which flushed the
	// CrashDisk before "late" was written), the write would still be
	// volatile and a crash would lose it.
	cd.Crash()
	got := make([]byte, 4)
	if err := mem.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "late" {
		t.Fatalf("late write lost: barrier returned before a covering sync (got %q)", got)
	}
}

func TestSyncCoalescerPropagatesErrors(t *testing.T) {
	mem := disk.NewMemDisk(1 << 16)
	hd := &hookDisk{Disk: mem}
	boom := errors.New("boom")
	hook := func() error { return boom }
	hd.onSync.Store(&hook)
	c := newSyncCoalescer(hd)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Sync(); !errors.Is(err, boom) {
				t.Errorf("Sync = %v, want boom", err)
			}
		}()
	}
	wg.Wait()
}

// The coalescing window delays the leader so followers arriving within
// it share the fsync even when the disk is idle.
func TestSyncCoalescerWindow(t *testing.T) {
	d := &countingDisk{Disk: disk.NewMemDisk(1 << 16)}
	c := newSyncCoalescer(d)
	c.setWindow(5 * time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Sync(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if phys := d.syncs.Load(); phys >= 8 {
		t.Fatalf("window did not coalesce: %d physical syncs for 8 barriers", phys)
	}
}

// --- group-commit store path ---

func fragPattern(fid wire.FID, n int) []byte {
	data := make([]byte, n)
	seed := byte(fid.Seq()*131 + 7)
	for i := range data {
		data[i] = seed + byte(i)
	}
	return data
}

// Concurrent stores through the group-committed path must all land,
// share fsyncs, and read back intact.
func TestGroupCommitConcurrentStores(t *testing.T) {
	fragSize := 4096
	slots := 64
	base := &countingDisk{Disk: disk.NewMemDisk(int64(superblockSize + aclRegionSize + slots*(fragSize+entrySize) + fragSize)), syncDelay: 200 * time.Microsecond}
	s, err := Format(base, Config{FragmentSize: fragSize})
	if err != nil {
		t.Fatal(err)
	}
	const stores = 48
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= stores {
					return
				}
				fid := wire.MakeFID(1, uint64(i))
				if err := s.Store(fid, fragPattern(fid, fragSize), false, nil); err != nil {
					t.Errorf("store %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	for i := 0; i < stores; i++ {
		fid := wire.MakeFID(1, uint64(i))
		got, err := s.Read(1, fid, 0, uint32(fragSize))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, fragPattern(fid, fragSize)) {
			t.Fatalf("fragment %d corrupted by concurrent commit", i)
		}
	}
	st := s.Stats()
	if st.Stores != stores {
		t.Fatalf("Stores = %d, want %d", st.Stores, stores)
	}
	if st.CoalescedSyncs() <= 0 {
		t.Fatalf("no coalescing under 8-way concurrency: %+v", st)
	}
	if st.SyncsPerStore() >= 2 {
		t.Fatalf("syncs/store = %.2f, want < 2 (serial pays exactly 2)", st.SyncsPerStore())
	}
	if st.MeanEntryBatch() < 1 {
		t.Fatalf("mean entry batch = %.2f", st.MeanEntryBatch())
	}
	if st.AvgStoreLatency() <= 0 {
		t.Fatalf("no store latency recorded: %+v", st)
	}
}

// Exactly one of N racing stores of the same FID must win; the rest get
// ErrExists, and the surviving bytes are the winner's.
func TestConcurrentStoresSameFID(t *testing.T) {
	s, _ := newTestStore(t, 8)
	fid := wire.MakeFID(1, 42)
	const racers = 8
	var wg sync.WaitGroup
	var winners atomic.Int64
	var winnerData atomic.Pointer[[]byte]
	for i := 0; i < racers; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, 512)
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch err := s.Store(fid, data, false, nil); {
			case err == nil:
				winners.Add(1)
				winnerData.Store(&data)
			case errors.Is(err, ErrExists):
			default:
				t.Errorf("unexpected store error: %v", err)
			}
		}()
	}
	wg.Wait()
	if winners.Load() != 1 {
		t.Fatalf("%d winners for one FID", winners.Load())
	}
	got, err := s.Read(1, fid, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if want := *winnerData.Load(); !bytes.Equal(got, want) {
		t.Fatalf("stored bytes are not the winner's: got %x.., want %x..", got[0], want[0])
	}
}

// The serial-commit ablation path must still work and pay its two
// private fsyncs per store.
func TestSerialCommitMode(t *testing.T) {
	s, _ := newTestStore(t, 8)
	s.SetSerialCommit(true)
	fid := wire.MakeFID(1, 0)
	if err := s.Store(fid, []byte("serial"), false, nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(1, fid, 0, 6)
	if err != nil || string(got) != "serial" {
		t.Fatalf("read = %q, %v", got, err)
	}
	st := s.Stats()
	if st.Stores != 1 || st.Syncs != 2 || st.SyncRequests != 2 {
		t.Fatalf("serial stats = %+v, want 1 store / 2 syncs", st)
	}
	if st.CoalescedSyncs() != 0 {
		t.Fatalf("serial path coalesced: %+v", st)
	}
}

// --- crash atomicity ---

// A crash after the data barrier but before the entry commit must leave
// nothing: the fragment is unreachable and its slot free after recovery.
func TestCrashBetweenDataSyncAndEntryCommit(t *testing.T) {
	fragSize := 4096
	slots := 8
	mem := disk.NewMemDisk(int64(superblockSize + aclRegionSize + slots*(fragSize+entrySize) + fragSize))
	cd := disk.NewCrashDisk(mem)
	hd := &hookDisk{Disk: cd}
	s, err := Format(hd, Config{FragmentSize: fragSize})
	if err != nil {
		t.Fatal(err)
	}
	// The store path issues two barriers: the data sync, then the entry
	// commit sync. Let the first through; power-cut at the second.
	var syncs atomic.Int64
	hook := func() error {
		if syncs.Add(1) == 2 {
			cd.Crash()
		}
		return nil
	}
	hd.onSync.Store(&hook)

	fid := wire.MakeFID(1, 0)
	if err := s.Store(fid, fragPattern(fid, fragSize), false, nil); !errors.Is(err, disk.ErrCrashed) {
		t.Fatalf("store across power cut = %v, want ErrCrashed", err)
	}

	s2, err := Open(mem)
	if err != nil {
		t.Fatal(err)
	}
	if _, found := s2.Has(fid); found {
		t.Fatal("fragment visible after crash before entry commit")
	}
	if st := s2.Stats(); st.FreeSlots != st.TotalSlots {
		t.Fatalf("slot leaked across crash: %+v", st)
	}
}

// The core group-commit crash proof: many concurrent stores, a power cut
// at an arbitrary moment, then recovery. Every acknowledged store must
// survive whole; everything recovered must be byte-exact; the slot
// accounting must balance. This is the §2.3.1 atomicity contract under
// the new concurrent commit path.
func TestCrashAtomicityConcurrentGroupCommit(t *testing.T) {
	fragSize := 2048
	slots := 256
	mem := disk.NewMemDisk(int64(superblockSize + aclRegionSize + slots*(fragSize+entrySize) + fragSize))
	cd := disk.NewCrashDisk(mem)
	s, err := Format(cd, Config{FragmentSize: fragSize})
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	var acked sync.Map // fid → true, recorded only after Store returned nil
	var seq atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				fid := wire.MakeFID(1, seq.Add(1))
				if err := s.Store(fid, fragPattern(fid, fragSize), false, nil); err != nil {
					return // crashed (or out of space): stop writing
				}
				acked.Store(fid, true)
			}
		}()
	}
	// Let a healthy number of stores commit, then cut the power while
	// others are mid-flight.
	for s.Stats().Stores < 32 {
		time.Sleep(100 * time.Microsecond)
	}
	cd.Crash()
	wg.Wait()

	s2, err := Open(mem)
	if err != nil {
		t.Fatalf("recovery after crash: %v", err)
	}
	// (a) acknowledged ⇒ recovered, byte-exact.
	nAcked := 0
	acked.Range(func(k, _ any) bool {
		fid := k.(wire.FID)
		nAcked++
		got, err := s2.Read(1, fid, 0, uint32(fragSize))
		if err != nil {
			t.Fatalf("acked fragment %v lost in crash: %v", fid, err)
		}
		if !bytes.Equal(got, fragPattern(fid, fragSize)) {
			t.Fatalf("acked fragment %v corrupted", fid)
		}
		return true
	})
	if nAcked < 32 {
		t.Fatalf("only %d acked stores, want >= 32", nAcked)
	}
	// (b) recovered ⇒ whole and correct (never a torn fragment), and
	// only FIDs that were actually attempted.
	maxSeq := seq.Load()
	recovered := s2.List(0)
	for _, fid := range recovered {
		if fid.Client() != 1 || fid.Seq() > maxSeq {
			t.Fatalf("recovered unknown fragment %v", fid)
		}
		size, _ := s2.Has(fid)
		if int(size) != fragSize {
			t.Fatalf("recovered fragment %v truncated: %d bytes", fid, size)
		}
		got, err := s2.Read(1, fid, 0, uint32(fragSize))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fragPattern(fid, fragSize)) {
			t.Fatalf("recovered fragment %v torn", fid)
		}
	}
	if len(recovered) < nAcked {
		t.Fatalf("recovered %d < acked %d", len(recovered), nAcked)
	}
	// (c) slot accounting balances exactly.
	if st := s2.Stats(); st.FreeSlots+st.Fragments != st.TotalSlots {
		t.Fatalf("slot accounting off after recovery: %+v", st)
	}
}

// Crashing with no stores in flight must be a no-op for recovery.
func TestCrashRecoverIdempotent(t *testing.T) {
	fragSize := 1024
	slots := 8
	mem := disk.NewMemDisk(int64(superblockSize + aclRegionSize + slots*(fragSize+entrySize) + fragSize))
	cd := disk.NewCrashDisk(mem)
	s, err := Format(cd, Config{FragmentSize: fragSize})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		fid := wire.MakeFID(1, uint64(i))
		if err := s.Store(fid, fragPattern(fid, fragSize), i == 2, nil); err != nil {
			t.Fatal(err)
		}
	}
	cd.Crash()
	s2, err := Open(mem)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s2.List(0)); got != 3 {
		t.Fatalf("recovered %d fragments, want 3", got)
	}
	if fid, found := s2.LastMarked(1); !found || fid != wire.MakeFID(1, 2) {
		t.Fatalf("LastMarked after recovery = (%v, %v)", fid, found)
	}
}

// Delete must serialize against an in-flight store of the same FID
// rather than freeing the slot out from under it.
func TestDeleteWaitsForInflightStore(t *testing.T) {
	fragSize := 1024
	slots := 4
	mem := disk.NewMemDisk(int64(superblockSize + aclRegionSize + slots*(fragSize+entrySize) + fragSize))
	hd := &hookDisk{Disk: mem}
	s, err := Format(hd, Config{FragmentSize: fragSize})
	if err != nil {
		t.Fatal(err)
	}
	fid := wire.MakeFID(1, 7)
	if err := s.Prealloc(fid); err != nil {
		t.Fatal(err)
	}

	// Stall the store's fragment-data write so a Delete can race it.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hook := func(p []byte, off int64) {
		if off >= s.slotsOff {
			once.Do(func() { close(entered); <-release })
		}
	}
	hd.onWrite.Store(&hook)

	storeDone := make(chan error)
	go func() { storeDone <- s.Store(fid, fragPattern(fid, fragSize), false, nil) }()
	<-entered

	delDone := make(chan error)
	go func() { delDone <- s.Delete(1, fid) }()
	// The delete must block until the store commits.
	select {
	case err := <-delDone:
		t.Fatalf("delete did not wait for in-flight store (err=%v)", err)
	case <-time.After(5 * time.Millisecond):
	}
	close(release)
	if err := <-storeDone; err != nil {
		t.Fatalf("store: %v", err)
	}
	if err := <-delDone; err != nil {
		t.Fatalf("delete after store: %v", err)
	}
	if _, found := s.Has(fid); found {
		t.Fatal("fragment still present after delete")
	}
	if st := s.Stats(); st.FreeSlots != st.TotalSlots {
		t.Fatalf("slot accounting off: %+v", st)
	}
}
