package model

import "time"

// Hardware constants of the paper's testbed (§3.3 "Experimental setup").
// All rates are bytes per second.
const (
	// MB is the decimal megabyte the paper's MB/s figures use.
	MB = 1e6

	// DiskSeqRate is the sequential fragment-write rate of the storage
	// server's Quantum Viking II disk: "The storage server can write
	// fragment-sized blocks to the disk at 10.3 MB/s."
	DiskSeqRate = 10.3 * MB

	// DiskSeekTime approximates an average seek of the Viking II.
	DiskSeekTime = 8 * time.Millisecond

	// DiskRotLatency is half a revolution at 7200 RPM.
	DiskRotLatency = 4170 * time.Microsecond

	// NetLinkRate is one host's 100 Mb/s switched Ethernet link. The
	// switch is non-blocking, so contention is per host NIC.
	NetLinkRate = 100e6 / 8

	// NetMsgLatency is the per-message switch+stack latency.
	NetMsgLatency = 200 * time.Microsecond

	// ClientCPURate calibrates the 200 MHz Pentium Pro client's log
	// processing rate (copy + checksum + parity XOR per log byte moved).
	// The paper measures a single client saturating at 6.1 MB/s raw with
	// small additional gains to 6.4 MB/s at eight servers. The constant
	// is set so the END-TO-END measured plateau lands there; the ~8%
	// headroom over 6.4 absorbs the model's fixed per-fragment costs.
	ClientCPURate = 6.8 * MB

	// ClientPerFragmentOverhead is fixed client work per fragment
	// (RPC marshalling, map updates).
	ClientPerFragmentOverhead = 4 * time.Millisecond

	// ServerCPURate caps a storage server's effective ingest: "A single
	// server is capable of sustaining 7.7 MB/s" even though its disk
	// writes at 10.3 MB/s — the gap is request processing overhead. Like
	// ClientCPURate, the constant is calibrated so the measured
	// multi-client per-server ceiling lands at the paper's 7.7.
	ServerCPURate = 8.3 * MB

	// ServerPerRequestOverhead is fixed server work per request, the
	// dominant cost of the paper's cold 4 KB reads (≈1.7 MB/s means
	// ≈2.3 ms per 4 KB round trip; the disk and wire stages supply the
	// rest of that round trip, so the fixed part is smaller).
	ServerPerRequestOverhead = 1500 * time.Microsecond
)

// HardwareParams bundles the throttling configuration of one emulated 1999
// host pair. Zero rates mean "unlimited".
type HardwareParams struct {
	// DiskRate is the server disk's sequential transfer rate (B/s).
	DiskRate float64
	// DiskSeek is charged for each non-sequential disk access.
	DiskSeek time.Duration
	// DiskRotation is charged for each disk access.
	DiskRotation time.Duration
	// NetRate is a host network link's rate (B/s).
	NetRate float64
	// NetLatency is charged per message.
	NetLatency time.Duration
	// ClientCPU is the client's log-processing rate (B/s).
	ClientCPU float64
	// ClientFragOverhead is fixed client time per fragment.
	ClientFragOverhead time.Duration
	// ServerCPU is the server's request-processing rate (B/s).
	ServerCPU float64
	// ServerReqOverhead is fixed server time per request.
	ServerReqOverhead time.Duration
}

// Paper1999 returns the testbed parameters from the paper.
func Paper1999() HardwareParams {
	return HardwareParams{
		DiskRate:           DiskSeqRate,
		DiskSeek:           DiskSeekTime,
		DiskRotation:       DiskRotLatency,
		NetRate:            NetLinkRate,
		NetLatency:         NetMsgLatency,
		ClientCPU:          ClientCPURate,
		ClientFragOverhead: ClientPerFragmentOverhead,
		ServerCPU:          ServerCPURate,
		ServerReqOverhead:  ServerPerRequestOverhead,
	}
}

// Scaled returns a copy of p with every rate multiplied and every latency
// divided by factor, letting benchmarks run the same contention structure
// proportionally faster. Scaled(1) is the identity.
func (p HardwareParams) Scaled(factor float64) HardwareParams {
	if factor <= 0 || factor == 1 {
		return p
	}
	q := p
	q.DiskRate *= factor
	q.NetRate *= factor
	q.ClientCPU *= factor
	q.ServerCPU *= factor
	q.DiskSeek = time.Duration(float64(p.DiskSeek) / factor)
	q.DiskRotation = time.Duration(float64(p.DiskRotation) / factor)
	q.NetLatency = time.Duration(float64(p.NetLatency) / factor)
	q.ClientFragOverhead = time.Duration(float64(p.ClientFragOverhead) / factor)
	q.ServerReqOverhead = time.Duration(float64(p.ServerReqOverhead) / factor)
	return q
}
