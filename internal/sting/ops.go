package sting

import (
	"fmt"

	"swarm/internal/vfs"
)

// Create implements vfs.FileSystem.
func (fs *FS) Create(path string) (vfs.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, vfs.ErrClosed
	}
	dir, name, err := fs.resolveParent(path)
	if err != nil {
		return nil, err
	}
	if ent, ok := dir.entries[name]; ok {
		in, err := fs.loadInode(ent.ino)
		if err != nil {
			return nil, err
		}
		if in.isDir() {
			return nil, fmt.Errorf("%w: %s", vfs.ErrIsDir, path)
		}
		if err := fs.truncateLocked(in, 0); err != nil {
			return nil, err
		}
		return &File{fs: fs, ino: in.ino}, nil
	}
	ino := fs.allocIno()
	in := newFileInode(ino, fs.now())
	fs.inodes[ino] = in
	fs.markDirty(in)
	dir.entries[name] = dirEnt{ino: ino, mode: vfs.ModeFile}
	fs.markDirty(dir)
	return &File{fs: fs, ino: ino}, nil
}

// Open implements vfs.FileSystem.
func (fs *FS) Open(path string) (vfs.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, vfs.ErrClosed
	}
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return nil, err
	}
	in, err := fs.resolve(parts)
	if err != nil {
		return nil, err
	}
	if in.isDir() {
		return nil, fmt.Errorf("%w: %s", vfs.ErrIsDir, path)
	}
	return &File{fs: fs, ino: in.ino}, nil
}

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return vfs.ErrClosed
	}
	dir, name, err := fs.resolveParent(path)
	if err != nil {
		return err
	}
	if _, ok := dir.entries[name]; ok {
		return fmt.Errorf("%w: %s", vfs.ErrExist, path)
	}
	ino := fs.allocIno()
	in := newDirInode(ino, fs.now())
	fs.inodes[ino] = in
	fs.markDirty(in)
	dir.entries[name] = dirEnt{ino: ino, mode: vfs.ModeDir}
	dir.nlink++
	fs.markDirty(dir)
	return nil
}

// Rmdir implements vfs.FileSystem.
func (fs *FS) Rmdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return vfs.ErrClosed
	}
	dir, name, err := fs.resolveParent(path)
	if err != nil {
		return err
	}
	ent, ok := dir.entries[name]
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, path)
	}
	child, err := fs.loadInode(ent.ino)
	if err != nil {
		return err
	}
	if !child.isDir() {
		return fmt.Errorf("%w: %s", vfs.ErrNotDir, path)
	}
	if len(child.entries) != 0 {
		return fmt.Errorf("%w: %s", vfs.ErrNotEmpty, path)
	}
	delete(dir.entries, name)
	dir.nlink--
	fs.markDirty(dir)
	return fs.removeInodeLocked(child)
}

// Unlink implements vfs.FileSystem.
func (fs *FS) Unlink(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return vfs.ErrClosed
	}
	dir, name, err := fs.resolveParent(path)
	if err != nil {
		return err
	}
	ent, ok := dir.entries[name]
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, path)
	}
	child, err := fs.loadInode(ent.ino)
	if err != nil {
		return err
	}
	if child.isDir() {
		return fmt.Errorf("%w: %s", vfs.ErrIsDir, path)
	}
	delete(dir.entries, name)
	fs.markDirty(dir)
	return fs.removeInodeLocked(child)
}

// removeInodeLocked frees an inode: its data blocks, its inode block, its
// map entry, and an unlink record so replay removes it too.
func (fs *FS) removeInodeLocked(in *inode) error {
	// Drop dirty pages and delete stored blocks.
	for idx := range in.blocks {
		k := pageKey{ino: in.ino, idx: uint32(idx)}
		if p, ok := fs.pages[k]; ok {
			fs.dirtyBytes -= int64(len(p))
			delete(fs.pages, k)
		}
		b := in.blocks[idx]
		if !b.isHole() {
			if err := fs.log.DeleteBlock(b.addr, b.len, fs.svcID); err != nil {
				return err
			}
			if fs.cache != nil {
				fs.cache.Invalidate(b.addr)
			}
		}
	}
	if ent, ok := fs.imap[in.ino]; ok {
		if err := fs.log.DeleteBlock(ent.addr, ent.size, fs.svcID); err != nil {
			return err
		}
		delete(fs.imap, in.ino)
	}
	delete(fs.inodes, in.ino)
	delete(fs.dirtyIno, in.ino)
	if _, err := fs.log.AppendRecord(fs.svcID, encodeUnlinkRecord(in.ino)); err != nil {
		return err
	}
	return nil
}

// Rename implements vfs.FileSystem.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return vfs.ErrClosed
	}
	oldDir, oldName, err := fs.resolveParent(oldPath)
	if err != nil {
		return err
	}
	ent, ok := oldDir.entries[oldName]
	if !ok {
		return fmt.Errorf("%w: %s", vfs.ErrNotExist, oldPath)
	}
	newDir, newName, err := fs.resolveParent(newPath)
	if err != nil {
		return err
	}
	if existing, ok := newDir.entries[newName]; ok {
		// Replacing: only file-over-file is allowed.
		target, err := fs.loadInode(existing.ino)
		if err != nil {
			return err
		}
		src, err := fs.loadInode(ent.ino)
		if err != nil {
			return err
		}
		if target.isDir() || src.isDir() {
			return fmt.Errorf("%w: %s", vfs.ErrExist, newPath)
		}
		if err := fs.removeInodeLocked(target); err != nil {
			return err
		}
	}
	delete(oldDir.entries, oldName)
	newDir.entries[newName] = ent
	if ent.mode == vfs.ModeDir && oldDir.ino != newDir.ino {
		oldDir.nlink--
		newDir.nlink++
	}
	fs.markDirty(oldDir)
	fs.markDirty(newDir)
	return nil
}

// Stat implements vfs.FileSystem.
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return vfs.FileInfo{}, vfs.ErrClosed
	}
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	in, err := fs.resolve(parts)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	name := "/"
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	return vfs.FileInfo{
		Name:  name,
		Ino:   in.ino,
		Size:  in.size,
		Mode:  in.mode,
		Nlink: in.nlink,
		MTime: in.mtime,
	}, nil
}

// ReadDir implements vfs.FileSystem.
func (fs *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, vfs.ErrClosed
	}
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return nil, err
	}
	in, err := fs.resolve(parts)
	if err != nil {
		return nil, err
	}
	if !in.isDir() {
		return nil, fmt.Errorf("%w: %s", vfs.ErrNotDir, path)
	}
	out := make([]vfs.DirEntry, 0, len(in.entries))
	for _, name := range in.names() {
		ent := in.entries[name]
		out = append(out, vfs.DirEntry{Name: name, Ino: ent.ino, Mode: ent.mode})
	}
	return out, nil
}
