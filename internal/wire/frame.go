package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame errors.
var (
	// ErrBadMagic is returned when a frame does not start with the
	// protocol magic.
	ErrBadMagic = errors.New("wire: bad frame magic")
	// ErrBadCRC is returned when a frame fails its checksum.
	ErrBadCRC = errors.New("wire: frame checksum mismatch")
	// ErrFrameTooLarge is returned when a frame exceeds MaxFrameSize.
	ErrFrameTooLarge = errors.New("wire: frame too large")
)

// Frame layout (little-endian):
//
//	offset  size  field
//	0       4     magic "SWM1"
//	4       1     kind (1 = request, 2 = response)
//	5       1     op
//	6       1     status (0 in requests)
//	7       8     request id (echoed in the response)
//	15      4     client id (requests) / 0 (responses)
//	19      4     body length N
//	23      N     body (encoded Message; error string for non-OK status)
//	23+N    4     CRC-32 (IEEE) over header + body
//
// MaxFrameSize bounds a single frame (fragments are ≤ a few MB).
const MaxFrameSize = 64 << 20

const (
	frameMagic   = 0x314d5753 // "SWM1" little-endian
	frameHdrSize = 4 + 1 + 1 + 1 + 8 + 4 + 4
	frameKindReq = 1
	frameKindRsp = 2
)

// Request is one client→server frame.
type Request struct {
	Op     Op
	ID     uint64 // request identifier, echoed in the response
	Client ClientID
	Body   []byte // encoded Message
}

// Response is one server→client frame. When Status != StatusOK, Body holds
// a length-prefixed error message instead of a message body.
type Response struct {
	Op     Op
	ID     uint64
	Status Status
	Body   []byte
}

// Err converts a non-OK response into an error, or returns nil.
func (r *Response) Err() error {
	if r.Status == StatusOK {
		return nil
	}
	msg := ""
	d := NewDecoder(r.Body)
	if s := d.String32(); d.Err() == nil {
		msg = s
	}
	return &StatusError{Status: r.Status, Msg: msg}
}

// StatusError is the error form of a non-OK response.
type StatusError struct {
	Status Status
	Msg    string
}

// Error implements error.
func (e *StatusError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("server: %s", e.Status)
	}
	return fmt.Sprintf("server: %s: %s", e.Status, e.Msg)
}

// IsStatus reports whether err is a StatusError with the given status.
func IsStatus(err error, s Status) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == s
}

func writeFrame(w io.Writer, kind uint8, op Op, id uint64, aux uint32, status Status, body []byte) error {
	if len(body) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	hdr := make([]byte, frameHdrSize)
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	hdr[4] = kind
	hdr[5] = uint8(op)
	hdr[6] = uint8(status)
	binary.LittleEndian.PutUint64(hdr[7:], id)
	binary.LittleEndian.PutUint32(hdr[15:], aux)
	binary.LittleEndian.PutUint32(hdr[19:], uint32(len(body)))
	crc := crc32.NewIEEE()
	crc.Write(hdr)
	crc.Write(body)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())

	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	_, err := w.Write(sum[:])
	return err
}

func readFrame(r io.Reader) (kind uint8, op Op, id uint64, aux uint32, status Status, body []byte, err error) {
	hdr := make([]byte, frameHdrSize)
	if _, err = io.ReadFull(r, hdr); err != nil {
		return
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != frameMagic {
		err = ErrBadMagic
		return
	}
	kind = hdr[4]
	op = Op(hdr[5])
	status = Status(hdr[6])
	id = binary.LittleEndian.Uint64(hdr[7:])
	aux = binary.LittleEndian.Uint32(hdr[15:])
	n := binary.LittleEndian.Uint32(hdr[19:])
	if n > MaxFrameSize {
		err = ErrFrameTooLarge
		return
	}
	body = make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return
	}
	var sum [4]byte
	if _, err = io.ReadFull(r, sum[:]); err != nil {
		return
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr)
	crc.Write(body)
	if crc.Sum32() != binary.LittleEndian.Uint32(sum[:]) {
		err = ErrBadCRC
	}
	return
}

// WriteRequest frames and writes a request carrying msg.
func WriteRequest(w io.Writer, op Op, id uint64, client ClientID, msg Message) error {
	e := NewEncoder(64)
	msg.Encode(e)
	return writeFrame(w, frameKindReq, op, id, uint32(client), 0, e.Bytes())
}

// ReadRequestFrame reads one request frame.
func ReadRequestFrame(r io.Reader) (*Request, error) {
	kind, op, id, aux, _, body, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if kind != frameKindReq {
		return nil, fmt.Errorf("%w: expected request frame, got kind %d", ErrBadMessage, kind)
	}
	return &Request{Op: op, ID: id, Client: ClientID(aux), Body: body}, nil
}

// WriteResponse frames and writes an OK response carrying msg.
func WriteResponse(w io.Writer, op Op, id uint64, msg Message) error {
	e := NewEncoder(64)
	msg.Encode(e)
	return writeFrame(w, frameKindRsp, op, id, 0, StatusOK, e.Bytes())
}

// WriteErrorResponse frames and writes a non-OK response with a message.
func WriteErrorResponse(w io.Writer, op Op, id uint64, status Status, msg string) error {
	e := NewEncoder(len(msg) + 4)
	e.String32(msg)
	return writeFrame(w, frameKindRsp, op, id, 0, status, e.Bytes())
}

// ReadResponseFrame reads one response frame.
func ReadResponseFrame(r io.Reader) (*Response, error) {
	kind, op, id, _, status, body, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if kind != frameKindRsp {
		return nil, fmt.Errorf("%w: expected response frame, got kind %d", ErrBadMessage, kind)
	}
	return &Response{Op: op, ID: id, Status: status, Body: body}, nil
}

// BufferSizes for connection readers/writers; exported so both client and
// server sides use consistent values.
const (
	// ReadBufferSize is the bufio reader size for protocol connections.
	ReadBufferSize = 256 << 10
	// WriteBufferSize is the bufio writer size for protocol connections.
	WriteBufferSize = 256 << 10
)

// NewConnReader wraps a connection for frame reading.
func NewConnReader(r io.Reader) *bufio.Reader { return bufio.NewReaderSize(r, ReadBufferSize) }

// NewConnWriter wraps a connection for frame writing.
func NewConnWriter(w io.Writer) *bufio.Writer { return bufio.NewWriterSize(w, WriteBufferSize) }
