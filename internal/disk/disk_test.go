package disk

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"swarm/internal/model"
)

func testDiskRoundTrip(t *testing.T, d Disk) {
	t.Helper()
	data := []byte("hello swarm storage")
	if err := d.WriteAt(data, 100); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 100); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func TestMemDiskRoundTrip(t *testing.T) {
	testDiskRoundTrip(t, NewMemDisk(1<<20))
}

func TestMemDiskOutOfRange(t *testing.T) {
	d := NewMemDisk(128)
	if err := d.WriteAt(make([]byte, 64), 100); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("WriteAt past end: %v, want ErrOutOfRange", err)
	}
	if err := d.ReadAt(make([]byte, 1), -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("ReadAt(-1): %v, want ErrOutOfRange", err)
	}
	if err := d.WriteAt(make([]byte, 128), 0); err != nil {
		t.Fatalf("exact-fit write: %v", err)
	}
}

func TestMemDiskClosed(t *testing.T) {
	d := NewMemDisk(128)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt([]byte{1}, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}

func TestMemDiskFailureInjection(t *testing.T) {
	d := NewMemDisk(128)
	boom := errors.New("boom")
	d.FailWrites(boom)
	if err := d.WriteAt([]byte{1}, 0); !errors.Is(err, boom) {
		t.Fatalf("injected write failure: %v", err)
	}
	d.FailWrites(nil)
	if err := d.WriteAt([]byte{1}, 0); err != nil {
		t.Fatalf("write after clearing injection: %v", err)
	}
	d.FailReads(boom)
	if err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, boom) {
		t.Fatalf("injected read failure: %v", err)
	}
}

func TestMemDiskSnapshotRestore(t *testing.T) {
	d := NewMemDisk(64)
	if err := d.WriteAt([]byte("state-a"), 0); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if err := d.WriteAt([]byte("state-b"), 0); err != nil {
		t.Fatal(err)
	}
	d.Restore(snap)
	got := make([]byte, 7)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "state-a" {
		t.Fatalf("restored %q, want state-a", got)
	}
}

func TestFileDiskRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	d, err := OpenFileDisk(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	testDiskRoundTrip(t, d)
	if d.Size() != 1<<20 {
		t.Fatalf("Size() = %d", d.Size())
	}
}

func TestFileDiskReopenPreservesData(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	d, err := OpenFileDisk(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt([]byte("persist"), 42); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenFileDisk(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := make([]byte, 7)
	if err := d2.ReadAt(got, 42); err != nil {
		t.Fatal(err)
	}
	if string(got) != "persist" {
		t.Fatalf("reopened data = %q", got)
	}
}

func TestFileDiskRejectsShrink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	d, err := OpenFileDisk(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := OpenFileDisk(path, 1024); err == nil {
		t.Fatal("reopening with smaller size should fail")
	}
}

func TestFileDiskDoubleCloseOK(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	d, err := OpenFileDisk(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestSimDiskChargesTransferTime(t *testing.T) {
	clock := model.NewFakeClock(time.Unix(0, 0))
	p := model.HardwareParams{DiskRate: 10 * model.MB, DiskSeek: 8 * time.Millisecond, DiskRotation: 4 * time.Millisecond}
	d := NewSimDisk(NewMemDisk(4<<20), clock, p)

	done := make(chan error, 1)
	go func() { done <- d.WriteAt(make([]byte, 1<<20), 0) }()
	for clock.NumWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	// seek 8ms + rot 4ms + 1MiB/10MB/s ≈ 104.8ms
	clock.Advance(200 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	busy := d.Busy()
	if busy < 100*time.Millisecond || busy > 130*time.Millisecond {
		t.Fatalf("busy = %v, want ~117ms", busy)
	}
}

func TestSimDiskSequentialAvoidsSeek(t *testing.T) {
	clock := model.NewFakeClock(time.Unix(0, 0))
	p := model.HardwareParams{DiskRate: 0, DiskSeek: 10 * time.Millisecond}
	d := NewSimDisk(NewMemDisk(1<<20), clock, p)

	write := func(off int64, n int) {
		done := make(chan error, 1)
		go func() { done <- d.WriteAt(make([]byte, n), off) }()
		for {
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
				return
			default:
				if clock.NumWaiters() > 0 {
					clock.Advance(time.Second)
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
	write(0, 100)   // seek
	write(100, 100) // sequential: no seek
	write(500, 100) // seek
	if got := d.Stats().Seeks; got != 2 {
		t.Fatalf("seeks = %d, want 2", got)
	}
}

func TestSimDiskStats(t *testing.T) {
	d := NewSimDisk(NewMemDisk(1<<20), model.WallClock{}, model.HardwareParams{})
	if err := d.WriteAt(make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(make([]byte, 50), 0); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Writes != 1 || st.BytesWrite != 100 || st.Reads != 1 || st.BytesRead != 50 {
		t.Fatalf("stats = %+v", st)
	}
	if d.Size() != 1<<20 {
		t.Fatalf("Size = %d", d.Size())
	}
}

func TestSimDiskPropagatesErrors(t *testing.T) {
	mem := NewMemDisk(128)
	d := NewSimDisk(mem, model.WallClock{}, model.HardwareParams{})
	if err := d.WriteAt(make([]byte, 256), 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out of range through sim: %v", err)
	}
	boom := errors.New("boom")
	mem.FailReads(boom)
	if err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, boom) {
		t.Fatalf("backing error not propagated: %v", err)
	}
}

// Property: for any sequence of in-range writes, reading back each region
// returns the most recent write.
func TestMemDiskQuickWriteRead(t *testing.T) {
	d := NewMemDisk(4096)
	f := func(off uint16, val byte, n uint8) bool {
		o := int64(off) % (4096 - 256)
		length := int(n)%255 + 1
		buf := bytes.Repeat([]byte{val}, length)
		if err := d.WriteAt(buf, o); err != nil {
			return false
		}
		got := make([]byte, length)
		if err := d.ReadAt(got, o); err != nil {
			return false
		}
		return bytes.Equal(got, buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashDiskRoundTrip(t *testing.T) {
	testDiskRoundTrip(t, NewCrashDisk(NewMemDisk(1<<20)))
}

// Unsynced writes are visible to the writer but vanish on crash; synced
// writes survive on the backing disk.
func TestCrashDiskDropsUnsyncedWrites(t *testing.T) {
	mem := NewMemDisk(1 << 20)
	d := NewCrashDisk(mem)
	durable := []byte("durable")
	lost := []byte("lost-on-crash")
	if err := d.WriteAt(durable, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(lost, 512); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes before the sync.
	got := make([]byte, len(lost))
	if err := d.ReadAt(got, 512); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, lost) {
		t.Fatalf("pre-crash read = %q", got)
	}
	if d.PendingWrites() != 1 {
		t.Fatalf("pending = %d, want 1", d.PendingWrites())
	}

	d.Crash()
	if err := d.ReadAt(got, 512); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash: %v", err)
	}
	if err := d.WriteAt(lost, 512); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: %v", err)
	}
	// The backing disk holds exactly the durable image.
	if err := mem.ReadAt(got[:len(durable)], 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(durable)], durable) {
		t.Fatalf("durable data = %q", got[:len(durable)])
	}
	zero := make([]byte, len(lost))
	if err := mem.ReadAt(got, 512); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, zero) {
		t.Fatalf("unsynced write reached backing disk: %q", got)
	}
}

// Later unsynced writes overlay earlier ones, and partial overlaps
// compose in write order.
func TestCrashDiskOverlayOrder(t *testing.T) {
	d := NewCrashDisk(NewMemDisk(1 << 10))
	if err := d.WriteAt([]byte("aaaaaaaa"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt([]byte("bbbb"), 2); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "aabbbbaa" {
		t.Fatalf("overlay read = %q, want aabbbbaa", got)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "aabbbbaa" {
		t.Fatalf("post-sync read = %q", got)
	}
}

func TestCrashDiskOutOfRange(t *testing.T) {
	d := NewCrashDisk(NewMemDisk(128))
	if err := d.WriteAt(make([]byte, 64), 100); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("WriteAt past end: %v, want ErrOutOfRange", err)
	}
}

// Creating or extending a FileDisk must fsync the parent directory so
// the file's existence survives power loss.
func TestFileDiskCreateSyncsDir(t *testing.T) {
	var synced []string
	orig := syncDir
	syncDir = func(dir string) error {
		synced = append(synced, dir)
		return orig(dir)
	}
	defer func() { syncDir = orig }()

	dir := t.TempDir()
	path := filepath.Join(dir, "disk.img")
	d, err := OpenFileDisk(path, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("dir syncs after create = %v, want [%s]", synced, dir)
	}

	// Reopening at the same size must not pay the directory sync again.
	synced = nil
	d, err = OpenFileDisk(path, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if len(synced) != 0 {
		t.Fatalf("dir syncs after clean reopen = %v, want none", synced)
	}

	// Extending an existing (short) file is a durability event again.
	d, err = OpenFileDisk(path, 1<<17)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if len(synced) != 1 {
		t.Fatalf("dir syncs after extend = %v, want one", synced)
	}
}
