// Command swarmctl is the cluster/client CLI: inspect servers, store and
// fetch raw log blocks, and verify stripes against running swarmd
// processes.
//
// Usage:
//
//	swarmctl -servers host:7700,host:7701 ping
//	swarmctl -servers ... stat
//	swarmctl -servers ... -client 1 put <file>     # prints the block address
//	swarmctl -servers ... -client 1 get <fid> <off> <len>
//	swarmctl -servers ... -client 1 list
//	swarmctl -servers ... -client 1 verify         # verify all stripe parity
//	swarmctl -servers ... -client 1 rebuild <n>    # rebuild replaced server n (1-based)
//	swarmctl -servers ... -client 1 health         # per-server circuit state and degraded-write counters
//	swarmctl -servers ... -client 1 join <addr>    # admit a new server to the cluster
//	swarmctl -servers ... -client 1 drain <n> [remove]  # migrate this client's fragments off server n
//	swarmctl -servers ... -client 1 status         # placement epoch, member states, rebalance counters
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"swarm"
	"swarm/internal/core"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

func main() {
	var (
		servers = flag.String("servers", "127.0.0.1:7700", "comma-separated storage server addresses (cluster order)")
		client  = flag.Uint("client", 1, "client ID (log owner)")
		frag    = flag.Int("fragsize", 1<<20, "fragment size (must match the cluster)")
		parity  = flag.Int("parity", 0, "parity shards per stripe m (0 = cluster default of 1)")
		codec   = flag.String("codec", "", "erasure codec for new stripes: xor or rs (default: xor for m<=1, rs otherwise)")
		width   = flag.Int("width", 0, "stripe width including parity (0 = all listed servers; set it narrower to leave room for drains)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: swarmctl [flags] ping|stat|put|get|list|verify|rebuild|health|join|drain|status ...")
		os.Exit(2)
	}
	opts := swarm.ClientOptions{FragmentSize: *frag, ParityShards: *parity, Codec: *codec, Width: *width}
	if err := run(strings.Split(*servers, ","), wire.ClientID(*client), opts, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "swarmctl:", err)
		os.Exit(1)
	}
}

func dialAll(addrs []string, client wire.ClientID) ([]transport.ServerConn, error) {
	conns := make([]transport.ServerConn, 0, len(addrs))
	for i, addr := range addrs {
		sc, err := transport.DialTCP(wire.ServerID(i+1), strings.TrimSpace(addr), client, 0)
		if err != nil {
			return nil, err
		}
		conns = append(conns, sc)
	}
	return conns, nil
}

func run(addrs []string, client wire.ClientID, opts swarm.ClientOptions, args []string) error {
	cmd := args[0]
	switch cmd {
	case "ping", "stat":
		conns, err := dialAll(addrs, client)
		if err != nil {
			return err
		}
		for i, sc := range conns {
			defer sc.Close()
			if cmd == "ping" {
				if err := sc.Ping(); err != nil {
					fmt.Printf("server %d (%s): DOWN (%v)\n", i+1, addrs[i], err)
					continue
				}
				fmt.Printf("server %d (%s): ok\n", i+1, addrs[i])
				continue
			}
			st, err := sc.Stat()
			if err != nil {
				fmt.Printf("server %d (%s): error: %v\n", i+1, addrs[i], err)
				continue
			}
			fmt.Printf("server %d (%s): %d/%d slots used, %d fragments, %d KB slots\n",
				i+1, addrs[i], st.TotalSlots-st.FreeSlots, st.TotalSlots, st.Fragments, st.FragmentSize>>10)
			if st.Stores > 0 {
				coalesced := st.SyncRequests - st.Syncs
				avg := time.Duration(st.StoreNanos / st.Stores)
				fmt.Printf("  commit path: %d stores, %.2f fsyncs/store (%d coalesced of %d barriers), mean entry batch %.1f, avg store latency %v\n",
					st.Stores, float64(st.Syncs)/float64(st.Stores), coalesced, st.SyncRequests,
					meanEntryBatch(st), avg.Round(time.Microsecond))
			}
			if reads := st.ReadHits + st.ReadMisses; reads > 0 {
				fmt.Printf("  read path: %d reads, %.1f%% cache hits, %d readahead loads, %d MB served from cache / %d MB from disk, %d MB resident\n",
					reads, 100*float64(st.ReadHits)/float64(reads), st.ReadaheadLoads,
					st.ReadBytesCached>>20, st.ReadBytesDisk>>20, st.ReadCacheBytes>>20)
			}
			for _, tn := range st.Tenants {
				name := fmt.Sprintf("client %d", tn.Client)
				if tn.Client == 0 {
					name = "anonymous"
				}
				fmt.Printf("  tenant %s: weight %d, %d ops / %d MB served, %d shed, %d queued (%d KB), p50 %v p99 %v\n",
					name, tn.Weight, tn.Ops, tn.Bytes>>20, tn.Sheds, tn.Queued, tn.QueuedBytes>>10,
					time.Duration(tn.P50Micros)*time.Microsecond,
					time.Duration(tn.P99Micros)*time.Microsecond)
			}
		}
		return nil

	case "list":
		conns, err := dialAll(addrs, client)
		if err != nil {
			return err
		}
		for i, sc := range conns {
			defer sc.Close()
			fids, err := sc.List(client)
			if err != nil {
				return err
			}
			fmt.Printf("server %d (%s): %d fragments", i+1, addrs[i], len(fids))
			for _, fid := range fids {
				fmt.Printf(" %v", fid)
			}
			fmt.Println()
		}
		return nil

	case "put":
		if len(args) < 2 {
			return fmt.Errorf("put needs a file argument")
		}
		data, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		c, err := swarm.ConnectAddrs(client, addrs, opts)
		if err != nil {
			return err
		}
		defer c.Close()
		if len(data) > c.Log().MaxBlockSize() {
			return fmt.Errorf("file is %d bytes; max block is %d", len(data), c.Log().MaxBlockSize())
		}
		addr, err := c.Log().AppendBlock(7, data, []byte(args[1]))
		if err != nil {
			return err
		}
		if err := c.Sync(); err != nil {
			return err
		}
		fmt.Printf("stored %d bytes at %v\n", len(data), addr)
		return nil

	case "get":
		if len(args) < 4 {
			return fmt.Errorf("get needs <fid> <off> <len> (fid as client/seq)")
		}
		fid, err := parseFID(args[1])
		if err != nil {
			return err
		}
		off, err := strconv.ParseUint(args[2], 10, 32)
		if err != nil {
			return err
		}
		n, err := strconv.ParseUint(args[3], 10, 32)
		if err != nil {
			return err
		}
		c, err := swarm.ConnectAddrs(client, addrs, opts)
		if err != nil {
			return err
		}
		defer c.Close()
		data, err := c.Log().Read(core.BlockAddr{FID: fid, Off: uint32(off)}, 0, uint32(n))
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		return nil

	case "verify":
		c, err := swarm.ConnectAddrs(client, addrs, opts)
		if err != nil {
			return err
		}
		defer c.Close()
		l := c.Log()
		bad := 0
		stripes := l.Usage().Stripes()
		for _, s := range stripes {
			u, _ := l.Usage().Get(s)
			if !u.Closed {
				continue
			}
			if err := l.VerifyStripe(s); err != nil {
				fmt.Printf("stripe %d: BAD: %v\n", s, err)
				bad++
			} else {
				fmt.Printf("stripe %d: ok (%.0f%% live)\n", s, u.Utilization()*100)
			}
		}
		if bad > 0 {
			return fmt.Errorf("%d bad stripes", bad)
		}
		fmt.Printf("%d stripes verified\n", len(stripes))
		return nil

	case "health":
		c, err := swarm.ConnectAddrs(client, addrs, opts)
		if err != nil {
			return err
		}
		defer c.Close()
		// Exercise every server once so the printed circuit state reflects
		// current reachability, not just dial-time state.
		for _, sc := range c.Log().Servers() {
			sc.Ping()
		}
		for i, h := range c.Health() {
			addr := ""
			if i < len(addrs) {
				addr = strings.TrimSpace(addrs[i])
			}
			fmt.Printf("server %d (%s): circuit %s, %d ops, %d failures (%d consecutive), %d retries, %d busy sheds, %d trips, %d fast-fails\n",
				h.Server, addr, h.State, h.Ops, h.Failures, h.ConsecutiveFailures, h.Retries, h.Busy, h.Trips, h.FastFails)
		}
		st := c.Log().Stats()
		fmt.Printf("log: %d degraded writes in %d stripes, %d preallocs skipped, %d deletes deferred\n",
			st.DegradedWrites, st.DegradedStripes, st.DegradedPreallocs, st.DeferredDeletes)
		l := c.Log()
		if code := l.Codec(); code != nil {
			fmt.Printf("erasure: codec %s, %d parity shards per %d-wide stripe, spare redundancy %d (failures to data loss)\n",
				code.Kind(), l.ParityShards(), l.Width(), st.MinSpareRedundancy)
		} else {
			fmt.Println("erasure: parity disabled (no redundancy)")
		}
		return nil

	case "rebuild":
		if len(args) < 2 {
			return fmt.Errorf("rebuild needs a server number (1-based cluster position)")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil || n < 1 || n > len(addrs) {
			return fmt.Errorf("bad server number %q", args[1])
		}
		c, err := swarm.ConnectAddrs(client, addrs, opts)
		if err != nil {
			return err
		}
		defer c.Close()
		rebuilt, err := c.RebuildServer(wire.ServerID(n))
		if err != nil {
			return err
		}
		fmt.Printf("rebuilt %d fragments on server %d\n", rebuilt, n)
		return nil

	case "join":
		if len(args) < 2 {
			return fmt.Errorf("join needs the new server's address")
		}
		c, err := swarm.ConnectAddrs(client, addrs, opts)
		if err != nil {
			return err
		}
		defer c.Close()
		id, err := c.AddServer(strings.TrimSpace(args[1]))
		if err != nil {
			return err
		}
		fmt.Printf("server %d (%s) joined at placement epoch %d\n", id, args[1], c.Placement().Epoch)
		return nil

	case "drain":
		if len(args) < 2 {
			return fmt.Errorf("drain needs a server number (1-based cluster position)")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil || n < 1 {
			return fmt.Errorf("bad server number %q", args[1])
		}
		remove := len(args) > 2 && args[2] == "remove"
		c, err := swarm.ConnectAddrs(client, addrs, opts)
		if err != nil {
			return err
		}
		defer c.Close()
		if err := c.DrainServer(wire.ServerID(n)); err != nil {
			return err
		}
		done := make(chan error, 1)
		go func() { done <- c.WaitRebalance(wire.ServerID(n)) }()
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case err := <-done:
				if err != nil {
					return err
				}
				st, _ := c.RebalanceStats(wire.ServerID(n))
				fmt.Printf("drained server %d: %d fragments (%d KB) moved, %d reconstructed, %d passes\n",
					n, st.Moved, st.Bytes>>10, st.Reconstructed, st.Passes)
				if remove {
					if err := c.RemoveServer(wire.ServerID(n)); err != nil {
						return err
					}
					fmt.Printf("server %d removed at placement epoch %d\n", n, c.Placement().Epoch)
				}
				return nil
			case <-tick.C:
				if st, ok := c.RebalanceStats(wire.ServerID(n)); ok {
					fmt.Printf("  moved %d (%d KB), %d reconstructed, %d skipped\n",
						st.Moved, st.Bytes>>10, st.Reconstructed, st.Skipped)
				}
			}
		}

	case "status":
		c, err := swarm.ConnectAddrs(client, addrs, opts)
		if err != nil {
			return err
		}
		defer c.Close()
		p := c.Placement()
		fmt.Printf("placement epoch %d, %d members:\n", p.Epoch, len(p.Members))
		for _, m := range p.Members {
			addr := ""
			if int(m.ID) <= len(addrs) {
				addr = " " + strings.TrimSpace(addrs[m.ID-1])
			}
			fmt.Printf("  server %d%s: %s\n", m.ID, addr, m.State)
		}
		st := c.Log().Stats()
		fmt.Printf("rebalance: %d fragments (%d KB) migrated this session\n",
			st.RebalancedFragments, st.RebalancedBytes>>10)
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func meanEntryBatch(st wire.StatResponse) float64 {
	if st.EntryBatches == 0 {
		return 0
	}
	return float64(st.EntriesBatched) / float64(st.EntryBatches)
}

func parseFID(s string) (wire.FID, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return 0, fmt.Errorf("fid must be client/seq, got %q", s)
	}
	c, err := strconv.ParseUint(parts[0], 10, 24)
	if err != nil {
		return 0, err
	}
	seq, err := strconv.ParseUint(parts[1], 10, 40)
	if err != nil {
		return 0, err
	}
	return wire.MakeFID(wire.ClientID(c), seq), nil
}
