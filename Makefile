GO ?= go

# Total statement coverage (make cover) must not drop below this.
COVER_FLOOR ?= 75

.PHONY: ci check vet lint build test race chaos cover bench-strict bench-smoke fuzz-smoke

.DEFAULT_GOAL := ci

# The CI gate — what `make` with no arguments runs: static checks
# (including the project-specific swarmlint analyzers), the full test
# suite, a race pass over every package, the coverage floor, and a
# small benchmark smoke run.
ci: vet lint build test race cover bench-smoke

# Historical alias for the same gate.
check: ci

vet:
	$(GO) vet ./...

# Project-specific static analysis (DESIGN.md §7): buffer-pool
# ownership, lock/I-O discipline, guarded-by fields, error
# classification, placement indexing, extent refcount flow (refcount),
# wire.Status switch exhaustiveness (statuscase), mixed atomic/plain
# field access (atomicmix), and goroutine lifecycle (goroleak). The
# ./... pattern covers the whole module — cmd/... and examples/...
# included — so the driver and example programs are held to the same
# invariants as the library.
lint:
	$(GO) run ./cmd/swarmlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race pass over the whole tree, including the cluster-level
# chaos/fault-injection tests in the root package.
race:
	$(GO) test -race ./...

# The chaos harness alone, under the race detector.
chaos:
	$(GO) test -race -v -run 'TestChaos|TestDegradedWrites' .

# Statement coverage across all packages, with a floor: fails if the
# total drops below COVER_FLOOR percent.
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { pct = $$3 + 0; printf "total coverage: %s (floor %d%%)\n", $$3, floor; \
		 if (pct < floor) { print "FAIL: coverage below floor"; exit 1 } }'

# Benchmark shape tests with the strict environment-sensitive
# throughput-ratio assertions enabled (needs an unloaded machine).
bench-strict:
	SWARM_BENCH_STRICT=1 $(GO) test ./internal/bench

# Tiny wirepath (serial vs multiplexed wire path, DESIGN.md §3.9),
# servercommit (serial vs group-committed store path, DESIGN.md §3.10),
# erasure-geometry (write amplification vs reconstruction cost,
# DESIGN.md §3.11), rebalance (foreground throughput during an elastic
# drain, DESIGN.md §3.12), and readpath (Zipf serving-tier sweep,
# DESIGN.md §3.13) runs as CI smoke checks. Shape only by default; set
# SWARM_BENCH_STRICT=1 to also assert the >= 2x speedup ratios.
bench-smoke:
	$(GO) test -count=1 -run 'TestWirepath|TestServercommit|TestErasure|TestRebalance|TestReadpath|TestQoS' ./internal/bench

# Short fuzzing pass over the wire codecs and the erasure coder (not
# part of ci: fuzzing is open-ended by nature; run it before touching
# frame, message, or parity code).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzFrameRoundTrip -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzReadRequestFrame -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzReadResponseFrame -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzResponseStreamDemux -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzErasureRoundTrip -fuzztime 10s ./internal/erasure
