// Package model provides the performance model used to reproduce the
// hardware envelope of the Swarm paper's 1999 testbed (200 MHz Pentium Pro
// machines, 100 Mb/s switched Ethernet, Quantum Viking II SCSI disks) on
// modern hardware.
//
// The model is deliberately simple: real code paths run at full speed, but
// the resources they contend for (disk heads, network links, client CPU)
// are wrapped in token-bucket throttles whose rates come from the paper.
// Elapsed wall-clock time through a throttled run therefore reproduces the
// *shape* of the paper's measurements — who saturates first, how parity
// overhead amortizes, where aggregate bandwidth scales — without needing
// the original hardware.
package model

import (
	"runtime"
	"sync"
	"time"
)

// Clock abstracts time so the performance model can be driven either by the
// wall clock (throttled benchmarks) or by a manually advanced fake clock
// (deterministic unit tests).
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for at least d.
	Sleep(d time.Duration)
}

// WallClock is the real-time clock. Its Sleep is precise to a few
// microseconds: the OS sleep primitive on many hosts has ~1 ms
// granularity, which would swamp the performance model's
// microsecond-level charges (a 200 µs network latency that actually
// sleeps 1.1 ms is a 5× error), so short waits spin on time.Now.
type WallClock struct{}

var _ Clock = WallClock{}

// coarseSleepSlack is how much earlier than the deadline the OS sleep is
// asked to wake, leaving the remainder to the spin loop.
const coarseSleepSlack = 1300 * time.Microsecond

// Now returns time.Now().
func (WallClock) Now() time.Time { return time.Now() }

// Sleep blocks for d with microsecond precision.
func (WallClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > coarseSleepSlack {
		time.Sleep(d - coarseSleepSlack)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// FakeClock is a manually advanced clock for deterministic tests. Sleepers
// block until Advance has moved the clock past their deadline.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	deadline time.Time
	ch       chan struct{}
}

var _ Clock = (*FakeClock)(nil)

// NewFakeClock returns a FakeClock starting at the given time.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep blocks until the clock has been advanced past now+d.
func (c *FakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	w := &fakeWaiter{deadline: c.now.Add(d), ch: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()
	<-w.ch
}

// Advance moves the clock forward by d and wakes any sleepers whose
// deadlines have passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	remaining := c.waiters[:0]
	var wake []*fakeWaiter
	for _, w := range c.waiters {
		if !w.deadline.After(c.now) {
			wake = append(wake, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	c.waiters = remaining
	c.mu.Unlock()
	for _, w := range wake {
		close(w.ch)
	}
}

// NumWaiters reports how many goroutines are blocked in Sleep. It lets
// tests advance the clock only once sleepers have registered.
func (c *FakeClock) NumWaiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
