package swarm

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"swarm/internal/core"
	"swarm/internal/transport"
)

func testCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	cl, err := NewLocalCluster(n, ServerOptions{DiskBytes: 64 << 20, FragmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	cl := testCluster(t, 4)
	client, err := cl.Connect(1, ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}

	// Raw log access.
	addr, err := client.Log().AppendBlock(7, []byte("first block"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := client.Log().Read(addr, 0, 11)
	if err != nil || string(got) != "first block" {
		t.Fatalf("read = (%q,%v)", got, err)
	}

	// Sting file system.
	fs, err := client.Mount(FSConfig{BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := MkdirAll(fs, "/docs/notes"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(fs, "/docs/notes/todo.txt", []byte("reproduce the paper")); err != nil {
		t.Fatal(err)
	}
	data, err := ReadFile(fs, "/docs/notes/todo.txt")
	if err != nil || string(data) != "reproduce the paper" {
		t.Fatalf("fs read = (%q,%v)", data, err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	// Reconnect: everything recovered.
	client2, err := cl.Connect(1, ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	fs2, err := client2.Mount(FSConfig{BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	data, err = ReadFile(fs2, "/docs/notes/todo.txt")
	if err != nil || string(data) != "reproduce the paper" {
		t.Fatalf("recovered fs read = (%q,%v)", data, err)
	}
}

func TestPublicAPITCP(t *testing.T) {
	var addrs []string
	var servers []*Server
	for i := 0; i < 3; i++ {
		s, err := NewServer(ServerOptions{
			DiskBytes:    32 << 20,
			FragmentSize: 64 << 10,
			Listen:       "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	client, err := ConnectAddrs(1, addrs, ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	payload := bytes.Repeat([]byte("tcp"), 5000)
	addr, err := client.Log().AppendBlock(7, payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Sync(); err != nil {
		t.Fatal(err)
	}

	// Kill one server: reads must survive via reconstruction.
	servers[1].Close()
	got, err := client.Log().Read(addr, 0, uint32(len(payload)))
	if err != nil {
		t.Fatalf("read after server death: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("reconstructed data mismatch")
	}
}

func TestPublicAPIFileBackedServer(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "server.img")
	s, err := NewServer(ServerOptions{DiskPath: path, DiskBytes: 16 << 20, FragmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	cl := &Cluster{servers: []*Server{s}}
	client, err := cl.Connect(1, ClientOptions{FragmentSize: 64 << 10, Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := client.Log().AppendBlock(7, []byte("persistent"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the same disk file.
	s2, err := NewServer(ServerOptions{DiskPath: path, DiskBytes: 16 << 20, Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cl2 := &Cluster{servers: []*Server{s2}}
	client2, err := cl2.Connect(1, ClientOptions{FragmentSize: 64 << 10, Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	got, err := client2.Log().Read(addr, 0, 10)
	if err != nil || string(got) != "persistent" {
		t.Fatalf("file-backed read = (%q,%v)", got, err)
	}
}

func TestPublicAPIARU(t *testing.T) {
	cl := testCluster(t, 2)
	client, err := cl.Connect(1, ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := client.NewARUManager(nil)
	if err != nil {
		t.Fatal(err)
	}
	u := mgr.Begin()
	if err := u.Write([]byte("atomic-1")); err != nil {
		t.Fatal(err)
	}
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	// Uncommitted unit.
	u2 := mgr.Begin()
	if err := u2.Write([]byte("ghost")); err != nil {
		t.Fatal(err)
	}
	if err := client.Sync(); err != nil {
		t.Fatal(err)
	}
	client.Close()

	var replayed []string
	client2, err := cl.Connect(1, ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	if _, err := client2.NewARUManager(func(p []byte) error {
		replayed = append(replayed, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 1 || replayed[0] != "atomic-1" {
		t.Fatalf("replayed = %v", replayed)
	}
}

func TestPublicAPILogicalDisk(t *testing.T) {
	cl := testCluster(t, 2)
	client, err := cl.Connect(1, ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ld, err := client.NewLogicalDisk(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := ld.Write(9, []byte("logical")); err != nil {
		t.Fatal(err)
	}
	if err := ld.Write(9, []byte("overwritten")); err != nil {
		t.Fatal(err)
	}
	got, err := ld.Read(9)
	if err != nil || string(got) != "overwritten" {
		t.Fatalf("ldisk read = (%q,%v)", got, err)
	}
}

func TestPublicAPICleaner(t *testing.T) {
	cl := testCluster(t, 3)
	client, err := cl.Connect(1, ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ld, err := client.NewLogicalDisk(4096)
	if err != nil {
		t.Fatal(err)
	}
	// Churn to create garbage.
	for round := 0; round < 8; round++ {
		for i := uint64(0); i < 16; i++ {
			if err := ld.Write(i, bytes.Repeat([]byte{byte(round)}, 4000)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ld.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	c := client.StartCleaner(0, CleanerConfig{UtilizationThreshold: 0.8, MaxStripesPerPass: 100})
	if _, err := c.CleanOnce(); err != nil {
		t.Fatal(err)
	}
	if c.Stats().StripesCleaned == 0 {
		t.Fatal("cleaner reclaimed nothing")
	}
	for i := uint64(0); i < 16; i++ {
		got, err := ld.Read(i)
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{7}, 4000)) {
			t.Fatalf("lbn %d after clean = %v", i, err)
		}
	}
}

func TestPublicAPIBackgroundCleaner(t *testing.T) {
	cl := testCluster(t, 2)
	client, err := cl.Connect(1, ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	c := client.StartCleaner(time.Millisecond, CleanerConfig{})
	if c == nil {
		t.Fatal("nil cleaner")
	}
	// Close stops the background loop without hanging.
	done := make(chan struct{})
	go func() {
		client.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with background cleaner")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewLocalCluster(0, ServerOptions{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func TestConnectAddrsFailure(t *testing.T) {
	if _, err := ConnectAddrs(1, []string{"127.0.0.1:1"}, ClientOptions{}); err == nil {
		t.Fatal("connect to dead address succeeded")
	}
}

func TestErrorAliases(t *testing.T) {
	cl := testCluster(t, 2)
	client, err := cl.Connect(1, ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	fs, err := client.Mount(FSConfig{BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Unmount()
	if _, err := fs.Open("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d"); !errors.Is(err, ErrExist) {
		t.Fatalf("mkdir dup: %v", err)
	}
}

func TestMultipleClientsShareCluster(t *testing.T) {
	cl := testCluster(t, 4)
	const nClients = 3
	type result struct {
		addr BlockAddr
		data []byte
	}
	results := make([]result, nClients)
	clients := make([]*Client, nClients)
	for i := 0; i < nClients; i++ {
		c, err := cl.Connect(ClientID(i+1), ClientOptions{FragmentSize: 64 << 10})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		data := bytes.Repeat([]byte{byte(i + 1)}, 2000)
		addr, err := c.Log().AppendBlock(7, data, nil)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = result{addr, data}
		if err := c.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	// Each client reads its own data back; logs are fully independent.
	for i, c := range clients {
		got, err := c.Log().Read(results[i].addr, 0, 2000)
		if err != nil || !bytes.Equal(got, results[i].data) {
			t.Fatalf("client %d read = %v", i, err)
		}
		c.Close()
	}
}

func TestServerStatsAndString(t *testing.T) {
	cl := testCluster(t, 1)
	fragSize, total, free, frags := cl.Servers()[0].Stats()
	if fragSize != 64<<10 || total == 0 || free != total || frags != 0 {
		t.Fatalf("stats = %d %d %d %d", fragSize, total, free, frags)
	}
	if s := cl.Servers()[0].String(); s == "" {
		t.Fatal("empty String()")
	}
	_ = fmt.Sprintf("%v", cl.Servers()[0])
}

func TestPublicAPIProtectedLog(t *testing.T) {
	cl := testCluster(t, 3)
	owner, err := cl.Connect(1, ClientOptions{FragmentSize: 64 << 10, Protect: true})
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	addr, err := owner.Log().AppendBlock(7, []byte("private"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Sync(); err != nil {
		t.Fatal(err)
	}
	// The owner reads its own data.
	if _, err := owner.Log().Read(addr, 0, 7); err != nil {
		t.Fatal(err)
	}

	// A stranger reading the raw fragment bytes is denied everywhere,
	// so even reconstruction cannot bypass the ACL.
	stranger, err := cl.Connect(2, ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()
	strangerView, _, err := core.Open(core.Config{
		Client:       1, // claims owner's FID space, but connects as client 2
		Servers:      strangerConns(cl, 2),
		FragmentSize: 64 << 10,
	})
	if err == nil {
		if _, _, rerr := strangerView.FetchFragment(addr.FID); rerr == nil {
			t.Fatal("stranger read protected fragment")
		}
	}

	// Granting access admits the stranger.
	if err := owner.GrantAccess(2); err != nil {
		t.Fatal(err)
	}
	grantedView, _, err := core.Open(core.Config{
		Client:       1,
		Servers:      strangerConns(cl, 2),
		FragmentSize: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := grantedView.FetchFragment(addr.FID); err != nil {
		t.Fatalf("granted client denied: %v", err)
	}
	// Revoking shuts the door again.
	if err := owner.RevokeAccess(2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := grantedView.FetchFragment(addr.FID); err == nil {
		t.Fatal("revoked client still has access")
	}
	// GrantAccess without Protect errors.
	if err := stranger.GrantAccess(3); err == nil {
		t.Fatal("GrantAccess on unprotected client succeeded")
	}
}

// strangerConns builds connections to the cluster identifying as the
// given client (white-box helper for the ACL test).
func strangerConns(cl *Cluster, as ClientID) []transport.ServerConn {
	conns := make([]transport.ServerConn, 0, len(cl.servers))
	for i, s := range cl.servers {
		conns = append(conns, transport.NewLocal(ServerID(i+1), s.store, as))
	}
	return conns
}

func TestPublicAPILogicalDiskWithCodec(t *testing.T) {
	cl := testCluster(t, 2)
	client, err := cl.Connect(1, ClientOptions{FragmentSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ld, err := client.NewLogicalDisk(8192)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := NewFlateCodec(-1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewAESCodec(bytes.Repeat([]byte{9}, 32))
	if err != nil {
		t.Fatal(err)
	}
	ld.SetCodec(NewCodecChain(fl, enc))

	plaintext := bytes.Repeat([]byte("compress me, then hide me. "), 200)
	if err := ld.Write(1, plaintext); err != nil {
		t.Fatal(err)
	}
	if err := client.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := ld.Read(1)
	if err != nil || !bytes.Equal(got, plaintext) {
		t.Fatalf("codec roundtrip failed: %v", err)
	}
	// The plaintext must not appear anywhere on the servers' disks.
	for _, s := range cl.Servers() {
		fids := s.store.List(1)
		for _, fid := range fids {
			size, ok := s.store.Has(fid)
			if !ok {
				continue
			}
			raw, err := s.store.Read(1, fid, 0, size)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Contains(raw, []byte("compress me, then hide me.")) {
				t.Fatal("plaintext leaked to server storage")
			}
		}
	}
}

func TestConcurrentChurnWithBackgroundCleaner(t *testing.T) {
	// Soak: three clients churn logical disks concurrently while each
	// runs a background cleaner; everything must stay consistent.
	cl := testCluster(t, 4)
	const (
		nClients = 3
		rounds   = 6
		nBlocks  = 12
	)
	errs := make(chan error, nClients)
	for ci := 0; ci < nClients; ci++ {
		go func(ci int) {
			errs <- func() error {
				client, err := cl.Connect(ClientID(ci+1), ClientOptions{FragmentSize: 64 << 10})
				if err != nil {
					return err
				}
				defer client.Close()
				ld, err := client.NewLogicalDisk(4096)
				if err != nil {
					return err
				}
				cleaner := client.StartCleaner(2*time.Millisecond, CleanerConfig{
					UtilizationThreshold: 0.8,
					MaxStripesPerPass:    10,
				})
				_ = cleaner
				for r := 0; r < rounds; r++ {
					for i := uint64(0); i < nBlocks; i++ {
						data := bytes.Repeat([]byte{byte(ci*100 + r)}, 3500)
						if err := ld.Write(i, data); err != nil {
							return fmt.Errorf("client %d write: %w", ci, err)
						}
					}
					if err := ld.Checkpoint(); err != nil {
						return fmt.Errorf("client %d checkpoint: %w", ci, err)
					}
				}
				// Final verification.
				for i := uint64(0); i < nBlocks; i++ {
					got, err := ld.Read(i)
					if err != nil {
						return fmt.Errorf("client %d read %d: %w", ci, i, err)
					}
					want := bytes.Repeat([]byte{byte(ci*100 + rounds - 1)}, 3500)
					if !bytes.Equal(got, want) {
						return fmt.Errorf("client %d block %d corrupted", ci, i)
					}
				}
				return nil
			}()
		}(ci)
	}
	for i := 0; i < nClients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
