// Reconstruction benchmark: what the fragment I/O engine's parallel
// scatter-gather buys over the serial member-at-a-time fetch loop the
// engine replaced. Unlike the 1999-model benchmarks, this one injects
// explicit per-server latency through transport.Flaky — the measurement
// is sleep-dominated, so the shapes are stable on loaded hosts and under
// the race detector.
package bench

import (
	"fmt"
	"io"
	"time"

	"swarm/internal/core"
	"swarm/internal/disk"
	"swarm/internal/server"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// ReconConfig parameterizes the degraded-read reconstruction benchmark.
type ReconConfig struct {
	// Width is the stripe width; one server per member.
	Width int
	// Stripes is how many closed stripes to write (one fragment per
	// stripe lands on the victim server and must be reconstructed).
	Stripes int
	// Latency is the injected per-request server latency.
	Latency time.Duration
}

// ReconResult compares serial and engine reconstruction of every
// fragment lost with one dead server.
type ReconResult struct {
	Width     int
	Fragments int
	Latency   time.Duration
	// SerialTime replays the pre-engine client: for each lost fragment,
	// fetch the surviving stripe members one at a time (header round
	// trip, then payload round trip) and XOR.
	SerialTime time.Duration
	// EngineTime reads the same lost fragments through
	// core.Log.FetchFragment, whose reconstruction gathers all surviving
	// members in one parallel fan-out.
	EngineTime time.Duration
	// Speedup = SerialTime / EngineTime.
	Speedup float64
}

// RunReconBench writes cfg.Stripes stripes across cfg.Width servers,
// kills one server, injects cfg.Latency on the rest, and reconstructs
// every fragment the dead server held — once with the old serial member
// loop and once through the engine.
func RunReconBench(cfg ReconConfig) (ReconResult, error) {
	if cfg.Width == 0 {
		cfg.Width = 8
	}
	if cfg.Stripes == 0 {
		cfg.Stripes = 3
	}
	if cfg.Latency == 0 {
		cfg.Latency = 15 * time.Millisecond
	}
	const fragSize = 4096
	client := wire.ClientID(1)

	flakies := make([]*transport.Flaky, cfg.Width)
	conns := make([]transport.ServerConn, cfg.Width)
	for i := 0; i < cfg.Width; i++ {
		st, err := server.Format(disk.NewMemDisk(4<<20), server.Config{FragmentSize: fragSize})
		if err != nil {
			return ReconResult{}, fmt.Errorf("format server %d: %w", i, err)
		}
		flakies[i] = transport.NewFlaky(transport.NewLocal(wire.ServerID(i+1), st, client))
		conns[i] = flakies[i]
	}
	log, _, err := core.Open(core.Config{Client: client, Servers: conns, FragmentSize: fragSize})
	if err != nil {
		return ReconResult{}, err
	}
	defer log.Close()

	block := make([]byte, 600)
	wantSeqs := uint64(cfg.Stripes * cfg.Width)
	for log.NextPos().Seq < wantSeqs {
		if _, err := log.AppendBlock(7, block, nil); err != nil {
			return ReconResult{}, err
		}
	}
	if err := log.Sync(); err != nil {
		return ReconResult{}, err
	}

	// Who holds what, probed before any fault injection.
	owner := make(map[wire.FID]transport.ServerConn)
	for _, c := range conns {
		fids, err := c.List(client)
		if err != nil {
			return ReconResult{}, err
		}
		for _, fid := range fids {
			if _, ok := owner[fid]; !ok {
				owner[fid] = c
			}
		}
	}
	victim := conns[0]
	var lost []wire.FID
	vfids, err := victim.List(client)
	if err != nil {
		return ReconResult{}, err
	}
	for _, fid := range vfids {
		if fid.Seq() < wantSeqs {
			lost = append(lost, fid)
		}
	}
	if len(lost) == 0 {
		return ReconResult{}, fmt.Errorf("victim server holds no closed-stripe fragments")
	}

	flakies[0].SetDown(true)
	for _, fl := range flakies {
		fl.SetLatency(cfg.Latency)
	}

	// Serial baseline: the member loop the engine replaced — two round
	// trips (header, payload) per surviving member, one member at a time.
	width := uint64(cfg.Width)
	start := time.Now()
	for _, fid := range lost {
		base := fid.Seq() / width * width
		var parity []byte
		for s := base; s < base+width; s++ {
			mfid := wire.MakeFID(client, s)
			if mfid == fid {
				continue
			}
			conn, ok := owner[mfid]
			if !ok || conn == victim {
				return ReconResult{}, fmt.Errorf("stripe member %v unreachable", mfid)
			}
			hdr, err := conn.Read(mfid, 0, core.HeaderSize)
			if err != nil {
				return ReconResult{}, fmt.Errorf("serial header %v: %w", mfid, err)
			}
			h, err := core.DecodeHeader(hdr)
			if err != nil {
				return ReconResult{}, err
			}
			payload, err := conn.Read(mfid, core.HeaderSize, h.DataLen)
			if err != nil {
				return ReconResult{}, fmt.Errorf("serial payload %v: %w", mfid, err)
			}
			if len(payload) > len(parity) {
				parity = append(parity, make([]byte, len(payload)-len(parity))...)
			}
			for i, b := range payload {
				parity[i] ^= b
			}
		}
	}
	serial := time.Since(start)

	// Engine path: the same lost fragments through FetchFragment, which
	// fails over from the dead server and gathers the survivors in
	// parallel. Each FID is distinct, so the reconstruction cache never
	// short-circuits the work.
	start = time.Now()
	for _, fid := range lost {
		if _, _, err := log.FetchFragment(fid); err != nil {
			return ReconResult{}, fmt.Errorf("engine reconstruct %v: %w", fid, err)
		}
	}
	engine := time.Since(start)

	return ReconResult{
		Width:      cfg.Width,
		Fragments:  len(lost),
		Latency:    cfg.Latency,
		SerialTime: serial,
		EngineTime: engine,
		Speedup:    float64(serial) / float64(engine),
	}, nil
}

// RunReconSweep runs the reconstruction benchmark at each width.
func RunReconSweep(widths []int, stripes int, latency time.Duration) ([]ReconResult, error) {
	var out []ReconResult
	for _, w := range widths {
		r, err := RunReconBench(ReconConfig{Width: w, Stripes: stripes, Latency: latency})
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// PrintReconResults renders the serial-vs-engine reconstruction table.
func PrintReconResults(w io.Writer, rows []ReconResult) {
	fmt.Fprintf(w, "Degraded-read reconstruction — serial member loop vs engine scatter-gather\n")
	fmt.Fprintf(w, "%-8s %-10s %-10s %-14s %-14s %s\n",
		"width", "fragments", "latency", "serial", "engine", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %-10d %-10v %-14v %-14v %.2fx\n",
			r.Width, r.Fragments, r.Latency,
			r.SerialTime.Round(time.Millisecond), r.EngineTime.Round(time.Millisecond), r.Speedup)
	}
	fmt.Fprintln(w)
}
