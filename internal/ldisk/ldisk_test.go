package ldisk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"swarm/internal/cleaner"
	"swarm/internal/core"
	"swarm/internal/disk"
	"swarm/internal/server"
	"swarm/internal/service"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

const ldSvcID = core.ServiceID(4)

type env struct {
	conns []transport.ServerConn
	log   *core.Log
	reg   *service.Registry
	ld    *Disk
}

func newEnv(t *testing.T, servers int) *env {
	t.Helper()
	e := &env{}
	for i := 0; i < servers; i++ {
		d := disk.NewMemDisk(8 << 20)
		st, err := server.Format(d, server.Config{FragmentSize: 4096})
		if err != nil {
			t.Fatal(err)
		}
		e.conns = append(e.conns, transport.NewLocal(wire.ServerID(i+1), st, 1))
	}
	e.reopen(t)
	return e
}

func (e *env) reopen(t *testing.T) {
	t.Helper()
	l, rec, err := core.Open(core.Config{Client: 1, Servers: e.conns, FragmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	e.log = l
	e.reg = service.NewRegistry(l)
	e.ld, err = New(ldSvcID, l, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.reg.Register(e.ld, rec.Service(ldSvcID)); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidatesBlockSize(t *testing.T) {
	e := newEnv(t, 2)
	defer e.log.Close()
	if _, err := New(9, e.log, 0); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := New(9, e.log, e.log.MaxBlockSize()+1); err == nil {
		t.Fatal("oversized block size accepted")
	}
}

func TestWriteReadOverwrite(t *testing.T) {
	e := newEnv(t, 2)
	defer e.log.Close()
	if err := e.ld.Write(5, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := e.ld.Read(5)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read = (%q,%v)", got, err)
	}
	// Overwrite: the essence of the logical disk.
	if err := e.ld.Write(5, []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	got, err = e.ld.Read(5)
	if err != nil || string(got) != "v2-longer" {
		t.Fatalf("read after overwrite = (%q,%v)", got, err)
	}
	if e.ld.Blocks() != 1 {
		t.Fatalf("blocks = %d", e.ld.Blocks())
	}
}

func TestReadUnwritten(t *testing.T) {
	e := newEnv(t, 2)
	defer e.log.Close()
	if _, err := e.ld.Read(42); !errors.Is(err, ErrNoBlock) {
		t.Fatalf("read unwritten: %v", err)
	}
}

func TestWriteTooLarge(t *testing.T) {
	e := newEnv(t, 2)
	defer e.log.Close()
	if err := e.ld.Write(1, make([]byte, 1025)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized write: %v", err)
	}
}

func TestFree(t *testing.T) {
	e := newEnv(t, 2)
	defer e.log.Close()
	if err := e.ld.Write(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := e.ld.Free(1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ld.Read(1); !errors.Is(err, ErrNoBlock) {
		t.Fatalf("read freed: %v", err)
	}
	if err := e.ld.Free(1); !errors.Is(err, ErrNoBlock) {
		t.Fatalf("double free: %v", err)
	}
}

func TestCrashRecoveryWithCheckpoint(t *testing.T) {
	e := newEnv(t, 3)
	for i := uint64(0); i < 20; i++ {
		if err := e.ld.Write(i, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.ld.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint: overwrite some, free some, add some.
	if err := e.ld.Write(3, []byte("new3")); err != nil {
		t.Fatal(err)
	}
	if err := e.ld.Free(4); err != nil {
		t.Fatal(err)
	}
	if err := e.ld.Write(100, []byte("hundred")); err != nil {
		t.Fatal(err)
	}
	if err := e.ld.Sync(); err != nil {
		t.Fatal(err)
	}

	e.reopen(t)
	defer e.log.Close()
	got, err := e.ld.Read(3)
	if err != nil || string(got) != "new3" {
		t.Fatalf("lbn 3 = (%q,%v)", got, err)
	}
	if _, err := e.ld.Read(4); !errors.Is(err, ErrNoBlock) {
		t.Fatalf("freed lbn 4 = %v", err)
	}
	got, err = e.ld.Read(100)
	if err != nil || string(got) != "hundred" {
		t.Fatalf("lbn 100 = (%q,%v)", got, err)
	}
	got, err = e.ld.Read(7)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{7}, 100)) {
		t.Fatalf("lbn 7 = (%q,%v)", got, err)
	}
}

func TestCrashRecoveryWithoutCheckpoint(t *testing.T) {
	e := newEnv(t, 2)
	if err := e.ld.Write(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := e.ld.Write(2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := e.ld.Write(1, []byte("one-v2")); err != nil {
		t.Fatal(err)
	}
	if err := e.ld.Sync(); err != nil {
		t.Fatal(err)
	}
	e.reopen(t)
	defer e.log.Close()
	got, err := e.ld.Read(1)
	if err != nil || string(got) != "one-v2" {
		t.Fatalf("lbn 1 = (%q,%v)", got, err)
	}
	got, err = e.ld.Read(2)
	if err != nil || string(got) != "two" {
		t.Fatalf("lbn 2 = (%q,%v)", got, err)
	}
}

func TestSurvivesServerFailure(t *testing.T) {
	e := newEnv(t, 3)
	// Wrap connections in flaky AFTER writes? Simplest: write through
	// fresh env then fail at read time via a new log over flaky conns.
	for i := uint64(0); i < 30; i++ {
		if err := e.ld.Write(i, bytes.Repeat([]byte{byte(i)}, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.ld.Sync(); err != nil {
		t.Fatal(err)
	}
	// Rebuild env over flaky wrappers and kill one server.
	flaky := make([]transport.ServerConn, len(e.conns))
	var killed *transport.Flaky
	for i, c := range e.conns {
		f := transport.NewFlaky(c)
		if i == 1 {
			killed = f
		}
		flaky[i] = f
	}
	e.conns = flaky
	killed.SetDown(true)
	e.reopen(t)
	defer e.log.Close()
	for i := uint64(0); i < 30; i++ {
		got, err := e.ld.Read(i)
		if err != nil {
			t.Fatalf("read %d with server down: %v", i, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 200)) {
			t.Fatalf("lbn %d corrupted", i)
		}
	}
}

func TestCleanerIntegration(t *testing.T) {
	e := newEnv(t, 3)
	defer e.log.Close()
	// Write and overwrite heavily to build garbage.
	for round := 0; round < 6; round++ {
		for i := uint64(0); i < 16; i++ {
			data := bytes.Repeat([]byte{byte(round*16 + int(i))}, 600)
			if err := e.ld.Write(i, data); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.ld.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	c := cleaner.New(e.log, e.reg, cleaner.Config{UtilizationThreshold: 0.8, MaxStripesPerPass: 100})
	if _, err := c.CleanOnce(); err != nil && !errors.Is(err, cleaner.ErrNothingToClean) {
		t.Fatal(err)
	}
	// All logical blocks still correct after cleaning.
	for i := uint64(0); i < 16; i++ {
		got, err := e.ld.Read(i)
		if err != nil {
			t.Fatalf("read %d after clean: %v", i, err)
		}
		want := bytes.Repeat([]byte{byte(5*16 + int(i))}, 600)
		if !bytes.Equal(got, want) {
			t.Fatalf("lbn %d corrupted after clean", i)
		}
	}
}

// Property: a random sequence of writes/frees behaves like a map.
func TestQuickLogicalDiskMatchesMap(t *testing.T) {
	e := newEnv(t, 2)
	defer e.log.Close()
	model := make(map[uint64][]byte)
	step := func(lbn uint8, val byte, free bool) bool {
		l := uint64(lbn % 16)
		if free {
			_, had := model[l]
			err := e.ld.Free(l)
			if had != (err == nil) {
				return false
			}
			delete(model, l)
		} else {
			data := bytes.Repeat([]byte{val}, int(val)%64+1)
			if err := e.ld.Write(l, data); err != nil {
				return false
			}
			model[l] = data
		}
		// Check a random resident block.
		for k, v := range model {
			got, err := e.ld.Read(k)
			if err != nil || !bytes.Equal(got, v) {
				return false
			}
			break
		}
		return true
	}
	if err := quick.Check(step, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestHintRoundTrip(t *testing.T) {
	h := hintFor(123456789)
	lbn, err := lbnFromHint(h)
	if err != nil || lbn != 123456789 {
		t.Fatalf("hint roundtrip = (%d,%v)", lbn, err)
	}
	if _, err := lbnFromHint([]byte{1}); err == nil {
		t.Fatal("short hint accepted")
	}
}
