package core

import (
	"errors"
	"fmt"
	"sort"

	"swarm/internal/fragio"
	"swarm/internal/wire"
)

// ReplayEntry is one record delivered to a service during log rollforward.
type ReplayEntry struct {
	Kind    EntryKind // EntryCreate, EntryDelete, or EntryRecord
	Svc     ServiceID
	Pos     BlockAddr // the record entry's own log position
	Payload []byte    // record payload (owned copy)
}

// RecoveredService is what recovery hands each service: its newest
// checkpoint (if any) and the records it wrote after that checkpoint, in
// log order. "By replaying these records and applying the changes they
// represent to the checkpoint's state, the service can reconstruct its
// state at the time of the crash" (§2.1.3).
type RecoveredService struct {
	Checkpoint     []byte
	CheckpointAddr BlockAddr
	HasCheckpoint  bool
	Records        []ReplayEntry
}

// Recovery is the result of opening an existing log.
type Recovery struct {
	// Fresh reports a brand-new log (nothing stored anywhere).
	Fresh bool
	// Services maps each service to its recovered state. Services that
	// never wrote anything are absent.
	Services map[ServiceID]*RecoveredService
	// MaxSeq is the highest fragment sequence number found.
	MaxSeq uint64
	// Holes lists fragments that were expected during the scan but could
	// be neither read nor reconstructed; records in them are lost.
	Holes []wire.FID
}

// Service returns the recovered state for svc, never nil.
func (r *Recovery) Service(svc ServiceID) *RecoveredService {
	if s, ok := r.Services[svc]; ok {
		return s
	}
	return &RecoveredService{}
}

// recover rebuilds the log's client-side state from the servers:
//  1. enumerate this client's fragments everywhere (self-hosting: the
//     servers are the only directory);
//  2. find the newest checkpoint via the marked-fragment query;
//  3. restore the checkpoint directory and usage table;
//  4. roll the log forward from the oldest needed checkpoint, collecting
//     each service's replayable records.
//
// recover runs inside Open, before the log is visible to any other
// goroutine, so it touches mu-guarded state without the lock.
// swarmlint:locked
func (l *Log) recover() (*Recovery, error) {
	rec := &Recovery{Services: make(map[ServiceID]*RecoveredService)}

	// 1. Enumerate fragments.
	var reachable int
	fidSet := make(map[uint64]bool)
	for _, sc := range l.place.Conns() {
		fids, err := sc.List(l.client)
		if err != nil {
			continue
		}
		reachable++
		for _, fid := range fids {
			fidSet[fid.Seq()] = true
			l.locations[fid] = sc.ID()
		}
	}
	if reachable == 0 {
		return nil, fmt.Errorf("%w: no server reachable", ErrLost)
	}
	if len(fidSet) == 0 {
		rec.Fresh = true
		return rec, nil
	}
	var maxSeq uint64
	for seq := range fidSet {
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	rec.MaxSeq = maxSeq
	// New appends start on a fresh stripe past everything seen.
	l.seq = (l.stripeOf(maxSeq) + 1) * uint64(l.width)

	// 2. Newest checkpoint.
	var (
		lastMarked wire.FID
		haveMarked bool
	)
	for _, sc := range l.place.Conns() {
		fid, found, err := sc.LastMarked(l.client)
		if err != nil || !found {
			continue
		}
		if !haveMarked || fid.Seq() > lastMarked.Seq() {
			lastMarked, haveMarked = fid, true
		}
	}

	replayFrom := Pos{}
	usageFrom := Pos{}
	if haveMarked {
		ckpt, ckptAddr, err := l.loadNewestCheckpoint(lastMarked)
		if err != nil {
			return nil, err
		}
		usageFrom = PosOf(ckptAddr)
		if u, uerr := DecodeUsageTable(ckpt.Usage); uerr == nil {
			l.usage = u
		}
		l.ckpts = ckpt.Directory
		replayFrom = Pos{Seq: ^uint64(0)}
		for svc, addr := range ckpt.Directory {
			l.registered[svc] = true
			payload, perr := l.readCheckpointPayload(addr)
			if perr != nil {
				return nil, fmt.Errorf("read checkpoint for service %d: %w", svc, perr)
			}
			rec.Services[svc] = &RecoveredService{
				Checkpoint:     payload,
				CheckpointAddr: addr,
				HasCheckpoint:  true,
			}
			if p := PosOf(addr); p.Less(replayFrom) {
				replayFrom = p
			}
		}
		if len(ckpt.Directory) == 0 {
			replayFrom = Pos{}
		}
	}

	// 3+4. Roll forward.
	if err := l.rollForward(rec, fidSet, replayFrom, usageFrom, maxSeq); err != nil {
		return nil, err
	}
	return rec, nil
}

// loadNewestCheckpoint reads the marked fragment and returns its last
// checkpoint record (the newest in the log, since every checkpoint marks
// its fragment and lastMarked has the highest sequence number).
func (l *Log) loadNewestCheckpoint(fid wire.FID) (CheckpointRecord, BlockAddr, error) {
	_, payload, err := l.FetchFragment(fid)
	if err != nil {
		return CheckpointRecord{}, BlockAddr{}, fmt.Errorf("fetch checkpoint fragment %v: %w", fid, err)
	}
	var (
		found   bool
		lastOff uint32
		lastRec []byte
	)
	err = IterEntries(payload, func(e Entry) bool {
		if e.Kind == EntryCheckpoint {
			found = true
			lastOff = e.Off
			lastRec = e.Payload
		}
		return true
	})
	if err != nil {
		return CheckpointRecord{}, BlockAddr{}, err
	}
	if !found {
		return CheckpointRecord{}, BlockAddr{}, fmt.Errorf("%w: marked fragment %v holds no checkpoint", ErrBadFragment, fid)
	}
	ckpt, err := DecodeCheckpointRecord(lastRec)
	if err != nil {
		return CheckpointRecord{}, BlockAddr{}, err
	}
	return ckpt, BlockAddr{FID: fid, Off: lastOff}, nil
}

// readCheckpointPayload fetches the service payload of the checkpoint
// record at addr.
func (l *Log) readCheckpointPayload(addr BlockAddr) ([]byte, error) {
	_, payload, err := l.FetchFragment(addr.FID)
	if err != nil {
		return nil, err
	}
	var out []byte
	found := false
	err = IterEntries(payload, func(e Entry) bool {
		if e.Off == addr.Off && e.Kind == EntryCheckpoint {
			if ckpt, derr := DecodeCheckpointRecord(e.Payload); derr == nil {
				out = append([]byte(nil), ckpt.Payload...)
				found = true
			}
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("%w: no checkpoint entry at %v", ErrBadFragment, addr)
	}
	return out, nil
}

// rollForward scans data fragments from replayFrom to maxSeq, delivering
// each record to its service (if newer than that service's checkpoint)
// and rolling the usage table forward from usageFrom. Fragments are
// fetched a stripe at a time through the fragment I/O engine — one
// parallel fan-out per stripe — while records are still delivered
// strictly in log order.
func (l *Log) rollForward(rec *Recovery, fidSet map[uint64]bool, replayFrom, usageFrom Pos, maxSeq uint64) error {
	var (
		fetched     map[uint64]fetchedFrag
		fetchedBase = ^uint64(0)
	)
	for seq := replayFrom.Seq; seq <= maxSeq; seq++ {
		fid := wire.MakeFID(l.client, seq)
		if !fidSet[seq] && !l.stripeHasSurvivors(fidSet, seq) {
			continue // stripe reclaimed or never written
		}
		// Entering a new stripe: gather every member of it that this scan
		// will visit in one concurrent fan-out.
		if stripe := l.stripeOf(seq); stripe != fetchedBase {
			fetchedBase = stripe
			var need []uint64
			for s := seq; s <= maxSeq && l.stripeOf(s) == stripe; s++ {
				if fidSet[s] || l.stripeHasSurvivors(fidSet, s) {
					need = append(need, s)
				}
			}
			fetched = l.fetchSeqs(need)
		}
		f, ok := fetched[seq]
		if !ok {
			continue
		}
		h, payload, err := f.header, f.payload, f.err
		if err != nil {
			rec.Holes = append(rec.Holes, fid)
			continue
		}
		if h.Kind == FragParity {
			continue
		}
		if seq >= usageFrom.Seq {
			l.usage.FragmentSealed(h.StripeID, !l.parity)
		}
		iterErr := IterEntries(payload, func(e Entry) bool {
			pos := Pos{Seq: seq, Off: e.Off}
			// Usage roll-forward: the snapshot in the newest checkpoint
			// covers everything strictly before the checkpoint entry.
			if !pos.Less(usageFrom) {
				switch e.Kind {
				case EntryBlock:
					l.usage.AddBlock(h.StripeID, EntrySize(len(e.Payload)))
				case EntryDelete:
					l.usage.AddRecord(h.StripeID, EntrySize(len(e.Payload)))
					if dr, derr := DecodeDeleteRecord(e.Payload); derr == nil {
						l.usage.DeleteBlock(l.stripeOf(dr.Addr.FID.Seq()), EntrySize(int(dr.Len)))
					}
				case EntryCreate, EntryRecord, EntryCheckpoint:
					l.usage.AddRecord(h.StripeID, EntrySize(len(e.Payload)))
				}
			}
			// Record delivery.
			switch e.Kind {
			case EntryCreate, EntryDelete, EntryRecord:
				svcRec, ok := rec.Services[e.Svc]
				if !ok {
					svcRec = &RecoveredService{}
					rec.Services[e.Svc] = svcRec
				}
				if svcRec.HasCheckpoint && !PosOf(svcRec.CheckpointAddr).Less(pos) {
					return true // older than this service's checkpoint
				}
				svcRec.Records = append(svcRec.Records, ReplayEntry{
					Kind:    e.Kind,
					Svc:     e.Svc,
					Pos:     BlockAddr{FID: fid, Off: e.Off},
					Payload: append([]byte(nil), e.Payload...),
				})
			}
			return true
		})
		if iterErr != nil {
			// A fragment with a corrupt tail: keep what parsed, note it.
			rec.Holes = append(rec.Holes, fid)
		}
	}
	// Parity fragments seen during the scan close their stripes.
	l.markClosedStripes(fidSet, maxSeq)
	sortHoles(rec.Holes)
	return nil
}

// stripeHasSurvivors reports whether any fragment of seq's stripe exists,
// which makes a missing member worth a reconstruction attempt.
func (l *Log) stripeHasSurvivors(fidSet map[uint64]bool, seq uint64) bool {
	base := l.stripeOf(seq) * uint64(l.width)
	for i := uint64(0); i < uint64(l.width); i++ {
		if base+i != seq && fidSet[base+i] {
			return true
		}
	}
	return false
}

// markClosedStripes marks stripes whose parity fragment exists as closed
// in the usage table (the cleaner only touches closed stripes).
func (l *Log) markClosedStripes(fidSet map[uint64]bool, maxSeq uint64) {
	if !l.parity {
		return
	}
	for stripe := uint64(0); stripe <= l.stripeOf(maxSeq); stripe++ {
		pSeq := stripe*uint64(l.width) + uint64(l.parityIndex(stripe))
		if fidSet[pSeq] {
			l.usage.FragmentSealed(stripe, true)
		}
	}
}

func sortHoles(holes []wire.FID) {
	sort.Slice(holes, func(i, j int) bool { return holes[i] < holes[j] })
}

// VerifyStripe checks that every member of a stripe is readable and
// every parity payload actually equals what the stripe's codec computes
// over the data payloads. It is a consistency check used by tests and
// the swarmctl tool. The geometry (codec, parity count, slots) comes
// from the stored headers, not this client's configuration, so mixed
// XOR/RS logs verify stripe by stripe. The members are gathered in one
// parallel fan-out through the engine; reconstruction is deliberately
// not attempted — verification wants the stored bytes.
func (l *Log) VerifyStripe(stripe uint64) error {
	base := stripe * uint64(l.width)
	if !l.parity {
		return errors.New("core: parity disabled")
	}
	members := make([]fragio.Member, l.width)
	l.mu.Lock()
	for i := 0; i < l.width; i++ {
		fid := wire.MakeFID(l.client, base+uint64(i))
		members[i] = fragio.Member{FID: fid, Server: l.locations[fid]}
	}
	l.mu.Unlock()
	results := l.engine.Gather(members)
	// Payloads are re-encoded/compared and die here; recycle them.
	defer func() {
		for _, r := range results {
			wire.PutBuffer(r.Payload)
		}
	}()
	var geom Header
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("stripe %d member %d: %w", stripe, i, r.Err)
		}
		if i == 0 {
			geom = r.Decoded.(Header)
		}
	}
	code, err := geom.ErasureCode()
	if err != nil {
		return fmt.Errorf("stripe %d: %w", stripe, err)
	}
	// Recompute every parity payload from the stored data payloads.
	acc := make([][]byte, code.ParityShards())
	for j := range acc {
		acc[j] = make([]byte, l.payloadSize)
	}
	parityOf := make(map[int][]byte, code.ParityShards()) // member index → stored parity
	for i, r := range results {
		h := r.Decoded.(Header)
		_, isParity := geom.ParityOrdinal(i)
		if isParity != (h.Kind == FragParity) {
			return fmt.Errorf("%w: stripe %d member %d kind %d does not match its slot", ErrBadFragment, stripe, i, h.Kind)
		}
		if isParity {
			parityOf[i] = r.Payload
			continue
		}
		code.AddData(geom.ShardOrdinal(i), r.Payload, acc)
	}
	for i, stored := range parityOf {
		j, _ := geom.ParityOrdinal(i)
		want := acc[j]
		for b := 0; b < l.payloadSize; b++ {
			var s byte
			if b < len(stored) {
				s = stored[b]
			}
			if want[b] != s {
				return fmt.Errorf("%w: stripe %d parity %d mismatch at byte %d", ErrBadFragment, stripe, j, b)
			}
		}
	}
	return nil
}
