package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swarm"
	"swarm/internal/wire"
)

func startServers(t *testing.T, n int) []string {
	t.Helper()
	var addrs []string
	for i := 0; i < n; i++ {
		s, err := swarm.NewServer(swarm.ServerOptions{
			DiskBytes:    32 << 20,
			FragmentSize: 64 << 10,
			Listen:       "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		addrs = append(addrs, s.Addr())
	}
	return addrs
}

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func ctl(t *testing.T, addrs []string, args ...string) string {
	t.Helper()
	out, err := capture(t, func() error {
		return run(addrs, 1, swarm.ClientOptions{FragmentSize: 64 << 10}, args)
	})
	if err != nil {
		t.Fatalf("swarmctl %v: %v\noutput: %s", args, err, out)
	}
	return out
}

func TestSwarmctlPingAndStat(t *testing.T) {
	addrs := startServers(t, 2)
	out := ctl(t, addrs, "ping")
	if strings.Count(out, "ok") != 2 {
		t.Fatalf("ping = %q", out)
	}
	out = ctl(t, addrs, "stat")
	if !strings.Contains(out, "slots used") {
		t.Fatalf("stat = %q", out)
	}
}

func TestSwarmctlPutGetListVerify(t *testing.T) {
	addrs := startServers(t, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "payload.bin")
	content := []byte("round trip through the striped log")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}

	out := ctl(t, addrs, "put", path)
	if !strings.Contains(out, "stored") {
		t.Fatalf("put = %q", out)
	}
	// Parse "stored N bytes at c/s+off".
	fields := strings.Fields(out)
	addr := fields[len(fields)-1]
	fidPart := addr[:strings.Index(addr, "+")]
	off := addr[strings.Index(addr, "+")+1:]

	got := ctl(t, addrs, "get", fidPart, off, "0")
	_ = got // a zero-length read of the entry offset region

	// Read the payload: the block body begins where put reported.
	got = ctl(t, addrs, "get", fidPart, off, "34")
	if got != string(content) {
		t.Fatalf("get = %q, want %q", got, content)
	}

	out = ctl(t, addrs, "list")
	if !strings.Contains(out, "fragments") {
		t.Fatalf("list = %q", out)
	}
	out = ctl(t, addrs, "verify")
	if !strings.Contains(out, "stripes verified") {
		t.Fatalf("verify = %q", out)
	}
}

func TestSwarmctlErrors(t *testing.T) {
	addrs := startServers(t, 1)
	if err := run(addrs, 1, swarm.ClientOptions{FragmentSize: 64 << 10}, []string{"bogus"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run(addrs, 1, swarm.ClientOptions{FragmentSize: 64 << 10}, []string{"put"}); err == nil {
		t.Fatal("put without file accepted")
	}
	if err := run(addrs, 1, swarm.ClientOptions{FragmentSize: 64 << 10}, []string{"get", "nonsense", "0", "1"}); err == nil {
		t.Fatal("malformed fid accepted")
	}
	if err := run([]string{"127.0.0.1:1"}, 1, swarm.ClientOptions{FragmentSize: 64 << 10}, []string{"ping"}); err == nil {
		t.Fatal("ping to dead server should fail at dial")
	}
}

func TestParseFID(t *testing.T) {
	fid, err := parseFID("3/42")
	if err != nil || fid != wire.MakeFID(3, 42) {
		t.Fatalf("parseFID = (%v,%v)", fid, err)
	}
	for _, bad := range []string{"", "3", "3/", "/42", "a/b", "3/42/1"} {
		if _, err := parseFID(bad); err == nil {
			t.Errorf("parseFID(%q) accepted", bad)
		}
	}
}

func TestSwarmctlRebuild(t *testing.T) {
	// Three servers; write data; replace server 2 with an empty one on
	// the same address; rebuild restores its fragments.
	var addrs []string
	var servers []*swarm.Server
	for i := 0; i < 3; i++ {
		s, err := swarm.NewServer(swarm.ServerOptions{
			DiskBytes:    32 << 20,
			FragmentSize: 64 << 10,
			Listen:       "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	dir := t.TempDir()
	path := filepath.Join(dir, "payload.bin")
	if err := os.WriteFile(path, bytes.Repeat([]byte("data"), 2000), 0o644); err != nil {
		t.Fatal(err)
	}
	ctl(t, addrs, "put", path)

	// Replace server 2 (index 1) with a fresh one on the same address.
	if err := servers[1].Close(); err != nil {
		t.Fatal(err)
	}
	replacement, err := swarm.NewServer(swarm.ServerOptions{
		DiskBytes:    32 << 20,
		FragmentSize: 64 << 10,
		Listen:       addrs[1],
	})
	if err != nil {
		t.Fatal(err)
	}
	servers[1] = replacement

	out := ctl(t, addrs, "rebuild", "2")
	if !strings.Contains(out, "rebuilt") || strings.Contains(out, "rebuilt 0 fragments") {
		t.Fatalf("rebuild = %q", out)
	}
	// Everything verifies afterwards.
	out = ctl(t, addrs, "verify")
	if strings.Contains(out, "BAD") {
		t.Fatalf("verify after rebuild = %q", out)
	}
}

func TestSwarmctlHealth(t *testing.T) {
	addrs := startServers(t, 2)
	out := ctl(t, addrs, "health")
	if strings.Count(out, "circuit closed") != 2 {
		t.Fatalf("health = %q", out)
	}
	if !strings.Contains(out, "degraded writes") || !strings.Contains(out, "deletes deferred") {
		t.Fatalf("health counters missing: %q", out)
	}
}
