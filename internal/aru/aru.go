// Package aru implements atomic recovery units (Grimm et al., cited as
// [6] in the paper): failure atomicity across multiple log records. A
// service writes any number of records inside an ARU; after a crash, the
// records reappear during replay only if the ARU committed before the
// crash. The manager works exactly as §2.2 describes: it tags records
// with their ARU, passes them to the log below, and during recovery "only
// relays upwards those records that belong to ARUs that completed before
// the crash".
package aru

import (
	"errors"
	"fmt"
	"sync"

	"swarm/internal/core"
	"swarm/internal/service"
	"swarm/internal/wire"
)

// ARU errors.
var (
	// ErrFinished is returned when writing to a committed/aborted ARU.
	ErrFinished = errors.New("aru: unit already finished")
	// ErrBadRecord is returned for malformed ARU records during replay.
	ErrBadRecord = errors.New("aru: bad record")
)

const (
	recData   = 1
	recCommit = 2
	recAbort  = 3
)

// Manager is the ARU service.
type Manager struct {
	service.Base
	id  core.ServiceID
	log *core.Log

	mu      sync.Mutex
	nextID  uint64
	replay  func(payload []byte) error
	pending map[uint64][][]byte // replay buffering: ARU id -> records
}

var _ service.Service = (*Manager)(nil)

// New returns an ARU manager writing under the given service ID.
func New(id core.ServiceID, log *core.Log) *Manager {
	return &Manager{id: id, log: log, pending: make(map[uint64][][]byte)}
}

// ID implements service.Service.
func (m *Manager) ID() core.ServiceID { return m.id }

// SetReplayHandler installs the consumer for committed records during
// recovery. Records are delivered in commit order; records of ARUs that
// never committed are suppressed.
func (m *Manager) SetReplayHandler(fn func(payload []byte) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replay = fn
}

// Unit is one atomic recovery unit.
type Unit struct {
	m        *Manager
	id       uint64
	finished bool
	mu       sync.Mutex
}

// Begin starts a new ARU.
func (m *Manager) Begin() *Unit {
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.mu.Unlock()
	return &Unit{m: m, id: id}
}

func encodeRec(kind uint8, id uint64, payload []byte) []byte {
	e := wire.NewEncoder(13 + len(payload))
	e.U8(kind)
	e.U64(id)
	e.Bytes32(payload)
	return e.Bytes()
}

func decodeRec(p []byte) (kind uint8, id uint64, payload []byte, err error) {
	d := wire.NewDecoder(p)
	kind = d.U8()
	id = d.U64()
	payload = d.Bytes32()
	if derr := d.Err(); derr != nil {
		err = fmt.Errorf("%w: %v", ErrBadRecord, derr)
	}
	return
}

// Write appends one record inside the unit.
func (u *Unit) Write(payload []byte) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.finished {
		return ErrFinished
	}
	_, err := u.m.log.AppendRecord(u.m.id, encodeRec(recData, u.id, payload))
	return err
}

// Commit finishes the unit: after Commit returns with the log synced, the
// unit's records will survive a crash; before the commit record is in the
// log, none of them will reappear.
func (u *Unit) Commit() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.finished {
		return ErrFinished
	}
	u.finished = true
	_, err := u.m.log.AppendRecord(u.m.id, encodeRec(recCommit, u.id, nil))
	return err
}

// Abort finishes the unit, guaranteeing its records never replay. (An
// unfinished unit is equivalent after a crash, but Abort makes the intent
// explicit and lets the cleaner treat the records as garbage.)
func (u *Unit) Abort() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.finished {
		return ErrFinished
	}
	u.finished = true
	_, err := u.m.log.AppendRecord(u.m.id, encodeRec(recAbort, u.id, nil))
	return err
}

// ID returns the unit's identifier.
func (u *Unit) ID() uint64 { return u.id }

// Replay implements service.Service: buffer data records per ARU and
// release them at their commit record.
func (m *Manager) Replay(rec core.ReplayEntry) error {
	if rec.Kind != core.EntryRecord {
		return nil // ARUs own no blocks
	}
	kind, id, payload, err := decodeRec(rec.Payload)
	if err != nil {
		return err
	}
	m.mu.Lock()
	if id > m.nextID {
		m.nextID = id // keep allocations unique across restarts
	}
	switch kind {
	case recData:
		m.pending[id] = append(m.pending[id], append([]byte(nil), payload...))
		m.mu.Unlock()
		return nil
	case recAbort:
		delete(m.pending, id)
		m.mu.Unlock()
		return nil
	case recCommit:
		records := m.pending[id]
		delete(m.pending, id)
		fn := m.replay
		m.mu.Unlock()
		if fn == nil {
			return nil
		}
		for _, p := range records {
			if err := fn(p); err != nil {
				return err
			}
		}
		return nil
	default:
		m.mu.Unlock()
		return fmt.Errorf("%w: kind %d", ErrBadRecord, kind)
	}
}

// RestoreCheckpoint implements service.Service: restore the ID
// high-water mark (replay raises it further) and clear replay buffers.
func (m *Manager) RestoreCheckpoint(payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending = make(map[uint64][][]byte)
	if len(payload) > 0 {
		d := wire.NewDecoder(payload)
		m.nextID = d.U64()
		if err := d.Err(); err != nil {
			return fmt.Errorf("%w: checkpoint: %v", ErrBadRecord, err)
		}
	}
	return nil
}

// Checkpoint writes the manager's checkpoint (the ID high-water mark).
// ARU data records older than the checkpoint have already been consumed
// by the layers above, so checkpointing unpins them for the cleaner.
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	id := m.nextID
	m.mu.Unlock()
	e := wire.NewEncoder(8)
	e.U64(id)
	_, err := m.log.WriteCheckpoint(m.id, e.Bytes())
	return err
}

// CheckpointDemand implements service.Service by checkpointing
// immediately: the manager's checkpoint is tiny and always consistent.
func (m *Manager) CheckpointDemand() error { return m.Checkpoint() }

// PendingUnits reports how many ARUs have buffered records mid-replay
// (diagnostic).
func (m *Manager) PendingUnits() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}
