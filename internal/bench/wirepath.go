// Wirepath benchmark: what request-ID multiplexing buys over the old
// lock-step one-RPC-per-connection transport. A real TCP server is run
// behind a listener that injects one-way network latency on every inbound
// byte stream (modeling RTT without breaking pipelining), and the same
// store workload is driven twice: MaxInFlight 1 (the old engine's
// behavior — a connection is busy until its response returns) and the
// multiplexed default. The measurement also reports allocations per RPC,
// covering both the client encode and server decode paths since the
// whole stack runs in-process.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"swarm/internal/disk"
	"swarm/internal/server"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// delayedConn injects a fixed one-way delay on the read side of a
// connection. A pump goroutine stamps each inbound chunk with its
// arrival time plus the delay; Read delivers chunks no earlier than
// their stamp. Unlike a sleep in Read, this preserves pipelining: ten
// back-to-back requests arrive one delay late, not ten.
type delayedConn struct {
	net.Conn
	delay time.Duration
	ch    chan delayedChunk
	cur   []byte // unread tail of the current chunk
	buf   []byte // current chunk's backing buffer (pooled)
	err   error
}

type delayedChunk struct {
	data  []byte
	ready time.Time
	err   error
}

func newDelayedConn(c net.Conn, delay time.Duration) *delayedConn {
	dc := &delayedConn{Conn: c, delay: delay, ch: make(chan delayedChunk, 1024)}
	go dc.pump()
	return dc
}

func (dc *delayedConn) pump() {
	for {
		// Chunks cycle through the wire buffer pool so the harness's own
		// allocations don't pollute the benchmark's allocs-per-RPC.
		buf := wire.GetBuffer(64 << 10)
		n, err := dc.Conn.Read(buf)
		if n > 0 {
			dc.ch <- delayedChunk{data: buf[:n], ready: time.Now().Add(dc.delay)}
		} else {
			wire.PutBuffer(buf)
		}
		if err != nil {
			dc.ch <- delayedChunk{err: err, ready: time.Now().Add(dc.delay)}
			return
		}
	}
}

func (dc *delayedConn) Read(p []byte) (int, error) {
	for len(dc.cur) == 0 {
		if dc.buf != nil {
			wire.PutBuffer(dc.buf)
			dc.buf = nil
		}
		if dc.err != nil {
			return 0, dc.err
		}
		c := <-dc.ch
		if wait := time.Until(c.ready); wait > 0 {
			time.Sleep(wait)
		}
		if c.err != nil {
			dc.err = c.err
			return 0, c.err
		}
		dc.cur, dc.buf = c.data, c.data
	}
	n := copy(p, dc.cur)
	dc.cur = dc.cur[n:]
	return n, nil
}

// delayListener wraps every accepted connection in a delayedConn.
type delayListener struct {
	net.Listener
	delay time.Duration
}

func (l delayListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return newDelayedConn(c, l.delay), nil
}

// WirepathConfig parameterizes the serial-vs-multiplexed comparison.
type WirepathConfig struct {
	// Stores is the number of store RPCs per mode.
	Stores int
	// PayloadKB is the fragment payload size per store.
	PayloadKB int
	// Pool is the TCP connection pool size (the paper point is pool 2).
	Pool int
	// MaxInFlight is the multiplexed mode's per-connection RPC budget.
	MaxInFlight int
	// Workers is the number of concurrent RPC issuers.
	Workers int
	// RTT is the injected one-way network latency.
	RTT time.Duration
}

func (c WirepathConfig) withDefaults() WirepathConfig {
	if c.Stores == 0 {
		c.Stores = 256
	}
	if c.PayloadKB == 0 {
		c.PayloadKB = 256
	}
	if c.Pool == 0 {
		c.Pool = 2
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 16
	}
	if c.Workers == 0 {
		c.Workers = 32
	}
	if c.RTT == 0 {
		c.RTT = 5 * time.Millisecond
	}
	return c
}

// WirepathResult is one mode's measurement.
type WirepathResult struct {
	Mode          string  `json:"mode"` // "lockstep" or "multiplexed"
	Stores        int     `json:"stores"`
	PayloadKB     int     `json:"payload_kb"`
	Pool          int     `json:"pool"`
	MaxInFlight   int     `json:"max_in_flight"`
	RTTMillis     float64 `json:"rtt_ms"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	MBps          float64 `json:"mb_per_s"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	KBAllocdPerOp float64 `json:"kb_allocated_per_op"`
}

// RunWirepath measures the same store workload in lock-step
// (MaxInFlight 1) and multiplexed mode over a Pool-connection TCP
// transport with injected RTT. Results come back in that order.
func RunWirepath(cfg WirepathConfig, progress func(string)) ([]WirepathResult, error) {
	cfg = cfg.withDefaults()
	if progress == nil {
		progress = func(string) {}
	}
	modes := []struct {
		name        string
		maxInFlight int
	}{
		{"lockstep", 1},
		{"multiplexed", cfg.MaxInFlight},
	}
	var out []WirepathResult
	for _, m := range modes {
		progress(fmt.Sprintf("wirepath: %s (pool %d, in-flight %d, rtt %v)",
			m.name, cfg.Pool, m.maxInFlight, cfg.RTT))
		r, err := runWirepathMode(cfg, m.name, m.maxInFlight)
		if err != nil {
			return out, fmt.Errorf("wirepath %s: %w", m.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func runWirepathMode(cfg WirepathConfig, mode string, maxInFlight int) (WirepathResult, error) {
	fragSize := cfg.PayloadKB << 10
	diskSize := int64(cfg.Stores+16)*int64(fragSize) + (8 << 20)
	st, err := server.Format(disk.NewMemDisk(diskSize), server.Config{FragmentSize: fragSize})
	if err != nil {
		return WirepathResult{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return WirepathResult{}, err
	}
	srv := server.Serve(st, delayListener{Listener: ln, delay: cfg.RTT}, nil)
	defer srv.Close()

	sc, err := transport.DialTCPOpts(1, ln.Addr().String(), 1,
		transport.TCPOptions{PoolSize: cfg.Pool, MaxInFlight: maxInFlight})
	if err != nil {
		return WirepathResult{}, err
	}
	defer sc.Close()

	payload := make([]byte, fragSize)
	for i := range payload {
		payload[i] = byte(i)
	}

	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Stores) {
					return
				}
				if err := sc.Store(wire.MakeFID(1, uint64(i)), payload, false, nil); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err, _ := firstErr.Load().(error); err != nil {
		return WirepathResult{}, err
	}

	mb := float64(cfg.Stores) * float64(fragSize) / (1 << 20)
	return WirepathResult{
		Mode:        mode,
		Stores:      cfg.Stores,
		PayloadKB:   cfg.PayloadKB,
		Pool:        cfg.Pool,
		MaxInFlight: maxInFlight,
		RTTMillis:   float64(cfg.RTT) / float64(time.Millisecond),
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
		MBps:        mb / elapsed.Seconds(),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(cfg.Stores),
		KBAllocdPerOp: float64(after.TotalAlloc-before.TotalAlloc) /
			float64(cfg.Stores) / 1024,
	}, nil
}

// WirepathSpeedup returns multiplexed MB/s over lock-step MB/s.
func WirepathSpeedup(rows []WirepathResult) float64 {
	var lock, mux float64
	for _, r := range rows {
		switch r.Mode {
		case "lockstep":
			lock = r.MBps
		case "multiplexed":
			mux = r.MBps
		}
	}
	if lock == 0 {
		return 0
	}
	return mux / lock
}

// PrintWirepathResults renders the comparison table.
func PrintWirepathResults(w io.Writer, rows []WirepathResult) {
	fmt.Fprintf(w, "Wirepath — lock-step vs multiplexed store RPCs (pool %d, %d KB payloads, %.0f ms one-way latency)\n",
		rows[0].Pool, rows[0].PayloadKB, rows[0].RTTMillis)
	fmt.Fprintf(w, "%-14s %-10s %-12s %-10s %-10s %-12s %s\n",
		"mode", "in-flight", "stores", "elapsed", "MB/s", "allocs/op", "KB alloc/op")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-10d %-12d %-10s %-10.1f %-12.0f %.0f\n",
			r.Mode, r.MaxInFlight, r.Stores,
			(time.Duration(r.ElapsedMS * float64(time.Millisecond))).Round(time.Millisecond).String(),
			r.MBps, r.AllocsPerOp, r.KBAllocdPerOp)
	}
	fmt.Fprintf(w, "speedup: %.2fx\n\n", WirepathSpeedup(rows))
}

// WriteWirepathJSON writes the machine-readable benchmark record
// (consumed by CI and tracked across PRs in EXPERIMENTS.md).
func WriteWirepathJSON(path string, rows []WirepathResult) error {
	doc := struct {
		Figure  string           `json:"figure"`
		Meta    RunMeta          `json:"meta"`
		Speedup float64          `json:"speedup"`
		Results []WirepathResult `json:"results"`
	}{
		Figure:  "wirepath",
		Meta:    NewRunMeta(),
		Speedup: WirepathSpeedup(rows),
		Results: rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
