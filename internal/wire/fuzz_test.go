package wire

import (
	"bytes"
	"testing"
)

func FuzzReadRequestFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteRequest(&buf, OpStore, 7, 1, &StoreRequest{FID: MakeFID(1, 2), Data: []byte("x")})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, frameHdrSize+4))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequestFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything framed must decode (or fail) without panicking.
		var store StoreRequest
		_ = store.Decode(NewDecoder(req.Body))
		var read ReadRequest
		_ = read.Decode(NewDecoder(req.Body))
		var acl ACLModifyRequest
		_ = acl.Decode(NewDecoder(req.Body))
	})
}

func FuzzReadResponseFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteResponse(&buf, OpRead, 7, &ReadResponse{Data: []byte("abc")})
	f.Add(buf.Bytes())
	var ebuf bytes.Buffer
	_ = WriteErrorResponse(&ebuf, OpStore, 1, StatusNoSpace, "full")
	f.Add(ebuf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		rsp, err := ReadResponseFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = rsp.Err()
		var rr ReadResponse
		_ = rr.Decode(NewDecoder(rsp.Body))
		var lm LastMarkedResponse
		_ = lm.Decode(NewDecoder(rsp.Body))
		var ls ListFIDsResponse
		_ = ls.Decode(NewDecoder(rsp.Body))
	})
}
