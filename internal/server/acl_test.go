package server

import (
	"errors"
	"sort"
	"testing"

	"swarm/internal/disk"
	"swarm/internal/wire"
)

func TestACLCreateAllowed(t *testing.T) {
	db := NewACLDB()
	aid := db.Create([]wire.ClientID{1, 2})
	if !db.Allowed(aid, 1) || !db.Allowed(aid, 2) {
		t.Fatal("members denied")
	}
	if db.Allowed(aid, 3) {
		t.Fatal("non-member allowed")
	}
}

func TestACLZeroAIDIsOpen(t *testing.T) {
	db := NewACLDB()
	if !db.Allowed(0, 99) {
		t.Fatal("AID 0 should be unprotected")
	}
}

func TestACLUnknownAIDDenies(t *testing.T) {
	db := NewACLDB()
	if db.Allowed(42, 1) {
		t.Fatal("unknown AID allowed access")
	}
}

func TestACLModify(t *testing.T) {
	db := NewACLDB()
	aid := db.Create([]wire.ClientID{1})
	if err := db.Modify(aid, []wire.ClientID{2, 3}, []wire.ClientID{1}); err != nil {
		t.Fatal(err)
	}
	if db.Allowed(aid, 1) {
		t.Fatal("removed member still allowed")
	}
	if !db.Allowed(aid, 2) || !db.Allowed(aid, 3) {
		t.Fatal("added members denied")
	}
	if err := db.Modify(999, nil, nil); !errors.Is(err, ErrNoACL) {
		t.Fatalf("modify unknown ACL: %v", err)
	}
}

func TestACLDelete(t *testing.T) {
	db := NewACLDB()
	aid := db.Create([]wire.ClientID{1})
	if err := db.Delete(aid); err != nil {
		t.Fatal(err)
	}
	if db.Allowed(aid, 1) {
		t.Fatal("deleted ACL still allows access")
	}
	if err := db.Delete(aid); !errors.Is(err, ErrNoACL) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestACLMembers(t *testing.T) {
	db := NewACLDB()
	aid := db.Create([]wire.ClientID{3, 1, 2})
	members, err := db.Members(aid)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	if len(members) != 3 || members[0] != 1 || members[2] != 3 {
		t.Fatalf("members = %v", members)
	}
	if _, err := db.Members(999); !errors.Is(err, ErrNoACL) {
		t.Fatalf("members of unknown ACL: %v", err)
	}
}

func TestACLDistinctAIDs(t *testing.T) {
	db := NewACLDB()
	a := db.Create(nil)
	b := db.Create(nil)
	if a == b {
		t.Fatal("duplicate AID assigned")
	}
}

// TestStoreEnforcesACLRanges exercises the store-level integration:
// protected byte ranges deny non-members while open ranges stay readable.
func TestStoreEnforcesACLRanges(t *testing.T) {
	fragSize := 4096
	d := disk.NewMemDisk(int64(superblockSize + aclRegionSize + 8*(fragSize+entrySize) + fragSize))
	s, err := Format(d, Config{FragmentSize: fragSize})
	if err != nil {
		t.Fatal(err)
	}
	aid := s.ACLs().Create([]wire.ClientID{1})
	fid := wire.MakeFID(1, 0)
	data := make([]byte, 1000)
	ranges := []wire.ACLRange{{Off: 0, Len: 500, AID: aid}}
	if err := s.Store(fid, data, false, ranges); err != nil {
		t.Fatal(err)
	}

	// Owner reads everywhere.
	if _, err := s.Read(1, fid, 0, 1000); err != nil {
		t.Fatalf("owner read: %v", err)
	}
	// Stranger denied on the protected range…
	if _, err := s.Read(2, fid, 0, 100); !errors.Is(err, ErrAccess) {
		t.Fatalf("stranger read protected: %v", err)
	}
	// …and on any overlap…
	if _, err := s.Read(2, fid, 499, 2); !errors.Is(err, ErrAccess) {
		t.Fatalf("stranger read overlapping: %v", err)
	}
	// …but allowed on the unprotected tail.
	if _, err := s.Read(2, fid, 500, 500); err != nil {
		t.Fatalf("stranger read open range: %v", err)
	}

	// Delete requires access to all protected ranges.
	if err := s.Delete(2, fid); !errors.Is(err, ErrAccess) {
		t.Fatalf("stranger delete: %v", err)
	}
	// Adding the stranger to the ACL grants access — "once the client has
	// been added to the appropriate ACLs, all data protected by those
	// ACLs will be accessible" (§2.3.2).
	if err := s.ACLs().Modify(aid, []wire.ClientID{2}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(2, fid, 0, 100); err != nil {
		t.Fatalf("new member read: %v", err)
	}
	if err := s.Delete(2, fid); err != nil {
		t.Fatalf("new member delete: %v", err)
	}
}

func TestACLsPersistAcrossReopen(t *testing.T) {
	fragSize := 4096
	d := disk.NewMemDisk(int64(superblockSize + aclRegionSize + 8*(fragSize+entrySize) + fragSize))
	s, err := Format(d, Config{FragmentSize: fragSize})
	if err != nil {
		t.Fatal(err)
	}
	aid := s.ACLs().Create([]wire.ClientID{1, 2})
	aid2 := s.ACLs().Create([]wire.ClientID{3})
	if err := s.ACLs().Modify(aid, []wire.ClientID{4}, []wire.ClientID{2}); err != nil {
		t.Fatal(err)
	}
	if err := s.ACLs().Delete(aid2); err != nil {
		t.Fatal(err)
	}
	fid := wire.MakeFID(1, 0)
	if err := s.Store(fid, make([]byte, 100), false, []wire.ACLRange{{Off: 0, Len: 100, AID: aid}}); err != nil {
		t.Fatal(err)
	}

	// Server restart: the whole protection state must survive.
	s2, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.ACLs().Allowed(aid, 1) || !s2.ACLs().Allowed(aid, 4) {
		t.Fatal("members lost across restart")
	}
	if s2.ACLs().Allowed(aid, 2) {
		t.Fatal("removed member resurrected")
	}
	if s2.ACLs().Allowed(aid2, 3) {
		t.Fatal("deleted ACL resurrected")
	}
	if _, err := s2.Read(2, fid, 0, 10); !errors.Is(err, ErrAccess) {
		t.Fatalf("stranger read after restart: %v", err)
	}
	if _, err := s2.Read(1, fid, 0, 10); err != nil {
		t.Fatalf("member read after restart: %v", err)
	}
	// AIDs are never reused, even across restarts.
	if next := s2.ACLs().Create(nil); next <= aid2 {
		t.Fatalf("AID %d reused after restart (existing up to %d)", next, aid2)
	}
}

func TestACLRegionTornWriteStartsEmpty(t *testing.T) {
	fragSize := 4096
	d := disk.NewMemDisk(int64(superblockSize + aclRegionSize + 4*(fragSize+entrySize) + fragSize))
	s, err := Format(d, Config{FragmentSize: fragSize})
	if err != nil {
		t.Fatal(err)
	}
	s.ACLs().Create([]wire.ClientID{1})
	// Corrupt the persisted image (valid magic, bad payload CRC).
	if err := d.WriteAt([]byte{0xFF, 0xFF}, superblockSize+14); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(d)
	if err != nil {
		t.Fatalf("open with torn ACL region: %v", err)
	}
	if s2.ACLs().Allowed(1, 1) {
		t.Fatal("corrupt ACL database partially loaded")
	}
}
