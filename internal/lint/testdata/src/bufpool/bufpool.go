// Package bufpool is a swarmlint test fixture: each function exercises
// one bufpool-analyzer behavior, with expected diagnostics declared in
// want comments.
package bufpool

import "swarm/internal/wire"

var registry []byte

func leak() {
	buf := wire.GetBuffer(64) // want "never reaches"
	if len(buf) > 0 {
		buf[0] = 1
	}
}

func discarded() {
	wire.GetBuffer(64) // want "discarded"
}

func blankAssigned() {
	_ = wire.GetBuffer(64) // want "discarded"
}

func released() {
	buf := wire.GetBuffer(64)
	wire.PutBuffer(buf)
}

func releasedResliced() {
	buf := wire.GetBuffer(64)
	buf = buf[:32] // self-reslice is not an escape ...
	wire.PutBuffer(buf)
}

func returned() []byte {
	return wire.GetBuffer(64)
}

func namedResult() (b []byte) {
	b = wire.GetBuffer(64)
	return
}

func storedGlobally() {
	buf := wire.GetBuffer(64)
	registry = buf
}

func sentAway(sink chan []byte) {
	buf := wire.GetBuffer(64)
	sink <- buf
}

func inComposite() [][]byte {
	return [][]byte{wire.GetBuffer(64)}
}

// consume takes ownership of b and releases it. swarmlint:owns-buffer
func consume(b []byte) { wire.PutBuffer(b) }

func borrow(b []byte) {}

func transferred() {
	buf := wire.GetBuffer(64)
	consume(buf)
}

func transferredDirect() {
	consume(wire.GetBuffer(64))
}

func lentDirect() {
	borrow(wire.GetBuffer(64)) // want "does not take ownership"
}

func annotatedSite() {
	buf := wire.GetBuffer(64) // swarmlint:owns-buffer (handed off out of band)
	if len(buf) > 0 {
		buf[0] = 1
	}
}

func doublePut() {
	buf := wire.GetBuffer(64)
	wire.PutBuffer(buf)
	wire.PutBuffer(buf) // want "double wire.PutBuffer"
}

func disjointPuts(cond bool) {
	// One put per path is correct, and must not look like a double put.
	buf := wire.GetBuffer(64)
	if cond {
		wire.PutBuffer(buf)
		return
	}
	wire.PutBuffer(buf)
}
