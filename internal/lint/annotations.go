package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Annotation directives. Each is an escape hatch for one analyzer,
// written in a // comment on (or immediately above) the construct it
// applies to. DESIGN.md §7 documents when each is legitimate.
const (
	// DirectiveOwnsBuffer on a wire.GetBuffer call site asserts the
	// buffer's ownership is handed off in a way the analyzer cannot see;
	// on a function declaration it asserts the function takes ownership
	// of []byte arguments passed to it (a documented ownership-transfer
	// call).
	DirectiveOwnsBuffer = "swarmlint:owns-buffer"
	// DirectiveLocked on a function asserts its callers hold the mutex
	// guarding the fields it touches.
	DirectiveLocked = "swarmlint:locked"
	// DirectiveLockedIO on a statement or function asserts I/O under a
	// held mutex is intentional there (e.g. the serial-commit ablation
	// baseline).
	DirectiveLockedIO = "swarmlint:locked-io"
	// DirectiveIOMutex on a mutex field asserts the mutex exists to
	// serialize I/O (a connection write lock), so I/O under it is its
	// purpose, not a bug.
	DirectiveIOMutex = "swarmlint:io-mutex"
	// DirectiveClassified on an error construction asserts the error is
	// intentionally outside the transient/permanent classification.
	DirectiveClassified = "swarmlint:classified"
	// DirectiveReturnsRef on a function declaration asserts the function
	// hands its caller a counted reference to its refcounted result: the
	// caller must discharge it (Release or hand-off) on every path.
	DirectiveReturnsRef = "swarmlint:returns-ref"
	// DirectiveRefcountOK on an acquisition site or a refcounted struct
	// field asserts the reference's lifecycle is managed in a way the
	// refcount analyzer cannot see (say who releases it).
	DirectiveRefcountOK = "swarmlint:refcount-ok"
	// DirectiveStatusCaseOK on a switch's default clause asserts the
	// default intentionally absorbs the unlisted status values (say why
	// the collapse is safe for future statuses).
	DirectiveStatusCaseOK = "swarmlint:statuscase-ok"
	// DirectiveAtomicOK on a field access asserts a plain read/write of
	// an atomically-accessed field is safe there (e.g. pre-publication
	// initialization before any concurrent access can exist).
	DirectiveAtomicOK = "swarmlint:atomic-ok"
	// DirectiveGoroleakOK on a go statement asserts the goroutine's
	// lifetime is bounded by something the analyzer cannot see (say what
	// terminates it).
	DirectiveGoroleakOK = "swarmlint:goroleak-ok"
)

// guardedByRe extracts the mutex name from a "guarded by <mu>" field
// comment.
var guardedByRe = regexp.MustCompile(`(?i)guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// annotations indexes a package's comments for directive lookups.
type annotations struct {
	fset *token.FileSet
	// byLine maps file → line → concatenated comment text for every
	// line that carries (part of) a comment.
	byLine map[string]map[int]string
	// fieldDocs maps an annotated struct field object to its comment
	// text (Doc ++ trailing line comment).
	fieldDocs map[*types.Var]string
	// funcDocs maps a declared function object to its doc text.
	funcDocs map[*types.Func]string
}

func newAnnotations(p *Package) *annotations {
	a := &annotations{
		fset:      p.Fset,
		byLine:    make(map[string]map[int]string),
		fieldDocs: make(map[*types.Var]string),
		funcDocs:  make(map[*types.Func]string),
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				m := a.byLine[pos.Filename]
				if m == nil {
					m = make(map[int]string)
					a.byLine[pos.Filename] = m
				}
				// A multi-line /* */ comment registers on each line it
				// spans, so "line above" lookups see it.
				end := p.Fset.Position(c.End()).Line
				for line := pos.Line; line <= end; line++ {
					m[line] += c.Text + "\n"
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, fld := range n.Fields.List {
					text := fld.Doc.Text() + " " + fld.Comment.Text()
					if strings.TrimSpace(text) == "" {
						continue
					}
					for _, name := range fld.Names {
						if v, ok := p.Info.Defs[name].(*types.Var); ok {
							a.fieldDocs[v] = text
						}
					}
				}
			case *ast.FuncDecl:
				if n.Doc != nil {
					if fn, ok := p.Info.Defs[n.Name].(*types.Func); ok {
						a.funcDocs[fn] = n.Doc.Text()
					}
				}
			}
			return true
		})
	}
	return a
}

// onLine reports whether a comment containing directive sits on pos's
// line or the line directly above it.
func (a *annotations) onLine(pos token.Pos, directive string) bool {
	p := a.fset.Position(pos)
	m := a.byLine[p.Filename]
	if m == nil {
		return false
	}
	return strings.Contains(m[p.Line], directive) ||
		strings.Contains(m[p.Line-1], directive)
}

// fieldHas reports whether the struct field carries directive in its
// doc or trailing comment.
func (a *annotations) fieldHas(v *types.Var, directive string) bool {
	return strings.Contains(a.fieldDocs[v], directive)
}

// fieldGuard returns the guard mutex name from a field's "guarded by
// <mu>" comment, or "".
func (a *annotations) fieldGuard(v *types.Var) string {
	if m := guardedByRe.FindStringSubmatch(a.fieldDocs[v]); m != nil {
		return m[1]
	}
	return ""
}

// funcHas reports whether a function's doc comment (for declared
// functions) or the line above it (for function literals) carries
// directive.
func (a *annotations) funcHas(info *types.Info, fn ast.Node, directive string) bool {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
			if strings.Contains(a.funcDocs[obj], directive) {
				return true
			}
		}
		return a.onLine(fn.Pos(), directive)
	case *ast.FuncLit:
		return a.onLine(fn.Pos(), directive)
	}
	return false
}

// calleeHas reports whether the function called by call is declared
// with directive in its doc comment. Only functions declared in an
// analyzed package (same load) resolve; external callees report false.
func (a *annotations) calleeHas(info *types.Info, call *ast.CallExpr, directive string) bool {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok {
		return false
	}
	return strings.Contains(a.funcDocs[fn], directive)
}
