// Services: a tour of the service stack the paper sketches in §2.2 —
// atomic recovery units, the logical disk, compression and encryption
// codecs, and ACL-protected storage — all layered on one client's log.
package main

import (
	"bytes"
	"fmt"
	"log"

	"swarm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := swarm.NewLocalCluster(3, swarm.ServerOptions{
		DiskBytes:    64 << 20,
		FragmentSize: 256 << 10,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// A *protected* client: every fragment is stored under an ACL that
	// initially contains only this client (§2.3.2).
	client, err := cluster.Connect(1, swarm.ClientOptions{
		FragmentSize: 256 << 10,
		Protect:      true,
	})
	if err != nil {
		return err
	}
	defer client.Close()

	// --- atomic recovery units (§2.2, after Grimm et al.) -------------
	// Records written inside an ARU reappear after a crash only if the
	// ARU committed first.
	mgr, err := client.NewARUManager(nil)
	if err != nil {
		return err
	}
	transfer := mgr.Begin()
	if err := transfer.Write([]byte("debit account A 100")); err != nil {
		return err
	}
	if err := transfer.Write([]byte("credit account B 100")); err != nil {
		return err
	}
	if err := transfer.Commit(); err != nil {
		return err
	}
	fmt.Printf("ARU %d committed: both records replay together or not at all\n", transfer.ID())

	abandoned := mgr.Begin()
	if err := abandoned.Write([]byte("half-done work")); err != nil {
		return err
	}
	fmt.Printf("ARU %d left uncommitted: its record will never replay\n", abandoned.ID())

	// --- logical disk + compression + encryption ----------------------
	ld, err := client.NewLogicalDisk(16 << 10)
	if err != nil {
		return err
	}
	fl, err := swarm.NewFlateCodec(-1)
	if err != nil {
		return err
	}
	enc, err := swarm.NewAESCodec(bytes.Repeat([]byte{0x5A}, 32))
	if err != nil {
		return err
	}
	ld.SetCodec(swarm.NewCodecChain(fl, enc)) // compress, then encrypt

	document := bytes.Repeat([]byte("confidential and highly compressible. "), 300)
	if err := ld.Write(0, document); err != nil {
		return err
	}
	if err := client.Sync(); err != nil {
		return err
	}
	got, err := ld.Read(0)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, document) {
		return fmt.Errorf("codec roundtrip failed")
	}
	raw := client.Log().Stats().BlockBytes
	fmt.Printf("stored a %d-byte document in %d log bytes (compressed+encrypted), read back intact\n",
		len(document), raw)

	// Nothing on the servers contains the plaintext.
	for i, s := range cluster.Servers() {
		_, _, _, frags := s.Stats()
		fmt.Printf("server %d holds %d opaque fragments (ACL-protected, ciphertext only)\n", i+1, frags)
	}

	// --- crash: only the committed ARU's records come back ------------
	client.Close()
	var replayed []string
	client2, err := cluster.Connect(1, swarm.ClientOptions{FragmentSize: 256 << 10, Protect: true})
	if err != nil {
		return err
	}
	defer client2.Close()
	if _, err := client2.NewARUManager(func(p []byte) error {
		replayed = append(replayed, string(p))
		return nil
	}); err != nil {
		return err
	}
	fmt.Printf("after crash, replayed ARU records: %q\n", replayed)
	if len(replayed) != 2 {
		return fmt.Errorf("expected exactly the committed ARU's 2 records, got %d", len(replayed))
	}
	return nil
}
