// Package disk provides the block-storage substrate under a Swarm storage
// server: a small Disk interface plus three implementations — an in-memory
// disk for tests, a file-backed disk for real deployments, and a simulated
// disk that charges seek, rotation, and transfer time according to the
// performance model of the paper's Quantum Viking II SCSI disk.
package disk

import (
	"errors"
	"fmt"
)

// Common disk errors.
var (
	// ErrOutOfRange is returned when an access extends past the disk.
	ErrOutOfRange = errors.New("disk: access out of range")
	// ErrClosed is returned for operations on a closed disk.
	ErrClosed = errors.New("disk: closed")
)

// Disk is a fixed-size random-access byte store. Implementations must be
// safe for concurrent use.
type Disk interface {
	// ReadAt reads len(p) bytes starting at off.
	ReadAt(p []byte, off int64) error
	// WriteAt writes p starting at off.
	WriteAt(p []byte, off int64) error
	// Sync flushes written data to stable storage.
	Sync() error
	// Size returns the disk capacity in bytes.
	Size() int64
	// Close releases resources; the disk is unusable afterwards.
	Close() error
}

func checkRange(size int64, n int, off int64) error {
	if off < 0 || off+int64(n) > size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, off, off+int64(n), size)
	}
	return nil
}
