package erasure

import "fmt"

// matrix is a dense GF(2^8) matrix, row-major.
type matrix [][]byte

func newMatrix(rows, cols int) matrix {
	m := make(matrix, rows)
	buf := make([]byte, rows*cols)
	for r := range m {
		m[r] = buf[r*cols : (r+1)*cols : (r+1)*cols]
	}
	return m
}

// cauchyParity returns the m×k parity block of the systematic encoding
// matrix: coef[j][i] = 1/(x_j ⊕ y_i) with x_j = k+j and y_i = i. The x
// and y element sets are disjoint, so every denominator is nonzero, and
// a Cauchy matrix has the property that *every* square submatrix is
// invertible — which is exactly the any-k-of-n guarantee: any k rows of
// [I; C] form an invertible system.
func cauchyParity(k, m int) matrix {
	c := newMatrix(m, k)
	for j := 0; j < m; j++ {
		for i := 0; i < k; i++ {
			c[j][i] = inv(byte(k+j) ^ byte(i))
		}
	}
	return c
}

// identityRow returns row i of the k×k identity.
func identityRow(k, i int) []byte {
	row := make([]byte, k)
	row[i] = 1
	return row
}

// invert returns m^-1 via Gauss–Jordan elimination. m is destroyed.
// Decode matrices are at most MaxShards×MaxShards, so cubic elimination
// is microseconds — reconstruction cost is dominated by the shard-sized
// multiply-accumulate loops, not the matrix algebra.
func (m matrix) invert() (matrix, error) {
	n := len(m)
	out := newMatrix(n, n)
	for i := range out {
		out[i][i] = 1
	}
	for col := 0; col < n; col++ {
		// Find a pivot; Cauchy-derived systems always have one, but a
		// caller mixing duplicate rows would not, so fail loudly.
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("erasure: singular decode matrix at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		out[col], out[pivot] = out[pivot], out[col]
		// Scale the pivot row to a leading 1.
		if p := m[col][col]; p != 1 {
			s := inv(p)
			for c := 0; c < n; c++ {
				m[col][c] = mul(s, m[col][c])
				out[col][c] = mul(s, out[col][c])
			}
		}
		// Eliminate the column everywhere else.
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for c := 0; c < n; c++ {
				m[r][c] ^= mul(f, m[col][c])
				out[r][c] ^= mul(f, out[col][c])
			}
		}
	}
	return out, nil
}
