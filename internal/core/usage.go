package core

import (
	"fmt"
	"sort"
	"sync"

	"swarm/internal/wire"
)

// StripeUsage summarizes one stripe for the cleaner: how many bytes were
// ever written to it and how many are still live. The cleaner's
// cost-benefit policy runs on Live/Total utilization.
type StripeUsage struct {
	// Live is the byte count of block entries not yet deleted.
	Live int64
	// Total is the byte count of all entries written to the stripe.
	Total int64
	// Fragments is the number of fragments sealed into the stripe.
	Fragments int
	// Closed reports that the stripe is complete (its parity, when
	// enabled, has been written). Only closed stripes are cleanable.
	Closed bool
}

// Utilization returns Live/Total (0 for empty stripes).
func (u StripeUsage) Utilization() float64 {
	if u.Total == 0 {
		return 0
	}
	return float64(u.Live) / float64(u.Total)
}

// UsageTable tracks per-stripe usage. It is persisted inside checkpoint
// records (the log layer's contribution to every service checkpoint) and
// rolled forward from create/delete records during recovery, so the
// cleaner never rescans the whole log to find garbage.
type UsageTable struct {
	mu sync.Mutex
	m  map[uint64]*StripeUsage // guarded by mu
}

// NewUsageTable returns an empty table.
func NewUsageTable() *UsageTable {
	return &UsageTable{m: make(map[uint64]*StripeUsage)}
}

// get returns (creating if needed) stripe's entry. Callers hold t.mu.
// swarmlint:locked
func (t *UsageTable) get(stripe uint64) *StripeUsage {
	u, ok := t.m[stripe]
	if !ok {
		u = &StripeUsage{}
		t.m[stripe] = u
	}
	return u
}

// AddBlock accounts a live block of n entry bytes in stripe.
func (t *UsageTable) AddBlock(stripe uint64, n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	u := t.get(stripe)
	u.Live += int64(n)
	u.Total += int64(n)
}

// AddRecord accounts n entry bytes of records (dead weight once
// checkpointed) in stripe.
func (t *UsageTable) AddRecord(stripe uint64, n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.get(stripe).Total += int64(n)
}

// DeleteBlock accounts the deletion of a block of n entry bytes from
// stripe.
func (t *UsageTable) DeleteBlock(stripe uint64, n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	u := t.get(stripe)
	u.Live -= int64(n)
	if u.Live < 0 {
		u.Live = 0
	}
}

// FragmentSealed records a sealed fragment for stripe; closed marks the
// stripe complete.
func (t *UsageTable) FragmentSealed(stripe uint64, closed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	u := t.get(stripe)
	u.Fragments++
	if closed {
		u.Closed = true
	}
}

// Drop removes a stripe (after the cleaner reclaims it).
func (t *UsageTable) Drop(stripe uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, stripe)
}

// Get returns a stripe's usage and whether it is tracked.
func (t *UsageTable) Get(stripe uint64) (StripeUsage, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	u, ok := t.m[stripe]
	if !ok {
		return StripeUsage{}, false
	}
	return *u, true
}

// Snapshot returns a copy of the table keyed by stripe ID.
func (t *UsageTable) Snapshot() map[uint64]StripeUsage {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[uint64]StripeUsage, len(t.m))
	for k, v := range t.m {
		out[k] = *v
	}
	return out
}

// Stripes returns tracked stripe IDs in ascending order.
func (t *UsageTable) Stripes() []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint64, 0, len(t.m))
	for k := range t.m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Encode serializes the table for inclusion in a checkpoint record.
func (t *UsageTable) Encode() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]uint64, 0, len(t.m))
	for k := range t.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e := wire.NewEncoder(8 + len(keys)*33)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		u := t.m[k]
		e.U64(k)
		e.U64(uint64(u.Live))
		e.U64(uint64(u.Total))
		e.U32(uint32(u.Fragments))
		e.Bool(u.Closed)
	}
	return e.Bytes()
}

// DecodeUsageTable parses a table serialized by Encode. The table being
// built is private until returned, so no lock is needed.
// swarmlint:locked
func DecodeUsageTable(p []byte) (*UsageTable, error) {
	d := wire.NewDecoder(p)
	n := d.U32()
	if n > 1<<24 {
		return nil, fmt.Errorf("%w: usage table with %d stripes", ErrBadFragment, n)
	}
	t := NewUsageTable()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		k := d.U64()
		t.m[k] = &StripeUsage{
			Live:      int64(d.U64()),
			Total:     int64(d.U64()),
			Fragments: int(d.U32()),
			Closed:    d.Bool(),
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: usage table: %v", ErrBadFragment, err)
	}
	return t, nil
}
