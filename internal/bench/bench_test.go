package bench

import (
	"os"
	"strings"
	"testing"
)

// Small, fast configurations: correctness of the harness, not absolute
// numbers. The shape assertions use generous margins.

// skipUnderRace skips timing-sensitive model tests when the race
// detector's slowdown would distort the measured shapes.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("timing-sensitive performance-model test; skipped under -race")
	}
}

// benchStrict gates the throughput-ratio assertions that depend on the
// host's real scheduling and I/O behavior. The simulated-time model
// reproduces the paper's shapes on an unloaded machine, but hard ratio
// thresholds are nondeterministic on shared or slow hosts; set
// SWARM_BENCH_STRICT=1 to enforce them.
func benchStrict() bool { return os.Getenv("SWARM_BENCH_STRICT") != "" }

func TestWritePointSingleClient(t *testing.T) {
	skipUnderRace(t)
	r, err := RunWritePoint(WriteConfig{Clients: 1, Servers: 2, Blocks: 800, Scale: 20})
	if err != nil {
		t.Fatal(err)
	}
	if r.RawMBps <= 0 || r.UsefulMBps <= 0 {
		t.Fatalf("result = %+v", r)
	}
	if r.UsefulMBps >= r.RawMBps {
		t.Fatalf("useful %.2f ≥ raw %.2f with parity on", r.UsefulMBps, r.RawMBps)
	}
	// With width 2, parity doubles the traffic: useful ≈ raw/2.
	ratio := r.UsefulMBps / r.RawMBps
	if ratio < 0.35 || ratio > 0.6 {
		t.Fatalf("useful/raw = %.2f, want ≈0.5", ratio)
	}
}

func TestWriteClientIsBottleneck(t *testing.T) {
	skipUnderRace(t)
	// Single client raw bandwidth should be in the neighbourhood of the
	// paper's ~6.1 MB/s and grow only slightly with more servers.
	r2, err := RunWritePoint(WriteConfig{Clients: 1, Servers: 2, Blocks: 2000, Scale: 20})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunWritePoint(WriteConfig{Clients: 1, Servers: 8, Blocks: 2000, Scale: 20})
	if err != nil {
		t.Fatal(err)
	}
	if r2.RawMBps < 4.0 || r2.RawMBps > 8.5 {
		t.Fatalf("1c2s raw = %.2f MB/s, want ~6", r2.RawMBps)
	}
	// Raw bandwidth should hold roughly steady as servers are added (the
	// client is the bottleneck); the tight ratio is host-timing-sensitive
	// so it is only enforced in strict mode.
	if r8.RawMBps < r2.RawMBps*0.6 {
		t.Fatalf("raw collapsed with more servers: %.2f -> %.2f", r2.RawMBps, r8.RawMBps)
	}
	if benchStrict() && r8.RawMBps < r2.RawMBps*0.85 {
		t.Fatalf("raw dropped with more servers: %.2f -> %.2f", r2.RawMBps, r8.RawMBps)
	}
	// Useful bandwidth grows with stripe width (parity amortization).
	if r8.UsefulMBps <= r2.UsefulMBps {
		t.Fatalf("useful did not grow with width: %.2f -> %.2f", r2.UsefulMBps, r8.UsefulMBps)
	}
}

func TestWriteScalesWithClients(t *testing.T) {
	skipUnderRace(t)
	r1, err := RunWritePoint(WriteConfig{Clients: 1, Servers: 8, Blocks: 800, Scale: 20})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunWritePoint(WriteConfig{Clients: 4, Servers: 8, Blocks: 800, Scale: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate bandwidth must grow with clients; the near-linear 1.8x
	// bar needs idle CPUs, so it is only enforced in strict mode.
	if r4.UsefulMBps < r1.UsefulMBps*1.1 {
		t.Fatalf("4 clients %.2f MB/s vs 1 client %.2f MB/s: no scaling", r4.UsefulMBps, r1.UsefulMBps)
	}
	if benchStrict() && r4.UsefulMBps < r1.UsefulMBps*1.8 {
		t.Fatalf("4 clients %.2f MB/s vs 1 client %.2f MB/s: sub-linear scaling", r4.UsefulMBps, r1.UsefulMBps)
	}
}

func TestReadPoint(t *testing.T) {
	skipUnderRace(t)
	r, err := RunReadPoint(ReadConfig{Servers: 2, Blocks: 300, Scale: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~1.7 MB/s cold. Accept a broad band around it.
	if r.ColdMBps < 0.8 || r.ColdMBps > 4.0 {
		t.Fatalf("cold read = %.2f MB/s, want ~1.7", r.ColdMBps)
	}
	if r.CachedMBps < r.ColdMBps*10 {
		t.Fatalf("cache speedup too small: %.2f vs %.2f", r.CachedMBps, r.ColdMBps)
	}
	// Prefetch must at least not lose to block-at-a-time cold reads; the
	// decisive 2x margin holds on unloaded hosts but is timing-sensitive,
	// so it is only enforced in strict mode.
	if r.PrefetchMBps < r.ColdMBps {
		t.Fatalf("prefetch %.2f MB/s vs cold %.2f MB/s: readahead not helping", r.PrefetchMBps, r.ColdMBps)
	}
	if benchStrict() && r.PrefetchMBps < r.ColdMBps*2 {
		t.Fatalf("prefetch %.2f MB/s vs cold %.2f MB/s: readahead below strict 2x bar", r.PrefetchMBps, r.ColdMBps)
	}
	t.Logf("cold %.2f, cached %.2f, prefetch %.2f MB/s", r.ColdMBps, r.CachedMBps, r.PrefetchMBps)
}

func TestFigure5Shape(t *testing.T) {
	skipUnderRace(t)
	stingRes, extRes, err := RunFigure5(MABConfig{Scale: 20})
	if err != nil {
		t.Fatal(err)
	}
	if stingRes.Elapsed <= 0 || extRes.Elapsed <= 0 {
		t.Fatalf("elapsed: %v vs %v", stingRes.Elapsed, extRes.Elapsed)
	}
	// Shape: Sting beats ext2fs, and by a factor in the neighbourhood
	// of the paper's ~1.9x.
	speedup := float64(extRes.Elapsed) / float64(stingRes.Elapsed)
	if speedup < 1.2 {
		t.Fatalf("Sting speedup %.2fx, want > 1.2x (sting=%v ext=%v)", speedup, stingRes.Elapsed, extRes.Elapsed)
	}
	// CPU utilization: Sting CPU-bound, ext2fs more disk-bound.
	if stingRes.CPUUtilization <= extRes.CPUUtilization {
		t.Fatalf("CPU util: sting %.2f ≤ ext2 %.2f", stingRes.CPUUtilization, extRes.CPUUtilization)
	}
}

func TestParityAblation(t *testing.T) {
	skipUnderRace(t)
	rows, err := RunParityAblation(800, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Without parity, useful bandwidth must improve.
	if rows[1].UsefulMBps <= rows[0].UsefulMBps {
		t.Fatalf("parity off %.2f ≤ parity on %.2f", rows[1].UsefulMBps, rows[0].UsefulMBps)
	}
}

func TestDegradedReadAblation(t *testing.T) {
	skipUnderRace(t)
	r, err := RunDegradedReadAblation(4000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.DegradedLatency <= 0 {
		t.Fatal("degraded reads failed entirely")
	}
	if r.Reconstructions == 0 {
		t.Fatal("no reconstructions happened")
	}
	if r.DegradedLatency <= r.HealthyLatency {
		t.Fatalf("degraded %v ≤ healthy %v: reconstruction should cost latency", r.DegradedLatency, r.HealthyLatency)
	}
}

func TestReportRendering(t *testing.T) {
	var sb strings.Builder
	PrintWriteResults(&sb, "fig3", []WriteResult{{Clients: 1, Servers: 8, RawMBps: 6.3, UsefulMBps: 5.2}}, true, PaperFigure3)
	if !strings.Contains(sb.String(), "6.4") {
		t.Fatalf("paper reference missing:\n%s", sb.String())
	}
	sb.Reset()
	PrintMABResults(&sb, MABResult{System: "sting", Elapsed: 9e9, CPUUtilization: 0.9}, MABResult{System: "ext", Elapsed: 18e9, CPUUtilization: 0.5})
	if !strings.Contains(sb.String(), "speedup") {
		t.Fatal("MAB render missing speedup")
	}
	sb.Reset()
	PrintReadResult(&sb, ReadResult{Servers: 2, ColdMBps: 1.6, CachedMBps: 900})
	PrintAblation(&sb, "t", []AblationResult{{Name: "x", RawMBps: 1, UsefulMBps: 2}})
	PrintDegradedRead(&sb, DegradedReadResult{Servers: 4, HealthyLatency: 2e6, DegradedLatency: 9e6, Reconstructions: 3})
	if sb.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestWriteSweepSmall(t *testing.T) {
	res, err := RunWriteSweep([]int{1}, []int{2, 4}, WriteConfig{Blocks: 400, Scale: 25}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("points = %d", len(res))
	}
}

func TestFragmentAndPipelineAblations(t *testing.T) {
	skipUnderRace(t)
	rows, err := RunFragmentSizeAblation(400, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("fragment rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RawMBps <= 0 {
			t.Fatalf("%s measured %.2f MB/s", r.Name, r.RawMBps)
		}
		t.Logf("fragment %s: %.2f MB/s raw", r.Name, r.RawMBps)
	}
	// The seek-bound ordering (smallest fragments slowest) reproduces on
	// unloaded hosts but inverts under background load; strict mode only.
	if benchStrict() {
		for _, r := range rows[2:] {
			if rows[0].RawMBps >= r.RawMBps {
				t.Fatalf("128KB (%.2f) not slower than %s (%.2f)", rows[0].RawMBps, r.Name, r.RawMBps)
			}
		}
	}
	// The pipeline effect needs enough fragments for steady state.
	prows, err := RunPipelineAblation(2000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(prows) != 3 {
		t.Fatalf("pipeline rows = %d", len(prows))
	}
	for _, r := range prows {
		if r.RawMBps <= 0 {
			t.Fatalf("%s measured %.2f MB/s", r.Name, r.RawMBps)
		}
		t.Logf("pipeline %s: %.2f MB/s raw", r.Name, r.RawMBps)
	}
	if benchStrict() && prows[1].RawMBps < prows[0].RawMBps*1.2 {
		t.Fatalf("depth 2 (%.2f) not better than depth 1 (%.2f)", prows[1].RawMBps, prows[0].RawMBps)
	}
}

func TestClusterStoresAccessor(t *testing.T) {
	c, err := NewSimCluster(ClusterConfig{Servers: 2, DiskBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Stores()) != 2 {
		t.Fatalf("stores = %d", len(c.Stores()))
	}
}
