// Erasure-coding benchmark: what a (k, m) geometry costs on the write
// path (amplification: stored bytes per useful byte) and what it costs
// to reconstruct after the worst tolerated failure (m servers dead at
// once). Like the reconstruction benchmark, the decode phase injects
// explicit per-server latency through transport.Flaky, so the shapes
// are stable on loaded hosts and under the race detector.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"swarm/internal/core"
	"swarm/internal/disk"
	"swarm/internal/erasure"
	"swarm/internal/server"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// ErasureConfig parameterizes the (k, m) sweep.
type ErasureConfig struct {
	// Stripes is how many closed stripes to write per configuration.
	Stripes int
	// Latency is the injected per-request server latency during the
	// reconstruction phase.
	Latency time.Duration
}

// ErasureResult is one (k, m) point.
type ErasureResult struct {
	K     int    `json:"k"`
	M     int    `json:"m"`
	Codec string `json:"codec"`
	// UsefulBytes is application payload appended; StoredBytes is what
	// the servers hold for it (data + parity + headers).
	UsefulBytes int64   `json:"useful_bytes"`
	StoredBytes int64   `json:"stored_bytes"`
	WriteAmp    float64 `json:"write_amp"`
	// LostFragments were reconstructed with m servers down — every
	// decode runs at exactly k survivors, the worst tolerated case.
	LostFragments int           `json:"lost_fragments"`
	ReconTime     time.Duration `json:"recon_ns"`
	ReconPerFrag  time.Duration `json:"recon_per_frag_ns"`
}

// RunErasureBench measures one (k, m) geometry: write amplification on
// a healthy cluster of k+m servers, then reconstruction cost with m
// servers down simultaneously.
func RunErasureBench(k, m int, cfg ErasureConfig) (ErasureResult, error) {
	if cfg.Stripes == 0 {
		cfg.Stripes = 3
	}
	if cfg.Latency == 0 {
		cfg.Latency = 10 * time.Millisecond
	}
	const fragSize = 4096
	client := wire.ClientID(1)
	width := k + m

	kind := erasure.KindXOR
	if m > 1 {
		kind = erasure.KindRS
	}

	flakies := make([]*transport.Flaky, width)
	conns := make([]transport.ServerConn, width)
	for i := 0; i < width; i++ {
		st, err := server.Format(disk.NewMemDisk(8<<20), server.Config{FragmentSize: fragSize})
		if err != nil {
			return ErasureResult{}, fmt.Errorf("format server %d: %w", i, err)
		}
		flakies[i] = transport.NewFlaky(transport.NewLocal(wire.ServerID(i+1), st, client))
		conns[i] = flakies[i]
	}
	log, _, err := core.Open(core.Config{
		Client: client, Servers: conns, FragmentSize: fragSize,
		ParityShards: m, Codec: kind,
	})
	if err != nil {
		return ErasureResult{}, err
	}
	defer log.Close()

	block := make([]byte, 600)
	var useful int64
	wantSeqs := uint64(cfg.Stripes * width)
	for log.NextPos().Seq < wantSeqs {
		if _, err := log.AppendBlock(7, block, nil); err != nil {
			return ErasureResult{}, err
		}
		useful += int64(len(block))
	}
	if err := log.Sync(); err != nil {
		return ErasureResult{}, err
	}

	// Stored footprint: every fragment frame held by every server.
	var stored int64
	for _, c := range conns {
		fids, err := c.List(client)
		if err != nil {
			return ErasureResult{}, err
		}
		for _, fid := range fids {
			size, ok, err := c.Has(fid)
			if err != nil || !ok {
				return ErasureResult{}, fmt.Errorf("stat fragment %v: %w", fid, err)
			}
			stored += int64(size)
		}
	}

	// Which closed-stripe fragments die with the first m servers.
	var lost []wire.FID
	for i := 0; i < m; i++ {
		fids, err := conns[i].List(client)
		if err != nil {
			return ErasureResult{}, err
		}
		for _, fid := range fids {
			if fid.Seq() < wantSeqs {
				lost = append(lost, fid)
			}
		}
	}
	if len(lost) == 0 {
		return ErasureResult{}, fmt.Errorf("victim servers hold no closed-stripe fragments")
	}

	// Kill m servers at once and reconstruct everything they held:
	// every decode sees exactly k survivors.
	for i := 0; i < m; i++ {
		flakies[i].SetDown(true)
	}
	for _, fl := range flakies {
		fl.SetLatency(cfg.Latency)
	}
	start := time.Now()
	for _, fid := range lost {
		if _, _, err := log.FetchFragment(fid); err != nil {
			return ErasureResult{}, fmt.Errorf("reconstruct %v with %d servers down: %w", fid, m, err)
		}
	}
	recon := time.Since(start)

	return ErasureResult{
		K: k, M: m, Codec: kind.String(),
		UsefulBytes: useful, StoredBytes: stored,
		WriteAmp:      float64(stored) / float64(useful),
		LostFragments: len(lost),
		ReconTime:     recon,
		ReconPerFrag:  recon / time.Duration(len(lost)),
	}, nil
}

// RunErasureSweep runs the benchmark at each (k, m) geometry.
func RunErasureSweep(geometries [][2]int, cfg ErasureConfig) ([]ErasureResult, error) {
	var out []ErasureResult
	for _, g := range geometries {
		r, err := RunErasureBench(g[0], g[1], cfg)
		if err != nil {
			return out, fmt.Errorf("RS(%d,%d): %w", g[0], g[1], err)
		}
		out = append(out, r)
	}
	return out, nil
}

// PrintErasureResults renders the write-amplification vs
// reconstruction-cost table.
func PrintErasureResults(w io.Writer, rows []ErasureResult) {
	fmt.Fprintf(w, "Erasure geometries — write amplification vs reconstruction cost (m servers down)\n")
	fmt.Fprintf(w, "%-10s %-8s %-12s %-12s %-12s %-14s %s\n",
		"(k,m)", "codec", "write amp", "ideal", "lost frags", "recon total", "recon/frag")
	for _, r := range rows {
		ideal := float64(r.K+r.M) / float64(r.K)
		fmt.Fprintf(w, "(%d,%d)%-5s %-8s %-12.3f %-12.3f %-12d %-14v %v\n",
			r.K, r.M, "", r.Codec, r.WriteAmp, ideal, r.LostFragments,
			r.ReconTime.Round(time.Millisecond), r.ReconPerFrag.Round(time.Millisecond))
	}
	fmt.Fprintln(w)
}

// WriteErasureJSON writes the machine-readable benchmark record
// (consumed by CI and tracked across PRs in EXPERIMENTS.md).
func WriteErasureJSON(path string, rows []ErasureResult) error {
	doc := struct {
		Figure  string          `json:"figure"`
		Meta    RunMeta         `json:"meta"`
		Results []ErasureResult `json:"results"`
	}{
		Figure:  "erasure",
		Meta:    NewRunMeta(),
		Results: rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
