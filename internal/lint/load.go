package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Loader loads and type-checks packages without golang.org/x/tools:
// `go list -deps -export -json` supplies the package graph and compiled
// export data for every dependency, target packages are parsed from
// source with go/parser, and go/types checks them against the export
// data through the stdlib gc importer.
type Loader struct {
	Dir  string // module root (where go list runs)
	Fset *token.FileSet

	listed map[string]*listedPackage
	roots  []string
	imp    types.Importer
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// NewLoader runs `go list` for patterns under dir and prepares an
// importer over the reported export data. The listing includes all
// transitive dependencies, so fixture packages that import analyzed
// packages (or the stdlib) type-check against the same snapshot.
func NewLoader(dir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	l := &Loader{
		Dir:    dir,
		Fset:   token.NewFileSet(),
		listed: make(map[string]*listedPackage),
	}
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		l.listed[p.ImportPath] = &p
		if !p.DepOnly {
			l.roots = append(l.roots, p.ImportPath)
		}
	}
	sort.Strings(l.roots)
	l.imp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		lp := l.listed[path]
		if lp == nil || lp.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(lp.Export)
	})
	return l, nil
}

// Roots returns the import paths matched by the loader's patterns (not
// their dependencies), sorted.
func (l *Loader) Roots() []string { return l.roots }

// Load parses and type-checks the root packages (skipping any with no
// non-test Go files).
func (l *Loader) Load() ([]*Package, error) {
	var out []*Package
	for _, path := range l.roots {
		lp := l.listed[path]
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		p, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// CheckDir parses and type-checks every .go file in dir as a package
// with the given import path. This is how the test harness loads
// fixture packages that live under testdata (invisible to go list) but
// import analyzed packages.
func (l *Loader) CheckDir(path, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return l.check(path, files)
}

// check parses files and type-checks them as one package.
func (l *Loader) check(path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: l.Fset, Files: files, Types: pkg, Info: info}, nil
}

// ModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
