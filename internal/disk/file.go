package disk

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// FileDisk is a Disk backed by a regular file, used by real (non-simulated)
// storage-server deployments.
type FileDisk struct {
	mu     sync.RWMutex
	f      *os.File
	size   int64
	closed bool
}

var _ Disk = (*FileDisk)(nil)

// syncDir fsyncs a directory so a freshly created directory entry is
// durable. A test hook so durability behavior is assertable.
var syncDir = func(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	return df.Sync()
}

// OpenFileDisk opens (creating if necessary) a file-backed disk of the
// given size at path. An existing file is reused if it has the right size;
// a new or short file is extended. Creating or extending the file syncs
// both the file and its parent directory, so a freshly formatted server
// survives power loss: without the directory fsync the file's very
// existence (and its new length) may still live only in the page cache.
func OpenFileDisk(path string, size int64) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open disk file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("stat disk file: %w", err)
	}
	if st.Size() > size {
		f.Close()
		return nil, fmt.Errorf("disk file %s is %d bytes, larger than requested %d", path, st.Size(), size)
	}
	if st.Size() < size {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, fmt.Errorf("extend disk file: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("sync extended disk file: %w", err)
		}
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, fmt.Errorf("sync disk directory: %w", err)
		}
	}
	return &FileDisk{f: f, size: size}, nil
}

// ReadAt implements Disk.
func (d *FileDisk) ReadAt(p []byte, off int64) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	if err := checkRange(d.size, len(p), off); err != nil {
		return err
	}
	_, err := d.f.ReadAt(p, off)
	return err
}

// WriteAt implements Disk.
func (d *FileDisk) WriteAt(p []byte, off int64) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	if err := checkRange(d.size, len(p), off); err != nil {
		return err
	}
	_, err := d.f.WriteAt(p, off)
	return err
}

// Sync implements Disk.
func (d *FileDisk) Sync() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	return d.f.Sync()
}

// Size implements Disk.
func (d *FileDisk) Size() int64 { return d.size }

// Close implements Disk.
func (d *FileDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}
