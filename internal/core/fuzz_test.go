package core

import (
	"testing"

	"swarm/internal/wire"
)

// Fuzz targets: every parser that consumes bytes from the network or disk
// must tolerate arbitrary input without panicking. `go test` runs the
// seed corpus; `go test -fuzz=FuzzX` explores further.

func FuzzDecodeHeader(f *testing.F) {
	h := Header{Kind: FragData, Width: 4, Index: 1, FID: wire.MakeFID(1, 5), StripeID: 1, DataLen: 100}
	f.Add(EncodeHeader(&h))
	f.Add([]byte{})
	f.Add(make([]byte, HeaderSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeHeader(data)
		if err == nil {
			// Anything that decodes must satisfy the invariants the
			// reader relies on.
			if got.Width == 0 || got.Width > MaxWidth || got.Index >= got.Width {
				t.Fatalf("invalid header accepted: %+v", got)
			}
			if got.Kind != FragData && got.Kind != FragParity {
				t.Fatalf("bad kind accepted: %+v", got)
			}
		}
	})
}

func FuzzIterEntries(f *testing.F) {
	buf := make([]byte, 256)
	off := AppendEntry(buf, 0, EntryBlock, 3, []byte("payload"))
	off = AppendEntry(buf, off, EntryRecord, 4, []byte("rec"))
	f.Add(buf[:off])
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		count := 0
		_ = IterEntries(data, func(e Entry) bool {
			count++
			// Payload must stay within the input.
			if int(e.Off)+EntryHdrSize+len(e.Payload) > len(data) {
				t.Fatal("entry payload escapes buffer")
			}
			return count < 10000
		})
	})
}

func FuzzDecodeCheckpointRecord(f *testing.F) {
	rec := CheckpointRecord{
		Directory: map[ServiceID]BlockAddr{1: {FID: 2, Off: 3}},
		Payload:   []byte("state"),
		Usage:     NewUsageTable().Encode(),
	}
	f.Add(EncodeCheckpointRecord(&rec))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if ckpt, err := DecodeCheckpointRecord(data); err == nil {
			_, _ = DecodeUsageTable(ckpt.Usage)
		}
		_, _ = DecodeCreateRecord(data)
		_, _ = DecodeDeleteRecord(data)
		_, _ = DecodeUsageTable(data)
	})
}
