package placement

import (
	"errors"
	"testing"

	"swarm/internal/transport"
	"swarm/internal/wire"
)

// stubConn implements only ID(); placement never calls anything else.
type stubConn struct {
	transport.ServerConn
	id wire.ServerID
}

func (s stubConn) ID() wire.ServerID { return s.id }

func stubs(ids ...wire.ServerID) []transport.ServerConn {
	out := make([]transport.ServerConn, len(ids))
	for i, id := range ids {
		out[i] = stubConn{id: id}
	}
	return out
}

func newMap(t *testing.T, ids ...wire.ServerID) *Map {
	t.Helper()
	m, err := New(stubs(ids...))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewRejectsDuplicateIDs(t *testing.T) {
	if _, err := New(stubs(1, 2, 1)); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestServerAtRotatesOverDistinctServers(t *testing.T) {
	m := newMap(t, 1, 2, 3, 4)
	v := m.Head()
	if v.Epoch != 0 {
		t.Fatalf("fresh map epoch = %d, want 0", v.Epoch)
	}
	for stripe := uint64(0); stripe < 8; stripe++ {
		seen := make(map[wire.ServerID]bool)
		for slot := 0; slot < 4; slot++ {
			id := v.ServerAt(stripe, slot)
			if seen[id] {
				t.Fatalf("stripe %d: server %d placed twice", stripe, id)
			}
			seen[id] = true
		}
		// The rotation matches the historical (stripe+slot) mod n rule.
		if got, want := v.ServerAt(stripe, 0), wire.ServerID(1+(stripe%4)); got != want {
			t.Fatalf("stripe %d slot 0 on %d, want %d", stripe, got, want)
		}
	}
}

func TestJoinPublishesNewEpoch(t *testing.T) {
	m := newMap(t, 1, 2, 3)
	if got := m.NextID(); got != 4 {
		t.Fatalf("NextID = %d, want 4", got)
	}
	epoch, err := m.Join(stubConn{id: 4})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if epoch != 1 || m.Epoch() != 1 {
		t.Fatalf("epoch after join = %d/%d, want 1", epoch, m.Epoch())
	}
	if n := m.Head().NumActive(); n != 4 {
		t.Fatalf("active after join = %d, want 4", n)
	}
	// The epoch-0 view still places over the original three servers.
	old := m.View(0)
	for stripe := uint64(0); stripe < 6; stripe++ {
		for slot := 0; slot < 3; slot++ {
			if id := old.ServerAt(stripe, slot); id == 4 {
				t.Fatal("epoch 0 placed on the joined server")
			}
		}
	}
	if _, err := m.Join(stubConn{id: 2}); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestDrainExcludesFromPlacementAndEnforcesWidth(t *testing.T) {
	m := newMap(t, 1, 2, 3, 4)
	if _, err := m.Drain(2, 4); !errors.Is(err, ErrBelowWidth) {
		t.Fatalf("drain below width: err = %v, want ErrBelowWidth", err)
	}
	epoch, err := m.Drain(2, 3)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if epoch != 1 {
		t.Fatalf("epoch = %d, want 1", epoch)
	}
	head := m.Head()
	if head.NumActive() != 3 {
		t.Fatalf("active = %d, want 3", head.NumActive())
	}
	for stripe := uint64(0); stripe < 9; stripe++ {
		for slot := 0; slot < 3; slot++ {
			if head.ServerAt(stripe, slot) == 2 {
				t.Fatal("head epoch placed on draining server")
			}
		}
	}
	if st, ok := head.StateOf(2); !ok || st != Draining {
		t.Fatalf("state of 2 = %v/%v, want Draining", st, ok)
	}
	// Idempotent: draining again returns the same epoch.
	again, err := m.Drain(2, 3)
	if err != nil || again != 1 {
		t.Fatalf("re-drain = %d, %v", again, err)
	}
	if _, err := m.Drain(9, 3); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("drain unknown: %v", err)
	}
}

func TestRemoveRequiresDrainAndFallsForward(t *testing.T) {
	m := newMap(t, 1, 2, 3, 4)
	if _, err := m.Remove(3); !errors.Is(err, ErrNotDraining) {
		t.Fatalf("remove active: %v, want ErrNotDraining", err)
	}
	if _, err := m.Drain(3, 3); err != nil {
		t.Fatal(err)
	}
	// Pick a (stripe, slot) that epoch 0 assigned to server 3.
	var stripe uint64
	var slot int
	found := false
	v0 := m.View(0)
	for s := uint64(0); s < 4 && !found; s++ {
		for i := 0; i < 4 && !found; i++ {
			if v0.ServerAt(s, i) == 3 {
				stripe, slot, found = s, i, true
			}
		}
	}
	if !found {
		t.Fatal("no slot on server 3")
	}
	// While draining, the old epoch still resolves to the drained server
	// (it keeps serving reads until its fragments migrate).
	if sc := m.Resolve(0, stripe, slot); sc == nil || sc.ID() != 3 {
		t.Fatalf("resolve while draining = %v, want server 3", sc)
	}
	if _, err := m.Remove(3); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if m.Conn(3) != nil {
		t.Fatal("removed server still has a conn")
	}
	// After removal, epoch-0 resolution falls forward to the head view's
	// assignment for the same slot.
	sc := m.Resolve(0, stripe, slot)
	if sc == nil || sc.ID() == 3 {
		t.Fatalf("resolve after remove = %v, want fall-forward", sc)
	}
	if want := m.Head().ServerAt(stripe, slot); sc.ID() != want {
		t.Fatalf("fall-forward to %d, want head assignment %d", sc.ID(), want)
	}
	// IDs are never reused, even after removal.
	if got := m.NextID(); got != 5 {
		t.Fatalf("NextID after remove = %d, want 5", got)
	}
	if len(m.Conns()) != 3 {
		t.Fatalf("Conns = %d members, want 3", len(m.Conns()))
	}
}

func TestResolveUnknownEpochReturnsNil(t *testing.T) {
	m := newMap(t, 1, 2)
	if sc := m.Resolve(7, 0, 0); sc != nil {
		t.Fatalf("unknown epoch resolved to %v", sc)
	}
}

func TestSnapshotCopiesMembers(t *testing.T) {
	m := newMap(t, 1, 2, 3)
	info := m.Snapshot()
	info.Members[0].State = Draining
	if st, _ := m.Head().StateOf(1); st != Active {
		t.Fatal("snapshot aliases live view")
	}
}
