package wire

import (
	"strings"
	"testing"
)

// TestAllStatusesPinned keeps the Status const block and the
// AllStatuses table from drifting: statusCount sits one past the last
// member, so a status added to the block without a table entry (or the
// reverse) changes one side of these equalities and fails here. The
// resilient transport's retry classifier and every statuscase-checked
// switch trust this list to be the whole enum.
func TestAllStatusesPinned(t *testing.T) {
	all := AllStatuses()
	if got, want := len(all), int(statusCount-StatusOK); got != want {
		t.Fatalf("AllStatuses lists %d statuses, const block defines %d", got, want)
	}
	seen := make(map[Status]bool, len(all))
	var max Status
	for _, s := range all {
		if s < StatusOK || s >= statusCount {
			t.Fatalf("AllStatuses contains %d, outside [%d, %d)", s, StatusOK, statusCount)
		}
		if seen[s] {
			t.Fatalf("AllStatuses lists %v twice", s)
		}
		seen[s] = true
		if s > max {
			max = s
		}
	}
	if max != statusCount-1 {
		t.Fatalf("AllStatuses max is %d, const block max is %d", max, statusCount-1)
	}
}

// TestStatusStringsNamed: every defined status has a real name — the
// "status(n)" fallback is for codes newer builds define, not members.
func TestStatusStringsNamed(t *testing.T) {
	for _, s := range AllStatuses() {
		if name := s.String(); strings.HasPrefix(name, "status(") {
			t.Errorf("status %d has no String case", s)
		}
	}
	if got := Status(200).String(); !strings.HasPrefix(got, "status(") {
		t.Errorf("unknown status renders %q, want the numeric fallback", got)
	}
}
