package service

import (
	"errors"
	"testing"

	"swarm/internal/core"
	"swarm/internal/disk"
	"swarm/internal/server"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// fakeService records every callback for assertions.
type fakeService struct {
	Base
	id         core.ServiceID
	checkpoint []byte
	restored   bool
	replayed   []core.ReplayEntry
	moves      []string
	demands    int
	replayErr  error
}

func (f *fakeService) ID() core.ServiceID { return f.id }

func (f *fakeService) Replay(rec core.ReplayEntry) error {
	if f.replayErr != nil {
		return f.replayErr
	}
	if !f.restored {
		return errors.New("replay before checkpoint restore")
	}
	f.replayed = append(f.replayed, rec)
	return nil
}

func (f *fakeService) RestoreCheckpoint(payload []byte) error {
	f.restored = true
	f.checkpoint = payload
	return nil
}

func (f *fakeService) BlockMoved(old, newAddr core.BlockAddr, length uint32, hint []byte) error {
	f.moves = append(f.moves, old.String()+"->"+newAddr.String())
	return nil
}

func (f *fakeService) CheckpointDemand() error {
	f.demands++
	return nil
}

func newTestLog(t *testing.T) *core.Log {
	t.Helper()
	d := disk.NewMemDisk(4 << 20)
	st, err := server.Format(d, server.Config{FragmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := core.Open(core.Config{
		Client:       1,
		Servers:      []transport.ServerConn{transport.NewLocal(1, st, 1)},
		FragmentSize: 4096,
		Width:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestRegisterReplaysCheckpointThenRecords(t *testing.T) {
	reg := NewRegistry(newTestLog(t))
	svc := &fakeService{id: 7}
	recovered := &core.RecoveredService{
		Checkpoint:    []byte("state"),
		HasCheckpoint: true,
		Records: []core.ReplayEntry{
			{Kind: core.EntryRecord, Svc: 7, Payload: []byte("r1")},
			{Kind: core.EntryRecord, Svc: 7, Payload: []byte("r2")},
		},
	}
	if err := reg.Register(svc, recovered); err != nil {
		t.Fatal(err)
	}
	if string(svc.checkpoint) != "state" {
		t.Fatalf("checkpoint = %q", svc.checkpoint)
	}
	if len(svc.replayed) != 2 || string(svc.replayed[0].Payload) != "r1" || string(svc.replayed[1].Payload) != "r2" {
		t.Fatalf("replayed = %v", svc.replayed)
	}
}

func TestRegisterNilRecovered(t *testing.T) {
	reg := NewRegistry(newTestLog(t))
	svc := &fakeService{id: 7}
	if err := reg.Register(svc, nil); err != nil {
		t.Fatal(err)
	}
	if !svc.restored || svc.checkpoint != nil {
		t.Fatalf("restore = (%v,%v)", svc.restored, svc.checkpoint)
	}
}

func TestRegisterDuplicateID(t *testing.T) {
	reg := NewRegistry(newTestLog(t))
	if err := reg.Register(&fakeService{id: 7}, nil); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(&fakeService{id: 7}, nil); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate register: %v", err)
	}
}

func TestRegisterReplayErrorPropagates(t *testing.T) {
	reg := NewRegistry(newTestLog(t))
	boom := errors.New("boom")
	svc := &fakeService{id: 7, replayErr: boom}
	recovered := &core.RecoveredService{
		Records: []core.ReplayEntry{{Kind: core.EntryRecord, Svc: 7}},
	}
	if err := reg.Register(svc, recovered); !errors.Is(err, boom) {
		t.Fatalf("replay error: %v", err)
	}
}

func TestLookup(t *testing.T) {
	reg := NewRegistry(newTestLog(t))
	svc := &fakeService{id: 9}
	if err := reg.Register(svc, nil); err != nil {
		t.Fatal(err)
	}
	got, err := reg.Lookup(9)
	if err != nil || got != Service(svc) {
		t.Fatalf("lookup = (%v,%v)", got, err)
	}
	if _, err := reg.Lookup(1); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("lookup unknown: %v", err)
	}
	if n := len(reg.Services()); n != 1 {
		t.Fatalf("services = %d", n)
	}
}

func TestNotifyBlockMoved(t *testing.T) {
	reg := NewRegistry(newTestLog(t))
	svc := &fakeService{id: 5}
	if err := reg.Register(svc, nil); err != nil {
		t.Fatal(err)
	}
	old := core.BlockAddr{FID: wire.MakeFID(1, 0), Off: 1}
	newAddr := core.BlockAddr{FID: wire.MakeFID(1, 9), Off: 2}
	if err := reg.NotifyBlockMoved(5, old, newAddr, 128, nil); err != nil {
		t.Fatal(err)
	}
	if len(svc.moves) != 1 {
		t.Fatalf("moves = %v", svc.moves)
	}
	if err := reg.NotifyBlockMoved(99, old, newAddr, 128, nil); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("move to unknown: %v", err)
	}
}

func TestDemandCheckpoints(t *testing.T) {
	l := newTestLog(t)
	reg := NewRegistry(l)
	stale := &fakeService{id: 2}
	fresh := &fakeService{id: 3}
	if err := reg.Register(stale, nil); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(fresh, nil); err != nil {
		t.Fatal(err)
	}
	// fresh checkpoints now; stale never does.
	if _, err := l.WriteCheckpoint(3, []byte("x")); err != nil {
		t.Fatal(err)
	}
	floor := l.NextPos()
	// Give fresh a checkpoint at/after demand floor: re-checkpoint.
	if _, err := l.WriteCheckpoint(3, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := reg.DemandCheckpoints(floor); err != nil {
		t.Fatal(err)
	}
	if stale.demands != 1 {
		t.Fatalf("stale demands = %d", stale.demands)
	}
	if fresh.demands != 0 {
		t.Fatalf("fresh demands = %d", fresh.demands)
	}
}

func TestBaseDefaults(t *testing.T) {
	var b Base
	if err := b.RestoreCheckpoint(nil); err != nil {
		t.Fatal(err)
	}
	if err := b.BlockMoved(core.BlockAddr{}, core.BlockAddr{}, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckpointDemand(); err != nil {
		t.Fatal(err)
	}
	if !b.BlockLive(core.BlockAddr{}, nil) {
		t.Fatal("Base.BlockLive must default to live")
	}
}
