package core

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestConcurrentReadsShareOneReconstruction proves the engine's
// singleflight: N readers racing for the same lost fragment must pay for
// exactly one stripe reconstruction, not N. Latency on the surviving
// servers holds the first flight open long enough that every reader
// arrives while it is still in progress.
func TestConcurrentReadsShareOneReconstruction(t *testing.T) {
	c := newTestCluster(t, 4)
	l, _ := c.open(t, Config{})
	defer l.Close()

	var addrs []BlockAddr
	var blocks [][]byte
	for i := 0; i < 60; i++ {
		b := blockPattern(i, 600)
		addrs = append(addrs, mustAppend(t, l, 7, b))
		blocks = append(blocks, b)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	// Kill the server holding the first block's fragment and slow the
	// survivors so the reconstruction flight stays open.
	fid := addrs[0].FID
	sid := l.locations[fid]
	c.flaky[sid-1].SetDown(true)
	for _, fl := range c.flaky {
		fl.SetLatency(50 * time.Millisecond)
	}
	defer func() {
		for _, fl := range c.flaky {
			fl.SetLatency(0)
		}
	}()

	const readers = 8
	start := make(chan struct{})
	errs := make([]error, readers)
	got := make([][]byte, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			got[i], errs[i] = l.Read(addrs[0], 0, 600)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], blocks[0]) {
			t.Fatalf("reader %d: data mismatch", i)
		}
	}
	if n := l.Stats().Reconstructions; n != 1 {
		t.Fatalf("%d concurrent readers caused %d reconstructions, want exactly 1", readers, n)
	}
}

// TestReconstructionFanOutLatency injects per-server latency and checks
// that reconstructing a width-8 stripe member costs about one round trip
// (max over members), not the sum of seven sequential fetches — the
// whole point of the engine's parallel gather.
func TestReconstructionFanOutLatency(t *testing.T) {
	const lat = 50 * time.Millisecond
	c := newTestCluster(t, 8)
	l, _ := c.open(t, Config{})
	defer l.Close()

	var addrs []BlockAddr
	for i := 0; i < 80; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 600)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	fid := addrs[0].FID
	sid := l.locations[fid]
	c.flaky[sid-1].SetDown(true)
	for _, fl := range c.flaky {
		fl.SetLatency(lat)
	}
	defer func() {
		for _, fl := range c.flaky {
			fl.SetLatency(0)
		}
	}()

	t0 := time.Now()
	h, _, err := l.FetchFragment(fid)
	elapsed := time.Since(t0)
	if err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	if h.FID != fid {
		t.Fatalf("header FID = %v, want %v", h.FID, fid)
	}
	if l.Stats().Reconstructions != 1 {
		t.Fatalf("Reconstructions = %d, want 1", l.Stats().Reconstructions)
	}
	// The parallel path pays ~4 latency hops: the failed direct read,
	// the sibling-header probe, then one header and one payload round
	// trip shared by all 7 gathered members. A serial member loop pays
	// those same 2 fetch round trips per member: ≥ 14 hops for the
	// gather alone. Assert under half the serial gather floor.
	if serialFloor := 7 * 2 * lat; elapsed >= serialFloor/2 {
		t.Fatalf("reconstruction took %v; serial gather floor is %v — members were not fetched in parallel", elapsed, serialFloor)
	}
}
