package bench

import (
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// smokeWirepathConfig is deliberately tiny: enough RPCs at enough
// latency that the multiplexed/lock-step shape is visible, small enough
// for the default `make ci` run (`make bench-smoke`).
var smokeWirepathConfig = WirepathConfig{
	Stores:    48,
	PayloadKB: 64,
	Pool:      2,
	Workers:   16,
	RTT:       3 * time.Millisecond,
}

func TestWirepathSmoke(t *testing.T) {
	rows, err := RunWirepath(smokeWirepathConfig, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "lockstep" || rows[1].Mode != "multiplexed" {
		t.Fatalf("unexpected result shape: %+v", rows)
	}
	for _, r := range rows {
		if r.MBps <= 0 || r.ElapsedMS <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Mode, r)
		}
	}
	PrintWirepathResults(io.Discard, rows)

	path := filepath.Join(t.TempDir(), "BENCH_wirepath.json")
	if err := WriteWirepathJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("json record not written: %v", err)
	}

	// The throughput-ratio assertion depends on real host scheduling, so
	// it is opt-in (SWARM_BENCH_STRICT) like the other benchmark ratios.
	speedup := WirepathSpeedup(rows)
	if benchStrict() {
		if speedup < 2 {
			t.Errorf("multiplexed/lock-step speedup %.2fx, want >= 2x at pool %d with %v RTT",
				speedup, smokeWirepathConfig.Pool, smokeWirepathConfig.RTT)
		}
	} else if speedup < 1 {
		t.Logf("note: multiplexed slower than lock-step (%.2fx) on this host", speedup)
	}
}

// TestWirepathAllocs pins the wire path's allocation behavior end to end
// (client encode, server decode, response handling) under the real TCP
// stack: per-RPC allocated bytes must stay far below the payload size,
// i.e. no hidden fragment copies anywhere on the path.
func TestWirepathAllocs(t *testing.T) {
	skipUnderRace(t) // the race runtime instruments allocations
	cfg := smokeWirepathConfig
	cfg.RTT = time.Microsecond // allocation-focused: latency irrelevant
	rows, err := RunWirepath(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Payload is 64 KB; a copy anywhere would push KB-allocated/op
		// past it. The pooled steady state stays well under half.
		if r.KBAllocdPerOp > float64(cfg.PayloadKB)/2 {
			t.Errorf("%s: %.0f KB allocated per %d KB store RPC — fragment copies on the wire path",
				r.Mode, r.KBAllocdPerOp, cfg.PayloadKB)
		}
	}
}
