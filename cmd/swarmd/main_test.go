package main

import (
	"syscall"
	"testing"
	"time"

	"swarm"
)

func TestRunRequiresBackingStore(t *testing.T) {
	if err := run("127.0.0.1:0", "", false, 1<<20, 1<<20, false, 0, 0, 0, false, "", ""); err == nil {
		t.Fatal("run without -disk or -mem succeeded")
	}
}

func TestRunServesUntilSignal(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", "", true, 16<<20, 64<<10, false, 0, 0, 0, true, "default=2", "default=100M:10000")
	}()
	// Give the server a moment to come up, then ask it to stop the way
	// an operator would.
	time.Sleep(200 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("swarmd did not shut down on SIGTERM")
	}
}

func TestRunRejectsBusyAddress(t *testing.T) {
	s, err := swarm.NewServer(swarm.ServerOptions{
		DiskBytes:    8 << 20,
		FragmentSize: 64 << 10,
		Listen:       "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := run(s.Addr(), "", true, 8<<20, 64<<10, false, 0, 0, 0, false, "", ""); err == nil {
		t.Fatal("run on a busy address succeeded")
	}
}
