// Package sting implements the Sting file system of §3.1: a local
// (single-client) file system providing the standard UNIX interface, with
// its data stored in Swarm instead of on a local disk. Sting borrows from
// Sprite LFS but is smaller and simpler, because log management, storage,
// cleaning, and reconstruction are all handled by the Swarm layers below.
//
// Structure: an in-memory inode map (ino → inode-block address) that is
// checkpointed into the log; inodes stored as variable-size log blocks;
// file data in fixed-size blocks with a write-back page cache (the
// prototype ran on a Linux "modified to support a write-back page cache",
// §3.3); and crash recovery by replaying the log layer's creation records
// plus Sting's own unlink records.
package sting

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"swarm/internal/blockcache"
	"swarm/internal/core"
	"swarm/internal/service"
	"swarm/internal/vfs"
	"swarm/internal/wire"
)

// DefaultServiceID is Sting's service ID unless configured otherwise.
const DefaultServiceID core.ServiceID = 10

// Config parameterizes a Sting file system.
type Config struct {
	// ServiceID identifies Sting in the log. Default DefaultServiceID.
	ServiceID core.ServiceID
	// BlockSize is the file data block size. Default 4096 (the paper's
	// benchmarks write 4 KB blocks).
	BlockSize int
	// DirtyLimit is the write-back threshold in bytes: exceeding it
	// triggers an automatic flush. Default 4 MB.
	DirtyLimit int64
	// CacheBytes sizes the client block cache for reads ("we expect
	// most reads to be handled by the client cache", §3.4). Zero
	// disables the cache.
	CacheBytes int64
	// ReadaheadFragments arms the block cache's sequential readahead:
	// when cache misses walk forward through the log, this many upcoming
	// fragments are prefetched into the log's fragment cache. Zero
	// disables. Only effective with CacheBytes > 0.
	ReadaheadFragments int
}

// Stats counts file-system activity.
type Stats struct {
	Flushes      int64
	BlocksOut    int64 // data blocks appended
	InodesOut    int64 // inode blocks appended
	BytesWritten int64 // application bytes accepted by WriteAt
	BytesRead    int64
	Checkpoints  int64
}

type imapEntry struct {
	addr core.BlockAddr
	size uint32
}

type pageKey struct {
	ino uint64
	idx uint32
}

// FS is a mounted Sting file system.
type FS struct {
	svcID     core.ServiceID
	log       *core.Log
	blockSize int
	dirtyMax  int64
	cache     *blockcache.Cache
	now       func() time.Time

	mu         sync.Mutex
	closed     bool
	imap       map[uint64]imapEntry
	nextIno    uint64
	inodes     map[uint64]*inode // cache of loaded inodes
	dirtyIno   map[uint64]bool
	pages      map[pageKey][]byte // dirty data pages (write-back cache)
	dirtyBytes int64
	pending    map[uint64][]patch // replay patches awaiting their inode
	stats      Stats
}

type patch struct {
	idx  uint32
	addr core.BlockAddr
	len  uint32
	size int64
}

var _ service.Service = (*FS)(nil)
var _ vfs.FileSystem = (*FS)(nil)

// Mount registers Sting on the log (replaying any recovered state) and
// returns a usable file system. rec comes from core.Open; pass nil for a
// log known to be fresh.
func Mount(log *core.Log, reg *service.Registry, rec *core.Recovery, cfg Config) (*FS, error) {
	if cfg.ServiceID == 0 {
		cfg.ServiceID = DefaultServiceID
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 4096
	}
	if cfg.BlockSize > log.MaxBlockSize() {
		return nil, fmt.Errorf("sting: block size %d exceeds log max %d", cfg.BlockSize, log.MaxBlockSize())
	}
	if cfg.DirtyLimit == 0 {
		cfg.DirtyLimit = 4 << 20
	}
	fs := &FS{
		svcID:     cfg.ServiceID,
		log:       log,
		blockSize: cfg.BlockSize,
		dirtyMax:  cfg.DirtyLimit,
		now:       time.Now,
		imap:      make(map[uint64]imapEntry),
		nextIno:   RootIno + 1,
		inodes:    make(map[uint64]*inode),
		dirtyIno:  make(map[uint64]bool),
		pages:     make(map[pageKey][]byte),
		pending:   make(map[uint64][]patch),
	}
	if cfg.CacheBytes > 0 {
		fs.cache = blockcache.New(log, cfg.CacheBytes)
		if cfg.ReadaheadFragments > 0 {
			fs.cache.SetReadahead(cfg.ReadaheadFragments)
		}
	}
	var recovered *core.RecoveredService
	if rec != nil {
		recovered = rec.Service(cfg.ServiceID)
	}
	if err := reg.Register(fs, recovered); err != nil {
		return nil, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.imap[RootIno]; !ok {
		if _, ok := fs.inodes[RootIno]; !ok {
			fs.inodes[RootIno] = newDirInode(RootIno, fs.now())
			fs.dirtyIno[RootIno] = true
		}
	}
	return fs, nil
}

// Log returns the underlying log (for integration with the cleaner).
func (fs *FS) Log() *core.Log { return fs.log }

// BlockSize returns the data block size.
func (fs *FS) BlockSize() int { return fs.blockSize }

// Stats returns a snapshot of activity counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// ----------------------------------------------------------- inode cache

// loadInode returns the in-memory inode for ino, reading it from the log
// if needed. Caller holds fs.mu.
func (fs *FS) loadInode(ino uint64) (*inode, error) {
	if in, ok := fs.inodes[ino]; ok {
		return in, nil
	}
	ent, ok := fs.imap[ino]
	if !ok {
		return nil, fmt.Errorf("%w: inode %d", vfs.ErrNotExist, ino)
	}
	data, err := fs.log.Read(ent.addr, 0, ent.size)
	if err != nil {
		return nil, fmt.Errorf("read inode %d: %w", ino, err)
	}
	in, err := decodeInode(data)
	if err != nil {
		return nil, err
	}
	fs.inodes[ino] = in
	return in, nil
}

func (fs *FS) markDirty(in *inode) {
	in.mtime = fs.now()
	fs.dirtyIno[in.ino] = true
}

func (fs *FS) allocIno() uint64 {
	ino := fs.nextIno
	fs.nextIno++
	return ino
}

// ------------------------------------------------------------ name paths

// resolve walks components from the root, returning the final inode.
// Caller holds fs.mu.
func (fs *FS) resolve(parts []string) (*inode, error) {
	in, err := fs.loadInode(RootIno)
	if err != nil {
		return nil, err
	}
	for _, name := range parts {
		if !in.isDir() {
			return nil, fmt.Errorf("%w: %s", vfs.ErrNotDir, name)
		}
		ent, ok := in.entries[name]
		if !ok {
			return nil, fmt.Errorf("%w: %s", vfs.ErrNotExist, name)
		}
		if in, err = fs.loadInode(ent.ino); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// resolveParent resolves path into (parent dir inode, final name).
func (fs *FS) resolveParent(path string) (*inode, string, error) {
	parent, name, err := vfs.SplitDir(path)
	if err != nil {
		return nil, "", err
	}
	dir, err := fs.resolve(parent)
	if err != nil {
		return nil, "", err
	}
	if !dir.isDir() {
		return nil, "", vfs.ErrNotDir
	}
	return dir, name, nil
}

// --------------------------------------------------------------- flushing

// flushLocked writes every dirty page and inode to the log. Data blocks
// go first so a flushed inode always references flushed blocks; within a
// crash window, later creation records supersede earlier state exactly as
// in the write path. Caller holds fs.mu.
func (fs *FS) flushLocked() error {
	if len(fs.pages) == 0 && len(fs.dirtyIno) == 0 {
		return nil
	}
	// Deterministic order: by inode then block index.
	keys := make([]pageKey, 0, len(fs.pages))
	for k := range fs.pages {
		keys = append(keys, k)
	}
	sortPageKeys(keys)
	for _, k := range keys {
		page := fs.pages[k]
		in, err := fs.loadInode(k.ino)
		if err != nil {
			// Inode vanished (unlinked with dirty pages): drop them.
			if errors.Is(err, vfs.ErrNotExist) {
				delete(fs.pages, k)
				continue
			}
			return err
		}
		if int(k.idx) >= len(in.blocks) {
			// The file shrank under this page; nothing to persist.
			delete(fs.pages, k)
			continue
		}
		// Trim the tail block to the file size.
		dataLen := fs.blockSize
		if tail := in.size - int64(k.idx)*int64(fs.blockSize); tail < int64(dataLen) {
			dataLen = int(tail)
		}
		if dataLen <= 0 {
			delete(fs.pages, k)
			continue
		}
		hint := encodeDataHint(k.ino, k.idx, in.size)
		addr, err := fs.log.AppendBlock(fs.svcID, page[:dataLen], hint)
		if err != nil {
			return fmt.Errorf("flush data block %d/%d: %w", k.ino, k.idx, err)
		}
		old := in.blocks[k.idx]
		in.blocks[k.idx] = blockPtr{addr: addr, len: uint32(dataLen)}
		fs.dirtyIno[k.ino] = true
		if fs.cache != nil {
			fs.cache.Put(addr, page[:dataLen])
			if !old.isHole() {
				fs.cache.Invalidate(old.addr)
			}
		}
		if !old.isHole() {
			if err := fs.log.DeleteBlock(old.addr, old.len, fs.svcID); err != nil {
				return err
			}
		}
		delete(fs.pages, k)
		fs.stats.BlocksOut++
	}
	fs.dirtyBytes = 0

	// Inodes, in ascending ino order.
	inos := make([]uint64, 0, len(fs.dirtyIno))
	for ino := range fs.dirtyIno {
		inos = append(inos, ino)
	}
	sortUint64s(inos)
	for _, ino := range inos {
		in, ok := fs.inodes[ino]
		if !ok {
			delete(fs.dirtyIno, ino)
			continue
		}
		buf := in.encode()
		addr, err := fs.log.AppendBlock(fs.svcID, buf, encodeInodeHint(ino))
		if err != nil {
			return fmt.Errorf("flush inode %d: %w", ino, err)
		}
		if old, ok := fs.imap[ino]; ok {
			if err := fs.log.DeleteBlock(old.addr, old.size, fs.svcID); err != nil {
				return err
			}
			if fs.cache != nil {
				fs.cache.Invalidate(old.addr)
			}
		}
		fs.imap[ino] = imapEntry{addr: addr, size: uint32(len(buf))}
		delete(fs.dirtyIno, ino)
		fs.stats.InodesOut++
	}
	fs.stats.Flushes++
	return nil
}

// Sync implements vfs.FileSystem: flush the page cache and the log.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return vfs.ErrClosed
	}
	err := fs.flushLocked()
	fs.mu.Unlock()
	if err != nil {
		return err
	}
	return fs.log.Sync()
}

// Checkpoint flushes and writes Sting's checkpoint (the inode map and
// allocator), bounding future recovery time.
func (fs *FS) Checkpoint() error {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return vfs.ErrClosed
	}
	if err := fs.flushLocked(); err != nil {
		fs.mu.Unlock()
		return err
	}
	payload := fs.encodeCheckpointLocked()
	fs.stats.Checkpoints++
	fs.mu.Unlock()
	_, err := fs.log.WriteCheckpoint(fs.svcID, payload)
	return err
}

func (fs *FS) encodeCheckpointLocked() []byte {
	e := wire.NewEncoder(16 + len(fs.imap)*24)
	e.U64(fs.nextIno)
	e.U32(uint32(len(fs.imap)))
	inos := make([]uint64, 0, len(fs.imap))
	for ino := range fs.imap {
		inos = append(inos, ino)
	}
	sortUint64s(inos)
	for _, ino := range inos {
		ent := fs.imap[ino]
		e.U64(ino)
		e.U64(uint64(ent.addr.FID))
		e.U32(ent.addr.Off)
		e.U32(ent.size)
	}
	return e.Bytes()
}

// Unmount implements vfs.FileSystem: flush, checkpoint, and close. The
// paper's MAB runs unmount "to ensure that the data written are
// eventually stored to disk" (§3.4).
func (fs *FS) Unmount() error {
	if err := fs.Checkpoint(); err != nil && !errors.Is(err, vfs.ErrClosed) {
		return err
	}
	fs.mu.Lock()
	fs.closed = true
	fs.mu.Unlock()
	return fs.log.Sync()
}

func sortUint64s(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func sortPageKeys(s []pageKey) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].ino != s[j].ino {
			return s[i].ino < s[j].ino
		}
		return s[i].idx < s[j].idx
	})
}
