GO ?= go

.PHONY: check vet build test race chaos bench-strict

# The full pre-commit gate: static checks, full test suite, and a race
# pass over the packages with real concurrency (the transport and the
# striped-log core, including the chaos harness in the root package).
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race pass over the concurrency-heavy layers plus the cluster-level
# chaos/fault-injection tests in the root package.
race:
	$(GO) test -race ./internal/transport ./internal/core
	$(GO) test -race -run 'TestChaos|TestDegradedWrites|TestClientClose' .

# The chaos harness alone, under the race detector.
chaos:
	$(GO) test -race -v -run 'TestChaos|TestDegradedWrites' .

# Benchmark shape tests with the strict environment-sensitive
# throughput-ratio assertions enabled (needs an unloaded machine).
bench-strict:
	SWARM_BENCH_STRICT=1 $(GO) test ./internal/bench
