package bench

import (
	"fmt"
	"sync"
	"time"

	"swarm/internal/core"
	"swarm/internal/model"
	"swarm/internal/wire"
)

// WriteConfig parameterizes one write-bandwidth measurement (one point of
// Figure 3/4).
type WriteConfig struct {
	Clients int
	Servers int
	// Blocks is the number of 4 KB blocks each client writes (the paper
	// uses 10,000).
	Blocks    int
	BlockSize int
	// Scale speeds the emulated hardware up by this factor; results are
	// normalized back. 0 means 1.
	Scale float64
	// FragmentSize defaults to the paper's 1 MB.
	FragmentSize int
	// Width overrides the stripe width (default: all servers).
	Width int
	// DisableParity turns parity off (the raw benchmark's single-server
	// configuration has nowhere to put parity).
	DisableParity bool
	// PipelineDepth overrides the per-server pipeline (default 2).
	PipelineDepth int
}

func (c *WriteConfig) setDefaults() {
	if c.Blocks == 0 {
		c.Blocks = 10000
	}
	if c.BlockSize == 0 {
		c.BlockSize = 4096
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.FragmentSize == 0 {
		c.FragmentSize = 1 << 20
	}
	if c.Width == 0 {
		c.Width = c.Servers
		if c.Width > core.MaxWidth {
			c.Width = core.MaxWidth
		}
	}
	if c.Servers == 1 {
		c.DisableParity = true
	}
}

// WriteResult is one measured point.
type WriteResult struct {
	Clients    int
	Servers    int
	Elapsed    time.Duration // normalized to 1999-equivalent time
	RawMBps    float64       // aggregate, including metadata and parity
	UsefulMBps float64       // aggregate application bytes only
}

// RunWritePoint measures aggregate write bandwidth for one
// clients×servers configuration: each client appends Blocks 4 KB blocks
// to its own striped log and flushes, exactly the microbenchmark of
// §3.4 ("a simple microbenchmark that wrote 10,000 4KB blocks into the
// log, then flushed the log to the storage servers").
func RunWritePoint(cfg WriteConfig) (WriteResult, error) {
	cfg.setDefaults()
	params := model.Paper1999().Scaled(cfg.Scale)
	cluster, err := NewSimCluster(ClusterConfig{
		Servers:      cfg.Servers,
		FragmentSize: cfg.FragmentSize,
		DiskBytes:    int64(cfg.Blocks)*int64(cfg.BlockSize)*4 + (64 << 20),
		Params:       params,
	})
	if err != nil {
		return WriteResult{}, err
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		rawBytes int64
	)
	block := make([]byte, cfg.BlockSize)
	for i := range block {
		block[i] = byte(i)
	}
	start := time.Now()
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			env := cluster.Client(wire.ClientID(ci + 1))
			log, _, err := core.Open(core.Config{
				Client:        env.Client,
				Servers:       env.Conns,
				FragmentSize:  cfg.FragmentSize,
				Width:         cfg.Width,
				DisableParity: cfg.DisableParity,
				PipelineDepth: cfg.PipelineDepth,
				CPU:           env.CPU,
				FragOverhead:  params.ClientFragOverhead,
			})
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			myBlock := append([]byte(nil), block...)
			for b := 0; b < cfg.Blocks; b++ {
				if _, err := log.AppendBlock(7, myBlock, nil); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
			if err := log.Close(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			rawBytes += log.Stats().BytesStored
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	if firstErr != nil {
		return WriteResult{}, firstErr
	}
	elapsed := time.Since(start)

	useful := int64(cfg.Clients) * int64(cfg.Blocks) * int64(cfg.BlockSize)
	secs := elapsed.Seconds()
	res := WriteResult{
		Clients:    cfg.Clients,
		Servers:    cfg.Servers,
		Elapsed:    time.Duration(float64(elapsed) * cfg.Scale),
		RawMBps:    float64(rawBytes) / secs / model.MB / cfg.Scale,
		UsefulMBps: float64(useful) / secs / model.MB / cfg.Scale,
	}
	return res, nil
}

// Figure3Clients and Figure3Servers are the paper's sweep axes.
var (
	Figure3Clients = []int{1, 2, 4}
	Figure3Servers = []int{1, 2, 3, 4, 5, 6, 7, 8}
	// Figure4Servers starts at 2: "the minimum system configuration
	// consisted of a single client and two servers, one to store data
	// and the other parity" (§3.4).
	Figure4Servers = []int{2, 3, 4, 5, 6, 7, 8}
)

// RunWriteSweep runs a full clients×servers sweep.
func RunWriteSweep(clients, servers []int, base WriteConfig, progress func(string)) ([]WriteResult, error) {
	var out []WriteResult
	for _, nc := range clients {
		for _, ns := range servers {
			cfg := base
			cfg.Clients = nc
			cfg.Servers = ns
			cfg.Width = 0
			cfg.DisableParity = false
			if progress != nil {
				progress(fmt.Sprintf("write point: %d client(s) × %d server(s)", nc, ns))
			}
			r, err := RunWritePoint(cfg)
			if err != nil {
				return out, fmt.Errorf("point c=%d s=%d: %w", nc, ns, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}
