// Package errclass is a swarmlint test fixture: each function
// exercises one errclass-analyzer behavior, with expected diagnostics
// declared in want comments.
package errclass

import (
	"errors"
	"fmt"
)

// Package-level sentinels are the classification vocabulary; exempt.
var errSentinel = errors.New("fixture: sentinel")

func naked() error {
	return errors.New("boom") // want "naked errors.New"
}

func nakedErrorf(op string) error {
	return fmt.Errorf("op %s failed", op) // want "chains to nothing"
}

func wrapped(op string) error {
	return fmt.Errorf("op %s: %w", op, errSentinel)
}

func dynamicFormat(format string) error {
	// Non-literal format: benefit of the doubt.
	return fmt.Errorf(format, errSentinel)
}

func annotated() error {
	return errors.New("invariant violated") // swarmlint:classified (programmer error, not an RPC outcome)
}
