// Package erasure is the pluggable stripe-redundancy layer: given the k
// data payloads of a stripe it produces m parity payloads, and given any
// k of the n = k+m members it reconstructs the rest. Two codes implement
// the interface — the paper's rotating single XOR parity (§2.1.2), kept
// as the faithful baseline and ablation, and a systematic GF(2^8)
// Reed–Solomon code that survives any m simultaneous losses. The package
// is stdlib-only and deliberately knows nothing about fragments, headers,
// or servers: callers hand it byte slices ordered by shard (data shards
// 0..k-1, then parity shards 0..m-1) and own the mapping from stripe
// member indices to shard ordinals.
//
// The name avoids colliding with internal/codec, which is the payload
// transform layer (compression etc.), an unrelated axis.
package erasure

import "encoding/binary"

// GF(2^8) arithmetic with the AES-adjacent primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d) — the field every practical RS
// storage code uses, so test vectors from the literature apply directly.
//
// Multiplication goes through log/exp tables; the hot path (multiply a
// whole shard by one coefficient and XOR into an accumulator) uses one
// 256-byte row of the full product table per coefficient, with the c==1
// case dropping to the word-at-a-time XOR loop that the stripe parity
// path has always used.

const fieldPoly = 0x11d

var (
	gfExp [512]byte // exp table doubled so mul needs no modular reduction
	gfLog [256]byte
	gfMul [256][256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= fieldPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			gfMul[a][b] = gfExp[int(gfLog[a])+int(gfLog[b])]
		}
	}
}

// mul returns a·b in GF(2^8).
func mul(a, b byte) byte { return gfMul[a][b] }

// inv returns a^-1 in GF(2^8). a must be nonzero.
func inv(a byte) byte {
	if a == 0 {
		panic("erasure: inverse of zero")
	}
	return gfExp[255-int(gfLog[a])]
}

// xorSliceInto accumulates src into dst (dst ^= src), word at a time for
// the bulk — the same inner loop core's stripe parity has always used.
// src may be shorter than dst; missing bytes are zero (the padding rule
// for short shards).
func xorSliceInto(dst, src []byte) {
	n := len(src)
	if n > len(dst) {
		n = len(dst)
	}
	dst = dst[:n]
	src = src[:n]
	for len(dst) >= 8 {
		d := binary.LittleEndian.Uint64(dst)
		s := binary.LittleEndian.Uint64(src)
		binary.LittleEndian.PutUint64(dst, d^s)
		dst = dst[8:]
		src = src[8:]
	}
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// mulSliceXor accumulates c·src into dst (dst ^= c·src). It is the
// encode/decode inner loop: one table row per coefficient, with the
// identity and zero coefficients short-circuited to the XOR loop and a
// no-op respectively.
func mulSliceXor(c byte, dst, src []byte) {
	switch c {
	case 0:
		return
	case 1:
		xorSliceInto(dst, src)
		return
	}
	n := len(src)
	if n > len(dst) {
		n = len(dst)
	}
	row := &gfMul[c]
	for i := 0; i < n; i++ {
		dst[i] ^= row[src[i]]
	}
}
