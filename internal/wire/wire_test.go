package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFIDComposition(t *testing.T) {
	tests := []struct {
		client ClientID
		seq    uint64
	}{
		{0, 0},
		{1, 0},
		{1, 1},
		{7, 123456},
		{0xFFFFFF, 1<<40 - 1},
	}
	for _, tt := range tests {
		f := MakeFID(tt.client, tt.seq)
		if f.Client() != tt.client {
			t.Errorf("MakeFID(%d,%d).Client() = %d", tt.client, tt.seq, f.Client())
		}
		if f.Seq() != tt.seq {
			t.Errorf("MakeFID(%d,%d).Seq() = %d", tt.client, tt.seq, f.Seq())
		}
	}
}

func TestFIDSeqMasksOverflow(t *testing.T) {
	f := MakeFID(2, 1<<40+5) // seq wraps into the masked range
	if f.Client() != 2 {
		t.Fatalf("client corrupted by seq overflow: %d", f.Client())
	}
	if f.Seq() != 5 {
		t.Fatalf("seq = %d, want 5", f.Seq())
	}
}

func TestFIDString(t *testing.T) {
	if s := MakeFID(3, 42).String(); s != "3/42" {
		t.Fatalf("String() = %q", s)
	}
}

func TestStatusAndOpStrings(t *testing.T) {
	for s := StatusOK; s <= StatusInternal; s++ {
		if s.String() == "" {
			t.Errorf("empty string for status %d", s)
		}
	}
	if got := Status(200).String(); got != "status(200)" {
		t.Errorf("unknown status = %q", got)
	}
	for o := OpPing; o <= OpStat; o++ {
		if o.String() == "" {
			t.Errorf("empty string for op %d", o)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("unknown op = %q", got)
	}
}

func TestEncoderDecoderPrimitives(t *testing.T) {
	e := NewEncoder(0)
	e.U8(0xAB)
	e.U16(0xCDEF)
	e.U32(0xDEADBEEF)
	e.U64(0x0102030405060708)
	e.Bool(true)
	e.Bool(false)
	e.Bytes32([]byte("payload"))
	e.String32("str")

	d := NewDecoder(e.Bytes())
	if v := d.U8(); v != 0xAB {
		t.Errorf("U8 = %#x", v)
	}
	if v := d.U16(); v != 0xCDEF {
		t.Errorf("U16 = %#x", v)
	}
	if v := d.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := d.U64(); v != 0x0102030405060708 {
		t.Errorf("U64 = %#x", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool roundtrip failed")
	}
	if v := d.Bytes32(); !bytes.Equal(v, []byte("payload")) {
		t.Errorf("Bytes32 = %q", v)
	}
	if v := d.String32(); v != "str" {
		t.Errorf("String32 = %q", v)
	}
	if d.Err() != nil {
		t.Errorf("decode err: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining = %d", d.Remaining())
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U32()
	if !errors.Is(d.Err(), ErrShortBuffer) {
		t.Fatalf("err = %v, want ErrShortBuffer", d.Err())
	}
	// Subsequent reads keep returning zero values, not panicking.
	if v := d.U64(); v != 0 {
		t.Fatalf("U64 after error = %d", v)
	}
}

func TestDecoderRejectsHugeSlice(t *testing.T) {
	e := NewEncoder(0)
	e.U32(maxSlice + 1)
	d := NewDecoder(e.Bytes())
	_ = d.Bytes32()
	if !errors.Is(d.Err(), ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", d.Err())
	}
}

// roundTrip encodes msg and decodes it into out (same concrete type).
func roundTrip(t *testing.T, msg, out Message) {
	t.Helper()
	e := NewEncoder(0)
	msg.Encode(e)
	if err := out.Decode(NewDecoder(e.Bytes())); err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	if !reflect.DeepEqual(normalize(msg), normalize(out)) {
		t.Fatalf("roundtrip %T:\n got %+v\nwant %+v", msg, out, msg)
	}
}

// normalize maps nil and empty slices to a canonical form for comparison.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *StoreRequest:
		if len(v.Ranges) == 0 {
			v.Ranges = nil
		}
		if len(v.Data) == 0 {
			v.Data = nil
		}
	case *ACLCreateRequest:
		if len(v.Members) == 0 {
			v.Members = nil
		}
	case *ACLModifyRequest:
		if len(v.Add) == 0 {
			v.Add = nil
		}
		if len(v.Remove) == 0 {
			v.Remove = nil
		}
	case *ListFIDsResponse:
		if len(v.FIDs) == 0 {
			v.FIDs = nil
		}
	case *ReadResponse:
		if len(v.Data) == 0 {
			v.Data = nil
		}
	}
	return m
}

func TestMessageRoundTrips(t *testing.T) {
	roundTrip(t, &PingRequest{}, &PingRequest{})
	roundTrip(t, &StoreRequest{
		FID:    MakeFID(3, 9),
		Mark:   true,
		Ranges: []ACLRange{{Off: 0, Len: 512, AID: 7}, {Off: 512, Len: 128, AID: 9}},
		Data:   []byte("fragment-bytes"),
	}, &StoreRequest{})
	roundTrip(t, &ReadRequest{FID: MakeFID(1, 2), Off: 100, Len: 4096}, &ReadRequest{})
	roundTrip(t, &DeleteRequest{FID: MakeFID(2, 5)}, &DeleteRequest{})
	roundTrip(t, &PreallocRequest{FID: MakeFID(2, 6)}, &PreallocRequest{})
	roundTrip(t, &LastMarkedRequest{Client: 12}, &LastMarkedRequest{})
	roundTrip(t, &HasFragmentRequest{FID: MakeFID(9, 1)}, &HasFragmentRequest{})
	roundTrip(t, &ListFIDsRequest{Client: 3}, &ListFIDsRequest{})
	roundTrip(t, &ACLCreateRequest{Members: []ClientID{1, 2, 3}}, &ACLCreateRequest{})
	roundTrip(t, &ACLModifyRequest{AID: 4, Add: []ClientID{9}, Remove: []ClientID{1, 2}}, &ACLModifyRequest{})
	roundTrip(t, &ACLDeleteRequest{AID: 4}, &ACLDeleteRequest{})
	roundTrip(t, &StatRequest{}, &StatRequest{})
	roundTrip(t, &GenericResponse{}, &GenericResponse{})
	roundTrip(t, &ReadResponse{Data: []byte{1, 2, 3}}, &ReadResponse{})
	roundTrip(t, &LastMarkedResponse{FID: MakeFID(1, 77), Found: true}, &LastMarkedResponse{})
	roundTrip(t, &HasFragmentResponse{Found: true, Size: 999}, &HasFragmentResponse{})
	roundTrip(t, &ListFIDsResponse{FIDs: []FID{1, 2, 3}}, &ListFIDsResponse{})
	roundTrip(t, &ACLCreateResponse{AID: 42}, &ACLCreateResponse{})
	roundTrip(t, &StatResponse{FragmentSize: 1 << 20, TotalSlots: 100, FreeSlots: 50, Fragments: 50}, &StatResponse{})
}

// Property: StoreRequest roundtrips for arbitrary contents.
func TestQuickStoreRequestRoundTrip(t *testing.T) {
	f := func(fid uint64, mark bool, data []byte, nRanges uint8) bool {
		msg := &StoreRequest{FID: FID(fid), Mark: mark, Data: data}
		for i := uint8(0); i < nRanges%8; i++ {
			msg.Ranges = append(msg.Ranges, ACLRange{Off: uint32(i) * 100, Len: 100, AID: AID(i)})
		}
		e := NewEncoder(0)
		msg.Encode(e)
		var out StoreRequest
		if err := out.Decode(NewDecoder(e.Bytes())); err != nil {
			return false
		}
		if out.FID != msg.FID || out.Mark != msg.Mark || !bytes.Equal(out.Data, msg.Data) {
			return false
		}
		if len(out.Ranges) != len(msg.Ranges) {
			return false
		}
		for i := range out.Ranges {
			if out.Ranges[i] != msg.Ranges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary garbage never panics.
func TestQuickDecodeGarbageNeverPanics(t *testing.T) {
	msgs := []func() Message{
		func() Message { return &StoreRequest{} },
		func() Message { return &ReadRequest{} },
		func() Message { return &ACLModifyRequest{} },
		func() Message { return &ListFIDsResponse{} },
		func() Message { return &StatResponse{} },
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		for _, mk := range msgs {
			_ = mk().Decode(NewDecoder(buf)) // must not panic
		}
	}
}

func TestFrameRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msg := &ReadRequest{FID: MakeFID(4, 2), Off: 16, Len: 4096}
	if err := WriteRequest(&buf, OpRead, 77, 4, msg); err != nil {
		t.Fatal(err)
	}
	req, err := ReadRequestFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpRead || req.ID != 77 || req.Client != 4 {
		t.Fatalf("header = %+v", req)
	}
	var out ReadRequest
	if err := out.Decode(NewDecoder(req.Body)); err != nil {
		t.Fatal(err)
	}
	if out != *msg {
		t.Fatalf("body = %+v", out)
	}
}

func TestFrameResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResponse(&buf, OpRead, 5, &ReadResponse{Data: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	rsp, err := ReadResponseFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rsp.Status != StatusOK || rsp.ID != 5 || rsp.Op != OpRead {
		t.Fatalf("rsp = %+v", rsp)
	}
	if rsp.Err() != nil {
		t.Fatalf("Err() = %v", rsp.Err())
	}
}

func TestFrameErrorResponse(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteErrorResponse(&buf, OpStore, 9, StatusNoSpace, "disk full"); err != nil {
		t.Fatal(err)
	}
	rsp, err := ReadResponseFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rerr := rsp.Err()
	if rerr == nil {
		t.Fatal("expected error")
	}
	if !IsStatus(rerr, StatusNoSpace) {
		t.Fatalf("status of %v", rerr)
	}
	var se *StatusError
	if !errors.As(rerr, &se) || se.Msg != "disk full" {
		t.Fatalf("error = %v", rerr)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, OpPing, 1, 1, &PingRequest{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-5] ^= 0xFF // flip a bit inside the payload/CRC region
	_, err := ReadRequestFrame(bytes.NewReader(raw))
	if !errors.Is(err, ErrBadCRC) && !errors.Is(err, ErrShortBuffer) && err == nil {
		t.Fatalf("corrupted frame accepted: %v", err)
	}
}

func TestFrameBadMagic(t *testing.T) {
	raw := make([]byte, frameHdrSize+4)
	_, err := ReadRequestFrame(bytes.NewReader(raw))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestFrameKindMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, OpPing, 1, 1, &PingRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResponseFrame(&buf); err == nil {
		t.Fatal("request frame accepted as response")
	}
}

func TestStatusErrorMessage(t *testing.T) {
	e := &StatusError{Status: StatusNotFound}
	if e.Error() != "server: not found" {
		t.Fatalf("Error() = %q", e.Error())
	}
	e = &StatusError{Status: StatusAccess, Msg: "aid 5"}
	if e.Error() != "server: access denied: aid 5" {
		t.Fatalf("Error() = %q", e.Error())
	}
	if IsStatus(errors.New("x"), StatusOK) {
		t.Fatal("IsStatus matched plain error")
	}
}
