package server

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"swarm/internal/disk"
	"swarm/internal/wire"
)

func newTCP(t *testing.T) *TCPServer {
	t.Helper()
	d := disk.NewMemDisk(4 << 20)
	st, err := Format(d, Config{FragmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe(st, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func rpc(t *testing.T, conn net.Conn, op wire.Op, id uint64, msg wire.Message) *wire.Response {
	t.Helper()
	if err := wire.WriteRequest(conn, op, id, 1, msg); err != nil {
		t.Fatal(err)
	}
	rsp, err := wire.ReadResponseFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	return rsp
}

func TestTCPServerBasicRPC(t *testing.T) {
	srv := newTCP(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	rsp := rpc(t, conn, wire.OpPing, 1, &wire.PingRequest{})
	if rsp.Status != wire.StatusOK || rsp.ID != 1 {
		t.Fatalf("ping rsp = %+v", rsp)
	}
	rsp = rpc(t, conn, wire.OpStore, 2, &wire.StoreRequest{FID: wire.MakeFID(1, 0), Data: []byte("hello")})
	if rsp.Status != wire.StatusOK {
		t.Fatalf("store rsp = %+v", rsp)
	}
	rsp = rpc(t, conn, wire.OpRead, 3, &wire.ReadRequest{FID: wire.MakeFID(1, 0), Off: 0, Len: 5})
	if rsp.Status != wire.StatusOK {
		t.Fatalf("read rsp = %+v", rsp)
	}
	var rr wire.ReadResponse
	if err := rr.Decode(wire.NewDecoder(rsp.Body)); err != nil || !bytes.Equal(rr.Data, []byte("hello")) {
		t.Fatalf("read data = (%q,%v)", rr.Data, err)
	}
}

func TestTCPServerSurvivesGarbageConnection(t *testing.T) {
	srv := newTCP(t)
	// Throw garbage at the server: it must drop the connection and keep
	// serving others.
	g, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write(bytes.Repeat([]byte{0xDE, 0xAD}, 1000)); err != nil {
		t.Fatal(err)
	}
	// The server should close the garbage connection.
	g.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := g.Read(buf); err == nil {
		t.Fatal("server kept a garbage connection open with data")
	}
	g.Close()

	// Healthy clients still work.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rsp := rpc(t, conn, wire.OpPing, 1, &wire.PingRequest{})
	if rsp.Status != wire.StatusOK {
		t.Fatalf("ping after garbage = %+v", rsp)
	}
}

func TestTCPServerMalformedBodyReturnsError(t *testing.T) {
	srv := newTCP(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Valid frame, garbage body for OpStore.
	if err := wire.WriteRequest(conn, wire.OpStore, 9, 1, &wire.PingRequest{}); err != nil {
		t.Fatal(err)
	}
	rsp, err := wire.ReadResponseFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if rsp.Status != wire.StatusBadRequest {
		t.Fatalf("malformed store rsp = %+v", rsp)
	}
	// The connection stays usable.
	rsp = rpc(t, conn, wire.OpPing, 10, &wire.PingRequest{})
	if rsp.Status != wire.StatusOK {
		t.Fatalf("ping after bad request = %+v", rsp)
	}
}

func TestTCPServerUnknownOp(t *testing.T) {
	srv := newTCP(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rsp := rpc(t, conn, wire.Op(200), 1, &wire.PingRequest{})
	if rsp.Status != wire.StatusBadRequest {
		t.Fatalf("unknown op rsp = %+v", rsp)
	}
}

func TestTCPServerManyConnections(t *testing.T) {
	srv := newTCP(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for j := 0; j < 10; j++ {
				if err := wire.WriteRequest(conn, wire.OpPing, uint64(j), wire.ClientID(i), &wire.PingRequest{}); err != nil {
					errs <- err
					return
				}
				rsp, err := wire.ReadResponseFrame(conn)
				if err != nil || rsp.Status != wire.StatusOK || rsp.ID != uint64(j) {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPServerCloseIsIdempotentAndUnblocks(t *testing.T) {
	srv := newTCP(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	// The accepted connection was closed by the server.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after server close")
	}
	if srv.Store() == nil {
		t.Fatal("store accessor nil")
	}
}

// TestTCPServerConcurrentOnOneConnection pins the per-connection worker
// pool: 8 pipelined requests with a 30ms handle delay must complete in
// roughly one delay, not eight (the old strictly-serial serveConn).
func TestTCPServerConcurrentOnOneConnection(t *testing.T) {
	const (
		nreq  = 8
		delay = 30 * time.Millisecond
	)
	srv := newTCP(t)
	srv.SetHandleDelay(delay)
	defer srv.SetHandleDelay(0)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	for id := uint64(1); id <= nreq; id++ {
		if err := wire.WriteRequest(conn, wire.OpPing, id, 1, &wire.PingRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]bool, nreq)
	for i := 0; i < nreq; i++ {
		rsp, err := wire.ReadResponseFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if rsp.Status != wire.StatusOK {
			t.Fatalf("ping %d: status %v", rsp.ID, rsp.Status)
		}
		if seen[rsp.ID] || rsp.ID < 1 || rsp.ID > nreq {
			t.Fatalf("bad or duplicate response id %d", rsp.ID)
		}
		seen[rsp.ID] = true
	}
	elapsed := time.Since(start)
	// Serial handling would need nreq×delay = 240ms; allow generous
	// scheduling slack above the ~1×delay concurrent cost.
	if limit := delay*nreq - delay; elapsed >= limit {
		t.Errorf("8 pipelined requests took %v — head-of-line blocking (serial would be %v)", elapsed, delay*nreq)
	}
}
