// Faulttolerance: write a file across TCP storage servers, kill one
// server process, and read everything back — the client reconstructs the
// dead server's fragments from the stripe parity, transparently. Servers
// never participate in reconstruction (§2.3.3 of the paper).
package main

import (
	"bytes"
	"fmt"
	"log"

	"swarm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Four real TCP servers (what cmd/swarmd runs, in-process here).
	var servers []*swarm.Server
	var addrs []string
	for i := 0; i < 4; i++ {
		s, err := swarm.NewServer(swarm.ServerOptions{
			DiskBytes:    64 << 20,
			FragmentSize: 256 << 10,
			Listen:       "127.0.0.1:0",
		})
		if err != nil {
			return err
		}
		defer s.Close()
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
		fmt.Printf("server %d listening on %s\n", i+1, s.Addr())
	}

	client, err := swarm.ConnectAddrs(1, addrs, swarm.ClientOptions{FragmentSize: 256 << 10})
	if err != nil {
		return err
	}
	defer client.Close()

	// Write a megabyte of blocks: the log stripes them with rotating
	// parity, so every fragment is recoverable from its stripe.
	payload := bytes.Repeat([]byte("swarm tolerates server failures. "), 128)
	var blocks []swarm.BlockAddr
	for i := 0; i < 256; i++ {
		addr, err := client.Log().AppendBlock(7, payload, nil)
		if err != nil {
			return err
		}
		blocks = append(blocks, addr)
	}
	if err := client.Sync(); err != nil {
		return err
	}
	l := client.Log()
	fmt.Printf("wrote %d blocks (%d KB) across %d servers\n",
		len(blocks), len(blocks)*len(payload)/1024, len(servers))

	// Kill a server. Hard. Mid-cluster.
	victim := 2
	if err := servers[victim].Close(); err != nil {
		return err
	}
	fmt.Printf("server %d killed\n", victim+1)

	// Read everything back: fragments on the dead server are rebuilt by
	// XORing the surviving members of their stripes. The client finds
	// the stripe by broadcasting for neighbouring fragments — Swarm is
	// self-hosting, there is no metadata service to consult.
	for i, addr := range blocks {
		got, err := l.Read(addr, 0, uint32(len(payload)))
		if err != nil {
			return fmt.Errorf("block %d unreadable after failure: %w", i, err)
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("block %d corrupted after reconstruction", i)
		}
	}
	st := l.Stats()
	fmt.Printf("all %d blocks read back intact (%d fragment reconstructions)\n",
		len(blocks), st.Reconstructions)

	// Replace the dead server with a fresh, empty one on the same
	// address and rebuild: the client reconstructs every fragment that
	// belongs there and stores it back, restoring full redundancy.
	replacement, err := swarm.NewServer(swarm.ServerOptions{
		DiskBytes:    64 << 20,
		FragmentSize: 256 << 10,
		Listen:       addrs[victim],
	})
	if err != nil {
		return err
	}
	defer replacement.Close()
	fmt.Printf("replacement server started on %s\n", addrs[victim])

	rebuilt, err := client.RebuildServer(swarm.ServerID(victim + 1))
	if err != nil {
		return err
	}
	_, total, free, frags := replacement.Stats()
	fmt.Printf("rebuilt %d fragments (replacement now holds %d fragments, %d/%d slots used)\n",
		rebuilt, frags, total-free, total)

	// Redundancy is back: the cluster again tolerates any single failure.
	for _, s := range l.Usage().Stripes() {
		if u, ok := l.Usage().Get(s); ok && u.Closed {
			if err := l.VerifyStripe(s); err != nil {
				return fmt.Errorf("stripe %d after rebuild: %w", s, err)
			}
		}
	}
	fmt.Println("all stripe parity verified after rebuild")
	return nil
}
