package fragio

import (
	"sync"

	"swarm/internal/wire"
)

// singleflight deduplicates concurrent executions of per-FID work. It is
// a minimal version of the well-known pattern: the first caller for a
// key runs the function; callers arriving before it finishes wait for
// and share the result. Results are not cached — once the flight lands,
// the next caller starts a fresh one (the layers above have their own
// caches for results worth keeping).
type singleflight struct {
	mu sync.Mutex
	m  map[wire.FID]*flight
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

func (g *singleflight) init() {
	g.m = make(map[wire.FID]*flight)
}

// do executes fn for key, deduplicating against in-flight executions.
// shared reports whether this caller received another caller's result.
func (g *singleflight) do(key wire.FID, fn func() (any, error)) (v any, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}
