// Package atomicmix is a swarmlint test fixture: each function
// exercises one atomicmix-analyzer behavior, with expected diagnostics
// declared in want comments.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits int64
	raw  int64
	mu   sync.Mutex
}

// bump makes hits an atomic field: every other access must go through
// sync/atomic too.
func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) readAtomic() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) storeAtomic(v int64) {
	atomic.StoreInt64(&c.hits, v)
}

func (c *counters) readPlain() int64 {
	return c.hits // want "accessed with sync/atomic elsewhere but plainly here"
}

func (c *counters) writePlain() {
	c.hits = 0 // want "plainly here"
}

// raw is never touched atomically: plain access is fine.
func (c *counters) untouched() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.raw
}

// Constructor access through an unpublished composite-literal value
// needs no atomics: nothing else can see it yet.
func newCounters(seed int64) *counters {
	c := &counters{}
	c.hits = seed
	return c
}

func (c *counters) annotatedSnapshot() int64 {
	// swarmlint:atomic-ok — harness-only, called after writers are joined
	return c.hits
}
