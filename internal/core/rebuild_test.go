package core

import (
	"bytes"
	"testing"

	"swarm/internal/disk"
	"swarm/internal/server"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// replaceServer swaps cluster server k with a fresh empty store at the
// same ID, simulating a hardware replacement.
func (c *cluster) replaceServer(t *testing.T, k int) {
	t.Helper()
	d := disk.NewMemDisk(4 << 20)
	st, err := server.Format(d, server.Config{FragmentSize: testFragSize})
	if err != nil {
		t.Fatal(err)
	}
	fl := transport.NewFlaky(transport.NewLocal(wire.ServerID(k+1), st, testClient))
	c.stores[k] = st
	c.flaky[k] = fl
	c.conns[k] = fl
}

func TestRebuildServerRestoresRedundancy(t *testing.T) {
	c := newTestCluster(t, 4)
	l, _ := c.open(t, Config{})
	var addrs []BlockAddr
	for i := 0; i < 60; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 600)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Replace server 2 (ID 3) with empty hardware.
	const victim = 2
	c.replaceServer(t, victim)

	// A fresh client session sees the gap and rebuilds it.
	l2, _ := c.open(t, Config{})
	defer l2.Close()
	rebuilt, err := l2.RebuildServer(wire.ServerID(victim + 1))
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt == 0 {
		t.Fatal("nothing rebuilt")
	}
	// Redundancy is restored: kill a DIFFERENT server and everything
	// must still be readable (which requires the rebuilt fragments).
	c.flaky[0].SetDown(true)
	defer c.flaky[0].SetDown(false)
	for i, addr := range addrs {
		got, err := l2.Read(addr, 0, 600)
		if err != nil {
			t.Fatalf("read %d after rebuild with another server down: %v", i, err)
		}
		if !bytes.Equal(got, blockPattern(i, 600)) {
			t.Fatalf("block %d corrupted after rebuild", i)
		}
	}
	// Parity checks out on every closed stripe.
	for _, s := range l2.usage.Stripes() {
		u, _ := l2.usage.Get(s)
		if !u.Closed {
			continue
		}
		c.flaky[0].SetDown(false)
		if err := l2.VerifyStripe(s); err != nil {
			t.Fatalf("stripe %d after rebuild: %v", s, err)
		}
	}
}

func TestRebuildServerIdempotent(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	defer l.Close()
	for i := 0; i < 30; i++ {
		mustAppend(t, l, 7, blockPattern(i, 500))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Nothing missing: rebuild is a no-op.
	n, err := l.RebuildServer(2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("rebuilt %d fragments on a healthy server", n)
	}
	// Unknown server id errors.
	if _, err := l.RebuildServer(99); err == nil {
		t.Fatal("rebuild of unknown server succeeded")
	}
}
