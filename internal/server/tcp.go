package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"swarm/internal/wire"
)

// TCPServer serves the wire protocol over TCP, one goroutine per
// connection. Responses to one connection are serialized; requests from
// different connections proceed concurrently against the store.
type TCPServer struct {
	store *Store
	ln    net.Listener
	log   *log.Logger

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// ListenAndServe starts a TCP server for store on addr ("host:port";
// ":0" picks a free port). The returned server is already accepting.
func ListenAndServe(store *Store, addr string, logger *log.Logger) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &TCPServer{
		store: store,
		ln:    ln,
		log:   logger,
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Store returns the underlying fragment store.
func (s *TCPServer) Store() *Store { return s.store }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := wire.NewConnReader(conn)
	w := wire.NewConnWriter(conn)
	for {
		req, err := wire.ReadRequestFrame(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
				s.log.Printf("read request: %v", err)
			}
			return
		}
		status, msg := s.store.Handle(req.Client, req.Op, req.Body)
		var werr error
		if status == wire.StatusOK {
			werr = wire.WriteResponse(w, req.Op, req.ID, msg)
		} else {
			werr = wire.WriteErrorResponse(w, req.Op, req.ID, status, ErrText(msg))
		}
		if werr == nil {
			werr = w.Flush()
		}
		if werr != nil {
			s.log.Printf("write response: %v", werr)
			return
		}
	}
}

// Close stops accepting, closes all connections, and waits for the
// connection handlers to finish.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
