package vfs

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestSplitPath(t *testing.T) {
	tests := []struct {
		in   string
		want []string
		err  bool
	}{
		{"/", nil, false},
		{"/a", []string{"a"}, false},
		{"/a/b/c", []string{"a", "b", "c"}, false},
		{"", nil, true},
		{"relative", nil, true},
		{"//", nil, true},
		{"/a//b", nil, true},
		{"/a/./b", nil, true},
		{"/a/../b", nil, true},
		{"/" + strings.Repeat("x", 256), nil, true},
	}
	for _, tt := range tests {
		got, err := SplitPath(tt.in)
		if tt.err {
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("SplitPath(%q) err = %v, want ErrInvalid", tt.in, err)
			}
			continue
		}
		if err != nil || !reflect.DeepEqual(got, tt.want) {
			t.Errorf("SplitPath(%q) = (%v,%v), want %v", tt.in, got, err, tt.want)
		}
	}
}

func TestSplitDir(t *testing.T) {
	parent, name, err := SplitDir("/a/b/c")
	if err != nil || name != "c" || !reflect.DeepEqual(parent, []string{"a", "b"}) {
		t.Fatalf("SplitDir = (%v,%q,%v)", parent, name, err)
	}
	parent, name, err = SplitDir("/top")
	if err != nil || name != "top" || len(parent) != 0 {
		t.Fatalf("SplitDir(/top) = (%v,%q,%v)", parent, name, err)
	}
	if _, _, err := SplitDir("/"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("SplitDir(/) = %v", err)
	}
}

func TestFileModeIsDir(t *testing.T) {
	if ModeFile.IsDir() || !ModeDir.IsDir() {
		t.Fatal("IsDir wrong")
	}
}

// memFS is a trivial in-memory FileSystem for testing the helpers.
type memFS struct {
	files map[string][]byte
	dirs  map[string]bool
}

func newMemFS() *memFS {
	return &memFS{files: map[string][]byte{}, dirs: map[string]bool{"/": true}}
}

type memFile struct {
	fs   *memFS
	path string
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	data := f.fs.files[f.path]
	if off >= int64(len(data)) {
		return 0, nil
	}
	return copy(p, data[off:]), nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	data := f.fs.files[f.path]
	need := int(off) + len(p)
	if need > len(data) {
		nd := make([]byte, need)
		copy(nd, data)
		data = nd
	}
	copy(data[off:], p)
	f.fs.files[f.path] = data
	return len(p), nil
}

func (f *memFile) Size() (int64, error) { return int64(len(f.fs.files[f.path])), nil }
func (f *memFile) Truncate(n int64) error {
	f.fs.files[f.path] = f.fs.files[f.path][:n]
	return nil
}
func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

func (m *memFS) Create(path string) (File, error) {
	m.files[path] = nil
	return &memFile{fs: m, path: path}, nil
}

func (m *memFS) Open(path string) (File, error) {
	if _, ok := m.files[path]; !ok {
		return nil, ErrNotExist
	}
	return &memFile{fs: m, path: path}, nil
}

func (m *memFS) Mkdir(path string) error {
	if m.dirs[path] {
		return ErrExist
	}
	m.dirs[path] = true
	return nil
}

func (m *memFS) Rmdir(path string) error  { delete(m.dirs, path); return nil }
func (m *memFS) Unlink(path string) error { delete(m.files, path); return nil }
func (m *memFS) Rename(a, b string) error {
	m.files[b] = m.files[a]
	delete(m.files, a)
	return nil
}

func (m *memFS) Stat(path string) (FileInfo, error) {
	if m.dirs[path] {
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 && path != "/" {
			name = path[i+1:]
		}
		return FileInfo{Name: name, Mode: ModeDir, MTime: time.Unix(0, 0)}, nil
	}
	if data, ok := m.files[path]; ok {
		return FileInfo{Name: path, Size: int64(len(data)), Mode: ModeFile}, nil
	}
	return FileInfo{}, ErrNotExist
}

func (m *memFS) ReadDir(path string) ([]DirEntry, error) {
	prefix := path
	if path != "/" {
		prefix += "/"
	}
	var out []DirEntry
	seen := map[string]bool{}
	add := func(full string, mode FileMode) {
		rest := strings.TrimPrefix(full, prefix)
		if rest == full || rest == "" || strings.Contains(rest, "/") {
			return
		}
		if !seen[rest] {
			seen[rest] = true
			out = append(out, DirEntry{Name: rest, Mode: mode})
		}
	}
	for p := range m.files {
		add(p, ModeFile)
	}
	for p := range m.dirs {
		add(p, ModeDir)
	}
	return out, nil
}

func (m *memFS) Sync() error    { return nil }
func (m *memFS) Unmount() error { return nil }

var _ FileSystem = (*memFS)(nil)

func TestReadWriteFileHelpers(t *testing.T) {
	fs := newMemFS()
	if err := WriteFile(fs, "/x", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fs, "/x")
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = (%q,%v)", got, err)
	}
	if _, err := ReadFile(fs, "/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("ReadFile missing = %v", err)
	}
}

func TestMkdirAllHelper(t *testing.T) {
	fs := newMemFS()
	if err := MkdirAll(fs, "/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if !fs.dirs["/a"] || !fs.dirs["/a/b"] || !fs.dirs["/a/b/c"] {
		t.Fatalf("dirs = %v", fs.dirs)
	}
	// Idempotent.
	if err := MkdirAll(fs, "/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := MkdirAll(fs, "bad"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("MkdirAll(bad) = %v", err)
	}
}

func TestWalkHelper(t *testing.T) {
	fs := newMemFS()
	if err := MkdirAll(fs, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(fs, "/a/f1", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(fs, "/a/b/f2", []byte("22")); err != nil {
		t.Fatal(err)
	}
	var visited []string
	err := Walk(fs, "/", func(path string, info FileInfo) error {
		visited = append(visited, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"/": true, "/a": true, "/a/b": true, "/a/f1": true, "/a/b/f2": true}
	if len(visited) != len(want) {
		t.Fatalf("visited = %v", visited)
	}
	for _, v := range visited {
		if !want[v] {
			t.Fatalf("unexpected visit %q", v)
		}
	}
	// Error propagation.
	boom := errors.New("boom")
	err = Walk(fs, "/", func(path string, info FileInfo) error {
		if path == "/a" {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("walk error = %v", err)
	}
}
