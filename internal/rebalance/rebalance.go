// Package rebalance drains fragments off storage servers that are
// leaving the cluster. It is a client-side background engine, in
// keeping with Swarm's design: servers are passive fragment
// repositories, so migration — like reconstruction, rebuild, and
// cleaning — is driven by the client that owns the data.
//
// The rebalancer's safety rules:
//
//   - Verify before delete. A source copy is removed only after the
//     target copy has been read back and matched (FID and payload CRC)
//     against what was sent. A crash mid-move leaves a duplicate, never
//     a gap; duplicates are harmless (stores are idempotent and reads
//     take the first valid copy).
//
//   - Epoch fencing. Each move captures the placement epoch before
//     picking its target, and re-checks it after the verify. If
//     membership changed mid-move, the move re-plans against the new
//     head view rather than deleting the source on the strength of a
//     stale placement decision.
//
//   - Dead sources migrate too. When the source stops answering, every
//     fragment this session knows it held is reconstructed from its
//     stripe's surviving members and stored at its new home — the
//     drain completes on redundancy instead of stalling on a corpse.
//
// Progress is resumable by construction: each pass re-lists the source
// and moves only what is still there, so a crashed or cancelled drain
// restarts from the survey, not from a checkpoint file.
package rebalance

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"swarm/internal/core"
	"swarm/internal/wire"
)

// ErrStalled is returned when a full pass over the source moved nothing
// yet fragments remain — every survivor failed to fetch, reconstruct,
// or store. The drain can be re-run once the cluster heals.
var ErrStalled = errors.New("rebalance: no progress; fragments remain on source")

const (
	defaultWorkers = 4
	maxFenceRetry  = 4
)

// Options tune a drain.
type Options struct {
	// Workers bounds concurrent fragment moves (default 4). The
	// per-server queues in the I/O engine still apply underneath, so a
	// large worker count cannot swamp any single server.
	Workers int
	// Pace, when nonzero, inserts a delay between moves on each worker
	// — a crude throttle to keep a drain from starving foreground I/O.
	Pace time.Duration
}

// Stats is a snapshot of a drain's progress.
type Stats struct {
	Source        wire.ServerID
	Passes        int   // survey passes over the source
	Planned       int   // moves attempted
	Moved         int   // fragments now verified at their new home
	Bytes         int64 // payload bytes moved
	Reconstructed int   // moves served by stripe reconstruction, not the source
	Refenced      int   // moves re-planned after a mid-move epoch change
	Skipped       int   // fragments left in place this run (fetch/store failed)
	Done          bool  // source holds none of this client's fragments
}

// Rebalancer migrates one server's fragments to their new placement
// homes. Create with New, start with Run (typically in a goroutine),
// poll with Stats.
type Rebalancer struct {
	log  *core.Log
	opts Options

	mu    sync.Mutex
	stats Stats
}

// New prepares a drain of source's fragments out of l. Nothing runs
// until Run is called.
func New(l *core.Log, source wire.ServerID, opts Options) *Rebalancer {
	if opts.Workers <= 0 {
		opts.Workers = defaultWorkers
	}
	return &Rebalancer{log: l, opts: opts, stats: Stats{Source: source}}
}

// Stats returns a snapshot of the drain's progress.
func (r *Rebalancer) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Run drains the source until it holds none of this client's fragments,
// the context is cancelled, or a pass makes no progress (ErrStalled).
// Safe to call again after an error: each pass re-surveys the source,
// so completed moves are never repeated.
func (r *Rebalancer) Run(ctx context.Context) error {
	source := r.stats.Source
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Deletions deferred while servers were down would otherwise be
		// surveyed as live fragments and migrated back to life.
		r.log.FlushDeletes()
		candidates := r.survey(source)
		r.mu.Lock()
		r.stats.Passes++
		r.mu.Unlock()
		if len(candidates) == 0 {
			// Either the source listed empty, or it never answered and
			// this session has no record of anything on it (in which
			// case reconstruction has nothing to work from either).
			r.markDone()
			return nil
		}
		moved := r.pass(ctx, source, candidates)
		if err := ctx.Err(); err != nil {
			return err
		}
		if moved == 0 {
			return fmt.Errorf("%w: %d left on server %d", ErrStalled, len(candidates), source)
		}
	}
}

// survey collects the fragments still needing migration off source:
// the server's own listing when it answers, this session's location and
// degraded-write records when it does not.
func (r *Rebalancer) survey(source wire.ServerID) (fids []wire.FID) {
	seen := make(map[wire.FID]bool)
	if ls, err := r.log.ListServer(source); err == nil {
		for _, fid := range ls {
			if !seen[fid] {
				seen[fid] = true
				fids = append(fids, fid)
			}
		}
	} else {
		for _, fid := range r.log.LocationsOn(source) {
			if !seen[fid] {
				seen[fid] = true
				fids = append(fids, fid)
			}
		}
	}
	// Degraded writes destined for the source exist only as stripe
	// redundancy; they never show up in its listing but must be
	// re-homed or the stripe stays one failure from data loss.
	for _, fid := range r.log.DegradedOn(source) {
		if !seen[fid] {
			seen[fid] = true
			fids = append(fids, fid)
		}
	}
	return fids
}

// pass runs one bounded-concurrency sweep over the candidates and
// returns how many moves completed.
func (r *Rebalancer) pass(ctx context.Context, source wire.ServerID, candidates []wire.FID) int {
	var (
		wg    sync.WaitGroup
		sem   = make(chan struct{}, r.opts.Workers)
		mu    sync.Mutex
		moved int
	)
	for _, fid := range candidates {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(fid wire.FID) {
			defer wg.Done()
			defer func() { <-sem }()
			ok := r.move(source, fid)
			mu.Lock()
			if ok {
				moved++
			}
			mu.Unlock()
			if r.opts.Pace > 0 {
				select {
				case <-time.After(r.opts.Pace):
				case <-ctx.Done():
				}
			}
		}(fid)
	}
	wg.Wait()
	return moved
}

// move relocates one fragment off source. Returns true when the
// fragment is verified at its new home and the source copy is dealt
// with (deleted, or deferred for deletion).
func (r *Rebalancer) move(source wire.ServerID, fid wire.FID) bool {
	r.bump(func(s *Stats) { s.Planned++ })
	h, payload, err := r.log.FetchFrameFrom(source, fid)
	if err != nil {
		// Source unreachable, or the fragment vanished (reclaimed, or a
		// concurrent mover won). Reconstruct from the stripe; if the
		// fragment is logically gone this fails too and we skip.
		h, payload, err = r.log.FetchFragment(fid)
		if err != nil {
			r.bump(func(s *Stats) { s.Skipped++ })
			return false
		}
		r.bump(func(s *Stats) { s.Reconstructed++ })
	}

	var avoid []wire.ServerID
	for attempt := 0; attempt < maxFenceRetry; attempt++ {
		epoch := r.log.PlacementEpoch()
		target, err := r.log.MigrationTarget(&h, source, avoid...)
		if err != nil {
			r.bump(func(s *Stats) { s.Skipped++ })
			return false
		}
		if err := r.log.StoreFrame(target, &h, payload); err != nil {
			// One retry on the next active server — the preferred
			// target may itself be failing.
			avoid = append(avoid, target.ID())
			continue
		}
		if err := r.log.VerifyFrameOn(target, &h); err != nil {
			avoid = append(avoid, target.ID())
			continue
		}
		if r.log.PlacementEpoch() != epoch {
			// Membership moved under us: the target we verified may no
			// longer be where this slot belongs (it could even be the
			// next server to drain). Re-plan; the verified copy is a
			// harmless duplicate that a later pass or cleaner removes.
			r.bump(func(s *Stats) { s.Refenced++ })
			avoid = nil
			continue
		}
		// Publish the new location before touching the source so reads
		// never race the delete.
		r.log.NoteMigrated(fid, target.ID(), len(payload))
		if conn := r.log.ServerConn(source); conn != nil {
			if err := r.log.DeleteFrom(conn, fid); err != nil {
				r.log.NoteOrphan(fid, source)
			}
		}
		r.bump(func(s *Stats) {
			s.Moved++
			s.Bytes += int64(len(payload))
		})
		return true
	}
	r.bump(func(s *Stats) { s.Skipped++ })
	return false
}

func (r *Rebalancer) markDone() {
	r.mu.Lock()
	r.stats.Done = true
	r.mu.Unlock()
}

func (r *Rebalancer) bump(f func(*Stats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}
