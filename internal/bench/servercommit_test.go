package bench

import (
	"strings"
	"testing"
)

func TestServercommitSmall(t *testing.T) {
	skipUnderRace(t)
	cfg := ServercommitConfig{Stores: 24, PayloadKB: 64, Writers: []int{1, 4}}
	rows, err := RunServercommit(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 disks × 2 modes × 2 writer counts.
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	byKey := map[string]ServercommitResult{}
	for _, r := range rows {
		if r.MBps <= 0 || r.ElapsedMS <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.AvgStoreMicros <= 0 {
			t.Fatalf("no store latency measured: %+v", r)
		}
		byKey[key(r)] = r
	}
	// The serial path pays exactly two private fsyncs per store; the
	// group path at depth 4 must coalesce below that.
	for _, d := range []string{"filedisk", "simdisk"} {
		serial := byKey[d+"/serial/4"]
		if serial.SyncsPerStore < 1.9 || serial.SyncsPerStore > 2.1 {
			t.Fatalf("%s serial syncs/store = %.2f, want ≈2", d, serial.SyncsPerStore)
		}
		group := byKey[d+"/group/4"]
		if group.SyncsPerStore >= serial.SyncsPerStore {
			t.Fatalf("%s group syncs/store %.2f ≥ serial %.2f: no coalescing",
				d, group.SyncsPerStore, serial.SyncsPerStore)
		}
		if group.MeanEntryBatch < 1 {
			t.Fatalf("%s entry batch %.2f < 1", d, group.MeanEntryBatch)
		}
	}
	// The acceptance bars — ≥2x filedisk throughput at the deepest sweep
	// point and <1 fsync per fragment at depth ≥4 — hold on unloaded
	// hosts with real fsync latency, but depend on the host's storage
	// stack; enforced in strict mode (and verified in BENCH_servercommit.json).
	if benchStrict() {
		if sp := ServercommitSpeedup(rows, "filedisk"); sp < 2 {
			t.Fatalf("filedisk group/serial speedup = %.2fx, want ≥2x", sp)
		}
		if g := byKey["filedisk/group/4"]; g.SyncsPerStore >= 1 {
			t.Fatalf("filedisk group syncs/store at depth 4 = %.2f, want <1", g.SyncsPerStore)
		}
	}

	var sb strings.Builder
	PrintServercommitResults(&sb, rows)
	if !strings.Contains(sb.String(), "speedup") {
		t.Fatalf("render missing speedup:\n%s", sb.String())
	}
}

func key(r ServercommitResult) string {
	return r.Disk + "/" + r.Mode + "/" + string(rune('0'+r.Writers))
}

func TestServercommitSpeedupPicksDeepestPoint(t *testing.T) {
	rows := []ServercommitResult{
		{Disk: "filedisk", Mode: "serial", Writers: 1, MBps: 10},
		{Disk: "filedisk", Mode: "group", Writers: 1, MBps: 11},
		{Disk: "filedisk", Mode: "serial", Writers: 8, MBps: 10},
		{Disk: "filedisk", Mode: "group", Writers: 8, MBps: 30},
		{Disk: "simdisk", Mode: "serial", Writers: 8, MBps: 5},
		{Disk: "simdisk", Mode: "group", Writers: 8, MBps: 5},
	}
	if sp := ServercommitSpeedup(rows, "filedisk"); sp != 3 {
		t.Fatalf("speedup = %.2f, want 3 (depth-8 pair)", sp)
	}
	if sp := ServercommitSpeedup(nil, "filedisk"); sp != 0 {
		t.Fatalf("empty speedup = %.2f, want 0", sp)
	}
}
