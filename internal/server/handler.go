package server

import (
	"encoding/binary"
	"errors"

	"swarm/internal/wire"
)

// Handle dispatches one decoded request against the store and returns the
// response status and body. It is transport-independent: the TCP front end
// and the in-process transport both call it.
//
// When the QoS tier is enabled (SetQoS), data-plane requests pass
// through the weighted-fair scheduler first: the calling goroutine
// blocks until its principal's turn, or gets StatusBusy back if the
// admission controller sheds it. Ping and Stat bypass the scheduler —
// the control plane must answer (health checks, the stats a human needs
// to diagnose the overload) precisely when the data plane is saturated.
func (s *Store) Handle(client wire.ClientID, op wire.Op, body []byte) (wire.Status, wire.Message) {
	q := s.qos
	if q == nil || op == wire.OpPing || op == wire.OpStat {
		return s.handle(client, op, body)
	}
	var status wire.Status
	var resp wire.Message
	if !q.Do(client, requestCost(op, body), func() {
		status, resp = s.handle(client, op, body)
	}) {
		return wire.StatusBusy, errMsgStr("over quota or queue bound; back off and retry")
	}
	return status, resp
}

// requestCost is a request's scheduling weight in bytes: the request
// body (which contains the payload for stores), or for reads the
// response length the client asked for — a read's cost is the bytes it
// moves out, not the 16-byte request that asks. Floored at qosMinCost so
// metadata operations are not free.
func requestCost(op wire.Op, body []byte) int64 {
	cost := int64(len(body))
	// ReadRequest layout: FID u64, Off u32, Len u32 (see wire.ReadRequest).
	if op == wire.OpRead && len(body) >= 16 {
		if l := int64(binary.LittleEndian.Uint32(body[12:16])); l > cost {
			cost = l
		}
	}
	if cost < qosMinCost {
		cost = qosMinCost
	}
	return cost
}

// handle is the scheduler-independent dispatch.
func (s *Store) handle(client wire.ClientID, op wire.Op, body []byte) (wire.Status, wire.Message) {
	switch op {
	case wire.OpPing:
		return wire.StatusOK, &wire.GenericResponse{}

	case wire.OpStore:
		var req wire.StoreRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		if err := s.Store(req.FID, req.Data, req.Mark, req.Ranges); err != nil {
			return mapErr(err)
		}
		return wire.StatusOK, &wire.GenericResponse{}

	case wire.OpRead:
		var req wire.ReadRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		data, ext, err := s.ReadExtent(client, req.FID, req.Off, req.Len)
		if err != nil {
			return mapErr(err)
		}
		if ext != nil {
			// Zero-copy cached read: the payload aliases the cache
			// extent and rides to the wire as-is. The transport's
			// ReleasePayload call (instead of PutBuffer) returns the
			// response's reference once the frame is written.
			return wire.StatusOK, &cachedReadResponse{
				ReadResponse: wire.ReadResponse{Data: data},
				ext:          ext,
			}
		}
		return wire.StatusOK, &wire.ReadResponse{Data: data}

	case wire.OpDelete:
		var req wire.DeleteRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		if err := s.Delete(client, req.FID); err != nil {
			return mapErr(err)
		}
		return wire.StatusOK, &wire.GenericResponse{}

	case wire.OpPrealloc:
		var req wire.PreallocRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		if err := s.Prealloc(req.FID); err != nil {
			return mapErr(err)
		}
		return wire.StatusOK, &wire.GenericResponse{}

	case wire.OpLastMarked:
		var req wire.LastMarkedRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		fid, found := s.LastMarked(req.Client)
		return wire.StatusOK, &wire.LastMarkedResponse{FID: fid, Found: found}

	case wire.OpHasFragment:
		var req wire.HasFragmentRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		size, found := s.Has(req.FID)
		return wire.StatusOK, &wire.HasFragmentResponse{Found: found, Size: size}

	case wire.OpListFIDs:
		var req wire.ListFIDsRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		return wire.StatusOK, &wire.ListFIDsResponse{FIDs: s.List(req.Client)}

	case wire.OpACLCreate:
		var req wire.ACLCreateRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		aid := s.acls.Create(req.Members)
		return wire.StatusOK, &wire.ACLCreateResponse{AID: aid}

	case wire.OpACLModify:
		var req wire.ACLModifyRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		if err := s.acls.Modify(req.AID, req.Add, req.Remove); err != nil {
			return mapErr(err)
		}
		return wire.StatusOK, &wire.GenericResponse{}

	case wire.OpACLDelete:
		var req wire.ACLDeleteRequest
		if err := req.Decode(wire.NewDecoder(body)); err != nil {
			return wire.StatusBadRequest, errMsg(err)
		}
		if err := s.acls.Delete(req.AID); err != nil {
			return mapErr(err)
		}
		return wire.StatusOK, &wire.GenericResponse{}

	case wire.OpStat:
		st := s.Stats()
		var tenants []wire.TenantStat
		for _, t := range st.Tenants {
			tenants = append(tenants, wire.TenantStat{
				Client:      t.Client,
				Weight:      uint32(t.Weight),
				Ops:         t.Ops,
				Bytes:       t.Bytes,
				Sheds:       t.Sheds,
				Queued:      uint32(t.Queued),
				QueuedBytes: uint64(t.QueuedBytes),
				P50Micros:   uint64(t.P50.Microseconds()),
				P99Micros:   uint64(t.P99.Microseconds()),
			})
		}
		return wire.StatusOK, &wire.StatResponse{
			FragmentSize:    uint32(st.FragmentSize),
			TotalSlots:      uint32(st.TotalSlots),
			FreeSlots:       uint32(st.FreeSlots),
			Fragments:       uint32(st.Fragments),
			Stores:          uint64(st.Stores),
			SyncRequests:    uint64(st.SyncRequests),
			Syncs:           uint64(st.Syncs),
			EntryBatches:    uint64(st.EntryBatches),
			EntriesBatched:  uint64(st.EntriesBatched),
			StoreNanos:      uint64(st.StoreNanos),
			ReadHits:        uint64(st.ReadHits),
			ReadMisses:      uint64(st.ReadMisses),
			ReadaheadLoads:  uint64(st.ReadaheadLoads),
			ReadBytesCached: uint64(st.ReadBytesCached),
			ReadBytesDisk:   uint64(st.ReadBytesDisk),
			ReadCacheBytes:  uint64(st.ReadCacheBytes),
			Tenants:         tenants,
		}

	default:
		return wire.StatusBadRequest, errMsgStr("unknown op")
	}
}

// cachedReadResponse is a ReadResponse whose Data aliases a read-cache
// extent rather than an exclusively-owned pooled buffer. It implements
// wire.PayloadReleaser so transports return the reference (possibly
// recycling the buffer, if the cache has since evicted it) instead of
// force-recycling a buffer other readers may still be serving from.
type cachedReadResponse struct {
	wire.ReadResponse
	ext *Extent
}

// ReleasePayload implements wire.PayloadReleaser.
func (m *cachedReadResponse) ReleasePayload() { m.ext.Release() }

// errBody carries an error string; non-OK responses encode it.
type errBody struct{ msg string }

func (e *errBody) Encode(enc *wire.Encoder) { enc.String32(e.msg) }
func (e *errBody) Decode(d *wire.Decoder) error {
	e.msg = d.String32()
	return d.Err()
}

func errMsg(err error) wire.Message     { return &errBody{msg: err.Error()} }
func errMsgStr(msg string) wire.Message { return &errBody{msg: msg} }

// ErrText extracts the error message from a non-OK response message
// produced by Handle.
func ErrText(msg wire.Message) string {
	if e, ok := msg.(*errBody); ok {
		return e.msg
	}
	return ""
}

func mapErr(err error) (wire.Status, wire.Message) {
	switch {
	case errors.Is(err, ErrNotFound):
		return wire.StatusNotFound, errMsg(err)
	case errors.Is(err, ErrExists):
		return wire.StatusExists, errMsg(err)
	case errors.Is(err, ErrNoSpace):
		return wire.StatusNoSpace, errMsg(err)
	case errors.Is(err, ErrAccess):
		return wire.StatusAccess, errMsg(err)
	case errors.Is(err, ErrNoACL):
		return wire.StatusNotFound, errMsg(err)
	case errors.Is(err, ErrTooLarge), errors.Is(err, ErrBadRange):
		return wire.StatusBadRequest, errMsg(err)
	default:
		return wire.StatusInternal, errMsg(err)
	}
}
