package core

import (
	"bytes"
	"testing"

	"swarm/internal/erasure"
	"swarm/internal/wire"
)

// These tests exercise the multi-parity (Reed–Solomon) stripe path
// end-to-end: degraded writes with up to m unreachable servers, reads
// and rebuilds with two dead servers, recovery over a degraded cluster,
// and mixed-format logs where old XOR stripes and new RS stripes
// coexist.

// TestDegradedSetPerStripe is the regression test for the Log.degraded
// bookkeeping: each stripe absorbs up to m unreachable members (tracked
// as a per-stripe server set), and the m+1'th failure is rejected
// instead of silently absorbed past the redundancy budget.
func TestDegradedSetPerStripe(t *testing.T) {
	c := newTestCluster(t, 6)
	l, _ := c.open(t, Config{ParityShards: 2})
	defer l.Close()

	if got := l.ParityShards(); got != 2 {
		t.Fatalf("ParityShards = %d, want 2", got)
	}
	if kind := l.Codec().Kind(); kind != erasure.KindRS {
		t.Fatalf("default codec for m=2 is %v, want rs", kind)
	}
	if st := l.Stats(); st.MinSpareRedundancy != 2 {
		t.Fatalf("healthy MinSpareRedundancy = %d, want 2", st.MinSpareRedundancy)
	}

	// Two servers die: every stripe loses at most two members, which
	// RS(4,2) covers, so Sync must succeed in degraded mode.
	c.flaky[1].SetDown(true)
	c.flaky[4].SetDown(true)
	var addrs []BlockAddr
	for i := 0; i < 40; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 600)))
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync with two servers down under RS(4,2): %v", err)
	}
	st := l.Stats()
	if st.DegradedWrites == 0 || st.DegradedStripes == 0 {
		t.Fatalf("no degraded writes recorded: %+v", st)
	}
	if st.MinSpareRedundancy != 0 {
		t.Fatalf("MinSpareRedundancy = %d with both parity budgets spent, want 0", st.MinSpareRedundancy)
	}
	// The degraded set holds fragments from BOTH dead servers.
	servers := map[uint8]bool{}
	l.mu.Lock()
	for _, set := range l.degraded {
		if len(set) > 2 {
			l.mu.Unlock()
			t.Fatalf("stripe degraded set holds %d members, cap is m=2", len(set))
		}
		for _, sid := range set {
			servers[uint8(sid)] = true
		}
	}
	l.mu.Unlock()
	if !servers[2] || !servers[5] {
		t.Fatalf("degraded sets name servers %v, want both 2 and 5", servers)
	}

	// Everything stays readable (read-your-writes + reconstruction).
	for i, addr := range addrs {
		got, err := l.Read(addr, 0, 600)
		if err != nil {
			t.Fatalf("read %d with two servers down: %v", i, err)
		}
		if !bytes.Equal(got, blockPattern(i, 600)) {
			t.Fatalf("read %d mismatch", i)
		}
	}

	// A third dead server exhausts the redundancy budget: the write
	// path must surface the error rather than absorb a third member.
	c.flaky[3].SetDown(true)
	for i := 0; i < 20; i++ {
		if _, err := l.AppendBlock(7, blockPattern(100+i, 600), nil); err != nil {
			break // setErr can surface on append once sticky
		}
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync succeeded with three servers down under RS(4,2)")
	}
}

// TestXORRejectsSecondFailure pins the baseline: with the classic
// single-parity XOR config, a second dead server must still exhaust
// redundancy exactly as before the pluggable-erasure refactor.
func TestXORRejectsSecondFailure(t *testing.T) {
	c := newTestCluster(t, 4)
	l, _ := c.open(t, Config{})
	defer l.Close()

	c.flaky[0].SetDown(true)
	c.flaky[2].SetDown(true)
	for i := 0; i < 20; i++ {
		if _, err := l.AppendBlock(7, blockPattern(i, 600), nil); err != nil {
			break
		}
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync succeeded with two servers down under XOR(1)")
	}
}

// TestRebuildTwoReplacedServersRS: both dead servers are replaced with
// empty hardware; RebuildServer reconstructs each from the surviving
// k-of-n members, restoring full 2-failure tolerance.
func TestRebuildTwoReplacedServersRS(t *testing.T) {
	c := newTestCluster(t, 6)
	l, _ := c.open(t, Config{ParityShards: 2})
	var addrs []BlockAddr
	for i := 0; i < 60; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 600)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Replace servers 2 and 5 (IDs 3 and 6) with empty disks.
	c.replaceServer(t, 2)
	c.replaceServer(t, 5)

	l2, _ := c.open(t, Config{ParityShards: 2})
	defer l2.Close()
	for _, victim := range []int{2, 5} {
		rebuilt, err := l2.RebuildServer(wire.ServerID(victim + 1))
		if err != nil {
			t.Fatalf("rebuild server %d: %v", victim+1, err)
		}
		if rebuilt == 0 {
			t.Fatalf("rebuild of server %d restored nothing", victim+1)
		}
	}

	// Full redundancy is back: kill TWO different servers and every
	// block must still read via reconstruction.
	c.flaky[0].SetDown(true)
	c.flaky[3].SetDown(true)
	for i, addr := range addrs {
		got, err := l2.Read(addr, 0, 600)
		if err != nil {
			t.Fatalf("read %d after rebuild with two other servers down: %v", i, err)
		}
		if !bytes.Equal(got, blockPattern(i, 600)) {
			t.Fatalf("block %d corrupted after rebuild", i)
		}
	}
	c.flaky[0].SetDown(false)
	c.flaky[3].SetDown(false)

	// Every closed stripe verifies parity-clean.
	for _, s := range l2.usage.Stripes() {
		u, _ := l2.usage.Get(s)
		if !u.Closed {
			continue
		}
		if err := l2.VerifyStripe(s); err != nil {
			t.Fatalf("stripe %d after double rebuild: %v", s, err)
		}
	}
}

// TestRecoveryWithTwoServersDownRS: the client crashes while two of six
// servers are dead; recovery (rollForward) must still find the
// checkpoint and reconstruct records from the surviving k members.
func TestRecoveryWithTwoServersDownRS(t *testing.T) {
	c := newTestCluster(t, 6)
	l, _ := c.open(t, Config{ParityShards: 2})
	var addrs []BlockAddr
	for i := 0; i < 40; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 500)))
	}
	if _, err := l.WriteCheckpoint(7, []byte("ck-rs")); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 50; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 500)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	// Two servers die; the client crashes (no Close); a fresh session
	// must recover and read everything back.
	c.flaky[1].SetDown(true)
	c.flaky[3].SetDown(true)
	l2, rec := reopen(t, c, Config{ParityShards: 2})
	defer l2.Close()
	if string(rec.Service(7).Checkpoint) != "ck-rs" {
		t.Fatalf("checkpoint = %q", rec.Service(7).Checkpoint)
	}
	for i, addr := range addrs {
		got, err := l2.Read(addr, 0, 500)
		if err != nil {
			t.Fatalf("read %d with two servers down: %v", i, err)
		}
		if !bytes.Equal(got, blockPattern(i, 500)) {
			t.Fatalf("read %d mismatch", i)
		}
	}

	// Servers return; VerifyStripe recomputes both RS parities from the
	// stored data and matches them against the stored parity fragments.
	c.flaky[1].SetDown(false)
	c.flaky[3].SetDown(false)
	for _, s := range l2.usage.Stripes() {
		u, _ := l2.usage.Get(s)
		if !u.Closed {
			continue
		}
		if err := l2.VerifyStripe(s); err != nil {
			t.Fatalf("stripe %d after recovery: %v", s, err)
		}
	}
}

// TestMixedFormatLog: a log written under the legacy XOR(1) geometry is
// reopened with RS(4,2); old v1-header stripes and new v2-header
// stripes coexist, and both read cleanly — including through a dead
// server, which forces reconstruction to pick the right codec per
// stripe from the fragment headers rather than the client config.
func TestMixedFormatLog(t *testing.T) {
	c := newTestCluster(t, 6)
	l, _ := c.open(t, Config{}) // legacy default: XOR, one parity shard
	if l.ParityShards() != 1 || l.Codec().Kind() != erasure.KindXOR {
		t.Fatalf("legacy geometry = %v(%d)", l.Codec().Kind(), l.ParityShards())
	}
	var oldAddrs []BlockAddr
	for i := 0; i < 30; i++ {
		oldAddrs = append(oldAddrs, mustAppend(t, l, 7, blockPattern(i, 700)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reconfigure the SAME cluster to RS(4,2) and append more.
	l2, _ := c.open(t, Config{ParityShards: 2, Codec: erasure.KindRS})
	defer l2.Close()
	var newAddrs []BlockAddr
	for i := 0; i < 30; i++ {
		newAddrs = append(newAddrs, mustAppend(t, l2, 7, blockPattern(1000+i, 700)))
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}

	readAll := func(stage string) {
		t.Helper()
		for i, addr := range oldAddrs {
			got, err := l2.Read(addr, 0, 700)
			if err != nil {
				t.Fatalf("%s: old stripe read %d: %v", stage, i, err)
			}
			if !bytes.Equal(got, blockPattern(i, 700)) {
				t.Fatalf("%s: old stripe read %d mismatch", stage, i)
			}
		}
		for i, addr := range newAddrs {
			got, err := l2.Read(addr, 0, 700)
			if err != nil {
				t.Fatalf("%s: new stripe read %d: %v", stage, i, err)
			}
			if !bytes.Equal(got, blockPattern(1000+i, 700)) {
				t.Fatalf("%s: new stripe read %d mismatch", stage, i)
			}
		}
	}
	readAll("healthy")

	// One dead server: BOTH formats reconstruct (the old stripes via
	// their v1 XOR headers, the new via v2 RS headers).
	c.flaky[2].SetDown(true)
	readAll("one server down")
	c.flaky[2].SetDown(false)

	// VerifyStripe is header-driven too: every closed stripe of either
	// format checks out under the reconfigured client.
	for _, s := range l2.usage.Stripes() {
		u, _ := l2.usage.Get(s)
		if !u.Closed {
			continue
		}
		if err := l2.VerifyStripe(s); err != nil {
			t.Fatalf("mixed-format stripe %d: %v", s, err)
		}
	}
}
