// Package vfs defines the file-system interface shared by Sting (the
// Swarm-backed log-structured file system) and extfs (the ext2-like
// baseline), so benchmarks and tests treat both uniformly. The interface
// mirrors the "standard UNIX file system interface" Sting provides
// (§3.1).
package vfs

import (
	"errors"
	"strings"
	"time"
)

// Common file-system errors.
var (
	// ErrNotExist is returned when a path does not exist.
	ErrNotExist = errors.New("vfs: no such file or directory")
	// ErrExist is returned when creating an existing path.
	ErrExist = errors.New("vfs: file exists")
	// ErrNotDir is returned when a path component is not a directory.
	ErrNotDir = errors.New("vfs: not a directory")
	// ErrIsDir is returned for file operations on a directory.
	ErrIsDir = errors.New("vfs: is a directory")
	// ErrNotEmpty is returned when removing a non-empty directory.
	ErrNotEmpty = errors.New("vfs: directory not empty")
	// ErrInvalid is returned for malformed paths or arguments.
	ErrInvalid = errors.New("vfs: invalid argument")
	// ErrNoSpace is returned when the file system is full.
	ErrNoSpace = errors.New("vfs: no space left on device")
	// ErrClosed is returned for operations on a closed file or FS.
	ErrClosed = errors.New("vfs: closed")
)

// FileMode distinguishes files from directories.
type FileMode uint8

// File modes.
const (
	ModeFile FileMode = iota + 1
	ModeDir
)

// IsDir reports whether the mode is a directory.
func (m FileMode) IsDir() bool { return m == ModeDir }

// FileInfo describes a file or directory.
type FileInfo struct {
	Name  string
	Ino   uint64
	Size  int64
	Mode  FileMode
	Nlink uint32
	MTime time.Time
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name string
	Ino  uint64
	Mode FileMode
}

// File is an open file handle.
type File interface {
	// ReadAt reads up to len(p) bytes at offset off. Returns the count
	// read; a read past EOF returns a short (possibly zero) count with
	// no error.
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt writes p at offset off, extending the file as needed.
	WriteAt(p []byte, off int64) (int, error)
	// Size returns the current file size.
	Size() (int64, error)
	// Truncate sets the file size.
	Truncate(size int64) error
	// Sync makes the file's data and metadata durable.
	Sync() error
	// Close releases the handle (without an implicit Sync).
	Close() error
}

// FileSystem is the interface Sting and extfs implement.
type FileSystem interface {
	// Create creates (or truncates) a file and opens it.
	Create(path string) (File, error)
	// Open opens an existing file.
	Open(path string) (File, error)
	// Mkdir creates a directory.
	Mkdir(path string) error
	// Rmdir removes an empty directory.
	Rmdir(path string) error
	// Unlink removes a file.
	Unlink(path string) error
	// Rename atomically moves a file or directory. The destination must
	// not exist, except for files, which are replaced.
	Rename(oldPath, newPath string) error
	// Stat describes a path.
	Stat(path string) (FileInfo, error)
	// ReadDir lists a directory, sorted by name.
	ReadDir(path string) ([]DirEntry, error)
	// Sync flushes all cached state to stable storage.
	Sync() error
	// Unmount flushes and shuts the file system down.
	Unmount() error
}

// SplitPath normalizes an absolute path into components. "/" yields an
// empty slice. Errors on relative, empty, or dot-containing paths.
func SplitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, ErrInvalid
	}
	if path == "/" {
		return nil, nil
	}
	parts := strings.Split(strings.Trim(path, "/"), "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, ErrInvalid
		}
		if len(p) > 255 {
			return nil, ErrInvalid
		}
	}
	return parts, nil
}

// SplitDir returns the parent components and final name of a path.
func SplitDir(path string) (parent []string, name string, err error) {
	parts, err := SplitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", ErrInvalid // operations on "/" itself
	}
	return parts[:len(parts)-1], parts[len(parts)-1], nil
}

// ReadFile reads an entire file through fs.
func ReadFile(fs FileSystem, path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	n, err := f.ReadAt(buf, 0)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// WriteFile creates path with the given contents.
func WriteFile(fs FileSystem, path string, data []byte) error {
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// MkdirAll creates a directory and any missing parents.
func MkdirAll(fs FileSystem, path string) error {
	parts, err := SplitPath(path)
	if err != nil {
		return err
	}
	cur := ""
	for _, p := range parts {
		cur += "/" + p
		if err := fs.Mkdir(cur); err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// Walk visits every path under root (depth-first, lexical order),
// calling fn with the path and its info.
func Walk(fs FileSystem, root string, fn func(path string, info FileInfo) error) error {
	info, err := fs.Stat(root)
	if err != nil {
		return err
	}
	if err := fn(root, info); err != nil {
		return err
	}
	if !info.Mode.IsDir() {
		return nil
	}
	entries, err := fs.ReadDir(root)
	if err != nil {
		return err
	}
	for _, e := range entries {
		child := root + "/" + e.Name
		if root == "/" {
			child = "/" + e.Name
		}
		if err := Walk(fs, child, fn); err != nil {
			return err
		}
	}
	return nil
}
