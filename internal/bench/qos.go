// QoS benchmark: performance isolation under multi-tenant overload
// (DESIGN.md §3.14). One greedy tenant (32 writers) and one light tenant
// (2 writers) share a 4-server cluster whose disks are the bottleneck.
// The same offered load runs under four regimes: the light tenant alone
// (its solo baseline), FIFO (the pre-QoS server, the ablation), the
// weighted-fair scheduler, and WFQ plus a byte quota on the greedy
// tenant with admission control shedding the excess. The headline is the
// light tenant's throughput and p99 staying near its solo baseline while
// the greedy tenant saturates the cluster — under FIFO the light tenant
// inherits the greedy tenant's queue — with aggregate goodput staying
// flat: fairness must reorder work, not destroy it.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"swarm/internal/model"
	"swarm/internal/server"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

// Tenant principals: the light tenant is client 1, the greedy client 2.
const (
	qosLightID  wire.ClientID = 1
	qosGreedyID wire.ClientID = 2
)

// QoSBenchConfig parameterizes the multi-tenant overload comparison.
type QoSBenchConfig struct {
	Servers       int
	FragBytes     int // per-store payload (= fragment size)
	LightWriters  int
	GreedyWriters int
	Duration      time.Duration // measured run per mode (after warmup)
	Warmup        time.Duration // settle time per mode; samples discarded
	Scale         float64
}

func (c QoSBenchConfig) withDefaults() QoSBenchConfig {
	if c.Servers == 0 {
		c.Servers = 4
	}
	if c.FragBytes == 0 {
		c.FragBytes = 64 << 10
	}
	if c.LightWriters == 0 {
		c.LightWriters = 2
	}
	if c.GreedyWriters == 0 {
		c.GreedyWriters = 32
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 500 * time.Millisecond
	}
	if c.Scale == 0 {
		c.Scale = 25
	}
	return c
}

// QoSTenantResult is one tenant's measurement in one mode.
type QoSTenantResult struct {
	Tenant      string  `json:"tenant"` // "light" or "greedy"
	Writers     int     `json:"writers"`
	Ops         int64   `json:"ops"`
	MBps        float64 `json:"mb_per_s"` // normalized to 1999-equivalents
	P50MS       float64 `json:"p50_ms"`   // client-observed store latency
	P99MS       float64 `json:"p99_ms"`
	Sheds       int64   `json:"sheds"`        // server-side admission rejections
	BusyRetries int64   `json:"busy_retries"` // client-side retries after sheds
}

// QoSResult is one scheduling regime's measurement.
type QoSResult struct {
	Mode          string            `json:"mode"` // solo | fifo | wfq | wfq+quota
	Tenants       []QoSTenantResult `json:"tenants"`
	AggregateMBps float64           `json:"aggregate_mb_per_s"`
}

// qosMode is one row of the sweep.
type qosMode struct {
	name  string
	solo  bool // only the light tenant offers load
	qos   bool // weighted-fair scheduler on
	quota bool // greedy byte quota + admission on top of WFQ
}

// RunQoS measures the multi-tenant sweep. Results come back in sweep
// order: solo, fifo, wfq, wfq+quota.
func RunQoS(cfg QoSBenchConfig, progress func(string)) ([]QoSResult, error) {
	cfg = cfg.withDefaults()
	if progress == nil {
		progress = func(string) {}
	}
	modes := []qosMode{
		{name: "solo", solo: true},
		{name: "fifo"},
		{name: "wfq", qos: true},
		{name: "wfq+quota", qos: true, quota: true},
	}
	var out []QoSResult
	for _, m := range modes {
		progress(fmt.Sprintf("qos: %s (%d+%d writers, %v)", m.name, cfg.LightWriters, cfg.GreedyWriters, cfg.Duration))
		r, err := runQoSMode(cfg, m)
		if err != nil {
			return out, fmt.Errorf("qos %s: %w", m.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// qosWriter is one writer goroutine's connection set and measurements.
type qosWriter struct {
	tenant wire.ClientID
	conns  []transport.ServerConn
	seq    uint64 // FID sequence base, unique per writer

	ops       int64
	latencies []time.Duration
}

func runQoSMode(cfg QoSBenchConfig, mode qosMode) (QoSResult, error) {
	params := model.Paper1999().Scaled(cfg.Scale)
	// Disk-bound regime: this figure studies the server's request
	// scheduler, so the scarce resource must be the one it schedules.
	// The 1999 fabric made the server CPU the bottleneck (the paper's
	// own observation); on the modern shape of the hardware — fast
	// NICs and cores, storage still serial — the disk is. Unlimited
	// NIC/CPU queues keep the contention where the scheduler can see
	// it instead of in front-of-server queues no QoS tier could touch.
	params.NetRate = 0
	params.ServerCPU = 0
	cluster, err := NewSimCluster(ClusterConfig{
		Servers:      cfg.Servers,
		FragmentSize: cfg.FragBytes,
		Params:       params,
	})
	if err != nil {
		return QoSResult{}, err
	}
	if mode.qos {
		qcfg := server.QoSConfig{
			// Two slots per server: ordering is decided by the DRR
			// queue, not races into the disk queue behind it, and the
			// weight-proportional concurrency cap pins the greedy class
			// to one slot under contention — a dispatched light request
			// shares the disk with at most one greedy request in flight,
			// so its service time, not just its queue wait, stays near
			// the solo case.
			Slots:   2,
			Quantum: cfg.FragBytes,
			Classes: map[wire.ClientID]server.ClassConfig{
				qosLightID:  {Weight: 8},
				qosGreedyID: {Weight: 1},
			},
		}
		if mode.quota {
			// Admission bound: the greedy class may queue at most six
			// requests per server. Its 32 writers offer ~8 concurrent
			// requests per server, so the excess is shed with StatusBusy
			// and retried after backoff — yet six queued stores are ample
			// to keep the greedy slot busy, so aggregate goodput stays at
			// FIFO levels. The byte quota on top is a guardrail set above
			// the class's achievable steady rate (~0.15× the raw disk
			// rate through one slot): it only bites on bursts, because a
			// quota that binds at steady state would subtract its whole
			// deficit from aggregate goodput. Shedding the queue tail
			// instead converts overload into client backoff, which costs
			// the open-loop greedy tenant nothing it was going to get.
			g := qcfg.Classes[qosGreedyID]
			g.MaxQueuedOps = 6
			g.MaxQueuedBytes = int64(6 * cfg.FragBytes)
			g.ByteRate = 0.3 * params.DiskRate
			g.ByteBurst = g.ByteRate / 8
			qcfg.Classes[qosGreedyID] = g
		}
		for _, st := range cluster.Stores() {
			st.SetQoS(qcfg)
		}
	}

	// Build the writer fleet: every writer is its own client machine
	// (own NIC) with resilient connections, so shed requests are retried
	// with backoff exactly as a production client would.
	var writers []*qosWriter
	addWriters := func(tenant wire.ClientID, n int) {
		for i := 0; i < n; i++ {
			env := cluster.Client(tenant)
			conns := make([]transport.ServerConn, len(env.Conns))
			for j, sc := range env.Conns {
				conns[j] = transport.NewResilient(sc, transport.ResilientConfig{
					Seed: int64(tenant)<<16 + int64(i*len(env.Conns)+j) + 1,
				})
			}
			writers = append(writers, &qosWriter{
				tenant: tenant,
				conns:  conns,
				seq:    uint64(i+1) << 20,
			})
		}
	}
	addWriters(qosLightID, cfg.LightWriters)
	if !mode.solo {
		addWriters(qosGreedyID, cfg.GreedyWriters)
	}

	// Each writer stores fragments round-robin across the cluster and
	// deletes behind a fixed window, bounding disk occupancy so the run
	// length is set by Duration, not capacity. Stores that still fail
	// after the transport's busy retries count as sheds (server side)
	// and are simply re-offered: the workload is open-loop pressure.
	// Samples from the warmup window are discarded — the first instants
	// of a run mix cold allocator paths, empty queues, and unfull token
	// buckets, and dominate run-to-run variance at these durations.
	payload := make([]byte, cfg.FragBytes)
	const window = 16
	var wg sync.WaitGroup
	start := time.Now()
	warmEnd := start.Add(cfg.Warmup)
	deadline := warmEnd.Add(cfg.Duration)
	for wi, w := range writers {
		wg.Add(1)
		go func(wi int, w *qosWriter) {
			defer wg.Done()
			var stored []wire.FID
			for n := 0; time.Now().Before(deadline); n++ {
				fid := wire.MakeFID(w.tenant, w.seq+uint64(n))
				sc := w.conns[(wi+n)%len(w.conns)]
				t0 := time.Now()
				err := sc.Store(fid, payload, false, nil)
				if err != nil {
					// Exhausted busy retries (or a transient blip): the
					// request was shed, not served; don't count it.
					continue
				}
				if t0.After(warmEnd) {
					w.ops++
					w.latencies = append(w.latencies, time.Since(t0))
				}
				stored = append(stored, fid)
				if len(stored) > window {
					old := stored[0]
					stored = stored[1:]
					if derr := w.conns[(wi+n)%len(w.conns)].Delete(old); derr != nil {
						continue
					}
				}
			}
		}(wi, w)
	}
	wg.Wait()
	elapsed := time.Since(warmEnd)

	// Per-tenant rollup: ops and client-observed latency from the
	// writers, sheds from the servers' per-tenant accounting, busy
	// retries from the transports.
	type agg struct {
		writers int
		ops     int64
		lats    []time.Duration
		busy    int64
	}
	byTenant := map[wire.ClientID]*agg{}
	for _, w := range writers {
		a := byTenant[w.tenant]
		if a == nil {
			a = &agg{}
			byTenant[w.tenant] = a
		}
		a.writers++
		a.ops += w.ops
		a.lats = append(a.lats, w.latencies...)
		for _, h := range transport.HealthOf(w.conns) {
			a.busy += h.Busy
		}
	}
	sheds := map[wire.ClientID]int64{}
	for _, st := range cluster.Stores() {
		for _, tn := range st.Stats().Tenants {
			sheds[tn.Client] += int64(tn.Sheds)
		}
	}

	res := QoSResult{Mode: mode.name}
	var totalBytes float64
	for _, tenant := range []wire.ClientID{qosLightID, qosGreedyID} {
		a := byTenant[tenant]
		if a == nil {
			continue
		}
		name := "light"
		if tenant == qosGreedyID {
			name = "greedy"
		}
		bytes := float64(a.ops) * float64(cfg.FragBytes)
		totalBytes += bytes
		sort.Slice(a.lats, func(i, j int) bool { return a.lats[i] < a.lats[j] })
		res.Tenants = append(res.Tenants, QoSTenantResult{
			Tenant:      name,
			Writers:     a.writers,
			Ops:         a.ops,
			MBps:        bytes / elapsed.Seconds() / model.MB / cfg.Scale,
			P50MS:       durQuantileMS(a.lats, 0.50),
			P99MS:       durQuantileMS(a.lats, 0.99),
			Sheds:       sheds[tenant],
			BusyRetries: a.busy,
		})
	}
	res.AggregateMBps = totalBytes / elapsed.Seconds() / model.MB / cfg.Scale
	return res, nil
}

// durQuantileMS returns the q-th quantile of sorted latencies in ms.
func durQuantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

// qosTenant fetches one tenant's row from a mode result (nil if absent).
func qosTenant(r QoSResult, tenant string) *QoSTenantResult {
	for i := range r.Tenants {
		if r.Tenants[i].Tenant == tenant {
			return &r.Tenants[i]
		}
	}
	return nil
}

// qosMode fetches one mode's row (nil if absent).
func qosModeRow(rows []QoSResult, mode string) *QoSResult {
	for i := range rows {
		if rows[i].Mode == mode {
			return &rows[i]
		}
	}
	return nil
}

// QoSIsolation summarizes the figure: how much of its solo throughput
// the light tenant keeps, and how its p99 stretches, in each contended
// mode. Values are ratios vs the solo baseline (0 when missing).
type QoSIsolation struct {
	Mode          string  `json:"mode"`
	LightMBpsFrac float64 `json:"light_mbps_vs_solo"` // 1.0 = no degradation
	LightP99X     float64 `json:"light_p99_x_solo"`   // 1.0 = no stretch
	AggVsFIFO     float64 `json:"aggregate_vs_fifo"`  // goodput ratio
}

// QoSIsolationSummary derives the per-mode isolation ratios.
func QoSIsolationSummary(rows []QoSResult) []QoSIsolation {
	solo := qosModeRow(rows, "solo")
	fifo := qosModeRow(rows, "fifo")
	if solo == nil {
		return nil
	}
	base := qosTenant(*solo, "light")
	var out []QoSIsolation
	for _, r := range rows {
		if r.Mode == "solo" {
			continue
		}
		iso := QoSIsolation{Mode: r.Mode}
		if lt := qosTenant(r, "light"); lt != nil && base != nil {
			if base.MBps > 0 {
				iso.LightMBpsFrac = lt.MBps / base.MBps
			}
			if base.P99MS > 0 {
				iso.LightP99X = lt.P99MS / base.P99MS
			}
		}
		if fifo != nil && fifo.AggregateMBps > 0 {
			iso.AggVsFIFO = r.AggregateMBps / fifo.AggregateMBps
		}
		out = append(out, iso)
	}
	return out
}

// PrintQoSResults renders the sweep table.
func PrintQoSResults(w io.Writer, rows []QoSResult) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "QoS — multi-tenant overload (light vs greedy tenant, shared cluster)\n")
	fmt.Fprintf(w, "%-12s %-8s %-8s %-10s %-10s %-10s %-8s %-12s %s\n",
		"mode", "tenant", "writers", "MB/s", "p50 ms", "p99 ms", "ops", "sheds", "busy-retries")
	for _, r := range rows {
		for _, t := range r.Tenants {
			fmt.Fprintf(w, "%-12s %-8s %-8d %-10.1f %-10.2f %-10.2f %-8d %-12d %d\n",
				r.Mode, t.Tenant, t.Writers, t.MBps, t.P50MS, t.P99MS, t.Ops, t.Sheds, t.BusyRetries)
		}
		fmt.Fprintf(w, "%-12s %-8s %-8s %-10.1f\n", r.Mode, "(all)", "-", r.AggregateMBps)
	}
	for _, iso := range QoSIsolationSummary(rows) {
		fmt.Fprintf(w, "%s: light keeps %.0f%% of solo MB/s, p99 %.1fx solo, aggregate %.0f%% of FIFO\n",
			iso.Mode, 100*iso.LightMBpsFrac, iso.LightP99X, 100*iso.AggVsFIFO)
	}
	fmt.Fprintln(w)
}

// WriteQoSJSON writes the machine-readable benchmark record.
func WriteQoSJSON(path string, rows []QoSResult) error {
	doc := struct {
		Figure    string         `json:"figure"`
		Meta      RunMeta        `json:"meta"`
		Isolation []QoSIsolation `json:"isolation"`
		Results   []QoSResult    `json:"results"`
	}{
		Figure:    "qos",
		Meta:      NewRunMeta(),
		Isolation: QoSIsolationSummary(rows),
		Results:   rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
