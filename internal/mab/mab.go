// Package mab implements the Modified Andrew Benchmark (Ousterhout,
// cited as [11] in the paper): the workload behind Figure 5. Five phases
// run against a vfs.FileSystem — make the directory tree, copy the source
// files into it, walk it stat-ing everything, read every file, and
// "compile" (read sources, burn CPU, write objects, link) — followed by
// an unmount, which the paper includes "to ensure that the data written
// are eventually stored to disk" (§3.4).
package mab

import (
	"fmt"
	"math/rand"
	"time"

	"swarm/internal/model"
	"swarm/internal/vfs"
)

// Config parameterizes the benchmark.
type Config struct {
	// Dirs is the number of directories in the tree. Default 8.
	Dirs int
	// FilesPerDir is the number of source files per directory. Default
	// 9 (≈70 files total, like the original benchmark tree).
	FilesPerDir int
	// MinFileSize/MaxFileSize bound source file sizes. Defaults 1 KB
	// and 16 KB.
	MinFileSize int
	MaxFileSize int
	// CompileNsPerByte is the simulated compiler cost. The default of
	// 12 µs/byte makes the compile phase dominate CPU time on the
	// ~600 KB tree, the way it does on the paper's 200 MHz clients.
	CompileNsPerByte int
	// Seed makes the tree deterministic.
	Seed int64
	// CPU, when set, is charged for copy work and compilation; its Busy
	// time feeds the CPU-utilization numbers of Figure 5. Clock
	// defaults to the wall clock.
	CPU   *model.CPU
	Clock model.Clock
}

func (c *Config) setDefaults() {
	if c.Dirs == 0 {
		c.Dirs = 8
	}
	if c.FilesPerDir == 0 {
		c.FilesPerDir = 9
	}
	if c.MinFileSize == 0 {
		c.MinFileSize = 1 << 10
	}
	if c.MaxFileSize == 0 {
		c.MaxFileSize = 16 << 10
	}
	if c.CompileNsPerByte == 0 {
		c.CompileNsPerByte = 12000
	}
	if c.Clock == nil {
		c.Clock = model.WallClock{}
	}
}

// PhaseNames labels Result.Phases.
var PhaseNames = [...]string{"mkdir", "copy", "scandir", "readall", "make", "unmount"}

// Result reports per-phase and total times.
type Result struct {
	Phases  [6]time.Duration
	Total   time.Duration
	CPUBusy time.Duration
	// Files and Bytes describe the generated tree.
	Files int
	Bytes int64
}

// CPUUtilization returns CPUBusy/Total (0..1).
func (r Result) CPUUtilization() float64 {
	if r.Total <= 0 {
		return 0
	}
	u := float64(r.CPUBusy) / float64(r.Total)
	if u > 1 {
		u = 1
	}
	return u
}

// Setup writes the source tree under /src. It is benchmark preparation
// and is not timed.
func Setup(fs vfs.FileSystem, cfg Config) (files int, bytes int64, err error) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if err := fs.Mkdir("/src"); err != nil {
		return 0, 0, err
	}
	for d := 0; d < cfg.Dirs; d++ {
		dir := fmt.Sprintf("/src/dir%02d", d)
		if err := fs.Mkdir(dir); err != nil {
			return files, bytes, err
		}
		for f := 0; f < cfg.FilesPerDir; f++ {
			size := cfg.MinFileSize + rng.Intn(cfg.MaxFileSize-cfg.MinFileSize+1)
			data := make([]byte, size)
			rng.Read(data)
			path := fmt.Sprintf("%s/file%02d.c", dir, f)
			if err := vfs.WriteFile(fs, path, data); err != nil {
				return files, bytes, err
			}
			files++
			bytes += int64(size)
		}
	}
	if err := fs.Sync(); err != nil {
		return files, bytes, err
	}
	return files, bytes, nil
}

// Run executes the five MAB phases plus unmount against fs, which must
// already contain the tree written by Setup. After Run returns, fs is
// unmounted.
func Run(fs vfs.FileSystem, cfg Config) (Result, error) {
	cfg.setDefaults()
	var res Result
	start := cfg.Clock.Now()
	phaseStart := start

	endPhase := func(i int) {
		now := cfg.Clock.Now()
		res.Phases[i] = now.Sub(phaseStart)
		phaseStart = now
	}

	// Phase 1: mkdir — recreate the directory skeleton under /target.
	if err := fs.Mkdir("/target"); err != nil {
		return res, fmt.Errorf("mab mkdir: %w", err)
	}
	srcDirs, err := fs.ReadDir("/src")
	if err != nil {
		return res, err
	}
	for _, d := range srcDirs {
		if err := fs.Mkdir("/target/" + d.Name); err != nil {
			return res, fmt.Errorf("mab mkdir %s: %w", d.Name, err)
		}
	}
	endPhase(0)

	// Phase 2: copy every source file into the target tree.
	for _, d := range srcDirs {
		entries, err := fs.ReadDir("/src/" + d.Name)
		if err != nil {
			return res, err
		}
		for _, e := range entries {
			data, err := vfs.ReadFile(fs, "/src/"+d.Name+"/"+e.Name)
			if err != nil {
				return res, err
			}
			cfg.CPU.Process(len(data)) // user-space copy cost
			if err := vfs.WriteFile(fs, "/target/"+d.Name+"/"+e.Name, data); err != nil {
				return res, err
			}
			res.Files++
			res.Bytes += int64(len(data))
		}
	}
	endPhase(1)

	// Phase 3: scandir — recursive stat of the whole target tree.
	err = vfs.Walk(fs, "/target", func(path string, info vfs.FileInfo) error {
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("mab scandir: %w", err)
	}
	endPhase(2)

	// Phase 4: readall — read every file's contents.
	err = vfs.Walk(fs, "/target", func(path string, info vfs.FileInfo) error {
		if info.Mode.IsDir() {
			return nil
		}
		data, rerr := vfs.ReadFile(fs, path)
		if rerr != nil {
			return rerr
		}
		cfg.CPU.Process(len(data))
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("mab readall: %w", err)
	}
	endPhase(3)

	// Phase 5: make — compile each source into an object, then link.
	var objects []string
	var linkBytes int64
	err = vfs.Walk(fs, "/target", func(path string, info vfs.FileInfo) error {
		if info.Mode.IsDir() {
			return nil
		}
		data, rerr := vfs.ReadFile(fs, path)
		if rerr != nil {
			return rerr
		}
		cfg.CPU.Compute(time.Duration(len(data)*cfg.CompileNsPerByte) * time.Nanosecond)
		obj := path + ".o"
		objData := make([]byte, len(data)*6/10)
		if werr := vfs.WriteFile(fs, obj, objData); werr != nil {
			return werr
		}
		objects = append(objects, obj)
		linkBytes += int64(len(objData))
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("mab make: %w", err)
	}
	// Link: read all objects, write the executable.
	for _, obj := range objects {
		if _, err := vfs.ReadFile(fs, obj); err != nil {
			return res, err
		}
	}
	cfg.CPU.Compute(time.Duration(linkBytes*int64(cfg.CompileNsPerByte)/4) * time.Nanosecond)
	if err := vfs.WriteFile(fs, "/target/a.out", make([]byte, linkBytes)); err != nil {
		return res, err
	}
	endPhase(4)

	// Unmount, as the paper's runs do.
	if err := fs.Unmount(); err != nil {
		return res, fmt.Errorf("mab unmount: %w", err)
	}
	endPhase(5)

	res.Total = cfg.Clock.Now().Sub(start)
	res.CPUBusy = cfg.CPU.Busy()
	return res, nil
}
