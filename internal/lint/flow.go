package lint

import (
	"go/ast"
	"go/types"
)

// This file is the lint suite's shared flow walker: a small symbolic
// executor over Go's structured control flow that the flow-sensitive
// analyzers (refcount, and any future ownership discipline) build on.
// It is deliberately not a real CFG library. Go bodies in this tree are
// structured — if/else, loops, switch, select, defer, early returns —
// so an AST-directed walk with explicit state merging at joins covers
// the control flow that matters, at a fraction of the machinery:
//
//   - every branch of an if/switch/select is walked with its own copy
//     of the abstract state, and the copies are merged at the join;
//   - loop bodies are walked once (no fixpoint): a fact that must hold
//     per-iteration is checked within the iteration, and the
//     zero-iteration path merges back in;
//   - defers are recorded per path and replayed (innermost first) at
//     every exit — a return, or falling off the end of the body —
//     before the exit callback runs;
//   - a path ending in panic() vanishes instead of reaching the exit
//     callback: obligations do not survive the process.
//
// Unsupported control flow is handled leniently, never unsoundly-loud:
// goto ends its path silently, labeled break/continue bind to the
// innermost construct. The walker's job is catching the easy, common
// leak, with zero false positives — the same asymmetry bufpool chose.

// flowStatus is the abstract state of one tracked variable.
type flowStatus uint8

const (
	// flowNone: no outstanding obligation (not acquired on this path,
	// or refined away by a nil/error check).
	flowNone flowStatus = iota
	// flowDone: the obligation was discharged — released, returned,
	// stored, or transferred.
	flowDone
	// flowMaybeHeld: held on some paths into a join but not others.
	flowMaybeHeld
	// flowHeld: the obligation is outstanding.
	flowHeld
)

// flowState is one control-flow path's abstract state: a status per
// tracked variable plus the defers registered so far on the path.
type flowState struct {
	live   bool
	vars   map[*types.Var]flowStatus
	defers []*ast.CallExpr
}

func newFlowState() *flowState {
	return &flowState{live: true, vars: make(map[*types.Var]flowStatus)}
}

func (s *flowState) clone() *flowState {
	c := &flowState{live: s.live, vars: make(map[*types.Var]flowStatus, len(s.vars))}
	for k, v := range s.vars {
		c.vars[k] = v
	}
	c.defers = append(c.defers, s.defers...)
	return c
}

// Get returns v's status on this path.
func (s *flowState) Get(v *types.Var) flowStatus { return s.vars[v] }

// Set records v's status on this path.
func (s *flowState) Set(v *types.Var, st flowStatus) { s.vars[v] = st }

// mergeStatus joins two per-variable statuses at a control-flow join.
func mergeStatus(a, b flowStatus) flowStatus {
	if a == b {
		return a
	}
	// Any disagreement that involves holding on one side means the
	// obligation is outstanding only conditionally.
	if a == flowHeld || b == flowHeld || a == flowMaybeHeld || b == flowMaybeHeld {
		return flowMaybeHeld
	}
	return flowDone // one path acquired-and-discharged, the other never acquired
}

// mergeFlow joins the states of two paths. Dead paths contribute
// nothing: merging with an unreachable state yields the other state.
func mergeFlow(a, b *flowState) *flowState {
	if a == nil || !a.live {
		if b == nil {
			return a
		}
		return b
	}
	if b == nil || !b.live {
		return a
	}
	out := &flowState{live: true, vars: make(map[*types.Var]flowStatus, len(a.vars))}
	for k, av := range a.vars {
		out.vars[k] = mergeStatus(av, b.vars[k])
	}
	for k, bv := range b.vars {
		if _, ok := a.vars[k]; !ok {
			out.vars[k] = mergeStatus(flowNone, bv)
		}
	}
	out.defers = append(out.defers, a.defers...)
	for _, d := range b.defers {
		dup := false
		for _, e := range out.defers {
			if e == d {
				dup = true
				break
			}
		}
		if !dup {
			out.defers = append(out.defers, d)
		}
	}
	return out
}

// flowHooks supplies an analyzer's semantics to the walker.
type flowHooks interface {
	// Transfer interprets one non-control-flow statement (assignments,
	// expression statements, sends, declarations, go statements, and
	// the operand effects of return statements), mutating st.
	Transfer(st *flowState, stmt ast.Stmt)
	// Call interprets one deferred call when it is replayed at an exit.
	Call(st *flowState, call *ast.CallExpr)
	// Refine narrows st given that cond evaluated to truth (the walker
	// calls it on both arms of every if and loop condition).
	Refine(st *flowState, cond ast.Expr, truth bool)
}

// flowWalker drives hooks over one function body.
type flowWalker struct {
	hooks  flowHooks
	onExit func(st *flowState, at ast.Node)
	info   *types.Info

	// breakable/continuable construct stacks: break targets the
	// innermost loop, switch, or select; continue the innermost loop.
	breaks    []*[]*flowState
	continues []*[]*flowState
}

// walkFlow symbolically executes body, invoking hooks on every
// statement and onExit (with defers already replayed) at every return
// and at the fall-off end of the body. info is used to recognize calls
// to the panic builtin.
func walkFlow(body *ast.BlockStmt, info *types.Info, hooks flowHooks, onExit func(st *flowState, at ast.Node)) {
	w := &flowWalker{hooks: hooks, onExit: onExit, info: info}
	st := newFlowState()
	w.walkStmt(st, body)
	if st.live {
		w.exit(st, body)
	}
}

// exit replays the path's defers innermost-first, then reports the exit.
func (w *flowWalker) exit(st *flowState, at ast.Node) {
	for i := len(st.defers) - 1; i >= 0; i-- {
		w.hooks.Call(st, st.defers[i])
	}
	w.onExit(st, at)
	st.live = false
}

// die ends the path without an exit report (panic, goto).
func (w *flowWalker) die(st *flowState) { st.live = false }

func (w *flowWalker) walkStmt(st *flowState, s ast.Stmt) {
	if !st.live || s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, stmt := range s.List {
			if !st.live {
				return
			}
			w.walkStmt(st, stmt)
		}

	case *ast.ReturnStmt:
		w.hooks.Transfer(st, s)
		w.exit(st, s)

	case *ast.IfStmt:
		w.walkStmt(st, s.Init)
		if !st.live {
			return
		}
		thenSt := st.clone()
		w.hooks.Refine(thenSt, s.Cond, true)
		w.walkStmt(thenSt, s.Body)
		elseSt := st.clone()
		w.hooks.Refine(elseSt, s.Cond, false)
		if s.Else != nil {
			w.walkStmt(elseSt, s.Else)
		}
		*st = *mergeFlow(thenSt, elseSt)

	case *ast.ForStmt:
		w.walkStmt(st, s.Init)
		if !st.live {
			return
		}
		var breaks, conts []*flowState
		w.breaks = append(w.breaks, &breaks)
		w.continues = append(w.continues, &conts)
		bodySt := st.clone()
		if s.Cond != nil {
			w.hooks.Refine(bodySt, s.Cond, true)
		}
		w.walkStmt(bodySt, s.Body)
		for _, c := range conts {
			bodySt = mergeFlow(bodySt, c)
		}
		if bodySt.live {
			w.walkStmt(bodySt, s.Post)
		}
		w.breaks = w.breaks[:len(w.breaks)-1]
		w.continues = w.continues[:len(w.continues)-1]

		var out *flowState
		if s.Cond == nil {
			// for{}: the only way past the loop is a break.
			out = &flowState{live: false}
		} else {
			skip := st.clone()
			w.hooks.Refine(skip, s.Cond, false)
			after := bodySt
			if after.live {
				after = after.clone()
				w.hooks.Refine(after, s.Cond, false)
			}
			out = mergeFlow(skip, after)
		}
		for _, b := range breaks {
			out = mergeFlow(out, b)
		}
		*st = *out

	case *ast.RangeStmt:
		w.hooks.Transfer(st, s)
		var breaks, conts []*flowState
		w.breaks = append(w.breaks, &breaks)
		w.continues = append(w.continues, &conts)
		bodySt := st.clone()
		w.walkStmt(bodySt, s.Body)
		for _, c := range conts {
			bodySt = mergeFlow(bodySt, c)
		}
		w.breaks = w.breaks[:len(w.breaks)-1]
		w.continues = w.continues[:len(w.continues)-1]
		out := mergeFlow(st.clone(), bodySt) // zero iterations vs >=1
		for _, b := range breaks {
			out = mergeFlow(out, b)
		}
		*st = *out

	case *ast.SwitchStmt:
		w.walkStmt(st, s.Init)
		w.walkCases(st, s.Body, true)

	case *ast.TypeSwitchStmt:
		w.walkStmt(st, s.Init)
		w.walkStmt(st, s.Assign)
		w.walkCases(st, s.Body, true)

	case *ast.SelectStmt:
		w.walkSelect(st, s.Body)

	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "break":
			if n := len(w.breaks); n > 0 {
				*w.breaks[n-1] = append(*w.breaks[n-1], st.clone())
			}
			st.live = false
		case "continue":
			if n := len(w.continues); n > 0 {
				*w.continues[n-1] = append(*w.continues[n-1], st.clone())
			}
			st.live = false
		case "goto":
			w.die(st) // unsupported: the path ends silently
		case "fallthrough":
			// Handled structurally by walkCases; ending the path here
			// keeps the walker safe if one slips through.
			st.live = false
		}

	case *ast.DeferStmt:
		st.defers = append(st.defers, s.Call)

	case *ast.LabeledStmt:
		w.walkStmt(st, s.Stmt)

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isPanic(w.info, call) {
			w.hooks.Transfer(st, s)
			w.die(st)
			return
		}
		w.hooks.Transfer(st, s)

	case *ast.AssignStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.GoStmt, *ast.EmptyStmt:
		w.hooks.Transfer(st, s)

	default:
		w.hooks.Transfer(st, s)
	}
}

// walkCases walks a switch body: each case starts from a clone of the
// entry state, fallthrough flows one clause's end state into the next,
// and the missing-default path merges the entry state back in.
func (w *flowWalker) walkCases(st *flowState, body *ast.BlockStmt, breakable bool) {
	if !st.live {
		return
	}
	var breaks []*flowState
	if breakable {
		w.breaks = append(w.breaks, &breaks)
	}
	entry := st.clone()
	hasDefault := false
	var outs []*flowState
	var fall *flowState // state falling through from the previous clause
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		caseSt := entry.clone()
		if fall != nil {
			caseSt = mergeFlow(caseSt, fall)
			fall = nil
		}
		fallsThrough := false
		for i, stmt := range cc.Body {
			if !caseSt.live {
				break
			}
			if br, ok := stmt.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" && i == len(cc.Body)-1 {
				fallsThrough = true
				break
			}
			w.walkStmt(caseSt, stmt)
		}
		if fallsThrough {
			fall = caseSt
		} else if caseSt.live {
			outs = append(outs, caseSt)
		}
	}
	if breakable {
		w.breaks = w.breaks[:len(w.breaks)-1]
	}
	var out *flowState
	if !hasDefault {
		out = entry // no case may match
	} else {
		out = &flowState{live: false}
	}
	for _, o := range outs {
		out = mergeFlow(out, o)
	}
	if fall != nil { // fallthrough on the last clause (illegal Go, but stay safe)
		out = mergeFlow(out, fall)
	}
	for _, b := range breaks {
		out = mergeFlow(out, b)
	}
	*st = *out
}

// walkSelect walks a select body: exactly one comm clause runs.
func (w *flowWalker) walkSelect(st *flowState, body *ast.BlockStmt) {
	if !st.live {
		return
	}
	var breaks []*flowState
	w.breaks = append(w.breaks, &breaks)
	entry := st.clone()
	out := &flowState{live: false}
	for _, c := range body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		caseSt := entry.clone()
		w.walkStmt(caseSt, cc.Comm)
		for _, stmt := range cc.Body {
			if !caseSt.live {
				break
			}
			w.walkStmt(caseSt, stmt)
		}
		if caseSt.live {
			out = mergeFlow(out, caseSt)
		}
	}
	w.breaks = w.breaks[:len(w.breaks)-1]
	for _, b := range breaks {
		out = mergeFlow(out, b)
	}
	*st = *out
}

// isPanic reports whether call invokes the panic builtin.
func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if info == nil {
		return true
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin || info.Uses[id] == nil
}
