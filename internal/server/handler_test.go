package server

import (
	"testing"

	"swarm/internal/disk"
	"swarm/internal/wire"
)

func encodeReq(msg wire.Message) []byte {
	e := wire.NewEncoder(64)
	msg.Encode(e)
	return e.Bytes()
}

func handlerStore(t *testing.T) *Store {
	t.Helper()
	d := disk.NewMemDisk(1 << 20)
	s, err := Format(d, Config{FragmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHandleFullDispatch(t *testing.T) {
	s := handlerStore(t)
	fid := wire.MakeFID(1, 0)

	check := func(op wire.Op, req wire.Message, want wire.Status) wire.Message {
		t.Helper()
		status, msg := s.Handle(1, op, encodeReq(req))
		if status != want {
			t.Fatalf("%v -> %v (%s), want %v", op, status, ErrText(msg), want)
		}
		return msg
	}

	check(wire.OpPing, &wire.PingRequest{}, wire.StatusOK)
	check(wire.OpStore, &wire.StoreRequest{FID: fid, Mark: true, Data: []byte("abc")}, wire.StatusOK)
	check(wire.OpStore, &wire.StoreRequest{FID: fid, Data: []byte("dup")}, wire.StatusExists)
	check(wire.OpStore, &wire.StoreRequest{FID: wire.MakeFID(1, 1), Data: make([]byte, 9000)}, wire.StatusBadRequest)

	msg := check(wire.OpRead, &wire.ReadRequest{FID: fid, Off: 0, Len: 3}, wire.StatusOK)
	var rr wire.ReadResponse
	if err := rr.Decode(wire.NewDecoder(encodeReq(msg))); err != nil || string(rr.Data) != "abc" {
		t.Fatalf("read = (%q,%v)", rr.Data, err)
	}
	check(wire.OpRead, &wire.ReadRequest{FID: fid, Off: 2, Len: 5}, wire.StatusBadRequest)
	check(wire.OpRead, &wire.ReadRequest{FID: wire.MakeFID(1, 9)}, wire.StatusNotFound)

	check(wire.OpHasFragment, &wire.HasFragmentRequest{FID: fid}, wire.StatusOK)
	check(wire.OpLastMarked, &wire.LastMarkedRequest{Client: 1}, wire.StatusOK)
	check(wire.OpListFIDs, &wire.ListFIDsRequest{Client: 1}, wire.StatusOK)
	check(wire.OpPrealloc, &wire.PreallocRequest{FID: wire.MakeFID(1, 5)}, wire.StatusOK)
	check(wire.OpPrealloc, &wire.PreallocRequest{FID: wire.MakeFID(1, 5)}, wire.StatusExists)
	check(wire.OpStat, &wire.StatRequest{}, wire.StatusOK)

	aclMsg := check(wire.OpACLCreate, &wire.ACLCreateRequest{Members: []wire.ClientID{1}}, wire.StatusOK)
	var ar wire.ACLCreateResponse
	if err := ar.Decode(wire.NewDecoder(encodeReq(aclMsg))); err != nil {
		t.Fatal(err)
	}
	check(wire.OpACLModify, &wire.ACLModifyRequest{AID: ar.AID, Add: []wire.ClientID{2}}, wire.StatusOK)
	check(wire.OpACLModify, &wire.ACLModifyRequest{AID: 999}, wire.StatusNotFound)
	check(wire.OpACLDelete, &wire.ACLDeleteRequest{AID: ar.AID}, wire.StatusOK)
	check(wire.OpACLDelete, &wire.ACLDeleteRequest{AID: ar.AID}, wire.StatusNotFound)

	check(wire.OpDelete, &wire.DeleteRequest{FID: fid}, wire.StatusOK)
	check(wire.OpDelete, &wire.DeleteRequest{FID: fid}, wire.StatusNotFound)

	// Unknown op and malformed bodies.
	if status, _ := s.Handle(1, wire.Op(99), nil); status != wire.StatusBadRequest {
		t.Fatalf("unknown op = %v", status)
	}
	for _, op := range []wire.Op{
		wire.OpStore, wire.OpRead, wire.OpDelete, wire.OpPrealloc,
		wire.OpLastMarked, wire.OpHasFragment, wire.OpListFIDs,
		wire.OpACLCreate, wire.OpACLModify, wire.OpACLDelete,
	} {
		if status, _ := s.Handle(1, op, []byte{1}); status != wire.StatusBadRequest {
			t.Fatalf("malformed %v = %v", op, status)
		}
	}
}

func TestHandleAccessDenied(t *testing.T) {
	s := handlerStore(t)
	aid := s.ACLs().Create([]wire.ClientID{1})
	fid := wire.MakeFID(1, 0)
	status, _ := s.Handle(1, wire.OpStore, encodeReq(&wire.StoreRequest{
		FID:    fid,
		Data:   make([]byte, 100),
		Ranges: []wire.ACLRange{{Off: 0, Len: 100, AID: aid}},
	}))
	if status != wire.StatusOK {
		t.Fatalf("store = %v", status)
	}
	status, msg := s.Handle(2, wire.OpRead, encodeReq(&wire.ReadRequest{FID: fid, Off: 0, Len: 10}))
	if status != wire.StatusAccess {
		t.Fatalf("stranger read = %v (%s)", status, ErrText(msg))
	}
}

func TestHandleNoSpace(t *testing.T) {
	s := handlerStore(t)
	total := s.Stats().TotalSlots
	for i := 0; i < total; i++ {
		if status, _ := s.Handle(1, wire.OpStore, encodeReq(&wire.StoreRequest{FID: wire.MakeFID(1, uint64(i)), Data: []byte("x")})); status != wire.StatusOK {
			t.Fatalf("fill store %d failed", i)
		}
	}
	status, _ := s.Handle(1, wire.OpStore, encodeReq(&wire.StoreRequest{FID: wire.MakeFID(1, 999), Data: []byte("x")}))
	if status != wire.StatusNoSpace {
		t.Fatalf("full store = %v", status)
	}
}

func TestFragmentSizeAccessor(t *testing.T) {
	s := handlerStore(t)
	if s.FragmentSize() != 4096 {
		t.Fatalf("FragmentSize = %d", s.FragmentSize())
	}
}
