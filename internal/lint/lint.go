// Package lint is swarmlint's analysis engine: a stdlib-only analyzer
// driver (go/ast + go/types, no golang.org/x/tools) that enforces
// Swarm-specific invariants which `go vet` knows nothing about. The
// system's design premise — dumb servers, smart clients — concentrates
// correctness in client-side conventions: the wire buffer pool's
// ownership rules, the no-I/O-under-metadata-locks discipline the
// group-commit refactor introduced, guarded-by relationships between
// struct fields and their mutexes, and the transient/permanent error
// classification the resilient transport depends on. Each analyzer in
// this package checks one of those invariants (DESIGN.md §7).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
	"time"
)

// Diagnostic is one analyzer finding, reported as file:line: message
// [analyzer].
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

// String formats the diagnostic in the driver's canonical form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Message, d.Analyzer)
}

// Analyzer is one invariant checker. Analyzers are stateless across
// packages: Run is called once per loaded package.
type Analyzer interface {
	// Name is the short identifier printed with each diagnostic.
	Name() string
	// Doc is a one-line description of the invariant.
	Doc() string
	// Run analyzes one type-checked package.
	Run(p *Package) []Diagnostic
}

// Package is one type-checked package presented to analyzers.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	ann     *annotations
	parents map[ast.Node]ast.Node
}

// Annotations returns the package's swarmlint comment directives,
// building the index on first use.
func (p *Package) Annotations() *annotations {
	if p.ann == nil {
		p.ann = newAnnotations(p)
	}
	return p.ann
}

// Parent returns the syntactic parent of n, or nil. The parent map is
// built lazily over all of the package's files.
func (p *Package) Parent(n ast.Node) ast.Node {
	if p.parents == nil {
		p.parents = make(map[ast.Node]ast.Node)
		for _, f := range p.Files {
			buildParents(p.parents, f)
		}
	}
	return p.parents[n]
}

func buildParents(m map[ast.Node]ast.Node, root ast.Node) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
}

// EnclosingFunc returns the innermost FuncDecl or FuncLit containing n,
// or nil.
func (p *Package) EnclosingFunc(n ast.Node) ast.Node {
	for cur := p.Parent(n); cur != nil; cur = p.Parent(cur) {
		switch cur.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return cur
		}
	}
	return nil
}

// FuncBody returns the body of a FuncDecl or FuncLit node.
func FuncBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// Run executes every analyzer over every package and returns the
// combined diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		for _, a := range analyzers {
			out = append(out, a.Run(p)...)
		}
	}
	sortDiagnostics(out)
	return out
}

// Timing is one analyzer's wall-clock cost across all packages.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// RunParallel executes the analyzers concurrently — one goroutine per
// analyzer, each walking every package — and returns the combined
// diagnostics (sorted, same order as Run) plus per-analyzer timings
// sorted slowest first. Analyzers are independent of one another, but
// Package's lazy annotation and parent indexes are not thread-safe, so
// they are precomputed before the fan-out.
func RunParallel(pkgs []*Package, analyzers []Analyzer) ([]Diagnostic, []Timing) {
	for _, p := range pkgs {
		p.Annotations()
		if len(p.Files) > 0 {
			p.Parent(p.Files[0]) // one call builds the whole parent map
		}
	}
	perAnalyzer := make([][]Diagnostic, len(analyzers))
	timings := make([]Timing, len(analyzers))
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a Analyzer) {
			defer wg.Done()
			start := time.Now()
			var out []Diagnostic
			for _, p := range pkgs {
				out = append(out, a.Run(p)...)
			}
			perAnalyzer[i] = out
			timings[i] = Timing{Analyzer: a.Name(), Elapsed: time.Since(start)}
		}(i, a)
	}
	wg.Wait()
	var out []Diagnostic
	for _, d := range perAnalyzer {
		out = append(out, d...)
	}
	sortDiagnostics(out)
	sort.Slice(timings, func(i, j int) bool { return timings[i].Elapsed > timings[j].Elapsed })
	return out, timings
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Message < out[j].Message
	})
}

// Default returns the full analyzer suite with the repository's
// configuration: the wire buffer pool's package path, the disk layer
// exempted from lockio (it is the I/O layer the invariant protects
// callers of), the error-classification boundary around the transport
// and fragment-I/O packages, the placement-indexing invariant over the
// packages that resolve server placement at runtime (harnesses and
// CLIs build their connection slices before a log exists, so they are
// out of scope), the refcounted extent type, the wire.Status enum's
// exhaustiveness boundary, and the goroutine-lifecycle discipline over
// the packages that run background workers.
func Default() []Analyzer {
	dataPath := []string{
		"swarm",
		"swarm/internal/core",
		"swarm/internal/server",
		"swarm/internal/transport",
		"swarm/internal/fragio",
		"swarm/internal/rebalance",
		"swarm/internal/cleaner",
		"swarm/internal/service",
	}
	return []Analyzer{
		NewBufPool("swarm/internal/wire"),
		NewLockIO("swarm/internal/disk", []string{"swarm/internal/disk"}),
		NewGuardedBy(),
		NewErrClass([]string{"swarm/internal/transport", "swarm/internal/fragio"}),
		NewPlacement([]string{
			"swarm",
			"swarm/internal/core",
			"swarm/internal/fragio",
			"swarm/internal/rebalance",
			"swarm/internal/cleaner",
			"swarm/internal/service",
		}),
		NewRefCount([]string{"swarm/internal/server.Extent"}),
		NewStatusCase("swarm/internal/wire.Status", append([]string{"swarm/internal/wire"}, dataPath...)),
		NewAtomicMix(),
		NewGoroLeak(dataPath),
	}
}

// ByName returns the analyzers whose names appear in names (order
// preserved from all); unknown names return an error.
func ByName(all []Analyzer, names []string) ([]Analyzer, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []Analyzer
	for _, a := range all {
		if want[a.Name()] {
			out = append(out, a)
			delete(want, a.Name())
		}
	}
	for n := range want {
		return nil, fmt.Errorf("unknown analyzer %q", n)
	}
	return out, nil
}

// exprString renders a (small) expression as source text — used to match
// mutex paths like "s.mu" between Lock and Unlock calls. It covers the
// expression forms that plausibly name a mutex; anything else yields a
// non-matching placeholder.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[…]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	}
	return "\x00unmatchable"
}

// namedOrPointee unwraps pointers and aliases down to a named type, or
// nil.
func namedOrPointee(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// typeFromPkg reports whether t (after unwrapping pointers) is a named
// type declared in the package with the given import path.
func typeFromPkg(t types.Type, path string) bool {
	n := namedOrPointee(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == path
}

// calleeObject resolves the called function or method of call, or nil
// (builtins, function-typed variables and conversions yield nil unless
// they resolve to a types.Func).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isFunc reports whether call resolves to the function name in package
// path pkgPath.
func isFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj, ok := calleeObject(info, call).(*types.Func)
	if !ok || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath
}
