package wire

import (
	"errors"
	"fmt"
)

// ErrBadMessage is returned when a message body fails to decode.
var ErrBadMessage = errors.New("wire: bad message")

// Message is implemented by every request and response body.
type Message interface {
	// Encode appends the message body to e.
	Encode(e *Encoder)
	// Decode parses the message body from d.
	Decode(d *Decoder) error
}

// PayloadMessage is implemented by the messages that carry a bulk
// fragment payload (StoreRequest, ReadResponse). The frame writer sends
// the payload out-of-band — as a separate net.Buffers element after the
// encoded header — so a 1 MB fragment is never copied through the
// Encoder. The wire format is unchanged: EncodeHeader ends with the
// payload's length prefix, so header ++ payload is byte-identical to
// what Encode produces.
type PayloadMessage interface {
	Message
	// EncodeHeader appends every field except the payload bytes,
	// including the payload's uint32 length prefix.
	EncodeHeader(e *Encoder)
	// Payload returns the bulk payload written after the header. On the
	// decode side it aliases the frame body, so transports must not
	// recycle the body of a PayloadMessage response.
	Payload() []byte
}

// PayloadReleaser is implemented by responses whose payload aliases a
// shared, reference-counted buffer (a server read-cache extent) instead
// of an exclusively-owned pooled buffer. After the payload has been
// written to the wire or copied, transports must call ReleasePayload
// exactly once INSTEAD of PutBuffer(Payload()): the implementation drops
// its reference, and the buffer is recycled only when the last holder
// lets go. The bufpool ownership rules (DESIGN.md §7) treat a
// ReleasePayload call as the buffer's disposal.
type PayloadReleaser interface {
	// ReleasePayload releases the response's reference on the payload.
	ReleasePayload()
}

func finish(d *Decoder) error {
	if err := d.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	return nil
}

// ---------------------------------------------------------------- requests

// PingRequest checks liveness.
type PingRequest struct{}

// Encode implements Message.
func (*PingRequest) Encode(*Encoder) {}

// Decode implements Message.
func (*PingRequest) Decode(*Decoder) error { return nil }

// StoreRequest stores a complete fragment. The server treats Data as an
// opaque set of bytes; Mark flags the fragment so LastMarked can find it
// (clients store checkpoints in marked fragments). Ranges optionally
// assigns ACLs to byte ranges of the fragment.
//
// All storage-server operations are atomic (§2.3.1): after a crash the
// fragment either exists in full or not at all.
type StoreRequest struct {
	FID    FID
	Mark   bool
	Ranges []ACLRange
	Data   []byte
}

// Encode implements Message.
func (m *StoreRequest) Encode(e *Encoder) {
	m.EncodeHeader(e)
	e.Raw(m.Data)
}

// EncodeHeader implements PayloadMessage.
func (m *StoreRequest) EncodeHeader(e *Encoder) {
	e.U64(uint64(m.FID))
	e.Bool(m.Mark)
	e.U32(uint32(len(m.Ranges)))
	for _, r := range m.Ranges {
		e.U32(r.Off)
		e.U32(r.Len)
		e.U32(uint32(r.AID))
	}
	e.U32(uint32(len(m.Data)))
}

// Payload implements PayloadMessage.
func (m *StoreRequest) Payload() []byte { return m.Data }

// Decode implements Message.
func (m *StoreRequest) Decode(d *Decoder) error {
	m.FID = FID(d.U64())
	m.Mark = d.Bool()
	n := d.U32()
	if n > 1<<20 {
		return fmt.Errorf("%w: %d ACL ranges", ErrBadMessage, n)
	}
	m.Ranges = make([]ACLRange, 0, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.Ranges = append(m.Ranges, ACLRange{Off: d.U32(), Len: d.U32(), AID: AID(d.U32())})
	}
	m.Data = d.Bytes32()
	return finish(d)
}

// ReadRequest retrieves Len bytes at Off within fragment FID.
type ReadRequest struct {
	FID FID
	Off uint32
	Len uint32
}

// Encode implements Message.
func (m *ReadRequest) Encode(e *Encoder) {
	e.U64(uint64(m.FID))
	e.U32(m.Off)
	e.U32(m.Len)
}

// Decode implements Message.
func (m *ReadRequest) Decode(d *Decoder) error {
	m.FID = FID(d.U64())
	m.Off = d.U32()
	m.Len = d.U32()
	return finish(d)
}

// DeleteRequest removes a fragment, freeing its slot.
type DeleteRequest struct {
	FID FID
}

// Encode implements Message.
func (m *DeleteRequest) Encode(e *Encoder) { e.U64(uint64(m.FID)) }

// Decode implements Message.
func (m *DeleteRequest) Decode(d *Decoder) error {
	m.FID = FID(d.U64())
	return finish(d)
}

// PreallocRequest reserves a slot for a fragment that will be stored later,
// letting clients guarantee space before sealing a stripe.
type PreallocRequest struct {
	FID FID
}

// Encode implements Message.
func (m *PreallocRequest) Encode(e *Encoder) { e.U64(uint64(m.FID)) }

// Decode implements Message.
func (m *PreallocRequest) Decode(d *Decoder) error {
	m.FID = FID(d.U64())
	return finish(d)
}

// LastMarkedRequest asks for the newest marked fragment owned by Client.
type LastMarkedRequest struct {
	Client ClientID
}

// Encode implements Message.
func (m *LastMarkedRequest) Encode(e *Encoder) { e.U32(uint32(m.Client)) }

// Decode implements Message.
func (m *LastMarkedRequest) Decode(d *Decoder) error {
	m.Client = ClientID(d.U32())
	return finish(d)
}

// HasFragmentRequest asks whether the server stores FID; it is the
// broadcast probe used for self-hosting fragment discovery and
// reconstruction (§2.3.3).
type HasFragmentRequest struct {
	FID FID
}

// Encode implements Message.
func (m *HasFragmentRequest) Encode(e *Encoder) { e.U64(uint64(m.FID)) }

// Decode implements Message.
func (m *HasFragmentRequest) Decode(d *Decoder) error {
	m.FID = FID(d.U64())
	return finish(d)
}

// ListFIDsRequest asks for all FIDs stored for a client (Client == 0 lists
// every fragment). Used by recovery to find the end of the log and by the
// cleaner to enumerate stripes.
type ListFIDsRequest struct {
	Client ClientID
}

// Encode implements Message.
func (m *ListFIDsRequest) Encode(e *Encoder) { e.U32(uint32(m.Client)) }

// Decode implements Message.
func (m *ListFIDsRequest) Decode(d *Decoder) error {
	m.Client = ClientID(d.U32())
	return finish(d)
}

// ACLCreateRequest creates an access control list; the server assigns and
// returns the AID.
type ACLCreateRequest struct {
	Members []ClientID
}

// Encode implements Message.
func (m *ACLCreateRequest) Encode(e *Encoder) {
	e.U32(uint32(len(m.Members)))
	for _, c := range m.Members {
		e.U32(uint32(c))
	}
}

// Decode implements Message.
func (m *ACLCreateRequest) Decode(d *Decoder) error {
	n := d.U32()
	if n > 1<<20 {
		return fmt.Errorf("%w: %d ACL members", ErrBadMessage, n)
	}
	m.Members = make([]ClientID, 0, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.Members = append(m.Members, ClientID(d.U32()))
	}
	return finish(d)
}

// ACLModifyRequest adds and removes members of an existing ACL. Changing
// membership is the only way to change access to already-stored data: "Once
// written, the data's AID cannot be changed; instead, access permissions
// can be changed by changing the members of the ACL" (§2.3.2).
type ACLModifyRequest struct {
	AID    AID
	Add    []ClientID
	Remove []ClientID
}

// Encode implements Message.
func (m *ACLModifyRequest) Encode(e *Encoder) {
	e.U32(uint32(m.AID))
	e.U32(uint32(len(m.Add)))
	for _, c := range m.Add {
		e.U32(uint32(c))
	}
	e.U32(uint32(len(m.Remove)))
	for _, c := range m.Remove {
		e.U32(uint32(c))
	}
}

// Decode implements Message.
func (m *ACLModifyRequest) Decode(d *Decoder) error {
	m.AID = AID(d.U32())
	na := d.U32()
	if na > 1<<20 {
		return fmt.Errorf("%w: %d ACL adds", ErrBadMessage, na)
	}
	m.Add = make([]ClientID, 0, na)
	for i := uint32(0); i < na && d.Err() == nil; i++ {
		m.Add = append(m.Add, ClientID(d.U32()))
	}
	nr := d.U32()
	if nr > 1<<20 {
		return fmt.Errorf("%w: %d ACL removes", ErrBadMessage, nr)
	}
	m.Remove = make([]ClientID, 0, nr)
	for i := uint32(0); i < nr && d.Err() == nil; i++ {
		m.Remove = append(m.Remove, ClientID(d.U32()))
	}
	return finish(d)
}

// ACLDeleteRequest removes an ACL.
type ACLDeleteRequest struct {
	AID AID
}

// Encode implements Message.
func (m *ACLDeleteRequest) Encode(e *Encoder) { e.U32(uint32(m.AID)) }

// Decode implements Message.
func (m *ACLDeleteRequest) Decode(d *Decoder) error {
	m.AID = AID(d.U32())
	return finish(d)
}

// StatRequest asks for server capacity information.
type StatRequest struct{}

// Encode implements Message.
func (*StatRequest) Encode(*Encoder) {}

// Decode implements Message.
func (*StatRequest) Decode(*Decoder) error { return nil }

// --------------------------------------------------------------- responses

// GenericResponse carries only a status; it answers store, delete,
// preallocate, ACL modify/delete, and ping.
type GenericResponse struct{}

// Encode implements Message.
func (*GenericResponse) Encode(*Encoder) {}

// Decode implements Message.
func (*GenericResponse) Decode(*Decoder) error { return nil }

// ReadResponse returns fragment data.
type ReadResponse struct {
	Data []byte
}

// Encode implements Message.
func (m *ReadResponse) Encode(e *Encoder) { e.Bytes32(m.Data) }

// EncodeHeader implements PayloadMessage.
func (m *ReadResponse) EncodeHeader(e *Encoder) { e.U32(uint32(len(m.Data))) }

// Payload implements PayloadMessage.
func (m *ReadResponse) Payload() []byte { return m.Data }

// Decode implements Message.
func (m *ReadResponse) Decode(d *Decoder) error {
	m.Data = d.Bytes32()
	return finish(d)
}

// LastMarkedResponse returns the newest marked fragment (Found reports
// whether any exists).
type LastMarkedResponse struct {
	FID   FID
	Found bool
}

// Encode implements Message.
func (m *LastMarkedResponse) Encode(e *Encoder) {
	e.U64(uint64(m.FID))
	e.Bool(m.Found)
}

// Decode implements Message.
func (m *LastMarkedResponse) Decode(d *Decoder) error {
	m.FID = FID(d.U64())
	m.Found = d.Bool()
	return finish(d)
}

// HasFragmentResponse reports fragment presence and size.
type HasFragmentResponse struct {
	Found bool
	Size  uint32
}

// Encode implements Message.
func (m *HasFragmentResponse) Encode(e *Encoder) {
	e.Bool(m.Found)
	e.U32(m.Size)
}

// Decode implements Message.
func (m *HasFragmentResponse) Decode(d *Decoder) error {
	m.Found = d.Bool()
	m.Size = d.U32()
	return finish(d)
}

// ListFIDsResponse enumerates stored fragments.
type ListFIDsResponse struct {
	FIDs []FID
}

// Encode implements Message.
func (m *ListFIDsResponse) Encode(e *Encoder) {
	e.U32(uint32(len(m.FIDs)))
	for _, f := range m.FIDs {
		e.U64(uint64(f))
	}
}

// Decode implements Message.
func (m *ListFIDsResponse) Decode(d *Decoder) error {
	n := d.U32()
	if n > 1<<24 {
		return fmt.Errorf("%w: %d FIDs", ErrBadMessage, n)
	}
	m.FIDs = make([]FID, 0, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.FIDs = append(m.FIDs, FID(d.U64()))
	}
	return finish(d)
}

// ACLCreateResponse returns the server-assigned AID.
type ACLCreateResponse struct {
	AID AID
}

// Encode implements Message.
func (m *ACLCreateResponse) Encode(e *Encoder) { e.U32(uint32(m.AID)) }

// Decode implements Message.
func (m *ACLCreateResponse) Decode(d *Decoder) error {
	m.AID = AID(d.U32())
	return finish(d)
}

// StatResponse describes server capacity and commit-path activity.
type StatResponse struct {
	FragmentSize uint32
	TotalSlots   uint32
	FreeSlots    uint32
	Fragments    uint32

	// Commit-path counters (cumulative since the server opened its
	// store): committed stores, logical sync barriers vs physical
	// fsyncs (the gap is group-commit coalescing), slot-entry commit
	// batching, and cumulative store latency.
	Stores         uint64
	SyncRequests   uint64
	Syncs          uint64
	EntryBatches   uint64
	EntriesBatched uint64
	StoreNanos     uint64

	// Read-path counters (the serving-tier extent cache; all zero when
	// it is disabled): cache hits and fills, readahead prefetches, bytes
	// served zero-copy from memory vs read from disk, and current cache
	// occupancy.
	ReadHits        uint64
	ReadMisses      uint64
	ReadaheadLoads  uint64
	ReadBytesCached uint64
	ReadBytesDisk   uint64
	ReadCacheBytes  uint64

	// Tenants is the per-principal QoS accounting (empty when the fair
	// scheduler is disabled), one entry per principal the scheduler has
	// seen, in ascending client order.
	Tenants []TenantStat
}

// TenantStat is one principal's QoS accounting on one server: how much
// work the weighted-fair scheduler admitted and served for it, how much
// the admission controller shed, and the service-latency distribution
// (enqueue to completion) of its requests.
type TenantStat struct {
	// Client is the principal (0 is the anonymous/default class).
	Client ClientID
	// Weight is the class's DRR weight.
	Weight uint32
	// Ops and Bytes count requests served and their byte-weighted cost.
	Ops   uint64
	Bytes uint64
	// Sheds counts requests rejected with StatusBusy at admission.
	Sheds uint64
	// Queued and QueuedBytes are the class's current queue depth.
	Queued      uint32
	QueuedBytes uint64
	// P50Micros and P99Micros are service-latency percentiles in
	// microseconds (queueing + execution), from a fixed-bucket
	// histogram: values are bucket upper bounds, not exact quantiles.
	P50Micros uint64
	P99Micros uint64
}

func (t *TenantStat) encode(e *Encoder) {
	e.U32(uint32(t.Client))
	e.U32(t.Weight)
	e.U64(t.Ops)
	e.U64(t.Bytes)
	e.U64(t.Sheds)
	e.U32(t.Queued)
	e.U64(t.QueuedBytes)
	e.U64(t.P50Micros)
	e.U64(t.P99Micros)
}

func (t *TenantStat) decode(d *Decoder) {
	t.Client = ClientID(d.U32())
	t.Weight = d.U32()
	t.Ops = d.U64()
	t.Bytes = d.U64()
	t.Sheds = d.U64()
	t.Queued = d.U32()
	t.QueuedBytes = d.U64()
	t.P50Micros = d.U64()
	t.P99Micros = d.U64()
}

// Encode implements Message.
func (m *StatResponse) Encode(e *Encoder) {
	e.U32(m.FragmentSize)
	e.U32(m.TotalSlots)
	e.U32(m.FreeSlots)
	e.U32(m.Fragments)
	e.U64(m.Stores)
	e.U64(m.SyncRequests)
	e.U64(m.Syncs)
	e.U64(m.EntryBatches)
	e.U64(m.EntriesBatched)
	e.U64(m.StoreNanos)
	e.U64(m.ReadHits)
	e.U64(m.ReadMisses)
	e.U64(m.ReadaheadLoads)
	e.U64(m.ReadBytesCached)
	e.U64(m.ReadBytesDisk)
	e.U64(m.ReadCacheBytes)
	e.U32(uint32(len(m.Tenants)))
	for i := range m.Tenants {
		m.Tenants[i].encode(e)
	}
}

// Decode implements Message.
func (m *StatResponse) Decode(d *Decoder) error {
	m.FragmentSize = d.U32()
	m.TotalSlots = d.U32()
	m.FreeSlots = d.U32()
	m.Fragments = d.U32()
	m.Stores = d.U64()
	m.SyncRequests = d.U64()
	m.Syncs = d.U64()
	m.EntryBatches = d.U64()
	m.EntriesBatched = d.U64()
	m.StoreNanos = d.U64()
	m.ReadHits = d.U64()
	m.ReadMisses = d.U64()
	m.ReadaheadLoads = d.U64()
	m.ReadBytesCached = d.U64()
	m.ReadBytesDisk = d.U64()
	m.ReadCacheBytes = d.U64()
	n := d.U32()
	if n > 1<<20 {
		return fmt.Errorf("%w: %d tenant stats", ErrBadMessage, n)
	}
	if n > 0 {
		m.Tenants = make([]TenantStat, 0, n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		var t TenantStat
		t.decode(d)
		m.Tenants = append(m.Tenants, t)
	}
	return finish(d)
}
