package codec

import (
	"bytes"
	"compress/flate"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, c Codec, p []byte) {
	t.Helper()
	enc, err := c.Encode(p)
	if err != nil {
		t.Fatalf("%s encode: %v", c.Name(), err)
	}
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("%s decode: %v", c.Name(), err)
	}
	if !bytes.Equal(dec, p) {
		t.Fatalf("%s roundtrip mismatch: %d in, %d out", c.Name(), len(p), len(dec))
	}
}

func allCodecs(t *testing.T) []Codec {
	t.Helper()
	fl, err := NewFlate(flate.DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewAESCTR(bytes.Repeat([]byte{7}, 32))
	if err != nil {
		t.Fatal(err)
	}
	return []Codec{Identity{}, fl, enc, NewChain(fl, enc)}
}

func TestRoundTripAllCodecs(t *testing.T) {
	payloads := [][]byte{
		nil,
		[]byte("x"),
		bytes.Repeat([]byte("abc"), 10000),
		make([]byte, 4096), // zeros: compresses hard
	}
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, 8192)
	rng.Read(random)
	payloads = append(payloads, random)

	for _, c := range allCodecs(t) {
		for _, p := range payloads {
			roundTrip(t, c, p)
		}
	}
}

func TestFlateActuallyCompresses(t *testing.T) {
	fl, err := NewFlate(flate.BestCompression)
	if err != nil {
		t.Fatal(err)
	}
	p := bytes.Repeat([]byte("swarm "), 1000)
	enc, err := fl.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(p)/4 {
		t.Fatalf("compressed %d -> %d, expected big reduction", len(p), len(enc))
	}
}

func TestFlateLevelValidation(t *testing.T) {
	if _, err := NewFlate(42); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewFlate(flate.HuffmanOnly); err != nil {
		t.Fatal(err)
	}
}

func TestFlateRejectsGarbage(t *testing.T) {
	fl, _ := NewFlate(flate.DefaultCompression)
	if _, err := fl.Decode([]byte{0xFF, 0x00, 0x12}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage decode: %v", err)
	}
}

func TestAESKeyValidation(t *testing.T) {
	if _, err := NewAESCTR([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
	for _, n := range []int{16, 24, 32} {
		if _, err := NewAESCTR(make([]byte, n)); err != nil {
			t.Fatalf("key size %d rejected: %v", n, err)
		}
	}
}

func TestAESCiphertextDiffersAndRandomizes(t *testing.T) {
	a, err := NewAESCTR(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	p := []byte("secret contents of a swarm block")
	e1, err := a.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := a.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(e1, p) {
		t.Fatal("plaintext visible in ciphertext")
	}
	if bytes.Equal(e1, e2) {
		t.Fatal("two encryptions identical: nonce not randomized")
	}
}

func TestAESRejectsShortCiphertext(t *testing.T) {
	a, _ := NewAESCTR(make([]byte, 16))
	if _, err := a.Decode([]byte{1, 2, 3}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short ciphertext: %v", err)
	}
}

func TestAESWrongKeyGarbles(t *testing.T) {
	a1, _ := NewAESCTR(bytes.Repeat([]byte{1}, 16))
	a2, _ := NewAESCTR(bytes.Repeat([]byte{2}, 16))
	p := []byte("belongs to client 1")
	enc, err := a1.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := a2.Decode(enc) // CTR always "succeeds"…
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(dec, p) {
		t.Fatal("wrong key decrypted correctly")
	}
}

func TestChainOrderCompressThenEncrypt(t *testing.T) {
	fl, _ := NewFlate(flate.BestCompression)
	enc, _ := NewAESCTR(make([]byte, 16))
	chain := NewChain(fl, enc)
	p := bytes.Repeat([]byte("compressible "), 1000)
	out, err := chain.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	// Compression happened before encryption: output is much smaller
	// than the plaintext.
	if len(out) >= len(p)/2 {
		t.Fatalf("chain output %d of %d: compression lost", len(out), len(p))
	}
	roundTrip(t, chain, p)
	if chain.Name() != "chain(flate+aes-ctr)" {
		t.Fatalf("name = %q", chain.Name())
	}
}

// Property: every codec roundtrips arbitrary payloads.
func TestQuickRoundTrip(t *testing.T) {
	codecs := allCodecs(t)
	f := func(p []byte) bool {
		for _, c := range codecs {
			enc, err := c.Encode(p)
			if err != nil {
				return false
			}
			dec, err := c.Decode(enc)
			if err != nil || !bytes.Equal(dec, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
