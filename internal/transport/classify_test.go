package transport

import (
	"bytes"
	"testing"
	"time"

	"swarm/internal/wire"
)

// TestStatusClassificationExhaustive pins the contract of satellite
// concern: every wire status has an explicit entry in classifyStatus, so
// a newly added status fails here instead of silently defaulting to
// permanent. It also spot-checks the classes themselves.
func TestStatusClassificationExhaustive(t *testing.T) {
	for _, s := range wire.AllStatuses() {
		out, known := classifyStatus(s)
		if !known {
			t.Errorf("status %v (%d) has no explicit classification entry", s, uint8(s))
		}
		want := outcomeFinal
		if s == wire.StatusBusy {
			want = outcomeBusy
		}
		if out != want {
			t.Errorf("classifyStatus(%v) = %d, want %d", s, out, want)
		}
	}
	if _, known := classifyStatus(wire.Status(200)); known {
		t.Error("undefined status claimed a classification entry")
	}
}

func TestClassifyErrors(t *testing.T) {
	if got := classify(nil); got != outcomeFinal {
		t.Errorf("classify(nil) = %d, want final", got)
	}
	if got := classify(ErrUnavailable); got != outcomeTransient {
		t.Errorf("classify(ErrUnavailable) = %d, want transient", got)
	}
	if got := classify(&wire.StatusError{Status: wire.StatusBusy}); got != outcomeBusy {
		t.Errorf("classify(busy) = %d, want busy", got)
	}
	if got := classify(&wire.StatusError{Status: wire.StatusNotFound}); got != outcomeFinal {
		t.Errorf("classify(not-found) = %d, want final", got)
	}
}

func TestResilientRetriesBusySheds(t *testing.T) {
	var sleeps int
	r, fl := newResilientPair(t, ResilientConfig{
		BusyRetries:   8,
		FailThreshold: 2, // would trip instantly if busy counted as failure
		sleep:         func(time.Duration) { sleeps++ },
	})
	fl.FailNext(3, &wire.StatusError{Status: wire.StatusBusy, Msg: "shed"})
	data := bytes.Repeat([]byte{7}, 128)
	if err := r.Store(wire.MakeFID(1, 0), data, true, nil); err != nil {
		t.Fatalf("store through busy sheds: %v", err)
	}
	h := r.Health()
	if h.Busy != 3 {
		t.Fatalf("busy count = %d, want 3 (health %+v)", h.Busy, h)
	}
	if h.Failures != 0 || h.Trips != 0 || h.State != "closed" {
		t.Fatalf("busy sheds disturbed the breaker: %+v", h)
	}
	if sleeps != 3 {
		t.Fatalf("slept %d times, want 3 (one backoff per shed)", sleeps)
	}
}

func TestResilientBusyExhaustionReturnsBusy(t *testing.T) {
	r, fl := newResilientPair(t, ResilientConfig{
		BusyRetries: 2,
		sleep:       func(time.Duration) {},
	})
	fl.FailNext(100, &wire.StatusError{Status: wire.StatusBusy, Msg: "shed"})
	before := fl.Calls()
	err := r.Store(wire.MakeFID(1, 0), bytes.Repeat([]byte{7}, 64), false, nil)
	if !wire.IsStatus(err, wire.StatusBusy) {
		t.Fatalf("exhausted busy retries returned %v, want StatusBusy", err)
	}
	if got := fl.Calls() - before; got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + BusyRetries)", got)
	}
	// Even exhausted, busy never reads as server death.
	if h := r.Health(); h.State != "closed" || h.Trips != 0 {
		t.Fatalf("busy exhaustion disturbed the breaker: %+v", h)
	}
}

// TestResilientACLCreateRetriesBusy: ACL creation is never retried after
// transient failures (a lost response could leak an ACL), but a busy
// shed happens before the handler runs, so retrying it is safe.
func TestResilientACLCreateRetriesBusy(t *testing.T) {
	r, fl := newResilientPair(t, ResilientConfig{
		BusyRetries: 8,
		sleep:       func(time.Duration) {},
	})
	fl.FailNext(2, &wire.StatusError{Status: wire.StatusBusy, Msg: "shed"})
	before := fl.Calls()
	aid, err := r.ACLCreate([]wire.ClientID{1, 2})
	if err != nil {
		t.Fatalf("acl-create through busy sheds: %v", err)
	}
	if aid == 0 {
		t.Fatal("acl-create returned AID 0")
	}
	if got := fl.Calls() - before; got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	// Transient failures still abort immediately.
	fl.FailNext(1, ErrUnavailable)
	before = fl.Calls()
	if _, err := r.ACLCreate([]wire.ClientID{3}); err == nil {
		t.Fatal("acl-create with transient failure succeeded")
	}
	if got := fl.Calls() - before; got != 1 {
		t.Fatalf("transient acl-create attempted %d times, want 1", got)
	}
}
