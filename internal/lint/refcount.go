package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// RefCount enforces the reference-count discipline the serving tier's
// extent cache introduced (DESIGN.md §3.13): an object whose lifetime
// is a reference count (server.Extent — pooled buffer shared between
// cache residency and in-flight responses) must have every acquired
// reference discharged on *every* control-flow path, including error
// returns. It generalizes bufpool's ownership tracking from exclusively
// owned buffers to refcounted objects, and unlike bufpool it is flow
// sensitive: built on the shared flow walker, it proves release on all
// paths rather than at least one.
//
// A function acquires a reference when:
//
//   - it calls a function documented swarmlint:returns-ref and binds the
//     refcounted result (the accessor convention: the callee hands the
//     caller a reference it must discharge);
//   - it bumps the count itself: v.<field>.Add(n) or .Store(n) with a
//     positive constant on a refcounted value;
//   - it extracts a refcounted value from a container element
//     (el.Value.(*T)) in a function that also removes entries from a
//     container (delete(...) or x.Remove(...)): unlinking the entry
//     orphans the container's reference, which the extractor now owns.
//
// A reference is discharged when the value reaches v.Release() (direct
// or deferred), is returned, stored (assignment, composite literal,
// field, map, channel send), handed to a goroutine, captured by a
// function literal, or passed — itself or its source container element —
// to a same-package call (ownership transfer, as in bufpool). Nil
// refinement keeps error paths quiet: on an `err != nil` branch of the
// acquiring call, or a `v == nil` branch, no reference is held.
//
// The analyzer also audits release hooks: a struct field of refcounted
// type declared in a checked package must have some method in the
// package that releases it (the wire.PayloadReleaser pattern —
// cachedReadResponse.ReleasePayload dropping its extent), or carry
// swarmlint:refcount-ok explaining who releases it.
type RefCount struct {
	// typeNames holds "importpath.TypeName" of the refcounted types.
	typeNames map[string]bool
}

// NewRefCount returns the refcount analyzer for the named types (each
// "importpath.TypeName").
func NewRefCount(typeNames []string) *RefCount {
	m := make(map[string]bool, len(typeNames))
	for _, n := range typeNames {
		m[n] = true
	}
	return &RefCount{typeNames: m}
}

// Name implements Analyzer.
func (*RefCount) Name() string { return "refcount" }

// Doc implements Analyzer.
func (*RefCount) Doc() string {
	return "acquired references on refcounted objects reach Release (or escape) on every control-flow path"
}

// isRefcounted reports whether t (after unwrapping pointers) is one of
// the configured refcounted types.
func (rc *RefCount) isRefcounted(t types.Type) bool {
	n := namedOrPointee(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return rc.typeNames[n.Obj().Pkg().Path()+"."+n.Obj().Name()]
}

// Run implements Analyzer.
func (rc *RefCount) Run(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, fn := range functionsIn(f) {
			body := FuncBody(fn)
			if body == nil {
				continue
			}
			diags = append(diags, rc.checkFunc(p, fn, body)...)
		}
	}
	diags = append(diags, rc.checkReleaseHooks(p)...)
	return diags
}

// functionsIn returns every FuncDecl and FuncLit in f, each analyzed as
// its own function (a literal's acquisitions are its own obligations).
func functionsIn(f *ast.File) []ast.Node {
	var out []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n)
			}
		case *ast.FuncLit:
			out = append(out, n)
		}
		return true
	})
	return out
}

// checkFunc runs the flow walker over one function body.
func (rc *RefCount) checkFunc(p *Package, fn ast.Node, body *ast.BlockStmt) []Diagnostic {
	h := &refcountFlow{
		rc:       rc,
		p:        p,
		lo:       fn.Pos(),
		hi:       fn.End(),
		removes:  containsRemoval(body),
		acquires: make(map[*types.Var]token.Pos),
		errBuddy: make(map[*types.Var][]*types.Var),
		source:   make(map[*types.Var]*types.Var),
		reported: make(map[*types.Var]bool),
	}
	walkFlow(body, p.Info, h, func(st *flowState, at ast.Node) {
		for v, status := range st.vars {
			if status != flowHeld && status != flowMaybeHeld {
				continue
			}
			if h.reported[v] {
				continue
			}
			h.reported[v] = true
			qualifier := "not released"
			if status == flowMaybeHeld {
				qualifier = "not released on every path"
			}
			h.diags = append(h.diags, Diagnostic{
				Pos: p.Fset.Position(h.acquires[v]),
				Message: fmt.Sprintf("reference %q acquired here is %s: every path must reach Release() or hand the reference off (or annotate with %s)",
					v.Name(), qualifier, DirectiveRefcountOK),
				Analyzer: rc.Name(),
			})
		}
	})
	return h.diags
}

// containsRemoval reports whether body directly removes entries from a
// container: a delete(...) call or a .Remove(...) method call. Such a
// function owns the references of the entries it unlinks.
func containsRemoval(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "delete" {
				found = true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Remove" {
				found = true
			}
		}
		return !found
	})
	return found
}

// refcountFlow is the refcount analyzer's flowHooks implementation for
// one function.
type refcountFlow struct {
	rc      *RefCount
	p       *Package
	lo, hi  token.Pos // the analyzed function's extent: vars outside are free
	removes bool

	acquires map[*types.Var]token.Pos  // tracked var -> acquisition site
	errBuddy map[*types.Var][]*types.Var // error var -> refs from the same call
	source   map[*types.Var]*types.Var // extracted var -> container element var
	reported map[*types.Var]bool
	diags    []Diagnostic
}

// Transfer implements flowHooks.
func (h *refcountFlow) Transfer(st *flowState, stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if h.acquisition(st, s.Lhs, s.Rhs, s.Pos()) {
			return
		}
		h.escapeAssign(st, s.Lhs, s.Rhs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				var lhs []ast.Expr
				for _, name := range vs.Names {
					lhs = append(lhs, name)
				}
				if h.acquisition(st, lhs, vs.Values, vs.Pos()) {
					continue
				}
				h.escapeAssign(st, lhs, vs.Values)
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			h.Call(st, call)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			h.markOwnedMentions(st, r)
		}
	case *ast.SendStmt:
		h.markOwnedMentions(st, s.Value)
	case *ast.GoStmt:
		// The goroutine takes the reference with it: any mention (even a
		// field read) hands the object to concurrent code we trust to
		// discharge it.
		h.markAllMentions(st, s.Call)
	case *ast.RangeStmt:
		// Ranging does not consume; nested statements arrive separately.
		return
	}
	// A function literal anywhere in the statement captures what it
	// mentions: the closure owns (or borrows beyond our sight) the ref.
	if stmt != nil {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				h.markAllMentions(st, lit.Body)
				return false
			}
			return true
		})
	}
}

// Call implements flowHooks: the effect of one call expression, direct
// or replayed from a defer.
func (h *refcountFlow) Call(st *flowState, call *ast.CallExpr) {
	// v.Release(): the canonical discharge.
	if v := h.releaseTarget(call); v != nil {
		if _, tracked := h.acquires[v]; tracked {
			st.Set(v, flowDone)
		}
		return
	}
	// v.<refs>.Add(n) / .Store(n): manual count manipulation.
	if v, delta := h.countManipulation(call); v != nil {
		if delta > 0 {
			h.track(st, v, call.Pos())
		} else if _, tracked := h.acquires[v]; tracked {
			st.Set(v, flowDone)
		}
		return
	}
	// A deferred function literal discharges what it mentions.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		h.markAllMentions(st, lit.Body)
		return
	}
	if isPanic(h.p.Info, call) {
		return
	}
	// Passing the value (or its source container element) to a
	// same-package call transfers the reference, bufpool-style.
	samePkg := h.samePackageCallee(call)
	for _, arg := range call.Args {
		for v := range h.acquires {
			if st.Get(v) != flowHeld && st.Get(v) != flowMaybeHeld {
				continue
			}
			if mentionsOwned(h.p.Info, arg, v) {
				st.Set(v, flowDone)
				continue
			}
			if src := h.source[v]; src != nil && samePkg && mentions(h.p.Info, arg, src) {
				st.Set(v, flowDone)
			}
		}
	}
}

// Refine implements flowHooks: nil and error-branch narrowing.
func (h *refcountFlow) Refine(st *flowState, cond ast.Expr, truth bool) {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			h.Refine(st, c.X, !truth)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if truth {
				h.Refine(st, c.X, true)
				h.Refine(st, c.Y, true)
			}
		case token.LOR:
			if !truth {
				h.Refine(st, c.X, false)
				h.Refine(st, c.Y, false)
			}
		case token.EQL, token.NEQ:
			id, isNilCmp := nilComparand(h.p.Info, c)
			if !isNilCmp {
				return
			}
			v := h.identVar(id)
			if v == nil {
				return
			}
			isNil := (c.Op == token.EQL) == truth
			if _, tracked := h.acquires[v]; tracked && isNil {
				// The acquiring call returned nil: no reference exists.
				st.Set(v, flowNone)
				return
			}
			// err != nil on the acquiring call's error: the convention is
			// error => no reference handed out.
			if buddies, ok := h.errBuddy[v]; ok && !isNil {
				for _, b := range buddies {
					if st.Get(b) == flowHeld || st.Get(b) == flowMaybeHeld {
						st.Set(b, flowNone)
					}
				}
			}
		}
	}
}

// acquisition recognizes the acquiring assignment forms and returns
// true when it handled the statement.
func (h *refcountFlow) acquisition(st *flowState, lhs, rhs []ast.Expr, pos token.Pos) bool {
	if len(rhs) != 1 {
		return false
	}
	switch r := ast.Unparen(rhs[0]).(type) {
	case *ast.CallExpr:
		if !h.p.Annotations().calleeHas(h.p.Info, r, DirectiveReturnsRef) {
			return false
		}
		if h.p.Annotations().onLine(pos, DirectiveRefcountOK) {
			return true
		}
		var acquired []*types.Var
		var errVars []*types.Var
		for _, l := range lhs {
			v := h.identVar(l)
			if v == nil {
				continue
			}
			if h.rc.isRefcounted(v.Type()) {
				h.track(st, v, pos)
				acquired = append(acquired, v)
			} else if isErrorType(v.Type()) {
				errVars = append(errVars, v)
			}
		}
		for _, e := range errVars {
			h.errBuddy[e] = append(h.errBuddy[e], acquired...)
		}
		return len(acquired) > 0
	case *ast.TypeAssertExpr:
		if !h.removes || !h.rc.isRefcounted(h.p.Info.TypeOf(r)) {
			return false
		}
		if h.p.Annotations().onLine(pos, DirectiveRefcountOK) {
			return true
		}
		if len(lhs) == 0 {
			return false
		}
		v := h.identVar(lhs[0])
		if v == nil {
			return false
		}
		h.track(st, v, pos)
		if src := rootIdentVar(h.p.Info, r.X); src != nil {
			h.source[v] = src
		}
		return true
	}
	return false
}

// track begins tracking v as held, remembering the acquisition site.
func (h *refcountFlow) track(st *flowState, v *types.Var, pos token.Pos) {
	if _, ok := h.acquires[v]; !ok {
		h.acquires[v] = pos
	}
	st.Set(v, flowHeld)
}

// escapeAssign discharges tracked values that an assignment stores
// somewhere new (anything but a self-reassignment).
func (h *refcountFlow) escapeAssign(st *flowState, lhs, rhs []ast.Expr) {
	for i, r := range rhs {
		for v := range h.acquires {
			if st.Get(v) != flowHeld && st.Get(v) != flowMaybeHeld {
				continue
			}
			if !mentionsOwned(h.p.Info, r, v) {
				continue
			}
			// v = v (re-slice etc.) keeps ownership in place, and
			// _ = v discards nothing: neither is an escape.
			if i < len(lhs) {
				if lv := h.identVar(lhs[i]); lv == v {
					continue
				}
				if id, ok := ast.Unparen(lhs[i]).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
			}
			st.Set(v, flowDone)
		}
	}
	// v = nil drops the binding.
	for i, l := range lhs {
		v := h.identVar(l)
		if v == nil {
			continue
		}
		if _, tracked := h.acquires[v]; !tracked {
			continue
		}
		if i < len(rhs) {
			if id, ok := ast.Unparen(rhs[i]).(*ast.Ident); ok && id.Name == "nil" {
				st.Set(v, flowNone)
			}
		}
	}
	// Calls on the right-hand side still transfer their arguments.
	for _, r := range rhs {
		ast.Inspect(r, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				h.Call(st, call)
			}
			return true
		})
	}
}

// markOwnedMentions discharges tracked values the expression mentions as
// whole values (returns, sends, stores).
func (h *refcountFlow) markOwnedMentions(st *flowState, e ast.Expr) {
	if e == nil {
		return
	}
	for v := range h.acquires {
		if st.Get(v) != flowHeld && st.Get(v) != flowMaybeHeld {
			continue
		}
		if mentionsOwned(h.p.Info, e, v) {
			st.Set(v, flowDone)
		}
	}
}

// markAllMentions discharges tracked values on any mention at all
// (goroutines, captured closures: the value left our sight).
func (h *refcountFlow) markAllMentions(st *flowState, n ast.Node) {
	for v := range h.acquires {
		if st.Get(v) != flowHeld && st.Get(v) != flowMaybeHeld {
			continue
		}
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && (h.p.Info.Uses[id] == v || h.p.Info.Defs[id] == v) {
				found = true
			}
			return !found
		})
		if found {
			st.Set(v, flowDone)
		}
	}
}

// releaseTarget returns the tracked variable v when call is v.Release().
func (h *refcountFlow) releaseTarget(call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" || len(call.Args) != 0 {
		return nil
	}
	v := h.identVar(sel.X)
	if v == nil || !h.rc.isRefcounted(v.Type()) {
		return nil
	}
	return v
}

// countManipulation recognizes v.<field>.Add(c) / v.<field>.Store(c) on
// a refcounted v with a constant argument, returning v and the sign of
// the manipulation (+1 acquire, -1 release). Returns (nil, 0) otherwise.
func (h *refcountFlow) countManipulation(call *ast.CallExpr) (*types.Var, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Add" && sel.Sel.Name != "Store") || len(call.Args) != 1 {
		return nil, 0
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, 0
	}
	v := h.identVar(inner.X)
	if v == nil || !h.rc.isRefcounted(v.Type()) {
		return nil, 0
	}
	tv, ok := h.p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return nil, 0
	}
	if constant.Sign(tv.Value) > 0 {
		return v, 1
	}
	return v, -1
}

// samePackageCallee reports whether call resolves to a function declared
// in the analyzed package (an ownership-transfer candidate).
func (h *refcountFlow) samePackageCallee(call *ast.CallExpr) bool {
	fn, ok := calleeObject(h.p.Info, call).(*types.Func)
	return ok && fn.Pkg() == h.p.Types
}

// identVar resolves a plain identifier expression to its variable whose
// declaration lies inside the analyzed function (parameters, results,
// and locals — not free variables of an enclosing function), else nil.
func (h *refcountFlow) identVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	var v *types.Var
	if d, ok := h.p.Info.Defs[id].(*types.Var); ok {
		v = d
	} else if u, ok := h.p.Info.Uses[id].(*types.Var); ok {
		v = u
	}
	if v == nil {
		return nil
	}
	if v.Pos() < h.lo || v.Pos() > h.hi {
		return nil // free variable of an enclosing function
	}
	return v
}

// checkReleaseHooks audits struct fields of refcounted type: some method
// in the package must release them (the PayloadReleaser pattern), or the
// field carries swarmlint:refcount-ok.
func (rc *RefCount) checkReleaseHooks(p *Package) []Diagnostic {
	type hookField struct {
		name string
		pos  token.Pos
		obj  *types.Var
	}
	var fields []hookField
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stct, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range stct.Fields.List {
				t := p.Info.TypeOf(fld.Type)
				if t == nil || !rc.isRefcounted(t) {
					continue
				}
				// Only pointer/named fields count: the refcounted type's
				// own internals (its counter) are not hook sites.
				for _, name := range fld.Names {
					v, ok := p.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					fields = append(fields, hookField{name: name.Name, pos: name.Pos(), obj: v})
				}
			}
			return true
		})
	}
	if len(fields) == 0 {
		return nil
	}
	// Collect "<x>.<field>.Release()" call sites anywhere in the package.
	released := make(map[string]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Release" {
				return true
			}
			if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
				released[inner.Sel.Name] = true
			}
			return true
		})
	}
	ann := p.Annotations()
	var diags []Diagnostic
	for _, fld := range fields {
		if released[fld.name] {
			continue
		}
		if ann.fieldHas(fld.obj, DirectiveRefcountOK) || ann.onLine(fld.pos, DirectiveRefcountOK) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos: p.Fset.Position(fld.pos),
			Message: fmt.Sprintf("struct field %q holds a refcounted reference but no method in this package releases it; add a release hook (wire.PayloadReleaser pattern) or annotate with %s",
				fld.name, DirectiveRefcountOK),
			Analyzer: rc.Name(),
		})
	}
	return diags
}

// mentionsOwned reports whether expr mentions v as a whole value — the
// identifier itself, &v, v inside a composite literal, call argument, or
// index base — but NOT a field read v.f, which borrows rather than owns.
func mentionsOwned(info *types.Info, expr ast.Expr, v *types.Var) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e] == v || info.Defs[e] == v
	case *ast.UnaryExpr:
		return mentionsOwned(info, e.X, v)
	case *ast.StarExpr:
		return mentionsOwned(info, e.X, v)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if mentionsOwned(info, el, v) {
				return true
			}
		}
	case *ast.KeyValueExpr:
		return mentionsOwned(info, e.Value, v)
	case *ast.CallExpr:
		for _, a := range e.Args {
			if mentionsOwned(info, a, v) {
				return true
			}
		}
	case *ast.IndexExpr:
		return mentionsOwned(info, e.X, v)
	case *ast.SliceExpr:
		return mentionsOwned(info, e.X, v)
	case *ast.BinaryExpr:
		return mentionsOwned(info, e.X, v) || mentionsOwned(info, e.Y, v)
	case *ast.SelectorExpr:
		return false // v.f is a borrow, not a transfer
	}
	return false
}

// nilComparand returns the identifier compared against nil in a binary
// == / != expression, if either side is the nil identifier.
func nilComparand(info *types.Info, b *ast.BinaryExpr) (*ast.Ident, bool) {
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if isNilIdent(x) {
		if id, ok := y.(*ast.Ident); ok {
			return id, true
		}
		return nil, false
	}
	if isNilIdent(y) {
		if id, ok := x.(*ast.Ident); ok {
			return id, true
		}
	}
	return nil, false
}

// rootIdentVar walks selector/index/star chains down to the base
// identifier's variable: el.Value -> el. Used to record the container
// element a refcounted value was extracted from.
func rootIdentVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			if v, ok := info.Defs[x].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return strings.TrimPrefix(t.String(), "untyped ") == "error" || types.Identical(t, types.Universe.Lookup("error").Type())
}
