package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"swarm/internal/disk"
	"swarm/internal/server"
	"swarm/internal/transport"
	"swarm/internal/wire"
)

const (
	testFragSize = 4096
	testClient   = wire.ClientID(1)
)

// cluster is an in-process test cluster.
type cluster struct {
	stores []*server.Store
	flaky  []*transport.Flaky
	conns  []transport.ServerConn
}

func newTestCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{}
	for i := 0; i < n; i++ {
		d := disk.NewMemDisk(4 << 20)
		st, err := server.Format(d, server.Config{FragmentSize: testFragSize})
		if err != nil {
			t.Fatal(err)
		}
		fl := transport.NewFlaky(transport.NewLocal(wire.ServerID(i+1), st, testClient))
		c.stores = append(c.stores, st)
		c.flaky = append(c.flaky, fl)
		c.conns = append(c.conns, fl)
	}
	return c
}

func (c *cluster) open(t *testing.T, cfg Config) (*Log, *Recovery) {
	t.Helper()
	cfg.Client = testClient
	cfg.Servers = c.conns
	cfg.FragmentSize = testFragSize
	l, rec, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

func mustAppend(t *testing.T, l *Log, svc ServiceID, data []byte) BlockAddr {
	t.Helper()
	addr, err := l.AppendBlock(svc, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

func mustRead(t *testing.T, l *Log, addr BlockAddr, n int) []byte {
	t.Helper()
	data, err := l.Read(addr, 0, uint32(n))
	if err != nil {
		t.Fatalf("read %v: %v", addr, err)
	}
	return data
}

func blockPattern(i, n int) []byte {
	b := make([]byte, n)
	for j := range b {
		b[j] = byte(i + j)
	}
	return b
}

func TestOpenValidation(t *testing.T) {
	c := newTestCluster(t, 2)
	if _, _, err := Open(Config{}); !errors.Is(err, ErrConfig) {
		t.Errorf("no servers: %v", err)
	}
	if _, _, err := Open(Config{Client: 1, Servers: c.conns, Width: 3, FragmentSize: testFragSize}); !errors.Is(err, ErrConfig) {
		t.Errorf("width > servers: %v", err)
	}
	if _, _, err := Open(Config{Client: 1, Servers: c.conns, FragmentSize: 64}); !errors.Is(err, ErrConfig) {
		t.Errorf("tiny fragment: %v", err)
	}
}

func TestAppendReadBeforeAndAfterSync(t *testing.T) {
	c := newTestCluster(t, 4)
	l, rec := c.open(t, Config{})
	if !rec.Fresh {
		t.Fatal("expected fresh log")
	}
	defer l.Close()

	var addrs []BlockAddr
	var blocks [][]byte
	for i := 0; i < 20; i++ {
		b := blockPattern(i, 300)
		addrs = append(addrs, mustAppend(t, l, 7, b))
		blocks = append(blocks, b)
	}
	// Read-your-writes before any flush.
	for i, addr := range addrs {
		if got := mustRead(t, l, addr, 300); !bytes.Equal(got, blocks[i]) {
			t.Fatalf("pre-sync read %d mismatch", i)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, addr := range addrs {
		if got := mustRead(t, l, addr, 300); !bytes.Equal(got, blocks[i]) {
			t.Fatalf("post-sync read %d mismatch", i)
		}
	}
	// Partial block read.
	if got, err := l.Read(addrs[3], 10, 50); err != nil || !bytes.Equal(got, blocks[3][10:60]) {
		t.Fatalf("partial read: %v", err)
	}
}

func TestStripeGeometry(t *testing.T) {
	c := newTestCluster(t, 4)
	l, _ := c.open(t, Config{})
	defer l.Close()
	if l.Width() != 4 || !l.ParityEnabled() {
		t.Fatalf("width=%d parity=%v", l.Width(), l.ParityEnabled())
	}
	// Parity index rotates by stripe.
	if l.parityIndex(0) != 0 || l.parityIndex(1) != 1 || l.parityIndex(5) != 1 {
		t.Fatal("parity rotation wrong")
	}
	// Data sequence numbers skip parity slots.
	if got := l.nextDataSeq(0); got != 1 {
		t.Fatalf("nextDataSeq(0) = %d (stripe 0 parity at index 0)", got)
	}
	if got := l.nextDataSeq(5); got != 6 {
		t.Fatalf("nextDataSeq(5) = %d (stripe 1 parity at index 1)", got)
	}
	// Members of one stripe land on distinct servers.
	seen := map[wire.ServerID]bool{}
	for i := 0; i < l.width; i++ {
		id := l.connAt(3, i).ID()
		if seen[id] {
			t.Fatalf("server %d repeated within stripe", id)
		}
		seen[id] = true
	}
}

func TestFragmentsLandOnRotatedServers(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	defer l.Close()

	// Fill several stripes.
	for i := 0; i < 64; i++ {
		mustAppend(t, l, 7, blockPattern(i, 512))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Every sealed fragment must live exactly where placement says.
	for fid, sid := range l.locations {
		stripe := l.stripeOf(fid.Seq())
		idx := int(fid.Seq() % uint64(l.width))
		if want := l.connAt(stripe, idx).ID(); want != sid {
			t.Fatalf("fragment %v on server %d, want %d", fid, sid, want)
		}
		// And actually be there.
		if _, ok, err := c.conns[sid-1].Has(fid); err != nil || !ok {
			t.Fatalf("fragment %v missing from server %d", fid, sid)
		}
	}
}

func TestParityVerifiesAfterSync(t *testing.T) {
	c := newTestCluster(t, 4)
	l, _ := c.open(t, Config{})
	defer l.Close()
	for i := 0; i < 100; i++ {
		mustAppend(t, l, 7, blockPattern(i, 700))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	stripes := l.usage.Stripes()
	if len(stripes) < 2 {
		t.Fatalf("only %d stripes written", len(stripes))
	}
	for _, s := range stripes {
		if err := l.VerifyStripe(s); err != nil {
			t.Fatalf("stripe %d: %v", s, err)
		}
	}
}

func TestReadSurvivesSingleServerFailure(t *testing.T) {
	c := newTestCluster(t, 4)
	l, _ := c.open(t, Config{})
	defer l.Close()

	var addrs []BlockAddr
	var blocks [][]byte
	for i := 0; i < 60; i++ {
		b := blockPattern(i, 600)
		addrs = append(addrs, mustAppend(t, l, 7, b))
		blocks = append(blocks, b)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Kill each server in turn; every block must stay readable.
	for kill := 0; kill < 4; kill++ {
		c.flaky[kill].SetDown(true)
		for i, addr := range addrs {
			got, err := l.Read(addr, 0, 600)
			if err != nil {
				t.Fatalf("server %d down, read %d: %v", kill, i, err)
			}
			if !bytes.Equal(got, blocks[i]) {
				t.Fatalf("server %d down, read %d mismatch", kill, i)
			}
		}
		c.flaky[kill].SetDown(false)
	}
	if l.Stats().Reconstructions == 0 {
		t.Fatal("no reconstructions recorded")
	}
}

func TestTwoFailuresInStripeAreFatal(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	defer l.Close()
	addr := mustAppend(t, l, 7, blockPattern(0, 500))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	c.flaky[0].SetDown(true)
	c.flaky[1].SetDown(true)
	c.flaky[2].SetDown(true)
	if _, err := l.Read(addr, 0, 500); err == nil {
		t.Fatal("read succeeded with all servers down")
	}
	c.flaky[2].SetDown(false)
	// Two of three still down: the stripe is unreconstructable unless
	// the surviving server holds the needed fragment.
	if _, err := l.Read(addr, 0, 500); err != nil && !errors.Is(err, ErrLost) && !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("unexpected error type: %v", err)
	}
}

func TestReconstructParityFragment(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	defer l.Close()
	for i := 0; i < 30; i++ {
		mustAppend(t, l, 7, blockPattern(i, 800))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Find stripe 0's parity fragment and its server; kill it.
	pIdx := l.parityIndex(0)
	pfid := wire.MakeFID(testClient, uint64(pIdx))
	sid := l.locations[pfid]
	c.flaky[sid-1].SetDown(true)
	h, payload, err := l.FetchFragment(pfid)
	if err != nil {
		t.Fatalf("reconstruct parity: %v", err)
	}
	if h.Kind != FragParity || h.FID != pfid {
		t.Fatalf("header = %+v", h)
	}
	c.flaky[sid-1].SetDown(false)
	// Compare against the real parity fragment.
	realH, realPayload, err := l.fetchDirect(pfid)
	if err != nil {
		t.Fatal(err)
	}
	if realH.DataLen != h.DataLen || !bytes.Equal(payload, realPayload) {
		t.Fatal("reconstructed parity differs from stored parity")
	}
}

func TestBroadcastFallbackFindsMislocatedFragment(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	defer l.Close()
	addr := mustAppend(t, l, 7, blockPattern(1, 400))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Forget the fragment's location: FetchFragment must find it by
	// broadcast (self-hosting discovery).
	l.mu.Lock()
	delete(l.locations, addr.FID)
	l.mu.Unlock()
	if _, _, err := l.FetchFragment(addr.FID); err != nil {
		t.Fatalf("broadcast fetch: %v", err)
	}
	if l.Stats().BroadcastFallback == 0 {
		t.Fatal("broadcast fallback not recorded")
	}
}

func TestParityDisabledSingleServer(t *testing.T) {
	c := newTestCluster(t, 1)
	l, _ := c.open(t, Config{Width: 1})
	defer l.Close()
	if l.ParityEnabled() {
		t.Fatal("parity enabled with width 1")
	}
	var addrs []BlockAddr
	for i := 0; i < 20; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 900)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, addr := range addrs {
		if got := mustRead(t, l, addr, 900); !bytes.Equal(got, blockPattern(i, 900)) {
			t.Fatalf("read %d mismatch", i)
		}
	}
	if l.Stats().ParityFragments != 0 {
		t.Fatal("parity fragments written with parity disabled")
	}
}

func TestBlockTooLarge(t *testing.T) {
	c := newTestCluster(t, 2)
	l, _ := c.open(t, Config{})
	defer l.Close()
	big := make([]byte, l.MaxBlockSize()+1)
	if _, err := l.AppendBlock(7, big, nil); !errors.Is(err, ErrBlockTooLarge) {
		t.Fatalf("oversized block: %v", err)
	}
	// Exactly max块 size works... but the creation record must also fit,
	// so use max minus some headroom.
	ok := make([]byte, l.MaxBlockSize())
	if _, err := l.AppendBlock(7, ok, nil); err != nil {
		t.Fatalf("max block: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	c := newTestCluster(t, 2)
	l, _ := c.open(t, Config{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBlock(7, []byte("x"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
	if _, err := l.Read(BlockAddr{FID: wire.MakeFID(testClient, 0)}, 0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := l.WriteCheckpoint(7, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint after close: %v", err)
	}
}

func TestDeleteBlockAccounting(t *testing.T) {
	c := newTestCluster(t, 2)
	l, _ := c.open(t, Config{})
	defer l.Close()
	addr := mustAppend(t, l, 7, blockPattern(0, 500))
	stripe := l.stripeOf(addr.FID.Seq())
	before, _ := l.usage.Get(stripe)
	if err := l.DeleteBlock(addr, 500, 7); err != nil {
		t.Fatal(err)
	}
	after, _ := l.usage.Get(stripe)
	if after.Live >= before.Live {
		t.Fatalf("live did not drop: %d -> %d", before.Live, after.Live)
	}
}

func TestStoreErrorSurfacesOnSync(t *testing.T) {
	c := newTestCluster(t, 2)
	l, _ := c.open(t, Config{})
	defer l.Close()
	c.flaky[0].SetDown(true)
	c.flaky[1].SetDown(true)
	for i := 0; i < 30; i++ {
		if _, err := l.AppendBlock(7, blockPattern(i, 900), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync succeeded with all servers down")
	}
	c.flaky[0].SetDown(false)
	c.flaky[1].SetDown(false)
	l.ClearErr()
	if err := l.Err(); err != nil {
		t.Fatalf("error not cleared: %v", err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	c := newTestCluster(t, 4)
	l, _ := c.open(t, Config{})
	defer l.Close()

	const (
		goroutines = 8
		perG       = 40
	)
	type res struct {
		addr BlockAddr
		data []byte
	}
	results := make([][]res, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				data := blockPattern(g*1000+i, 256)
				addr, err := l.AppendBlock(ServiceID(g+1), data, nil)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				results[g] = append(results[g], res{addr, data})
			}
		}(g)
	}
	wg.Wait()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for g := range results {
		for i, r := range results[g] {
			got, err := l.Read(r.addr, 0, uint32(len(r.data)))
			if err != nil {
				t.Fatalf("read g%d#%d: %v", g, i, err)
			}
			if !bytes.Equal(got, r.data) {
				t.Fatalf("data mismatch g%d#%d", g, i)
			}
		}
	}
}

// countingConn counts concurrent Store calls to verify pipeline depth.
type countingConn struct {
	transport.ServerConn
	mu       sync.Mutex
	inflight int
	maxSeen  int
	block    chan struct{}
}

func (c *countingConn) Store(fid wire.FID, data []byte, mark bool, ranges []wire.ACLRange) error {
	c.mu.Lock()
	c.inflight++
	if c.inflight > c.maxSeen {
		c.maxSeen = c.inflight
	}
	c.mu.Unlock()
	if c.block != nil {
		<-c.block
	}
	err := c.ServerConn.Store(fid, data, mark, ranges)
	c.mu.Lock()
	c.inflight--
	c.mu.Unlock()
	return err
}

func TestFlowControlRespectsPipelineDepth(t *testing.T) {
	c := newTestCluster(t, 1)
	cc := &countingConn{ServerConn: c.conns[0], block: make(chan struct{})}
	l, _, err := Open(Config{
		Client:        testClient,
		Servers:       []transport.ServerConn{cc},
		FragmentSize:  testFragSize,
		Width:         1,
		PipelineDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Enough data for many fragments; ship blocks at depth 2.
		for i := 0; i < 40; i++ {
			if _, err := l.AppendBlock(7, blockPattern(i, 1000), nil); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	// Let the pipeline fill, then drain.
	for i := 0; i < 100; i++ {
		cc.mu.Lock()
		full := cc.inflight >= 2
		cc.mu.Unlock()
		if full {
			break
		}
	}
	close(cc.block)
	<-done
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.maxSeen > 2 {
		t.Fatalf("pipeline depth exceeded: %d concurrent stores", cc.maxSeen)
	}
}

func TestReclaimStripe(t *testing.T) {
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	defer l.Close()
	for i := 0; i < 60; i++ {
		mustAppend(t, l, 7, blockPattern(i, 600))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	stripes := l.usage.Stripes()
	if len(stripes) < 2 {
		t.Fatal("need at least 2 stripes")
	}
	victim := stripes[0]
	if err := l.ReclaimStripe(victim); err != nil {
		t.Fatal(err)
	}
	// All member fragments gone from every server.
	base := victim * uint64(l.width)
	for i := 0; i < l.width; i++ {
		fid := wire.MakeFID(testClient, base+uint64(i))
		if found := transport.Broadcast(l.Servers(), fid); len(found) != 0 {
			t.Fatalf("fragment %v survives on %d servers", fid, len(found))
		}
	}
	if _, ok := l.usage.Get(victim); ok {
		t.Fatal("usage entry survives reclaim")
	}
	// Reclaiming the active stripe is refused.
	cur := l.stripeOf(l.nextDataSeq(l.seq))
	if err := l.ReclaimStripe(cur); err == nil {
		t.Fatal("reclaimed active stripe")
	}
}

func TestReclaimStripeDefersDeletesOnDeadServer(t *testing.T) {
	// Reclaiming a stripe while one member's server is down must not
	// wedge: the data has already moved, so the stripe is dropped and the
	// orphan delete is deferred until the server answers again.
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	defer l.Close()
	for i := 0; i < 60; i++ {
		mustAppend(t, l, 7, blockPattern(i, 600))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	stripes := l.usage.Stripes()
	if len(stripes) < 2 {
		t.Fatal("need at least 2 stripes")
	}
	victim := stripes[0]
	// Find which server holds member 0 of the victim stripe and kill it.
	deadIdx := int(victim % uint64(len(c.flaky)))
	c.flaky[deadIdx].SetDown(true)
	if err := l.ReclaimStripe(victim); err != nil {
		t.Fatalf("reclaim with a dead server: %v", err)
	}
	if _, ok := l.usage.Get(victim); ok {
		t.Fatal("usage entry survives reclaim")
	}
	if l.Stats().DeferredDeletes == 0 {
		t.Fatal("no deferred deletes recorded")
	}
	if left := l.FlushDeletes(); left == 0 {
		t.Fatal("flush drained deletes while the server is still down")
	}
	// Server returns: the orphan is deleted on retry.
	c.flaky[deadIdx].SetDown(false)
	if left := l.FlushDeletes(); left != 0 {
		t.Fatalf("%d deletes still pending after server returned", left)
	}
	base := victim * uint64(l.width)
	for i := 0; i < l.width; i++ {
		fid := wire.MakeFID(testClient, base+uint64(i))
		if found := transport.Broadcast(l.Servers(), fid); len(found) != 0 {
			t.Fatalf("fragment %v survives on %d servers", fid, len(found))
		}
	}
}

func TestCheckpointFloor(t *testing.T) {
	c := newTestCluster(t, 2)
	l, _ := c.open(t, Config{})
	defer l.Close()
	// No registered services: floor is zero.
	if got := l.CheckpointFloor(); got != (Pos{}) {
		t.Fatalf("empty floor = %+v", got)
	}
	l.RegisterService(7)
	// Registered but never checkpointed pins the floor.
	if got := l.CheckpointFloor(); got != (Pos{}) {
		t.Fatalf("unckpt floor = %+v", got)
	}
	mustAppend(t, l, 7, blockPattern(0, 100))
	a1, err := l.WriteCheckpoint(7, []byte("s7"))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.CheckpointFloor(); got != PosOf(a1) {
		t.Fatalf("floor = %+v, want %+v", got, PosOf(a1))
	}
	// A second service with an older position drags the floor down only
	// if its checkpoint is older; here it's newer, so floor stays at 7's.
	l.RegisterService(9)
	a2, err := l.WriteCheckpoint(9, []byte("s9"))
	if err != nil {
		t.Fatal(err)
	}
	if !PosOf(a1).Less(PosOf(a2)) {
		t.Fatal("checkpoint positions not monotonic")
	}
	if got := l.CheckpointFloor(); got != PosOf(a1) {
		t.Fatalf("floor moved to %+v", got)
	}
}

func TestStatsCounters(t *testing.T) {
	c := newTestCluster(t, 2)
	l, _ := c.open(t, Config{})
	defer l.Close()
	mustAppend(t, l, 7, blockPattern(0, 100))
	if _, err := l.AppendRecord(7, []byte("r")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.WriteCheckpoint(7, nil); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.BlocksAppended != 1 || st.RecordsAppended != 1 || st.Checkpoints != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BlockBytes != 100 || st.FragmentsSealed == 0 || st.BytesStored == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNextPosAdvances(t *testing.T) {
	c := newTestCluster(t, 2)
	l, _ := c.open(t, Config{})
	defer l.Close()
	p0 := l.NextPos()
	mustAppend(t, l, 7, blockPattern(0, 100))
	p1 := l.NextPos()
	if !p0.Less(p1) {
		t.Fatalf("NextPos did not advance: %+v -> %+v", p0, p1)
	}
}

func TestManyStripesStress(t *testing.T) {
	c := newTestCluster(t, 5)
	l, _ := c.open(t, Config{})
	defer l.Close()
	type kv struct {
		addr BlockAddr
		sum  byte
	}
	var all []kv
	for i := 0; i < 400; i++ {
		data := blockPattern(i, 517)
		addr := mustAppend(t, l, 7, data)
		all = append(all, kv{addr, data[0]})
		if i%97 == 0 {
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, e := range all {
		got := mustRead(t, l, e.addr, 517)
		if got[0] != e.sum {
			t.Fatalf("block %d corrupted", i)
		}
	}
	// Verify every closed stripe's parity.
	for _, s := range l.usage.Stripes() {
		u, _ := l.usage.Get(s)
		if !u.Closed {
			continue
		}
		if err := l.VerifyStripe(s); err != nil {
			t.Fatalf("stripe %d: %v", s, err)
		}
	}
}

func TestShortStripePaddingOnSync(t *testing.T) {
	c := newTestCluster(t, 4)
	l, _ := c.open(t, Config{})
	defer l.Close()
	// One small block, then Sync: the stripe must be padded and closed
	// so the block is parity-protected immediately.
	addr := mustAppend(t, l, 7, blockPattern(0, 100))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	stripe := l.stripeOf(addr.FID.Seq())
	u, ok := l.usage.Get(stripe)
	if !ok || !u.Closed {
		t.Fatalf("stripe not closed after sync: %+v", u)
	}
	if err := l.VerifyStripe(stripe); err != nil {
		t.Fatal(err)
	}
	// Kill the server holding the block; it must still be readable.
	sid := l.locations[addr.FID]
	c.flaky[sid-1].SetDown(true)
	if got := mustRead(t, l, addr, 100); !bytes.Equal(got, blockPattern(0, 100)) {
		t.Fatal("reconstructed read mismatch")
	}
}

func TestHintRoundTripThroughCreateRecord(t *testing.T) {
	c := newTestCluster(t, 2)
	l, _ := c.open(t, Config{})
	defer l.Close()
	hint := []byte("inode=9,blk=3")
	addr, err := l.AppendBlock(7, blockPattern(0, 64), hint)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Scan the fragment and find the create record for this block.
	_, payload, err := l.FetchFragment(addr.FID)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	if err := IterEntries(payload, func(e Entry) bool {
		if e.Kind == EntryCreate {
			cr, derr := DecodeCreateRecord(e.Payload)
			if derr == nil && cr.Addr == addr {
				found = bytes.Equal(cr.Hint, hint)
				return false
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("create record with hint not found")
	}
}

func TestFragCacheEviction(t *testing.T) {
	fc := newFragCache(2)
	for i := 0; i < 5; i++ {
		fc.put(wire.MakeFID(1, uint64(i)), cachedFrag{payload: []byte{byte(i)}})
	}
	count := 0
	for i := 0; i < 5; i++ {
		if _, ok := fc.get(wire.MakeFID(1, uint64(i))); ok {
			count++
		}
	}
	if count > 2 {
		t.Fatalf("cache holds %d entries, cap 2", count)
	}
	fc.drop(wire.MakeFID(1, 4))
	if _, ok := fc.get(wire.MakeFID(1, 4)); ok {
		t.Fatal("dropped entry still cached")
	}
}

func TestWidthNarrowerThanServers(t *testing.T) {
	c := newTestCluster(t, 6)
	l, _ := c.open(t, Config{Width: 3})
	defer l.Close()
	for i := 0; i < 80; i++ {
		mustAppend(t, l, 7, blockPattern(i, 800))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Stripes rotate over all 6 servers even at width 3.
	used := map[wire.ServerID]bool{}
	for _, sid := range l.locations {
		used[sid] = true
	}
	if len(used) != 6 {
		t.Fatalf("only %d of 6 servers used", len(used))
	}
	for _, s := range l.usage.Stripes() {
		u, _ := l.usage.Get(s)
		if u.Closed {
			if err := l.VerifyStripe(s); err != nil {
				t.Fatalf("stripe %d: %v", s, err)
			}
		}
	}
}

func TestReadZeroBytes(t *testing.T) {
	c := newTestCluster(t, 2)
	l, _ := c.open(t, Config{})
	defer l.Close()
	addr := mustAppend(t, l, 7, blockPattern(0, 10))
	got, err := l.Read(addr, 0, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("zero read = (%v,%v)", got, err)
	}
}

func TestErrStringsAndFormat(t *testing.T) {
	addr := BlockAddr{FID: wire.MakeFID(2, 3), Off: 7}
	if addr.String() != "2/3+7" {
		t.Fatalf("addr string = %q", addr.String())
	}
	// Recovery.Service never returns nil, even for unknown services.
	rec := &Recovery{Services: map[ServiceID]*RecoveredService{}}
	if svc := rec.Service(5); svc == nil || svc.HasCheckpoint {
		t.Fatal("Service(unknown) misbehaved")
	}
	if fmt.Sprintf("%v", addr) != "2/3+7" {
		t.Fatal("format")
	}
	var zero BlockAddr
	if !zero.IsZero() || addr.IsZero() {
		t.Fatal("IsZero")
	}
}

func TestReadaheadServesFragmentFromCache(t *testing.T) {
	c := newTestCluster(t, 2)
	l, _, err := Open(Config{
		Client:             testClient,
		Servers:            c.conns,
		FragmentSize:       testFragSize,
		ReadaheadFragments: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var addrs []BlockAddr
	for i := 0; i < 6; i++ {
		addr, err := l.AppendBlock(7, blockPattern(i, 500), nil)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// All six blocks live in one fragment. Reading them cold should hit
	// the servers only for the first (header + payload), then serve the
	// rest from the cached fragment.
	before := c.flaky[0].Calls() + c.flaky[1].Calls()
	for i, addr := range addrs {
		got, err := l.Read(addr, 0, 500)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blockPattern(i, 500)) {
			t.Fatalf("block %d mismatch", i)
		}
	}
	after := c.flaky[0].Calls() + c.flaky[1].Calls()
	if calls := after - before; calls > 3 {
		t.Fatalf("readahead made %d server calls for 6 blocks in one fragment, want ≤ 3", calls)
	}
}

func TestReadaheadDisabledReadsPerBlock(t *testing.T) {
	c := newTestCluster(t, 2)
	l, _ := c.open(t, Config{})
	defer l.Close()
	var addrs []BlockAddr
	for i := 0; i < 6; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 500)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	before := c.flaky[0].Calls() + c.flaky[1].Calls()
	for _, addr := range addrs {
		if _, err := l.Read(addr, 0, 500); err != nil {
			t.Fatal(err)
		}
	}
	after := c.flaky[0].Calls() + c.flaky[1].Calls()
	if calls := after - before; calls < 6 {
		t.Fatalf("without readahead expected ≥ 6 server calls, got %d", calls)
	}
}

func TestPreallocStripesGuaranteesCompletion(t *testing.T) {
	// Client A (with preallocation) opens a stripe; client B then fills
	// every remaining slot. A's stripe must still complete, parity and
	// all, because its slots were reserved when the stripe opened.
	c := newTestCluster(t, 2)
	a, _, err := Open(Config{
		Client:          1,
		Servers:         c.conns,
		FragmentSize:    testFragSize,
		PreallocStripes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Open the stripe: enough data to seal the first fragment.
	var addrs []BlockAddr
	for i := 0; i < 8; i++ {
		addr, err := a.AppendBlock(7, blockPattern(i, 600), nil)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	// Wait for the first fragment (and its preallocations) to land.
	a.waitInflight()

	// Client B floods both servers directly until full.
	for s, st := range c.stores {
		for i := uint64(0); ; i++ {
			if err := st.Store(wire.MakeFID(2, uint64(s)<<20|i), []byte("fill"), false, nil); err != nil {
				break
			}
		}
	}
	// A's stripe still completes.
	if err := a.Sync(); err != nil {
		t.Fatalf("sync with full servers: %v", err)
	}
	for i, addr := range addrs {
		got, err := a.Read(addr, 0, 600)
		if err != nil || !bytes.Equal(got, blockPattern(i, 600)) {
			t.Fatalf("block %d after flood: %v", i, err)
		}
	}
	// The stripe is parity-complete.
	if err := a.VerifyStripe(a.stripeOf(addrs[0].FID.Seq())); err != nil {
		t.Fatal(err)
	}
}

func TestWithoutPreallocFloodCausesFailure(t *testing.T) {
	// The contrast case: without preallocation, the same flood makes the
	// stripe unable to complete.
	c := newTestCluster(t, 2)
	a, _ := c.open(t, Config{})
	defer a.Close()
	for i := 0; i < 8; i++ {
		if _, err := a.AppendBlock(7, blockPattern(i, 600), nil); err != nil {
			t.Fatal(err)
		}
	}
	a.waitInflight()
	for s, st := range c.stores {
		for i := uint64(0); ; i++ {
			if err := st.Store(wire.MakeFID(2, uint64(s)<<20|i), []byte("fill"), false, nil); err != nil {
				break
			}
		}
	}
	if err := a.Sync(); err == nil {
		t.Fatal("sync succeeded with full servers and no preallocation")
	}
}

func TestCorruptFragmentHealsFromParity(t *testing.T) {
	// Bit rot on a server: the payload checksum catches it on fetch and
	// the fragment is transparently rebuilt from the stripe's parity.
	c := newTestCluster(t, 3)
	l, _ := c.open(t, Config{})
	defer l.Close()
	var addrs []BlockAddr
	for i := 0; i < 20; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 700)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Corrupt one data fragment on its server: re-store a bit-flipped
	// copy (delete + store of the same FID).
	victim := addrs[0].FID
	sid := l.locations[victim]
	conn := c.conns[sid-1]
	size, ok, err := conn.Has(victim)
	if err != nil || !ok {
		t.Fatalf("victim missing: %v", err)
	}
	raw, err := conn.Read(victim, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	raw[HeaderSize+int(addrs[0].Off)+EntryHdrSize+3] ^= 0xFF // flip a payload bit
	if err := conn.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if err := conn.Store(victim, raw, false, nil); err != nil {
		t.Fatal(err)
	}

	// A whole-fragment fetch detects the corruption and heals via the
	// stripe: the returned contents are the ORIGINAL bytes.
	h, payload, err := l.FetchFragment(victim)
	if err != nil {
		t.Fatalf("fetch corrupted fragment: %v", err)
	}
	if h.FID != victim {
		t.Fatalf("header = %+v", h)
	}
	got, err := sliceBlock(payload, addrs[0], 0, 700)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blockPattern(0, 700)) {
		t.Fatal("healed fragment does not match original data")
	}
	if l.Stats().Reconstructions == 0 {
		t.Fatal("corruption did not trigger reconstruction")
	}
}

func TestOpenRejectsFragmentSizeMismatch(t *testing.T) {
	c := newTestCluster(t, 2) // servers formatted with testFragSize
	if _, _, err := Open(Config{
		Client:       testClient,
		Servers:      c.conns,
		FragmentSize: testFragSize * 2,
	}); !errors.Is(err, ErrConfig) {
		t.Fatalf("mismatched fragment size: %v", err)
	}
}

func TestFailedStoreKeepsLocalReads(t *testing.T) {
	// One server dies mid-write: with parity on, the write path degrades
	// instead of failing — Sync succeeds because every stripe is still
	// parity-covered with one member missing — and every block stays
	// readable, locally from the retained in-flight copies and remotely
	// via reconstruction.
	c := newTestCluster(t, 4)
	l, _ := c.open(t, Config{})
	defer l.Close()

	c.flaky[2].SetDown(true)
	var addrs []BlockAddr
	for i := 0; i < 40; i++ {
		addrs = append(addrs, mustAppend(t, l, 7, blockPattern(i, 600)))
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync did not degrade around the dead server: %v", err)
	}
	stats := l.Stats()
	if stats.DegradedWrites == 0 || stats.DegradedStripes == 0 {
		t.Fatalf("no degraded writes recorded: %+v", stats)
	}
	if len(l.DegradedFIDs()) == 0 {
		t.Fatal("no degraded FIDs recorded")
	}
	for i, addr := range addrs {
		got, err := l.Read(addr, 0, 600)
		if err != nil {
			t.Fatalf("read %d after failed store: %v", i, err)
		}
		if !bytes.Equal(got, blockPattern(i, 600)) {
			t.Fatalf("read %d mismatch", i)
		}
	}
	// After the server returns, rebuilding restores full durability and
	// clears the degraded set.
	c.flaky[2].SetDown(false)
	rebuilt, err := l.RebuildServer(3)
	if err != nil {
		t.Fatalf("rebuild after outage: %v", err)
	}
	if rebuilt == 0 {
		t.Fatal("rebuild restored nothing")
	}
	if left := l.DegradedFIDs(); len(left) != 0 {
		t.Fatalf("degraded FIDs remain after rebuild: %v", left)
	}
	// Every stripe verifies clean against the servers afterwards.
	for _, s := range l.Usage().Stripes() {
		if u, _ := l.Usage().Get(s); !u.Closed {
			continue
		}
		if err := l.VerifyStripe(s); err != nil {
			t.Fatalf("stripe %d after rebuild: %v", s, err)
		}
	}
}
