package mab

import (
	"errors"
	"testing"
	"time"

	"swarm/internal/disk"
	"swarm/internal/extfs"
	"swarm/internal/model"
	"swarm/internal/vfs"
)

func newFS(t *testing.T) vfs.FileSystem {
	t.Helper()
	fs, err := extfs.Mkfs(disk.NewMemDisk(64<<20), 1024)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestSetupBuildsDeterministicTree(t *testing.T) {
	cfg := Config{Seed: 42}
	fs := newFS(t)
	files, bytes1, err := Setup(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if files != 8*9 {
		t.Fatalf("files = %d, want 72", files)
	}
	if bytes1 <= 0 {
		t.Fatal("no bytes written")
	}
	// Same seed, same tree size.
	fs2 := newFS(t)
	files2, bytes2, err := Setup(fs2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if files2 != files || bytes2 != bytes1 {
		t.Fatalf("non-deterministic tree: (%d,%d) vs (%d,%d)", files, bytes1, files2, bytes2)
	}
	// The tree is visible.
	entries, err := fs.ReadDir("/src")
	if err != nil || len(entries) != 8 {
		t.Fatalf("src dirs = (%d,%v)", len(entries), err)
	}
}

func TestRunAllPhases(t *testing.T) {
	fs := newFS(t)
	cfg := Config{Seed: 1, CPU: model.NewCPU(nil, 0), CompileNsPerByte: 1}
	if _, _, err := Setup(fs, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Files != 72 {
		t.Fatalf("copied files = %d", res.Files)
	}
	if res.Total <= 0 {
		t.Fatal("no elapsed time")
	}
	var sum time.Duration
	for i, p := range res.Phases {
		if p < 0 {
			t.Fatalf("phase %s negative: %v", PhaseNames[i], p)
		}
		sum += p
	}
	if sum > res.Total+time.Millisecond {
		t.Fatalf("phases sum %v exceeds total %v", sum, res.Total)
	}
	// Unmount happened: the FS rejects further use.
	if err := fs.Sync(); !errors.Is(err, vfs.ErrClosed) && err != nil {
		t.Fatalf("fs after unmount: %v", err)
	}
}

func TestCompileCostChargesCPU(t *testing.T) {
	fs := newFS(t)
	cpu := model.NewCPU(nil, 0)
	cfg := Config{Seed: 1, CPU: cpu, CompileNsPerByte: 100}
	if _, _, err := Setup(fs, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUBusy <= 0 {
		t.Fatal("no CPU busy time")
	}
	if res.CPUUtilization() <= 0 || res.CPUUtilization() > 1 {
		t.Fatalf("utilization = %v", res.CPUUtilization())
	}
}

func TestResultUtilizationEdgeCases(t *testing.T) {
	var r Result
	if r.CPUUtilization() != 0 {
		t.Fatal("zero result utilization should be 0")
	}
	r = Result{Total: time.Second, CPUBusy: 2 * time.Second}
	if r.CPUUtilization() != 1 {
		t.Fatal("utilization should clamp to 1")
	}
}
