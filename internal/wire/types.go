// Package wire defines the binary protocol spoken between Swarm clients
// and storage servers, together with the identifier types shared across
// the system.
//
// The paper's prototype used ASCII TCL scripts as the server interface and
// observed the cost was inconsequential because every operation involves a
// disk access; this reproduction substitutes a typed binary protocol with
// CRC-protected frames (see DESIGN.md §3.6). The operation set is exactly
// the paper's (§2.2): store data in a fragment, retrieve data from a
// fragment, delete a fragment, preallocate space for a fragment, and query
// the FID of the last marked fragment — plus the ACL management operations
// of §2.3.2 and the fragment-discovery queries that make client-driven
// reconstruction self-hosting.
package wire

import "fmt"

// FID is a fragment identifier: a 64-bit integer naming one log fragment.
// The high bits carry the owning client's ID so that clients allocate FIDs
// without coordination; the low bits are a per-client sequence number.
// Fragments of the same stripe have consecutive sequence numbers.
type FID uint64

// fidClientShift positions the client ID within a FID, leaving 2^40
// fragments (a petabyte of log at 1 MB fragments) per client.
const fidClientShift = 40

// MakeFID composes a FID from a client ID and a sequence number.
func MakeFID(client ClientID, seq uint64) FID {
	return FID(uint64(client)<<fidClientShift | seq&(1<<fidClientShift-1))
}

// Client extracts the owning client's ID.
func (f FID) Client() ClientID { return ClientID(uint64(f) >> fidClientShift) }

// Seq extracts the per-client sequence number.
func (f FID) Seq() uint64 { return uint64(f) & (1<<fidClientShift - 1) }

// String renders a FID as client/sequence.
func (f FID) String() string { return fmt.Sprintf("%d/%d", f.Client(), f.Seq()) }

// ClientID identifies one Swarm client (one log owner).
type ClientID uint32

// ServerID identifies one storage server within a cluster configuration.
type ServerID uint32

// AID identifies an access control list on one storage server.
type AID uint32

// Status is the result code carried in every response.
type Status uint8

// Response status codes.
const (
	StatusOK Status = iota + 1
	StatusNotFound
	StatusNoSpace
	StatusAccess
	StatusExists
	StatusBadRequest
	StatusInternal
	// StatusBusy means the server's admission controller shed the
	// request — the tenant is over quota or its queue bound — and the
	// client should back off and retry. Unlike every other status it is
	// not an authoritative answer about the operation itself: nothing
	// was attempted against the store.
	StatusBusy

	// statusCount is one past the last defined status. It is the pin the
	// AllStatuses test uses to keep the table and this const block from
	// drifting: a new status added above grows statusCount, and the test
	// fails until AllStatuses lists it. Unexported — it is a sentinel,
	// not a wire value, and never crosses the network.
	statusCount
)

// AllStatuses enumerates every defined status code. Tables keyed by
// status (the resilient transport's retry classification) are tested
// against this list so a new status cannot be added without deciding,
// explicitly, how every layer treats it.
func AllStatuses() []Status {
	return []Status{
		StatusOK,
		StatusNotFound,
		StatusNoSpace,
		StatusAccess,
		StatusExists,
		StatusBadRequest,
		StatusInternal,
		StatusBusy,
	}
}

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not found"
	case StatusNoSpace:
		return "no space"
	case StatusAccess:
		return "access denied"
	case StatusExists:
		return "already exists"
	case StatusBadRequest:
		return "bad request"
	case StatusInternal:
		return "internal error"
	case StatusBusy:
		return "busy"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Op identifies a request type.
type Op uint8

// Protocol operations.
const (
	OpPing Op = iota + 1
	OpStore
	OpRead
	OpDelete
	OpPrealloc
	OpLastMarked
	OpHasFragment
	OpListFIDs
	OpACLCreate
	OpACLModify
	OpACLDelete
	OpStat
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpStore:
		return "store"
	case OpRead:
		return "read"
	case OpDelete:
		return "delete"
	case OpPrealloc:
		return "prealloc"
	case OpLastMarked:
		return "last-marked"
	case OpHasFragment:
		return "has-fragment"
	case OpListFIDs:
		return "list-fids"
	case OpACLCreate:
		return "acl-create"
	case OpACLModify:
		return "acl-modify"
	case OpACLDelete:
		return "acl-delete"
	case OpStat:
		return "stat"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ACLRange assigns an AID to a non-overlapping byte range of a fragment at
// store time, per §2.3.2: "When a fragment is stored each non-overlapping
// byte range can be assigned an AID."
type ACLRange struct {
	Off uint32
	Len uint32
	AID AID
}

// End returns the exclusive end offset of the range.
func (r ACLRange) End() uint32 { return r.Off + r.Len }
