// Package extfs implements an ext2-like local file system: superblock,
// inode and block bitmaps, a fixed inode table, and update-in-place data
// blocks with direct, indirect, and double-indirect pointers. It is the
// baseline comparator for the Modified Andrew Benchmark (Figure 5 of the
// paper compares Sting against Linux ext2fs on a local disk).
//
// The structural contrast with Sting is the point: extfs updates blocks
// in place, so metadata-heavy workloads scatter small writes across the
// disk and pay a seek per write, while Sting batches everything into
// sequential 1 MB log fragments.
package extfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"swarm/internal/disk"
)

// Layout errors.
var (
	// ErrCorrupt is returned when on-disk structures fail validation.
	ErrCorrupt = errors.New("extfs: corrupt file system")
	// ErrTooSmall is returned when the disk cannot hold a file system.
	ErrTooSmall = errors.New("extfs: disk too small")
)

const (
	superMagic = 0x45585446 // "EXTF"
	inodeSize  = 128
	rootIno    = 1
	// NDirect is the number of direct block pointers per inode.
	NDirect = 12
)

// geometry describes the on-disk layout, derived from the superblock.
type geometry struct {
	blockSize   int
	totalBlocks uint32
	nInodes     uint32
	ibmStart    uint32 // inode bitmap first block
	ibmBlocks   uint32
	dbmStart    uint32 // data/block bitmap first block
	dbmBlocks   uint32
	tableStart  uint32 // inode table first block
	tableBlocks uint32
	dataStart   uint32 // first allocatable data block
}

func computeGeometry(diskSize int64, blockSize int) (geometry, error) {
	g := geometry{blockSize: blockSize}
	total := uint32(diskSize / int64(blockSize))
	if total < 16 {
		return g, fmt.Errorf("%w: %d blocks", ErrTooSmall, total)
	}
	g.totalBlocks = total
	// One inode per four data blocks, at least 64.
	g.nInodes = total / 4
	if g.nInodes < 64 {
		g.nInodes = 64
	}
	bitsPerBlock := uint32(blockSize * 8)
	g.ibmStart = 1
	g.ibmBlocks = (g.nInodes + bitsPerBlock - 1) / bitsPerBlock
	g.dbmStart = g.ibmStart + g.ibmBlocks
	g.dbmBlocks = (total + bitsPerBlock - 1) / bitsPerBlock
	g.tableStart = g.dbmStart + g.dbmBlocks
	inodesPerBlock := uint32(blockSize / inodeSize)
	g.tableBlocks = (g.nInodes + inodesPerBlock - 1) / inodesPerBlock
	g.dataStart = g.tableStart + g.tableBlocks
	if g.dataStart+8 >= total {
		return g, fmt.Errorf("%w: metadata consumes the disk", ErrTooSmall)
	}
	return g, nil
}

func (g *geometry) encodeSuper() []byte {
	buf := make([]byte, g.blockSize)
	binary.LittleEndian.PutUint32(buf[0:], superMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(g.blockSize))
	binary.LittleEndian.PutUint32(buf[8:], g.totalBlocks)
	binary.LittleEndian.PutUint32(buf[12:], g.nInodes)
	binary.LittleEndian.PutUint32(buf[16:], crc32.ChecksumIEEE(buf[:16]))
	return buf
}

func decodeSuper(buf []byte, diskSize int64) (geometry, error) {
	if len(buf) < 20 {
		return geometry{}, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(buf[0:]) != superMagic {
		return geometry{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(buf[:16]) != binary.LittleEndian.Uint32(buf[16:]) {
		return geometry{}, fmt.Errorf("%w: superblock checksum", ErrCorrupt)
	}
	blockSize := int(binary.LittleEndian.Uint32(buf[4:]))
	g, err := computeGeometry(diskSize, blockSize)
	if err != nil {
		return g, err
	}
	if g.totalBlocks != binary.LittleEndian.Uint32(buf[8:]) || g.nInodes != binary.LittleEndian.Uint32(buf[12:]) {
		return g, fmt.Errorf("%w: geometry mismatch", ErrCorrupt)
	}
	return g, nil
}

// Mkfs formats d as an empty extfs with the given block size and returns
// a mounted file system.
func Mkfs(d disk.Disk, blockSize int) (*FS, error) {
	if blockSize < 512 || blockSize&(blockSize-1) != 0 {
		return nil, fmt.Errorf("extfs: block size %d must be a power of two ≥ 512", blockSize)
	}
	g, err := computeGeometry(d.Size(), blockSize)
	if err != nil {
		return nil, err
	}
	if err := d.WriteAt(g.encodeSuper(), 0); err != nil {
		return nil, fmt.Errorf("write superblock: %w", err)
	}
	zero := make([]byte, blockSize)
	for b := g.ibmStart; b < g.dataStart; b++ {
		if err := d.WriteAt(zero, int64(b)*int64(blockSize)); err != nil {
			return nil, fmt.Errorf("zero metadata block %d: %w", b, err)
		}
	}
	if err := d.Sync(); err != nil {
		return nil, err
	}
	fs, err := Mount(d)
	if err != nil {
		return nil, err
	}
	// Reserve inode 0 (invalid) and create the root directory.
	if _, err := fs.ibm.alloc(0); err != nil { // ino 0 sentinel
		return nil, err
	}
	ino, err := fs.ibm.alloc(0)
	if err != nil {
		return nil, err
	}
	if ino != rootIno {
		return nil, fmt.Errorf("extfs: root allocated ino %d", ino)
	}
	root := newInode(modeDir)
	root.nlink = 2
	if err := fs.writeInode(rootIno, root); err != nil {
		return nil, err
	}
	if err := fs.Sync(); err != nil {
		return nil, err
	}
	return fs, nil
}
