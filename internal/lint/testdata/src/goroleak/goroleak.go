// Package goroleak is a swarmlint test fixture: each function
// exercises one goroleak-analyzer behavior, with expected diagnostics
// declared in want comments.
package goroleak

import "sync"

type worker struct {
	wg   sync.WaitGroup
	stop chan struct{}
}

// A WaitGroup ties the goroutine: the owner waits for it.
func (w *worker) spawnWaitGroup() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
	}()
}

// No tie at all: flagged.
func (w *worker) spawnUntied() {
	go func() { // want "not visibly tied"
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// Parking on an owner-controlled channel ties it: close(stop) ends it.
func (w *worker) spawnReceiver() {
	go func() {
		<-w.stop
	}()
}

func (w *worker) spawnRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

func (w *worker) spawnSelect() {
	go func() {
		select {
		case <-w.stop:
		}
	}()
}

// Closing a lifecycle channel is itself a tie: completion is signalled.
func spawnCloser() chan struct{} {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	return done
}

// A send on a spawner-local channel is result delivery to a waiting
// owner: the goroutine's lifetime is the request's.
func localResult() int {
	ch := make(chan int, 1)
	go func() {
		ch <- 42
	}()
	return <-ch
}

// A send on a long-lived shared channel proves nothing about lifetime.
var global chan int

func spawnGlobalSend() {
	go func() { // want "not visibly tied"
		global <- 1
	}()
}

func (w *worker) loop() {
	<-w.stop
}

// Named callees resolve to their in-package declaration: loop parks on
// the stop channel, so the spawn is tied.
func (w *worker) spawnNamed() {
	go w.loop()
}

func (w *worker) opaque() {
	for i := 0; ; i++ {
		_ = i
	}
}

func (w *worker) spawnOpaque() {
	go w.opaque() // want "not visibly tied"
}

func (w *worker) spawnAnnotated() {
	// swarmlint:goroleak-ok — sampler with no shutdown requirement
	go w.opaque()
}
