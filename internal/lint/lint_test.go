package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The loader shells out to `go list -deps -export ./...` once; every
// test shares the result.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := ModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

// wantRe matches `// want "regex"` expectation comments in fixtures.
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// expectation is one `// want` comment: a diagnostic regex anchored to
// a fixture line.
type expectation struct {
	line int
	re   *regexp.Regexp
	hit  bool
}

// checkFixture loads testdata/src/<name>, runs the analyzer over it,
// and verifies the diagnostics exactly match the fixture's want
// comments.
func checkFixture(t *testing.T, name string, analyzer Analyzer) {
	t.Helper()
	l := testLoader(t)
	dir := filepath.Join("testdata", "src", name)
	pkg, err := l.CheckDir("fixture/"+name, dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regex %q: %v", m[1], err)
					}
					wants = append(wants, &expectation{
						line: pkg.Fset.Position(c.Pos()).Line,
						re:   re,
					})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no expectations", name)
	}

	diags := Run([]*Package{pkg}, []Analyzer{analyzer})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", name, w.line, w.re)
		}
	}
}

func TestBufPoolFixture(t *testing.T) {
	checkFixture(t, "bufpool", NewBufPool("swarm/internal/wire"))
}

func TestLockIOFixture(t *testing.T) {
	checkFixture(t, "lockio", NewLockIO("swarm/internal/disk", nil))
}

func TestGuardedByFixture(t *testing.T) {
	checkFixture(t, "guardedby", NewGuardedBy())
}

func TestErrClassFixture(t *testing.T) {
	checkFixture(t, "errclass", NewErrClass([]string{"fixture/errclass"}))
}

func TestPlacementFixture(t *testing.T) {
	checkFixture(t, "placement", NewPlacement([]string{"fixture/placement"}))
}

func TestRefCountFixture(t *testing.T) {
	checkFixture(t, "refcount", NewRefCount([]string{"fixture/refcount.Extent"}))
}

func TestStatusCaseFixture(t *testing.T) {
	checkFixture(t, "statuscase", NewStatusCase("fixture/statuscase.Status", []string{"fixture/statuscase"}))
}

func TestAtomicMixFixture(t *testing.T) {
	checkFixture(t, "atomicmix", NewAtomicMix())
}

func TestGoroLeakFixture(t *testing.T) {
	checkFixture(t, "goroleak", NewGoroLeak([]string{"fixture/goroleak"}))
}

// TestStatusCaseSkipsUnlistedPackages pins the boundary: a switch over
// the enum in a package outside the data path is not checked.
func TestStatusCaseSkipsUnlistedPackages(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.CheckDir("fixture/statuscase", filepath.Join("testdata", "src", "statuscase"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []Analyzer{NewStatusCase("fixture/statuscase.Status", []string{"swarm/internal/transport"})})
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics outside checked packages, got %d: %v", len(diags), diags)
	}
}

// TestGoroLeakSkipsUnlistedPackages pins the boundary: goroutines in
// packages outside the data path (benchmarks, CLIs) are not checked.
func TestGoroLeakSkipsUnlistedPackages(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.CheckDir("fixture/goroleak", filepath.Join("testdata", "src", "goroleak"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []Analyzer{NewGoroLeak([]string{"swarm/internal/server"})})
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics outside checked packages, got %d: %v", len(diags), diags)
	}
}

// TestPlacementSkipsUnlistedPackages pins the boundary: the same
// fixture body produces nothing when its package is not in the checked
// set (harness/CLI construction code stays free to index its own
// slices).
func TestPlacementSkipsUnlistedPackages(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.CheckDir("fixture/placement", filepath.Join("testdata", "src", "placement"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []Analyzer{NewPlacement([]string{"swarm/internal/core"})})
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics outside checked packages, got %d: %v", len(diags), diags)
	}
}

// TestErrClassSkipsUnlistedPackages pins the boundary: the same fixture
// body produces nothing when its package is not in the classified set.
func TestErrClassSkipsUnlistedPackages(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.CheckDir("fixture/errclass", filepath.Join("testdata", "src", "errclass"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []Analyzer{NewErrClass([]string{"swarm/internal/transport"})})
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics outside classified packages, got %d: %v", len(diags), diags)
	}
}

// TestRepoClean self-hosts: the full default suite must pass over the
// repository, matching the `make lint` CI gate.
func TestRepoClean(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.Load()
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	var report strings.Builder
	diags := Run(pkgs, Default())
	for _, d := range diags {
		fmt.Fprintf(&report, "  %s\n", d)
	}
	if len(diags) != 0 {
		t.Errorf("repository is not lint-clean (%d findings):\n%s", len(diags), report.String())
	}
}

// TestRunParallelMatchesRun pins the parallel runner: identical
// diagnostics in identical order to the serial runner, plus one timing
// per analyzer, sorted slowest first.
func TestRunParallelMatchesRun(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.Load()
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	serial := Run(pkgs, Default())
	par, timings := RunParallel(pkgs, Default())
	if len(serial) != len(par) {
		t.Fatalf("serial found %d diagnostics, parallel %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].String() != par[i].String() {
			t.Errorf("diagnostic %d differs:\n serial: %s\n parallel: %s", i, serial[i], par[i])
		}
	}
	if len(timings) != len(Default()) {
		t.Fatalf("got %d timings for %d analyzers", len(timings), len(Default()))
	}
	names := make(map[string]bool)
	for i, tm := range timings {
		names[tm.Analyzer] = true
		if i > 0 && tm.Elapsed > timings[i-1].Elapsed {
			t.Errorf("timings not sorted slowest-first at %d: %v", i, timings)
		}
	}
	for _, a := range Default() {
		if !names[a.Name()] {
			t.Errorf("no timing reported for analyzer %q", a.Name())
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "bufpool", Message: "leak"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line = 12
	if got, want := d.String(), "a/b.go:12: leak [bufpool]"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestByName(t *testing.T) {
	all := Default()
	got, err := ByName(all, []string{"lockio", "errclass"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name() != "lockio" || got[1].Name() != "errclass" {
		t.Fatalf("ByName selected %v", got)
	}
	if _, err := ByName(all, []string{"nosuch"}); err == nil {
		t.Fatal("expected error for unknown analyzer name")
	}
}
