package server

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"swarm/internal/disk"
	"swarm/internal/wire"
)

func newTestStore(t *testing.T, slots int) (*Store, *disk.MemDisk) {
	t.Helper()
	fragSize := 4096
	d := disk.NewMemDisk(int64(superblockSize + aclRegionSize + slots*(fragSize+entrySize) + fragSize))
	s, err := Format(d, Config{FragmentSize: fragSize})
	if err != nil {
		t.Fatal(err)
	}
	return s, d
}

func TestStoreReadRoundTrip(t *testing.T) {
	s, _ := newTestStore(t, 8)
	fid := wire.MakeFID(1, 0)
	data := bytes.Repeat([]byte{0xAA}, 1000)
	if err := s.Store(fid, data, false, nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(1, fid, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read data mismatch")
	}
	// Partial read.
	got, err = s.Read(1, fid, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[100:150]) {
		t.Fatal("partial read mismatch")
	}
}

func TestStoreDuplicateRejected(t *testing.T) {
	s, _ := newTestStore(t, 8)
	fid := wire.MakeFID(1, 0)
	if err := s.Store(fid, []byte("a"), false, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(fid, []byte("b"), false, nil); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate store: %v", err)
	}
}

func TestStoreTooLarge(t *testing.T) {
	s, _ := newTestStore(t, 8)
	if err := s.Store(wire.MakeFID(1, 0), make([]byte, 5000), false, nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized store: %v", err)
	}
}

func TestStoreNoSpace(t *testing.T) {
	s, _ := newTestStore(t, 2)
	total := s.Stats().TotalSlots
	for i := 0; i < total; i++ {
		if err := s.Store(wire.MakeFID(1, uint64(i)), []byte("x"), false, nil); err != nil {
			t.Fatalf("store %d of %d: %v", i, total, err)
		}
	}
	if err := s.Store(wire.MakeFID(1, 99), []byte("x"), false, nil); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("store into full server: %v", err)
	}
	// Deleting frees a slot.
	if err := s.Delete(1, wire.MakeFID(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(wire.MakeFID(1, 99), []byte("x"), false, nil); err != nil {
		t.Fatalf("store after delete: %v", err)
	}
}

func TestReadAbsentFragment(t *testing.T) {
	s, _ := newTestStore(t, 4)
	if _, err := s.Read(1, wire.MakeFID(1, 0), 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read absent: %v", err)
	}
}

func TestReadOutOfRange(t *testing.T) {
	s, _ := newTestStore(t, 4)
	fid := wire.MakeFID(1, 0)
	if err := s.Store(fid, make([]byte, 100), false, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(1, fid, 50, 51); !errors.Is(err, ErrBadRange) {
		t.Fatalf("read past end: %v", err)
	}
}

func TestDeleteAbsent(t *testing.T) {
	s, _ := newTestStore(t, 4)
	if err := s.Delete(1, wire.MakeFID(1, 0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete absent: %v", err)
	}
}

func TestPreallocThenStore(t *testing.T) {
	s, _ := newTestStore(t, 2)
	fid := wire.MakeFID(1, 0)
	if err := s.Prealloc(fid); err != nil {
		t.Fatal(err)
	}
	// Preallocated fragments are invisible to reads and Has.
	if _, found := s.Has(fid); found {
		t.Fatal("preallocated fragment visible")
	}
	if _, err := s.Read(1, fid, 0, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read preallocated: %v", err)
	}
	if err := s.Store(fid, []byte("data"), false, nil); err != nil {
		t.Fatalf("store into prealloc: %v", err)
	}
	if size, found := s.Has(fid); !found || size != 4 {
		t.Fatalf("Has = (%d,%v)", size, found)
	}
	// Double prealloc fails.
	if err := s.Prealloc(fid); !errors.Is(err, ErrExists) {
		t.Fatalf("double prealloc: %v", err)
	}
}

func TestPreallocReservesSpace(t *testing.T) {
	s, _ := newTestStore(t, 2)
	total := s.Stats().TotalSlots
	for i := 0; i < total; i++ {
		if err := s.Prealloc(wire.MakeFID(1, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Store(wire.MakeFID(2, 0), []byte("x"), false, nil); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("store into fully preallocated server: %v", err)
	}
	// But the preallocated FIDs can still be stored.
	if err := s.Store(wire.MakeFID(1, 0), []byte("x"), false, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLastMarked(t *testing.T) {
	s, _ := newTestStore(t, 8)
	if _, found := s.LastMarked(1); found {
		t.Fatal("LastMarked on empty store")
	}
	must := func(fid wire.FID, mark bool) {
		t.Helper()
		if err := s.Store(fid, []byte("x"), mark, nil); err != nil {
			t.Fatal(err)
		}
	}
	must(wire.MakeFID(1, 0), true)
	must(wire.MakeFID(1, 1), false)
	must(wire.MakeFID(1, 2), true)
	must(wire.MakeFID(1, 3), false)
	must(wire.MakeFID(2, 9), true) // other client
	fid, found := s.LastMarked(1)
	if !found || fid != wire.MakeFID(1, 2) {
		t.Fatalf("LastMarked = (%v,%v), want 1/2", fid, found)
	}
	fid, found = s.LastMarked(2)
	if !found || fid != wire.MakeFID(2, 9) {
		t.Fatalf("LastMarked(2) = (%v,%v)", fid, found)
	}
}

func TestListFIDs(t *testing.T) {
	s, _ := newTestStore(t, 8)
	fids := []wire.FID{wire.MakeFID(1, 2), wire.MakeFID(1, 0), wire.MakeFID(2, 1)}
	for _, f := range fids {
		if err := s.Store(f, []byte("x"), false, nil); err != nil {
			t.Fatal(err)
		}
	}
	got := s.List(1)
	if len(got) != 2 || got[0] != wire.MakeFID(1, 0) || got[1] != wire.MakeFID(1, 2) {
		t.Fatalf("List(1) = %v", got)
	}
	if all := s.List(0); len(all) != 3 {
		t.Fatalf("List(0) = %v", all)
	}
}

func TestStoreReopenRecoversState(t *testing.T) {
	s, d := newTestStore(t, 8)
	fidA := wire.MakeFID(1, 0)
	fidB := wire.MakeFID(1, 1)
	if err := s.Store(fidA, []byte("aaa"), true, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(fidB, []byte("bbb"), false, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(1, fidB); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	data, err := s2.Read(1, fidA, 0, 3)
	if err != nil || string(data) != "aaa" {
		t.Fatalf("reopened read = %q, %v", data, err)
	}
	if _, found := s2.Has(fidB); found {
		t.Fatal("deleted fragment resurrected")
	}
	if fid, found := s2.LastMarked(1); !found || fid != fidA {
		t.Fatalf("reopened LastMarked = (%v,%v)", fid, found)
	}
	if s2.Stats().Fragments != 1 {
		t.Fatalf("reopened fragments = %d", s2.Stats().Fragments)
	}
}

// TestStoreAtomicityUnderCrash simulates a crash between the data write
// and the slot-entry commit: the fragment must not exist after recovery.
func TestStoreAtomicityUnderCrash(t *testing.T) {
	s, d := newTestStore(t, 8)
	fid := wire.MakeFID(1, 0)
	// Snapshot before any store, then store and snapshot after the data
	// write but *before* the entry commit by replaying the write pattern:
	// easiest honest simulation is snapshot-before-commit via FailWrites
	// on the entry region. Instead we capture the pre-store snapshot,
	// store fully, then restore only the entry table from the pre-store
	// snapshot — exactly the disk state of a crash after the data sync.
	pre := d.Snapshot()
	if err := s.Store(fid, []byte("half-written"), false, nil); err != nil {
		t.Fatal(err)
	}
	post := d.Snapshot()
	crash := make([]byte, len(post))
	copy(crash, post)
	// Entry table occupies [entryTableOff, slotsOff): restore it to the
	// pre-store image, keeping the fragment data bytes in place.
	copy(crash[entryTableOff:s.slotsOff], pre[entryTableOff:s.slotsOff])
	d.Restore(crash)

	s2, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, found := s2.Has(fid); found {
		t.Fatal("fragment visible after simulated torn store")
	}
	if s2.Stats().FreeSlots != s2.Stats().TotalSlots {
		t.Fatalf("slot leaked: %+v", s2.Stats())
	}
}

// TestOpenToleratesTornEntry writes garbage into a slot entry and checks
// that Open treats it as free rather than failing.
func TestOpenToleratesTornEntry(t *testing.T) {
	s, d := newTestStore(t, 4)
	if err := s.Store(wire.MakeFID(1, 0), []byte("ok"), false, nil); err != nil {
		t.Fatal(err)
	}
	// Corrupt slot entry 1 with a valid magic but bad CRC.
	garbage := make([]byte, entrySize)
	copy(garbage, s.slots[0].encode()[:8])
	garbage[20] = 0xFF
	if err := d.WriteAt(garbage, entryTableOff+entrySize); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Stats().Fragments != 1 {
		t.Fatalf("fragments = %d, want 1", s2.Stats().Fragments)
	}
}

func TestFormatTooSmallDisk(t *testing.T) {
	d := disk.NewMemDisk(1024)
	if _, err := Format(d, Config{FragmentSize: 1 << 20}); err == nil {
		t.Fatal("format of tiny disk succeeded")
	}
}

func TestOpenRejectsUnformattedDisk(t *testing.T) {
	d := disk.NewMemDisk(1 << 20)
	if _, err := Open(d); !errors.Is(err, ErrCorruptMeta) {
		t.Fatalf("open unformatted: %v", err)
	}
}

func TestStoreWriteFailureLeavesSlotFree(t *testing.T) {
	s, d := newTestStore(t, 4)
	boom := errors.New("boom")
	d.FailWrites(boom)
	if err := s.Store(wire.MakeFID(1, 0), []byte("x"), false, nil); !errors.Is(err, boom) {
		t.Fatalf("store with failing disk: %v", err)
	}
	d.FailWrites(nil)
	st := s.Stats()
	if st.FreeSlots != st.TotalSlots {
		t.Fatalf("slot leaked after failed store: %+v", st)
	}
	if err := s.Store(wire.MakeFID(1, 0), []byte("x"), false, nil); err != nil {
		t.Fatalf("store after failure cleared: %v", err)
	}
}

func TestSlotEntryRoundTrip(t *testing.T) {
	ent := slotEntry{
		fid:   wire.MakeFID(5, 123),
		size:  4096,
		flags: flagUsed | flagMarked,
		ranges: []wire.ACLRange{
			{Off: 0, Len: 100, AID: 1},
			{Off: 100, Len: 200, AID: 2},
		},
	}
	got, err := decodeSlotEntry(ent.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.fid != ent.fid || got.size != ent.size || got.flags != ent.flags {
		t.Fatalf("roundtrip = %+v", got)
	}
	if len(got.ranges) != 2 || got.ranges[1] != ent.ranges[1] {
		t.Fatalf("ranges = %v", got.ranges)
	}
}

// Property: slot entries roundtrip for arbitrary field values.
func TestQuickSlotEntryRoundTrip(t *testing.T) {
	f := func(fid uint64, size uint32, marked bool, nRanges uint8) bool {
		flags := uint16(flagUsed)
		if marked {
			flags |= flagMarked
		}
		ent := slotEntry{fid: wire.FID(fid), size: size, flags: flags}
		for i := uint8(0); i < nRanges%maxACLRanges; i++ {
			ent.ranges = append(ent.ranges, wire.ACLRange{Off: uint32(i), Len: uint32(i) * 2, AID: wire.AID(i)})
		}
		got, err := decodeSlotEntry(ent.encode())
		if err != nil {
			return false
		}
		if got.fid != ent.fid || got.size != ent.size || got.flags != ent.flags || len(got.ranges) != len(ent.ranges) {
			return false
		}
		for i := range got.ranges {
			if got.ranges[i] != ent.ranges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Regression for the read-after-free race: Store.Read used to drop the
// lock before the disk read, so a concurrent Delete + Store could
// recycle the slot and hand the reader another fragment's bytes. The
// hook provokes exactly that interleaving; the generation check must
// detect it and report the FID gone rather than return foreign data.
func TestReadAfterFreeSlotReuse(t *testing.T) {
	fragSize := 4096
	slots := 1
	d := disk.NewMemDisk(int64(superblockSize + aclRegionSize + slots*(fragSize+entrySize) + fragSize))
	hd := &hookDisk{Disk: d}
	s, err := Format(hd, Config{FragmentSize: fragSize})
	if err != nil {
		t.Fatal(err)
	}
	fidA := wire.MakeFID(1, 1)
	fidB := wire.MakeFID(1, 2)
	dataA := bytes.Repeat([]byte{'A'}, fragSize)
	dataB := bytes.Repeat([]byte{'B'}, fragSize)
	if err := s.Store(fidA, dataA, false, nil); err != nil {
		t.Fatal(err)
	}

	// Between Read's slot lookup and its disk read: delete A and store B
	// into the (single) recycled slot.
	var once sync.Once
	hook := func(p []byte, off int64) {
		if off < s.slotsOff {
			return // metadata read, not fragment data
		}
		once.Do(func() {
			if err := s.Delete(1, fidA); err != nil {
				t.Errorf("racing delete: %v", err)
			}
			if err := s.Store(fidB, dataB, false, nil); err != nil {
				t.Errorf("racing store: %v", err)
			}
		})
	}
	hd.onRead.Store(&hook)

	got, err := s.Read(1, fidA, 0, uint32(fragSize))
	if err == nil {
		if bytes.Equal(got, dataB) {
			t.Fatal("read-after-free: fragment A read returned fragment B's bytes")
		}
		t.Fatalf("read of deleted fragment succeeded with unexpected data %x..", got[0])
	}
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("read across slot reuse = %v, want ErrNotFound", err)
	}
	// B must be readable and intact.
	hd.onRead.Store(nil)
	got, err = s.Read(1, fidB, 0, uint32(fragSize))
	if err != nil || !bytes.Equal(got, dataB) {
		t.Fatalf("fragment B after reuse: %v", err)
	}
}

// Stress variant for the race detector: one slot, a writer cycling
// store→delete, and readers that must only ever observe a fragment's own
// bytes or ErrNotFound.
func TestReadDeleteStoreRaceStress(t *testing.T) {
	fragSize := 512
	slots := 1
	d := disk.NewMemDisk(int64(superblockSize + aclRegionSize + slots*(fragSize+entrySize) + fragSize))
	s, err := Format(d, Config{FragmentSize: fragSize})
	if err != nil {
		t.Fatal(err)
	}
	pattern := func(seq uint64) []byte {
		return bytes.Repeat([]byte{byte(seq*37 + 11)}, fragSize)
	}
	var cur atomic.Uint64 // latest stored seq, 0 = none yet
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: store seq, publish, delete, next
		defer wg.Done()
		for seq := uint64(1); ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			fid := wire.MakeFID(1, seq)
			if err := s.Store(fid, pattern(seq), false, nil); err != nil {
				t.Errorf("store %d: %v", seq, err)
				return
			}
			cur.Store(seq)
			if err := s.Delete(1, fid); err != nil {
				t.Errorf("delete %d: %v", seq, err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				seq := cur.Load()
				if seq == 0 {
					continue
				}
				got, err := s.Read(1, wire.MakeFID(1, seq), 0, uint32(fragSize))
				if err != nil {
					if !errors.Is(err, ErrNotFound) {
						t.Errorf("read %d: %v", seq, err)
						return
					}
					continue
				}
				if !bytes.Equal(got, pattern(seq)) {
					t.Errorf("read %d returned foreign bytes %x..", seq, got[0])
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
