package vfstest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"swarm/internal/vfs"
)

// Conformance runs the shared file-system contract suite against
// whatever factory builds. Both Sting and extfs must pass it; keeping it
// here guarantees the Modified Andrew Benchmark measures two systems with
// identical semantics.
func Conformance(t *testing.T, factory func(t *testing.T) vfs.FileSystem) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(t *testing.T, fs vfs.FileSystem)
	}{
		{"CreateWriteRead", ctCreateWriteRead},
		{"CreateTruncatesExisting", ctCreateTruncates},
		{"OpenMissing", ctOpenMissing},
		{"WriteExtendsAndOverwrites", ctWriteExtends},
		{"SparseWrite", ctSparseWrite},
		{"Truncate", ctTruncate},
		{"MkdirReadDir", ctMkdirReadDir},
		{"MkdirErrors", ctMkdirErrors},
		{"RmdirSemantics", ctRmdir},
		{"UnlinkSemantics", ctUnlink},
		{"RenameFile", ctRenameFile},
		{"RenameDir", ctRenameDir},
		{"RenameErrors", ctRenameErrors},
		{"StatRootAndNested", ctStat},
		{"DeepPaths", ctDeepPaths},
		{"ManyFilesInDir", ctManyFiles},
		{"LargeFileIO", ctLargeFile},
		{"RandomFileIO", ctRandomIO},
		{"PathValidation", ctPathValidation},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fs := factory(t)
			defer fs.Unmount()
			tt.fn(t, fs)
		})
	}
}

func ctCreateWriteRead(t *testing.T, fs vfs.FileSystem) {
	f, err := fs.Create("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("read %q", got)
	}
	info, err := fs.Stat("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 11 || info.Mode != vfs.ModeFile || info.Name != "hello.txt" {
		t.Fatalf("info = %+v", info)
	}
}

func ctCreateTruncates(t *testing.T, fs vfs.FileSystem) {
	if err := vfs.WriteFile(fs, "/f", []byte("long content here")); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil || size != 0 {
		t.Fatalf("size after re-create = (%d,%v)", size, err)
	}
}

func ctOpenMissing(t *testing.T, fs vfs.FileSystem) {
	if _, err := fs.Open("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	if _, err := fs.Open("/a/b/c"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("open missing nested: %v", err)
	}
	if _, err := fs.Stat("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("stat missing: %v", err)
	}
}

func ctWriteExtends(t *testing.T, fs vfs.FileSystem) {
	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("aaaa"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("bb"), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("cc"), 6); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := f.ReadAt(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("aabb\x00\x00cc")
	if !bytes.Equal(buf[:n], want) {
		t.Fatalf("read %q, want %q", buf[:n], want)
	}
}

func ctSparseWrite(t *testing.T, fs vfs.FileSystem) {
	f, err := fs.Create("/sparse")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("end"), 20000); err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	if size != 20003 {
		t.Fatalf("size = %d", size)
	}
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 10)) {
		t.Fatal("hole not zero-filled")
	}
}

func ctTruncate(t *testing.T, fs vfs.FileSystem) {
	f, err := fs.Create("/t")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := bytes.Repeat([]byte("x"), 10000)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	if size != 5 {
		t.Fatalf("size after shrink = %d", size)
	}
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	n, err := f.ReadAt(buf, 0)
	if err != nil || n != 100 {
		t.Fatalf("read = (%d,%v)", n, err)
	}
	if !bytes.Equal(buf[:5], []byte("xxxxx")) || !bytes.Equal(buf[5:], make([]byte, 95)) {
		t.Fatal("truncate-extend contents wrong")
	}
}

func ctMkdirReadDir(t *testing.T, fs vfs.FileSystem) {
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/d/file", []byte("x")); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "file" || entries[1].Name != "sub" {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Mode != vfs.ModeFile || entries[1].Mode != vfs.ModeDir {
		t.Fatalf("modes = %+v", entries)
	}
	root, err := fs.ReadDir("/")
	if err != nil || len(root) != 1 || root[0].Name != "d" {
		t.Fatalf("root = (%+v,%v)", root, err)
	}
}

func ctMkdirErrors(t *testing.T, fs vfs.FileSystem) {
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("duplicate mkdir: %v", err)
	}
	if err := fs.Mkdir("/missing/sub"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("mkdir under missing: %v", err)
	}
	if err := vfs.WriteFile(fs, "/f", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/f/sub"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("mkdir under file: %v", err)
	}
	if _, err := fs.Create("/d"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("create over dir: %v", err)
	}
}

func ctRmdir(t *testing.T, fs vfs.FileSystem) {
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/d/f", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/d"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := fs.Unlink("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/d"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("stat removed dir: %v", err)
	}
	if err := fs.Rmdir("/d"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("rmdir missing: %v", err)
	}
	if err := vfs.WriteFile(fs, "/f", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/f"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("rmdir file: %v", err)
	}
}

func ctUnlink(t *testing.T, fs vfs.FileSystem) {
	if err := vfs.WriteFile(fs, "/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("stat unlinked: %v", err)
	}
	if err := fs.Unlink("/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("double unlink: %v", err)
	}
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/d"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("unlink dir: %v", err)
	}
}

func ctRenameFile(t *testing.T, fs vfs.FileSystem) {
	if err := vfs.WriteFile(fs, "/a", []byte("content")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/a", "/d/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/a"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("source survives rename")
	}
	got, err := vfs.ReadFile(fs, "/d/b")
	if err != nil || string(got) != "content" {
		t.Fatalf("renamed contents = (%q,%v)", got, err)
	}
	// Rename over an existing file replaces it.
	if err := vfs.WriteFile(fs, "/c", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/c", "/d/b"); err != nil {
		t.Fatal(err)
	}
	got, _ = vfs.ReadFile(fs, "/d/b")
	if string(got) != "new" {
		t.Fatalf("replace rename = %q", got)
	}
}

func ctRenameDir(t *testing.T, fs vfs.FileSystem) {
	if err := vfs.MkdirAll(fs, "/x/y"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/x/y/f", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/x", "/z"); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/z/y/f")
	if err != nil || string(got) != "deep" {
		t.Fatalf("after dir rename = (%q,%v)", got, err)
	}
}

func ctRenameErrors(t *testing.T, fs vfs.FileSystem) {
	if err := fs.Rename("/missing", "/x"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("rename missing: %v", err)
	}
	if err := fs.Mkdir("/d1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d2"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/d1", "/d2"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("rename dir over dir: %v", err)
	}
}

func ctStat(t *testing.T, fs vfs.FileSystem) {
	info, err := fs.Stat("/")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Mode.IsDir() {
		t.Fatal("root is not a directory")
	}
	if err := vfs.MkdirAll(fs, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/a/b/c", bytes.Repeat([]byte("z"), 1234)); err != nil {
		t.Fatal(err)
	}
	info, err = fs.Stat("/a/b/c")
	if err != nil || info.Size != 1234 {
		t.Fatalf("nested stat = (%+v,%v)", info, err)
	}
}

func ctDeepPaths(t *testing.T, fs vfs.FileSystem) {
	path := ""
	for i := 0; i < 8; i++ {
		path += fmt.Sprintf("/dir%d", i)
		if err := fs.Mkdir(path); err != nil {
			t.Fatal(err)
		}
	}
	if err := vfs.WriteFile(fs, path+"/leaf", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, path+"/leaf")
	if err != nil || string(got) != "deep" {
		t.Fatalf("deep read = (%q,%v)", got, err)
	}
}

func ctManyFiles(t *testing.T, fs vfs.FileSystem) {
	if err := fs.Mkdir("/many"); err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("/many/f%03d", i)
		if err := vfs.WriteFile(fs, name, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := fs.ReadDir("/many")
	if err != nil || len(entries) != n {
		t.Fatalf("readdir = (%d,%v)", len(entries), err)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Name >= entries[i].Name {
			t.Fatal("entries not sorted")
		}
	}
}

func ctLargeFile(t *testing.T, fs vfs.FileSystem) {
	f, err := fs.Create("/big")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// ~200 KB spanning many blocks, written in odd-sized chunks.
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 200_000)
	rng.Read(data)
	for off := 0; off < len(data); {
		n := 777
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := f.WriteAt(data[off:off+n], int64(off)); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	n, err := f.ReadAt(buf, 0)
	if err != nil || n != len(data) {
		t.Fatalf("read = (%d,%v)", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("large file corrupted")
	}
}

func ctRandomIO(t *testing.T, fs vfs.FileSystem) {
	f, err := fs.Create("/rand")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const size = 64 << 10
	model := make([]byte, size)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 80; i++ {
		off := rng.Intn(size - 1024)
		n := rng.Intn(1024) + 1
		chunk := make([]byte, n)
		rng.Read(chunk)
		copy(model[off:], chunk)
		if _, err := f.WriteAt(chunk, int64(off)); err != nil {
			t.Fatal(err)
		}
	}
	fsize, _ := f.Size()
	buf := make([]byte, fsize)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, model[:fsize]) {
		t.Fatal("random IO model divergence")
	}
}

func ctPathValidation(t *testing.T, fs vfs.FileSystem) {
	bad := []string{"", "relative", "//", "/a//b", "/a/./b", "/a/../b"}
	for _, p := range bad {
		if _, err := fs.Open(p); !errors.Is(err, vfs.ErrInvalid) && !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("open %q: %v", p, err)
		}
	}
	if err := fs.Unlink("/"); err == nil {
		t.Error("unlinked root")
	}
	if err := fs.Mkdir("/"); err == nil {
		t.Error("mkdir root succeeded")
	}
}
