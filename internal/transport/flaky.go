package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"swarm/internal/wire"
)

// Flaky wraps a ServerConn for failure injection in tests: it can be
// brought down entirely (every call fails with ErrUnavailable, as a
// crashed server would), configured to fail the next N calls, made to
// fail each call with a seeded probability, or given injected latency —
// the chaos-harness modes exercised by the fault-tolerance tests.
type Flaky struct {
	inner ServerConn
	down  atomic.Bool

	mu        sync.Mutex
	failNext  int
	failErr   error
	failRate  float64
	rng       *rand.Rand
	latency   time.Duration
	callCount atomic.Int64
	failCount atomic.Int64
}

var _ ServerConn = (*Flaky)(nil)

// NewFlaky wraps inner; the connection starts healthy.
func NewFlaky(inner ServerConn) *Flaky { return &Flaky{inner: inner} }

// SetDown brings the simulated server down or back up.
func (f *Flaky) SetDown(down bool) { f.down.Store(down) }

// Down reports whether the simulated server is down.
func (f *Flaky) Down() bool { return f.down.Load() }

// FailNext makes the next n calls fail with err.
func (f *Flaky) FailNext(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failNext = n
	f.failErr = err
}

// SetFailureRate makes every call fail with probability p (an
// ErrUnavailable, as a lossy network would produce), drawn from a source
// seeded with seed so chaos runs are reproducible. p <= 0 disables.
func (f *Flaky) SetFailureRate(p float64, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failRate = p
	f.rng = rand.New(rand.NewSource(seed))
}

// SetLatency injects a fixed delay before every call — including calls
// that will fail because the server is down, modeling the timeout cost a
// client pays talking to a hung peer. 0 disables.
func (f *Flaky) SetLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// Calls returns how many operations were attempted (including failed).
func (f *Flaky) Calls() int64 { return f.callCount.Load() }

// Failures returns how many operations were failed by injection.
func (f *Flaky) Failures() int64 { return f.failCount.Load() }

func (f *Flaky) gate() error {
	f.callCount.Add(1)
	f.mu.Lock()
	lat := f.latency
	f.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	if f.down.Load() {
		f.failCount.Add(1)
		return ErrUnavailable
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNext > 0 {
		f.failNext--
		f.failCount.Add(1)
		return f.failErr
	}
	if f.failRate > 0 && f.rng.Float64() < f.failRate {
		f.failCount.Add(1)
		return fmt.Errorf("%w: injected failure", ErrUnavailable)
	}
	return nil
}

// ID implements ServerConn.
func (f *Flaky) ID() wire.ServerID { return f.inner.ID() }

// Store implements ServerConn.
func (f *Flaky) Store(fid wire.FID, data []byte, mark bool, ranges []wire.ACLRange) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Store(fid, data, mark, ranges)
}

// Read implements ServerConn.
func (f *Flaky) Read(fid wire.FID, off, n uint32) ([]byte, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.inner.Read(fid, off, n)
}

// Delete implements ServerConn.
func (f *Flaky) Delete(fid wire.FID) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Delete(fid)
}

// Prealloc implements ServerConn.
func (f *Flaky) Prealloc(fid wire.FID) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Prealloc(fid)
}

// LastMarked implements ServerConn.
func (f *Flaky) LastMarked(client wire.ClientID) (wire.FID, bool, error) {
	if err := f.gate(); err != nil {
		return 0, false, err
	}
	return f.inner.LastMarked(client)
}

// Has implements ServerConn.
func (f *Flaky) Has(fid wire.FID) (uint32, bool, error) {
	if err := f.gate(); err != nil {
		return 0, false, err
	}
	return f.inner.Has(fid)
}

// List implements ServerConn.
func (f *Flaky) List(client wire.ClientID) ([]wire.FID, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.inner.List(client)
}

// ACLCreate implements ServerConn.
func (f *Flaky) ACLCreate(members []wire.ClientID) (wire.AID, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	return f.inner.ACLCreate(members)
}

// ACLModify implements ServerConn.
func (f *Flaky) ACLModify(aid wire.AID, add, remove []wire.ClientID) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.ACLModify(aid, add, remove)
}

// ACLDelete implements ServerConn.
func (f *Flaky) ACLDelete(aid wire.AID) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.ACLDelete(aid)
}

// Stat implements ServerConn.
func (f *Flaky) Stat() (wire.StatResponse, error) {
	if err := f.gate(); err != nil {
		return wire.StatResponse{}, err
	}
	return f.inner.Stat()
}

// Ping implements ServerConn.
func (f *Flaky) Ping() error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Ping()
}

// Close implements ServerConn. The inner connection's resources are
// always released, but closing a downed server reports ErrUnavailable —
// matching what a real transport sees when the peer crashed.
func (f *Flaky) Close() error {
	err := f.inner.Close()
	if f.down.Load() {
		return ErrUnavailable
	}
	return err
}
