package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"swarm/internal/disk"
	"swarm/internal/model"
	"swarm/internal/server"
	"swarm/internal/wire"
)

const testFragSize = 4096

func newStore(t *testing.T) *server.Store {
	t.Helper()
	d := disk.NewMemDisk(1 << 20)
	st, err := server.Format(d, server.Config{FragmentSize: testFragSize})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// exerciseConn runs the full ServerConn contract against sc.
func exerciseConn(t *testing.T, sc ServerConn) {
	t.Helper()
	if err := sc.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	fid := wire.MakeFID(1, 0)
	data := bytes.Repeat([]byte{7}, 1000)
	if err := sc.Store(fid, data, true, nil); err != nil {
		t.Fatalf("store: %v", err)
	}
	got, err := sc.Read(fid, 10, 100)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, data[10:110]) {
		t.Fatal("read data mismatch")
	}

	// Error mapping: absent fragment → StatusNotFound.
	if _, err := sc.Read(wire.MakeFID(1, 99), 0, 1); !wire.IsStatus(err, wire.StatusNotFound) {
		t.Fatalf("read absent: %v", err)
	}
	// Duplicate store → StatusExists.
	if err := sc.Store(fid, data, false, nil); !wire.IsStatus(err, wire.StatusExists) {
		t.Fatalf("duplicate store: %v", err)
	}

	if size, ok, err := sc.Has(fid); err != nil || !ok || size != 1000 {
		t.Fatalf("has = (%d,%v,%v)", size, ok, err)
	}
	if lm, ok, err := sc.LastMarked(1); err != nil || !ok || lm != fid {
		t.Fatalf("lastmarked = (%v,%v,%v)", lm, ok, err)
	}

	if err := sc.Prealloc(wire.MakeFID(1, 5)); err != nil {
		t.Fatalf("prealloc: %v", err)
	}
	fids, err := sc.List(1)
	if err != nil || len(fids) != 1 || fids[0] != fid {
		t.Fatalf("list = (%v,%v)", fids, err)
	}

	aid, err := sc.ACLCreate([]wire.ClientID{1, 2})
	if err != nil || aid == 0 {
		t.Fatalf("acl create = (%d,%v)", aid, err)
	}
	if err := sc.ACLModify(aid, []wire.ClientID{3}, nil); err != nil {
		t.Fatalf("acl modify: %v", err)
	}
	if err := sc.ACLModify(999, nil, nil); !wire.IsStatus(err, wire.StatusNotFound) {
		t.Fatalf("acl modify unknown: %v", err)
	}
	if err := sc.ACLDelete(aid); err != nil {
		t.Fatalf("acl delete: %v", err)
	}

	st, err := sc.Stat()
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if st.FragmentSize != testFragSize || st.Fragments != 2 {
		t.Fatalf("stat = %+v", st)
	}

	if err := sc.Delete(fid); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, ok, err := sc.Has(fid); err != nil || ok {
		t.Fatalf("has after delete = (%v,%v)", ok, err)
	}
}

func TestLocalConnContract(t *testing.T) {
	sc := NewLocal(1, newStore(t), 1)
	defer sc.Close()
	if sc.ID() != 1 {
		t.Fatalf("ID = %d", sc.ID())
	}
	exerciseConn(t, sc)
}

func TestTCPConnContract(t *testing.T) {
	srv, err := server.ListenAndServe(newStore(t), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sc, err := DialTCP(3, srv.Addr(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if sc.ID() != 3 {
		t.Fatalf("ID = %d", sc.ID())
	}
	exerciseConn(t, sc)
}

func TestTCPConcurrentRequests(t *testing.T) {
	srv, err := server.ListenAndServe(newStore(t), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sc, err := DialTCP(1, srv.Addr(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				fid := wire.MakeFID(1, uint64(i*8+j))
				if err := sc.Store(fid, []byte{byte(i), byte(j)}, false, nil); err != nil {
					errs <- err
					return
				}
				data, err := sc.Read(fid, 0, 2)
				if err != nil {
					errs <- err
					return
				}
				if data[0] != byte(i) || data[1] != byte(j) {
					errs <- errors.New("data mismatch")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPDialFailure(t *testing.T) {
	if _, err := DialTCP(1, "127.0.0.1:1", 1, 1); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dial dead port: %v", err)
	}
}

func TestTCPServerRestartReconnects(t *testing.T) {
	st := newStore(t)
	srv, err := server.ListenAndServe(st, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	sc, err := DialTCP(1, addr, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := sc.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// Call fails while the server is down…
	if err := sc.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ping dead server: %v", err)
	}
	// …and succeeds again after a restart on the same address thanks to
	// the pool's lazy re-dial.
	srv2, err := server.ListenAndServe(st, addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := sc.Ping(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never reconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTCPCloseUnblocksCalls(t *testing.T) {
	srv, err := server.ListenAndServe(newStore(t), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sc, err := DialTCP(1, srv.Addr(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ping after close: %v", err)
	}
	if err := sc.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestBroadcastFindsHolders(t *testing.T) {
	stA, stB, stC := newStore(t), newStore(t), newStore(t)
	fid := wire.MakeFID(1, 7)
	if err := stA.Store(fid, []byte("x"), false, nil); err != nil {
		t.Fatal(err)
	}
	if err := stC.Store(fid, []byte("x"), false, nil); err != nil {
		t.Fatal(err)
	}
	conns := []ServerConn{NewLocal(1, stA, 1), NewLocal(2, stB, 1), NewLocal(3, stC, 1)}
	found := Broadcast(conns, fid)
	ids := map[wire.ServerID]bool{}
	for _, sc := range found {
		ids[sc.ID()] = true
	}
	if len(found) != 2 || !ids[1] || !ids[3] {
		t.Fatalf("broadcast found %v", ids)
	}
}

func TestBroadcastSkipsDeadServers(t *testing.T) {
	stA, stB := newStore(t), newStore(t)
	fid := wire.MakeFID(1, 7)
	if err := stB.Store(fid, []byte("x"), false, nil); err != nil {
		t.Fatal(err)
	}
	dead := NewFlaky(NewLocal(1, stA, 1))
	dead.SetDown(true)
	conns := []ServerConn{dead, NewLocal(2, stB, 1)}
	found := Broadcast(conns, fid)
	if len(found) != 1 || found[0].ID() != 2 {
		t.Fatalf("broadcast = %v", found)
	}
}

func TestByID(t *testing.T) {
	conns := []ServerConn{NewLocal(1, newStore(t), 1), NewLocal(5, newStore(t), 1)}
	sc, err := ByID(conns, 5)
	if err != nil || sc.ID() != 5 {
		t.Fatalf("ByID = (%v,%v)", sc, err)
	}
	if _, err := ByID(conns, 9); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ByID missing = %v", err)
	}
}

func TestFlakyDownAndFailNext(t *testing.T) {
	sc := NewFlaky(NewLocal(1, newStore(t), 1))
	if err := sc.Ping(); err != nil {
		t.Fatal(err)
	}
	sc.SetDown(true)
	if err := sc.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ping down server: %v", err)
	}
	if !sc.Down() {
		t.Fatal("Down() = false")
	}
	sc.SetDown(false)
	boom := errors.New("boom")
	sc.FailNext(2, boom)
	if err := sc.Ping(); !errors.Is(err, boom) {
		t.Fatalf("first failNext: %v", err)
	}
	if err := sc.Ping(); !errors.Is(err, boom) {
		t.Fatalf("second failNext: %v", err)
	}
	if err := sc.Ping(); err != nil {
		t.Fatalf("after failNext exhausted: %v", err)
	}
	if sc.Calls() != 5 {
		t.Fatalf("Calls = %d, want 5", sc.Calls())
	}
}

func TestThrottledChargesTransferTime(t *testing.T) {
	inner := NewLocal(1, newStore(t), 1)
	nm := NetModel{
		Clock:     model.WallClock{},
		ClientNIC: model.NewQueue(model.WallClock{}, 30_000),
	}
	sc := NewThrottled(inner, nm)
	start := time.Now()
	// 3 KB at 30 KB/s ≈ 100 ms (and well under the fragment size).
	if err := sc.Store(wire.MakeFID(1, 0), make([]byte, 3000), false, nil); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Fatalf("throttled store took %v, want ≳100ms", elapsed)
	}
}

func TestThrottledPassesThroughData(t *testing.T) {
	inner := NewLocal(4, newStore(t), 1)
	sc := NewThrottled(inner, NetModel{}) // all-nil resources: no delay
	if sc.ID() != 4 {
		t.Fatalf("ID = %d", sc.ID())
	}
	exerciseConn(t, sc)
}

func TestNewNetModelResources(t *testing.T) {
	nm := NewNetModel(model.WallClock{}, model.Paper1999())
	if nm.ClientNIC == nil || nm.ServerNIC == nil || nm.ServerCPU == nil {
		t.Fatal("missing resources")
	}
	if nm.Latency != model.NetMsgLatency {
		t.Fatalf("latency = %v", nm.Latency)
	}
	// Unlimited params produce nil throttles (no limit).
	nm0 := NewNetModel(nil, model.HardwareParams{})
	if nm0.ClientNIC != nil || nm0.ServerCPU != nil {
		t.Fatal("zero params created throttles")
	}
}

func TestFlakyFullContract(t *testing.T) {
	// The flaky wrapper must be a transparent ServerConn when healthy…
	fl := NewFlaky(NewLocal(9, newStore(t), 1))
	if fl.ID() != 9 {
		t.Fatalf("ID = %d", fl.ID())
	}
	exerciseConn(t, fl)
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	// …and fail every operation when down.
	fl2 := NewFlaky(NewLocal(1, newStore(t), 1))
	fl2.SetDown(true)
	if err := fl2.Store(wire.MakeFID(1, 0), nil, false, nil); !errors.Is(err, ErrUnavailable) {
		t.Fatal("store on down conn succeeded")
	}
	if _, err := fl2.Read(wire.MakeFID(1, 0), 0, 1); !errors.Is(err, ErrUnavailable) {
		t.Fatal("read on down conn succeeded")
	}
	if err := fl2.Delete(wire.MakeFID(1, 0)); !errors.Is(err, ErrUnavailable) {
		t.Fatal("delete on down conn succeeded")
	}
	if err := fl2.Prealloc(wire.MakeFID(1, 0)); !errors.Is(err, ErrUnavailable) {
		t.Fatal("prealloc on down conn succeeded")
	}
	if _, _, err := fl2.LastMarked(1); !errors.Is(err, ErrUnavailable) {
		t.Fatal("lastmarked on down conn succeeded")
	}
	if _, _, err := fl2.Has(wire.MakeFID(1, 0)); !errors.Is(err, ErrUnavailable) {
		t.Fatal("has on down conn succeeded")
	}
	if _, err := fl2.List(1); !errors.Is(err, ErrUnavailable) {
		t.Fatal("list on down conn succeeded")
	}
	if _, err := fl2.ACLCreate(nil); !errors.Is(err, ErrUnavailable) {
		t.Fatal("aclcreate on down conn succeeded")
	}
	if err := fl2.ACLModify(1, nil, nil); !errors.Is(err, ErrUnavailable) {
		t.Fatal("aclmodify on down conn succeeded")
	}
	if err := fl2.ACLDelete(1); !errors.Is(err, ErrUnavailable) {
		t.Fatal("acldelete on down conn succeeded")
	}
	if _, err := fl2.Stat(); !errors.Is(err, ErrUnavailable) {
		t.Fatal("stat on down conn succeeded")
	}
}

func TestThrottledClose(t *testing.T) {
	sc := NewThrottled(NewLocal(1, newStore(t), 1), NetModel{})
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestThrottledChargesFullModelOnAllOps(t *testing.T) {
	nm := NewNetModel(model.WallClock{}, model.Paper1999().Scaled(1000))
	sc := NewThrottled(NewLocal(1, newStore(t), 1), nm)
	exerciseConn(t, sc)
}

// TestRPCTimeoutClassifiedUnavailable pins the error classification of
// an RPC timeout: a server that accepts the connection but never
// responds must surface as ErrUnavailable (transient), so the resilient
// layer retries instead of treating the stall as permanent.
func TestRPCTimeoutClassifiedUnavailable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			// Drain requests without ever answering.
			go func() { _, _ = io.Copy(io.Discard, c) }()
		}
	}()

	sc, err := DialTCP(1, ln.Addr().String(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	sc.SetIOTimeout(50 * time.Millisecond)

	if err := sc.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Ping against a mute server: err = %v, want ErrUnavailable", err)
	}
}
