// Command stingfs drives a Sting file system stored on a running Swarm
// cluster. Each invocation opens the client's log (recovering state from
// the servers), executes one file operation, checkpoints, and exits —
// persistence lives entirely in the cluster.
//
// Usage (against running swarmd processes):
//
//	stingfs -servers :7700,:7701 mkdir /docs
//	stingfs -servers ...         write /docs/a.txt "hello"
//	stingfs -servers ...         cat /docs/a.txt
//	stingfs -servers ...         ls /docs
//	stingfs -servers ...         stat /docs/a.txt
//	stingfs -servers ...         mv /docs/a.txt /docs/b.txt
//	stingfs -servers ...         rm /docs/b.txt
//	stingfs -servers ...         tree /
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"swarm"
)

func main() {
	var (
		servers = flag.String("servers", "127.0.0.1:7700", "comma-separated storage server addresses")
		client  = flag.Uint("client", 1, "client ID (log owner)")
		frag    = flag.Int("fragsize", 1<<20, "fragment size (must match the cluster)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: stingfs [flags] mkdir|write|cat|ls|stat|mv|rm|rmdir|tree ...")
		os.Exit(2)
	}
	if err := run(strings.Split(*servers, ","), swarm.ClientID(*client), *frag, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "stingfs:", err)
		os.Exit(1)
	}
}

func run(addrs []string, client swarm.ClientID, fragSize int, args []string) error {
	c, err := swarm.ConnectAddrs(client, addrs, swarm.ClientOptions{FragmentSize: fragSize})
	if err != nil {
		return err
	}
	defer c.Close()
	fs, err := c.Mount(swarm.FSConfig{})
	if err != nil {
		return err
	}

	if err := execute(fs, args); err != nil {
		return err
	}
	return fs.Unmount()
}

func execute(fs *swarm.FS, args []string) error {
	cmd := args[0]
	need := func(n int) error {
		if len(args) < n+1 {
			return fmt.Errorf("%s needs %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		return swarm.MkdirAll(fs, args[1])
	case "write":
		if err := need(2); err != nil {
			return err
		}
		return swarm.WriteFile(fs, args[1], []byte(args[2]))
	case "cat":
		if err := need(1); err != nil {
			return err
		}
		data, err := swarm.ReadFile(fs, args[1])
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		if len(data) > 0 && data[len(data)-1] != '\n' {
			fmt.Println()
		}
		return nil
	case "ls":
		if err := need(1); err != nil {
			return err
		}
		entries, err := fs.ReadDir(args[1])
		if err != nil {
			return err
		}
		for _, e := range entries {
			kind := "-"
			if e.Mode.IsDir() {
				kind = "d"
			}
			fmt.Printf("%s %6d %s\n", kind, e.Ino, e.Name)
		}
		return nil
	case "stat":
		if err := need(1); err != nil {
			return err
		}
		info, err := fs.Stat(args[1])
		if err != nil {
			return err
		}
		kind := "file"
		if info.Mode.IsDir() {
			kind = "dir"
		}
		fmt.Printf("%s: %s, ino %d, %d bytes, nlink %d, mtime %s\n",
			args[1], kind, info.Ino, info.Size, info.Nlink, info.MTime.Format("2006-01-02 15:04:05"))
		return nil
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		return fs.Rename(args[1], args[2])
	case "rm":
		if err := need(1); err != nil {
			return err
		}
		return fs.Unlink(args[1])
	case "rmdir":
		if err := need(1); err != nil {
			return err
		}
		return fs.Rmdir(args[1])
	case "tree":
		if err := need(1); err != nil {
			return err
		}
		return swarm.Walk(fs, args[1], func(path string, info swarm.FileInfo) error {
			if info.Mode.IsDir() {
				fmt.Printf("%s/\n", path)
			} else {
				fmt.Printf("%s (%d bytes)\n", path, info.Size)
			}
			return nil
		})
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
