package server

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"swarm/internal/wire"
)

func newCachedStore(t *testing.T, slots int, capBytes int64, depth int) *Store {
	t.Helper()
	s, _ := newTestStore(t, slots)
	s.SetReadCache(capBytes, depth)
	return s
}

func TestReadExtentHitAliasesCachedBuffer(t *testing.T) {
	s := newCachedStore(t, 8, 1<<20, 0)
	fid := wire.MakeFID(1, 0)
	data := bytes.Repeat([]byte{0xAB}, 1000)
	if err := s.Store(fid, data, false, nil); err != nil {
		t.Fatal(err)
	}

	d1, e1, err := s.ReadExtent(1, fid, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if e1 == nil {
		t.Fatal("cache enabled but extent is nil")
	}
	if !bytes.Equal(d1, data) {
		t.Fatal("miss data mismatch")
	}
	d2, e2, err := s.ReadExtent(1, fid, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d2, data) {
		t.Fatal("hit data mismatch")
	}
	// The zero-copy claim, concretely: both reads alias one backing array.
	if &d1[0] != &d2[0] {
		t.Fatal("hit did not alias the cached extent (payload was copied)")
	}
	// Partial reads subslice the same extent.
	d3, e3, err := s.ReadExtent(1, fid, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d3, data[100:150]) {
		t.Fatal("partial hit mismatch")
	}
	if &d3[0] != &d2[100] {
		t.Fatal("partial hit did not alias the cached extent")
	}
	e1.Release()
	e2.Release()
	e3.Release()

	st := s.Stats()
	if st.ReadMisses != 1 || st.ReadHits != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/1", st.ReadHits, st.ReadMisses)
	}
	if st.ReadBytesCached != 1050 {
		t.Fatalf("bytes served from cache = %d, want 1050", st.ReadBytesCached)
	}
}

// TestReadExtentGenerationGuard is the slot-recycling invariant: after a
// fragment is deleted and its slot restored to a NEW fragment, the cache
// must never serve the old bytes — for either FID.
func TestReadExtentGenerationGuard(t *testing.T) {
	// Single-slot store: the new fragment must recycle the old one's slot.
	s := newCachedStore(t, 1, 1<<20, 0)
	oldFID := wire.MakeFID(1, 0)
	oldData := bytes.Repeat([]byte{0x01}, 512)
	if err := s.Store(oldFID, oldData, false, nil); err != nil {
		t.Fatal(err)
	}
	// Populate the cache with the old fragment.
	if _, ext, err := s.ReadExtent(1, oldFID, 0, 512); err != nil {
		t.Fatal(err)
	} else {
		ext.Release()
	}
	if err := s.Delete(1, oldFID); err != nil {
		t.Fatal(err)
	}
	newFID := wire.MakeFID(1, 7)
	newData := bytes.Repeat([]byte{0x02}, 512)
	if err := s.Store(newFID, newData, false, nil); err != nil {
		t.Fatal(err)
	}

	// The deleted FID must be gone, not served from cache.
	if _, _, err := s.ReadExtent(1, oldFID, 0, 512); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted fragment read: %v, want ErrNotFound", err)
	}
	// The recycled slot's new fragment must serve ITS bytes.
	got, ext, err := s.ReadExtent(1, newFID, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("recycled slot served stale bytes")
	}
	ext.Release()
}

// TestReadExtentZeroCopyAllocs pins the warm cached-read path at zero
// heap allocations: a hit returns a subslice of the resident extent —
// no payload copy, no per-request buffers.
func TestReadExtentZeroCopyAllocs(t *testing.T) {
	s := newCachedStore(t, 8, 1<<20, 0)
	fid := wire.MakeFID(1, 0)
	data := bytes.Repeat([]byte{0xCD}, 2048)
	if err := s.Store(fid, data, false, nil); err != nil {
		t.Fatal(err)
	}
	if _, ext, err := s.ReadExtent(1, fid, 0, 2048); err != nil {
		t.Fatal(err)
	} else {
		ext.Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		_, ext, err := s.ReadExtent(1, fid, 0, 2048)
		if err != nil {
			t.Fatal(err)
		}
		ext.Release()
	})
	if allocs != 0 {
		t.Fatalf("cached read allocates %.1f objects/op, want 0", allocs)
	}
}

// TestReadaheadPrefetchesNeighbors: a read of fragment i pulls i+1..i+d
// into the cache off the background worker.
func TestReadaheadPrefetchesNeighbors(t *testing.T) {
	s := newCachedStore(t, 8, 1<<20, 2)
	data := bytes.Repeat([]byte{0x11}, 256)
	for seq := uint64(0); seq < 4; seq++ {
		if err := s.Store(wire.MakeFID(1, seq), data, false, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, ext, err := s.ReadExtent(1, wire.MakeFID(1, 0), 0, 256); err != nil {
		t.Fatal(err)
	} else {
		ext.Release()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s.Stats().ReadaheadLoads >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readahead loads = %d after 2s, want 2", s.Stats().ReadaheadLoads)
		}
		time.Sleep(time.Millisecond)
	}
	// The prefetched neighbors now hit without touching the disk counter.
	diskBefore := s.Stats().ReadBytesDisk
	for seq := uint64(1); seq <= 2; seq++ {
		got, ext, err := s.ReadExtent(1, wire.MakeFID(1, seq), 0, 256)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("prefetched fragment %d mismatch", seq)
		}
		ext.Release()
	}
	if got := s.Stats().ReadBytesDisk; got != diskBefore {
		t.Fatalf("reads of prefetched fragments went to disk (%d -> %d bytes)", diskBefore, got)
	}
}

// TestReadCacheEvictionBound: occupancy never exceeds the configured
// capacity, and evicted extents stop hitting.
func TestReadCacheEvictionBound(t *testing.T) {
	s, _ := newTestStore(t, 8)
	// Room for two 1000-byte extents.
	s.SetReadCache(2500, 0)
	data := bytes.Repeat([]byte{0x33}, 1000)
	for seq := uint64(0); seq < 4; seq++ {
		if err := s.Store(wire.MakeFID(1, seq), data, false, nil); err != nil {
			t.Fatal(err)
		}
		if _, ext, err := s.ReadExtent(1, wire.MakeFID(1, seq), 0, 1000); err != nil {
			t.Fatal(err)
		} else {
			ext.Release()
		}
		if cur := s.rcache.curBytes(); cur > 2500 {
			t.Fatalf("cache occupancy %d exceeds cap 2500", cur)
		}
	}
	st := s.Stats()
	if st.ReadCacheBytes > 2500 {
		t.Fatalf("stats occupancy %d exceeds cap", st.ReadCacheBytes)
	}
	// The first fragment was evicted: rereading it is a miss.
	missesBefore := st.ReadMisses
	if _, ext, err := s.ReadExtent(1, wire.MakeFID(1, 0), 0, 1000); err != nil {
		t.Fatal(err)
	} else {
		ext.Release()
	}
	if got := s.Stats().ReadMisses; got != missesBefore+1 {
		t.Fatal("evicted extent served as a hit")
	}
}

// TestReadExtentDisabledFallsBack: without SetReadCache, ReadExtent is
// exactly Read — pooled buffer, nil extent, no counters.
func TestReadExtentDisabledFallsBack(t *testing.T) {
	s, _ := newTestStore(t, 8)
	fid := wire.MakeFID(1, 0)
	data := bytes.Repeat([]byte{0x44}, 300)
	if err := s.Store(fid, data, false, nil); err != nil {
		t.Fatal(err)
	}
	got, ext, err := s.ReadExtent(1, fid, 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	if ext != nil {
		t.Fatal("disabled cache returned an extent")
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fallback read mismatch")
	}
	if st := s.Stats(); st.ReadHits+st.ReadMisses != 0 {
		t.Fatalf("disabled cache counted traffic: %+v", st)
	}
}

// TestExtentRefcountLifecycle: an extent evicted while a response is in
// flight stays valid until that response releases it.
func TestExtentRefcountLifecycle(t *testing.T) {
	s, _ := newTestStore(t, 8)
	s.SetReadCache(1200, 0) // exactly one 1000-byte extent resident
	data0 := bytes.Repeat([]byte{0x55}, 1000)
	data1 := bytes.Repeat([]byte{0x66}, 1000)
	if err := s.Store(wire.MakeFID(1, 0), data0, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(wire.MakeFID(1, 1), data1, false, nil); err != nil {
		t.Fatal(err)
	}
	// Hold fragment 0's extent as an in-flight response would.
	held, ext0, err := s.ReadExtent(1, wire.MakeFID(1, 0), 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Reading fragment 1 evicts fragment 0 from the cache.
	if _, ext1, err := s.ReadExtent(1, wire.MakeFID(1, 1), 0, 1000); err != nil {
		t.Fatal(err)
	} else {
		ext1.Release()
	}
	// The held payload is still intact: eviction dropped the cache's
	// reference, not ours.
	if !bytes.Equal(held, data0) {
		t.Fatal("held extent corrupted by eviction")
	}
	ext0.Release() // last reference; buffer returns to the pool
}

// TestCloseStopsReadaheadWorker pins the shutdown fix: before it, the
// readahead worker SetReadCache spawned parked on the prefetch queue
// forever — one leaked goroutine per server restart, and the chaos
// harness restarts servers hundreds of times per run. Store.Close must
// terminate it promptly and idempotently.
func TestCloseStopsReadaheadWorker(t *testing.T) {
	s := newCachedStore(t, 8, 1<<20, 2)
	if s.rcache.raDone == nil {
		t.Fatal("readahead enabled but no worker lifecycle channel")
	}
	// Prove the worker is alive before shutdown: a scheduled hint for a
	// stored fragment gets prefetched.
	fid := wire.MakeFID(1, 0)
	if err := s.Store(fid, bytes.Repeat([]byte{0x5A}, 500), false, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(wire.MakeFID(1, 1), bytes.Repeat([]byte{0xA5}, 500), false, nil); err != nil {
		t.Fatal(err)
	}
	s.rcache.schedule(fid)
	deadline := time.Now().Add(2 * time.Second)
	for s.rcache.raLoads.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("readahead worker never served the scheduled hint")
		}
		time.Sleep(time.Millisecond)
	}

	s.Close()
	select {
	case <-s.rcache.raDone:
	case <-time.After(2 * time.Second):
		t.Fatal("readahead worker did not exit after Store.Close")
	}
	s.Close() // idempotent: a second Close must not panic or hang
}

// TestCloseWithoutWorkerIsNoop: depth 0 starts no worker, and a store
// with no cache at all has nothing to stop — Close must return
// immediately in both shapes.
func TestCloseWithoutWorkerIsNoop(t *testing.T) {
	s := newCachedStore(t, 8, 1<<20, 0)
	s.Close()
	bare, _ := newTestStore(t, 8)
	bare.Close()
}
