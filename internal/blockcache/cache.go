// Package blockcache implements the client-side caching service the
// paper lists among the services layered on the log (§2.2) and leans on
// in the evaluation: "we expect most reads to be handled by the client
// cache" and "Swarm's poor read performance is masked by the client-side
// cache" (§3.4). The cache intercepts reads between a service and the
// log, holding whole blocks keyed by block address.
//
// The structure is built for many concurrent readers (DESIGN.md §3.13):
// the LRU is sharded by address hash so hot hits on different blocks
// never contend on one lock, hit/miss counters are atomics, and a hit
// returns a subslice of the cached block — zero allocations, zero
// copies (callers treat the result as read-only, and every existing
// caller copies out what it needs).
//
// Misses fall through to the Reader below (normally *core.Log) under a
// per-block singleflight: N concurrent readers of one uncached block
// produce exactly one lower-level fill and share its result. Fills —
// including fragment-grained readahead — are issued through the log's
// fragment I/O engine (internal/fragio), so they share the same
// per-server queues, parallel fan-out, and reconstruction deduplication
// as every other fetch path. When the lower Reader also implements
// Prefetcher and readahead is enabled, a log-address-sequential miss
// pattern triggers asynchronous prefetch of the following fragments.
package blockcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"swarm/internal/core"
)

// Reader is the read interface the cache sits on top of (satisfied by
// *core.Log).
type Reader interface {
	Read(addr core.BlockAddr, off, n uint32) ([]byte, error)
}

// Prefetcher is optionally implemented by the lower Reader (satisfied by
// *core.Log): Prefetch asynchronously warms the reader's own
// fragment-level cache with the fragments following addr's, so the
// sequential misses about to arrive find their fragments already
// resident.
type Prefetcher interface {
	Prefetch(addr core.BlockAddr, fragments int)
}

const (
	// maxShards bounds the LRU sharding (power of two). 16 shards keep
	// 64 concurrent readers from convoying on one mutex while costing 15
	// extra list heads.
	maxShards = 16
	// minShardBytes is the smallest per-shard budget worth splitting
	// into: a shard that can't hold a handful of blocks just thrashes.
	// Small caches therefore shard less — down to one shard, which
	// preserves exact global LRU order.
	minShardBytes = 256 << 10
)

// shardsFor picks the shard count for a capacity: the largest power of
// two ≤ maxShards that still gives every shard at least minShardBytes.
func shardsFor(capBytes int64) int {
	n := 1
	for n < maxShards && capBytes/int64(n*2) >= minShardBytes {
		n *= 2
	}
	return n
}

// shard is one slice of the LRU. Each shard evicts against its share of
// the byte budget, so the cache as a whole stays within capBytes.
type shard struct {
	mu    sync.Mutex
	cap   int64
	bytes int64
	lru   *list.List // front = most recent; values are *cacheEntry
	index map[core.BlockAddr]*list.Element
}

type cacheEntry struct {
	addr core.BlockAddr
	data []byte
}

// Cache is a sharded LRU block cache with per-block singleflight fills.
type Cache struct {
	lower  Reader
	prefet Prefetcher // non-nil iff lower implements Prefetcher

	shards []shard
	mask   uint64 // len(shards)-1; len is a power of two

	hits   atomic.Int64
	misses atomic.Int64
	fills  atomic.Int64 // lower-level reads actually issued

	flightMu sync.Mutex
	flights  map[core.BlockAddr]*flight

	// Readahead state: raDepth > 0 arms sequential-miss detection. A
	// miss whose address follows the previous miss in log order (further
	// into the same fragment, or the next fragment) triggers one
	// Prefetch per fragment entered.
	raMu       sync.Mutex
	raDepth    int
	raTriggers atomic.Int64
	lastMiss   core.BlockAddr
	haveMiss   bool
	lastRASeq  uint64
	haveRASeq  bool
}

// flight is one in-progress lower-level block fill; concurrent readers
// of the same block wait on done and share data/err.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// New returns a cache over lower holding at most capBytes of block data.
func New(lower Reader, capBytes int64) *Cache {
	c := &Cache{
		lower:   lower,
		flights: make(map[core.BlockAddr]*flight),
	}
	if p, ok := lower.(Prefetcher); ok {
		c.prefet = p
	}
	n := shardsFor(capBytes)
	c.shards = make([]shard, n)
	c.mask = uint64(n - 1)
	perShard := capBytes / int64(n)
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].lru = list.New()
		c.shards[i].index = make(map[core.BlockAddr]*list.Element)
	}
	return c
}

// SetReadahead arms log-address-sequential readahead: when a miss
// pattern walks forward through the log, the next `fragments` fragments
// are prefetched through the lower Reader's Prefetch (a no-op if the
// Reader doesn't implement Prefetcher). 0 disables. Not safe to switch
// concurrently with reads; set it at mount time.
func (c *Cache) SetReadahead(fragments int) {
	c.raMu.Lock()
	c.raDepth = fragments
	c.raMu.Unlock()
}

// shardOf hashes a block address onto its shard.
func (c *Cache) shardOf(addr core.BlockAddr) *shard {
	h := (uint64(addr.FID) ^ uint64(addr.Off)<<32 ^ uint64(addr.Off)) * 0x9e3779b97f4a7c15
	return &c.shards[(h>>48)&c.mask]
}

// lookup returns the cached subslice for a hit, or nil. The short-entry
// case (off+n beyond the cached data) returns nil with short=true so the
// caller falls through to the log without treating it as a plain miss.
func (c *Cache) lookup(addr core.BlockAddr, off, n uint32) (data []byte, short bool) {
	sh := c.shardOf(addr)
	sh.mu.Lock()
	el, ok := sh.index[addr]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if int(off)+int(n) > len(ent.data) {
		sh.mu.Unlock()
		return nil, true
	}
	sh.lru.MoveToFront(el)
	out := ent.data[off : off+n : off+n]
	sh.mu.Unlock()
	return out, false
}

// ReadBlock returns n bytes at off within the block at addr, whose total
// length is blockLen. A miss fetches and caches the whole block, the
// behaviour that makes rereads free. Hits return a read-only subslice of
// the cached block: zero copies, zero allocations.
func (c *Cache) ReadBlock(addr core.BlockAddr, blockLen, off, n uint32) ([]byte, error) {
	if data, short := c.lookup(addr, off, n); data != nil {
		c.hits.Add(1)
		return data, nil
	} else if short {
		// Stale or short entry: fall through to the log.
		c.hits.Add(1)
		return c.lower.Read(addr, off, n)
	}
	c.misses.Add(1)
	c.maybeReadahead(addr)

	// Per-block singleflight: the first reader fills, the rest wait and
	// share. (fragio dedups per-FID flights below us, but a block read
	// is one ranged request — without this, N concurrent misses on one
	// hot block issue N identical fills.)
	c.flightMu.Lock()
	if f, ok := c.flights[addr]; ok {
		c.flightMu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		if int(off)+int(n) > len(f.data) {
			return c.lower.Read(addr, off, n)
		}
		return f.data[off : off+n : off+n], nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[addr] = f
	c.flightMu.Unlock()

	c.fills.Add(1)
	f.data, f.err = c.lower.Read(addr, 0, blockLen)
	if f.err == nil {
		// The lower read handed us a fresh buffer; cache it without the
		// defensive copy Put makes.
		c.putOwned(addr, f.data)
	}
	c.flightMu.Lock()
	delete(c.flights, addr)
	c.flightMu.Unlock()
	close(f.done)

	if f.err != nil {
		return nil, f.err
	}
	if int(off)+int(n) > len(f.data) {
		return c.lower.Read(addr, off, n)
	}
	return f.data[off : off+n : off+n], nil
}

// maybeReadahead feeds the sequential-miss detector. Two consecutive
// misses walking forward in log order — deeper into one fragment, or
// into the next — predict a scan; the predictor fires one Prefetch per
// fragment entered.
func (c *Cache) maybeReadahead(addr core.BlockAddr) {
	if c.prefet == nil {
		return
	}
	c.raMu.Lock()
	if c.raDepth <= 0 {
		c.raMu.Unlock()
		return
	}
	seq := addr.FID.Seq()
	sequential := c.haveMiss && addr.FID.Client() == c.lastMiss.FID.Client() &&
		((addr.FID == c.lastMiss.FID && addr.Off > c.lastMiss.Off) ||
			seq == c.lastMiss.FID.Seq()+1)
	c.lastMiss, c.haveMiss = addr, true
	fire := sequential && (!c.haveRASeq || seq != c.lastRASeq)
	depth := c.raDepth
	if fire {
		c.lastRASeq, c.haveRASeq = seq, true
	}
	c.raMu.Unlock()
	if fire {
		c.raTriggers.Add(1)
		c.prefet.Prefetch(addr, depth)
	}
}

// Put inserts (or refreshes) a block. Writers use it to warm the cache
// with data they just appended; the data is copied.
func (c *Cache) Put(addr core.BlockAddr, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	c.putOwned(addr, cp)
}

// putOwned inserts a block the cache may keep without copying.
func (c *Cache) putOwned(addr core.BlockAddr, data []byte) {
	sh := c.shardOf(addr)
	sh.mu.Lock()
	if el, ok := sh.index[addr]; ok {
		ent := el.Value.(*cacheEntry)
		sh.bytes += int64(len(data)) - int64(len(ent.data))
		ent.data = data
		sh.lru.MoveToFront(el)
	} else {
		sh.index[addr] = sh.lru.PushFront(&cacheEntry{addr: addr, data: data})
		sh.bytes += int64(len(data))
	}
	for sh.bytes > sh.cap && sh.lru.Len() > 0 {
		el := sh.lru.Back()
		ent := el.Value.(*cacheEntry)
		sh.lru.Remove(el)
		delete(sh.index, ent.addr)
		sh.bytes -= int64(len(ent.data))
	}
	sh.mu.Unlock()
}

// Invalidate removes a block (e.g. after the owner deletes it or the
// cleaner moves it).
func (c *Cache) Invalidate(addr core.BlockAddr) {
	sh := c.shardOf(addr)
	sh.mu.Lock()
	if el, ok := sh.index[addr]; ok {
		ent := el.Value.(*cacheEntry)
		sh.lru.Remove(el)
		delete(sh.index, addr)
		sh.bytes -= int64(len(ent.data))
	}
	sh.mu.Unlock()
}

// Stats reports hit/miss counts and current occupancy.
func (c *Cache) Stats() (hits, misses, bytes int64) {
	for i := range c.shards {
		c.shards[i].mu.Lock()
		bytes += c.shards[i].bytes
		c.shards[i].mu.Unlock()
	}
	return c.hits.Load(), c.misses.Load(), bytes
}

// Fills returns how many lower-level block reads the cache actually
// issued: misses minus the singleflight sharing.
func (c *Cache) Fills() int64 { return c.fills.Load() }

// ReadaheadTriggers returns how many times sequential-miss detection
// fired a prefetch.
func (c *Cache) ReadaheadTriggers() int64 { return c.raTriggers.Load() }

// Len returns the number of cached blocks.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].lru.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}
