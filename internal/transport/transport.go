// Package transport connects the client-side log layer to storage servers.
// It defines the ServerConn abstraction and three implementations: Local
// (in-process calls into a server.Store through the full request codec),
// TCP (the wire protocol over the network), and Throttled (either of the
// above wrapped in the 1999 performance model). A Flaky wrapper injects
// failures for tests, and Broadcast implements the self-hosting fragment
// discovery the paper uses for reconstruction (§2.3.3).
package transport

import (
	"errors"
	"fmt"
	"sync"

	"swarm/internal/wire"
)

// ErrUnavailable indicates the server cannot be reached; the log layer
// treats it as a server failure and falls back to reconstruction.
var ErrUnavailable = errors.New("transport: server unavailable")

// ServerConn is one client's connection to one storage server. All methods
// are safe for concurrent use. Errors originating from the server are
// *wire.StatusError values, so callers can match with wire.IsStatus
// regardless of the transport in use.
type ServerConn interface {
	// ID returns the server's identity within the cluster configuration.
	ID() wire.ServerID
	// Store writes a complete fragment (atomically on the server).
	Store(fid wire.FID, data []byte, mark bool, ranges []wire.ACLRange) error
	// Read returns n bytes at off of fragment fid.
	Read(fid wire.FID, off, n uint32) ([]byte, error)
	// Delete removes a fragment.
	Delete(fid wire.FID) error
	// Prealloc reserves a slot for fid.
	Prealloc(fid wire.FID) error
	// LastMarked returns the newest marked fragment for client.
	LastMarked(client wire.ClientID) (wire.FID, bool, error)
	// Has reports whether the server stores fid and its size.
	Has(fid wire.FID) (uint32, bool, error)
	// List enumerates fragments owned by client (0 = all).
	List(client wire.ClientID) ([]wire.FID, error)
	// ACLCreate creates an access control list.
	ACLCreate(members []wire.ClientID) (wire.AID, error)
	// ACLModify changes ACL membership.
	ACLModify(aid wire.AID, add, remove []wire.ClientID) error
	// ACLDelete removes an ACL.
	ACLDelete(aid wire.AID) error
	// Stat returns server occupancy.
	Stat() (wire.StatResponse, error)
	// Ping checks liveness.
	Ping() error
	// Close releases the connection.
	Close() error
}

// rpc is the uniform request/response core shared by Local and TCP:
// encode the request body, exchange it, check status, decode the reply.
type rpc interface {
	call(op wire.Op, req wire.Message, rsp wire.Message) error
}

// conn layers the typed ServerConn methods over an rpc.
type conn struct {
	id wire.ServerID
	r  rpc
}

func (c *conn) ID() wire.ServerID { return c.id }

func (c *conn) Store(fid wire.FID, data []byte, mark bool, ranges []wire.ACLRange) error {
	return c.r.call(wire.OpStore, &wire.StoreRequest{FID: fid, Mark: mark, Ranges: ranges, Data: data}, &wire.GenericResponse{})
}

func (c *conn) Read(fid wire.FID, off, n uint32) ([]byte, error) {
	var rsp wire.ReadResponse
	if err := c.r.call(wire.OpRead, &wire.ReadRequest{FID: fid, Off: off, Len: n}, &rsp); err != nil {
		return nil, err
	}
	return rsp.Data, nil
}

func (c *conn) Delete(fid wire.FID) error {
	return c.r.call(wire.OpDelete, &wire.DeleteRequest{FID: fid}, &wire.GenericResponse{})
}

func (c *conn) Prealloc(fid wire.FID) error {
	return c.r.call(wire.OpPrealloc, &wire.PreallocRequest{FID: fid}, &wire.GenericResponse{})
}

func (c *conn) LastMarked(client wire.ClientID) (wire.FID, bool, error) {
	var rsp wire.LastMarkedResponse
	if err := c.r.call(wire.OpLastMarked, &wire.LastMarkedRequest{Client: client}, &rsp); err != nil {
		return 0, false, err
	}
	return rsp.FID, rsp.Found, nil
}

func (c *conn) Has(fid wire.FID) (uint32, bool, error) {
	var rsp wire.HasFragmentResponse
	if err := c.r.call(wire.OpHasFragment, &wire.HasFragmentRequest{FID: fid}, &rsp); err != nil {
		return 0, false, err
	}
	return rsp.Size, rsp.Found, nil
}

func (c *conn) List(client wire.ClientID) ([]wire.FID, error) {
	var rsp wire.ListFIDsResponse
	if err := c.r.call(wire.OpListFIDs, &wire.ListFIDsRequest{Client: client}, &rsp); err != nil {
		return nil, err
	}
	return rsp.FIDs, nil
}

func (c *conn) ACLCreate(members []wire.ClientID) (wire.AID, error) {
	var rsp wire.ACLCreateResponse
	if err := c.r.call(wire.OpACLCreate, &wire.ACLCreateRequest{Members: members}, &rsp); err != nil {
		return 0, err
	}
	return rsp.AID, nil
}

func (c *conn) ACLModify(aid wire.AID, add, remove []wire.ClientID) error {
	return c.r.call(wire.OpACLModify, &wire.ACLModifyRequest{AID: aid, Add: add, Remove: remove}, &wire.GenericResponse{})
}

func (c *conn) ACLDelete(aid wire.AID) error {
	return c.r.call(wire.OpACLDelete, &wire.ACLDeleteRequest{AID: aid}, &wire.GenericResponse{})
}

func (c *conn) Stat() (wire.StatResponse, error) {
	var rsp wire.StatResponse
	err := c.r.call(wire.OpStat, &wire.StatRequest{}, &rsp)
	return rsp, err
}

func (c *conn) Ping() error {
	return c.r.call(wire.OpPing, &wire.PingRequest{}, &wire.GenericResponse{})
}

// Broadcast queries every connection for fid concurrently and returns the
// connections that have it. Unreachable servers are skipped: broadcast is
// exactly the mechanism that must work when a server is down.
func Broadcast(conns []ServerConn, fid wire.FID) []ServerConn {
	var (
		mu    sync.Mutex
		found []ServerConn
		wg    sync.WaitGroup
	)
	for _, sc := range conns {
		wg.Add(1)
		go func(sc ServerConn) {
			defer wg.Done()
			if _, ok, err := sc.Has(fid); err == nil && ok {
				mu.Lock()
				found = append(found, sc)
				mu.Unlock()
			}
		}(sc)
	}
	wg.Wait()
	return found
}

// ByID returns the connection with the given server ID, or an error.
func ByID(conns []ServerConn, id wire.ServerID) (ServerConn, error) {
	for _, sc := range conns {
		if sc.ID() == id {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("%w: server %d not in configuration", ErrUnavailable, id)
}
