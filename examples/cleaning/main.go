// Cleaning: drive an overwrite-heavy workload through the logical-disk
// service, watch the log consume server slots, then run the cleaner and
// watch it move the live blocks and give the slots back (§2.1.4 of the
// paper).
package main

import (
	"bytes"
	"fmt"
	"log"

	"swarm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func freeSlots(cl *swarm.Cluster) (free, total int) {
	for _, s := range cl.Servers() {
		_, t, f, _ := s.Stats()
		free += f
		total += t
	}
	return free, total
}

func run() error {
	cluster, err := swarm.NewLocalCluster(3, swarm.ServerOptions{
		DiskBytes:    32 << 20,
		FragmentSize: 128 << 10,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	client, err := cluster.Connect(1, swarm.ClientOptions{FragmentSize: 128 << 10})
	if err != nil {
		return err
	}
	defer client.Close()

	// The logical disk hides the append-only log behind overwritable
	// blocks: every overwrite appends a new version and deletes the old
	// one, leaving garbage behind in the log.
	ld, err := client.NewLogicalDisk(4096)
	if err != nil {
		return err
	}
	const nBlocks = 32
	for round := 0; round < 10; round++ {
		for lbn := uint64(0); lbn < nBlocks; lbn++ {
			data := bytes.Repeat([]byte{byte(round)}, 4000)
			if err := ld.Write(lbn, data); err != nil {
				return err
			}
		}
	}
	if err := client.Sync(); err != nil {
		return err
	}
	free, total := freeSlots(cluster)
	fmt.Printf("after 10 overwrite rounds: %d/%d slots free (~90%% of the log is garbage)\n", free, total)

	// The cleaner only reclaims stripes older than every service's
	// checkpoint — records newer than a checkpoint must survive for
	// crash replay. Checkpoint first, then clean.
	if err := ld.Checkpoint(); err != nil {
		return err
	}
	c := client.StartCleaner(0, swarm.CleanerConfig{
		UtilizationThreshold: 0.8,
		MaxStripesPerPass:    1000,
	})
	cleaned, err := c.CleanOnce()
	if err != nil {
		return err
	}
	st := c.Stats()
	fmt.Printf("cleaner pass: %d stripes reclaimed, %d live blocks moved (%d KB), %d dead blocks discarded\n",
		cleaned, st.BlocksMoved, st.BytesMoved/1024, st.BlocksDiscarded)

	free2, _ := freeSlots(cluster)
	fmt.Printf("slots free: %d -> %d\n", free, free2)

	// The data is untouched by all that motion.
	for lbn := uint64(0); lbn < nBlocks; lbn++ {
		data, err := ld.Read(lbn)
		if err != nil {
			return fmt.Errorf("lbn %d after cleaning: %w", lbn, err)
		}
		if !bytes.Equal(data, bytes.Repeat([]byte{9}, 4000)) {
			return fmt.Errorf("lbn %d corrupted by cleaner", lbn)
		}
	}
	fmt.Printf("all %d logical blocks verified after cleaning\n", nBlocks)
	return nil
}
