package bench

import (
	"strings"
	"testing"
	"time"
)

// The erasure benchmark is sleep-dominated in its decode phase and pure
// accounting on the write side, so its assertions hold under -race.
func TestErasureSweepSmoke(t *testing.T) {
	rows, err := RunErasureSweep([][2]int{{4, 1}, {4, 2}, {8, 2}},
		ErasureConfig{Stripes: 2, Latency: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Amplification must exceed the information-theoretic floor
		// (k+m)/k (headers, entry framing, stripe padding ride along) but
		// stay within a sane envelope of it.
		ideal := float64(r.K+r.M) / float64(r.K)
		if r.WriteAmp <= ideal {
			t.Fatalf("(%d,%d): write amp %.3f at or under the ideal %.3f", r.K, r.M, r.WriteAmp, ideal)
		}
		if r.WriteAmp > 3*ideal {
			t.Fatalf("(%d,%d): write amp %.3f implausibly high (ideal %.3f)", r.K, r.M, r.WriteAmp, ideal)
		}
		if r.LostFragments == 0 || r.ReconPerFrag <= 0 {
			t.Fatalf("(%d,%d): empty reconstruction phase: %+v", r.K, r.M, r)
		}
		t.Logf("(%d,%d) %s: amp %.3f (ideal %.3f), %d lost, %v/frag",
			r.K, r.M, r.Codec, r.WriteAmp, ideal, r.LostFragments, r.ReconPerFrag)
	}
	// More parity per stripe ⇒ more amplification: (4,2) > (4,1).
	if rows[1].WriteAmp <= rows[0].WriteAmp {
		t.Fatalf("amp(4,2)=%.3f not above amp(4,1)=%.3f", rows[1].WriteAmp, rows[0].WriteAmp)
	}
	// Wider data per stripe ⇒ less: (8,2) < (4,2).
	if rows[2].WriteAmp >= rows[1].WriteAmp {
		t.Fatalf("amp(8,2)=%.3f not below amp(4,2)=%.3f", rows[2].WriteAmp, rows[1].WriteAmp)
	}

	var sb strings.Builder
	PrintErasureResults(&sb, rows)
	if !strings.Contains(sb.String(), "write amp") {
		t.Fatalf("render missing table header:\n%s", sb.String())
	}
}
