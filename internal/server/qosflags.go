package server

import (
	"fmt"
	"strconv"
	"strings"

	"swarm/internal/wire"
)

// ParseQoSFlags builds a QoSConfig from the swarmd flag grammar.
//
// weights is a comma-separated list of client=weight entries, where
// client is a numeric principal ID or "default":
//
//	-qos-weights "default=1,7=4"
//
// quotas is a comma-separated list of client=byterate[:oprate] entries;
// byterate takes K/M/G suffixes (decimal, bytes per second) and either
// part may be empty to leave that quota unlimited:
//
//	-qos-quota "7=8M:200,9=:50,default=1M"
//
// Entries for the same client across the two flags merge into one class.
func ParseQoSFlags(weights, quotas string) (QoSConfig, error) {
	cfg := QoSConfig{Classes: make(map[wire.ClientID]ClassConfig)}
	// class returns a mutable view of the entry for key ("default" or a
	// numeric client ID).
	update := func(key string, f func(*ClassConfig)) error {
		key = strings.TrimSpace(key)
		if key == "default" {
			f(&cfg.Default)
			return nil
		}
		id, err := strconv.ParseUint(key, 10, 32)
		if err != nil {
			return fmt.Errorf("bad client %q (want a number or \"default\")", key)
		}
		c := cfg.Classes[wire.ClientID(id)]
		f(&c)
		cfg.Classes[wire.ClientID(id)] = c
		return nil
	}

	for _, ent := range splitEntries(weights) {
		key, val, ok := strings.Cut(ent, "=")
		if !ok {
			return cfg, fmt.Errorf("qos-weights: entry %q is not client=weight", ent)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w <= 0 {
			return cfg, fmt.Errorf("qos-weights: bad weight %q for %q", val, key)
		}
		if err := update(key, func(c *ClassConfig) { c.Weight = w }); err != nil {
			return cfg, fmt.Errorf("qos-weights: %w", err)
		}
	}

	for _, ent := range splitEntries(quotas) {
		key, val, ok := strings.Cut(ent, "=")
		if !ok {
			return cfg, fmt.Errorf("qos-quota: entry %q is not client=byterate[:oprate]", ent)
		}
		brate, orate, _ := strings.Cut(val, ":")
		var byteRate, opRate float64
		if s := strings.TrimSpace(brate); s != "" {
			r, err := parseByteRate(s)
			if err != nil {
				return cfg, fmt.Errorf("qos-quota: %q: %w", ent, err)
			}
			byteRate = r
		}
		if s := strings.TrimSpace(orate); s != "" {
			r, err := strconv.ParseFloat(s, 64)
			if err != nil || r <= 0 {
				return cfg, fmt.Errorf("qos-quota: bad op rate %q in %q", orate, ent)
			}
			opRate = r
		}
		if err := update(key, func(c *ClassConfig) {
			c.ByteRate = byteRate
			c.OpRate = opRate
		}); err != nil {
			return cfg, fmt.Errorf("qos-quota: %w", err)
		}
	}
	return cfg, nil
}

// splitEntries splits a comma-separated flag, dropping empty pieces so
// trailing commas and the empty flag parse as zero entries.
func splitEntries(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseByteRate parses "8M", "512K", "1.5G", or a plain byte count into
// bytes per second (decimal units, matching the disk-vendor convention
// used by internal/model's hardware parameters).
func parseByteRate(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1e3, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1e6, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1e9, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad byte rate %q", s)
	}
	return v * mult, nil
}
