package fragio

import (
	"sync"
	"testing"
	"time"

	"swarm/internal/transport"
	"swarm/internal/wire"
)

// Dynamic-membership behavior of the engine: servers can be added and
// removed while gathers, stores, and straggler drains are in flight.

func TestAddServerDuplicateRejected(t *testing.T) {
	a, b := newFakeConn(1), newFakeConn(2)
	e := newEngine(a, b)
	if err := e.AddServer(newFakeConn(1)); err == nil {
		t.Fatal("duplicate ID admitted")
	}
	if err := e.AddServer(newFakeConn(3)); err != nil {
		t.Fatal(err)
	}
	if e.Conn(3) == nil {
		t.Fatal("added server not resolvable")
	}
}

func TestRemoveServerLeavesBroadcastSet(t *testing.T) {
	a, b := newFakeConn(1), newFakeConn(2)
	a.put(fid(1), []byte("x"))
	b.put(fid(1), []byte("x"))
	e := newEngine(a, b)
	e.RemoveServer(2)
	if e.Conn(2) != nil {
		t.Fatal("removed server still resolvable")
	}
	// Discovery must still work through the survivor.
	if _, _, err := e.Locate(fid(1)); err != nil {
		t.Fatal(err)
	}
	// Removing an unknown ID is a no-op, not a panic.
	e.RemoveServer(99)
}

// TestGatherKStragglerVsRemoveServer is the S3 regression test: a
// GatherK returns at quorum while slow members are still fetching, and
// the straggler's server is concurrently removed from the engine. The
// in-flight fetch must complete (or fail) on its captured connection
// without racing the membership change, and later operations against
// the removed ID must degrade gracefully. Run under -race.
func TestGatherKStragglerVsRemoveServer(t *testing.T) {
	const rounds = 20
	for round := 0; round < rounds; round++ {
		var conns []transport.ServerConn
		var members []Member
		payload := []byte("straggler payload")
		for i := 0; i < 4; i++ {
			c := newFakeConn(wire.ServerID(i + 1))
			c.put(fid(uint64(i)), payload)
			if i >= 2 {
				// Members 3 and 4 are stragglers: their fetches are
				// still in flight when the quorum lands.
				c.setLatency(3 * time.Millisecond)
			}
			conns = append(conns, c)
			members = append(members, Member{FID: fid(uint64(i)), Server: c.ID()})
		}
		e := newEngine(conns...)

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			res := e.GatherK(members, 2)
			ok := 0
			for _, r := range res {
				if r.Err == nil {
					ok++
				}
			}
			if ok < 2 {
				t.Errorf("round %d: quorum not reached: %+v", round, res)
			}
		}()
		go func() {
			defer wg.Done()
			// Remove a straggler while its fetch is (likely) in flight.
			e.RemoveServer(4)
		}()
		wg.Wait()

		// The removed ID is gone; operations against it are no-ops or
		// clean errors, never lookups into freed queues.
		if e.Conn(4) != nil {
			t.Fatalf("round %d: removed server still resolvable", round)
		}
		res := e.Gather([]Member{{FID: fid(3), Server: 4}})
		if res[0].Err == nil {
			t.Fatalf("round %d: gather from removed server succeeded", round)
		}
		done := make(chan error, 1)
		e.StoreAsync(conns[3], fid(9), append([]byte(nil), payload...), false, nil,
			func(err error) { done <- err })
		<-done // must complete, not hang on a deleted semaphore
	}
}

// TestGatherVsMembershipChurn hammers gathers against concurrent
// add/remove cycles of a rotating victim server. Run under -race.
func TestGatherVsMembershipChurn(t *testing.T) {
	var conns []transport.ServerConn
	var members []Member
	for i := 0; i < 5; i++ {
		c := newFakeConn(wire.ServerID(i + 1))
		c.put(fid(uint64(i)), []byte("churn"))
		conns = append(conns, c)
		members = append(members, Member{FID: fid(uint64(i)), Server: c.ID()})
	}
	e := newEngine(conns...)

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.RemoveServer(5)
			e.AddServer(conns[4])
		}
	}()
	var gg sync.WaitGroup
	for g := 0; g < 4; g++ {
		gg.Add(1)
		go func() {
			defer gg.Done()
			for i := 0; i < 50; i++ {
				res := e.GatherK(members, 3)
				ok := 0
				for _, r := range res {
					if r.Err == nil {
						ok++
					}
				}
				if ok < 3 {
					t.Errorf("quorum lost during churn: %+v", res)
					return
				}
			}
		}()
	}
	gg.Wait()
	close(stop)
	churn.Wait()
	// Leave the engine with server 5 present for a final full gather.
	e.RemoveServer(5)
	if err := e.AddServer(conns[4]); err != nil {
		t.Fatal(err)
	}
	for i, r := range e.Gather(members) {
		if r.Err != nil {
			t.Fatalf("member %d after churn: %v", i, r.Err)
		}
	}
}
