//go:build race

package bench

// raceEnabled reports that the race detector is compiled in; the
// performance-model shape tests are timing-sensitive and skip themselves
// under its ~10x slowdown.
const raceEnabled = true
