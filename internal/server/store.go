// Package server implements the Swarm storage server: a repository for log
// fragments. Per the paper (§2.3), a storage server is "little more than a
// virtual disk that provides a sparse address space, with additional
// support for client crash recovery, security, and fragment
// reconstruction". Servers never interpret fragment contents, never see
// blocks or records, and never communicate with each other.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"swarm/internal/disk"
	"swarm/internal/wire"
)

// Store errors.
var (
	// ErrNotFound is returned for operations on absent fragments.
	ErrNotFound = errors.New("server: fragment not found")
	// ErrExists is returned when storing an already-stored fragment.
	ErrExists = errors.New("server: fragment already exists")
	// ErrNoSpace is returned when no free slot is available.
	ErrNoSpace = errors.New("server: no free slots")
	// ErrTooLarge is returned when data exceeds the fragment size.
	ErrTooLarge = errors.New("server: data larger than fragment size")
	// ErrBadRange is returned for reads outside the stored fragment.
	ErrBadRange = errors.New("server: read out of range")
	// ErrAccess is returned when an ACL denies the requested access.
	ErrAccess = errors.New("server: access denied")
	// ErrCorruptMeta is returned when on-disk metadata fails validation.
	ErrCorruptMeta = errors.New("server: corrupt on-disk metadata")
)

const (
	superblockSize = 512
	superMagic     = 0x53575342 // "SWSB"
	// aclRegionSize reserves space after the superblock for the
	// persistent ACL database (§2.3.2: "The server maintains a database
	// of ACLs").
	aclRegionSize = 64 << 10
	entrySize     = 256
	entryMagic    = 0x53575345 // "SWSE"
	maxACLRanges  = 14         // fits a 256-byte slot entry

	flagUsed     = 1 << 0
	flagMarked   = 1 << 1
	flagPrealloc = 1 << 2
)

// slotEntry is the persistent per-slot metadata record. One entry is
// rewritten, in a single disk write, to commit or delete a fragment — this
// single write is the store's atomicity point (§2.3.1: "All storage server
// operations are atomic").
type slotEntry struct {
	fid    wire.FID
	size   uint32
	flags  uint16
	ranges []wire.ACLRange
}

func (s *slotEntry) used() bool     { return s.flags&flagUsed != 0 }
func (s *slotEntry) marked() bool   { return s.flags&flagMarked != 0 }
func (s *slotEntry) prealloc() bool { return s.flags&flagPrealloc != 0 }

func (s *slotEntry) encode() []byte {
	buf := make([]byte, entrySize)
	binary.LittleEndian.PutUint32(buf[0:], entryMagic)
	binary.LittleEndian.PutUint64(buf[4:], uint64(s.fid))
	binary.LittleEndian.PutUint32(buf[12:], s.size)
	binary.LittleEndian.PutUint16(buf[16:], s.flags)
	binary.LittleEndian.PutUint16(buf[18:], uint16(len(s.ranges)))
	off := 20
	for _, r := range s.ranges {
		binary.LittleEndian.PutUint32(buf[off:], r.Off)
		binary.LittleEndian.PutUint32(buf[off+4:], r.Len)
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(r.AID))
		off += 12
	}
	binary.LittleEndian.PutUint32(buf[entrySize-4:], crc32.ChecksumIEEE(buf[:entrySize-4]))
	return buf
}

func decodeSlotEntry(buf []byte) (slotEntry, error) {
	var s slotEntry
	if len(buf) != entrySize {
		return s, fmt.Errorf("%w: entry size %d", ErrCorruptMeta, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != entryMagic {
		return s, fmt.Errorf("%w: bad entry magic", ErrCorruptMeta)
	}
	if crc32.ChecksumIEEE(buf[:entrySize-4]) != binary.LittleEndian.Uint32(buf[entrySize-4:]) {
		return s, fmt.Errorf("%w: entry checksum", ErrCorruptMeta)
	}
	s.fid = wire.FID(binary.LittleEndian.Uint64(buf[4:]))
	s.size = binary.LittleEndian.Uint32(buf[12:])
	s.flags = binary.LittleEndian.Uint16(buf[16:])
	n := binary.LittleEndian.Uint16(buf[18:])
	if n > maxACLRanges {
		return s, fmt.Errorf("%w: %d ACL ranges", ErrCorruptMeta, n)
	}
	off := 20
	for i := uint16(0); i < n; i++ {
		s.ranges = append(s.ranges, wire.ACLRange{
			Off: binary.LittleEndian.Uint32(buf[off:]),
			Len: binary.LittleEndian.Uint32(buf[off+4:]),
			AID: wire.AID(binary.LittleEndian.Uint32(buf[off+8:])),
		})
		off += 12
	}
	return s, nil
}

// Config parameterizes a fragment store.
type Config struct {
	// FragmentSize is the fixed fragment slot size in bytes (the paper
	// uses 1 MB). Must be positive.
	FragmentSize int
}

// DefaultFragmentSize matches the paper's prototype.
const DefaultFragmentSize = 1 << 20

// Store is the fragment repository: a slot allocator plus a persistent
// FID→slot map over a Disk. It is safe for concurrent use.
//
// Concurrency model (DESIGN.md §3.10): the mutex guards only the
// in-memory metadata — bySID, slots, free, gen, storing. Fragment data
// writes happen outside any lock (a freshly allocated slot is private to
// its writer until the entry commits), and fsyncs are shared between
// concurrent stores by the sync coalescer.
type Store struct {
	d        disk.Disk
	fragSize int
	numSlots int
	slotsOff int64

	mu      sync.RWMutex
	bySID   map[wire.FID]int           // FID → slot index; guarded by mu
	slots   []slotEntry                // in-memory mirror of the on-disk entries; guarded by mu
	free    []int                      // free slot indices (LIFO); guarded by mu
	gen     []uint64                   // per-slot generation, bumped when a slot is freed; guarded by mu
	storing map[wire.FID]chan struct{} // FIDs with an uncommitted store in flight; guarded by mu

	committer *syncCoalescer  // shared-fsync barrier (data + entry syncs)
	entries   *entryCommitter // batched slot-entry commits

	// serialCommit restores the pre-group-commit write path (one
	// exclusive lock across the data write and both fsyncs). Benchmark
	// and ablation hook only — see SetSerialCommit.
	serialCommit atomic.Bool

	stores      atomic.Int64 // committed fragment stores
	storeNanos  atomic.Int64 // cumulative wall time of committed stores
	serialSyncs atomic.Int64 // private fsyncs issued by the serial baseline path

	// rcache is the serving-tier extent read cache (nil = disabled).
	// Set once by SetReadCache before traffic; see readcache.go.
	rcache    *readCache
	closeOnce sync.Once // guards the readahead worker's stop signal

	// qos is the multi-tenant weighted-fair scheduler (nil = FIFO, the
	// pre-QoS behavior). Set once by SetQoS before traffic; see qos.go.
	qos *qosSched

	acls *ACLDB
}

// Format initializes a disk as an empty fragment store and returns it
// opened. Existing contents are destroyed.
func Format(d disk.Disk, cfg Config) (*Store, error) {
	if cfg.FragmentSize <= 0 {
		cfg.FragmentSize = DefaultFragmentSize
	}
	avail := d.Size() - superblockSize - aclRegionSize
	per := int64(cfg.FragmentSize) + entrySize
	numSlots := int(avail / per)
	if numSlots < 1 {
		return nil, fmt.Errorf("server: disk too small: %d bytes for %d-byte fragments", d.Size(), cfg.FragmentSize)
	}
	sb := make([]byte, superblockSize)
	binary.LittleEndian.PutUint32(sb[0:], superMagic)
	binary.LittleEndian.PutUint32(sb[4:], 1) // version
	binary.LittleEndian.PutUint32(sb[8:], uint32(cfg.FragmentSize))
	binary.LittleEndian.PutUint32(sb[12:], uint32(numSlots))
	binary.LittleEndian.PutUint32(sb[superblockSize-4:], crc32.ChecksumIEEE(sb[:superblockSize-4]))
	if err := d.WriteAt(sb, 0); err != nil {
		return nil, fmt.Errorf("write superblock: %w", err)
	}
	// Zero the ACL region and the entry table so no stale state
	// survives the format.
	if err := d.WriteAt(make([]byte, aclRegionSize), superblockSize); err != nil {
		return nil, fmt.Errorf("zero ACL region: %w", err)
	}
	zero := make([]byte, entrySize)
	for i := 0; i < numSlots; i++ {
		if err := d.WriteAt(zero, entryTableOff+int64(i)*entrySize); err != nil {
			return nil, fmt.Errorf("zero slot entry %d: %w", i, err)
		}
	}
	if err := d.Sync(); err != nil {
		return nil, fmt.Errorf("sync format: %w", err)
	}
	return Open(d)
}

// Open loads an existing fragment store from a formatted disk, rebuilding
// the in-memory maps from the persistent slot entries.
func Open(d disk.Disk) (*Store, error) {
	sb := make([]byte, superblockSize)
	if err := d.ReadAt(sb, 0); err != nil {
		return nil, fmt.Errorf("read superblock: %w", err)
	}
	if binary.LittleEndian.Uint32(sb[0:]) != superMagic {
		return nil, fmt.Errorf("%w: bad superblock magic", ErrCorruptMeta)
	}
	if crc32.ChecksumIEEE(sb[:superblockSize-4]) != binary.LittleEndian.Uint32(sb[superblockSize-4:]) {
		return nil, fmt.Errorf("%w: superblock checksum", ErrCorruptMeta)
	}
	fragSize := int(binary.LittleEndian.Uint32(sb[8:]))
	numSlots := int(binary.LittleEndian.Uint32(sb[12:]))
	s := &Store{
		d:        d,
		fragSize: fragSize,
		numSlots: numSlots,
		slotsOff: entryTableOff + int64(numSlots)*entrySize,
		bySID:    make(map[wire.FID]int),
		slots:    make([]slotEntry, numSlots),
		gen:      make([]uint64, numSlots),
		storing:  make(map[wire.FID]chan struct{}),
		acls:     NewACLDB(),
	}
	s.committer = newSyncCoalescer(d)
	s.entries = newEntryCommitter(d, s.committer)
	if err := s.loadACLs(); err != nil {
		return nil, err
	}
	s.acls.onChange = s.persistACLs
	buf := make([]byte, entrySize)
	for i := 0; i < numSlots; i++ {
		if err := d.ReadAt(buf, entryTableOff+int64(i)*entrySize); err != nil {
			return nil, fmt.Errorf("read slot entry %d: %w", i, err)
		}
		if binary.LittleEndian.Uint32(buf[0:]) != entryMagic {
			// Never written or cleared: a free slot.
			s.free = append(s.free, i)
			continue
		}
		ent, err := decodeSlotEntry(buf)
		if err != nil {
			// A torn entry write means the commit never happened;
			// treat the slot as free (the atomicity contract).
			s.free = append(s.free, i)
			continue
		}
		if !ent.used() {
			s.free = append(s.free, i)
			continue
		}
		s.slots[i] = ent
		s.bySID[ent.fid] = i
	}
	// Hand out low slots first for deterministic layouts.
	sort.Sort(sort.Reverse(sort.IntSlice(s.free)))
	return s, nil
}

// FragmentSize returns the slot size in bytes.
func (s *Store) FragmentSize() int { return s.fragSize }

// ACLs returns the server's ACL database.
func (s *Store) ACLs() *ACLDB { return s.acls }

// entryTableOff is where the slot-entry table begins.
const entryTableOff = superblockSize + aclRegionSize

const aclMagic = 0x53574143 // "SWAC"

// persistACLs writes the ACL database into its reserved region. Called
// from the database's onChange hook (db.mu held).
func (s *Store) persistACLs() error {
	img := s.acls.encodeLocked()
	if len(img)+12 > aclRegionSize {
		return fmt.Errorf("server: ACL database (%d bytes) exceeds reserved region", len(img))
	}
	buf := make([]byte, 12+len(img))
	binary.LittleEndian.PutUint32(buf[0:], aclMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(img)))
	copy(buf[12:], img)
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(img))
	if err := s.d.WriteAt(buf, superblockSize); err != nil {
		return fmt.Errorf("write ACL region: %w", err)
	}
	// The ACL barrier shares fsyncs with concurrent fragment commits.
	return s.committer.Sync()
}

// loadACLs restores the ACL database from disk (a zeroed region means an
// empty database; a torn write is treated the same, since ACL updates
// re-persist on the next change).
func (s *Store) loadACLs() error {
	hdr := make([]byte, 12)
	if err := s.d.ReadAt(hdr, superblockSize); err != nil {
		return fmt.Errorf("read ACL region: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != aclMagic {
		return nil // never written
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if int(n) > aclRegionSize-12 {
		return nil
	}
	img := make([]byte, n)
	if err := s.d.ReadAt(img, superblockSize+12); err != nil {
		return fmt.Errorf("read ACL database: %w", err)
	}
	if crc32.ChecksumIEEE(img) != binary.LittleEndian.Uint32(hdr[8:]) {
		return nil // torn write: start empty rather than refuse to boot
	}
	return s.acls.decodeInto(img)
}

func (s *Store) entryOff(slot int) int64 { return entryTableOff + int64(slot)*entrySize }
func (s *Store) slotOff(slot int) int64  { return s.slotsOff + int64(slot)*int64(s.fragSize) }

// writeEntry durably rewrites one slot entry and mirrors it in memory.
// The write goes through the batched entry committer (which never takes
// s.mu, so callers may hold it while waiting on a shared batch); in
// serial-commit mode it issues its own write and fsync like the
// pre-group-commit store did. Callers hold s.mu. swarmlint:locked
func (s *Store) writeEntry(slot int, ent slotEntry) error {
	if s.serialCommit.Load() {
		if err := s.d.WriteAt(ent.encode(), s.entryOff(slot)); err != nil {
			return fmt.Errorf("write slot entry: %w", err)
		}
		if err := s.d.Sync(); err != nil {
			return fmt.Errorf("sync slot entry: %w", err)
		}
	} else if err := s.entries.commit(s.entryOff(slot), ent.encode()); err != nil {
		return fmt.Errorf("write slot entry: %w", err)
	}
	s.slots[slot] = ent
	return nil
}

// waitStoring blocks while an uncommitted store of fid is in flight, so
// metadata operations observe only committed states of that FID. Called
// with s.mu held; returns with it held.
func (s *Store) waitStoring(fid wire.FID) {
	for {
		ch, ok := s.storing[fid]
		if !ok {
			return
		}
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
}

// Store writes a complete fragment. The data is written to a free slot and
// synced before the slot entry commits it, so a crash leaves either the
// whole fragment or nothing. mark flags the fragment for LastMarked.
//
// The mutex covers only slot allocation and the commit of the in-memory
// maps; the data write runs unlocked (the slot is private until the
// entry commits) and both fsyncs are group-committed, so concurrent
// stores share barriers instead of convoying on the lock.
func (s *Store) Store(fid wire.FID, data []byte, mark bool, ranges []wire.ACLRange) error {
	if len(data) > s.fragSize {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(data), s.fragSize)
	}
	if len(ranges) > maxACLRanges {
		return fmt.Errorf("server: too many ACL ranges: %d > %d", len(ranges), maxACLRanges)
	}
	if s.serialCommit.Load() {
		return s.storeSerial(fid, data, mark, ranges)
	}
	start := time.Now()

	s.mu.Lock()
	s.waitStoring(fid)
	slot, preallocated := s.bySID[fid]
	if preallocated {
		if !s.slots[slot].prealloc() {
			s.mu.Unlock()
			return fmt.Errorf("%w: %v", ErrExists, fid)
		}
	} else {
		if len(s.free) == 0 {
			s.mu.Unlock()
			return ErrNoSpace
		}
		slot = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
	}
	inflight := make(chan struct{})
	s.storing[fid] = inflight
	s.mu.Unlock()

	// On failure the slot returns to the free list (or stays a bare
	// prealloc reservation) and waiters on this FID re-evaluate.
	fail := func(err error) error {
		s.mu.Lock()
		if !preallocated {
			s.free = append(s.free, slot)
		}
		delete(s.storing, fid)
		s.mu.Unlock()
		close(inflight)
		return err
	}
	if err := s.d.WriteAt(data, s.slotOff(slot)); err != nil {
		return fail(fmt.Errorf("write fragment data: %w", err))
	}
	// Data barrier: the fragment bytes must be durable before the entry
	// that makes them reachable. One coalesced fsync covers every store
	// whose write preceded it.
	if err := s.committer.Sync(); err != nil {
		return fail(fmt.Errorf("sync fragment data: %w", err))
	}
	flags := uint16(flagUsed)
	if mark {
		flags |= flagMarked
	}
	ent := slotEntry{fid: fid, size: uint32(len(data)), flags: flags, ranges: ranges}
	if err := s.entries.commit(s.entryOff(slot), ent.encode()); err != nil {
		return fail(fmt.Errorf("write slot entry: %w", err))
	}
	s.mu.Lock()
	s.slots[slot] = ent
	s.bySID[fid] = slot
	delete(s.storing, fid)
	s.mu.Unlock()
	close(inflight)
	s.stores.Add(1)
	s.storeNanos.Add(int64(time.Since(start)))
	return nil
}

// storeSerial is the pre-group-commit write path: one exclusive lock
// across the data write and two private fsyncs. Kept as the measured
// baseline for the servercommit benchmark (SetSerialCommit); holding
// s.mu across the disk I/O is the very behavior the baseline measures.
// swarmlint:locked-io
func (s *Store) storeSerial(fid wire.FID, data []byte, mark bool, ranges []wire.ACLRange) error {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, preallocated := s.bySID[fid]
	if preallocated {
		if !s.slots[slot].prealloc() {
			return fmt.Errorf("%w: %v", ErrExists, fid)
		}
	} else {
		if len(s.free) == 0 {
			return ErrNoSpace
		}
		slot = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
	}
	rollback := func() {
		if !preallocated {
			s.free = append(s.free, slot)
		}
	}
	if err := s.d.WriteAt(data, s.slotOff(slot)); err != nil {
		rollback()
		return fmt.Errorf("write fragment data: %w", err)
	}
	if err := s.d.Sync(); err != nil {
		rollback()
		return fmt.Errorf("sync fragment data: %w", err)
	}
	flags := uint16(flagUsed)
	if mark {
		flags |= flagMarked
	}
	ent := slotEntry{fid: fid, size: uint32(len(data)), flags: flags, ranges: ranges}
	if err := s.writeEntry(slot, ent); err != nil {
		rollback()
		return err
	}
	s.bySID[fid] = slot
	s.serialSyncs.Add(2)
	s.stores.Add(1)
	s.storeNanos.Add(int64(time.Since(start)))
	return nil
}

// SetSerialCommit switches between the group-committed write path
// (default, false) and the serial baseline that holds one exclusive lock
// across the data write and both fsyncs. Benchmark/ablation hook only;
// switch while no stores are in flight.
func (s *Store) SetSerialCommit(on bool) { s.serialCommit.Store(on) }

// SetCommitDelay sets the group-commit coalescing window: how long a
// sync-batch leader waits for followers before issuing its fsync. Zero
// (the default) coalesces only naturally — writers arriving while a sync
// is in flight batch behind it. A small window (tens to hundreds of
// microseconds) trades single-store latency for fewer, larger fsyncs
// under concurrent load.
func (s *Store) SetCommitDelay(d time.Duration) { s.committer.setWindow(d) }

// checkAccess verifies client may touch [off,off+n) of the entry's data.
// Unprotected ranges (no AID assigned) are open to everyone.
func (s *Store) checkAccess(ent *slotEntry, client wire.ClientID, off, n uint32) error {
	for _, r := range ent.ranges {
		if off+n <= r.Off || off >= r.End() {
			continue // no overlap
		}
		if !s.acls.Allowed(r.AID, client) {
			return fmt.Errorf("%w: client %d, aid %d", ErrAccess, client, r.AID)
		}
	}
	return nil
}

// Read returns n bytes at off within fragment fid, enforcing ACLs for the
// requesting client.
func (s *Store) Read(client wire.ClientID, fid wire.FID, off, n uint32) ([]byte, error) {
	for {
		s.mu.RLock()
		slot, ok := s.bySID[fid]
		if !ok || s.slots[slot].prealloc() {
			s.mu.RUnlock()
			return nil, fmt.Errorf("%w: %v", ErrNotFound, fid)
		}
		ent := s.slots[slot]
		if off+n > ent.size || off+n < off {
			s.mu.RUnlock()
			return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrBadRange, off, off+n, ent.size)
		}
		if err := s.checkAccess(&ent, client, off, n); err != nil {
			s.mu.RUnlock()
			return nil, err
		}
		gen := s.gen[slot]
		dataOff := s.slotOff(slot) + int64(off)
		s.mu.RUnlock()

		// Pooled: the TCP server recycles the buffer once the response frame
		// is written; other callers let it escape to the GC harmlessly.
		buf := wire.GetBuffer(int(n))
		if err := s.d.ReadAt(buf, dataOff); err != nil {
			wire.PutBuffer(buf)
			return nil, fmt.Errorf("read fragment data: %w", err)
		}
		// The lock is dropped during the disk read, so a concurrent
		// Delete + Store may have recycled the slot for another fragment
		// mid-read and handed us its bytes. The generation counter
		// (bumped whenever a slot is freed) detects that; discard the
		// read and retry against the new state — which usually reports
		// the FID gone.
		s.mu.RLock()
		cur, ok := s.bySID[fid]
		valid := ok && cur == slot && s.gen[slot] == gen
		s.mu.RUnlock()
		if valid {
			return buf, nil
		}
		wire.PutBuffer(buf)
	}
}

// Delete removes a fragment and frees its slot. Deleting requires write
// access to every protected range of the fragment.
func (s *Store) Delete(client wire.ClientID, fid wire.FID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waitStoring(fid)
	slot, ok := s.bySID[fid]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotFound, fid)
	}
	ent := s.slots[slot]
	if err := s.checkAccess(&ent, client, 0, ent.size); err != nil {
		return err
	}
	if err := s.writeEntry(slot, slotEntry{}); err != nil {
		return err
	}
	delete(s.bySID, fid)
	s.gen[slot]++ // invalidate in-flight lockless reads of this slot
	s.free = append(s.free, slot)
	// The generation bump already fences the read cache; dropping the
	// entry eagerly just frees its memory sooner.
	if rc := s.rcache; rc != nil {
		rc.invalidate(fid)
	}
	return nil
}

// Prealloc reserves a slot for fid without storing data, guaranteeing a
// later Store cannot fail for lack of space.
func (s *Store) Prealloc(fid wire.FID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waitStoring(fid)
	if _, ok := s.bySID[fid]; ok {
		return fmt.Errorf("%w: %v", ErrExists, fid)
	}
	if len(s.free) == 0 {
		return ErrNoSpace
	}
	slot := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	ent := slotEntry{fid: fid, flags: flagUsed | flagPrealloc}
	if err := s.writeEntry(slot, ent); err != nil {
		s.free = append(s.free, slot)
		return err
	}
	s.bySID[fid] = slot
	return nil
}

// LastMarked returns the marked fragment with the highest sequence number
// owned by client, per §2.3.1: clients find their checkpoints by storing
// them in marked fragments and querying for the newest.
func (s *Store) LastMarked(client wire.ClientID) (wire.FID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best wire.FID
	found := false
	for fid, slot := range s.bySID {
		ent := &s.slots[slot]
		if !ent.marked() || ent.prealloc() || fid.Client() != client {
			continue
		}
		if !found || fid.Seq() > best.Seq() {
			best, found = fid, true
		}
	}
	return best, found
}

// Has reports whether fid is stored (preallocated slots don't count) and
// its size.
func (s *Store) Has(fid wire.FID) (uint32, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	slot, ok := s.bySID[fid]
	if !ok || s.slots[slot].prealloc() {
		return 0, false
	}
	return s.slots[slot].size, true
}

// List returns all stored FIDs for client (client 0 lists everything),
// sorted ascending.
func (s *Store) List(client wire.ClientID) []wire.FID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]wire.FID, 0, len(s.bySID))
	for fid, slot := range s.bySID {
		if s.slots[slot].prealloc() {
			continue
		}
		if client != 0 && fid.Client() != client {
			continue
		}
		out = append(out, fid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats describes store occupancy and commit-path activity.
type Stats struct {
	FragmentSize int
	TotalSlots   int
	FreeSlots    int
	Fragments    int

	// Commit-path counters, cumulative since open.
	Stores         int64 // committed fragment stores
	SyncRequests   int64 // logical sync barriers requested by the commit path
	Syncs          int64 // physical d.Sync calls issued for them
	EntryBatches   int64 // batched slot-entry commit rounds
	EntriesBatched int64 // slot entries written across those rounds
	StoreNanos     int64 // cumulative wall time of committed stores

	// Read-path counters (all zero while the serving-tier extent cache
	// is disabled), cumulative since open.
	ReadHits        int64 // reads served from the extent cache
	ReadMisses      int64 // reads that had to fill from disk
	ReadaheadLoads  int64 // extents prefetched by the readahead worker
	ReadBytesCached int64 // payload bytes served zero-copy from cache
	ReadBytesDisk   int64 // bytes read from disk to fill extents
	ReadCacheBytes  int64 // current extent cache occupancy

	// Per-tenant QoS accounting (empty while the fair scheduler is
	// disabled), one entry per principal seen, ascending client order.
	Tenants []TenantStat
}

// ReadHitRate is the fraction of cached-path reads served from memory.
func (st Stats) ReadHitRate() float64 {
	total := st.ReadHits + st.ReadMisses
	if total == 0 {
		return 0
	}
	return float64(st.ReadHits) / float64(total)
}

// CoalescedSyncs is how many sync barriers were satisfied by another
// waiter's fsync instead of issuing their own.
func (st Stats) CoalescedSyncs() int64 { return st.SyncRequests - st.Syncs }

// SyncsPerStore is the physical fsyncs paid per committed fragment
// (2.0 for the serial path; < 1 under effective group commit).
func (st Stats) SyncsPerStore() float64 {
	if st.Stores == 0 {
		return 0
	}
	return float64(st.Syncs) / float64(st.Stores)
}

// MeanSyncBatch is the mean number of barriers one physical fsync
// satisfied.
func (st Stats) MeanSyncBatch() float64 {
	if st.Syncs == 0 {
		return 0
	}
	return float64(st.SyncRequests) / float64(st.Syncs)
}

// MeanEntryBatch is the mean slot entries committed per batch round.
func (st Stats) MeanEntryBatch() float64 {
	if st.EntryBatches == 0 {
		return 0
	}
	return float64(st.EntriesBatched) / float64(st.EntryBatches)
}

// AvgStoreLatency is the mean wall time of a committed store.
func (st Stats) AvgStoreLatency() time.Duration {
	if st.Stores == 0 {
		return 0
	}
	return time.Duration(st.StoreNanos / st.Stores)
}

// Stats returns current occupancy and commit-path counters.
func (s *Store) Stats() Stats {
	req, syncs := s.committer.counters()
	batches, entries := s.entries.counters()
	serial := s.serialSyncs.Load()
	s.mu.RLock()
	st := Stats{
		FragmentSize: s.fragSize,
		TotalSlots:   s.numSlots,
		FreeSlots:    len(s.free),
		Fragments:    len(s.bySID),
		// Serial-path fsyncs are their own barrier: one request, one sync.
		Stores:         s.stores.Load(),
		SyncRequests:   req + serial,
		Syncs:          syncs + serial,
		EntryBatches:   batches,
		EntriesBatched: entries,
		StoreNanos:     s.storeNanos.Load(),
	}
	s.mu.RUnlock()
	if rc := s.rcache; rc != nil {
		st.ReadHits = rc.hits.Load()
		st.ReadMisses = rc.misses.Load()
		st.ReadaheadLoads = rc.raLoads.Load()
		st.ReadBytesCached = rc.bytesCached.Load()
		st.ReadBytesDisk = rc.bytesDisk.Load()
		st.ReadCacheBytes = rc.curBytes()
	}
	if q := s.qos; q != nil {
		st.Tenants = q.TenantStats()
	}
	return st
}

// SetQoS installs the multi-tenant weighted-fair scheduler (DESIGN.md
// §3.14): data-plane requests through Handle are classified by principal,
// scheduled by deficit round robin over byte-weighted costs, charged
// against per-class quotas, and shed with StatusBusy past the admission
// bounds. Call once before serving traffic; a nil receiver-field (the
// default) keeps the pre-QoS FIFO behavior exactly.
func (s *Store) SetQoS(cfg QoSConfig) {
	s.qos = newQoSSched(cfg)
}
