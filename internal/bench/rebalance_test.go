package bench

import (
	"strings"
	"testing"
	"time"
)

// The drain benchmark is latency-injection-dominated, so a small
// configuration is cheap enough for the smoke suite even under -race.
func TestRebalanceSmoke(t *testing.T) {
	r, err := RunRebalanceBench(RebalanceConfig{
		Servers: 6, Blocks: 48, BlockSize: 1024, Latency: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Moved == 0 {
		t.Fatal("drain moved nothing")
	}
	if r.SteadyMBps <= 0 || r.DrainMBps <= 0 {
		t.Fatalf("degenerate throughput: %+v", r)
	}
	// The acceptance bar: foreground appends keep at least half their
	// steady-state throughput while the rebalancer runs.
	if r.Ratio < 0.5 {
		t.Fatalf("drain throughput ratio %.2f < 0.5 (steady %.2f MB/s, draining %.2f MB/s)",
			r.Ratio, r.SteadyMBps, r.DrainMBps)
	}
	// Join + drain each close the current stripe and bump the epoch.
	if r.FinalEpoch != 2 {
		t.Fatalf("final epoch %d, want 2", r.FinalEpoch)
	}

	var sb strings.Builder
	PrintRebalanceResult(&sb, r)
	if !strings.Contains(sb.String(), "ratio") {
		t.Fatalf("unexpected table: %q", sb.String())
	}
}
