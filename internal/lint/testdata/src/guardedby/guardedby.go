// Package guardedby is a swarmlint test fixture: each function
// exercises one guardedby-analyzer behavior, with expected diagnostics
// declared in want comments.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // unguarded on purpose
}

func (c *counter) bad() int {
	return c.n // want "guarded by mu"
}

func (c *counter) badWrite() {
	c.n = 7 // want "guarded by mu"
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) goodPlainUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// goodAnnotated is called with c.mu held. swarmlint:locked
func (c *counter) goodAnnotated() int { return c.n }

// goodSuffixLocked follows the xxxLocked caller-holds convention.
func (c *counter) goodSuffixLocked() { c.n++ }

func newCounter() *counter {
	// Unpublished value under construction: no lock needed.
	c := &counter{}
	c.n = 1
	return c
}

func (c *counter) unguardedField() int { return c.m }

type wrapper struct {
	inner counter
}

func (w *wrapper) badThroughWrapper() int {
	return w.inner.n // want "guarded by mu"
}

func (w *wrapper) goodThroughWrapper() int {
	w.inner.mu.Lock()
	defer w.inner.mu.Unlock()
	return w.inner.n
}
