// Package refcount is a swarmlint test fixture: each function
// exercises one refcount-analyzer behavior, with expected diagnostics
// declared in want comments.
package refcount

import "sync/atomic"

// Extent stands in for server.Extent: a refcounted object whose
// lifetime is its counter.
type Extent struct {
	refs atomic.Int32
	buf  []byte
}

// Release drops one reference.
func (e *Extent) Release() { e.refs.Add(-1) }

// get hands the caller a counted reference to a new extent.
// swarmlint:returns-ref
func get() *Extent {
	e := &Extent{}
	e.refs.Add(1)
	return e
}

// getErr is the two-result accessor convention: on error, no reference
// is handed out.
// swarmlint:returns-ref
func getErr(fail bool) (*Extent, error) {
	if fail {
		return nil, errFixture
	}
	return get(), nil
}

type fixtureErr struct{}

func (fixtureErr) Error() string { return "fixture" }

var errFixture error = fixtureErr{}

func releasesOnAllPaths(c bool) {
	e := get()
	if c {
		e.Release()
		return
	}
	e.Release()
}

func leaksOnEarlyReturn(c bool) {
	e := get() // want "not released"
	if c {
		return
	}
	e.Release()
}

func partialRelease(c bool) {
	e := get() // want "not released on every path"
	if c {
		e.Release()
	}
}

func deferredRelease(c bool) {
	e := get()
	defer e.Release()
	if c {
		return
	}
}

func escapeByReturn() *Extent {
	e := get()
	return e // the caller inherits the obligation
}

func nilChecked() {
	e := get()
	if e == nil {
		return // nil result: nothing was acquired
	}
	e.Release()
}

func errBuddy(fail bool) error {
	e, err := getErr(fail)
	if err != nil {
		return err // error: no reference was handed out
	}
	e.Release()
	return nil
}

func manualPinLeaks(e *Extent) {
	e.refs.Add(1) // want "not released"
}

func manualPinReleased(e *Extent) {
	e.refs.Add(1)
	e.Release()
}

// lruEntry stands in for container/list.Element.
type lruEntry struct{ Value any }

type store struct {
	index map[int]*lruEntry
}

// removeLeak unlinks the entry but drops the container's reference on
// the floor.
func (s *store) removeLeak(k int) {
	el := s.index[k]
	e := el.Value.(*Extent) // want "not released"
	delete(s.index, k)
	_ = e
}

// removeClean releases what it unlinks.
func (s *store) removeClean(k int) {
	el := s.index[k]
	e := el.Value.(*Extent)
	delete(s.index, k)
	e.Release()
}

// lookupOnly never removes anything, so extracting the value is a
// borrow, not an acquisition.
func (s *store) lookupOnly(k int) int {
	el := s.index[k]
	e := el.Value.(*Extent)
	return len(e.buf)
}

// consume takes ownership of its argument.
func consume(e *Extent) { e.Release() }

func handoffToCall() {
	e := get()
	consume(e) // same-package transfer discharges the obligation
}

func handoffToGoroutine() {
	e := get()
	go func() { e.Release() }()
}

// holder's reference has a release hook, satisfying the field audit.
type holder struct {
	ext *Extent
}

func (h *holder) drop() { h.ext.Release() }

func wrapInHolder() *holder {
	e := get()
	return &holder{ext: e} // escape into a composite literal
}

// leakyHolder has no release hook anywhere in the package.
type leakyHolder struct {
	ext2 *Extent // want "no method in this package releases it"
}

// annotatedHolder documents its out-of-band lifecycle.
type annotatedHolder struct {
	// swarmlint:refcount-ok — released by the frame writer after splice
	ext3 *Extent
}

func annotatedAcquire() {
	e := get() // swarmlint:refcount-ok (lifetime owned by the test harness)
	_ = e
}
