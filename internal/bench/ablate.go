package bench

import (
	"errors"
	"fmt"
	"time"

	"swarm/internal/core"
	"swarm/internal/model"
	"swarm/internal/transport"
)

// AblationResult is one row of an ablation table.
type AblationResult struct {
	Name       string
	RawMBps    float64
	UsefulMBps float64
}

// RunParityAblation measures the cost of computed redundancy: useful
// bandwidth at 4 servers with and without parity (DESIGN.md ablation:
// parity is the price of tolerating a server failure).
func RunParityAblation(blocks int, scale float64) ([]AblationResult, error) {
	var out []AblationResult
	for _, parityOff := range []bool{false, true} {
		cfg := WriteConfig{
			Clients:       1,
			Servers:       4,
			Blocks:        blocks,
			Scale:         scale,
			DisableParity: parityOff,
		}
		r, err := RunWritePoint(cfg)
		if err != nil {
			return out, err
		}
		name := "parity on (width 4: 3 data + 1 parity)"
		if parityOff {
			name = "parity off (width 4: 4 data)"
		}
		out = append(out, AblationResult{Name: name, RawMBps: r.RawMBps, UsefulMBps: r.UsefulMBps})
	}
	return out, nil
}

// RunFragmentSizeAblation sweeps the fragment size (the paper fixes
// 1 MB). The server-bound configuration (two clients sharing one server)
// exposes both sides of the tradeoff: small fragments pay a disk seek per
// store, oversized fragments stall the write pipeline.
func RunFragmentSizeAblation(blocks int, scale float64) ([]AblationResult, error) {
	var out []AblationResult
	for _, fragSize := range []int{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20} {
		cfg := WriteConfig{
			Clients:      2,
			Servers:      1,
			Blocks:       blocks,
			Scale:        scale,
			FragmentSize: fragSize,
		}
		r, err := RunWritePoint(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, AblationResult{
			Name:       fmt.Sprintf("fragment size %d KB", fragSize>>10),
			RawMBps:    r.RawMBps,
			UsefulMBps: r.UsefulMBps,
		})
	}
	return out, nil
}

// RunPipelineAblation sweeps the per-server pipeline depth (the paper's
// flow control keeps "both the disk and the network busy" with depth 2).
// The single-server configuration makes the server the bottleneck, where
// the network/disk overlap actually shows; with many servers the client
// CPU hides it.
func RunPipelineAblation(blocks int, scale float64) ([]AblationResult, error) {
	var out []AblationResult
	for _, depth := range []int{1, 2, 4} {
		cfg := WriteConfig{
			Clients:       1,
			Servers:       1,
			Blocks:        blocks,
			Scale:         scale,
			PipelineDepth: depth,
		}
		r, err := RunWritePoint(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, AblationResult{
			Name:       fmt.Sprintf("pipeline depth %d", depth),
			RawMBps:    r.RawMBps,
			UsefulMBps: r.UsefulMBps,
		})
	}
	return out, nil
}

// DegradedReadResult compares first-touch read latency with all servers
// up against reads that must reconstruct a fragment from its stripe.
// (Throughput barely degrades: a reconstruction bulk-reads the surviving
// fragments once and then serves every block of the rebuilt fragment
// from memory, so the cost shows in first-touch latency, not bandwidth.)
type DegradedReadResult struct {
	// HealthyLatency is the mean 1999-normalized time to read the first
	// block of a fragment from a live server.
	HealthyLatency time.Duration
	// DegradedLatency is the same with the fragment's server down: the
	// read triggers a full stripe reconstruction.
	DegradedLatency time.Duration
	// Reconstructions counts how many fragments were rebuilt.
	Reconstructions int64
	Servers         int
}

// RunDegradedReadAblation measures reconstruction cost (§2.3.3): the
// first block of each fragment is read cold, with all servers up and
// with one server down. blocks sizes the written log.
func RunDegradedReadAblation(blocks int, scale float64) (DegradedReadResult, error) {
	const servers = 4
	params := model.Paper1999().Scaled(scale)
	cluster, err := NewSimCluster(ClusterConfig{
		Servers:   servers,
		DiskBytes: 256 << 20,
		Params:    params,
	})
	if err != nil {
		return DegradedReadResult{}, err
	}
	writeEnv := cluster.Client(1)
	wlog, _, err := core.Open(core.Config{
		Client:       1,
		Servers:      writeEnv.Conns,
		CPU:          writeEnv.CPU,
		FragOverhead: params.ClientFragOverhead,
	})
	if err != nil {
		return DegradedReadResult{}, err
	}
	blockData := make([]byte, 4096)
	addrs := make([]core.BlockAddr, 0, blocks)
	for i := 0; i < blocks; i++ {
		addr, err := wlog.AppendBlock(7, blockData, nil)
		if err != nil {
			return DegradedReadResult{}, err
		}
		addrs = append(addrs, addr)
	}
	if err := wlog.Close(); err != nil {
		return DegradedReadResult{}, err
	}
	// One representative (first-seen) block address per fragment.
	perFrag := make(map[uint64]core.BlockAddr)
	var order []core.BlockAddr
	for _, a := range addrs {
		if _, ok := perFrag[a.FID.Seq()]; !ok {
			perFrag[a.FID.Seq()] = a
			order = append(order, a)
		}
	}

	// measure opens a fresh log (cold caches) and reads one block per
	// fragment, optionally with one server down.
	measure := func(down bool) (time.Duration, int64, error) {
		env := cluster.Client(1)
		flakies := make([]*transport.Flaky, len(env.Conns))
		conns := make([]transport.ServerConn, len(env.Conns))
		for i, c := range env.Conns {
			flakies[i] = transport.NewFlaky(c)
			conns[i] = flakies[i]
		}
		log, _, err := core.Open(core.Config{
			Client:       1,
			Servers:      conns,
			CPU:          env.CPU,
			FragOverhead: params.ClientFragOverhead,
		})
		if err != nil {
			return 0, 0, err
		}
		if down {
			flakies[0].SetDown(true)
		}
		var total time.Duration
		n := 0
		for _, a := range order {
			start := time.Now()
			if _, err := log.Read(a, 0, 4096); err != nil {
				if down && errors.Is(err, core.ErrLost) {
					continue // stripe entirely on the dead server
				}
				return 0, 0, err
			}
			total += time.Since(start)
			n++
		}
		recon := log.Stats().Reconstructions
		if n == 0 {
			return 0, recon, nil
		}
		return time.Duration(float64(total) / float64(n) * scale), recon, nil
	}

	healthy, _, err := measure(false)
	if err != nil {
		return DegradedReadResult{}, err
	}
	degraded, recon, err := measure(true)
	if err != nil {
		return DegradedReadResult{}, err
	}
	return DegradedReadResult{
		HealthyLatency:  healthy,
		DegradedLatency: degraded,
		Reconstructions: recon,
		Servers:         servers,
	}, nil
}
