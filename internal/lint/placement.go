package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Placement flags direct indexing into server-connection slices
// ([]transport.ServerConn) in data-path packages. After the versioned
// placement map refactor (DESIGN.md §3.12), "which server holds stripe
// s, slot i" is an epoch-dependent question that only
// placement.Map/View can answer; positional indexing into a conns
// slice silently re-encodes the fixed-cluster assumption the refactor
// removed, and goes stale the first time a server joins or drains.
// Enumerating connections (range) is fine — it names no slot — and
// construction code in harnesses, benchmarks, and CLIs builds its
// slices before a log exists, so only the packages that resolve
// placement at runtime are checked.
//
// Escape hatch: a statement annotated swarmlint:placement-ok asserts
// the index is not a placement decision (e.g. picking an arbitrary
// connection for a broadcast probe).
type Placement struct {
	check map[string]bool
}

// DirectivePlacementOK on a statement asserts an index into a server
// slice is not a placement decision.
const DirectivePlacementOK = "swarmlint:placement-ok"

// NewPlacement returns the placement-indexing analyzer; only packages
// whose import paths appear in check are analyzed.
func NewPlacement(check []string) *Placement {
	m := make(map[string]bool, len(check))
	for _, s := range check {
		m[s] = true
	}
	return &Placement{check: m}
}

// Name implements Analyzer.
func (*Placement) Name() string { return "placement" }

// Doc implements Analyzer.
func (*Placement) Doc() string {
	return "no direct indexing into server-connection slices outside internal/placement"
}

// Run implements Analyzer.
func (pl *Placement) Run(p *Package) []Diagnostic {
	if !pl.check[p.Path] {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ix, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			if !isServerConnSlice(p.Info.TypeOf(ix.X)) {
				return true
			}
			if p.Annotations().onLine(ix.Pos(), DirectivePlacementOK) {
				return true
			}
			out = append(out, Diagnostic{
				Pos: p.Fset.Position(ix.Pos()),
				Message: fmt.Sprintf("direct index into a server-connection slice: placement is epoch-dependent, "+
					"resolve the server through placement.Map/View (or annotate with %s)", DirectivePlacementOK),
				Analyzer: pl.Name(),
			})
			return true
		})
	}
	return out
}

// isServerConnSlice reports whether t is (or is named as) a slice of
// transport.ServerConn.
func isServerConnSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != "ServerConn" || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), "internal/transport")
}
