package bench

import (
	"fmt"
	"time"

	"swarm/internal/core"
	"swarm/internal/disk"
	"swarm/internal/extfs"
	"swarm/internal/mab"
	"swarm/internal/model"
	"swarm/internal/service"
	"swarm/internal/sting"
)

// MABConfig parameterizes the Figure 5 comparison.
type MABConfig struct {
	// Scale speeds up the emulated hardware (results normalized back).
	Scale float64
	// Workload overrides the MAB tree shape (zero values take defaults).
	Workload mab.Config
	// BlockSize for both file systems. Default 4096.
	BlockSize int
}

// MABResult is one file system's Figure 5 outcome.
type MABResult struct {
	System         string
	Elapsed        time.Duration // normalized
	CPUUtilization float64
	Phases         [6]time.Duration // normalized
	Files          int
	Bytes          int64
}

// RunFigure5 runs the Modified Andrew Benchmark on Sting (one client, one
// storage server across the emulated network) and on extfs (an emulated
// local disk), the exact configuration of Figure 5.
func RunFigure5(cfg MABConfig) (stingRes, extRes MABResult, err error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 4096
	}
	params := model.Paper1999().Scaled(cfg.Scale)
	wl := cfg.Workload
	if wl.CompileNsPerByte == 0 {
		wl.CompileNsPerByte = 12000
	}
	wl.CompileNsPerByte = int(float64(wl.CompileNsPerByte) / cfg.Scale)
	if wl.CompileNsPerByte < 1 {
		wl.CompileNsPerByte = 1
	}

	stingRes, err = runStingMAB(params, wl, cfg)
	if err != nil {
		return stingRes, extRes, fmt.Errorf("sting MAB: %w", err)
	}
	extRes, err = runExtfsMAB(params, wl, cfg)
	if err != nil {
		return stingRes, extRes, fmt.Errorf("extfs MAB: %w", err)
	}
	return stingRes, extRes, nil
}

func normalizeMAB(system string, r mab.Result, scale float64) MABResult {
	out := MABResult{
		System:         system,
		Elapsed:        time.Duration(float64(r.Total) * scale),
		CPUUtilization: r.CPUUtilization(),
		Files:          r.Files,
		Bytes:          r.Bytes,
	}
	for i, p := range r.Phases {
		out.Phases[i] = time.Duration(float64(p) * scale)
	}
	return out
}

func runStingMAB(params model.HardwareParams, wl mab.Config, cfg MABConfig) (MABResult, error) {
	cluster, err := NewSimCluster(ClusterConfig{
		Servers:   1,
		DiskBytes: 512 << 20,
		Params:    params,
	})
	if err != nil {
		return MABResult{}, err
	}
	env := cluster.Client(1)
	log, rec, err := core.Open(core.Config{
		Client:       1,
		Servers:      env.Conns,
		Width:        1,
		CPU:          env.CPU,
		FragOverhead: params.ClientFragOverhead,
	})
	if err != nil {
		return MABResult{}, err
	}
	reg := service.NewRegistry(log)
	fs, err := sting.Mount(log, reg, rec, sting.Config{
		BlockSize:  cfg.BlockSize,
		CacheBytes: 16 << 20, // "Swarm's poor read performance is masked by the client-side cache"
	})
	if err != nil {
		return MABResult{}, err
	}
	wl.CPU = env.CPU
	if _, _, err := mab.Setup(fs, wl); err != nil {
		return MABResult{}, err
	}
	r, err := mab.Run(fs, wl)
	if err != nil {
		return MABResult{}, err
	}
	return normalizeMAB("Sting (Swarm, 1 client + 1 server)", r, cfg.Scale), nil
}

func runExtfsMAB(params model.HardwareParams, wl mab.Config, cfg MABConfig) (MABResult, error) {
	sd := disk.NewSimDisk(disk.NewMemDisk(512<<20), nil, params)
	fs, err := extfs.Mkfs(sd, cfg.BlockSize)
	if err != nil {
		return MABResult{}, err
	}
	// Classic ext2 consistency behaviour: metadata written through,
	// block-group data placement (see extfs.SetSyncMetadata).
	fs.SetSyncMetadata(true)
	wl.CPU = model.NewCPU(nil, params.ClientCPU)
	if _, _, err := mab.Setup(fs, wl); err != nil {
		return MABResult{}, err
	}
	r, err := mab.Run(fs, wl)
	if err != nil {
		return MABResult{}, err
	}
	return normalizeMAB("ext2fs (local disk)", r, cfg.Scale), nil
}
