package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// encode builds the m parity shards for data via AddData, the write
// path's incremental shape.
func encode(t testing.TB, c Code, data [][]byte, size int) [][]byte {
	t.Helper()
	parity := make([][]byte, c.ParityShards())
	for j := range parity {
		parity[j] = make([]byte, size)
	}
	for i, d := range data {
		c.AddData(i, d, parity)
	}
	return parity
}

func randShards(rng *rand.Rand, k, size int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		// Variable lengths: shards are logically zero-padded to size.
		n := rng.Intn(size + 1)
		data[i] = make([]byte, n)
		rng.Read(data[i])
	}
	return data
}

// padded returns s zero-extended to size, for byte-exact comparison
// against reconstructed shards.
func padded(s []byte, size int) []byte {
	out := make([]byte, size)
	copy(out, s)
	return out
}

func TestGFTables(t *testing.T) {
	// Field axioms on a sample: a·a^-1 = 1, distributivity over ⊕.
	for a := 1; a < 256; a++ {
		if got := mul(byte(a), inv(byte(a))); got != 1 {
			t.Fatalf("a·a^-1 = %d for a=%d", got, a)
		}
	}
	for i := 0; i < 1000; i++ {
		a, b, c := byte(i*7+1), byte(i*13+5), byte(i*31+11)
		if mul(a, b^c) != mul(a, b)^mul(a, c) {
			t.Fatalf("distributivity fails at %d,%d,%d", a, b, c)
		}
		if mul(a, b) != mul(b, a) {
			t.Fatalf("commutativity fails at %d,%d", a, b)
		}
	}
	if mul(0, 77) != 0 || mul(77, 0) != 0 {
		t.Fatal("zero annihilation fails")
	}
}

func TestMulSliceXorMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 300)
	rng.Read(src)
	for _, c := range []byte{0, 1, 2, 0x53, 0xCA, 0xFF} {
		dst := make([]byte, 300)
		rng.Read(dst)
		want := make([]byte, 300)
		for i := range want {
			want[i] = dst[i] ^ mul(c, src[i])
		}
		mulSliceXor(c, dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("mulSliceXor(%#x) mismatch", c)
		}
	}
}

func TestCauchyAnyKRowsInvertible(t *testing.T) {
	// The any-k-of-n guarantee, exhaustively for RS(4,2): every 4-subset
	// of the 6 encode rows must be invertible.
	r := newRS(4, 2)
	n := 6
	var subsets func(start int, chosen []int)
	subsets = func(start int, chosen []int) {
		if len(chosen) == r.k {
			sub := newMatrix(r.k, r.k)
			for ri, i := range chosen {
				copy(sub[ri], r.encodeRow(i))
			}
			if _, err := sub.invert(); err != nil {
				t.Fatalf("rows %v not invertible: %v", chosen, err)
			}
			return
		}
		for i := start; i < n; i++ {
			subsets(i+1, append(chosen, i))
		}
	}
	subsets(0, nil)
}

func TestXORMatchesLegacyParity(t *testing.T) {
	// The XOR code must produce byte-identical parity to a plain running
	// XOR — it is the same on-disk format as every pre-RS stripe.
	rng := rand.New(rand.NewSource(2))
	const size = 512
	c, err := New(KindXOR, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(rng, 3, size)
	parity := encode(t, c, data, size)
	want := make([]byte, size)
	for _, d := range data {
		for i, b := range d {
			want[i] ^= b
		}
	}
	if !bytes.Equal(parity[0], want) {
		t.Fatal("xor code parity differs from running xor")
	}
	// And it refuses double losses.
	shards := append(append([][]byte{}, data...), parity...)
	shards[0], shards[1] = nil, nil
	if err := c.Reconstruct(shards, size); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("two losses: err = %v, want ErrInsufficient", err)
	}
}

func TestReconstructEveryLossPattern(t *testing.T) {
	// RS(4,2): drop every 1- and 2-subset of the 6 members; every
	// reconstruction must be byte-exact.
	rng := rand.New(rand.NewSource(3))
	const size = 333
	c, err := New(KindRS, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(rng, 4, size)
	parity := encode(t, c, data, size)
	full := append(append([][]byte{}, data...), parity...)
	for a := 0; a < 6; a++ {
		for b := a; b < 6; b++ {
			shards := make([][]byte, 6)
			for i := range shards {
				if i != a && i != b {
					shards[i] = full[i]
				}
			}
			if err := c.Reconstruct(shards, size); err != nil {
				t.Fatalf("drop {%d,%d}: %v", a, b, err)
			}
			for i := range shards {
				if !bytes.Equal(padded(shards[i], size), padded(full[i], size)) {
					t.Fatalf("drop {%d,%d}: shard %d differs", a, b, i)
				}
			}
		}
	}
}

func TestReconstructRejectsTooManyLosses(t *testing.T) {
	c, _ := New(KindRS, 4, 2)
	shards := make([][]byte, 6)
	shards[0] = make([]byte, 8)
	shards[1] = make([]byte, 8)
	shards[2] = make([]byte, 8)
	if err := c.Reconstruct(shards, 8); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		kind Kind
		k, m int
	}{
		{KindXOR, 3, 2},  // xor needs m=1
		{KindRS, 0, 2},   // k >= 1
		{KindRS, 4, 0},   // m >= 1
		{KindRS, 254, 9}, // k+m over the field bound
		{Kind(9), 4, 2},  // unknown kind
	}
	for _, tc := range cases {
		if _, err := New(tc.kind, tc.k, tc.m); !errors.Is(err, ErrConfig) {
			t.Fatalf("New(%v,%d,%d) err = %v, want ErrConfig", tc.kind, tc.k, tc.m, err)
		}
	}
	if _, err := ParseKind("zfec"); !errors.Is(err, ErrConfig) {
		t.Fatalf("ParseKind err = %v", err)
	}
	for _, s := range []string{"xor", "rs"} {
		k, err := ParseKind(s)
		if err != nil || k.String() != s {
			t.Fatalf("ParseKind(%q) = %v, %v", s, k, err)
		}
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatalf("Kind(9).String() = %q", Kind(9).String())
	}
}

func TestRSWideConfig(t *testing.T) {
	// A wider code near the stripe maximum: RS(12,4), drop 4.
	rng := rand.New(rand.NewSource(4))
	const size = 100
	c, err := New(KindRS, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(rng, 12, size)
	parity := encode(t, c, data, size)
	full := append(append([][]byte{}, data...), parity...)
	shards := make([][]byte, 16)
	copy(shards, full)
	for _, drop := range []int{0, 5, 12, 15} {
		shards[drop] = nil
	}
	if err := c.Reconstruct(shards, size); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(padded(shards[i], size), padded(full[i], size)) {
			t.Fatalf("shard %d differs", i)
		}
	}
}

// FuzzErasureRoundTrip: encode random shards under a random (k, m),
// drop up to m members, and assert byte-exact reconstruction of every
// shard. Wired into `make fuzz-smoke`.
func FuzzErasureRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(2), uint16(64), uint8(0b11))
	f.Add(int64(2), uint8(1), uint8(1), uint16(1), uint8(0b1))
	f.Add(int64(3), uint8(8), uint8(2), uint16(300), uint8(0b10000001))
	f.Add(int64(4), uint8(3), uint8(1), uint16(9), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, kSeed, mSeed uint8, sizeSeed uint16, dropMask uint8) {
		k := int(kSeed)%12 + 1
		m := int(mSeed)%4 + 1
		size := int(sizeSeed)%1024 + 1
		kind := KindRS
		if m == 1 && seed%2 == 0 {
			kind = KindXOR
		}
		c, err := New(kind, k, m)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		data := randShards(rng, k, size)
		parity := encode(t, c, data, size)
		full := append(append([][]byte{}, data...), parity...)

		// Drop up to m shards, chosen by the mask.
		n := k + m
		shards := make([][]byte, n)
		copy(shards, full)
		dropped := 0
		for i := 0; i < n && dropped < m; i++ {
			if dropMask&(1<<(i%8)) != 0 {
				shards[i] = nil
				dropped++
			}
		}
		if err := c.Reconstruct(shards, size); err != nil {
			t.Fatalf("reconstruct k=%d m=%d dropped=%d: %v", k, m, dropped, err)
		}
		for i := range shards {
			if !bytes.Equal(padded(shards[i], size), padded(full[i], size)) {
				t.Fatalf("k=%d m=%d kind=%v: shard %d differs after reconstruction", k, m, kind, i)
			}
		}
	})
}
