// Package cleaner implements Swarm's log cleaner (§2.1.4): a service
// layered on the log that reclaims space by moving live blocks out of
// under-utilized stripes and deleting the stripes. Running the cleaner as
// a service — rather than inside the log layer — mirrors the paper's
// design (and the user-level LFS cleaner it cites).
//
// The cleaner is checkpoint-gated: it only reclaims stripes entirely
// older than every service's newest checkpoint, because younger records
// would still be replayed after a crash. When reclaimable space is pinned
// by a service's stale checkpoint, the cleaner demands a checkpoint; a
// service that persistently ignores demands can have its stripes
// reclaimed anyway with Force, at its own peril.
package cleaner

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"swarm/internal/core"
	"swarm/internal/service"
)

// ErrNothingToClean is returned by CleanOnce when no stripe qualifies.
var ErrNothingToClean = errors.New("cleaner: nothing to clean")

// Config tunes the cleaner's policy.
type Config struct {
	// UtilizationThreshold: stripes with live/total utilization at or
	// below this are candidates. Default 0.5.
	UtilizationThreshold float64
	// MaxStripesPerPass bounds work per CleanOnce. Default 4.
	MaxStripesPerPass int
	// Force reclaims qualifying stripes even when a registered service
	// has never checkpointed (records in them are lost to replay).
	Force bool
}

// Stats counts cleaner activity.
type Stats struct {
	Passes          int64
	StripesCleaned  int64
	BlocksMoved     int64
	BytesMoved      int64
	BlocksDiscarded int64
	Demands         int64
}

// Cleaner reclaims log space.
type Cleaner struct {
	log *core.Log
	reg *service.Registry
	cfg Config

	mu    sync.Mutex
	stats Stats

	stopOnce sync.Once
	started  bool
	stop     chan struct{}
	done     chan struct{}
}

// New returns a cleaner over log, using reg to check block liveness and
// deliver move notifications.
func New(log *core.Log, reg *service.Registry, cfg Config) *Cleaner {
	if cfg.UtilizationThreshold == 0 {
		cfg.UtilizationThreshold = 0.5
	}
	if cfg.MaxStripesPerPass == 0 {
		cfg.MaxStripesPerPass = 4
	}
	return &Cleaner{log: log, reg: reg, cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
}

// Stats returns a snapshot of the counters.
func (c *Cleaner) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// candidate pairs a stripe with its cost-benefit score.
type candidate struct {
	stripe uint64
	util   float64
	score  float64
}

// candidates returns cleanable stripes ordered by LFS cost-benefit
// (Rosenblum & Ousterhout; the heuristics paper the paper cites as [3]):
// benefit/cost = (1−u)·age / (1+u), where reading the stripe costs 1,
// writing back its live fraction costs u, and (1−u) space is freed.
// Stripe IDs are allocated monotonically, so current−stripe is the age.
// pinned reports stripes that would qualify but are held back by the
// checkpoint floor.
func (c *Cleaner) candidates() (ready []candidate, pinned int) {
	floor := c.log.CheckpointFloor()
	width := uint64(c.log.Width())
	current := c.log.NextPos().Seq / width
	for _, stripe := range c.log.Usage().Stripes() {
		u, ok := c.log.Usage().Get(stripe)
		if !ok || !u.Closed {
			continue
		}
		util := u.Utilization()
		if util > c.cfg.UtilizationThreshold {
			continue
		}
		// Every fragment of the stripe must be strictly older than the
		// floor; the stripe spans seqs [stripe*W, (stripe+1)*W).
		if (stripe+1)*width > floor.Seq {
			if !c.cfg.Force {
				pinned++
				continue
			}
		}
		age := float64(1)
		if current > stripe {
			age = float64(current - stripe)
		}
		ready = append(ready, candidate{
			stripe: stripe,
			util:   util,
			score:  (1 - util) * age / (1 + util),
		})
	}
	sort.Slice(ready, func(i, j int) bool {
		if ready[i].score != ready[j].score {
			return ready[i].score > ready[j].score
		}
		return ready[i].stripe < ready[j].stripe
	})
	return ready, pinned
}

// CleanOnce performs one cleaning pass: pick victims, move live blocks,
// reclaim stripes. It returns the number of stripes reclaimed;
// ErrNothingToClean means no stripe qualified (after possibly demanding
// checkpoints from services pinning space).
func (c *Cleaner) CleanOnce() (int, error) {
	c.mu.Lock()
	c.stats.Passes++
	c.mu.Unlock()

	ready, pinned := c.candidates()
	if pinned > 0 {
		// Space is pinned by stale checkpoints: demand fresh ones so the
		// next pass can proceed (§2.1.4).
		c.mu.Lock()
		c.stats.Demands++
		c.mu.Unlock()
		if err := c.reg.DemandCheckpoints(c.log.NextPos()); err != nil {
			return 0, err
		}
		ready, _ = c.candidates()
	}
	if len(ready) == 0 {
		return 0, ErrNothingToClean
	}
	if len(ready) > c.cfg.MaxStripesPerPass {
		ready = ready[:c.cfg.MaxStripesPerPass]
	}
	cleaned := 0
	for _, cand := range ready {
		if err := c.cleanStripe(cand.stripe); err != nil {
			return cleaned, fmt.Errorf("clean stripe %d: %w", cand.stripe, err)
		}
		cleaned++
	}
	return cleaned, nil
}

// liveBlock is a block (with its creation record) found in a victim
// stripe.
type liveBlock struct {
	svc  core.ServiceID
	addr core.BlockAddr
	data []byte
	hint []byte
}

// cleanStripe moves the live blocks out of one stripe and reclaims it.
// "A block is cleaned by appending it to the log, changing its address
// and requiring the services that wrote it to update their metadata
// accordingly" (§2.1.4). The stripe's members are fetched in one
// parallel fan-out through the log's fragment I/O engine.
func (c *Cleaner) cleanStripe(stripe uint64) error {
	var live []liveBlock
	for _, m := range c.log.FetchStripe(stripe) {
		fid := m.FID
		h, payload := m.Header, m.Payload
		if m.Err != nil {
			// A fully absent fragment (e.g. a never-written slot in a
			// pre-parity stripe) contributes nothing.
			continue
		}
		if h.Kind != core.FragData || h.DataLen == 0 {
			continue
		}
		// Collect blocks and their co-located creation records.
		type pending struct {
			svc  core.ServiceID
			addr core.BlockAddr
			data []byte
		}
		blocks := make(map[core.BlockAddr]pending)
		err := core.IterEntries(payload, func(e core.Entry) bool {
			switch e.Kind {
			case core.EntryBlock:
				addr := core.BlockAddr{FID: fid, Off: e.Off}
				blocks[addr] = pending{svc: e.Svc, addr: addr, data: append([]byte(nil), e.Payload...)}
			case core.EntryCreate:
				cr, derr := core.DecodeCreateRecord(e.Payload)
				if derr != nil {
					return true
				}
				if p, ok := blocks[cr.Addr]; ok {
					if c.isLive(p.svc, cr.Addr, cr.Hint) {
						live = append(live, liveBlock{
							svc:  p.svc,
							addr: cr.Addr,
							data: p.data,
							hint: append([]byte(nil), cr.Hint...),
						})
					} else {
						c.mu.Lock()
						c.stats.BlocksDiscarded++
						c.mu.Unlock()
					}
					delete(blocks, cr.Addr)
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}

	// Move live blocks to the log head and notify their owners.
	for _, b := range live {
		newAddr, err := c.log.AppendBlock(b.svc, b.data, b.hint)
		if err != nil {
			return fmt.Errorf("move block %v: %w", b.addr, err)
		}
		if err := c.reg.NotifyBlockMoved(b.svc, b.addr, newAddr, uint32(len(b.data)), b.hint); err != nil {
			if !errors.Is(err, service.ErrUnknownService) {
				return fmt.Errorf("notify move of %v: %w", b.addr, err)
			}
		}
		c.mu.Lock()
		c.stats.BlocksMoved++
		c.stats.BytesMoved += int64(len(b.data))
		c.mu.Unlock()
	}
	// Make the moves durable before destroying the originals.
	if len(live) > 0 {
		if err := c.log.Sync(); err != nil {
			return fmt.Errorf("sync moved blocks: %w", err)
		}
	}
	if err := c.log.ReclaimStripe(stripe); err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.StripesCleaned++
	c.mu.Unlock()
	return nil
}

func (c *Cleaner) isLive(svc core.ServiceID, addr core.BlockAddr, hint []byte) bool {
	s, err := c.reg.Lookup(svc)
	if err != nil {
		// Unknown owner: keep the block (safe), unless forcing.
		return !c.cfg.Force
	}
	return s.BlockLive(addr, hint)
}

// Start runs cleaning passes every interval until Stop is called.
func (c *Cleaner) Start(interval time.Duration) {
	c.mu.Lock()
	c.started = true
	c.mu.Unlock()
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				_, err := c.CleanOnce()
				if err != nil && !errors.Is(err, ErrNothingToClean) {
					// Cleaning is best-effort; the next tick retries.
					continue
				}
			case <-c.stop:
				return
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Safe to call
// without Start (the loop goroutine is only created by Start).
func (c *Cleaner) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if started {
		<-c.done
	}
}
