package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// ErrClass enforces the transport's error-classification contract
// (DESIGN.md §2.4): the resilient layer decides retry-vs-fail by
// inspecting error chains — *wire.StatusError means the server answered
// (permanent), everything else is presumed transient and wrapped in
// transport.ErrUnavailable. A naked errors.New or fmt.Errorf with no %w
// constructed inside the classified packages produces an error that
// chains to nothing, so callers cannot classify it: errors.Is sees
// neither sentinel and the circuit breaker treats it by the transient
// default, silently. Every in-function error construction in those
// packages must wrap a classifiable cause with %w or carry a
// swarmlint:classified annotation stating the escape is deliberate.
//
// Package-level sentinel declarations (ErrUnavailable itself) are
// exempt: sentinels are the classification vocabulary, not users of it.
type ErrClass struct {
	targets map[string]bool
}

// NewErrClass returns the error-classification analyzer for the given
// package import paths.
func NewErrClass(targets []string) *ErrClass {
	m := make(map[string]bool, len(targets))
	for _, t := range targets {
		m[t] = true
	}
	return &ErrClass{targets: m}
}

// Name implements Analyzer.
func (*ErrClass) Name() string { return "errclass" }

// Doc implements Analyzer.
func (*ErrClass) Doc() string {
	return "transport/fragio errors must wrap a classifiable cause (%w) — no naked errors.New/fmt.Errorf"
}

// Run implements Analyzer.
func (e *ErrClass) Run(p *Package) []Diagnostic {
	if !e.targets[p.Path] {
		return nil
	}
	ann := p.Annotations()
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var msg string
			switch {
			case isFunc(p.Info, call, "errors", "New"):
				msg = "naked errors.New in a classified package: wrap a sentinel with fmt.Errorf(\"...: %w\", ...) so the resilient layer can classify it"
			case isFunc(p.Info, call, "fmt", "Errorf") && !errorfWraps(call):
				msg = "fmt.Errorf without %w in a classified package: the error chains to nothing, so retry/circuit-breaker classification cannot see through it"
			default:
				return true
			}
			if p.EnclosingFunc(call) == nil {
				return true // package-level sentinel declaration
			}
			if ann.onLine(call.Pos(), DirectiveClassified) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(call.Pos()),
				Message:  msg + "; or annotate with " + DirectiveClassified,
				Analyzer: e.Name(),
			})
			return true
		})
	}
	return diags
}

// errorfWraps reports whether a fmt.Errorf call's format string wraps
// an error with %w. A non-literal format cannot be judged lexically and
// is given the benefit of the doubt.
func errorfWraps(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return true
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return true
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return true
	}
	return strings.Contains(format, "%w")
}
