package extfs

import (
	"fmt"

	"swarm/internal/vfs"
)

// bitmap is a block-backed allocation bitmap (inodes or data blocks).
type bitmap struct {
	cache      *bufferCache
	startBlock uint32 // first bitmap block on disk
	bits       uint32 // number of allocatable units
	next       uint32 // next-fit rotor
}

func newBitmap(cache *bufferCache, startBlock, bits uint32) *bitmap {
	return &bitmap{cache: cache, startBlock: startBlock, bits: bits}
}

func (bm *bitmap) locate(i uint32) (blk uint32, byteOff int, mask byte) {
	bitsPerBlock := uint32(bm.cache.blockSize * 8)
	blk = bm.startBlock + i/bitsPerBlock
	rem := i % bitsPerBlock
	return blk, int(rem / 8), 1 << (rem % 8)
}

// isSet reports whether unit i is allocated.
func (bm *bitmap) isSet(i uint32) (bool, error) {
	if i >= bm.bits {
		return false, fmt.Errorf("extfs: bitmap index %d out of %d", i, bm.bits)
	}
	blk, off, mask := bm.locate(i)
	p, err := bm.cache.get(blk)
	if err != nil {
		return false, err
	}
	return p[off]&mask != 0, nil
}

func (bm *bitmap) set(i uint32, v bool) error {
	blk, off, mask := bm.locate(i)
	p, err := bm.cache.getDirty(blk)
	if err != nil {
		return err
	}
	if v {
		p[off] |= mask
	} else {
		p[off] &^= mask
	}
	return nil
}

// alloc finds a free unit at or after hint (wrapping), marks it, and
// returns it. A hint of 0 uses the next-fit rotor, which gives the same
// rough locality a real ext2 allocator aims for.
func (bm *bitmap) alloc(hint uint32) (uint32, error) {
	start := hint
	if start == 0 {
		start = bm.next
	}
	for probe := uint32(0); probe < bm.bits; probe++ {
		i := (start + probe) % bm.bits
		set, err := bm.isSet(i)
		if err != nil {
			return 0, err
		}
		if !set {
			if err := bm.set(i, true); err != nil {
				return 0, err
			}
			bm.next = i + 1
			if bm.next >= bm.bits {
				bm.next = 0
			}
			return i, nil
		}
	}
	return 0, vfs.ErrNoSpace
}

// free releases unit i.
func (bm *bitmap) free(i uint32) error {
	set, err := bm.isSet(i)
	if err != nil {
		return err
	}
	if !set {
		return fmt.Errorf("%w: double free of unit %d", ErrCorrupt, i)
	}
	return bm.set(i, false)
}

// countFree scans the bitmap (diagnostics and tests).
func (bm *bitmap) countFree() (uint32, error) {
	var free uint32
	for i := uint32(0); i < bm.bits; i++ {
		set, err := bm.isSet(i)
		if err != nil {
			return 0, err
		}
		if !set {
			free++
		}
	}
	return free, nil
}
