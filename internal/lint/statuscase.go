package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// StatusCase enforces exhaustive handling of the wire.Status enum in
// data-path packages. The enum grows (PR 9 added StatusBusy) and every
// switch over it is a decision the whole cluster depends on — the
// resilient transport's retry classifier most of all: a status that
// falls through an incomplete switch silently takes the default
// disposition, which for a retryable shed means a spurious permanent
// failure. The rule: a switch whose tag is the configured enum type
// must either list every exported member of the enum, or carry a
// default clause annotated swarmlint:statuscase-ok explaining why
// collapsing the unlisted members is safe. A switch that is complete
// today needs no default and no annotation — and the moment a new
// member appears, every such switch lights up.
type StatusCase struct {
	// typeName is "importpath.TypeName" of the enum.
	typeName string
	// check maps package import paths in scope.
	check map[string]bool
}

// NewStatusCase returns the exhaustiveness analyzer for the named enum
// type ("importpath.TypeName") in the given packages.
func NewStatusCase(typeName string, pkgs []string) *StatusCase {
	check := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		check[p] = true
	}
	return &StatusCase{typeName: typeName, check: check}
}

// Name implements Analyzer.
func (*StatusCase) Name() string { return "statuscase" }

// Doc implements Analyzer.
func (sc *StatusCase) Doc() string {
	return fmt.Sprintf("switches over %s cover every member or carry an annotated default", sc.typeName)
}

// Run implements Analyzer.
func (sc *StatusCase) Run(p *Package) []Diagnostic {
	if !sc.check[p.Path] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := sc.enumType(p.Info.TypeOf(sw.Tag))
			if named == nil {
				return true
			}
			if d := sc.checkSwitch(p, sw, named); d != nil {
				diags = append(diags, *d)
			}
			return true
		})
	}
	return diags
}

// enumType returns the switch tag's named type when it is the
// configured enum, else nil.
func (sc *StatusCase) enumType(t types.Type) *types.Named {
	named := namedOrPointee(t)
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return nil
	}
	if named.Obj().Pkg().Path()+"."+named.Obj().Name() != sc.typeName {
		return nil
	}
	return named
}

// members enumerates the exported constants of the enum's declaring
// package whose type is the enum. Unexported sentinels (statusCount)
// are not part of the public enum and are excluded.
func (sc *StatusCase) members(named *types.Named) []string {
	scope := named.Obj().Pkg().Scope()
	var out []string
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() {
			continue
		}
		if !types.Identical(c.Type(), named) {
			continue
		}
		out = append(out, c.Name())
	}
	sort.Strings(out)
	return out
}

// checkSwitch verifies one switch statement and returns a diagnostic or
// nil.
func (sc *StatusCase) checkSwitch(p *Package, sw *ast.SwitchStmt, named *types.Named) *Diagnostic {
	covered := make(map[string]bool)
	var defaultClause *ast.CaseClause
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			if c := sc.caseConst(p.Info, e); c != nil {
				covered[c.Name()] = true
			}
		}
	}
	var missing []string
	for _, m := range sc.members(named) {
		if !covered[m] {
			missing = append(missing, m)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if defaultClause != nil && p.Annotations().onLine(defaultClause.Pos(), DirectiveStatusCaseOK) {
		return nil
	}
	verb := "add the missing cases"
	if defaultClause != nil {
		verb = "add the missing cases or annotate the default with " + DirectiveStatusCaseOK
	} else {
		verb += " or an annotated default"
	}
	return &Diagnostic{
		Pos: p.Fset.Position(sw.Switch),
		Message: fmt.Sprintf("switch over %s does not handle %s; %s",
			named.Obj().Name(), strings.Join(missing, ", "), verb),
		Analyzer: "statuscase",
	}
}

// caseConst resolves a case expression to the enum constant it names,
// or nil for non-constant case expressions.
func (sc *StatusCase) caseConst(info *types.Info, e ast.Expr) *types.Const {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	}
	c, ok := obj.(*types.Const)
	if !ok {
		return nil
	}
	return c
}
