package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"swarm/internal/erasure"
	"swarm/internal/wire"
)

// Format errors.
var (
	// ErrBadFragment is returned when a fragment fails validation.
	ErrBadFragment = errors.New("core: bad fragment")
	// ErrBlockTooLarge is returned when a block cannot fit in a fragment.
	ErrBlockTooLarge = errors.New("core: block too large for fragment")
)

// Fragment geometry. Every fragment starts with a fixed-size
// self-describing header; the rest is the payload region holding log
// entries (data fragments) or the XOR of the stripe's data payloads
// (parity fragments). Storing the stripe group in every fragment is what
// lets a client reconstruct fragments with no global metadata service
// (§2.3.3): find any sibling by broadcast, read its header, and the whole
// stripe is known.
const (
	// HeaderSize is the fragment header length in bytes.
	HeaderSize = 192
	// MaxWidth is the maximum stripe width (fragments per stripe,
	// including parity).
	MaxWidth = 16
	// EntryHdrSize is the per-entry header: kind(1) svc(2) len(4).
	EntryHdrSize = 7

	fragMagic   = 0x4752464c // "LFRG"
	fragVersion = 1
	// fragVersion2 adds the erasure codec byte and parity count to the
	// header (bytes 160 and 161, previously spare), and the placement
	// epoch (bytes 162-165). Version-1 headers imply the paper's single
	// rotating XOR parity at epoch 0, so every pre-RS stripe remains
	// readable and the XOR epoch-0 configuration still writes
	// byte-identical version-1 fragments.
	fragVersion2 = 2

	// FragData marks a fragment holding log entries.
	FragData = 1
	// FragParity marks a fragment holding stripe parity.
	FragParity = 2
)

// Header is the decoded fragment header.
type Header struct {
	Kind     uint8 // FragData or FragParity
	Width    uint8 // members in this stripe, including parity
	Index    uint8 // this fragment's position within the stripe
	FID      wire.FID
	StripeID uint64
	DataLen  uint32 // valid payload bytes
	Group    [MaxWidth]wire.ServerID
	// MemberLens holds each member's DataLen. Populated in parity
	// fragments so reconstruction can rebuild a missing member's header
	// exactly; data fragments leave it zero.
	MemberLens [MaxWidth]uint32
	// PayloadCRC is the CRC-32 of the payload (DataLen bytes). Readers
	// verify it on whole-fragment fetches; a mismatch is treated as a
	// missing fragment, so a corrupted replica heals from the stripe's
	// parity like any other failure.
	PayloadCRC uint32
	// Codec is the erasure code that wrote this stripe (an erasure.Kind
	// value). Readers decode each stripe with the code named in its
	// headers, never their own configuration, so logs may freely mix
	// XOR and RS stripes. Zero is normalized to XOR on decode.
	Codec uint8
	// NumParity is the stripe's parity-shard count m. The parity slots
	// of stripe s are (s+j) mod Width for j in [0, m); slot j=0 is the
	// classic rotating position, so version-1 headers are exactly the
	// m=1 case.
	NumParity uint8
	// Epoch is the placement-map epoch the stripe was written under
	// (see internal/placement). In-session readers and the rebalancer
	// resolve the stripe's servers through the view this epoch names;
	// a fresh session treats foreign epochs as unknown and falls back
	// to recorded locations, the Group field, or broadcast discovery.
	// Version-1 headers are epoch 0 (the construction-time server list).
	Epoch uint32
}

// BaseSeq returns the sequence number of the stripe's first fragment.
// Fragments of one stripe are numbered consecutively (§2.3.3), so the
// stripe's FIDs are BaseSeq … BaseSeq+Width-1.
func (h *Header) BaseSeq() uint64 { return h.FID.Seq() - uint64(h.Index) }

// MemberFID returns the FID of stripe member i.
func (h *Header) MemberFID(i int) wire.FID {
	return wire.MakeFID(h.FID.Client(), h.BaseSeq()+uint64(i))
}

// legacyGeometry reports whether (codec, m) is the original single
// rotating XOR parity, encodable as a version-1 header. Zero values are
// legacy callers that predate the erasure layer.
func legacyGeometry(codec, m uint8) bool {
	return (codec == 0 || codec == uint8(erasure.KindXOR)) && m <= 1
}

// DataShards returns k, the stripe's data-member count.
func (h *Header) DataShards() int { return int(h.Width) - int(h.NumParity) }

// ParityOrdinal returns (j, true) if member index i is the stripe's
// j-th parity slot. Parity occupies indices (StripeID+j) mod Width for
// j in [0, NumParity); j=0 is the classic rotating parity position, so
// the m=1 layout is exactly the original format.
func (h *Header) ParityOrdinal(i int) (int, bool) {
	w := int(h.Width)
	d := (i - int(h.StripeID%uint64(w)) + w) % w
	if d < int(h.NumParity) {
		return d, true
	}
	return 0, false
}

// ShardOrdinal maps stripe member index i to its erasure-shard ordinal:
// data members count 0..k-1 in index order skipping parity slots, and
// parity slot j maps to k+j. This is the ordering erasure.Code expects.
func (h *Header) ShardOrdinal(i int) int {
	if j, ok := h.ParityOrdinal(i); ok {
		return h.DataShards() + j
	}
	n := 0
	for x := 0; x < i; x++ {
		if _, ok := h.ParityOrdinal(x); !ok {
			n++
		}
	}
	return n
}

// ErasureCode returns the stripe's codec as named by the header.
func (h *Header) ErasureCode() (erasure.Code, error) {
	return erasure.New(erasure.Kind(h.Codec), h.DataShards(), int(h.NumParity))
}

// EncodeHeader serializes h into a HeaderSize buffer. XOR single-parity
// epoch-0 headers (including legacy zero-value Codec/NumParity) are
// emitted as version 1, byte-identical to every fragment written before
// the erasure layer existed; anything else is version 2.
func EncodeHeader(h *Header) []byte {
	buf := make([]byte, HeaderSize)
	binary.LittleEndian.PutUint32(buf[0:], fragMagic)
	if legacyGeometry(h.Codec, h.NumParity) && h.Epoch == 0 {
		buf[4] = fragVersion
	} else {
		buf[4] = fragVersion2
		if !legacyGeometry(h.Codec, h.NumParity) {
			// Legacy XOR m≤1 geometry stays zero bytes even in v2 (a
			// header promoted only by its epoch); decode normalizes
			// zeros to XOR m=1 exactly as it does for version 1.
			buf[160] = h.Codec
			buf[161] = h.NumParity
		}
		binary.LittleEndian.PutUint32(buf[162:], h.Epoch)
	}
	buf[5] = h.Kind
	buf[6] = h.Width
	buf[7] = h.Index
	binary.LittleEndian.PutUint64(buf[8:], uint64(h.FID))
	binary.LittleEndian.PutUint64(buf[16:], h.StripeID)
	binary.LittleEndian.PutUint32(buf[24:], h.DataLen)
	for i := 0; i < MaxWidth; i++ {
		binary.LittleEndian.PutUint32(buf[28+i*4:], uint32(h.Group[i]))
		binary.LittleEndian.PutUint32(buf[92+i*4:], h.MemberLens[i])
	}
	binary.LittleEndian.PutUint32(buf[156:], h.PayloadCRC)
	binary.LittleEndian.PutUint32(buf[HeaderSize-4:], crc32.ChecksumIEEE(buf[:HeaderSize-4]))
	return buf
}

// DecodeHeader parses and validates a fragment header.
func DecodeHeader(buf []byte) (Header, error) {
	var h Header
	if len(buf) < HeaderSize {
		return h, fmt.Errorf("%w: header truncated (%d bytes)", ErrBadFragment, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != fragMagic {
		return h, fmt.Errorf("%w: bad magic", ErrBadFragment)
	}
	if buf[4] != fragVersion && buf[4] != fragVersion2 {
		return h, fmt.Errorf("%w: version %d", ErrBadFragment, buf[4])
	}
	if crc32.ChecksumIEEE(buf[:HeaderSize-4]) != binary.LittleEndian.Uint32(buf[HeaderSize-4:]) {
		return h, fmt.Errorf("%w: header checksum", ErrBadFragment)
	}
	h.Kind = buf[5]
	h.Width = buf[6]
	h.Index = buf[7]
	if h.Kind != FragData && h.Kind != FragParity {
		return h, fmt.Errorf("%w: kind %d", ErrBadFragment, h.Kind)
	}
	if h.Width == 0 || h.Width > MaxWidth || h.Index >= h.Width {
		return h, fmt.Errorf("%w: width %d index %d", ErrBadFragment, h.Width, h.Index)
	}
	if buf[4] == fragVersion2 {
		h.Codec = buf[160]
		h.NumParity = buf[161]
		h.Epoch = binary.LittleEndian.Uint32(buf[162:])
		if h.Codec == 0 && h.NumParity == 0 {
			// A parity-free log promoted to v2 by a nonzero epoch: the
			// geometry bytes stay zero, normalized exactly as v1 does.
			h.Codec = uint8(erasure.KindXOR)
			h.NumParity = 1
		} else if h.NumParity == 0 || h.NumParity >= h.Width {
			return h, fmt.Errorf("%w: %d parity shards in width %d", ErrBadFragment, h.NumParity, h.Width)
		}
	} else {
		h.Codec = uint8(erasure.KindXOR)
		h.NumParity = 1
	}
	h.FID = wire.FID(binary.LittleEndian.Uint64(buf[8:]))
	h.StripeID = binary.LittleEndian.Uint64(buf[16:])
	h.DataLen = binary.LittleEndian.Uint32(buf[24:])
	for i := 0; i < MaxWidth; i++ {
		h.Group[i] = wire.ServerID(binary.LittleEndian.Uint32(buf[28+i*4:]))
		h.MemberLens[i] = binary.LittleEndian.Uint32(buf[92+i*4:])
	}
	h.PayloadCRC = binary.LittleEndian.Uint32(buf[156:])
	return h, nil
}

// Entry is one decoded log entry.
type Entry struct {
	Kind    EntryKind
	Svc     ServiceID
	Off     uint32 // offset of the entry within the fragment payload
	Payload []byte // aliases the payload buffer
}

// AppendEntry serializes an entry header+payload into buf at off and
// returns the new offset. Callers must have checked capacity.
func AppendEntry(buf []byte, off int, kind EntryKind, svc ServiceID, payload []byte) int {
	buf[off] = uint8(kind)
	binary.LittleEndian.PutUint16(buf[off+1:], uint16(svc))
	binary.LittleEndian.PutUint32(buf[off+3:], uint32(len(payload)))
	copy(buf[off+EntryHdrSize:], payload)
	return off + EntryHdrSize + len(payload)
}

// EntrySize returns the encoded size of an entry with the given payload
// length.
func EntrySize(payloadLen int) int { return EntryHdrSize + payloadLen }

// IterEntries walks the entries of a data-fragment payload (payload must
// be exactly DataLen bytes), calling fn for each. Iteration stops early if
// fn returns false. Malformed entries terminate iteration with an error.
func IterEntries(payload []byte, fn func(Entry) bool) error {
	off := 0
	for off < len(payload) {
		if off+EntryHdrSize > len(payload) {
			return fmt.Errorf("%w: truncated entry header at %d", ErrBadFragment, off)
		}
		kind := EntryKind(payload[off])
		svc := ServiceID(binary.LittleEndian.Uint16(payload[off+1:]))
		n := binary.LittleEndian.Uint32(payload[off+3:])
		if off+EntryHdrSize+int(n) > len(payload) {
			return fmt.Errorf("%w: truncated entry payload at %d", ErrBadFragment, off)
		}
		e := Entry{
			Kind:    kind,
			Svc:     svc,
			Off:     uint32(off),
			Payload: payload[off+EntryHdrSize : off+EntryHdrSize+int(n)],
		}
		if kind < EntryBlock || kind > EntryRecord {
			return fmt.Errorf("%w: unknown entry kind %d at %d", ErrBadFragment, kind, off)
		}
		if !fn(e) {
			return nil
		}
		off += EntryHdrSize + int(n)
	}
	return nil
}

// ---------------------------------------------------------- record bodies

// CreateRecord is the payload of an EntryCreate record, automatically
// written by the log layer when a block is appended. The Hint is supplied
// by the owning service and handed back when the cleaner moves the block,
// so the service can find and update its metadata (§2.1.4: "the creation
// record for a file block might contain the inode number of the block's
// file, and its position within the file").
type CreateRecord struct {
	Addr BlockAddr
	Len  uint32
	Hint []byte
}

// EncodeCreateRecord serializes r.
func EncodeCreateRecord(r *CreateRecord) []byte {
	e := wire.NewEncoder(20 + len(r.Hint))
	e.U64(uint64(r.Addr.FID))
	e.U32(r.Addr.Off)
	e.U32(r.Len)
	e.Bytes32(r.Hint)
	return e.Bytes()
}

// DecodeCreateRecord parses a create record payload.
func DecodeCreateRecord(p []byte) (CreateRecord, error) {
	d := wire.NewDecoder(p)
	r := CreateRecord{
		Addr: BlockAddr{FID: wire.FID(d.U64()), Off: d.U32()},
		Len:  d.U32(),
		Hint: d.Bytes32(),
	}
	if err := d.Err(); err != nil {
		return CreateRecord{}, fmt.Errorf("%w: create record: %v", ErrBadFragment, err)
	}
	return r, nil
}

// DeleteRecord is the payload of an EntryDelete record.
type DeleteRecord struct {
	Addr BlockAddr
	Len  uint32
}

// EncodeDeleteRecord serializes r.
func EncodeDeleteRecord(r *DeleteRecord) []byte {
	e := wire.NewEncoder(16)
	e.U64(uint64(r.Addr.FID))
	e.U32(r.Addr.Off)
	e.U32(r.Len)
	return e.Bytes()
}

// DecodeDeleteRecord parses a delete record payload.
func DecodeDeleteRecord(p []byte) (DeleteRecord, error) {
	d := wire.NewDecoder(p)
	r := DeleteRecord{
		Addr: BlockAddr{FID: wire.FID(d.U64()), Off: d.U32()},
		Len:  d.U32(),
	}
	if err := d.Err(); err != nil {
		return DeleteRecord{}, fmt.Errorf("%w: delete record: %v", ErrBadFragment, err)
	}
	return r, nil
}

// CheckpointRecord is the payload of an EntryCheckpoint record. Besides
// the service's own checkpoint payload it carries the log layer's
// checkpoint directory — the address of the newest checkpoint of *every*
// service at the time of writing. Recovery reads the newest checkpoint
// (found via marked fragments) and the directory leads it to every other
// service's consistent state, implementing "the log layer tracks the most
// recently written checkpoint for each service and makes it available to
// the service on restart" (§2.1.3).
type CheckpointRecord struct {
	Directory map[ServiceID]BlockAddr
	Payload   []byte
	// Usage is the log layer's serialized stripe-usage table at the time
	// of the checkpoint (see UsageTable): recovery restores it and rolls
	// it forward, giving the cleaner its state without a full log scan.
	Usage []byte
}

// EncodeCheckpointRecord serializes r with a deterministic directory
// order.
func EncodeCheckpointRecord(r *CheckpointRecord) []byte {
	e := wire.NewEncoder(32 + len(r.Payload) + len(r.Directory)*14)
	e.U16(uint16(len(r.Directory)))
	// Deterministic order: ascending service ID.
	ids := make([]ServiceID, 0, len(r.Directory))
	for id := range r.Directory {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		a := r.Directory[id]
		e.U16(uint16(id))
		e.U64(uint64(a.FID))
		e.U32(a.Off)
	}
	e.Bytes32(r.Payload)
	e.Bytes32(r.Usage)
	return e.Bytes()
}

// DecodeCheckpointRecord parses a checkpoint record payload.
func DecodeCheckpointRecord(p []byte) (CheckpointRecord, error) {
	d := wire.NewDecoder(p)
	n := d.U16()
	r := CheckpointRecord{Directory: make(map[ServiceID]BlockAddr, n)}
	for i := uint16(0); i < n && d.Err() == nil; i++ {
		id := ServiceID(d.U16())
		r.Directory[id] = BlockAddr{FID: wire.FID(d.U64()), Off: d.U32()}
	}
	r.Payload = d.Bytes32()
	r.Usage = d.Bytes32()
	if err := d.Err(); err != nil {
		return CheckpointRecord{}, fmt.Errorf("%w: checkpoint record: %v", ErrBadFragment, err)
	}
	return r, nil
}
